// loadgen — closed-loop UDP load generator for authnsd.
//
// Replays a query list ("qname qtype" per line — the format
// atlas_campaign --dump-auth-queries writes, so real campaign traffic can
// be replayed against the live server) from N threads, each with its own
// connected UDP socket: send, wait for the reply, send the next. Reports
// achieved qps and p50/p99 latency as JSON — scripts/run_bench.sh commits
// the result as BENCH_server.json next to the simulated numbers.
//
//   loadgen --port 5300 --queries queries.txt --threads 4 --duration 5
//
// --attack swaps the replay file for the adversarial generators
// (docs/ATTACKS.md): `--attack nxns` pre-builds fresh random-chain trigger
// names under the attacker's delegation zones, `--attack water_torture`
// fresh random subdomains of the victim — the same attack::*_query_name
// streams the simulated campaigns inject, so a live authnsd (typically
// armed with --rrl-rate / --referral-fanout) sees byte-compatible abuse:
//
//   loadgen --port 5300 --attack nxns --attack-domain atk.nl --count 4096

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "attack/generator.hpp"
#include "attack/schedule.hpp"
#include "dnscore/codec.hpp"
#include "dnscore/message.hpp"
#include "netio/client.hpp"
#include "stats/rng.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "netio/fd.hpp"

namespace {

using Clock = std::chrono::steady_clock;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --queries FILE [--server A.B.C.D] [--port N]\n"
               "       [--threads N] [--duration SEC] [--timeout MS]\n"
               "       [--json FILE]   write the report there instead of "
               "stdout\n"
               "FILE has one \"qname qtype\" per line.\n"
               "Adversarial mode (instead of --queries; docs/ATTACKS.md):\n"
               "       --attack nxns|water_torture\n"
               "       [--attack-domain D] attacker apex (nxns) or victim\n"
               "                           domain (water_torture)\n"
               "       [--chains N] [--depth N]  nxns zone shape\n"
               "       [--count N]     unique pre-generated names "
               "(default 1024)\n"
               "       [--seed S]      generator seed (default 42)\n";
  return 2;
}

struct ThreadResult {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t mismatched = 0;
  std::vector<double> latencies_ms;
};

void run_thread(const sockaddr_in& peer, int timeout_ms,
                const std::vector<std::vector<std::uint8_t>>& wires,
                std::size_t start_index, const std::atomic<bool>& stop,
                ThreadResult& out) {
  recwild::netio::UniqueFd fd{
      ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0)};
  if (!fd) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&peer),
                sizeof peer) != 0) {
    return;
  }

  std::vector<std::uint8_t> query;
  std::uint8_t reply[65535];
  std::size_t i = start_index % wires.size();
  std::uint16_t txid = static_cast<std::uint16_t>(start_index * 7919 + 1);
  out.latencies_ms.reserve(1 << 18);

  while (!stop.load(std::memory_order_relaxed)) {
    query = wires[i];
    i = (i + 1) % wires.size();
    ++txid;
    query[0] = static_cast<std::uint8_t>(txid >> 8);
    query[1] = static_cast<std::uint8_t>(txid & 0xff);

    const auto t0 = Clock::now();
    if (::send(fd.get(), query.data(), query.size(), 0) < 0) continue;
    ++out.sent;
    const ssize_t n = ::recv(fd.get(), reply, sizeof reply, 0);
    if (n < 0) {
      ++out.timeouts;
      continue;
    }
    if (n < 2 || reply[0] != query[0] || reply[1] != query[1]) {
      ++out.mismatched;  // stale reply from an earlier timed-out exchange
      continue;
    }
    ++out.received;
    out.latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  }
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  namespace dns = recwild::dns;

  std::string server = "127.0.0.1";
  std::uint16_t port = 5300;
  std::string queries_file;
  int threads = 4;
  double duration_s = 5.0;
  int timeout_ms = 250;
  std::string json_file;
  std::string attack_kind;
  std::string attack_domain;
  recwild::attack::NxnsZoneConfig attack_zone;
  int attack_count = 1024;
  std::uint64_t attack_seed = 42;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--server") {
      server = next();
    } else if (arg == "--port") {
      port = static_cast<std::uint16_t>(std::stoi(next()));
    } else if (arg == "--queries") {
      queries_file = next();
    } else if (arg == "--threads") {
      threads = std::stoi(next());
    } else if (arg == "--duration") {
      duration_s = std::stod(next());
    } else if (arg == "--timeout") {
      timeout_ms = std::stoi(next());
    } else if (arg == "--json") {
      json_file = next();
    } else if (arg == "--attack") {
      attack_kind = next();
    } else if (arg == "--attack-domain") {
      attack_domain = next();
    } else if (arg == "--chains") {
      attack_zone.chains = std::stoi(next());
    } else if (arg == "--depth") {
      attack_zone.depth = std::stoi(next());
    } else if (arg == "--count") {
      attack_count = std::stoi(next());
    } else if (arg == "--seed") {
      attack_seed = std::stoull(next());
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage(argv[0]);
    }
  }
  if (queries_file.empty() == attack_kind.empty()) {
    std::cerr << "exactly one of --queries or --attack is required\n";
    return usage(argv[0]);
  }
  if (threads < 1) threads = 1;
  if (attack_count < 1) attack_count = 1;

  // Pre-encode every query once; the send loop only patches the txid.
  std::vector<std::vector<std::uint8_t>> wires;
  if (!attack_kind.empty()) {
    // Adversarial mode: synthesize the wires instead of reading them. The
    // names come from the same generators the simulated campaign injects,
    // off one seeded stream forked per query index.
    namespace attack = recwild::attack;
    attack::AttackKind kind;
    try {
      kind = attack::attack_kind_from_string(attack_kind);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return usage(argv[0]);
    }
    if (!attack_domain.empty()) {
      if (kind == attack::AttackKind::Nxns) {
        attack_zone.attacker_domain = attack_domain;
      } else {
        attack_zone.victim_domain = attack_domain;
      }
    }
    const recwild::stats::Rng rng{attack_seed};
    const dns::Name victim = dns::Name::parse(attack_zone.victim_domain);
    for (int k = 0; k < attack_count; ++k) {
      auto query_rng = rng.fork(static_cast<std::uint64_t>(k));
      const dns::Name qname =
          kind == attack::AttackKind::Nxns
              ? attack::nxns_query_name(attack_zone, query_rng)
              : attack::water_torture_query_name(victim, query_rng);
      dns::Message q =
          dns::Message::make_query(0, qname, dns::RRType::A);
      q.edns = dns::EdnsInfo{};
      auto buf = dns::encode_message(q);
      wires.emplace_back(buf.data(), buf.data() + buf.size());
    }
  } else {
    std::ifstream in{queries_file};
    if (!in) {
      std::cerr << "cannot open " << queries_file << "\n";
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream ls{line};
      std::string qname, qtype_str;
      ls >> qname >> qtype_str;
      if (qname.empty()) continue;
      if (qtype_str.empty()) qtype_str = "A";
      const auto qtype = dns::rrtype_from_string(qtype_str);
      if (!qtype) {
        std::cerr << "skipping unknown type: " << line << "\n";
        continue;
      }
      try {
        dns::Message q =
            dns::Message::make_query(0, dns::Name::parse(qname), *qtype);
        q.edns = dns::EdnsInfo{};
        auto buf = dns::encode_message(q);
        wires.emplace_back(buf.data(), buf.data() + buf.size());
      } catch (const std::exception& e) {
        std::cerr << "skipping bad name (" << e.what() << "): " << line
                  << "\n";
      }
    }
  }
  if (wires.empty()) {
    std::cerr << "no usable queries in " << queries_file << "\n";
    return 1;
  }

  sockaddr_in peer{};
  peer.sin_family = AF_INET;
  peer.sin_port = htons(port);
  if (::inet_pton(AF_INET, server.c_str(), &peer.sin_addr) != 1) {
    std::cerr << "bad server address: " << server << "\n";
    return 1;
  }

  std::atomic<bool> stop{false};
  std::vector<ThreadResult> results(static_cast<std::size_t>(threads));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  const auto t0 = Clock::now();
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back(run_thread, std::cref(peer), timeout_ms,
                      std::cref(wires),
                      (wires.size() / static_cast<std::size_t>(threads)) *
                          static_cast<std::size_t>(t),
                      std::cref(stop), std::ref(results[static_cast<std::size_t>(t)]));
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(duration_s));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : pool) th.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  ThreadResult total;
  for (auto& r : results) {
    total.sent += r.sent;
    total.received += r.received;
    total.timeouts += r.timeouts;
    total.mismatched += r.mismatched;
    total.latencies_ms.insert(total.latencies_ms.end(),
                              r.latencies_ms.begin(), r.latencies_ms.end());
  }
  const double qps =
      elapsed > 0 ? static_cast<double>(total.received) / elapsed : 0.0;
  const double p50 = percentile(total.latencies_ms, 0.50);
  const double p99 = percentile(total.latencies_ms, 0.99);

  std::ostringstream json;
  json << "{\n"
       << "  \"server\": \"" << server << ":" << port << "\",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"duration_s\": " << elapsed << ",\n"
       << "  \"unique_queries\": " << wires.size() << ",\n"
       << "  \"sent\": " << total.sent << ",\n"
       << "  \"received\": " << total.received << ",\n"
       << "  \"timeouts\": " << total.timeouts << ",\n"
       << "  \"mismatched\": " << total.mismatched << ",\n"
       << "  \"qps\": " << qps << ",\n"
       << "  \"p50_ms\": " << p50 << ",\n"
       << "  \"p99_ms\": " << p99 << "\n"
       << "}\n";

  if (json_file.empty()) {
    std::cout << json.str();
  } else {
    std::ofstream out{json_file};
    out << json.str();
    std::cout << "wrote " << json_file << " (qps=" << qps << ", p99=" << p99
              << " ms)\n";
  }
  return total.received > 0 ? 0 : 1;
}
