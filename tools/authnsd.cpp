// authnsd — the authoritative server as a real daemon.
//
// Serves master-file zones over kernel UDP+TCP sockets through
// netio::Server; every answer comes from the same authns::Responder the
// simulated AuthServer uses ("one engine, two transports",
// docs/ARCHITECTURE.md). Prints one "listening on ADDR:PORT" line to
// stdout on startup — scripts parse it to discover an ephemeral port —
// and, at --stats-interval, folds the socket-layer counters into an
// obs::MetricRegistry and dumps the JSON snapshot to stderr.
//
//   authnsd --zone example.com=example.zone --port 5300 --workers 4

#include <csignal>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "authns/responder.hpp"
#include "authns/zone.hpp"
#include "netio/server.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --zone ORIGIN=FILE [--zone ...]\n"
      << "       [--addr A.B.C.D]      bind address (default 127.0.0.1)\n"
      << "       [--port N]            port (default 5300; 0 = ephemeral)\n"
      << "       [--workers N]         SO_REUSEPORT shards (default 2)\n"
      << "       [--identity NAME]     CH TXT id.server (default authnsd)\n"
      << "       [--plain-udp-limit N] non-EDNS UDP limit (default 512)\n"
      << "       [--rrl-rate N]        RRL: responses/client/window on UDP\n"
      << "                             (default 0 = off; docs/ATTACKS.md)\n"
      << "       [--rrl-window-ms N]   RRL accounting window (default 1000)\n"
      << "       [--rrl-slip N]        every Nth limited response is a TC\n"
      << "                             slip instead of a drop (default 2)\n"
      << "       [--referral-fanout N] cap NS records per referral\n"
      << "                             (default 0 = unlimited)\n"
      << "       [--stats-interval S]  stderr stats every S sec (0 = off)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using recwild::authns::Responder;
  using recwild::authns::ResponderConfig;
  using recwild::authns::Zone;

  std::vector<std::pair<std::string, std::string>> zone_args;
  recwild::netio::ServerConfig net_cfg;
  net_cfg.port = 5300;
  net_cfg.workers = 2;
  ResponderConfig resp_cfg;
  resp_cfg.identity = "authnsd";
  int stats_interval_s = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--zone") {
      const std::string v = next();
      const auto eq = v.find('=');
      if (eq == std::string::npos) {
        std::cerr << "--zone wants ORIGIN=FILE, got: " << v << "\n";
        return usage(argv[0]);
      }
      zone_args.emplace_back(v.substr(0, eq), v.substr(eq + 1));
    } else if (arg == "--addr") {
      net_cfg.bind_address = next();
    } else if (arg == "--port") {
      net_cfg.port = static_cast<std::uint16_t>(std::stoi(next()));
    } else if (arg == "--workers") {
      net_cfg.workers = std::stoi(next());
    } else if (arg == "--identity") {
      resp_cfg.identity = next();
    } else if (arg == "--plain-udp-limit") {
      resp_cfg.plain_udp_limit = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--rrl-rate") {
      net_cfg.rrl.rate = std::stoi(next());
    } else if (arg == "--rrl-window-ms") {
      net_cfg.rrl.window = recwild::net::Duration::millis(std::stol(next()));
    } else if (arg == "--rrl-slip") {
      net_cfg.rrl.slip = std::stoi(next());
    } else if (arg == "--referral-fanout") {
      resp_cfg.max_referral_fanout = std::stoi(next());
    } else if (arg == "--stats-interval") {
      stats_interval_s = std::stoi(next());
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage(argv[0]);
    }
  }
  if (zone_args.empty()) {
    std::cerr << "at least one --zone ORIGIN=FILE is required\n";
    return usage(argv[0]);
  }

  Responder responder{resp_cfg};
  for (const auto& [origin, file] : zone_args) {
    std::ifstream in{file};
    if (!in) {
      std::cerr << "cannot open zone file: " << file << "\n";
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      Zone zone = Zone::from_text(recwild::dns::Name::parse(origin),
                                  text.str());
      const auto problems = zone.validate();
      for (const auto& p : problems) {
        std::cerr << "zone " << origin << ": " << p << "\n";
      }
      if (!problems.empty()) return 1;
      responder.add_zone(std::move(zone));
    } catch (const std::exception& e) {
      std::cerr << "zone " << origin << ": " << e.what() << "\n";
      return 1;
    }
  }

  recwild::netio::Server server{responder, net_cfg};
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "start failed: " << e.what() << "\n";
    return 1;
  }
  std::cout << "listening on " << net_cfg.bind_address << ":" << server.port()
            << " (" << net_cfg.workers << " workers, " << zone_args.size()
            << " zones)" << std::endl;  // flush: scripts parse this line

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  // Stats fold: the socket layer counts in plain atomics; here the deltas
  // become obs counters stamped with wall-clock-since-start as "sim time",
  // so the snapshot JSON has the same shape as a simulation's.
  recwild::obs::MetricRegistry metrics;
  recwild::netio::ServerStats prev;
  const auto started = std::chrono::steady_clock::now();
  auto next_dump = started + std::chrono::seconds(
                                 stats_interval_s > 0 ? stats_interval_s : 1);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (stats_interval_s <= 0) continue;
    const auto now = std::chrono::steady_clock::now();
    if (now < next_dump) continue;
    next_dump = now + std::chrono::seconds(stats_interval_s);
    const auto stamp = recwild::net::SimTime::from_micros(
        std::chrono::duration_cast<std::chrono::microseconds>(now - started)
            .count());
    const recwild::netio::ServerStats s = server.stats();
    namespace names = recwild::obs::names;
    metrics.counter(names::kNetioUdpDatagrams)
        .add(s.udp_datagrams - prev.udp_datagrams, stamp);
    metrics.counter(names::kNetioTcpConnections)
        .add(s.tcp_connections - prev.tcp_connections, stamp);
    metrics.counter(names::kNetioTcpMessages)
        .add(s.tcp_messages - prev.tcp_messages, stamp);
    metrics.counter(names::kNetioResponses)
        .add(s.responses - prev.responses, stamp);
    metrics.counter(names::kNetioDropped).add(s.dropped - prev.dropped, stamp);
    metrics.counter(names::kAuthnsFormerr).add(s.formerr - prev.formerr,
                                               stamp);
    metrics.counter(names::kRrlDropped)
        .add(s.rrl_dropped - prev.rrl_dropped, stamp);
    metrics.counter(names::kRrlSlipped)
        .add(s.rrl_slipped - prev.rrl_slipped, stamp);
    prev = s;
    metrics.snapshot().write_json(std::cerr);
    std::cerr << "\n";
  }

  server.stop();
  return 0;
}
