// tdig — a dig-style query client for authnsd (and any DNS server).
//
// Builds a query with the repo's own codec, exchanges it over UDP or TCP
// through netio::exchange, and prints the decoded response. `--raw HEX`
// sends arbitrary bytes instead (the FORMERR smoke probe); `--hex-out`
// prints the raw response bytes, which is what the transport-equivalence
// test compares against the simulated server.
//
//   tdig @127.0.0.1 -p 5300 www.example.com A
//   tdig @127.0.0.1 -p 5300 example.com AXFR +tcp
//   tdig @127.0.0.1 -p 5300 --raw deadbeef --hex-out

#include <cstdint>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "dnscore/codec.hpp"
#include "dnscore/message.hpp"
#include "netio/client.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [@server] [-p port] NAME [TYPE] [options]\n"
               "  +tcp            use TCP (2-byte framing)\n"
               "  +norecurse      clear the RD bit\n"
               "  +noedns         send no OPT record\n"
               "  +bufsize=N      EDNS advertised UDP payload size\n"
               "  +short          print answer rdata only\n"
               "  --id N          query id (default 1234)\n"
               "  --class CH|IN   query class\n"
               "  --timeout MS    exchange timeout (default 3000)\n"
               "  --raw HEX       send raw bytes instead of a query\n"
               "  --hex-out       print the raw response bytes as hex\n";
  return 2;
}

std::optional<std::vector<std::uint8_t>> parse_hex(const std::string& s) {
  if (s.size() % 2 != 0) return std::nullopt;
  std::vector<std::uint8_t> out;
  out.reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2) {
    const auto nib = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      return -1;
    };
    const int hi = nib(s[i]);
    const int lo = nib(s[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

void print_hex(std::span<const std::uint8_t> bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string s;
  s.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    s.push_back(kDigits[b >> 4]);
    s.push_back(kDigits[b & 0xf]);
  }
  std::cout << s << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  namespace dns = recwild::dns;

  std::string server = "127.0.0.1";
  std::uint16_t port = 53;
  std::string qname;
  std::string qtype_str = "A";
  bool have_name = false;
  bool have_type = false;
  recwild::netio::ExchangeOptions opts;
  bool rd = true;
  bool edns = true;
  std::uint16_t bufsize = 1232;
  bool short_out = false;
  bool hex_out = false;
  std::uint16_t id = 1234;
  dns::RRClass qclass = dns::RRClass::IN;
  std::optional<std::vector<std::uint8_t>> raw;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (!arg.empty() && arg[0] == '@') {
      server = arg.substr(1);
    } else if (arg == "-p") {
      port = static_cast<std::uint16_t>(std::stoi(next()));
    } else if (arg == "+tcp") {
      opts.tcp = true;
    } else if (arg == "+norecurse") {
      rd = false;
    } else if (arg == "+noedns") {
      edns = false;
    } else if (arg.rfind("+bufsize=", 0) == 0) {
      bufsize = static_cast<std::uint16_t>(std::stoi(arg.substr(9)));
    } else if (arg == "+short") {
      short_out = true;
    } else if (arg == "--id") {
      id = static_cast<std::uint16_t>(std::stoi(next()));
    } else if (arg == "--class") {
      const std::string c = next();
      const auto parsed = dns::rrclass_from_string(c);
      if (!parsed) {
        std::cerr << "unknown class: " << c << "\n";
        return usage(argv[0]);
      }
      qclass = *parsed;
    } else if (arg == "--timeout") {
      opts.timeout_ms = std::stoi(next());
    } else if (arg == "--raw") {
      raw = parse_hex(next());
      if (!raw) {
        std::cerr << "--raw wants an even-length hex string\n";
        return usage(argv[0]);
      }
    } else if (arg == "--hex-out") {
      hex_out = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!have_name) {
      qname = arg;
      have_name = true;
    } else if (!have_type) {
      qtype_str = arg;
      have_type = true;
    } else {
      std::cerr << "unexpected argument: " << arg << "\n";
      return usage(argv[0]);
    }
  }

  std::vector<std::uint8_t> query_wire;
  if (raw) {
    query_wire = std::move(*raw);
  } else {
    if (!have_name) return usage(argv[0]);
    const auto qtype = dns::rrtype_from_string(qtype_str);
    if (!qtype) {
      std::cerr << "unknown type: " << qtype_str << "\n";
      return usage(argv[0]);
    }
    dns::Message query;
    try {
      query = dns::Message::make_query(id, dns::Name::parse(qname), *qtype,
                                       qclass);
    } catch (const std::exception& e) {
      std::cerr << "bad name: " << e.what() << "\n";
      return 2;
    }
    query.header.rd = rd;
    if (edns) {
      query.edns = dns::EdnsInfo{};
      query.edns->udp_payload_size = bufsize;
    }
    auto buf = dns::encode_message(query);
    query_wire.assign(buf.data(), buf.data() + buf.size());
  }

  const auto result =
      recwild::netio::exchange(server, port, query_wire, opts);
  if (!result) {
    std::cerr << ";; no response from " << server << ":" << port << " after "
              << opts.timeout_ms << " ms\n";
    return 1;
  }

  if (hex_out) {
    print_hex(result->wire);
    return 0;
  }
  try {
    const dns::Message resp = dns::decode_message(result->wire);
    if (short_out) {
      for (const auto& rr : resp.answers) {
        std::cout << dns::rdata_to_string(rr.rdata) << "\n";
      }
    } else {
      std::cout << resp.to_string();
      std::cout << ";; SERVER: " << server << "#" << port << " ("
                << (opts.tcp ? "tcp" : "udp") << "), " << result->wire.size()
                << " bytes, " << result->rtt_ms << " ms\n";
    }
  } catch (const dns::WireError& e) {
    std::cerr << ";; undecodable response (" << e.what() << "), "
              << result->wire.size() << " bytes:\n";
    print_hex(result->wire);
    return 1;
  }
  return 0;
}
