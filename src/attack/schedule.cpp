#include "attack/schedule.hpp"

#include <array>
#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace recwild::attack {

namespace {

struct KindName {
  AttackKind kind;
  std::string_view name;
};

constexpr std::array<KindName, 2> kKindNames{{
    {AttackKind::Nxns, "nxns"},
    {AttackKind::WaterTorture, "water_torture"},
}};

[[noreturn]] void line_error(std::size_t line, const std::string& what) {
  throw std::runtime_error("attack schedule line " + std::to_string(line) +
                           ": " + what);
}

std::int64_t parse_int(const std::string& s, std::size_t line,
                       const char* field) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    line_error(line, std::string("bad ") + field + " '" + s + "'");
  }
  return v;
}

}  // namespace

std::string_view to_string(AttackKind kind) {
  for (const auto& [k, name] : kKindNames) {
    if (k == kind) return name;
  }
  return "unknown";
}

AttackKind attack_kind_from_string(std::string_view name) {
  for (const auto& [k, n] : kKindNames) {
    if (n == name) return k;
  }
  throw std::invalid_argument("unknown attack kind '" + std::string(name) +
                              "'");
}

void AttackSchedule::validate() const {
  const auto zone_fail = [](const std::string& what) {
    throw std::invalid_argument("attack zone config: " + what);
  };
  if (zone_.attacker_domain.empty()) zone_fail("attacker_domain is empty");
  if (zone_.victim_domain.empty()) zone_fail("victim_domain is empty");
  if (zone_.chains < 1) zone_fail("chains must be >= 1");
  if (zone_.fanout < 1) zone_fail("fanout must be >= 1");
  if (zone_.depth < 1) zone_fail("depth must be >= 1");

  for (std::size_t i = 0; i < events_.size(); ++i) {
    const AttackEvent& e = events_[i];
    const auto fail = [i](const std::string& what) {
      throw std::invalid_argument("attack event " + std::to_string(i) + ": " +
                                  what);
    };
    if (e.end <= e.start) fail("window must satisfy end > start");
    if (e.interval <= net::Duration::zero()) fail("interval must be > 0");
    if (e.bots < 1) fail("bots must be >= 1");
  }
}

void write_schedule(std::ostream& out, const AttackSchedule& schedule) {
  out << "# kind\tstart_us\tend_us\tinterval_us\tbots\n";
  for (const AttackEvent& e : schedule.events()) {
    out << to_string(e.kind) << '\t' << e.start.count_micros() << '\t'
        << e.end.count_micros() << '\t' << e.interval.count_micros() << '\t'
        << e.bots << '\n';
  }
}

AttackSchedule read_schedule(std::istream& in) {
  AttackSchedule schedule;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields;
    std::size_t pos = 0;
    while (true) {
      const std::size_t tab = line.find('\t', pos);
      fields.push_back(line.substr(pos, tab - pos));
      if (tab == std::string::npos) break;
      pos = tab + 1;
    }
    if (fields.size() != 5) {
      line_error(line_no, "expected 5 tab-separated fields, got " +
                              std::to_string(fields.size()));
    }
    AttackEvent e;
    try {
      e.kind = attack_kind_from_string(fields[0]);
    } catch (const std::invalid_argument& ex) {
      line_error(line_no, ex.what());
    }
    e.start =
        net::SimTime::from_micros(parse_int(fields[1], line_no, "start_us"));
    e.end = net::SimTime::from_micros(parse_int(fields[2], line_no, "end_us"));
    e.interval =
        net::Duration::micros(parse_int(fields[3], line_no, "interval_us"));
    e.bots = static_cast<int>(parse_int(fields[4], line_no, "bots"));
    schedule.add(e);
  }
  return schedule;
}

}  // namespace recwild::attack
