// Attack-workload generators: the zones an NXNS attacker serves and the
// query names bots fire.
//
// make_nxns_zones materialises NxnsZoneConfig as real authns::Zone data —
// an apex zone plus one zone per intermediate delegation step — so the
// attacker's authoritative is just another AuthServer in the simulated
// world (or a master file fed to a live authnsd). The amplification lives
// entirely in zone *data*: the last delegation of every chain names
// `fanout` glueless servers inside the victim's domain, and a standard
// resolver has to go fetch their addresses.
//
// Query names take the caller's stats::Rng by reference; callers fork a
// stream per (event, bot, query) so the names — and therefore every
// downstream packet — are identical at any shard count.
#pragma once

#include <vector>

#include "attack/schedule.hpp"
#include "authns/zone.hpp"
#include "net/address.hpp"
#include "stats/rng.hpp"

namespace recwild::attack {

/// Builds the attacker-side zones for `cfg`: the apex zone (SOA, apex NS
/// `apex_ns` with A glue `apex_addr`, and the chain delegations) plus, for
/// depth > 1, the per-chain intermediate zones. All returned zones are
/// meant to be served by the same attacker authoritative. The final
/// delegation of chain `i` names `fanout` glueless NS hosts
/// `v<i*fanout+j>.<victim_domain>`.
[[nodiscard]] std::vector<authns::Zone> make_nxns_zones(
    const NxnsZoneConfig& cfg, const dns::Name& apex_ns,
    net::IpAddress apex_addr);

/// A fresh NXNS trigger name: `x<rand>.<chain tail>` for an rng-chosen
/// chain — below the final delegation point, so the attacker's server
/// answers with the glueless victim referral.
[[nodiscard]] dns::Name nxns_query_name(const NxnsZoneConfig& cfg,
                                        stats::Rng& rng);

/// A fresh water-torture name: `w<rand>.<victim_domain>` — guaranteed
/// cache-miss, lands on the victim's authoritatives.
[[nodiscard]] dns::Name water_torture_query_name(const dns::Name& victim,
                                                 stats::Rng& rng);

/// Recognises victim-side attack traffic by its first label: the glueless
/// NS targets NXNS referrals name are `v<digits>.*` and water-torture
/// labels `w<16 hex>.*`, while a measurement campaign's cache-busting
/// labels (`q<probe>x<k>`) never match — so a victim's query log separates
/// the two streams exactly. Used by the bench matrix and the attack tests
/// to compute measured amplification.
[[nodiscard]] bool is_attack_query_name(const dns::Name& qname);

}  // namespace recwild::attack
