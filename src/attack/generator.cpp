#include "attack/generator.hpp"

#include <cctype>
#include <string>

namespace recwild::attack {

namespace {

// Root/TLD-style TTLs, matching the experiment zone builder.
constexpr dns::Ttl kTtl = 172'800;
constexpr dns::Ttl kNegativeTtl = 60;

/// `<prefix><16 hex chars>` from one 64-bit draw — the cache-busting label.
std::string rand_label(char prefix, stats::Rng& rng) {
  constexpr char kHex[] = "0123456789abcdef";
  const std::uint64_t v = rng.next();
  std::string label(1, prefix);
  for (int i = 15; i >= 0; --i) {
    label.push_back(kHex[(v >> (4 * i)) & 0xF]);
  }
  return label;
}

/// The chain-`i` delegation owner at step `k` (1-based):
/// g^(k-1).c<i>.<attacker_domain>.
dns::Name chain_owner(const NxnsZoneConfig& cfg, int chain, int k) {
  dns::Name name =
      dns::Name::parse(cfg.attacker_domain).prefixed("c" + std::to_string(chain));
  for (int step = 1; step < k; ++step) name = name.prefixed("g");
  return name;
}

/// Victim nameserver host `v<chain*fanout+j>.<victim_domain>` — each chain
/// points at its own slice of the victim name space so `chains * fanout`
/// distinct glueless targets exist.
dns::Name victim_ns(const NxnsZoneConfig& cfg, int chain, int j) {
  return dns::Name::parse(cfg.victim_domain)
      .prefixed("v" + std::to_string(chain * cfg.fanout + j));
}

void add_soa(authns::Zone& zone, const dns::Name& origin,
             const dns::Name& mname) {
  dns::SoaRdata soa;
  soa.mname = mname;
  soa.rname = origin.prefixed("hostmaster");
  soa.serial = 2017'04'12;
  soa.refresh = 14'400;
  soa.retry = 3'600;
  soa.expire = 1'209'600;
  soa.minimum = kNegativeTtl;
  zone.add(dns::ResourceRecord{origin, dns::RRClass::IN, kTtl, soa});
}

/// The NS set delegating step `k+1` of chain `i` inside the zone rooted at
/// the step-`k` owner (k = 0 is the apex). The last step is the attack: it
/// names the glueless victim hosts. Every earlier step stays inside
/// attacker infrastructure on the glued apex nameserver.
void add_delegation(authns::Zone& zone, const NxnsZoneConfig& cfg,
                    const dns::Name& child, int chain, int child_step,
                    const dns::Name& apex_ns) {
  if (child_step == cfg.depth) {
    for (int j = 0; j < cfg.fanout; ++j) {
      zone.add(dns::ResourceRecord{child, dns::RRClass::IN, kTtl,
                                   dns::NsRdata{victim_ns(cfg, chain, j)}});
    }
  } else {
    zone.add(
        dns::ResourceRecord{child, dns::RRClass::IN, kTtl, dns::NsRdata{apex_ns}});
  }
}

}  // namespace

std::vector<authns::Zone> make_nxns_zones(const NxnsZoneConfig& cfg,
                                          const dns::Name& apex_ns,
                                          net::IpAddress apex_addr) {
  const dns::Name apex = dns::Name::parse(cfg.attacker_domain);
  std::vector<authns::Zone> zones;

  authns::Zone apex_zone{apex};
  add_soa(apex_zone, apex, apex_ns);
  apex_zone.add(
      dns::ResourceRecord{apex, dns::RRClass::IN, kTtl, dns::NsRdata{apex_ns}});
  if (apex_ns.is_subdomain_of(apex)) {
    apex_zone.add(dns::ResourceRecord{apex_ns, dns::RRClass::IN, kTtl,
                                      dns::ARdata{apex_addr}});
  }
  for (int chain = 0; chain < cfg.chains; ++chain) {
    add_delegation(apex_zone, cfg, chain_owner(cfg, chain, 1), chain, 1,
                   apex_ns);
  }
  zones.push_back(std::move(apex_zone));

  // Intermediate zones: one per (chain, step) for depth > 1, all served by
  // the same attacker authoritative.
  for (int chain = 0; chain < cfg.chains; ++chain) {
    for (int k = 1; k < cfg.depth; ++k) {
      const dns::Name origin = chain_owner(cfg, chain, k);
      authns::Zone zone{origin};
      add_soa(zone, origin, apex_ns);
      zone.add(dns::ResourceRecord{origin, dns::RRClass::IN, kTtl,
                                   dns::NsRdata{apex_ns}});
      add_delegation(zone, cfg, chain_owner(cfg, chain, k + 1), chain, k + 1,
                     apex_ns);
      zones.push_back(std::move(zone));
    }
  }
  return zones;
}

dns::Name nxns_query_name(const NxnsZoneConfig& cfg, stats::Rng& rng) {
  const int chain = static_cast<int>(rng.index(
      static_cast<std::size_t>(cfg.chains)));
  return chain_owner(cfg, chain, cfg.depth).prefixed(rand_label('x', rng));
}

dns::Name water_torture_query_name(const dns::Name& victim, stats::Rng& rng) {
  return victim.prefixed(rand_label('w', rng));
}

bool is_attack_query_name(const dns::Name& qname) {
  if (qname.label_count() == 0) return false;
  const std::string& first = qname.label(0);
  if (first.size() < 2) return false;
  if (first[0] == 'v') {
    for (std::size_t i = 1; i < first.size(); ++i) {
      if (std::isdigit(static_cast<unsigned char>(first[i])) == 0) {
        return false;
      }
    }
    return true;
  }
  if (first[0] == 'w' && first.size() == 17) {
    for (std::size_t i = 1; i < first.size(); ++i) {
      if (std::isxdigit(static_cast<unsigned char>(first[i])) == 0) {
        return false;
      }
    }
    return true;
  }
  return false;
}

}  // namespace recwild::attack
