// Deterministic adversarial workload schedules (NXNS & water torture).
//
// An AttackSchedule pairs a delegation-chain zone layout (NxnsZoneConfig —
// how much amplification the attacker infrastructure can express) with an
// ordered list of attack events, each active over a half-open sim-time
// window [start, end). Events describe *who floods when* — how many bot
// vantage points participate and how often each fires — declaratively; the
// campaign engine compiles a schedule against a concrete world and injects
// the queries.
//
// Determinism contract: a schedule is pure data (no clocks, no RNG). All
// randomness an attack needs (cache-busting labels, chain choices) is
// derived by the campaign from identity-keyed streams forked per
// (event, bot, query), so the same schedule over the same world produces
// byte-identical metrics and traces at any shard count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "net/time.hpp"

namespace recwild::attack {

/// Which adversarial workload an AttackEvent injects.
enum class AttackKind : std::uint8_t {
  /// NXNSAttack (PAPERS.md): bots query fresh random names under the
  /// attacker's delegation chains; the final referral lists `fanout`
  /// glueless NS names inside the victim's domain, so every bot query
  /// makes the recursive emit up to `fanout` address fetches at the
  /// victim's authoritatives.
  Nxns,
  /// Water torture: bots query fresh random subdomains of the victim's
  /// domain directly. Every query misses the recursive's cache and lands
  /// on the victim's authoritatives (amplification 1x, but cache-proof).
  WaterTorture,
};

/// Canonical lower-snake name ("nxns", "water_torture").
[[nodiscard]] std::string_view to_string(AttackKind kind);
/// Parses to_string's output back; throws std::invalid_argument.
[[nodiscard]] AttackKind attack_kind_from_string(std::string_view name);

/// Shape of the attacker-controlled delegation infrastructure that
/// attack::make_nxns_zones materialises. `chains` independent delegation
/// chains hang off `attacker_domain`; each chain is `depth` referrals deep
/// inside attacker infrastructure and ends in a glueless delegation naming
/// `fanout` distinct nameservers inside `victim_domain`. The maximum
/// amplification a single bot query can express is therefore `fanout`
/// address fetches (before resolver-side fetch limits).
struct NxnsZoneConfig {
  std::string attacker_domain = "atk.nl";
  std::string victim_domain = "ourtestdomain.nl";
  int chains = 8;
  int fanout = 12;
  int depth = 1;

  bool operator==(const NxnsZoneConfig&) const = default;
};

/// One scheduled attack wave. Active over [start, end). The `bots` lowest
/// probe-id vantage points participate (a stable subset, so the set is
/// identical in every shard replica); each fires one attack query every
/// `interval`, phase-offset by its identity-keyed RNG.
struct AttackEvent {
  AttackKind kind = AttackKind::Nxns;
  net::SimTime start;
  net::SimTime end;
  net::Duration interval = net::Duration::seconds(2);
  int bots = 8;

  [[nodiscard]] bool active(net::SimTime now) const noexcept {
    return start <= now && now < end;
  }

  bool operator==(const AttackEvent&) const = default;
};

/// A zone layout plus an ordered collection of attack events; plain data,
/// copyable.
class AttackSchedule {
 public:
  AttackSchedule() = default;
  explicit AttackSchedule(std::vector<AttackEvent> events)
      : events_(std::move(events)) {}

  AttackSchedule& add(AttackEvent event) {
    events_.push_back(std::move(event));
    return *this;
  }

  [[nodiscard]] const NxnsZoneConfig& zone() const noexcept { return zone_; }
  [[nodiscard]] NxnsZoneConfig& zone() noexcept { return zone_; }

  [[nodiscard]] const std::vector<AttackEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  void clear() noexcept { events_.clear(); }

  /// Checks structural sanity: end > start, interval > 0 and bots >= 1 for
  /// every event; chains/fanout/depth >= 1 and non-empty domains in the
  /// zone config. Throws std::invalid_argument naming the offence.
  void validate() const;

  bool operator==(const AttackSchedule&) const = default;

 private:
  NxnsZoneConfig zone_;
  std::vector<AttackEvent> events_;
};

/// Writes the events in the repo's tab-separated discipline, one per line:
/// `kind<TAB>start_us<TAB>end_us<TAB>interval_us<TAB>bots`. The zone
/// config is programmatic (not serialised) — schedules exchange *timing*,
/// worlds own their topology.
void write_schedule(std::ostream& out, const AttackSchedule& schedule);

/// Parses write_schedule's format. Skips blank and `#` lines; throws
/// std::runtime_error naming the line number on malformed input.
[[nodiscard]] AttackSchedule read_schedule(std::istream& in);

}  // namespace recwild::attack
