// CSV export of experiment results, for plotting the figures with external
// tooling (gnuplot/matplotlib). One file per analysis; columns are
// documented in each function.
#pragma once

#include <ostream>
#include <string>

#include "experiment/analysis.hpp"
#include "experiment/production.hpp"

namespace recwild::experiment {

/// Minimal CSV writing: quotes fields containing separators/quotes.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes one row; values are escaped as needed.
  void row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with 6 significant digits.
  static std::string num(double v);

 private:
  std::ostream& out_;
};

/// Per-VP campaign observations:
/// probe_id,continent,recursive,query_index,service (empty on timeout)
void write_campaign_csv(std::ostream& out, const CampaignResult& result);

/// Per-VP hot-phase preference profile:
/// probe_id,continent,queries,favourite,favourite_fraction,
/// then fraction_<code> and rtt_<code> per service.
void write_preferences_csv(std::ostream& out, const CampaignResult& result);

/// Aggregate per-service shares: service,share,median_rtt_ms.
void write_shares_csv(std::ostream& out, const CampaignResult& result);

/// Figure-7 style rank distribution:
/// address,continent,policy,total, then share_rank1..N.
void write_production_csv(std::ostream& out, const ProductionResult& result);

}  // namespace recwild::experiment
