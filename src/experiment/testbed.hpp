// Testbed: one materialized world of the paper — Root DNS letters
// (anycast), the .nl ccTLD services, the test-domain authoritatives of a
// Table-1 combination, and the Atlas-like vantage point population — on one
// deterministic simulation.
//
// A Testbed is mutable simulation state (sockets, servers, resolver
// caches, the event loop) materialized over an immutable WorldSnapshot
// (zones, geo placement, node catalog, population plan — see world.hpp).
// Building from a TestbedConfig builds the snapshot implicitly; sharded
// engines build it once and materialize N replicas from it, each scoped to
// the vantage-point partition it simulates.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "experiment/deployments.hpp"
#include "experiment/world.hpp"
#include "fault/injector.hpp"

namespace recwild::experiment {

class Testbed {
 public:
  /// Builds the world snapshot for `config`, then materializes it in full.
  explicit Testbed(TestbedConfig config);

  /// Materializes a (possibly partition-scoped) replica of a prebuilt
  /// world. With `partition` (ascending VP indices into the world's
  /// population plan) only those vantage points — plus the forwarders and
  /// recursives they can reach — are instantiated; nullptr materializes
  /// the full population. Services, zones and the node catalog are shared
  /// with every other replica of the same snapshot.
  explicit Testbed(std::shared_ptr<const WorldSnapshot> world,
                   const std::vector<std::size_t>* partition = nullptr);

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  [[nodiscard]] net::Simulation& sim() noexcept { return sim_; }
  [[nodiscard]] net::Network& network() noexcept { return *network_; }
  /// The world's metric registry (shorthand for sim().metrics()).
  [[nodiscard]] obs::MetricRegistry& metrics() noexcept {
    return sim_.metrics();
  }
  /// The world's decision trace (shorthand for sim().trace()).
  [[nodiscard]] obs::DecisionTrace& trace() noexcept { return sim_.trace(); }
  [[nodiscard]] client::Population& population() noexcept {
    return population_;
  }
  [[nodiscard]] const TestbedConfig& config() const noexcept {
    return world_->config;
  }
  /// The immutable world this testbed materializes. Sharded engines pass
  /// it to replica constructors so the world is built exactly once.
  [[nodiscard]] const std::shared_ptr<const WorldSnapshot>& world()
      const noexcept {
    return world_;
  }

  [[nodiscard]] std::vector<anycast::AnycastService>& roots() noexcept {
    return roots_;
  }
  [[nodiscard]] std::vector<anycast::AnycastService>& nl_services() noexcept {
    return nl_;
  }
  /// One unicast service per test datacenter, in config order. The TXT
  /// payload each serves is its datacenter code ("FRA", ...).
  [[nodiscard]] std::vector<anycast::AnycastService>&
  test_services() noexcept {
    return test_;
  }
  /// The attacker-controlled authoritative (empty unless config().attack
  /// is non-empty). Serves attack.zone()'s NXNS delegation chains and is
  /// never armed with defenses — defenses are the defender's.
  [[nodiscard]] std::vector<anycast::AnycastService>&
  attacker_services() noexcept {
    return attacker_;
  }

  [[nodiscard]] const std::vector<resolver::RootHint>& hints()
      const noexcept {
    return world_->hints;
  }
  /// IPv6-plane root hints (empty unless dual_stack).
  [[nodiscard]] const std::vector<resolver::RootHint>& hints6()
      const noexcept {
    return world_->hints6;
  }
  [[nodiscard]] const dns::Name& test_domain() const noexcept {
    return world_->test_domain;
  }

  /// Index of the test service whose TXT payload is `code`; -1 if unknown.
  [[nodiscard]] int test_index_of(const std::string& code) const;

  /// The node on which a recursive with address `addr` runs, or
  /// kInvalidNode. Used by analyses that need recursive->authoritative RTT.
  [[nodiscard]] net::NodeId recursive_node(net::IpAddress addr) const;

  /// The armed fault injector, or nullptr when config().faults is empty.
  [[nodiscard]] fault::FaultInjector* injector() noexcept {
    return injector_.get();
  }

 private:
  void materialize_services();
  void arm_defenses();
  void apply_drains();

  std::shared_ptr<const WorldSnapshot> world_;
  net::Simulation sim_;
  std::unique_ptr<net::Network> network_;
  std::vector<anycast::AnycastService> roots_;
  std::vector<anycast::AnycastService> nl_;
  std::vector<anycast::AnycastService> test_;
  std::vector<anycast::AnycastService> attacker_;
  client::Population population_;
  /// Declared last: destroyed first, so it disarms (clearing the network
  /// hook and the servers' fault providers) while both still exist.
  std::unique_ptr<fault::FaultInjector> injector_;
};

}  // namespace recwild::experiment
