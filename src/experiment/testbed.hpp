// Testbed: assembles the whole simulated world of the paper —
// Root DNS letters (anycast), the .nl ccTLD services, the test-domain
// authoritatives of a Table-1 combination, and the Atlas-like vantage
// point population — on one deterministic simulation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "anycast/service.hpp"
#include "attack/schedule.hpp"
#include "authns/rrl.hpp"
#include "client/population.hpp"
#include "experiment/deployments.hpp"
#include "experiment/zones.hpp"
#include "fault/injector.hpp"
#include "fault/schedule.hpp"
#include "net/network.hpp"

namespace recwild::experiment {

struct TestbedConfig {
  std::uint64_t seed = 42;
  net::LatencyParams latency{};
  client::PopulationConfig population{};
  /// Build the Atlas-like population (disable for server-only tests).
  bool build_population = true;
  /// Build the .nl services (required when a test domain is given).
  bool build_nl = true;
  /// Use the all-anycast .nl variant (§7 recommendation) instead of the
  /// paper's 5-unicast + 3-anycast deployment.
  bool all_anycast_nl = false;
  /// Datacenter codes for the test-domain authoritatives (a Table-1
  /// combination); empty = no test domain.
  std::vector<std::string> test_sites{};
  std::string test_domain = "ourtestdomain.nl";
  dns::Ttl txt_ttl = 5;
  /// Dual-stack: every service additionally gets an IPv6-plane address,
  /// published as AAAA glue. Combine with PopulationConfig::ipv6_fraction
  /// or resolver AddressFamily to exercise v6 resolution (paper §3.1
  /// verified its findings hold over IPv6).
  bool dual_stack = false;
  /// Enables the simulation's obs::DecisionTrace from construction on.
  /// Replica worlds built from config() inherit it, so sharded campaign
  /// runs trace exactly what the serial run traces. Metrics are always on.
  bool trace_decisions = false;
  /// Fault schedule armed over the world at construction (src/fault). An
  /// empty schedule costs nothing: no injector is built, no hook installed.
  /// Replica worlds built from config() arm the identical schedule.
  fault::FaultSchedule faults{};

  // ---- Adversarial workloads & defenses (src/attack, docs/ATTACKS.md) ----

  /// Attack schedule the campaign engine replays. When non-empty, the
  /// testbed builds the attacker-controlled authoritative (serving the
  /// NXNS delegation chains of attack.zone()), delegates its domain from
  /// .nl, and marks the test-domain servers as victims. Empty costs
  /// nothing; replica worlds built from config() inherit it.
  attack::AttackSchedule attack{};
  /// Site hosting the attacker-controlled authoritative.
  std::string attack_site = "AMS";
  /// Response-rate limiting armed on every *defender* authoritative
  /// (roots, .nl, test domain — never the attacker's). rate 0 = off.
  authns::RrlConfig rrl{};
  /// Referral-fanout cap on every authoritative, the attacker's included
  /// (0 = unlimited). This is the engine-wide knob: it models a managed-DNS
  /// platform capping referral work for all hosted zones — the only
  /// placement where a server-side cap can trim the NXNS referral itself
  /// (docs/ATTACKS.md).
  int referral_fanout_cap = 0;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  [[nodiscard]] net::Simulation& sim() noexcept { return sim_; }
  [[nodiscard]] net::Network& network() noexcept { return *network_; }
  /// The world's metric registry (shorthand for sim().metrics()).
  [[nodiscard]] obs::MetricRegistry& metrics() noexcept {
    return sim_.metrics();
  }
  /// The world's decision trace (shorthand for sim().trace()).
  [[nodiscard]] obs::DecisionTrace& trace() noexcept { return sim_.trace(); }
  [[nodiscard]] client::Population& population() noexcept {
    return population_;
  }
  [[nodiscard]] const TestbedConfig& config() const noexcept {
    return config_;
  }

  [[nodiscard]] std::vector<anycast::AnycastService>& roots() noexcept {
    return roots_;
  }
  [[nodiscard]] std::vector<anycast::AnycastService>& nl_services() noexcept {
    return nl_;
  }
  /// One unicast service per test datacenter, in config order. The TXT
  /// payload each serves is its datacenter code ("FRA", ...).
  [[nodiscard]] std::vector<anycast::AnycastService>&
  test_services() noexcept {
    return test_;
  }
  /// The attacker-controlled authoritative (empty unless config().attack
  /// is non-empty). Serves attack.zone()'s NXNS delegation chains and is
  /// never armed with defenses — defenses are the defender's.
  [[nodiscard]] std::vector<anycast::AnycastService>&
  attacker_services() noexcept {
    return attacker_;
  }

  [[nodiscard]] const std::vector<resolver::RootHint>& hints()
      const noexcept {
    return hints_;
  }
  /// IPv6-plane root hints (empty unless dual_stack).
  [[nodiscard]] const std::vector<resolver::RootHint>& hints6()
      const noexcept {
    return hints6_;
  }
  [[nodiscard]] const dns::Name& test_domain() const noexcept {
    return test_domain_;
  }

  /// Index of the test service whose TXT payload is `code`; -1 if unknown.
  [[nodiscard]] int test_index_of(const std::string& code) const;

  /// The node on which a recursive with address `addr` runs, or
  /// kInvalidNode. Used by analyses that need recursive->authoritative RTT.
  [[nodiscard]] net::NodeId recursive_node(net::IpAddress addr) const;

  /// The armed fault injector, or nullptr when config().faults is empty.
  [[nodiscard]] fault::FaultInjector* injector() noexcept {
    return injector_.get();
  }

 private:
  void build_roots();
  void build_nl();
  void build_test_domain();
  void build_attacker();
  void arm_defenses();
  void assemble_zones();

  TestbedConfig config_;
  net::Simulation sim_;
  std::unique_ptr<net::Network> network_;
  std::vector<anycast::AnycastService> roots_;
  std::vector<anycast::AnycastService> nl_;
  std::vector<anycast::AnycastService> test_;
  std::vector<anycast::AnycastService> attacker_;
  std::vector<NsHost> attacker_ns_;
  std::vector<resolver::RootHint> hints_;
  std::vector<resolver::RootHint> hints6_;
  dns::Name test_domain_;
  std::vector<NsHost> root_apex_;
  std::vector<NsHost> nl_apex_;
  std::vector<NsHost> test_ns_;
  client::Population population_;
  /// Declared last: destroyed first, so it disarms (clearing the network
  /// hook and the servers' fault providers) while both still exist.
  std::unique_ptr<fault::FaultInjector> injector_;
};

}  // namespace recwild::experiment
