#include "experiment/scan.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "experiment/sharding.hpp"
#include "obs/names.hpp"

namespace recwild::experiment {

namespace {

using WallClock = std::chrono::steady_clock;

double wall_seconds(WallClock::duration d) {
  return std::chrono::duration<double>(d).count();
}

/// The name scanned at global index `i`: generated cache-busting label
/// under the test domain, or the explicit list entry.
dns::Name name_of(const ScanConfig& config, const dns::Name& test_domain,
                  std::uint64_t i) {
  if (!config.name_list.empty()) {
    return dns::Name::parse(config.name_list[static_cast<std::size_t>(i)]);
  }
  return test_domain.prefixed("s" + std::to_string(i));
}

std::uint64_t total_names(const ScanConfig& config) {
  return config.name_list.empty()
             ? static_cast<std::uint64_t>(config.names)
             : static_cast<std::uint64_t>(config.name_list.size());
}

/// Names owned by vantage point `v` under the identity assignment
/// i -> VP (i mod vp_count): count without enumerating.
std::uint64_t names_owned(std::uint64_t total, std::size_t vp_count,
                          std::size_t v) {
  const std::uint64_t base = total / vp_count;
  return base + (static_cast<std::uint64_t>(v) < total % vp_count ? 1 : 0);
}

/// What one shard accumulates; folded into ScanResult by the caller.
struct ShardOutput {
  std::vector<obs::ScanRow> rows;  // tagged with global indices, any order
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  net::SimTime last_completion = net::SimTime::origin();
};

/// Per-VP pipeline state. Raw pointers into the world are stable for the
/// run; the struct itself lives in a vector sized before scheduling.
struct VpScan {
  resolver::RecursiveResolver* resolver = nullptr;
  std::size_t vp_index = 0;   ///< probe id (identity, not rank)
  std::uint64_t next = 0;     ///< next owned-name ordinal to issue
  std::uint64_t owned = 0;    ///< total names this VP owns
};

/// Schedules and runs the scan for the VPs in `vp_indices` (ascending) on
/// `world`. Every name is assigned by identity (global index mod total VP
/// count), every start phase is keyed by probe id, and each VP's pipeline
/// advances only on its own completions — so the rows a VP produces depend
/// only on the seed and the VPs sharing its recursive, never on the
/// partition.
ShardOutput run_scan_shard(Testbed& world, const ScanConfig& config,
                           const std::vector<std::size_t>& vp_indices) {
  auto& sim = world.sim();
  auto& pop = world.population();
  const std::size_t vp_count = world.world()->population.vp_count();
  const std::uint64_t total = total_names(config);
  const dns::Name domain = world.test_domain();

  obs::MetricRegistry& m = sim.metrics();
  obs::Counter* issued_ctr = &m.counter(obs::names::kScanNamesIssued);
  obs::Counter* completed_ctr = &m.counter(obs::names::kScanNamesCompleted);

  auto out = std::make_shared<ShardOutput>();
  if (config.collect_rows) {
    std::uint64_t owned_total = 0;
    for (const std::size_t v : vp_indices) {
      owned_total += names_owned(total, vp_count, v);
    }
    out->rows.reserve(static_cast<std::size_t>(owned_total));
  }

  auto states = std::make_shared<std::vector<VpScan>>();
  states->reserve(vp_indices.size());
  for (const std::size_t v : vp_indices) {
    client::VantagePoint* vp = pop.by_probe(v);
    if (vp == nullptr) {
      throw std::logic_error{
          "run_scan_shard: VP not materialized on this world"};
    }
    if (vp->stub->recursives().empty()) continue;
    const client::RecursiveInfo* info =
        pop.recursive_by_address(vp->stub->recursives().front());
    if (info == nullptr || info->resolver == nullptr) continue;
    VpScan st;
    st.resolver = info->resolver;
    st.vp_index = v;
    st.owned = names_owned(total, vp_count, v);
    if (st.owned > 0) states->push_back(st);
  }

  // issue_next is recursive through the resolver callback; the
  // shared_ptr-captured state keeps everything alive until the last
  // completion even if the caller's frame unwinds first.
  const std::size_t window = std::max<std::size_t>(1, config.per_vp_window);
  auto issue_next = std::make_shared<std::function<void(VpScan*)>>();
  *issue_next = [&world, &config, issued_ctr, completed_ctr, out, domain,
                 vp_count, issue_next](VpScan* st) {
    if (st->next >= st->owned) return;
    // Owned-name ordinal k -> global index: k * vp_count + vp_index.
    const std::uint64_t index =
        st->next * static_cast<std::uint64_t>(vp_count) +
        static_cast<std::uint64_t>(st->vp_index);
    ++st->next;
    const dns::Name qname = name_of(config, domain, index);
    issued_ctr->add(1, world.sim().now());
    ++out->issued;
    const bool collect = config.collect_rows;
    st->resolver->resolve(
        dns::Question{qname, config.qtype, dns::RRClass::IN},
        [&world, completed_ctr, out, st, index, qname, collect,
         issue_next](const resolver::ResolveOutcome& outcome) {
          const net::SimTime now = world.sim().now();
          completed_ctr->add(1, now);
          ++out->completed;
          if (out->last_completion < now) out->last_completion = now;
          if (collect) {
            obs::ScanRow row;
            row.index = index;
            row.qname = qname.to_string();
            row.rcode = std::string{dns::to_string(outcome.rcode)};
            for (const auto& rr : outcome.answers) {
              if (rr.type() == dns::RRType::TXT) {
                const auto& txt = std::get<dns::TxtRdata>(rr.rdata);
                row.answers.insert(row.answers.end(), txt.strings.begin(),
                                   txt.strings.end());
              } else {
                row.answers.push_back(dns::rdata_to_string(rr.rdata));
              }
            }
            row.chain = static_cast<std::uint32_t>(outcome.answers.size());
            row.sim_ms = outcome.elapsed.ms();
            row.upstream =
                static_cast<std::uint32_t>(outcome.upstream_queries);
            row.cache_hit = outcome.upstream_queries == 0;
            out->rows.push_back(std::move(row));
          }
          (*issue_next)(st);
        });
  };

  // Prime each VP's window at an identity-keyed start phase. The initial
  // issues happen inside one scheduled event per VP; afterwards the
  // pipeline is completion-driven.
  const stats::Rng scan_rng = sim.rng().fork("scan");
  for (VpScan& st : *states) {
    const net::Duration phase =
        config.phase_jitter
            ? net::Duration::millis(
                  scan_rng.fork(st.vp_index).uniform(0.0, 1000.0))
            : net::Duration::zero();
    VpScan* stp = &st;
    sim.at(net::SimTime::origin() + phase, [stp, window, issue_next] {
      for (std::size_t k = 0; k < window && stp->next < stp->owned; ++k) {
        (*issue_next)(stp);
      }
    });
  }

  sim.run();
  return std::move(*out);
}

}  // namespace

ScanResult run_scan(Testbed& testbed, const ScanConfig& config) {
  const auto& vps = testbed.population().vps();
  const std::size_t vp_count = testbed.world()->population.vp_count();
  if (vp_count == 0) {
    throw std::invalid_argument{"run_scan: testbed has no population"};
  }
  if (config.name_list.empty() && testbed.test_domain().label_count() == 0) {
    throw std::invalid_argument{
        "run_scan: generated mode needs a test domain (test_sites)"};
  }
  const std::uint64_t total = total_names(config);

  ScanRunStats local_stats;
  ScanRunStats& stats =
      config.run_stats != nullptr ? *config.run_stats : local_stats;
  stats = ScanRunStats{};

  ScanResult result;

  std::size_t shards =
      config.shards != 0
          ? config.shards
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  shards = std::min(shards, std::max<std::size_t>(1, vps.size()));

  auto finalize = [&](std::vector<ShardOutput> outputs, double run_wall_s) {
    const auto t_merge = WallClock::now();
    net::SimTime last = net::SimTime::origin();
    for (ShardOutput& o : outputs) {
      result.issued += o.issued;
      result.completed += o.completed;
      if (last < o.last_completion) last = o.last_completion;
    }
    if (config.collect_rows) {
      // Merge by global index: every name completes exactly once, so the
      // index-ordered list — and its JSONL bytes — is partition-free.
      result.rows.resize(static_cast<std::size_t>(total));
      for (ShardOutput& o : outputs) {
        for (obs::ScanRow& row : o.rows) {
          result.rows[static_cast<std::size_t>(row.index)] = std::move(row);
        }
      }
    }
    result.wall_s = run_wall_s;
    result.queries_per_s =
        run_wall_s > 0.0 ? static_cast<double>(result.completed) / run_wall_s
                         : 0.0;
    const double sim_s = (last - net::SimTime::origin()).ms() / 1000.0;
    result.sim_end_s = sim_s;
    result.sim_queries_per_s =
        sim_s > 0.0 ? static_cast<double>(result.completed) / sim_s : 0.0;
    // Host-wall throughput as a gauge on the caller's world: point-in-time
    // level of ONE run, excluded from merge-safe exports by construction.
    testbed.metrics()
        .gauge(obs::names::kScanQps)
        .set(result.queries_per_s, testbed.sim().now());
    result.metrics = testbed.sim().metrics().snapshot();
    stats.merge_s = wall_seconds(WallClock::now() - t_merge);
  };

  if (shards <= 1) {
    std::vector<std::size_t> all;
    all.reserve(vps.size());
    for (const auto& vp : vps) all.push_back(vp.probe_id);
    const auto t0 = WallClock::now();
    std::vector<ShardOutput> outputs;
    outputs.push_back(run_scan_shard(testbed, config, all));
    stats.run_s = wall_seconds(WallClock::now() - t0);
    finalize(std::move(outputs), stats.run_s);
    return result;
  }

  const auto t_partition = WallClock::now();
  const auto& groups = testbed.world()->vp_groups;
  std::vector<double> weights(groups.size(), 0.0);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const std::size_t v : groups[g]) {
      weights[g] += static_cast<double>(names_owned(total, vp_count, v));
    }
  }
  const auto parts = pack_groups(groups, weights, shards);
  stats.partition_s = wall_seconds(WallClock::now() - t_partition);

  std::vector<ShardOutput> outputs(parts.size());
  obs::MetricRegistry accumulator;
  std::mutex accumulator_mu;
  std::vector<std::vector<obs::TraceEvent>> shard_events(parts.size());
  std::exception_ptr error;
  std::mutex error_mu;
  const auto t_run = WallClock::now();
  std::vector<std::thread> workers;
  workers.reserve(parts.size() - 1);
  for (std::size_t i = 1; i < parts.size(); ++i) {
    workers.emplace_back([&testbed, &config, &parts, &outputs, &accumulator,
                          &accumulator_mu, &shard_events, &error, &error_mu,
                          i] {
      try {
        Testbed replica{testbed.world(), &parts[i]};
        replica.sim().sync_obs();
        const obs::MetricsSnapshot baseline =
            replica.sim().metrics().snapshot();
        const std::size_t trace_base = replica.sim().trace().size();
        outputs[i] = run_scan_shard(replica, config, parts[i]);
        obs::MetricsSnapshot delta =
            replica.sim().metrics().snapshot().delta_since(baseline);
        delta.compact();
        {
          const std::scoped_lock lock{accumulator_mu};
          accumulator.merge_sum(delta);
        }
        const auto& events = replica.sim().trace().events();
        shard_events[i].assign(events.begin() + trace_base, events.end());
      } catch (...) {
        const std::scoped_lock lock{error_mu};
        if (!error) error = std::current_exception();
      }
    });
  }
  try {
    outputs[0] = run_scan_shard(testbed, config, parts[0]);
  } catch (...) {
    const std::scoped_lock lock{error_mu};
    if (!error) error = std::current_exception();
  }
  for (auto& w : workers) w.join();
  stats.run_s = wall_seconds(WallClock::now() - t_run);
  if (error) std::rethrow_exception(error);

  testbed.sim().metrics().merge_sum(accumulator.snapshot());
  for (std::size_t i = 1; i < parts.size(); ++i) {
    for (const auto& event : shard_events[i]) {
      testbed.sim().trace().record(event);
    }
  }
  finalize(std::move(outputs), stats.run_s);
  return result;
}

}  // namespace recwild::experiment
