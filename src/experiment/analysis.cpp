#include "experiment/analysis.hpp"

#include <algorithm>
#include <set>

namespace recwild::experiment {

namespace {

/// Index of the first query after which the VP has seen every service;
/// -1 when it never covers. Timeouts don't count as sightings.
int cover_index(const std::vector<int>& sequence, std::size_t services) {
  std::set<int> seen;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    if (sequence[i] >= 0) seen.insert(sequence[i]);
    if (seen.size() == services) return static_cast<int>(i);
  }
  return -1;
}

/// Builds the hot-cache per-VP preference profile, or nullopt if the VP
/// never covers or has no hot-phase queries.
std::optional<VpPreference> profile_of(const VpObservation& vp,
                                       std::size_t services) {
  const int cov = cover_index(vp.sequence, services);
  if (cov < 0) return std::nullopt;
  std::vector<std::size_t> counts(services, 0);
  std::size_t total = 0;
  // Hot phase: strictly after the covering query (the paper starts once
  // every authoritative has been seen at least once).
  for (std::size_t i = static_cast<std::size_t>(cov) + 1;
       i < vp.sequence.size(); ++i) {
    if (vp.sequence[i] >= 0) {
      ++counts[static_cast<std::size_t>(vp.sequence[i])];
      ++total;
    }
  }
  if (total == 0) return std::nullopt;
  VpPreference p;
  p.probe_id = vp.probe_id;
  p.continent = vp.continent;
  p.rtt_ms = vp.rtt_ms;
  p.queries = total;
  p.fraction.resize(services);
  for (std::size_t s = 0; s < services; ++s) {
    p.fraction[s] =
        static_cast<double>(counts[s]) / static_cast<double>(total);
    if (p.fraction[s] > p.favourite_fraction) {
      p.favourite_fraction = p.fraction[s];
      p.favourite = static_cast<int>(s);
    }
  }
  return p;
}

}  // namespace

CoverageStats analyze_coverage(const CampaignResult& result) {
  CoverageStats out;
  const std::size_t services = result.service_count();
  std::vector<double> to_cover;
  for (const auto& vp : result.vps) {
    const bool any_answer =
        std::any_of(vp.sequence.begin(), vp.sequence.end(),
                    [](int s) { return s >= 0; });
    if (!any_answer) continue;
    ++out.vps_considered;
    const int cov = cover_index(vp.sequence, services);
    if (cov >= 0) {
      ++out.vps_covering;
      // "Queries after the first one": covering at query index k means k
      // additional queries were needed.
      to_cover.push_back(static_cast<double>(cov));
    }
  }
  out.covering_fraction =
      stats::share(out.vps_covering, out.vps_considered);
  out.queries_to_cover = stats::box_stats(to_cover);
  return out;
}

ShareStats analyze_shares(const CampaignResult& result) {
  ShareStats out;
  out.codes = result.service_codes;
  const std::size_t services = result.service_count();
  std::vector<std::size_t> counts(services, 0);
  std::vector<stats::Sample> rtts(services);
  for (const auto& vp : result.vps) {
    const auto profile = profile_of(vp, services);
    if (!profile) continue;
    for (std::size_t s = 0; s < services; ++s) {
      counts[s] += static_cast<std::size_t>(
          profile->fraction[s] * static_cast<double>(profile->queries) +
          0.5);
      rtts[s].add(vp.rtt_ms[s]);
    }
  }
  std::size_t total = 0;
  for (const auto c : counts) total += c;
  out.total_queries = total;
  out.query_share.resize(services);
  out.median_rtt_ms.resize(services);
  for (std::size_t s = 0; s < services; ++s) {
    out.query_share[s] = stats::share(counts[s], total);
    out.median_rtt_ms[s] = rtts[s].empty() ? 0.0 : rtts[s].median();
  }
  return out;
}

PreferenceStats analyze_preferences(const CampaignResult& result,
                                    double rtt_diff_threshold_ms) {
  PreferenceStats out;
  const std::size_t services = result.service_count();
  for (const auto& vp : result.vps) {
    if (auto p = profile_of(vp, services)) out.vps.push_back(std::move(*p));
  }

  std::size_t weak = 0;
  std::size_t strong = 0;
  std::size_t rtt_eligible = 0;
  std::size_t rtt_following = 0;
  for (const auto& p : out.vps) {
    if (p.favourite_fraction >= kWeakPreference) ++weak;
    if (p.favourite_fraction >= kStrongPreference) ++strong;

    // RTT-based test: only VPs whose fastest and slowest authoritative
    // differ by at least the threshold (the paper's 50 ms rule).
    const auto [lo, hi] =
        std::minmax_element(p.rtt_ms.begin(), p.rtt_ms.end());
    if (*hi - *lo >= rtt_diff_threshold_ms) {
      ++rtt_eligible;
      const auto fastest = static_cast<int>(lo - p.rtt_ms.begin());
      if (p.favourite == fastest &&
          p.favourite_fraction >= kWeakPreference) {
        ++rtt_following;
      }
    }
  }
  out.weak_fraction = stats::share(weak, out.vps.size());
  out.strong_fraction = stats::share(strong, out.vps.size());
  out.rtt_eligible_vps = rtt_eligible;
  out.rtt_following_fraction = stats::share(rtt_following, rtt_eligible);

  // Per-continent aggregation (Table 2).
  for (const net::Continent c : net::all_continents()) {
    ContinentPreference cp;
    cp.continent = c;
    std::vector<double> counts(services, 0.0);
    std::vector<stats::Sample> rtts(services);
    double total = 0;
    std::size_t cweak = 0;
    std::size_t cstrong = 0;
    for (const auto& p : out.vps) {
      if (p.continent != c) continue;
      ++cp.vp_count;
      if (p.favourite_fraction >= kWeakPreference) ++cweak;
      if (p.favourite_fraction >= kStrongPreference) ++cstrong;
      for (std::size_t s = 0; s < services; ++s) {
        counts[s] += p.fraction[s] * static_cast<double>(p.queries);
        rtts[s].add(p.rtt_ms[s]);
      }
      total += static_cast<double>(p.queries);
    }
    cp.query_share.resize(services, 0.0);
    cp.median_rtt_ms.resize(services, 0.0);
    for (std::size_t s = 0; s < services; ++s) {
      cp.query_share[s] = total > 0 ? counts[s] / total : 0.0;
      cp.median_rtt_ms[s] = rtts[s].empty() ? 0.0 : rtts[s].median();
    }
    cp.weak_fraction = stats::share(cweak, cp.vp_count);
    cp.strong_fraction = stats::share(cstrong, cp.vp_count);
    out.continents.push_back(std::move(cp));
  }
  return out;
}

std::vector<RttSensitivityPoint> analyze_rtt_sensitivity(
    const CampaignResult& result) {
  const PreferenceStats prefs = analyze_preferences(result);
  std::vector<RttSensitivityPoint> out;
  for (const auto& cp : prefs.continents) {
    if (cp.vp_count == 0) continue;
    for (std::size_t s = 0; s < result.service_count(); ++s) {
      RttSensitivityPoint pt;
      pt.continent = cp.continent;
      pt.code = result.service_codes[s];
      pt.median_rtt_ms = cp.median_rtt_ms[s];
      pt.query_fraction = cp.query_share[s];
      pt.vp_count = cp.vp_count;
      out.push_back(std::move(pt));
    }
  }
  return out;
}

std::vector<std::pair<net::Continent, double>> fraction_to_service(
    const CampaignResult& result, std::size_t service_index) {
  const PreferenceStats prefs = analyze_preferences(result);
  std::vector<std::pair<net::Continent, double>> out;
  for (const auto& cp : prefs.continents) {
    if (cp.vp_count == 0) continue;
    out.emplace_back(cp.continent, cp.query_share.at(service_index));
  }
  return out;
}

}  // namespace recwild::experiment
