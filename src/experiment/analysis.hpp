// Analyses over campaign results — one function per paper figure/table.
//
// Terminology follows the paper:
//  * a VP "covers" the deployment when it has received answers from every
//    test authoritative at least once (hot-cache condition, §4.2);
//  * "weak preference": a VP sends >= 60% of its queries to one
//    authoritative; "strong preference": >= 90% (§4.3);
//  * "RTT-based": among VPs whose RTT difference between authoritatives is
//    at least 50 ms, those that prefer the faster one (§4.3).
#pragma once

#include <optional>

#include "experiment/campaign.hpp"
#include "stats/summary.hpp"

namespace recwild::experiment {

inline constexpr double kWeakPreference = 0.60;
inline constexpr double kStrongPreference = 0.90;
inline constexpr double kRttDiffThresholdMs = 50.0;

/// Figure 2: how many queries after the first until a VP has seen all
/// authoritatives.
struct CoverageStats {
  std::size_t vps_considered = 0;   // VPs with at least one answer
  std::size_t vps_covering = 0;     // VPs that eventually saw all
  double covering_fraction = 0.0;   // the x-axis percentage of Fig 2
  std::optional<stats::BoxStats> queries_to_cover;  // Fig 2 box/whiskers
};
CoverageStats analyze_coverage(const CampaignResult& result);

/// Figure 3: per-authoritative query share (hot-cache) and median RTT.
struct ShareStats {
  std::vector<std::string> codes;
  std::vector<double> query_share;   // sums to ~1 over services
  std::vector<double> median_rtt_ms; // median over covering VPs
  std::size_t total_queries = 0;
};
ShareStats analyze_shares(const CampaignResult& result);

/// Per-VP preference profile (hot-cache phase).
struct VpPreference {
  std::size_t probe_id = 0;
  net::Continent continent = net::Continent::Europe;
  std::vector<double> fraction;  // per service; sums to 1
  std::vector<double> rtt_ms;    // per service
  std::size_t queries = 0;
  int favourite = -1;            // argmax fraction
  double favourite_fraction = 0.0;
};

/// Figure 4 + Table 2 inputs.
struct ContinentPreference {
  net::Continent continent;
  std::size_t vp_count = 0;
  std::vector<double> query_share;    // Table 2 "%" row
  std::vector<double> median_rtt_ms;  // Table 2 "RTT" row
  double weak_fraction = 0.0;
  double strong_fraction = 0.0;
};

struct PreferenceStats {
  std::vector<VpPreference> vps;  // covering VPs only
  std::vector<ContinentPreference> continents;
  double weak_fraction = 0.0;    // across all covering VPs
  double strong_fraction = 0.0;
  /// Among VPs with >= threshold RTT difference: fraction whose favourite
  /// is also the fastest authoritative.
  double rtt_following_fraction = 0.0;
  std::size_t rtt_eligible_vps = 0;
};
PreferenceStats analyze_preferences(
    const CampaignResult& result,
    double rtt_diff_threshold_ms = kRttDiffThresholdMs);

/// Figure 5: per (continent, authoritative): the median RTT VPs see to it
/// and the fraction of the continent's queries it receives.
struct RttSensitivityPoint {
  net::Continent continent;
  std::string code;
  double median_rtt_ms = 0.0;
  double query_fraction = 0.0;
  std::size_t vp_count = 0;
};
std::vector<RttSensitivityPoint> analyze_rtt_sensitivity(
    const CampaignResult& result);

/// Figure 6 helper: fraction of (hot-cache) queries going to service
/// `service_index`, per continent.
std::vector<std::pair<net::Continent, double>> fraction_to_service(
    const CampaignResult& result, std::size_t service_index);

}  // namespace recwild::experiment
