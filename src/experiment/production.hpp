// Production traffic synthesis — the stand-in for the paper's passive
// datasets: a DITL-style hour at the Root DNS letters and an ENTRADA-style
// hour at the .nl authoritatives (§3.2, §5, Figure 7).
//
// A population of busy recursives (no Atlas probes involved) issues
// cache-defeating lookups at heavy-tailed per-recursive rates for an hour;
// the analysis then reads the *authoritative-side* query logs, mirrors the
// paper's ">= 250 queries" filter, and computes the per-recursive
// distribution of queries across the observed services.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "experiment/testbed.hpp"
#include "stats/summary.hpp"

namespace recwild::experiment {

enum class ProductionTarget : unsigned char {
  Root,  // junk TLD lookups -> root letters (Figure 7 top)
  Nl,    // junk .nl lookups -> .nl services (Figure 7 bottom)
};

struct ProductionConfig {
  ProductionTarget target = ProductionTarget::Root;
  std::size_t recursives = 400;
  double duration_hours = 1.0;
  /// Per-recursive hourly volume ~ LogNormal(mu, sigma).
  double volume_mu = 6.2;     // median ~ 490 queries/hour
  double volume_sigma = 0.9;
  /// The paper's filter: recursives with at least this many queries.
  std::size_t min_queries = 250;
  /// Production traffic skews differently from the Atlas population: the
  /// heavy hitters include many forwarders and appliances. The paper sees
  /// ~20% of busy recursives sticking to a single root letter, so the
  /// default mixture carries more sticky/static behaviour than wild().
  resolver::PolicyMixture mixture{{
      {resolver::PolicyKind::BindSrtt, 0.50},
      {resolver::PolicyKind::UnboundBand, 0.05},
      {resolver::PolicyKind::PowerDnsFactor, 0.10},
      {resolver::PolicyKind::UniformRandom, 0.04},
      {resolver::PolicyKind::RoundRobin, 0.03},
      {resolver::PolicyKind::StickyFirst, 0.28},
  }};
  /// Production recursives have been running for a long time: their
  /// infrastructure caches are warm at the start of the measured hour (the
  /// paper: "we cannot clear the client caches, and most recursives have
  /// prior queries to root letters", §5).
  bool warm_start = true;
  /// BIND ages unchosen servers slowly in steady state; the faster the
  /// decay, the more often distant letters get re-probed.
  double bind_decay = 0.998;
  /// Fraction of (recursive, letter) pairs that are unreachable — routing
  /// problems, filtering, v6-only — so some recursives can never reach
  /// certain letters within the hour.
  double unreachable_fraction = 0.15;
  /// Traffic-weighted source continents (not the Atlas skew).
  double weight_af = 0.03;
  double weight_as = 0.20;
  double weight_eu = 0.34;
  double weight_na = 0.31;
  double weight_oc = 0.05;
  double weight_sa = 0.07;
  /// Worker threads. 1 = serial on the caller's testbed; 0 = one per
  /// hardware thread. Sources are independent recursives with per-source
  /// random streams, so the merged server-side logs — and everything the
  /// analysis derives from them — are identical for every shard count
  /// (the testbed must be freshly built for shards > 1, which replays on
  /// replicas built from Testbed::config()).
  std::size_t shards = 1;
};

/// One qualifying recursive, as reconstructed from server-side logs.
struct RecursiveTraffic {
  net::IpAddress address;
  net::Continent continent = net::Continent::Europe;
  net::NodeId node = net::kInvalidNode;
  resolver::PolicyKind policy = resolver::PolicyKind::BindSrtt;
  std::uint64_t total = 0;
  std::vector<std::uint64_t> per_service;  // aligned with service_labels
};

struct ProductionResult {
  std::vector<std::string> service_labels;  // observed services only
  std::vector<RecursiveTraffic> recursives; // >= min_queries only
  std::size_t sources_total = 0;            // all simulated recursives
  /// Caller-registry snapshot after the run, replica-shard deltas merged;
  /// MergeSafe JSON is byte-identical for every shard count.
  obs::MetricsSnapshot metrics;

  /// Figure 7 aggregates.
  std::vector<double> mean_rank_share;   // mean share of 1st/2nd/... choice
  std::vector<double> fraction_querying; // [n-1] = frac querying exactly n
  [[nodiscard]] double fraction_single() const {
    return fraction_querying.empty() ? 0.0 : fraction_querying.front();
  }
  [[nodiscard]] double fraction_at_least(std::size_t n) const;
  [[nodiscard]] double fraction_all() const {
    return fraction_querying.empty() ? 0.0 : fraction_querying.back();
  }
};

/// Runs the synthetic production hour on `testbed` (which must have been
/// built without a VP population) and analyzes the authoritative logs.
///
/// For Root, the observed services are the 10 letters of DITL-2017
/// (B, G and L were missing from the dataset); for Nl, 4 of the 8 services
/// (the paper captures 4 .nl authoritatives).
ProductionResult run_production(Testbed& testbed,
                                const ProductionConfig& config);

/// §7 deployment-latency experiment: per-continent query-weighted RTT from
/// qualifying recursives to the .nl service that actually answered them
/// (anycast catchments included).
struct LatencyByContinent {
  net::Continent continent;
  std::size_t queries = 0;
  double median_ms = 0.0;
  double p90_ms = 0.0;
  double worst_ms = 0.0;
};
struct DeploymentLatency {
  std::vector<LatencyByContinent> continents;
  double overall_median_ms = 0.0;
  double overall_p90_ms = 0.0;
  double overall_worst_ms = 0.0;
};
DeploymentLatency analyze_nl_latency(Testbed& testbed,
                                     const ProductionResult& result);

}  // namespace recwild::experiment
