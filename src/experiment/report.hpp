// Small terminal-report helpers shared by the bench binaries: each bench
// prints the rows/series of one paper table or figure.
#pragma once

#include <cstdio>
#include <string>

#include "stats/summary.hpp"

namespace recwild::experiment::report {

/// "96.0%" style percentage.
std::string pct(double fraction, int precision = 1);

/// "51.3 ms" style value.
std::string ms(double value, int precision = 1);

/// An ASCII bar of `width * fraction` characters (for figure sketches).
std::string bar(double fraction, std::size_t width = 40);

/// Prints a boxed section header to stdout.
void header(const std::string& title);

/// "p10/p25/p50/p75/p90" one-liner for Figure-2-style boxplots.
std::string box(const stats::BoxStats& b, int precision = 1);

}  // namespace recwild::experiment::report
