// Deployment specifications from the paper.
//
//  * Table 1: the seven authoritative combinations (2A..4B) deployed for
//    the testbed measurements, identified by AWS datacenter airport codes.
//  * The Root DNS: 13 letters, each an anycast service with its own
//    address; site counts follow the 2017 shape (a few letters with many
//    sites, some with few), scaled down for simulation cost.
//  * The .nl ccTLD as of the paper (§7): 8 authoritative services — 5
//    unicast in the Netherlands and 3 anycast worldwide.
#pragma once

#include <string>
#include <vector>

namespace recwild::experiment {

/// One Table-1 row: combination id and the datacenters hosting one
/// unicast authoritative each.
struct AuthCombination {
  std::string id;                  // "2A" .. "4B"
  std::vector<std::string> sites;  // airport codes
};

/// All seven combinations of Table 1.
std::vector<AuthCombination> table1_combinations();

/// Looks up a combination by id ("2C"); throws std::invalid_argument.
AuthCombination combination(const std::string& id);

/// An anycast service blueprint: a name and its site codes.
struct ServiceSpec {
  std::string label;                   // "a-root", "nl-anycast-1", ...
  std::vector<std::string> site_codes; // 1 => unicast
};

/// The 13 root letters. Site lists reproduce the *shape* of the 2017 root:
/// site counts differ per letter by an order of magnitude and mix regional
/// and global presence.
std::vector<ServiceSpec> root_letter_specs();

/// The 8 .nl services: 5 unicast (Netherlands) + 3 anycast (global).
std::vector<ServiceSpec> nl_service_specs();

/// An all-anycast variant of the .nl deployment (the paper's §7
/// recommendation): every service gets a global anycast footprint.
std::vector<ServiceSpec> nl_all_anycast_specs();

}  // namespace recwild::experiment
