// Bulk resolution scan — the ZDNS-style measurement engine (ROADMAP item
// 4). Streams a name list through the vantage-point population's recursive
// resolvers at a target per-VP concurrency and emits one structured JSONL
// row per query (obs/scan_log.hpp), with queries/sec as a first-class
// result next to latency.
//
// Unlike a campaign (which models probe schedules at Atlas cadence), a
// scan is completion-driven: each vantage point keeps `per_vp_window`
// resolutions in flight against its primary recursive and issues the next
// name the moment one completes — the same pipelining discipline ZDNS uses
// per resolver process. Combine with the resolver's own pipelined front
// door (ResolverConfig::max_inflight_resolutions, reachable through
// TestbedConfig::population.resolver_template) to bound recursive-side
// concurrency independently of client-side issue rate.
//
// Sharding: name i belongs to vantage point (i mod vp_count) — a pure
// identity assignment, independent of how VP groups are packed onto
// shards. Each shard resolves only the names its VPs own and tags every
// row with the global name index, so the merged, index-ordered row list
// (and its serialized JSONL) is byte-identical for every shard count,
// exactly like campaign metrics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "experiment/testbed.hpp"
#include "obs/scan_log.hpp"

namespace recwild::experiment {

/// Wall-clock accounting of one scan run (host seconds, never sim time).
struct ScanRunStats {
  double partition_s = 0.0;  ///< VP grouping + weighted packing.
  double run_s = 0.0;        ///< Parallel section (spawn to last join).
  double merge_s = 0.0;      ///< Row/metrics/trace fold-back.
};

struct ScanConfig {
  /// Names to scan in generated mode: s0..s<names-1> under the testbed's
  /// test domain (answered by the test zone's wildcard TXT, so every name
  /// is a cache-busting unique label, like the campaign's).
  std::size_t names = 1'000;
  /// Explicit name list (presentation form); overrides the generator when
  /// non-empty. The scan CLI fills this from --name-file.
  std::vector<std::string> name_list;
  dns::RRType qtype = dns::RRType::TXT;
  /// Resolutions each vantage point keeps in flight at once. 1 reproduces
  /// the serial chain-at-a-time behavior (the bench baseline).
  std::size_t per_vp_window = 32;
  /// Identity-keyed random start phase within [0, 1s) per VP, so a scan
  /// does not fire every VP's first window on the same microsecond.
  bool phase_jitter = true;
  /// Worker threads, campaign semantics: 1 = serial on the caller's
  /// testbed; 0 = one per hardware thread; any value is byte-identical on
  /// a freshly built testbed.
  std::size_t shards = 1;
  /// Collect per-query rows (ScanResult::rows). Off for throughput
  /// benches: 10M ScanRows would cost ~1 GB; counters and timing are
  /// enough there.
  bool collect_rows = true;
  /// When non-null, filled with the run's timing breakdown.
  ScanRunStats* run_stats = nullptr;
};

struct ScanResult {
  /// One row per name, ordered by global name index (empty when
  /// collect_rows is false). write_scan_rows(out, rows) serialises this
  /// byte-identically at every shard count.
  std::vector<obs::ScanRow> rows;
  /// Caller-registry snapshot after the run, shard deltas merged in.
  obs::MetricsSnapshot metrics;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  /// Host wall seconds of the run section and the headline throughput.
  double wall_s = 0.0;
  double queries_per_s = 0.0;
  /// Simulated time at which the last resolution completed (max across
  /// shards — partition-independent) and the sim-time throughput,
  /// completed / sim seconds. This is the determinism-friendly speedup
  /// basis: pipelined vs serial sim throughput compares how much
  /// resolution work overlaps, independent of host load.
  double sim_end_s = 0.0;
  double sim_queries_per_s = 0.0;
};

/// Runs the scan to completion on the testbed's simulation (and, for
/// config.shards > 1, on partition-scoped replicas in worker threads).
/// Requires a testbed with a population; generated mode also requires a
/// test domain with wildcard TXT (any Table-1 combination testbed).
ScanResult run_scan(Testbed& testbed, const ScanConfig& config);

}  // namespace recwild::experiment
