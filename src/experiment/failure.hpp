// Failure / DDoS scenarios (paper §7 "Other Considerations": anycast is
// important to mitigate DDoS [Moura et al. 2016, the Nov 2015 Root
// event]).
//
// A population of recursives resolves continuously while a failure event
// takes out root letters (whole services) or a fraction of their anycast
// sites mid-run. The result is a per-minute time series of resolution
// success and latency plus before/during/after aggregates — showing how
// recursive failover across NSes absorbs the loss of authoritatives.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "experiment/testbed.hpp"
#include "fault/schedule.hpp"

namespace recwild::experiment {

enum class FailureKind : unsigned char {
  /// Entire services (letters) stop answering everywhere.
  ServiceDown,
  /// A fraction of each targeted service's anycast sites go dark; their
  /// catchments black-hole while other sites keep answering (the legacy
  /// crash model: dead sites never leave the catchment).
  SitesDown,
  /// A fraction of each targeted service's sites withdraw their BGP
  /// announcements (fault::FaultKind::SiteWithdraw): after a bounded
  /// convergence window their catchments fail over to surviving sites
  /// transparently — the engineered-anycast behaviour §7 argues for,
  /// versus SitesDown's unbounded timeouts.
  SitesWithdrawn,
};

struct FailureScenarioConfig {
  FailureKind kind = FailureKind::ServiceDown;
  /// Indices into Testbed::roots() of the services hit by the event.
  std::vector<std::size_t> targets;
  /// For SitesDown / SitesWithdrawn: fraction of each target's sites hit.
  double site_fraction = 1.0;
  /// For SitesWithdrawn: mean BGP convergence delay of each withdrawal
  /// (milliseconds; jittered ±25% per site by the injector).
  double convergence_ms = 800.0;

  std::size_t recursives = 200;
  double duration_minutes = 30;
  /// Event window, as fractions of the run.
  double event_start_frac = 1.0 / 3;
  double event_end_frac = 2.0 / 3;
  /// Mean per-recursive queries per minute.
  double queries_per_minute = 6.0;
};

struct PhaseStats {
  std::size_t queries = 0;
  double success_rate = 0.0;   // NOERROR/NXDOMAIN answers vs SERVFAIL
  double median_latency_ms = 0.0;
  double p90_latency_ms = 0.0;
};

struct FailureResult {
  PhaseStats before;
  PhaseStats during;
  PhaseStats after;
  /// Per-minute resolution success rate over the whole run.
  std::vector<double> minute_success;
  /// Per-minute median resolution latency (ms; -1 where no samples).
  std::vector<double> minute_latency_ms;
  /// Query share absorbed by each root letter during the event window
  /// (aligned with Testbed::roots()).
  std::vector<double> letter_share_during;
  std::vector<std::string> letter_labels;
};

/// One resolution attempt, timestamped by when it STARTED (minutes): a
/// query spanning an event-window boundary belongs to the phase it started
/// in, deterministically.
struct FailureSample {
  double at_min = 0;
  bool success = false;
  double latency_ms = 0;
};

/// Aggregates the samples started in the half-open window
/// [from_min, to_min). The three scenario phases partition [0, duration):
/// every sample lands in exactly one.
[[nodiscard]] PhaseStats aggregate_phase(
    const std::vector<FailureSample>& samples, double from_min,
    double to_min);

/// The scenario's failure event expressed as a fault schedule: one
/// ServerCrash per affected site over the event window (ServiceDown /
/// SitesDown — output unchanged since the crash-only days), or one
/// SiteWithdraw per affected site (SitesWithdrawn). What
/// run_failure_scenario arms; exposed so the same outage can be replayed,
/// serialised, or composed with other faults.
[[nodiscard]] fault::FaultSchedule failure_schedule(
    Testbed& testbed, const FailureScenarioConfig& config);

/// Runs the scenario on a testbed built WITHOUT a VP population.
FailureResult run_failure_scenario(Testbed& testbed,
                                   const FailureScenarioConfig& config);

}  // namespace recwild::experiment
