// Shared shard-packing helper for the parallel experiment engines
// (campaign, production, scan): deterministic LPT bin-packing of VP
// partition groups onto worker shards.
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

namespace recwild::experiment {

/// Deterministic LPT (longest-processing-time) bin-packing of VP groups
/// onto `shards` bins, weighted by estimated work per group. Ties break on
/// the group's first VP index, so the packing is a pure function of its
/// inputs. Returns per-shard ascending VP index lists; empty shards are
/// dropped.
inline std::vector<std::vector<std::size_t>> pack_groups(
    const std::vector<std::vector<std::size_t>>& groups,
    const std::vector<double>& weights, std::size_t shards) {
  std::vector<std::size_t> order(groups.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              if (weights[a] != weights[b]) return weights[a] > weights[b];
              return groups[a].front() < groups[b].front();
            });

  std::vector<std::vector<std::size_t>> bins(shards);
  std::vector<double> load(shards, 0.0);
  for (const std::size_t g : order) {
    const std::size_t lightest = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    load[lightest] += weights[g];
    auto& bin = bins[lightest];
    bin.insert(bin.end(), groups[g].begin(), groups[g].end());
  }
  std::erase_if(bins, [](const auto& b) { return b.empty(); });
  for (auto& bin : bins) std::sort(bin.begin(), bin.end());
  return bins;
}

}  // namespace recwild::experiment
