// Programmatic zone construction for the simulated DNS hierarchy:
// the root zone, the .nl zone, and the per-authoritative test-domain zones
// (each test authoritative serves a different TXT payload for the same
// names — the paper's trick for identifying which authoritative answered).
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "authns/zone.hpp"
#include "net/address.hpp"

namespace recwild::experiment {

/// A nameserver: its host name and address(es) (for glue). A set
/// `address6` additionally publishes AAAA glue (IPv4-mapped form; see
/// net::IpAddress::to_mapped_ipv6) for dual-stack experiments.
struct NsHost {
  dns::Name name;
  net::IpAddress address;
  std::optional<net::IpAddress> address6{};
};

/// A child delegation inside a parent zone.
struct Delegation {
  dns::Name child;
  std::vector<NsHost> servers;
};

struct ZoneSpec {
  dns::Name origin;
  std::vector<NsHost> apex_ns;
  std::vector<Delegation> delegations;
  /// If set, a "*.<origin> TXT <value>" wildcard with txt_ttl — the paper's
  /// per-authoritative response for arbitrary cache-busting labels.
  std::optional<std::string> wildcard_txt;
  dns::Ttl default_ttl = 172'800;  // 2 days, like root/TLD NS records
  dns::Ttl txt_ttl = 5;            // paper §3.1: TXT TTL of 5 seconds
  dns::Ttl negative_ttl = 60;
};

/// Builds a fully-formed zone: SOA, apex NS + glue, delegation NS + glue,
/// and the optional wildcard TXT.
authns::Zone build_zone(const ZoneSpec& spec);

}  // namespace recwild::experiment
