#include "experiment/zones.hpp"

namespace recwild::experiment {

authns::Zone build_zone(const ZoneSpec& spec) {
  authns::Zone zone{spec.origin};

  dns::SoaRdata soa;
  soa.mname = spec.apex_ns.empty() ? spec.origin.prefixed("ns")
                                   : spec.apex_ns.front().name;
  soa.rname = spec.origin.prefixed("hostmaster");
  soa.serial = 2017'04'12;
  soa.refresh = 14'400;
  soa.retry = 3'600;
  soa.expire = 1'209'600;
  soa.minimum = spec.negative_ttl;
  zone.add(dns::ResourceRecord{spec.origin, dns::RRClass::IN,
                               spec.default_ttl, soa});

  auto add_glue = [&](const NsHost& ns) {
    if (!ns.name.is_subdomain_of(spec.origin)) return;
    zone.add(dns::ResourceRecord{ns.name, dns::RRClass::IN,
                                 spec.default_ttl, dns::ARdata{ns.address}});
    if (ns.address6) {
      zone.add(dns::ResourceRecord{
          ns.name, dns::RRClass::IN, spec.default_ttl,
          dns::AaaaRdata{ns.address6->to_mapped_ipv6()}});
    }
  };

  for (const auto& ns : spec.apex_ns) {
    zone.add(dns::ResourceRecord{spec.origin, dns::RRClass::IN,
                                 spec.default_ttl, dns::NsRdata{ns.name}});
    add_glue(ns);
  }

  for (const auto& d : spec.delegations) {
    for (const auto& ns : d.servers) {
      zone.add(dns::ResourceRecord{d.child, dns::RRClass::IN,
                                   spec.default_ttl,
                                   dns::NsRdata{ns.name}});
      add_glue(ns);
    }
  }

  if (spec.wildcard_txt) {
    zone.add(dns::ResourceRecord{spec.origin.prefixed("*"),
                                 dns::RRClass::IN, spec.txt_ttl,
                                 dns::TxtRdata{{*spec.wildcard_txt}}});
  }
  return zone;
}

}  // namespace recwild::experiment
