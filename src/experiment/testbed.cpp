#include "experiment/testbed.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "attack/generator.hpp"

namespace recwild::experiment {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

}  // namespace

Testbed::Testbed(TestbedConfig config)
    : config_(std::move(config)),
      sim_(config_.seed),
      network_(std::make_unique<net::Network>(sim_, config_.latency)),
      test_domain_(dns::Name::parse(config_.test_domain)) {
  sim_.trace().set_enabled(config_.trace_decisions);
  if (!config_.test_sites.empty() && !config_.build_nl) {
    throw std::invalid_argument{
        "Testbed: a test domain requires the .nl deployment"};
  }
  if (!config_.attack.empty()) {
    config_.attack.validate();
    if (!config_.build_nl) {
      throw std::invalid_argument{
          "Testbed: an attack schedule requires the .nl deployment"};
    }
  }
  build_roots();
  if (config_.build_nl) build_nl();
  if (!config_.test_sites.empty()) build_test_domain();
  if (!config_.attack.empty()) build_attacker();
  assemble_zones();

  for (auto& svc : roots_) svc.start();
  for (auto& svc : nl_) svc.start();
  for (auto& svc : test_) svc.start();
  for (auto& svc : attacker_) svc.start();
  arm_defenses();

  if (config_.build_population) {
    population_ = client::build_population(
        *network_, config_.population, hints_,
        sim_.rng().fork("population"));
  }

  if (!config_.faults.empty()) {
    injector_ =
        std::make_unique<fault::FaultInjector>(*network_, config_.faults);
    for (auto* services : {&roots_, &nl_, &test_}) {
      for (auto& svc : *services) {
        for (auto& site : svc.sites()) injector_->bind_server(*site.server);
      }
    }
    injector_->arm();
  }
}

void Testbed::build_roots() {
  for (const auto& spec : root_letter_specs()) {
    const net::IpAddress addr = network_->allocate_address();
    roots_.push_back(anycast::AnycastService::create(*network_, spec.label,
                                                     addr, spec.site_codes));
    // "a-root" -> a.root-servers.net
    const dns::Name ns_name =
        dns::Name::parse(spec.label.substr(0, 1) + ".root-servers.net");
    NsHost host{ns_name, addr};
    if (config_.dual_stack) {
      const net::IpAddress addr6 = network_->allocate_address6();
      roots_.back().listen_also(addr6);
      host.address6 = addr6;
      hints6_.push_back(resolver::RootHint{ns_name, addr6});
    }
    root_apex_.push_back(std::move(host));
    hints_.push_back(resolver::RootHint{ns_name, addr});
  }
}

void Testbed::build_nl() {
  const auto specs = config_.all_anycast_nl ? nl_all_anycast_specs()
                                            : nl_service_specs();
  std::size_t i = 0;
  for (const auto& spec : specs) {
    ++i;
    const net::IpAddress addr = network_->allocate_address();
    nl_.push_back(anycast::AnycastService::create(*network_, spec.label,
                                                  addr, spec.site_codes));
    NsHost host{dns::Name::parse("ns" + std::to_string(i) + ".dns.nl"),
                addr};
    if (config_.dual_stack) {
      const net::IpAddress addr6 = network_->allocate_address6();
      nl_.back().listen_also(addr6);
      host.address6 = addr6;
    }
    nl_apex_.push_back(std::move(host));
  }
}

void Testbed::build_test_domain() {
  for (const auto& code : config_.test_sites) {
    if (!net::find_location(code)) {
      throw std::invalid_argument{"Testbed: unknown test site " + code};
    }
    const net::IpAddress addr = network_->allocate_address();
    test_.push_back(anycast::AnycastService::create(
        *network_, code, addr, std::vector<std::string>{code}));
    NsHost host{
        dns::Name::parse("ns-" + lower(code) + "." + config_.test_domain),
        addr};
    if (config_.dual_stack) {
      const net::IpAddress addr6 = network_->allocate_address6();
      test_.back().listen_also(addr6);
      host.address6 = addr6;
    }
    test_ns_.push_back(std::move(host));
  }
}

void Testbed::build_attacker() {
  const auto& zone_cfg = config_.attack.zone();
  const std::string& code = config_.attack_site;
  if (!net::find_location(code)) {
    throw std::invalid_argument{"Testbed: unknown attack site " + code};
  }
  const net::IpAddress addr = network_->allocate_address();
  attacker_.push_back(anycast::AnycastService::create(
      *network_, "ATK", addr, std::vector<std::string>{code}));
  const dns::Name ns_name =
      dns::Name::parse("ns." + zone_cfg.attacker_domain);
  attacker_ns_.push_back(NsHost{ns_name, addr});
  // The whole delegation-chain forest (apex + intermediate chain zones)
  // is served by the one attacker authoritative.
  for (auto& zone : attack::make_nxns_zones(zone_cfg, ns_name, addr)) {
    attacker_.back().add_zone(std::move(zone));
  }
}

void Testbed::arm_defenses() {
  if (!config_.attack.empty()) {
    // The test-domain authoritatives are the attack's victims: count their
    // load separately (attack.victim.queries, the amplification numerator).
    for (auto& svc : test_) {
      for (auto& site : svc.sites()) site.server->set_victim(true);
    }
  }
  if (config_.rrl.rate > 0) {
    // RRL is the defender's: roots, .nl and the test domain arm it; the
    // attacker's own authoritative never does.
    for (auto* services : {&roots_, &nl_, &test_}) {
      for (auto& svc : *services) {
        for (auto& site : svc.sites()) site.server->set_rrl(config_.rrl);
      }
    }
  }
  if (config_.referral_fanout_cap > 0) {
    // The fanout cap is engine-wide (managed-DNS model): every hosted
    // zone's referrals are trimmed, the attacker's delegation included.
    for (auto* services : {&roots_, &nl_, &test_, &attacker_}) {
      for (auto& svc : *services) {
        for (auto& site : svc.sites()) {
          site.server->set_referral_fanout_cap(config_.referral_fanout_cap);
        }
      }
    }
  }
}

void Testbed::assemble_zones() {
  // Root zone: apex NS (the letters) + the .nl delegation.
  ZoneSpec root_spec;
  root_spec.origin = dns::Name{};
  root_spec.apex_ns = root_apex_;
  if (!nl_apex_.empty()) {
    root_spec.delegations.push_back(
        Delegation{dns::Name::parse("nl"), nl_apex_});
  }
  const authns::Zone root_zone = build_zone(root_spec);
  for (auto& svc : roots_) svc.add_zone(root_zone);

  // .nl zone: its 8 services + the test-domain delegation.
  if (!nl_.empty()) {
    ZoneSpec nl_spec;
    nl_spec.origin = dns::Name::parse("nl");
    nl_spec.apex_ns = nl_apex_;
    if (!test_ns_.empty()) {
      nl_spec.delegations.push_back(Delegation{test_domain_, test_ns_});
    }
    if (!attacker_ns_.empty()) {
      nl_spec.delegations.push_back(Delegation{
          dns::Name::parse(config_.attack.zone().attacker_domain),
          attacker_ns_});
    }
    nl_spec.negative_ttl = 60;
    const authns::Zone nl_zone = build_zone(nl_spec);
    for (auto& svc : nl_) svc.add_zone(nl_zone);
  }

  // Test domain: each authoritative serves its own zone copy whose
  // wildcard TXT payload is the datacenter code (paper §3.1).
  for (std::size_t i = 0; i < test_.size(); ++i) {
    ZoneSpec z;
    z.origin = test_domain_;
    z.apex_ns = test_ns_;
    z.wildcard_txt = config_.test_sites[i];
    z.txt_ttl = config_.txt_ttl;
    test_[i].add_zone(build_zone(z));
  }
}

int Testbed::test_index_of(const std::string& code) const {
  for (std::size_t i = 0; i < test_.size(); ++i) {
    if (test_[i].name() == code) return static_cast<int>(i);
  }
  return -1;
}

net::NodeId Testbed::recursive_node(net::IpAddress addr) const {
  const auto* info = population_.recursive_by_address(addr);
  return info != nullptr ? info->resolver->node() : net::kInvalidNode;
}

}  // namespace recwild::experiment
