#include "experiment/testbed.hpp"

#include <stdexcept>

namespace recwild::experiment {

Testbed::Testbed(TestbedConfig config)
    : Testbed(WorldSnapshot::build(std::move(config))) {}

Testbed::Testbed(std::shared_ptr<const WorldSnapshot> world,
                 const std::vector<std::size_t>* partition)
    : world_(std::move(world)),
      sim_(world_->config.seed),
      network_(std::make_unique<net::Network>(sim_, world_->config.latency,
                                              world_->catalog)) {
  const TestbedConfig& config = world_->config;
  sim_.trace().set_enabled(config.trace_decisions);

  materialize_services();
  for (auto* services : {&roots_, &nl_, &test_, &attacker_}) {
    for (auto& svc : *services) svc.start();
  }
  arm_defenses();

  if (config.build_population) {
    population_ = client::materialize_population(
        *network_, world_->population, config.population, world_->hints,
        partition, /*adopt_into_network=*/false);
  }

  apply_drains();

  if (!config.faults.empty()) {
    injector_ =
        std::make_unique<fault::FaultInjector>(*network_, config.faults);
    for (auto* services : {&roots_, &nl_, &test_}) {
      for (auto& svc : *services) {
        for (auto& site : svc.sites()) injector_->bind_server(*site.server);
        injector_->bind_service(svc);
      }
    }
    injector_->arm();
  }
}

void Testbed::apply_drains() {
  // Drains are part of the world plan (TestbedConfig::drains): every
  // replica applies the identical windows during construction, before the
  // baseline metrics snapshot, so the sharded engines merge to the serial
  // bytes.
  for (const SiteDrain& d : world_->config.drains) {
    bool matched_service = false;
    for (auto* services : {&roots_, &nl_, &test_}) {
      for (auto& svc : *services) {
        if (svc.name() != d.service) continue;
        matched_service = true;
        bool matched_site = false;
        for (std::size_t i = 0; i < svc.sites().size(); ++i) {
          if (d.site != "*" && svc.sites()[i].code != d.site) continue;
          svc.drain(i, d.start, d.end);
          matched_site = true;
        }
        if (!matched_site) {
          throw std::invalid_argument{"Testbed: drain site '" + d.site +
                                      "' not in service '" + d.service + "'"};
        }
      }
    }
    if (!matched_service) {
      throw std::invalid_argument{"Testbed: drain service '" + d.service +
                                  "' unknown"};
    }
  }
}

void Testbed::materialize_services() {
  const auto materialize = [this](const std::vector<ServicePlan>& plans,
                                  std::vector<anycast::AnycastService>& out) {
    out.reserve(plans.size());
    for (const auto& sp : plans) {
      out.push_back(anycast::AnycastService::create_at(
          *network_, sp.label, sp.address, sp.sites));
      if (sp.address6) out.back().listen_also(*sp.address6);
      for (const auto& zone : sp.zones) out.back().add_zone(zone);
    }
  };
  materialize(world_->roots, roots_);
  materialize(world_->nl, nl_);
  materialize(world_->test, test_);
  materialize(world_->attacker, attacker_);
}

void Testbed::arm_defenses() {
  const TestbedConfig& config = world_->config;
  if (!config.attack.empty()) {
    // The test-domain authoritatives are the attack's victims: count their
    // load separately (attack.victim.queries, the amplification numerator).
    for (auto& svc : test_) {
      for (auto& site : svc.sites()) site.server->set_victim(true);
    }
  }
  if (config.rrl.rate > 0) {
    // RRL is the defender's: roots, .nl and the test domain arm it; the
    // attacker's own authoritative never does.
    for (auto* services : {&roots_, &nl_, &test_}) {
      for (auto& svc : *services) {
        for (auto& site : svc.sites()) site.server->set_rrl(config.rrl);
      }
    }
  }
  if (config.referral_fanout_cap > 0) {
    // The fanout cap is engine-wide (managed-DNS model): every hosted
    // zone's referrals are trimmed, the attacker's delegation included.
    for (auto* services : {&roots_, &nl_, &test_, &attacker_}) {
      for (auto& svc : *services) {
        for (auto& site : svc.sites()) {
          site.server->set_referral_fanout_cap(config.referral_fanout_cap);
        }
      }
    }
  }
}

int Testbed::test_index_of(const std::string& code) const {
  for (std::size_t i = 0; i < test_.size(); ++i) {
    if (test_[i].name() == code) return static_cast<int>(i);
  }
  return -1;
}

net::NodeId Testbed::recursive_node(net::IpAddress addr) const {
  const auto* info = population_.recursive_by_address(addr);
  return info != nullptr ? info->resolver->node() : net::kInvalidNode;
}

}  // namespace recwild::experiment
