// WorldSnapshot: the immutable, build-once description of a testbed world,
// shared read-only by every shard replica of a parallel campaign or
// production run.
//
// Motivation (ISSUE 8): the sharded engines used to rebuild the entire
// world per worker — zones, geo placement, the full vantage-point
// population — which made shards anti-scale (the rebuild dominated the
// runtime saved by parallelism) and put an O(shards × world) floor on
// memory. A WorldSnapshot is built exactly once from a TestbedConfig; each
// replica then materializes only mutable simulation state (sockets,
// servers, resolver caches) on top of it, and only for the vantage-point
// partition it simulates.
//
// Determinism contract. The snapshot is built with the byte-identical
// node-id, address and RNG-draw sequences the one-shot Testbed constructor
// used, so a world materialized from a snapshot is indistinguishable — in
// every id, address, zone byte and random stream — from one built the old
// way. Per-flow network RNG and latency path state are keyed by node-id
// pairs, which is why the shared NodeCatalog (identical ids everywhere) is
// what makes partition-scoped replicas byte-exact.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "anycast/service.hpp"
#include "attack/schedule.hpp"
#include "authns/rrl.hpp"
#include "client/population.hpp"
#include "experiment/zones.hpp"
#include "fault/schedule.hpp"
#include "net/network.hpp"

namespace recwild::experiment {

/// A planned graceful drain of one anycast site (a maintenance window):
/// part of the world plan, so every shard replica applies the identical
/// drain and the sharded engines stay byte-identical.
struct SiteDrain {
  std::string service;  ///< Service label ("k-root", "ns3.dns.nl", ...).
  std::string site;     ///< Site code ("AMS", ...), or "*" for every site.
  net::SimTime start;   ///< Site leaves the catchment (no convergence loss).
  net::SimTime end;     ///< Site rejoins the catchment.
};

struct TestbedConfig {
  std::uint64_t seed = 42;
  net::LatencyParams latency{};
  client::PopulationConfig population{};
  /// Build the Atlas-like population (disable for server-only tests).
  bool build_population = true;
  /// Build the .nl services (required when a test domain is given).
  bool build_nl = true;
  /// Use the all-anycast .nl variant (§7 recommendation) instead of the
  /// paper's 5-unicast + 3-anycast deployment.
  bool all_anycast_nl = false;
  /// Datacenter codes for the test-domain authoritatives (a Table-1
  /// combination); empty = no test domain.
  std::vector<std::string> test_sites{};
  /// Serve the test domain from ONE anycast service spanning every
  /// test_sites code (single NS, shared address) instead of one unicast
  /// service per site. This is what dynamic-catchment experiments flap:
  /// resolvers keep a single route to the shared address, so a site
  /// withdrawal shifts their catchment instead of their NS choice.
  bool anycast_test = false;
  std::string test_domain = "ourtestdomain.nl";
  dns::Ttl txt_ttl = 5;
  /// Dual-stack: every service additionally gets an IPv6-plane address,
  /// published as AAAA glue. Combine with PopulationConfig::ipv6_fraction
  /// or resolver AddressFamily to exercise v6 resolution (paper §3.1
  /// verified its findings hold over IPv6).
  bool dual_stack = false;
  /// Enables the simulation's obs::DecisionTrace from construction on.
  /// Replica worlds share the snapshot and inherit it, so sharded campaign
  /// runs trace exactly what the serial run traces. Metrics are always on.
  bool trace_decisions = false;
  /// Fault schedule armed over the world at construction (src/fault). An
  /// empty schedule costs nothing: no injector is built, no hook installed.
  /// Replica worlds arm the identical schedule. Site faults (SiteWithdraw /
  /// SiteFlap) target services by shared address or label and sites by
  /// code; the testbed binds every root/.nl/test service to the injector.
  fault::FaultSchedule faults{};
  /// Planned site drains applied at construction (AnycastService::drain).
  /// Like `faults`, part of the world plan: replicas agree byte-for-byte.
  std::vector<SiteDrain> drains{};

  // ---- Adversarial workloads & defenses (src/attack, docs/ATTACKS.md) ----

  /// Attack schedule the campaign engine replays. When non-empty, the
  /// testbed builds the attacker-controlled authoritative (serving the
  /// NXNS delegation chains of attack.zone()), delegates its domain from
  /// .nl, and marks the test-domain servers as victims. Empty costs
  /// nothing; replica worlds inherit it through the snapshot.
  attack::AttackSchedule attack{};
  /// Site hosting the attacker-controlled authoritative.
  std::string attack_site = "AMS";
  /// Response-rate limiting armed on every *defender* authoritative
  /// (roots, .nl, test domain — never the attacker's). rate 0 = off.
  authns::RrlConfig rrl{};
  /// Referral-fanout cap on every authoritative, the attacker's included
  /// (0 = unlimited). This is the engine-wide knob: it models a managed-DNS
  /// platform capping referral work for all hosted zones — the only
  /// placement where a server-side cap can trim the NXNS referral itself
  /// (docs/ATTACKS.md).
  int referral_fanout_cap = 0;
};

/// One authoritative service, fully planned: name, shared address(es),
/// site nodes (pre-assigned in the catalog) and the immutable zones every
/// site serves. Replicas construct servers straight from this — no node or
/// address allocation, no zone copies.
struct ServicePlan {
  std::string label;
  net::IpAddress address;
  std::optional<net::IpAddress> address6;
  std::vector<anycast::SitePlan> sites;
  std::vector<std::shared_ptr<const authns::Zone>> zones;
};

/// Everything immutable about a testbed world. Built once (see build()),
/// then shared across shard replicas via shared_ptr<const WorldSnapshot>.
struct WorldSnapshot {
  TestbedConfig config;

  /// Shared node directory + address-pool cursor. Replica Networks are
  /// layered on it (net::Network's `base` constructor parameter).
  std::shared_ptr<const net::NodeCatalog> catalog;

  std::vector<ServicePlan> roots;
  std::vector<ServicePlan> nl;
  std::vector<ServicePlan> test;
  std::vector<ServicePlan> attacker;

  std::vector<resolver::RootHint> hints;
  std::vector<resolver::RootHint> hints6;
  dns::Name test_domain;

  /// The planned vantage-point population (empty when
  /// config.build_population is false).
  client::PopulationPlan population;

  /// VP partition classes: vantage points that share any recursive
  /// resolver (forwarders chased to their upstream) are in one group,
  /// because the shared cache/SRTT state couples their observations.
  /// Groups in first-seen VP order, each ascending. Precomputed here so
  /// sharded runs don't redo the union-find per run.
  std::vector<std::vector<std::size_t>> vp_groups;

  /// Builds the snapshot for `config`: plans services, assembles zones,
  /// plans the population and computes vp_groups. Performs every
  /// validation the one-shot Testbed constructor used to perform.
  static std::shared_ptr<const WorldSnapshot> build(TestbedConfig config);
};

}  // namespace recwild::experiment
