#include "experiment/world.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <unordered_map>

#include "attack/generator.hpp"
#include "experiment/deployments.hpp"

namespace recwild::experiment {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::shared_ptr<const authns::Zone> shared_zone(authns::Zone zone) {
  return std::make_shared<const authns::Zone>(std::move(zone));
}

/// Union-find partition of the planned VPs into shared-recursive classes.
/// Identical algorithm (and output order) to the historical
/// campaign_vp_groups over live objects: forwarders chase to their
/// upstream, every VP unions all its upstream recursives.
std::vector<std::vector<std::size_t>> plan_vp_groups(
    const client::PopulationPlan& plan) {
  std::unordered_map<net::IpAddress, net::IpAddress> via_forwarder;
  via_forwarder.reserve(plan.forwarders.size() * 2);
  for (const auto& f : plan.forwarders) {
    via_forwarder.emplace(f.address, f.upstream);
  }

  std::unordered_map<net::IpAddress, std::size_t> addr_index;
  std::vector<std::size_t> parent;
  auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto index_of = [&](net::IpAddress addr) {
    const auto fwd = via_forwarder.find(addr);
    if (fwd != via_forwarder.end()) addr = fwd->second;
    const auto [it, inserted] = addr_index.emplace(addr, parent.size());
    if (inserted) parent.push_back(it->second);
    return it->second;
  };

  const std::size_t n = plan.vp_count();
  std::vector<std::size_t> vp_set(n);
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint32_t lo = plan.vp_upstream_off[v];
    const std::uint32_t hi = plan.vp_upstream_off[v + 1];
    const std::size_t first =
        index_of(lo == hi ? net::IpAddress{} : plan.vp_upstreams[lo]);
    for (std::uint32_t u = lo + 1; u < hi; ++u) {
      const std::size_t other = index_of(plan.vp_upstreams[u]);
      parent[find(other)] = find(first);
    }
    vp_set[v] = first;
  }

  std::unordered_map<std::size_t, std::size_t> group_of_root;
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t root = find(vp_set[v]);
    const auto [it, inserted] = group_of_root.emplace(root, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(v);
  }
  return groups;
}

}  // namespace

std::shared_ptr<const WorldSnapshot> WorldSnapshot::build(
    TestbedConfig config) {
  if (!config.test_sites.empty() && !config.build_nl) {
    throw std::invalid_argument{
        "Testbed: a test domain requires the .nl deployment"};
  }
  if (!config.attack.empty()) {
    config.attack.validate();
    if (!config.build_nl) {
      throw std::invalid_argument{
          "Testbed: an attack schedule requires the .nl deployment"};
    }
  }

  auto world = std::make_shared<WorldSnapshot>();
  world->config = std::move(config);
  const TestbedConfig& cfg = world->config;
  world->test_domain = dns::Name::parse(cfg.test_domain);

  auto catalog = std::make_shared<net::NodeCatalog>();

  // Allocation order below mirrors the historical Testbed constructor call
  // for call (address, then site nodes, then the v6 address), so node ids
  // and addresses are byte-identical to worlds built before the split.
  const auto plan_service =
      [&catalog](const std::string& label,
                 const std::vector<std::string>& site_codes) {
        ServicePlan sp;
        sp.label = label;
        sp.address = catalog->allocate_address();
        for (const auto& code : site_codes) {
          const auto loc = net::find_location(code);
          if (!loc) {
            throw std::invalid_argument{
                "AnycastService: unknown location " + code};
          }
          sp.sites.push_back(anycast::SitePlan{
              code, loc->point,
              catalog->add_node(label + "@" + code, loc->point)});
        }
        return sp;
      };

  // Root letters.
  std::vector<NsHost> root_apex;
  for (const auto& spec : root_letter_specs()) {
    ServicePlan sp = plan_service(spec.label, spec.site_codes);
    const dns::Name ns_name =
        dns::Name::parse(spec.label.substr(0, 1) + ".root-servers.net");
    NsHost host{ns_name, sp.address};
    if (cfg.dual_stack) {
      sp.address6 = catalog->allocate_address6();
      host.address6 = *sp.address6;
      world->hints6.push_back(resolver::RootHint{ns_name, *sp.address6});
    }
    root_apex.push_back(std::move(host));
    world->hints.push_back(resolver::RootHint{ns_name, sp.address});
    world->roots.push_back(std::move(sp));
  }

  // .nl services.
  std::vector<NsHost> nl_apex;
  if (cfg.build_nl) {
    const auto specs =
        cfg.all_anycast_nl ? nl_all_anycast_specs() : nl_service_specs();
    std::size_t i = 0;
    for (const auto& spec : specs) {
      ++i;
      ServicePlan sp = plan_service(spec.label, spec.site_codes);
      NsHost host{dns::Name::parse("ns" + std::to_string(i) + ".dns.nl"),
                  sp.address};
      if (cfg.dual_stack) {
        sp.address6 = catalog->allocate_address6();
        host.address6 = *sp.address6;
      }
      nl_apex.push_back(std::move(host));
      world->nl.push_back(std::move(sp));
    }
  }

  // Test-domain authoritatives: one unicast service per site, or — with
  // cfg.anycast_test — a single anycast service spanning every site
  // behind one NS name and one shared address.
  std::vector<NsHost> test_ns;
  if (cfg.anycast_test && !cfg.test_sites.empty()) {
    for (const auto& code : cfg.test_sites) {
      if (!net::find_location(code)) {
        throw std::invalid_argument{"Testbed: unknown test site " + code};
      }
    }
    ServicePlan sp = plan_service("test-any", cfg.test_sites);
    NsHost host{dns::Name::parse("ns-any." + cfg.test_domain), sp.address};
    if (cfg.dual_stack) {
      sp.address6 = catalog->allocate_address6();
      host.address6 = *sp.address6;
    }
    test_ns.push_back(std::move(host));
    world->test.push_back(std::move(sp));
  } else {
    for (const auto& code : cfg.test_sites) {
      if (!net::find_location(code)) {
        throw std::invalid_argument{"Testbed: unknown test site " + code};
      }
      ServicePlan sp = plan_service(code, {code});
      NsHost host{
          dns::Name::parse("ns-" + lower(code) + "." + cfg.test_domain),
          sp.address};
      if (cfg.dual_stack) {
        sp.address6 = catalog->allocate_address6();
        host.address6 = *sp.address6;
      }
      test_ns.push_back(std::move(host));
      world->test.push_back(std::move(sp));
    }
  }

  // Attacker-controlled authoritative.
  std::vector<NsHost> attacker_ns;
  if (!cfg.attack.empty()) {
    const auto& zone_cfg = cfg.attack.zone();
    if (!net::find_location(cfg.attack_site)) {
      throw std::invalid_argument{"Testbed: unknown attack site " +
                                  cfg.attack_site};
    }
    ServicePlan sp = plan_service("ATK", {cfg.attack_site});
    const dns::Name ns_name =
        dns::Name::parse("ns." + zone_cfg.attacker_domain);
    attacker_ns.push_back(NsHost{ns_name, sp.address});
    for (auto& zone :
         attack::make_nxns_zones(zone_cfg, ns_name, sp.address)) {
      sp.zones.push_back(shared_zone(std::move(zone)));
    }
    world->attacker.push_back(std::move(sp));
  }

  // Zones. Shared zones are built once and pointed to by every service
  // that serves them; sites share them again, so a 13-letter root service
  // holds ONE root zone regardless of site count — and so does every
  // shard replica.
  {
    ZoneSpec root_spec;
    root_spec.origin = dns::Name{};
    root_spec.apex_ns = root_apex;
    if (!nl_apex.empty()) {
      root_spec.delegations.push_back(
          Delegation{dns::Name::parse("nl"), nl_apex});
    }
    const auto root_zone = shared_zone(build_zone(root_spec));
    for (auto& sp : world->roots) sp.zones.push_back(root_zone);
  }
  if (!world->nl.empty()) {
    ZoneSpec nl_spec;
    nl_spec.origin = dns::Name::parse("nl");
    nl_spec.apex_ns = nl_apex;
    if (!test_ns.empty()) {
      nl_spec.delegations.push_back(
          Delegation{world->test_domain, test_ns});
    }
    if (!attacker_ns.empty()) {
      nl_spec.delegations.push_back(Delegation{
          dns::Name::parse(cfg.attack.zone().attacker_domain),
          attacker_ns});
    }
    nl_spec.negative_ttl = 60;
    const auto nl_zone = shared_zone(build_zone(nl_spec));
    for (auto& sp : world->nl) sp.zones.push_back(nl_zone);
  }
  for (std::size_t i = 0; i < world->test.size(); ++i) {
    ZoneSpec z;
    z.origin = world->test_domain;
    z.apex_ns = test_ns;
    // Per-site unicast services answer with their own site code (the
    // paper's site-identification trick); the anycast service serves one
    // shared zone — answering with its label — from every site.
    z.wildcard_txt =
        cfg.anycast_test ? world->test[i].label : cfg.test_sites[i];
    z.txt_ttl = cfg.txt_ttl;
    world->test[i].zones.push_back(shared_zone(build_zone(z)));
  }

  // Population plan. The simulation's root RNG is never drawn from (only
  // forked), so forking a fresh Rng{seed} here draws the byte-identical
  // "population" stream the live builder drew via sim.rng().
  if (cfg.build_population) {
    world->population = client::plan_population(
        *catalog, cfg.population, stats::Rng{cfg.seed}.fork("population"));
    world->vp_groups = plan_vp_groups(world->population);
  }

  world->catalog = std::move(catalog);
  return world;
}

}  // namespace recwild::experiment
