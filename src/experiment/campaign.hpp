// Measurement campaign: the simulated equivalent of the paper's RIPE Atlas
// runs (§3.1). Every vantage point queries a unique cache-busting TXT label
// under the test domain at a fixed interval; the TXT payload identifies
// which authoritative answered. Client-side observations are collected per
// VP, exactly as the paper collects per-probe results from Atlas.
#pragma once

#include <string>
#include <vector>

#include "experiment/testbed.hpp"

namespace recwild::experiment {

struct CampaignConfig {
  /// Probing interval (paper: 2 minutes; §4.4 sweeps 5..30).
  net::Duration interval = net::Duration::minutes(2);
  /// Queries per VP including the first (paper: 1 hour at 2 min = 31).
  std::size_t queries_per_vp = 31;
  /// Random start phase within the first interval, to de-synchronize VPs.
  bool phase_jitter = true;
};

/// Per-VP campaign observations.
struct VpObservation {
  std::size_t probe_id = 0;
  net::Continent continent = net::Continent::Europe;
  /// The recursive that served most of this VP's queries.
  net::IpAddress recursive_addr;
  /// Per query: index into Testbed::test_services(), or -1 on timeout.
  std::vector<int> sequence;
  /// Stable RTT from the VP's primary recursive to each test authoritative
  /// (ms) — the latency the recursive's selection policy experiences.
  std::vector<double> rtt_ms;
};

struct CampaignResult {
  std::vector<std::string> service_codes;
  std::vector<VpObservation> vps;

  [[nodiscard]] std::size_t service_count() const noexcept {
    return service_codes.size();
  }
};

/// Runs the campaign to completion on the testbed's simulation.
CampaignResult run_campaign(Testbed& testbed, const CampaignConfig& config);

}  // namespace recwild::experiment
