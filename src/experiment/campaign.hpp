// Measurement campaign: the simulated equivalent of the paper's RIPE Atlas
// runs (§3.1). Every vantage point queries a unique cache-busting TXT label
// under the test domain at a fixed interval; the TXT payload identifies
// which authoritative answered. Client-side observations are collected per
// VP, exactly as the paper collects per-probe results from Atlas.
//
// The campaign can run sharded: vantage points are partitioned into groups
// that share no recursive resolver, groups are packed onto `shards` worker
// threads, and each worker replays its share of the schedule on a private
// replica of the testbed. Because every random stream in the simulation is
// keyed by identity (per VP, per resolver, per network flow) rather than by
// draw order, a VP's observations do not depend on which other VPs run
// beside it — so the merged result is byte-identical for every shard count,
// including the single-threaded shards=1 run.
#pragma once

#include <string>
#include <vector>

#include "experiment/testbed.hpp"

namespace recwild::experiment {

/// Wall-clock and memory accounting of one campaign run, for benchmarks
/// and capacity planning. All times are host wall seconds (never sim
/// time); rss_kb is the process RSS sampled as each shard finishes — with
/// threaded shards this is process-wide, so the per-shard samples bound
/// the run's footprint rather than attribute it exactly.
struct CampaignRunStats {
  struct Shard {
    std::size_t vps = 0;     ///< Vantage points simulated by this shard.
    double wall_s = 0.0;     ///< Replica materialize + event-loop wall time.
    std::size_t rss_kb = 0;  ///< Process RSS when the shard finished.
  };
  double partition_s = 0.0;  ///< VP grouping + weighted packing.
  double run_s = 0.0;        ///< Parallel section (spawn to last join).
  double merge_s = 0.0;      ///< Observation/metrics/trace fold-back.
  std::vector<Shard> shards; ///< Per shard, shard 0 = the caller's world.
};

struct CampaignConfig {
  /// Probing interval (paper: 2 minutes; §4.4 sweeps 5..30).
  net::Duration interval = net::Duration::minutes(2);
  /// Queries per VP including the first (paper: 1 hour at 2 min = 31).
  std::size_t queries_per_vp = 31;
  /// Random start phase within the first interval, to de-synchronize VPs.
  bool phase_jitter = true;
  /// Worker threads to run the campaign on. 1 = serial on the caller's
  /// testbed; 0 = one per hardware thread. Any value yields byte-identical
  /// results when the testbed is freshly built (shards > 1 materializes
  /// partition-scoped replicas of Testbed::world(), so a testbed that
  /// already ran traffic can only be reproduced by shards = 1).
  std::size_t shards = 1;
  /// When non-null, filled with the run's timing/memory breakdown.
  CampaignRunStats* run_stats = nullptr;
};

/// Per-VP campaign observations.
struct VpObservation {
  std::size_t probe_id = 0;
  net::Continent continent = net::Continent::Europe;
  /// The recursive that served most of this VP's queries (ties broken by
  /// lowest address so the choice is stable across platforms).
  net::IpAddress recursive_addr;
  /// Per query: index into Testbed::test_services(), or -1 on timeout.
  std::vector<int> sequence;
  /// Stable RTT from the VP's primary recursive to each test authoritative
  /// (ms) — the latency the recursive's selection policy experiences.
  std::vector<double> rtt_ms;
};

struct CampaignResult {
  std::vector<std::string> service_codes;
  std::vector<VpObservation> vps;
  /// Snapshot of the caller testbed's registry after the run, replica-shard
  /// contributions merged in. Its MergeSafe JSON export is byte-identical
  /// for every shard count (the obs_campaign tests pin this).
  obs::MetricsSnapshot metrics;

  [[nodiscard]] std::size_t service_count() const noexcept {
    return service_codes.size();
  }
};

/// Runs the campaign to completion on the testbed's simulation (and, for
/// config.shards > 1, on replica simulations in worker threads).
CampaignResult run_campaign(Testbed& testbed, const CampaignConfig& config);

/// The VP partition the sharded engine uses: vantage points that share a
/// recursive resolver (directly or through a chain of shared upstreams,
/// forwarders included) always land in the same group, because a shared
/// recursive's cache and SRTT state couple their observations. Groups are
/// listed in first-seen VP order; each group lists VP indices ascending.
/// Precomputed on the world snapshot; exposed for tests and planning.
std::vector<std::vector<std::size_t>> campaign_vp_groups(Testbed& testbed);

/// Estimated query volume per VP group under `config` — campaign probes
/// plus the attack-bot traffic of the testbed's schedule (bots are the
/// lowest-index VPs, so attack-heavy groups weigh more). This is the load
/// model the shard packer balances on, instead of raw VP counts.
std::vector<double> campaign_group_weights(
    const std::vector<std::vector<std::size_t>>& groups,
    const CampaignConfig& config, const attack::AttackSchedule& schedule);

}  // namespace recwild::experiment
