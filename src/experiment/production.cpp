#include "experiment/production.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <numeric>
#include <thread>
#include <unordered_map>

#include "obs/names.hpp"
#include "stats/distributions.hpp"

namespace recwild::experiment {

namespace {

using net::Continent;

struct Source {
  /// Live resolver — constructed only on worlds that replay this source's
  /// traffic (partition-scoped replicas leave it null; address/node below
  /// carry the identity for packing and analysis).
  std::unique_ptr<resolver::RecursiveResolver> resolver;
  net::IpAddress address;
  net::NodeId node = net::kInvalidNode;
  Continent continent = Continent::Europe;
  resolver::PolicyKind policy = resolver::PolicyKind::BindSrtt;
  double rate_per_sec = 0.0;
  std::uint64_t counter = 0;
  /// Private Poisson-arrival stream: gaps must not depend on how other
  /// sources' arrivals interleave, or results would vary with sharding
  /// (and, before this stream existed, with any event reordering).
  stats::Rng sched_rng;
};

/// Schedules Poisson arrivals of cache-busting lookups until `end`.
/// `lookups` is the world's kProductionLookups counter, threaded through so
/// the recursion pays no registry lookup per arrival.
void schedule_next(net::Simulation& sim, Source& src, net::SimTime end,
                   ProductionTarget target, obs::Counter* lookups) {
  const double gap_s = src.sched_rng.exponential(1.0 / src.rate_per_sec);
  const net::SimTime at = sim.now() + net::Duration::seconds(gap_s);
  if (at > end) return;
  sim.at(at, [&sim, &src, end, target, lookups] {
    lookups->add(1, sim.now());
    const std::string label = "x" + std::to_string(src.address.bits()) +
                              "n" + std::to_string(src.counter++);
    dns::Name qname = target == ProductionTarget::Root
                          ? dns::Name::parse(label)
                          : dns::Name::parse(label + ".nl");
    src.resolver->resolve(
        dns::Question{std::move(qname), dns::RRType::A, dns::RRClass::IN},
        [](const resolver::ResolveOutcome&) {});
    schedule_next(sim, src, end, target, lookups);
  });
}

/// Builds every source recursive on `world`, in config order. Worlds
/// sharing one snapshot (identical catalogs, bindings and seeds) draw the
/// byte-identical decision sequence here — addresses, nodes, policies,
/// rates — which is what lets shards replay disjoint subsets of the
/// sources and still merge into one coherent hour.
///
/// `only` (ascending source indices) makes this partition-scoped: every
/// node, address and random draw still happens for every source (identity
/// must not depend on the partition), but only the listed sources get a
/// live resolver. A replica shard therefore pays resolver state — caches,
/// sockets, timers — solely for the sources it replays.
std::vector<std::unique_ptr<Source>> build_sources(
    Testbed& world, const ProductionConfig& config,
    const std::vector<std::size_t>* only = nullptr) {
  auto& sim = world.sim();
  auto& network = world.network();
  stats::Rng rng = sim.rng().fork("production");

  std::vector<char> wanted;
  if (only != nullptr) {
    wanted.assign(config.recursives, 0);
    for (const std::size_t i : *only) wanted.at(i) = 1;
  }

  const stats::WeightedSampler continent_sampler{
      {config.weight_af, config.weight_as, config.weight_eu,
       config.weight_na, config.weight_oc, config.weight_sa}};
  const std::vector<Continent> continents{
      Continent::Africa,       Continent::Asia,    Continent::Europe,
      Continent::NorthAmerica, Continent::Oceania, Continent::SouthAmerica};

  std::vector<std::unique_ptr<Source>> sources;
  sources.reserve(config.recursives);
  for (std::size_t i = 0; i < config.recursives; ++i) {
    const Continent c = continents[continent_sampler.sample(rng)];
    const auto cities = net::locations_on(c);
    const auto& city = cities[rng.index(cities.size())];
    net::GeoPoint loc = city.point;
    loc.lat_deg += rng.uniform(-2.0, 2.0);
    loc.lon_deg += rng.uniform(-2.0, 2.0);
    const net::NodeId node =
        network.add_node("prod-recursive-" + std::to_string(i), loc);

    auto src = std::make_unique<Source>();
    src->node = node;
    src->continent = c;
    src->policy = config.mixture.draw(rng);
    src->sched_rng = rng.fork("prod-sched", i);
    resolver::ResolverConfig rc;
    rc.name = "prod-recursive-" + std::to_string(i);
    rc.policy = src->policy;
    rc.selection.bind_decay = config.bind_decay;
    if (config.warm_start) {
      // Steady-state resolvers keep their infra entries alive through
      // background traffic the synthesizer doesn't generate; stop the
      // 10-minute expiry from re-triggering cold-start probing mid-hour.
      rc.infra.entry_ttl = net::Duration::hours(24);
    }

    // Reachability holes: some letters are simply never reachable from
    // some recursives (routing/filtering); drop them from this source's
    // world view.
    std::vector<resolver::RootHint> hints;
    for (const auto& h : world.hints()) {
      if (!rng.chance(config.unreachable_fraction)) hints.push_back(h);
    }
    if (hints.empty()) hints.push_back(world.hints().front());

    src->address = network.allocate_address();
    stats::Rng resolver_rng = rng.fork("prod-" + std::to_string(i));
    const bool materialize = wanted.empty() || wanted[i] != 0;
    if (materialize) {
      src->resolver = std::make_unique<resolver::RecursiveResolver>(
          network, node, src->address, std::move(rc), hints, resolver_rng);
      src->resolver->start();
    }

    if (config.warm_start) {
      // Long-running recursives know their letters' RTTs already; seed the
      // infra cache with the stable path RTT plus measurement noise so no
      // cold-start exploration happens inside the measured hour. The
      // route() condition and draws run on every world — identical
      // bindings give identical routes — whether or not the resolver is
      // materialized, so the shared rng stream never skews.
      for (const auto& h : hints) {
        const net::NodeId target = network.route(node, h.address);
        if (target == net::kInvalidNode) continue;
        const double rtt = network.base_rtt(node, target).ms() *
                           rng.uniform(0.97, 1.03);
        if (materialize) {
          src->resolver->infra().report_rtt(
              h.address, net::Duration::millis(rtt), sim.now());
        }
      }
    }
    const double volume =
        rng.lognormal(config.volume_mu, config.volume_sigma);
    src->rate_per_sec = volume / (config.duration_hours * 3600.0);
    sources.push_back(std::move(src));
  }
  return sources;
}

/// Per observed service: query count per client address, as reconstructed
/// from that world's authoritative-side logs.
using ClientCounts =
    std::vector<std::unordered_map<net::IpAddress, std::uint64_t>>;

/// Runs the traffic of `source_indices` on `world` and harvests the logs of
/// the observed services. `sources` must be `world`'s own (pre-built, with
/// live resolvers for at least `source_indices`).
ClientCounts run_production_shard(
    Testbed& world, std::vector<std::unique_ptr<Source>>& sources,
    const ProductionConfig& config,
    const std::vector<std::size_t>& source_indices,
    const std::vector<std::size_t>& observed) {
  auto& sim = world.sim();
  auto& group = config.target == ProductionTarget::Root
                    ? world.roots()
                    : world.nl_services();

  // Aggregates only at the authoritatives: drop per-packet log entries.
  for (auto& svc : group) {
    for (auto& site : svc.sites()) {
      site.server->log().set_retain_entries(false);
    }
  }

  const net::SimTime end =
      net::SimTime::origin() +
      net::Duration::hours(config.duration_hours);
  obs::Counter* lookups =
      &sim.metrics().counter(obs::names::kProductionLookups);
  for (const std::size_t i : source_indices) {
    schedule_next(sim, *sources[i], end, config.target, lookups);
  }
  sim.run();

  ClientCounts counts(observed.size());
  for (std::size_t oi = 0; oi < observed.size(); ++oi) {
    for (const auto& site : group[observed[oi]].sites()) {
      for (const auto& [client, n] : site.server->log().per_client()) {
        counts[oi][client] += n;
      }
    }
  }
  return counts;
}

/// Deterministic LPT packing of source indices onto `shards` bins, weighted
/// by each source's expected query rate. Empty bins are dropped.
std::vector<std::vector<std::size_t>> pack_sources(
    const std::vector<std::unique_ptr<Source>>& sources, std::size_t shards) {
  std::vector<std::size_t> order(sources.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&sources](std::size_t a,
                                                   std::size_t b) {
    if (sources[a]->rate_per_sec != sources[b]->rate_per_sec) {
      return sources[a]->rate_per_sec > sources[b]->rate_per_sec;
    }
    return a < b;
  });
  std::vector<std::vector<std::size_t>> bins(shards);
  std::vector<double> load(shards, 0.0);
  for (const std::size_t i : order) {
    const std::size_t lightest = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    load[lightest] += sources[i]->rate_per_sec;
    bins[lightest].push_back(i);
  }
  std::erase_if(bins, [](const auto& b) { return b.empty(); });
  for (auto& bin : bins) std::sort(bin.begin(), bin.end());
  return bins;
}

}  // namespace

double ProductionResult::fraction_at_least(std::size_t n) const {
  double f = 0;
  for (std::size_t i = n; i <= fraction_querying.size(); ++i) {
    f += fraction_querying[i - 1];
  }
  return f;
}

ProductionResult run_production(Testbed& testbed,
                                const ProductionConfig& config) {
  // Observed service group.
  auto& group = config.target == ProductionTarget::Root
                    ? testbed.roots()
                    : testbed.nl_services();
  std::vector<std::size_t> observed;
  if (config.target == ProductionTarget::Root) {
    // DITL-2017: letters B, G and L missing (indices 1, 6, 11).
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (i != 1 && i != 6 && i != 11) observed.push_back(i);
    }
  } else {
    // 4 of the 8 .nl authoritatives: two unicast, two anycast.
    observed = {0, 1, 5, 6};
  }

  // The busy-recursive population's identity always exists in full on
  // every world (so addresses and node ids never depend on the shard
  // count); shards only split whose traffic — and whose live resolver
  // state — is replayed where.
  std::vector<std::unique_ptr<Source>> sources =
      build_sources(testbed, config);

  std::size_t shards =
      config.shards != 0
          ? config.shards
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  shards = std::min(shards, std::max<std::size_t>(1, sources.size()));

  ClientCounts counts(observed.size());
  if (shards <= 1) {
    std::vector<std::size_t> all(sources.size());
    std::iota(all.begin(), all.end(), 0);
    counts = run_production_shard(testbed, sources, config, all, observed);
  } else {
    const auto parts = pack_sources(sources, shards);
    std::vector<ClientCounts> per_shard(parts.size());
    // Replica shards share the caller's world snapshot (zones, catalog,
    // services planned once) and construct live resolvers only for their
    // own sources. Metric deltas against a post-build baseline stream into
    // one accumulator, compacted; trace events stay per-shard so they can
    // be appended in shard order.
    obs::MetricRegistry accumulator;
    std::mutex accumulator_mu;
    std::vector<std::vector<obs::TraceEvent>> shard_events(parts.size());
    std::exception_ptr error;
    std::mutex error_mu;
    std::vector<std::thread> workers;
    workers.reserve(parts.size() - 1);
    for (std::size_t i = 1; i < parts.size(); ++i) {
      workers.emplace_back([&testbed, &config, &parts, &per_shard,
                            &accumulator, &accumulator_mu, &shard_events,
                            &observed, &error, &error_mu, i] {
        try {
          Testbed replica{testbed.world()};
          auto replica_sources =
              build_sources(replica, config, &parts[i]);
          replica.sim().sync_obs();  // fold build-time event tallies in
          const obs::MetricsSnapshot baseline =
              replica.sim().metrics().snapshot();
          const std::size_t trace_base = replica.sim().trace().size();
          per_shard[i] = run_production_shard(replica, replica_sources,
                                              config, parts[i], observed);
          obs::MetricsSnapshot delta =
              replica.sim().metrics().snapshot().delta_since(baseline);
          delta.compact();
          {
            const std::scoped_lock lock{accumulator_mu};
            accumulator.merge_sum(delta);
          }
          const auto& events = replica.sim().trace().events();
          shard_events[i].assign(events.begin() + trace_base, events.end());
        } catch (...) {
          const std::scoped_lock lock{error_mu};
          if (!error) error = std::current_exception();
        }
      });
    }
    try {
      per_shard[0] =
          run_production_shard(testbed, sources, config, parts[0], observed);
    } catch (...) {
      const std::scoped_lock lock{error_mu};
      if (!error) error = std::current_exception();
    }
    for (auto& w : workers) w.join();
    if (error) std::rethrow_exception(error);

    // The hour's server-side logs are disjoint per shard: merge by sum.
    for (const auto& shard_counts : per_shard) {
      for (std::size_t oi = 0; oi < observed.size(); ++oi) {
        for (const auto& [client, n] : shard_counts[oi]) {
          counts[oi][client] += n;
        }
      }
    }
    testbed.sim().metrics().merge_sum(accumulator.snapshot());
    for (std::size_t i = 1; i < parts.size(); ++i) {
      for (const auto& event : shard_events[i]) {
        testbed.sim().trace().record(event);
      }
    }
  }

  // Reconstruct per-recursive traffic from the authoritative-side logs,
  // exactly as the paper does from DITL/ENTRADA captures.
  ProductionResult result;
  result.sources_total = sources.size();
  result.metrics = testbed.sim().metrics().snapshot();
  std::unordered_map<net::IpAddress, RecursiveTraffic> traffic;
  for (std::size_t oi = 0; oi < observed.size(); ++oi) {
    result.service_labels.push_back(group[observed[oi]].name());
    for (const auto& [client, count] : counts[oi]) {
      auto& t = traffic[client];
      if (t.per_service.empty()) {
        t.per_service.assign(observed.size(), 0);
        t.address = client;
      }
      t.per_service[oi] += count;
      t.total += count;
    }
  }
  // Attach source metadata.
  for (auto& [addr, t] : traffic) {
    for (const auto& src : sources) {
      if (src->address == addr) {
        t.continent = src->continent;
        t.node = src->node;
        t.policy = src->policy;
        break;
      }
    }
  }
  for (auto& [addr, t] : traffic) {
    if (t.total >= config.min_queries) {
      result.recursives.push_back(std::move(t));
    }
  }
  // Equal totals break by address: the rows come out of a hash map, whose
  // iteration order is not portable, so the sort key must be a total order.
  std::sort(result.recursives.begin(), result.recursives.end(),
            [](const RecursiveTraffic& a, const RecursiveTraffic& b) {
              if (a.total != b.total) return a.total > b.total;
              return a.address < b.address;
            });

  // Figure 7 aggregates.
  const std::size_t n_services = result.service_labels.size();
  std::vector<double> rank_sum(n_services, 0.0);
  std::vector<std::size_t> querying(n_services, 0);
  for (const auto& t : result.recursives) {
    std::vector<double> shares;
    std::size_t used = 0;
    for (const auto c : t.per_service) {
      shares.push_back(static_cast<double>(c) /
                       static_cast<double>(t.total));
      if (c > 0) ++used;
    }
    std::sort(shares.rbegin(), shares.rend());
    for (std::size_t r = 0; r < n_services; ++r) rank_sum[r] += shares[r];
    if (used > 0) ++querying[used - 1];
  }
  const double qualif = static_cast<double>(result.recursives.size());
  result.mean_rank_share.resize(n_services, 0.0);
  result.fraction_querying.resize(n_services, 0.0);
  if (qualif > 0) {
    for (std::size_t r = 0; r < n_services; ++r) {
      result.mean_rank_share[r] = rank_sum[r] / qualif;
      result.fraction_querying[r] =
          static_cast<double>(querying[r]) / qualif;
    }
  }
  return result;
}

DeploymentLatency analyze_nl_latency(Testbed& testbed,
                                     const ProductionResult& result) {
  auto& network = testbed.network();
  DeploymentLatency out;
  stats::Sample overall;
  for (const Continent c : net::all_continents()) {
    stats::Sample sample;
    std::size_t queries = 0;
    for (const auto& t : result.recursives) {
      if (t.continent != c || t.node == net::kInvalidNode) continue;
      for (std::size_t s = 0; s < t.per_service.size(); ++s) {
        if (t.per_service[s] == 0) continue;
        // Find the service by label (observed subset of nl services).
        for (auto& svc : testbed.nl_services()) {
          if (svc.name() != result.service_labels[s]) continue;
          const double rtt =
              network.base_rtt_to(t.node, svc.address()).ms();
          // Weight by query count, capped to bound memory.
          const std::size_t w = static_cast<std::size_t>(
              std::min<std::uint64_t>(t.per_service[s], 64));
          for (std::size_t k = 0; k < w; ++k) {
            sample.add(rtt);
            overall.add(rtt);
          }
          queries += t.per_service[s];
          break;
        }
      }
    }
    if (sample.empty()) continue;
    LatencyByContinent row;
    row.continent = c;
    row.queries = queries;
    row.median_ms = sample.median();
    row.p90_ms = sample.quantile(0.90);
    row.worst_ms = sample.quantile(1.0);
    out.continents.push_back(row);
  }
  if (!overall.empty()) {
    out.overall_median_ms = overall.median();
    out.overall_p90_ms = overall.quantile(0.90);
    out.overall_worst_ms = overall.quantile(1.0);
  }
  return out;
}

}  // namespace recwild::experiment
