#include "experiment/production.hpp"

#include <algorithm>

#include "stats/distributions.hpp"

namespace recwild::experiment {

namespace {

using net::Continent;

struct Source {
  std::unique_ptr<resolver::RecursiveResolver> resolver;
  Continent continent = Continent::Europe;
  resolver::PolicyKind policy = resolver::PolicyKind::BindSrtt;
  double rate_per_sec = 0.0;
  std::uint64_t counter = 0;
};

/// Schedules Poisson arrivals of cache-busting lookups until `end`.
void schedule_next(net::Simulation& sim, Source& src, net::SimTime end,
                   stats::Rng& rng, ProductionTarget target) {
  const double gap_s = rng.exponential(1.0 / src.rate_per_sec);
  const net::SimTime at = sim.now() + net::Duration::seconds(gap_s);
  if (at > end) return;
  sim.at(at, [&sim, &src, end, &rng, target] {
    const std::string label =
        "x" + std::to_string(src.resolver->address().bits()) + "n" +
        std::to_string(src.counter++);
    dns::Name qname = target == ProductionTarget::Root
                          ? dns::Name::parse(label)
                          : dns::Name::parse(label + ".nl");
    src.resolver->resolve(
        dns::Question{std::move(qname), dns::RRType::A, dns::RRClass::IN},
        [](const resolver::ResolveOutcome&) {});
    schedule_next(sim, src, end, rng, target);
  });
}

}  // namespace

double ProductionResult::fraction_at_least(std::size_t n) const {
  double f = 0;
  for (std::size_t i = n; i <= fraction_querying.size(); ++i) {
    f += fraction_querying[i - 1];
  }
  return f;
}

ProductionResult run_production(Testbed& testbed,
                                const ProductionConfig& config) {
  auto& sim = testbed.sim();
  auto& network = testbed.network();
  stats::Rng rng = sim.rng().fork("production");

  // Observed service group.
  auto& group = config.target == ProductionTarget::Root
                    ? testbed.roots()
                    : testbed.nl_services();
  std::vector<std::size_t> observed;
  if (config.target == ProductionTarget::Root) {
    // DITL-2017: letters B, G and L missing (indices 1, 6, 11).
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (i != 1 && i != 6 && i != 11) observed.push_back(i);
    }
  } else {
    // 4 of the 8 .nl authoritatives: two unicast, two anycast.
    observed = {0, 1, 5, 6};
  }

  // Aggregates only at the authoritatives: drop per-packet log entries.
  for (auto& svc : group) {
    for (auto& site : svc.sites()) {
      site.server->log().set_retain_entries(false);
    }
  }

  // Build the busy-recursive population.
  const stats::WeightedSampler continent_sampler{
      {config.weight_af, config.weight_as, config.weight_eu,
       config.weight_na, config.weight_oc, config.weight_sa}};
  const std::vector<Continent> continents{
      Continent::Africa,       Continent::Asia,    Continent::Europe,
      Continent::NorthAmerica, Continent::Oceania, Continent::SouthAmerica};

  std::vector<std::unique_ptr<Source>> sources;
  sources.reserve(config.recursives);
  for (std::size_t i = 0; i < config.recursives; ++i) {
    const Continent c = continents[continent_sampler.sample(rng)];
    const auto cities = net::locations_on(c);
    const auto& city = cities[rng.index(cities.size())];
    net::GeoPoint loc = city.point;
    loc.lat_deg += rng.uniform(-2.0, 2.0);
    loc.lon_deg += rng.uniform(-2.0, 2.0);
    const net::NodeId node =
        network.add_node("prod-recursive-" + std::to_string(i), loc);

    auto src = std::make_unique<Source>();
    src->continent = c;
    src->policy = config.mixture.draw(rng);
    resolver::ResolverConfig rc;
    rc.name = "prod-recursive-" + std::to_string(i);
    rc.policy = src->policy;
    rc.selection.bind_decay = config.bind_decay;
    if (config.warm_start) {
      // Steady-state resolvers keep their infra entries alive through
      // background traffic the synthesizer doesn't generate; stop the
      // 10-minute expiry from re-triggering cold-start probing mid-hour.
      rc.infra.entry_ttl = net::Duration::hours(24);
    }

    // Reachability holes: some letters are simply never reachable from
    // some recursives (routing/filtering); drop them from this source's
    // world view.
    std::vector<resolver::RootHint> hints;
    for (const auto& h : testbed.hints()) {
      if (!rng.chance(config.unreachable_fraction)) hints.push_back(h);
    }
    if (hints.empty()) hints.push_back(testbed.hints().front());

    src->resolver = std::make_unique<resolver::RecursiveResolver>(
        network, node, network.allocate_address(), std::move(rc), hints,
        rng.fork("prod-" + std::to_string(i)));
    src->resolver->start();

    if (config.warm_start) {
      // Long-running recursives know their letters' RTTs already; seed the
      // infra cache with the stable path RTT plus measurement noise so no
      // cold-start exploration happens inside the measured hour.
      for (const auto& h : hints) {
        const net::NodeId target = network.route(node, h.address);
        if (target == net::kInvalidNode) continue;
        const double rtt = network.base_rtt(node, target).ms() *
                           rng.uniform(0.97, 1.03);
        src->resolver->infra().report_rtt(
            h.address, net::Duration::millis(rtt), sim.now());
      }
    }
    const double volume =
        rng.lognormal(config.volume_mu, config.volume_sigma);
    src->rate_per_sec = volume / (config.duration_hours * 3600.0);
    sources.push_back(std::move(src));
  }

  const net::SimTime end =
      net::SimTime::origin() +
      net::Duration::hours(config.duration_hours);
  for (auto& src : sources) {
    schedule_next(sim, *src, end, rng, config.target);
  }
  sim.run();

  // Reconstruct per-recursive traffic from the authoritative-side logs,
  // exactly as the paper does from DITL/ENTRADA captures.
  ProductionResult result;
  result.sources_total = sources.size();
  std::unordered_map<net::IpAddress, RecursiveTraffic> traffic;
  for (std::size_t oi = 0; oi < observed.size(); ++oi) {
    const auto& svc = group[observed[oi]];
    result.service_labels.push_back(svc.name());
    for (const auto& site : svc.sites()) {
      for (const auto& [client, count] : site.server->log().per_client()) {
        auto& t = traffic[client];
        if (t.per_service.empty()) {
          t.per_service.assign(observed.size(), 0);
          t.address = client;
        }
        t.per_service[oi] += count;
        t.total += count;
      }
    }
  }
  // Attach source metadata.
  for (auto& [addr, t] : traffic) {
    for (const auto& src : sources) {
      if (src->resolver->address() == addr) {
        t.continent = src->continent;
        t.node = src->resolver->node();
        t.policy = src->policy;
        break;
      }
    }
  }
  for (auto& [addr, t] : traffic) {
    if (t.total >= config.min_queries) {
      result.recursives.push_back(std::move(t));
    }
  }
  std::sort(result.recursives.begin(), result.recursives.end(),
            [](const RecursiveTraffic& a, const RecursiveTraffic& b) {
              return a.total > b.total;
            });

  // Figure 7 aggregates.
  const std::size_t n_services = result.service_labels.size();
  std::vector<double> rank_sum(n_services, 0.0);
  std::vector<std::size_t> querying(n_services, 0);
  for (const auto& t : result.recursives) {
    std::vector<double> shares;
    std::size_t used = 0;
    for (const auto c : t.per_service) {
      shares.push_back(static_cast<double>(c) /
                       static_cast<double>(t.total));
      if (c > 0) ++used;
    }
    std::sort(shares.rbegin(), shares.rend());
    for (std::size_t r = 0; r < n_services; ++r) rank_sum[r] += shares[r];
    if (used > 0) ++querying[used - 1];
  }
  const double qualif = static_cast<double>(result.recursives.size());
  result.mean_rank_share.resize(n_services, 0.0);
  result.fraction_querying.resize(n_services, 0.0);
  if (qualif > 0) {
    for (std::size_t r = 0; r < n_services; ++r) {
      result.mean_rank_share[r] = rank_sum[r] / qualif;
      result.fraction_querying[r] =
          static_cast<double>(querying[r]) / qualif;
    }
  }
  return result;
}

DeploymentLatency analyze_nl_latency(Testbed& testbed,
                                     const ProductionResult& result) {
  auto& network = testbed.network();
  DeploymentLatency out;
  stats::Sample overall;
  for (const Continent c : net::all_continents()) {
    stats::Sample sample;
    std::size_t queries = 0;
    for (const auto& t : result.recursives) {
      if (t.continent != c || t.node == net::kInvalidNode) continue;
      for (std::size_t s = 0; s < t.per_service.size(); ++s) {
        if (t.per_service[s] == 0) continue;
        // Find the service by label (observed subset of nl services).
        for (auto& svc : testbed.nl_services()) {
          if (svc.name() != result.service_labels[s]) continue;
          const double rtt =
              network.base_rtt_to(t.node, svc.address()).ms();
          // Weight by query count, capped to bound memory.
          const std::size_t w = static_cast<std::size_t>(
              std::min<std::uint64_t>(t.per_service[s], 64));
          for (std::size_t k = 0; k < w; ++k) {
            sample.add(rtt);
            overall.add(rtt);
          }
          queries += t.per_service[s];
          break;
        }
      }
    }
    if (sample.empty()) continue;
    LatencyByContinent row;
    row.continent = c;
    row.queries = queries;
    row.median_ms = sample.median();
    row.p90_ms = sample.quantile(0.90);
    row.worst_ms = sample.quantile(1.0);
    out.continents.push_back(row);
  }
  if (!overall.empty()) {
    out.overall_median_ms = overall.median();
    out.overall_p90_ms = overall.quantile(0.90);
    out.overall_worst_ms = overall.quantile(1.0);
  }
  return out;
}

}  // namespace recwild::experiment
