#include "experiment/export.hpp"

#include <cstdio>

namespace recwild::experiment {

namespace {

std::string escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void write_campaign_csv(std::ostream& out, const CampaignResult& result) {
  CsvWriter csv{out};
  csv.row({"probe_id", "continent", "recursive", "query_index", "service"});
  for (const auto& vp : result.vps) {
    for (std::size_t k = 0; k < vp.sequence.size(); ++k) {
      const int s = vp.sequence[k];
      csv.row({std::to_string(vp.probe_id),
               std::string{net::continent_code(vp.continent)},
               vp.recursive_addr.to_string(), std::to_string(k),
               s >= 0 ? result.service_codes.at(
                            static_cast<std::size_t>(s))
                      : std::string{}});
    }
  }
}

void write_preferences_csv(std::ostream& out, const CampaignResult& result) {
  const auto prefs = analyze_preferences(result);
  CsvWriter csv{out};
  std::vector<std::string> header{"probe_id", "continent", "queries",
                                  "favourite", "favourite_fraction"};
  for (const auto& code : result.service_codes) {
    header.push_back("fraction_" + code);
  }
  for (const auto& code : result.service_codes) {
    header.push_back("rtt_" + code);
  }
  csv.row(header);
  for (const auto& p : prefs.vps) {
    std::vector<std::string> row{
        std::to_string(p.probe_id),
        std::string{net::continent_code(p.continent)},
        std::to_string(p.queries),
        p.favourite >= 0
            ? result.service_codes.at(static_cast<std::size_t>(p.favourite))
            : std::string{},
        CsvWriter::num(p.favourite_fraction)};
    for (const double f : p.fraction) row.push_back(CsvWriter::num(f));
    for (const double r : p.rtt_ms) row.push_back(CsvWriter::num(r));
    csv.row(row);
  }
}

void write_shares_csv(std::ostream& out, const CampaignResult& result) {
  const auto shares = analyze_shares(result);
  CsvWriter csv{out};
  csv.row({"service", "share", "median_rtt_ms"});
  for (std::size_t s = 0; s < shares.codes.size(); ++s) {
    csv.row({shares.codes[s], CsvWriter::num(shares.query_share[s]),
             CsvWriter::num(shares.median_rtt_ms[s])});
  }
}

void write_production_csv(std::ostream& out, const ProductionResult& result) {
  CsvWriter csv{out};
  std::vector<std::string> header{"address", "continent", "policy", "total"};
  for (std::size_t r = 1; r <= result.service_labels.size(); ++r) {
    header.push_back("share_rank" + std::to_string(r));
  }
  csv.row(header);
  for (const auto& t : result.recursives) {
    std::vector<double> shares;
    for (const auto c : t.per_service) {
      shares.push_back(t.total ? double(c) / double(t.total) : 0.0);
    }
    std::sort(shares.rbegin(), shares.rend());
    std::vector<std::string> row{
        t.address.to_string(),
        std::string{net::continent_code(t.continent)},
        std::string{resolver::to_string(t.policy)},
        std::to_string(t.total)};
    for (const double s : shares) row.push_back(CsvWriter::num(s));
    csv.row(row);
  }
}

}  // namespace recwild::experiment
