#include "experiment/deployments.hpp"

#include <stdexcept>

namespace recwild::experiment {

std::vector<AuthCombination> table1_combinations() {
  return {
      {"2A", {"GRU", "NRT"}},
      {"2B", {"DUB", "FRA"}},
      {"2C", {"FRA", "SYD"}},
      {"3A", {"GRU", "NRT", "SYD"}},
      {"3B", {"DUB", "FRA", "IAD"}},
      {"4A", {"GRU", "NRT", "SYD", "DUB"}},
      {"4B", {"DUB", "FRA", "IAD", "SFO"}},
  };
}

AuthCombination combination(const std::string& id) {
  for (auto& c : table1_combinations()) {
    if (c.id == id) return c;
  }
  throw std::invalid_argument{"unknown Table-1 combination " + id};
}

std::vector<ServiceSpec> root_letter_specs() {
  // Scaled-down root: relative footprint sizes follow the 2017 root
  // (L/D/J/K/F/I large, B/H tiny). Letters with many sites get global
  // coverage; small letters sit in one region — which is what creates the
  // per-recursive latency differences between letters.
  return {
      {"a-root", {"IAD", "FRA", "HKG", "LAX"}},
      {"b-root", {"LAX"}},
      {"c-root", {"IAD", "ORD", "FRA", "MAD"}},
      {"d-root", {"IAD", "LHR", "NRT", "GRU", "SYD", "JNB", "ORD", "SIN"}},
      {"e-root", {"IAD", "AMS", "SIN", "SFO"}},
      {"f-root", {"SFO", "AMS", "HKG", "GRU", "JNB", "SYD", "ORD"}},
      {"g-root", {"IAD", "FRA"}},
      {"h-root", {"IAD", "AMS"}},
      {"i-root", {"ARN", "LHR", "HKG", "IAD", "GRU", "PER", "NBO"}},
      {"j-root", {"IAD", "LHR", "FRA", "NRT", "SIN", "GRU", "SYD", "LAX"}},
      {"k-root", {"AMS", "LHR", "FRA", "NRT", "IAD", "BOM", "GRU"}},
      {"l-root", {"LAX", "IAD", "AMS", "FRA", "SIN", "NRT", "SYD", "GRU",
                  "JNB", "ORD"}},
      {"m-root", {"NRT", "CDG", "SFO", "SIN"}},
  };
}

std::vector<ServiceSpec> nl_service_specs() {
  // Per the paper: 5 unicast authoritatives in the Netherlands plus 3
  // anycast services with worldwide sites (80+ sites in reality; the
  // relative shape — NL-only unicast vs global anycast — is what matters).
  return {
      {"nl-unicast-1", {"AMS"}},
      {"nl-unicast-2", {"AMS"}},
      {"nl-unicast-3", {"AMS"}},
      {"nl-unicast-4", {"AMS"}},
      {"nl-unicast-5", {"AMS"}},
      {"nl-anycast-1",
       {"AMS", "LHR", "IAD", "SFO", "NRT", "SIN", "GRU", "SYD"}},
      {"nl-anycast-2", {"AMS", "FRA", "ORD", "HKG", "JNB", "SCL"}},
      {"nl-anycast-3", {"AMS", "CDG", "IAD", "LAX", "NRT", "BOM", "GRU"}},
  };
}

std::vector<ServiceSpec> nl_all_anycast_specs() {
  return {
      {"nl-anycast-1",
       {"AMS", "LHR", "IAD", "SFO", "NRT", "SIN", "GRU", "SYD"}},
      {"nl-anycast-2", {"AMS", "FRA", "ORD", "HKG", "JNB", "SCL"}},
      {"nl-anycast-3", {"AMS", "CDG", "IAD", "LAX", "NRT", "BOM", "GRU"}},
      {"nl-anycast-4", {"AMS", "MAD", "SEA", "ICN", "SYD", "LIM"}},
      {"nl-anycast-5", {"AMS", "WAW", "DFW", "TPE", "CPT", "BUE"}},
      {"nl-anycast-6", {"AMS", "MIL", "YUL", "DEL", "AKL", "BOG"}},
      {"nl-anycast-7", {"AMS", "OSL", "ATL", "BKK", "MEL", "LOS"}},
      {"nl-anycast-8", {"AMS", "ZRH", "MEX", "DXB", "WLG", "CAI"}},
  };
}

}  // namespace recwild::experiment
