#include "experiment/campaign.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>
#include <unordered_map>

#include "attack/generator.hpp"
#include "obs/names.hpp"

namespace recwild::experiment {

namespace {

/// Schedules the attack traffic of world.config().attack for the bot VPs
/// this shard owns. Bots are the `bots` lowest-index VPs of each event — a
/// global, partition-independent set — and every attack qname is drawn at
/// scheduling time from an RNG forked per (event, bot, query), so the
/// stream a bot fires is byte-identical at any shard count.
void schedule_attack_traffic(Testbed& world,
                             const std::vector<std::size_t>& vp_indices) {
  const attack::AttackSchedule& schedule = world.config().attack;
  if (schedule.empty()) return;
  auto& sim = world.sim();
  auto& vps = world.population().vps();
  const dns::Name victim =
      dns::Name::parse(schedule.zone().victim_domain);
  // Registered whenever the schedule is armed — in every shard replica,
  // bots owned or not — so all replicas carry an identical registry.
  obs::Counter* injected =
      &sim.metrics().counter(obs::names::kAttackQueriesInjected);

  const stats::Rng attack_rng = sim.rng().fork("attack-campaign");
  for (std::size_t e = 0; e < schedule.events().size(); ++e) {
    const attack::AttackEvent& ev = schedule.events()[e];
    const stats::Rng event_rng = attack_rng.fork(e);
    for (const std::size_t v : vp_indices) {
      if (v >= static_cast<std::size_t>(ev.bots)) continue;
      auto& vp = vps[v];
      const stats::Rng bot_rng = event_rng.fork(vp.probe_id);
      // Identity-keyed phase offset de-synchronises the bots.
      const net::Duration phase = net::Duration::millis(
          bot_rng.fork("phase").uniform(0.0, ev.interval.ms()));
      std::size_t k = 0;
      for (net::SimTime at = ev.start + phase; at < ev.end;
           at = at + ev.interval, ++k) {
        stats::Rng query_rng = bot_rng.fork(k);
        const dns::Name qname =
            ev.kind == attack::AttackKind::Nxns
                ? attack::nxns_query_name(schedule.zone(), query_rng)
                : attack::water_torture_query_name(victim, query_rng);
        sim.at(at, [&world, &vp, qname, injected] {
          injected->add(1, world.sim().now());
          // Fire-and-forget: a bot never cares about the answer.
          vp.stub->query(qname, dns::RRType::A,
                         [](const client::StubResult&) {});
        });
      }
    }
  }
}

/// Schedules the campaign queries of the VPs in `vp_indices` (ascending) on
/// `world`, runs its simulation to completion, and returns one observation
/// per scheduled VP, in `vp_indices` order.
///
/// All randomness is keyed per VP (phase jitter forks on the probe id), so
/// the observations a VP produces depend only on the seed and on the VPs it
/// shares a recursive with — never on how the schedule was sharded.
std::vector<VpObservation> run_campaign_shard(
    Testbed& world, const CampaignConfig& config,
    const std::vector<std::size_t>& vp_indices) {
  auto& sim = world.sim();
  auto& network = world.network();
  auto& vps = world.population().vps();
  const auto& services = world.test_services();
  const dns::Name domain = world.test_domain();

  struct VpState {
    std::vector<int> sequence;
    std::unordered_map<net::IpAddress, std::size_t> recursive_use;
  };
  std::vector<VpState> states(vps.size());

  obs::MetricRegistry& m = sim.metrics();
  obs::Counter* q_sent = &m.counter(obs::names::kCampaignQueriesSent);
  obs::Counter* q_answered = &m.counter(obs::names::kCampaignQueriesAnswered);
  obs::Counter* q_unanswered =
      &m.counter(obs::names::kCampaignQueriesUnanswered);
  // Stamped at the origin: every shard schedules before any event runs.
  m.counter(obs::names::kCampaignVps)
      .add(vp_indices.size(), net::SimTime::origin());
  obs::DecisionTrace* trace = &sim.trace();
  const std::size_t queries_per_vp = config.queries_per_vp;

  const stats::Rng campaign_rng = sim.rng().fork("campaign");

  for (const std::size_t v : vp_indices) {
    auto& vp = vps[v];
    stats::Rng vp_rng = campaign_rng.fork(vp.probe_id);
    const net::Duration phase =
        config.phase_jitter
            ? net::Duration::millis(vp_rng.uniform(0.0, config.interval.ms()))
            : net::Duration::zero();
    for (std::size_t k = 0; k < config.queries_per_vp; ++k) {
      const net::SimTime at =
          net::SimTime::origin() + phase + config.interval * double(k);
      sim.at(at, [&world, &states, &vp, v, k, domain, q_sent, q_answered,
                  q_unanswered, trace, queries_per_vp] {
        q_sent->add(1, world.sim().now());
        const dns::Name qname = domain.prefixed(
            "q" + std::to_string(vp.probe_id) + "x" + std::to_string(k));
        vp.stub->query(
            qname, dns::RRType::TXT,
            [&world, &states, &vp, v, q_answered, q_unanswered, trace,
             queries_per_vp](const client::StubResult& r) {
              const net::SimTime now = world.sim().now();
              int idx = -1;
              if (!r.timed_out && !r.txt.empty()) {
                idx = world.test_index_of(r.txt.front());
              }
              if (idx >= 0) {
                q_answered->add(1, now);
              } else {
                q_unanswered->add(1, now);
              }
              states[v].sequence.push_back(idx);
              if (r.recursive_index < vp.stub->recursives().size()) {
                states[v].recursive_use
                    [vp.stub->recursives()[r.recursive_index]]++;
              }
              // Per-VP progress (never per-shard: the trace must not know
              // how the schedule was partitioned).
              if (states[v].sequence.size() == queries_per_vp &&
                  trace->enabled()) {
                trace->record({now, obs::TraceKind::Progress, "campaign",
                               "probe" + std::to_string(vp.probe_id), "done",
                               static_cast<double>(queries_per_vp)});
              }
            });
      });
    }
  }

  schedule_attack_traffic(world, vp_indices);

  sim.run();

  std::vector<VpObservation> observations;
  observations.reserve(vp_indices.size());
  for (const std::size_t v : vp_indices) {
    VpObservation obs;
    obs.probe_id = vps[v].probe_id;
    obs.continent = vps[v].continent;
    obs.sequence = std::move(states[v].sequence);

    // Primary recursive: the one that served the most queries. Equal counts
    // break by lowest address — unordered_map iteration order differs
    // between standard libraries, so the count alone is not deterministic.
    net::IpAddress primary{};
    std::size_t best = 0;
    for (const auto& [addr, n] : states[v].recursive_use) {
      if (n > best || (n == best && n > 0 && addr < primary)) {
        best = n;
        primary = addr;
      }
    }
    obs.recursive_addr = primary;

    const net::NodeId rnode = world.recursive_node(primary);
    obs.rtt_ms.resize(services.size(), 0.0);
    if (rnode != net::kInvalidNode) {
      for (std::size_t s = 0; s < services.size(); ++s) {
        obs.rtt_ms[s] =
            network.base_rtt_to(rnode, services[s].address()).ms();
      }
    }
    observations.push_back(std::move(obs));
  }
  return observations;
}

/// Deterministic LPT bin-packing of VP groups onto `shards` bins, weighted
/// by VP count. Returns per-shard ascending VP index lists; empty shards
/// are dropped.
std::vector<std::vector<std::size_t>> pack_groups(
    std::vector<std::vector<std::size_t>> groups, std::size_t shards) {
  std::vector<std::size_t> order(groups.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&groups](std::size_t a, std::size_t b) {
              if (groups[a].size() != groups[b].size()) {
                return groups[a].size() > groups[b].size();
              }
              return groups[a].front() < groups[b].front();
            });

  std::vector<std::vector<std::size_t>> bins(shards);
  std::vector<std::size_t> load(shards, 0);
  for (const std::size_t g : order) {
    const std::size_t lightest = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    load[lightest] += groups[g].size();
    auto& bin = bins[lightest];
    bin.insert(bin.end(), groups[g].begin(), groups[g].end());
  }
  std::erase_if(bins, [](const auto& b) { return b.empty(); });
  for (auto& bin : bins) std::sort(bin.begin(), bin.end());
  return bins;
}

}  // namespace

std::vector<std::vector<std::size_t>> campaign_vp_groups(Testbed& testbed) {
  const auto& pop = testbed.population();
  const auto& vps = pop.vps();

  // Forwarders are transparent middleboxes: chase them to their upstream
  // recursive, which is what actually holds shared state.
  std::unordered_map<net::IpAddress, net::IpAddress> via_forwarder;
  for (const auto& f : pop.forwarders()) {
    via_forwarder.emplace(f->address(), f->upstream());
  }

  // Union-find over recursive addresses; each VP unions all its upstreams.
  std::unordered_map<net::IpAddress, std::size_t> addr_index;
  std::vector<std::size_t> parent;
  auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto index_of = [&](net::IpAddress addr) {
    const auto fwd = via_forwarder.find(addr);
    if (fwd != via_forwarder.end()) addr = fwd->second;
    const auto [it, inserted] = addr_index.emplace(addr, parent.size());
    if (inserted) parent.push_back(it->second);
    return it->second;
  };

  std::vector<std::size_t> vp_set(vps.size());
  for (std::size_t v = 0; v < vps.size(); ++v) {
    const auto& upstreams = vps[v].stub->recursives();
    std::size_t first = index_of(upstreams.empty()
                                     ? net::IpAddress{}
                                     : upstreams.front());
    for (std::size_t u = 1; u < upstreams.size(); ++u) {
      const std::size_t other = index_of(upstreams[u]);
      parent[find(other)] = find(first);
    }
    vp_set[v] = first;
  }

  // Group VPs by root set, in first-seen order.
  std::unordered_map<std::size_t, std::size_t> group_of_root;
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t v = 0; v < vps.size(); ++v) {
    const std::size_t root = find(vp_set[v]);
    const auto [it, inserted] = group_of_root.emplace(root, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(v);
  }
  return groups;
}

CampaignResult run_campaign(Testbed& testbed, const CampaignConfig& config) {
  const auto& vps = testbed.population().vps();

  CampaignResult result;
  for (const auto& svc : testbed.test_services()) {
    result.service_codes.push_back(svc.name());
  }

  std::size_t shards =
      config.shards != 0
          ? config.shards
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  shards = std::min(shards, std::max<std::size_t>(1, vps.size()));

  if (shards <= 1) {
    std::vector<std::size_t> all(vps.size());
    std::iota(all.begin(), all.end(), 0);
    result.vps = run_campaign_shard(testbed, config, all);
    result.metrics = testbed.sim().metrics().snapshot();
    return result;
  }

  const auto parts = pack_groups(campaign_vp_groups(testbed), shards);

  // Shard 0 runs on the caller's testbed (keeping its logs/caches useful to
  // callers, exactly like the serial path); the rest replay on replicas
  // built from the same config, hence bit-identical worlds.
  std::vector<std::vector<VpObservation>> per_shard(parts.size());
  // What each replica shard adds to the caller's registry/trace: metric
  // deltas relative to a post-build baseline (the caller already carries
  // one copy of the build-phase contribution), and the trace events
  // recorded after the replica finished building.
  std::vector<obs::MetricsSnapshot> shard_metrics(parts.size());
  std::vector<std::vector<obs::TraceEvent>> shard_events(parts.size());
  std::exception_ptr error;
  std::mutex error_mu;
  std::vector<std::thread> workers;
  workers.reserve(parts.size() - 1);
  for (std::size_t i = 1; i < parts.size(); ++i) {
    workers.emplace_back([&testbed, &config, &parts, &per_shard,
                          &shard_metrics, &shard_events, &error, &error_mu,
                          i] {
      try {
        Testbed replica{testbed.config()};
        replica.sim().sync_obs();  // fold build-time event tallies in
        const obs::MetricsSnapshot baseline =
            replica.sim().metrics().snapshot();
        const std::size_t trace_base = replica.sim().trace().size();
        per_shard[i] = run_campaign_shard(replica, config, parts[i]);
        shard_metrics[i] =
            replica.sim().metrics().snapshot().delta_since(baseline);
        const auto& events = replica.sim().trace().events();
        shard_events[i].assign(events.begin() + trace_base, events.end());
      } catch (...) {
        const std::scoped_lock lock{error_mu};
        if (!error) error = std::current_exception();
      }
    });
  }
  try {
    per_shard[0] = run_campaign_shard(testbed, config, parts[0]);
  } catch (...) {
    const std::scoped_lock lock{error_mu};
    if (!error) error = std::current_exception();
  }
  for (auto& w : workers) w.join();
  if (error) std::rethrow_exception(error);

  // Merge back in probe order: output is independent of the partition.
  result.vps.resize(vps.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (std::size_t j = 0; j < parts[i].size(); ++j) {
      result.vps[parts[i][j]] = std::move(per_shard[i][j]);
    }
  }
  // Fold replica observability into the caller's world. Counters and
  // histogram bins sum and timestamps take the max, so the merged registry
  // matches the serial run exactly; the trace multiset likewise (export
  // DecisionTrace::canonical() for byte-stable ordering).
  for (std::size_t i = 1; i < parts.size(); ++i) {
    testbed.sim().metrics().merge_sum(shard_metrics[i]);
    for (const auto& event : shard_events[i]) {
      testbed.sim().trace().record(event);
    }
  }
  result.metrics = testbed.sim().metrics().snapshot();
  return result;
}

}  // namespace recwild::experiment
