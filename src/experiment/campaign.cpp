#include "experiment/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "attack/generator.hpp"
#include "experiment/sharding.hpp"
#include "obs/names.hpp"
#include "obs/process.hpp"

namespace recwild::experiment {

namespace {

using WallClock = std::chrono::steady_clock;

double wall_seconds(WallClock::duration d) {
  return std::chrono::duration<double>(d).count();
}

/// Schedules the attack traffic of world.config().attack for the bot VPs
/// this shard owns. Bots are the `bots` lowest-index VPs of each event — a
/// global, partition-independent set — and every attack qname is drawn at
/// scheduling time from an RNG forked per (event, bot, query), so the
/// stream a bot fires is byte-identical at any shard count.
void schedule_attack_traffic(Testbed& world,
                             const std::vector<std::size_t>& vp_indices) {
  const attack::AttackSchedule& schedule = world.config().attack;
  if (schedule.empty()) return;
  auto& sim = world.sim();
  auto& pop = world.population();
  const dns::Name victim =
      dns::Name::parse(schedule.zone().victim_domain);
  // Registered whenever the schedule is armed — in every shard replica,
  // bots owned or not — so all replicas carry an identical registry.
  obs::Counter* injected =
      &sim.metrics().counter(obs::names::kAttackQueriesInjected);

  const stats::Rng attack_rng = sim.rng().fork("attack-campaign");
  for (std::size_t e = 0; e < schedule.events().size(); ++e) {
    const attack::AttackEvent& ev = schedule.events()[e];
    const stats::Rng event_rng = attack_rng.fork(e);
    for (const std::size_t v : vp_indices) {
      if (v >= static_cast<std::size_t>(ev.bots)) continue;
      client::VantagePoint* vp = pop.by_probe(v);
      const stats::Rng bot_rng = event_rng.fork(vp->probe_id);
      // Identity-keyed phase offset de-synchronises the bots.
      const net::Duration phase = net::Duration::millis(
          bot_rng.fork("phase").uniform(0.0, ev.interval.ms()));
      std::size_t k = 0;
      for (net::SimTime at = ev.start + phase; at < ev.end;
           at = at + ev.interval, ++k) {
        stats::Rng query_rng = bot_rng.fork(k);
        const dns::Name qname =
            ev.kind == attack::AttackKind::Nxns
                ? attack::nxns_query_name(schedule.zone(), query_rng)
                : attack::water_torture_query_name(victim, query_rng);
        sim.at(at, [&world, vp, qname, injected] {
          injected->add(1, world.sim().now());
          // Fire-and-forget: a bot never cares about the answer.
          vp->stub->query(qname, dns::RRType::A,
                          [](const client::StubResult&) {});
        });
      }
    }
  }
}

/// Schedules the campaign queries of the VPs in `vp_indices` (ascending) on
/// `world`, runs its simulation to completion, and returns one observation
/// per scheduled VP, in `vp_indices` order. `world` may be a
/// partition-scoped replica, as long as it materializes every VP listed.
///
/// All randomness is keyed per VP (phase jitter forks on the probe id), so
/// the observations a VP produces depend only on the seed and on the VPs it
/// shares a recursive with — never on how the schedule was sharded.
std::vector<VpObservation> run_campaign_shard(
    Testbed& world, const CampaignConfig& config,
    const std::vector<std::size_t>& vp_indices) {
  auto& sim = world.sim();
  auto& network = world.network();
  auto& pop = world.population();
  const auto& services = world.test_services();
  const dns::Name domain = world.test_domain();

  struct VpState {
    std::vector<int> sequence;
    /// (recursive address, queries served) pairs. VPs use 1-2 recursives;
    /// a flat vector beats the hash map it replaced on both memory and
    /// lookup time, and — unlike the map — iterates deterministically.
    std::vector<std::pair<net::IpAddress, std::size_t>> recursive_use;
  };
  // Rank-indexed (position in vp_indices), NOT probe-indexed: a
  // partition-scoped shard must not pay memory for the whole fleet.
  std::vector<VpState> states(vp_indices.size());

  obs::MetricRegistry& m = sim.metrics();
  obs::Counter* q_sent = &m.counter(obs::names::kCampaignQueriesSent);
  obs::Counter* q_answered = &m.counter(obs::names::kCampaignQueriesAnswered);
  obs::Counter* q_unanswered =
      &m.counter(obs::names::kCampaignQueriesUnanswered);
  // Stamped at the origin: every shard schedules before any event runs.
  m.counter(obs::names::kCampaignVps)
      .add(vp_indices.size(), net::SimTime::origin());
  obs::DecisionTrace* trace = &sim.trace();
  const std::size_t queries_per_vp = config.queries_per_vp;

  const stats::Rng campaign_rng = sim.rng().fork("campaign");

  for (std::size_t r = 0; r < vp_indices.size(); ++r) {
    client::VantagePoint* vp = pop.by_probe(vp_indices[r]);
    if (vp == nullptr) {
      throw std::logic_error{
          "run_campaign_shard: VP not materialized on this world"};
    }
    VpState* st = &states[r];
    stats::Rng vp_rng = campaign_rng.fork(vp->probe_id);
    const net::Duration phase =
        config.phase_jitter
            ? net::Duration::millis(vp_rng.uniform(0.0, config.interval.ms()))
            : net::Duration::zero();
    for (std::size_t k = 0; k < config.queries_per_vp; ++k) {
      const net::SimTime at =
          net::SimTime::origin() + phase + config.interval * double(k);
      sim.at(at, [&world, st, vp, k, domain, q_sent, q_answered,
                  q_unanswered, trace, queries_per_vp] {
        q_sent->add(1, world.sim().now());
        const dns::Name qname = domain.prefixed(
            "q" + std::to_string(vp->probe_id) + "x" + std::to_string(k));
        vp->stub->query(
            qname, dns::RRType::TXT,
            [&world, st, vp, q_answered, q_unanswered, trace,
             queries_per_vp](const client::StubResult& r) {
              const net::SimTime now = world.sim().now();
              int idx = -1;
              if (!r.timed_out && !r.txt.empty()) {
                idx = world.test_index_of(r.txt.front());
              }
              if (idx >= 0) {
                q_answered->add(1, now);
              } else {
                q_unanswered->add(1, now);
              }
              st->sequence.push_back(idx);
              if (r.recursive_index < vp->stub->recursives().size()) {
                const net::IpAddress raddr =
                    vp->stub->recursives()[r.recursive_index];
                auto it = std::find_if(
                    st->recursive_use.begin(), st->recursive_use.end(),
                    [raddr](const auto& p) { return p.first == raddr; });
                if (it == st->recursive_use.end()) {
                  st->recursive_use.emplace_back(raddr, 1);
                } else {
                  ++it->second;
                }
              }
              // Per-VP progress (never per-shard: the trace must not know
              // how the schedule was partitioned).
              if (st->sequence.size() == queries_per_vp &&
                  trace->enabled()) {
                trace->record({now, obs::TraceKind::Progress, "campaign",
                               "probe" + std::to_string(vp->probe_id),
                               "done",
                               static_cast<double>(queries_per_vp)});
              }
            });
      });
    }
  }

  schedule_attack_traffic(world, vp_indices);

  sim.run();

  std::vector<VpObservation> observations;
  observations.reserve(vp_indices.size());
  for (std::size_t r = 0; r < vp_indices.size(); ++r) {
    const client::VantagePoint* vp = pop.by_probe(vp_indices[r]);
    VpObservation obs;
    obs.probe_id = vp->probe_id;
    obs.continent = vp->continent;
    obs.sequence = std::move(states[r].sequence);

    // Primary recursive: the one that served the most queries. Equal counts
    // break by lowest address, a total order, so the choice never depends
    // on the pairs' insertion order.
    net::IpAddress primary{};
    std::size_t best = 0;
    for (const auto& [addr, n] : states[r].recursive_use) {
      if (n > best || (n == best && n > 0 && addr < primary)) {
        best = n;
        primary = addr;
      }
    }
    obs.recursive_addr = primary;

    const net::NodeId rnode = world.recursive_node(primary);
    obs.rtt_ms.resize(services.size(), 0.0);
    if (rnode != net::kInvalidNode) {
      for (std::size_t s = 0; s < services.size(); ++s) {
        obs.rtt_ms[s] =
            network.base_rtt_to(rnode, services[s].address()).ms();
      }
    }
    observations.push_back(std::move(obs));
  }
  return observations;
}

}  // namespace

std::vector<std::vector<std::size_t>> campaign_vp_groups(Testbed& testbed) {
  return testbed.world()->vp_groups;
}

std::vector<double> campaign_group_weights(
    const std::vector<std::vector<std::size_t>>& groups,
    const CampaignConfig& config, const attack::AttackSchedule& schedule) {
  std::vector<double> weights(groups.size(), 0.0);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    double w = static_cast<double>(groups[g].size()) *
               static_cast<double>(config.queries_per_vp);
    for (const attack::AttackEvent& ev : schedule.events()) {
      // Shots per bot, ignoring the sub-interval phase offset: the exact
      // count per bot is phase-dependent but within ±1 of this.
      const double shots =
          std::floor((ev.end - ev.start).ms() / ev.interval.ms()) + 1.0;
      for (const std::size_t v : groups[g]) {
        if (v < static_cast<std::size_t>(ev.bots)) w += shots;
      }
    }
    weights[g] = w;
  }
  return weights;
}

CampaignResult run_campaign(Testbed& testbed, const CampaignConfig& config) {
  const auto& vps = testbed.population().vps();

  CampaignResult result;
  for (const auto& svc : testbed.test_services()) {
    result.service_codes.push_back(svc.name());
  }

  CampaignRunStats local_stats;
  CampaignRunStats& stats =
      config.run_stats != nullptr ? *config.run_stats : local_stats;
  stats = CampaignRunStats{};

  std::size_t shards =
      config.shards != 0
          ? config.shards
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  shards = std::min(shards, std::max<std::size_t>(1, vps.size()));

  if (shards <= 1) {
    // By probe id, not position: the caller may itself be a
    // partition-scoped replica (its vps() are then a sparse subset).
    std::vector<std::size_t> all;
    all.reserve(vps.size());
    for (const auto& vp : vps) all.push_back(vp.probe_id);
    const auto t0 = WallClock::now();
    result.vps = run_campaign_shard(testbed, config, all);
    stats.run_s = wall_seconds(WallClock::now() - t0);
    stats.shards.push_back(
        {all.size(), stats.run_s, obs::current_rss_kb()});
    result.metrics = testbed.sim().metrics().snapshot();
    return result;
  }

  const auto t_partition = WallClock::now();
  const auto& groups = testbed.world()->vp_groups;
  const auto parts = pack_groups(
      groups,
      campaign_group_weights(groups, config, testbed.config().attack),
      shards);
  stats.partition_s = wall_seconds(WallClock::now() - t_partition);
  stats.shards.resize(parts.size());

  // Shard 0 runs on the caller's testbed (keeping its logs/caches useful to
  // callers, exactly like the serial path); the rest materialize
  // partition-scoped replicas of the caller's world snapshot — services and
  // zones shared, only their own VPs' client state instantiated.
  std::vector<std::vector<VpObservation>> per_shard(parts.size());
  // Replica shards stream their metric deltas (relative to a post-build
  // baseline; the caller already carries one copy of the build-phase
  // contribution, and identically-built worlds give identical baselines)
  // into one accumulator as they finish, compacted so untouched metrics
  // ship nothing. Trace events stay per-shard: they are appended to the
  // caller's trace in shard order, which streaming must not scramble.
  obs::MetricRegistry accumulator;
  std::mutex accumulator_mu;
  std::vector<std::vector<obs::TraceEvent>> shard_events(parts.size());
  std::exception_ptr error;
  std::mutex error_mu;
  const auto t_run = WallClock::now();
  std::vector<std::thread> workers;
  workers.reserve(parts.size() - 1);
  for (std::size_t i = 1; i < parts.size(); ++i) {
    workers.emplace_back([&testbed, &config, &parts, &per_shard, &stats,
                          &accumulator, &accumulator_mu, &shard_events,
                          &error, &error_mu, i] {
      try {
        const auto t0 = WallClock::now();
        Testbed replica{testbed.world(), &parts[i]};
        replica.sim().sync_obs();  // fold build-time event tallies in
        const obs::MetricsSnapshot baseline =
            replica.sim().metrics().snapshot();
        const std::size_t trace_base = replica.sim().trace().size();
        per_shard[i] = run_campaign_shard(replica, config, parts[i]);
        obs::MetricsSnapshot delta =
            replica.sim().metrics().snapshot().delta_since(baseline);
        delta.compact();
        {
          const std::scoped_lock lock{accumulator_mu};
          accumulator.merge_sum(delta);
        }
        const auto& events = replica.sim().trace().events();
        shard_events[i].assign(events.begin() + trace_base, events.end());
        stats.shards[i] = {parts[i].size(),
                           wall_seconds(WallClock::now() - t0),
                           obs::current_rss_kb()};
      } catch (...) {
        const std::scoped_lock lock{error_mu};
        if (!error) error = std::current_exception();
      }
    });
  }
  try {
    const auto t0 = WallClock::now();
    per_shard[0] = run_campaign_shard(testbed, config, parts[0]);
    stats.shards[0] = {parts[0].size(),
                       wall_seconds(WallClock::now() - t0),
                       obs::current_rss_kb()};
  } catch (...) {
    const std::scoped_lock lock{error_mu};
    if (!error) error = std::current_exception();
  }
  for (auto& w : workers) w.join();
  stats.run_s = wall_seconds(WallClock::now() - t_run);
  if (error) std::rethrow_exception(error);

  const auto t_merge = WallClock::now();
  // Merge back in probe order: output is independent of the partition.
  result.vps.resize(vps.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (std::size_t j = 0; j < parts[i].size(); ++j) {
      result.vps[parts[i][j]] = std::move(per_shard[i][j]);
    }
  }
  // Fold replica observability into the caller's world. Counters and
  // histogram bins sum and timestamps take the max — both commutative, so
  // the streamed accumulator equals the per-shard sequential merge and
  // matches the serial run exactly; the trace multiset likewise (export
  // DecisionTrace::canonical() for byte-stable ordering).
  testbed.sim().metrics().merge_sum(accumulator.snapshot());
  for (std::size_t i = 1; i < parts.size(); ++i) {
    for (const auto& event : shard_events[i]) {
      testbed.sim().trace().record(event);
    }
  }
  result.metrics = testbed.sim().metrics().snapshot();
  stats.merge_s = wall_seconds(WallClock::now() - t_merge);
  return result;
}

}  // namespace recwild::experiment
