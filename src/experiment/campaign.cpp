#include "experiment/campaign.hpp"

#include <algorithm>
#include <unordered_map>

namespace recwild::experiment {

CampaignResult run_campaign(Testbed& testbed, const CampaignConfig& config) {
  auto& sim = testbed.sim();
  auto& network = testbed.network();
  auto& vps = testbed.population().vps();
  const auto& services = testbed.test_services();

  CampaignResult result;
  for (const auto& svc : services) result.service_codes.push_back(svc.name());

  struct VpState {
    std::vector<int> sequence;
    std::unordered_map<net::IpAddress, std::size_t> recursive_use;
  };
  std::vector<VpState> states(vps.size());

  stats::Rng rng = sim.rng().fork("campaign");
  const dns::Name domain = testbed.test_domain();

  for (std::size_t v = 0; v < vps.size(); ++v) {
    auto& vp = vps[v];
    const net::Duration phase =
        config.phase_jitter
            ? net::Duration::millis(rng.uniform(0.0, config.interval.ms()))
            : net::Duration::zero();
    for (std::size_t k = 0; k < config.queries_per_vp; ++k) {
      const net::SimTime at =
          net::SimTime::origin() + phase + config.interval * double(k);
      sim.at(at, [&testbed, &states, &vp, v, k, domain] {
        const dns::Name qname = domain.prefixed(
            "q" + std::to_string(vp.probe_id) + "x" + std::to_string(k));
        vp.stub->query(
            qname, dns::RRType::TXT,
            [&testbed, &states, &vp, v](const client::StubResult& r) {
              int idx = -1;
              if (!r.timed_out && !r.txt.empty()) {
                idx = testbed.test_index_of(r.txt.front());
              }
              states[v].sequence.push_back(idx);
              if (r.recursive_index < vp.stub->recursives().size()) {
                states[v].recursive_use
                    [vp.stub->recursives()[r.recursive_index]]++;
              }
            });
      });
    }
  }

  sim.run();

  // Assemble observations.
  result.vps.reserve(vps.size());
  for (std::size_t v = 0; v < vps.size(); ++v) {
    VpObservation obs;
    obs.probe_id = vps[v].probe_id;
    obs.continent = vps[v].continent;
    obs.sequence = std::move(states[v].sequence);

    // Primary recursive: the one that served the most queries.
    net::IpAddress primary{};
    std::size_t best = 0;
    for (const auto& [addr, n] : states[v].recursive_use) {
      if (n > best) {
        best = n;
        primary = addr;
      }
    }
    obs.recursive_addr = primary;

    const net::NodeId rnode = testbed.recursive_node(primary);
    obs.rtt_ms.resize(services.size(), 0.0);
    if (rnode != net::kInvalidNode) {
      for (std::size_t s = 0; s < services.size(); ++s) {
        obs.rtt_ms[s] =
            network.base_rtt_to(rnode, services[s].address()).ms();
      }
    }
    result.vps.push_back(std::move(obs));
  }
  return result;
}

}  // namespace recwild::experiment
