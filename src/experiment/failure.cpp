#include "experiment/failure.hpp"

#include <algorithm>

#include "fault/injector.hpp"
#include "stats/distributions.hpp"
#include "stats/summary.hpp"

namespace recwild::experiment {

PhaseStats aggregate_phase(const std::vector<FailureSample>& samples,
                           double from_min, double to_min) {
  PhaseStats out;
  stats::Sample latencies;
  std::size_t ok = 0;
  for (const auto& s : samples) {
    if (s.at_min < from_min || s.at_min >= to_min) continue;
    ++out.queries;
    if (s.success) {
      ++ok;
      latencies.add(s.latency_ms);
    }
  }
  out.success_rate = stats::share(ok, out.queries);
  if (!latencies.empty()) {
    out.median_latency_ms = latencies.median();
    out.p90_latency_ms = latencies.quantile(0.90);
  }
  return out;
}

fault::FaultSchedule failure_schedule(Testbed& testbed,
                                      const FailureScenarioConfig& config) {
  const net::SimTime start =
      net::SimTime::origin() +
      net::Duration::minutes(config.duration_minutes *
                             config.event_start_frac);
  const net::SimTime end =
      net::SimTime::origin() +
      net::Duration::minutes(config.duration_minutes * config.event_end_frac);

  fault::FaultSchedule schedule;
  for (const std::size_t t : config.targets) {
    auto& svc = testbed.roots().at(t);
    const auto n_sites = svc.site_count();
    std::size_t hit = n_sites;
    if (config.kind != FailureKind::ServiceDown) {
      hit = static_cast<std::size_t>(
          std::max(1.0, config.site_fraction * double(n_sites)));
    }
    for (std::size_t s = 0; s < hit && s < n_sites; ++s) {
      fault::FaultEvent e;
      if (config.kind == FailureKind::SitesWithdrawn) {
        e.kind = fault::FaultKind::SiteWithdraw;
        e.target_a = svc.name();
        e.target_b = svc.sites()[s].code;
        e.magnitude = config.convergence_ms;
      } else {
        e.kind = fault::FaultKind::ServerCrash;
        e.target_a = svc.sites()[s].server->identity();
      }
      e.start = start;
      e.end = end;
      schedule.add(std::move(e));
    }
  }
  return schedule;
}

FailureResult run_failure_scenario(Testbed& testbed,
                                   const FailureScenarioConfig& config) {
  auto& sim = testbed.sim();
  auto& network = testbed.network();
  stats::Rng rng = sim.rng().fork("failure-scenario");

  // Sources: worldwide recursives with steady Poisson demand.
  struct Source {
    std::unique_ptr<resolver::RecursiveResolver> resolver;
    std::uint64_t counter = 0;
  };
  std::vector<std::unique_ptr<Source>> sources;
  const auto continents = net::all_continents();
  for (std::size_t i = 0; i < config.recursives; ++i) {
    const auto continent = continents[rng.index(continents.size())];
    const auto cities = net::locations_on(continent);
    const auto& city = cities[rng.index(cities.size())];
    auto src = std::make_unique<Source>();
    resolver::ResolverConfig rc;
    rc.name = "fail-recursive-" + std::to_string(i);
    rc.policy = resolver::PolicyMixture::wild().draw(rng);
    src->resolver = std::make_unique<resolver::RecursiveResolver>(
        network, network.add_node(rc.name, city.point),
        network.allocate_address(), std::move(rc), testbed.hints(),
        rng.fork("fail-" + std::to_string(i)));
    src->resolver->start();
    sources.push_back(std::move(src));
  }

  const net::SimTime end = net::SimTime::origin() +
                           net::Duration::minutes(config.duration_minutes);
  auto samples = std::make_shared<std::vector<FailureSample>>();

  // Poisson arrivals of unique (cache-defeating) TLD lookups.
  struct Scheduler {
    static void next(net::Simulation& sim, Source& src, net::SimTime end,
                     stats::Rng& rng, double per_min,
                     std::shared_ptr<std::vector<FailureSample>> samples) {
      const double gap_min = rng.exponential(1.0 / per_min);
      const net::SimTime at = sim.now() + net::Duration::minutes(gap_min);
      // Strictly before `end`: the phases partition [0, duration), so a
      // query started exactly at the run's end would belong to no phase.
      if (at >= end) return;
      sim.at(at, [&sim, &src, end, &rng, per_min, samples] {
        const std::string label =
            "f" + std::to_string(src.resolver->address().bits()) + "q" +
            std::to_string(src.counter++);
        const double started_min = sim.now().minutes();
        src.resolver->resolve(
            dns::Question{dns::Name::parse(label), dns::RRType::A,
                          dns::RRClass::IN},
            [samples, started_min](const resolver::ResolveOutcome& out) {
              FailureSample s;
              s.at_min = started_min;
              // Junk TLDs resolve to NXDOMAIN on success; SERVFAIL (or a
              // timeout-driven SERVFAIL) means the root was unreachable.
              s.success = out.rcode != dns::Rcode::ServFail;
              s.latency_ms = out.elapsed.ms();
              samples->push_back(s);
            });
        next(sim, src, end, rng, per_min, samples);
      });
    }
  };
  for (auto& src : sources) {
    Scheduler::next(sim, *src, end, rng, config.queries_per_minute, samples);
  }

  // The failure event, expressed as a fault schedule (one ServerCrash or
  // SiteWithdraw per affected site) and enforced by a scenario-local
  // injector. Neither server nor site faults install the packet hook, so
  // this composes with any injector the testbed itself armed.
  fault::FaultInjector injector{network, failure_schedule(testbed, config)};
  for (const std::size_t t : config.targets) {
    for (auto& site : testbed.roots().at(t).sites()) {
      injector.bind_server(*site.server);
    }
    injector.bind_service(testbed.roots().at(t));
  }
  injector.arm();

  sim.run();

  // Aggregate.
  const double start_min = config.duration_minutes * config.event_start_frac;
  const double end_min = config.duration_minutes * config.event_end_frac;
  FailureResult result;
  result.before = aggregate_phase(*samples, 0, start_min);
  result.during = aggregate_phase(*samples, start_min, end_min);
  result.after = aggregate_phase(*samples, end_min, config.duration_minutes);

  const auto minutes = static_cast<std::size_t>(config.duration_minutes);
  for (std::size_t m = 0; m < minutes; ++m) {
    const auto phase =
        aggregate_phase(*samples, double(m), double(m + 1));
    result.minute_success.push_back(phase.queries ? phase.success_rate
                                                  : -1.0);
    result.minute_latency_ms.push_back(
        phase.queries ? phase.median_latency_ms : -1.0);
  }

  // Letter shares during the event, from the authoritative logs' totals
  // (the logs span the whole run; approximate the event share with the
  // full-run share of received queries — black-holed sites still log).
  std::uint64_t total = 0;
  for (auto& letter : testbed.roots()) total += letter.total_queries();
  for (auto& letter : testbed.roots()) {
    result.letter_labels.push_back(letter.name());
    result.letter_share_during.push_back(
        total ? double(letter.total_queries()) / double(total) : 0.0);
  }
  return result;
}

}  // namespace recwild::experiment
