#include "experiment/report.hpp"

#include <algorithm>

namespace recwild::experiment::report {

std::string pct(double fraction, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string ms(double value, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f ms", precision, value);
  return buf;
}

std::string bar(double fraction, std::size_t width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto n = static_cast<std::size_t>(fraction * double(width) + 0.5);
  return std::string(n, '#');
}

void header(const std::string& title) {
  const std::string line(title.size() + 4, '=');
  std::printf("\n%s\n= %s =\n%s\n", line.c_str(), title.c_str(),
              line.c_str());
}

std::string box(const stats::BoxStats& b, int precision) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "p10=%.*f p25=%.*f median=%.*f p75=%.*f p90=%.*f (n=%zu)",
                precision, b.p10, precision, b.p25, precision, b.p50,
                precision, b.p75, precision, b.p90, b.n);
  return buf;
}

}  // namespace recwild::experiment::report
