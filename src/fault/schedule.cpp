#include "fault/schedule.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace recwild::fault {

namespace {

struct KindName {
  FaultKind kind;
  std::string_view name;
};

constexpr std::array<KindName, 10> kKindNames{{
    {FaultKind::LossBurst, "loss_burst"},
    {FaultKind::LatencySpike, "latency_spike"},
    {FaultKind::Blackhole, "blackhole"},
    {FaultKind::Partition, "partition"},
    {FaultKind::ServerCrash, "server_crash"},
    {FaultKind::ServerRefuse, "server_refuse"},
    {FaultKind::ServerSlow, "server_slow"},
    {FaultKind::XferStarve, "xfer_starve"},
    {FaultKind::SiteWithdraw, "site_withdraw"},
    {FaultKind::SiteFlap, "site_flap"},
}};

[[nodiscard]] bool is_path_kind(FaultKind kind) noexcept {
  return kind == FaultKind::LossBurst || kind == FaultKind::LatencySpike ||
         kind == FaultKind::Partition;
}

[[nodiscard]] bool is_site_kind(FaultKind kind) noexcept {
  return kind == FaultKind::SiteWithdraw || kind == FaultKind::SiteFlap;
}

/// Formats a double the way the trace writer does: shortest round-trip
/// representation via to_chars, so exports are bit-stable.
std::string format_double(double v) {
  std::array<char, 32> buf{};
  const auto [end, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf.data(), end);
}

[[noreturn]] void line_error(std::size_t line, const std::string& what) {
  throw std::runtime_error("fault schedule line " + std::to_string(line) +
                           ": " + what);
}

double parse_double(const std::string& s, std::size_t line,
                    const char* field) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    line_error(line, std::string("bad ") + field + " '" + s + "'");
  }
}

std::int64_t parse_int(const std::string& s, std::size_t line,
                       const char* field) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    line_error(line, std::string("bad ") + field + " '" + s + "'");
  }
  return v;
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  for (const auto& [k, name] : kKindNames) {
    if (k == kind) return name;
  }
  return "unknown";
}

FaultKind fault_kind_from_string(std::string_view name) {
  for (const auto& [k, n] : kKindNames) {
    if (n == name) return k;
  }
  throw std::invalid_argument("unknown fault kind '" + std::string(name) +
                              "'");
}

void FaultSchedule::validate() const {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    const auto fail = [i](const std::string& what) {
      throw std::invalid_argument("fault event " + std::to_string(i) + ": " +
                                  what);
    };
    if (e.end <= e.start) fail("window must satisfy end > start");
    if (e.target_a.empty()) fail("target_a must be non-empty");
    if (is_path_kind(e.kind) && e.target_b.empty()) {
      fail("path faults need target_b");
    }
    if (e.kind == FaultKind::LossBurst) {
      if (e.magnitude < 0.0 || e.magnitude > 1.0 || e.magnitude_end > 1.0) {
        fail("loss probability must be in [0, 1]");
      }
    }
    if ((e.kind == FaultKind::LatencySpike ||
         e.kind == FaultKind::ServerSlow) &&
        e.magnitude < 0.0) {
      fail("delay magnitude must be >= 0");
    }
    if (is_site_kind(e.kind)) {
      if (e.target_b.empty()) fail("site faults need a site code target_b");
      if (e.magnitude <= 0.0) {
        fail("site faults need a positive convergence delay (ms)");
      }
      if (e.kind == FaultKind::SiteFlap && e.period_ms <= 0.0) {
        fail("site_flap needs a positive period_ms");
      }
    }
    if (e.kind != FaultKind::SiteFlap && e.period_ms != 0.0) {
      fail("period_ms is only meaningful for site_flap");
    }
  }
  // Two route faults fighting over the same (service, site) pair would make
  // the announced/withdrawn state ambiguous — reject overlapping windows.
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& a = events_[i];
    if (!is_site_kind(a.kind)) continue;
    for (std::size_t j = i + 1; j < events_.size(); ++j) {
      const FaultEvent& b = events_[j];
      if (!is_site_kind(b.kind)) continue;
      if (a.target_a != b.target_a) continue;
      const bool same_site = a.target_b == b.target_b ||
                             a.target_b == "*" || b.target_b == "*";
      if (!same_site) continue;
      if (a.start < b.end && b.start < a.end) {
        throw std::invalid_argument(
            "fault event " + std::to_string(j) +
            ": site fault window overlaps event " + std::to_string(i) +
            " on the same site");
      }
    }
  }
}

void write_schedule(std::ostream& out, const FaultSchedule& schedule) {
  out << "# kind\tstart_us\tend_us\ttarget_a\ttarget_b\tmagnitude\t"
         "magnitude_end\n";
  for (const FaultEvent& e : schedule.events()) {
    out << to_string(e.kind) << '\t' << e.start.count_micros() << '\t'
        << e.end.count_micros() << '\t'
        << (e.target_a.empty() ? "-" : e.target_a) << '\t'
        << (e.target_b.empty() ? "-" : e.target_b) << '\t'
        << format_double(e.magnitude) << '\t'
        << format_double(e.magnitude_end);
    // Optional eighth column: only flaps carry a period, so pre-existing
    // schedules keep their historical bytes.
    if (e.period_ms != 0.0) out << '\t' << format_double(e.period_ms);
    out << '\n';
  }
}

FaultSchedule read_schedule(std::istream& in) {
  FaultSchedule schedule;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields;
    std::size_t pos = 0;
    while (true) {
      const std::size_t tab = line.find('\t', pos);
      fields.push_back(line.substr(pos, tab - pos));
      if (tab == std::string::npos) break;
      pos = tab + 1;
    }
    if (fields.size() != 7 && fields.size() != 8) {
      line_error(line_no, "expected 7 or 8 tab-separated fields, got " +
                              std::to_string(fields.size()));
    }
    FaultEvent e;
    try {
      e.kind = fault_kind_from_string(fields[0]);
    } catch (const std::invalid_argument& ex) {
      line_error(line_no, ex.what());
    }
    e.start =
        net::SimTime::from_micros(parse_int(fields[1], line_no, "start_us"));
    e.end = net::SimTime::from_micros(parse_int(fields[2], line_no, "end_us"));
    e.target_a = fields[3] == "-" ? "" : fields[3];
    e.target_b = fields[4] == "-" ? "" : fields[4];
    e.magnitude = parse_double(fields[5], line_no, "magnitude");
    e.magnitude_end = parse_double(fields[6], line_no, "magnitude_end");
    if (fields.size() == 8) {
      e.period_ms = parse_double(fields[7], line_no, "period_ms");
    }
    schedule.add(std::move(e));
  }
  return schedule;
}

namespace {

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}

/// Minimal recursive-descent reader for the exact shape write_schedule_json
/// emits (the repo deliberately carries no JSON dependency).
class JsonReader {
 public:
  explicit JsonReader(std::istream& in) {
    std::ostringstream buf;
    buf << in.rdbuf();
    text_ = buf.str();
  }

  FaultSchedule parse() {
    FaultSchedule schedule;
    skip_ws();
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return schedule;
    }
    while (true) {
      schedule.add(parse_event());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' after event");
      skip_ws();
    }
    return schedule;
  }

 private:
  FaultEvent parse_event() {
    FaultEvent e;
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return e;
    }
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (key == "kind") {
        e.kind = fault_kind_from_string(parse_string());
      } else if (key == "start_us") {
        e.start = net::SimTime::from_micros(
            static_cast<std::int64_t>(parse_number()));
      } else if (key == "end_us") {
        e.end = net::SimTime::from_micros(
            static_cast<std::int64_t>(parse_number()));
      } else if (key == "target_a") {
        e.target_a = parse_string();
      } else if (key == "target_b") {
        e.target_b = parse_string();
      } else if (key == "magnitude") {
        e.magnitude = parse_number();
      } else if (key == "magnitude_end") {
        e.magnitude_end = parse_number();
      } else if (key == "period_ms") {
        e.period_ms = parse_number();
      } else {
        fail("unknown key '" + key + "'");
      }
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' after value");
    }
    return e;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          default: fail("unsupported escape");
        }
      } else {
        out.push_back(c);
      }
    }
    fail("unterminated string");
  }

  double parse_number() {
    const std::size_t begin = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == begin) fail("expected a number");
    const std::string tok = text_.substr(begin, pos_ - begin);
    try {
      return std::stod(tok);
    } catch (const std::exception&) {
      fail("bad number '" + tok + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (take() != c) {
      fail(std::string("expected '") + c + "'");
    }
  }
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("fault schedule JSON, offset " +
                             std::to_string(pos_) + ": " + what);
  }

  std::string text_;
  std::size_t pos_ = 0;
};

}  // namespace

void write_schedule_json(std::ostream& out, const FaultSchedule& schedule) {
  out << "[";
  bool first = true;
  for (const FaultEvent& e : schedule.events()) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"kind\": ";
    write_json_string(out, std::string(to_string(e.kind)));
    out << ", \"start_us\": " << e.start.count_micros()
        << ", \"end_us\": " << e.end.count_micros() << ", \"target_a\": ";
    write_json_string(out, e.target_a);
    out << ", \"target_b\": ";
    write_json_string(out, e.target_b);
    out << ", \"magnitude\": " << format_double(e.magnitude)
        << ", \"magnitude_end\": " << format_double(e.magnitude_end);
    if (e.period_ms != 0.0) {
      out << ", \"period_ms\": " << format_double(e.period_ms);
    }
    out << "}";
  }
  out << "\n]\n";
}

FaultSchedule read_schedule_json(std::istream& in) {
  return JsonReader(in).parse();
}

}  // namespace recwild::fault
