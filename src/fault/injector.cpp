#include "fault/injector.hpp"

#include <charconv>
#include <optional>
#include <stdexcept>

#include "authns/secondary.hpp"
#include "obs/names.hpp"

namespace recwild::fault {

namespace {

/// Parses a dotted-quad address ("10.0.0.7"); nullopt on anything else.
std::optional<net::IpAddress> parse_address(std::string_view s) {
  std::array<std::uint32_t, 4> octets{};
  const char* p = s.data();
  const char* const end = s.data() + s.size();
  for (int i = 0; i < 4; ++i) {
    std::uint32_t v = 0;
    const auto [ptr, ec] = std::from_chars(p, end, v);
    if (ec != std::errc{} || ptr == p || v > 255) return std::nullopt;
    octets[static_cast<std::size_t>(i)] = v;
    p = ptr;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return net::IpAddress{(octets[0] << 24) | (octets[1] << 16) |
                        (octets[2] << 8) | octets[3]};
}

[[noreturn]] void target_error(std::size_t event, const std::string& what) {
  throw std::invalid_argument("fault event " + std::to_string(event) + ": " +
                              what);
}

}  // namespace

FaultInjector::FaultInjector(net::Network& network, FaultSchedule schedule)
    : network_(network),
      schedule_(std::move(schedule)),
      rng_parent_(network.sim().rng().fork("fault-injector")) {
  auto& registry = network_.sim().metrics();
  obs_dropped_ = &registry.counter(obs::names::kFaultPacketsDropped);
  obs_delayed_ = &registry.counter(obs::names::kFaultPacketsDelayed);
}

FaultInjector::~FaultInjector() { disarm(); }

void FaultInjector::bind_server(authns::AuthServer& server) {
  servers_.emplace_back(server.identity(), &server);
}

void FaultInjector::bind_service(anycast::AnycastService& service) {
  services_.push_back(&service);
}

void FaultInjector::disarm() {
  if (hook_installed_) {
    if (network_.fault_hook() == this) network_.set_fault_hook(nullptr);
    hook_installed_ = false;
  }
  for (authns::AuthServer* server : provided_) {
    server->set_fault_provider(nullptr);
  }
  provided_.clear();
  for (anycast::AnycastService* svc : route_armed_) {
    svc->route_control().clear_outages();
  }
  route_armed_.clear();
  loss_.clear();
  spikes_.clear();
  partitions_.clear();
  blackholes_.clear();
  starves_.clear();
  loss_rngs_.clear();
  armed_ = false;
}

void FaultInjector::arm() {
  disarm();
  schedule_.validate();

  // Per-server list of targeting events, built while compiling.
  std::vector<std::vector<FaultEvent>> server_events(servers_.size());

  const auto& events = schedule_.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    switch (e.kind) {
      case FaultKind::LossBurst:
      case FaultKind::LatencySpike:
      case FaultKind::Partition: {
        PathFault pf;
        pf.event = i;
        if (e.target_a != "*") {
          pf.a = network_.find_node(e.target_a);
          if (pf.a == net::kInvalidNode) {
            target_error(i, "unknown node '" + e.target_a + "'");
          }
        }
        if (e.target_b != "*") {
          pf.b = network_.find_node(e.target_b);
          if (pf.b == net::kInvalidNode) {
            target_error(i, "unknown node '" + e.target_b + "'");
          }
        }
        if (e.kind == FaultKind::LossBurst) {
          loss_.push_back(pf);
        } else if (e.kind == FaultKind::LatencySpike) {
          spikes_.push_back(pf);
        } else {
          partitions_.push_back(pf);
        }
        break;
      }
      case FaultKind::Blackhole:
      case FaultKind::XferStarve: {
        AddressFault af;
        af.event = i;
        if (e.target_a == "*") {
          af.wildcard = true;
        } else {
          const auto addr = parse_address(e.target_a);
          if (!addr) {
            target_error(i, "bad address '" + e.target_a + "'");
          }
          af.address = *addr;
        }
        (e.kind == FaultKind::Blackhole ? blackholes_ : starves_)
            .push_back(af);
        break;
      }
      case FaultKind::ServerCrash:
      case FaultKind::ServerRefuse:
      case FaultKind::ServerSlow: {
        bool matched = false;
        for (std::size_t s = 0; s < servers_.size(); ++s) {
          if (e.target_a == "*" || servers_[s].first == e.target_a) {
            server_events[s].push_back(e);
            matched = true;
          }
        }
        if (!matched) {
          target_error(i, "unknown server identity '" + e.target_a + "'");
        }
        break;
      }
      case FaultKind::SiteWithdraw:
      case FaultKind::SiteFlap: {
        const auto addr = parse_address(e.target_a);
        bool matched = false;
        for (anycast::AnycastService* svc : services_) {
          const bool by_addr =
              addr && (svc->address() == *addr ||
                       (svc->address6() && *svc->address6() == *addr));
          if (by_addr || svc->name() == e.target_a) {
            arm_site_event(i, *svc);
            matched = true;
          }
        }
        if (!matched) {
          target_error(i, "unknown anycast service '" + e.target_a + "'");
        }
        break;
      }
    }
  }

  // Install composed per-server providers: the worst active mode wins
  // (Crash > Refuse > Slow); concurrent Slow delays sum.
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    if (server_events[s].empty()) continue;
    authns::AuthServer* server = servers_[s].second;
    server->set_fault_provider(
        [evs = std::move(server_events[s])](net::SimTime now) {
          authns::AuthFaultState state;
          for (const FaultEvent& e : evs) {
            if (!e.active(now)) continue;
            if (e.kind == FaultKind::ServerCrash) {
              state.mode = authns::AuthFailMode::Unresponsive;
              return state;
            }
            if (e.kind == FaultKind::ServerRefuse) {
              state.mode = authns::AuthFailMode::Refused;
            } else if (state.mode == authns::AuthFailMode::None) {
              state.mode = authns::AuthFailMode::Slow;
            }
            if (e.kind == FaultKind::ServerSlow) {
              state.extra_delay +=
                  net::Duration::millis(e.magnitude_at(now));
            }
          }
          if (state.mode == authns::AuthFailMode::Refused) {
            state.extra_delay = net::Duration::zero();
          }
          return state;
        });
    provided_.push_back(server);
  }

  if (!loss_.empty() || !spikes_.empty() || !partitions_.empty() ||
      !blackholes_.empty() || !starves_.empty()) {
    network_.set_fault_hook(this);
    hook_installed_ = true;
  }

  emit_arm_obs();
  armed_ = true;
}

void FaultInjector::arm_site_event(std::size_t index,
                                   anycast::AnycastService& service) {
  const FaultEvent& e = schedule_.events()[index];
  anycast::RouteControl& routes = service.route_control();
  bool any_site = false;
  for (const anycast::Site& site : service.sites()) {
    if (e.target_b != "*" && site.code != e.target_b) continue;
    any_site = true;
    // Slice the window into withdrawal cycles: one for a plain withdraw,
    // alternating withdrawn/announced half-periods (starting withdrawn)
    // for a flap. Everything is computed here, at arm time — nothing goes
    // on the event queue, so shard byte-identity survives.
    const net::Duration period =
        e.kind == FaultKind::SiteFlap
            ? net::Duration::micros(
                  static_cast<std::int64_t>(e.period_ms * 1e3))
            : (e.end - e.start);
    net::SimTime cycle_start = e.start;
    for (std::uint64_t cycle = 0; cycle_start < e.end; ++cycle) {
      net::SimTime cycle_end = cycle_start + period;
      if (e.end < cycle_end) cycle_end = e.end;
      // Convergence delay: the scheduled magnitude at this cycle's start
      // (ramps make successive flap cycles converge slower/faster), with
      // a deterministic ±25% per-(event, site, cycle) jitter — real BGP
      // convergence is never uniform across the catchment.
      stats::Rng jrng = rng_parent_.fork("site-conv", index)
                            .fork(std::uint64_t{site.node})
                            .fork(cycle);
      const double conv_ms =
          e.magnitude_at(cycle_start) * jrng.uniform(0.75, 1.25);
      net::SimTime converge =
          cycle_start +
          net::Duration::micros(static_cast<std::int64_t>(conv_ms * 1e3));
      if (cycle_end < converge) converge = cycle_end;
      routes.add_outage(site.node, site.code,
                        anycast::OutageWindow{cycle_start, converge,
                                              cycle_end});
      if (e.kind != FaultKind::SiteFlap) break;
      // Skip the announced half-period between withdrawal cycles.
      cycle_start = cycle_end + period;
    }
  }
  if (!any_site) {
    target_error(index, "service '" + service.name() +
                            "' has no site coded '" + e.target_b + "'");
  }
  for (anycast::AnycastService* armed : route_armed_) {
    if (armed == &service) return;
  }
  route_armed_.push_back(&service);
}

void FaultInjector::emit_arm_obs() {
  auto& sim = network_.sim();
  obs::Counter& armed = sim.metrics().counter(obs::names::kFaultEventsArmed);
  for (const FaultEvent& e : schedule_.events()) {
    // Stamped with the event's own window times, not now(): replicas arm
    // during world build, and export stamps must match the serial run.
    armed.add(1, e.start);
    if (sim.trace().enabled()) {
      std::string subject = e.target_a;
      if (!e.target_b.empty()) subject += "|" + e.target_b;
      sim.trace().record({e.start, obs::TraceKind::FaultOn, "fault-injector",
                          subject, std::string(to_string(e.kind)),
                          e.magnitude});
      sim.trace().record({e.end, obs::TraceKind::FaultOff, "fault-injector",
                          subject, std::string(to_string(e.kind)),
                          e.magnitude_end < 0 ? e.magnitude
                                              : e.magnitude_end});
    }
  }
}

stats::Rng& FaultInjector::loss_rng(std::size_t event, net::NodeId from,
                                    net::NodeId to) {
  const std::uint64_t flow =
      (std::uint64_t{from} << 32) | std::uint64_t{to};
  const auto key = std::make_pair(std::uint64_t{event}, flow);
  auto it = loss_rngs_.find(key);
  if (it == loss_rngs_.end()) {
    it = loss_rngs_
             .emplace(key, rng_parent_.fork("loss", event).fork(flow))
             .first;
  }
  return it->second;
}

net::FaultVerdict FaultInjector::on_packet(net::NodeId from, net::NodeId to,
                                           const net::Endpoint& src,
                                           const net::Endpoint& dst,
                                           bool via_stream, net::SimTime now) {
  net::FaultVerdict verdict;
  const auto& events = schedule_.events();

  for (const AddressFault& bh : blackholes_) {
    if (!events[bh.event].active(now)) continue;
    if (bh.wildcard || dst.addr == bh.address) {
      verdict.drop = true;
      obs_dropped_->add(1, now);
      return verdict;
    }
  }
  for (const PathFault& pf : partitions_) {
    if (!events[pf.event].active(now)) continue;
    if (pf.matches(from, to)) {
      verdict.drop = true;
      obs_dropped_->add(1, now);
      return verdict;
    }
  }
  if (src.port == authns::kXfrClientPort ||
      dst.port == authns::kXfrClientPort) {
    for (const AddressFault& st : starves_) {
      if (!events[st.event].active(now)) continue;
      if (st.wildcard || src.addr == st.address || dst.addr == st.address) {
        verdict.drop = true;
        obs_dropped_->add(1, now);
        return verdict;
      }
    }
  }
  if (!via_stream) {
    for (const PathFault& pf : loss_) {
      const FaultEvent& e = events[pf.event];
      if (!e.active(now) || !pf.matches(from, to)) continue;
      if (loss_rng(pf.event, from, to).chance(e.magnitude_at(now))) {
        verdict.drop = true;
        obs_dropped_->add(1, now);
        return verdict;
      }
    }
  }
  for (const PathFault& pf : spikes_) {
    const FaultEvent& e = events[pf.event];
    if (!e.active(now) || !pf.matches(from, to)) continue;
    verdict.extra_delay += net::Duration::millis(e.magnitude_at(now));
  }
  if (verdict.extra_delay > net::Duration::zero()) {
    obs_delayed_->add(1, now);
  }
  return verdict;
}

}  // namespace recwild::fault
