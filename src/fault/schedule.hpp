// Deterministic fault schedules (the tentpole of the robustness work).
//
// A FaultSchedule is an ordered list of typed fault events, each active over
// a half-open sim-time window [start, end). Faults describe *what degrades*
// — a lossy path, a blackholed address, a crashed or lame server, a starved
// zone transfer — declaratively; fault::FaultInjector compiles a schedule
// against a concrete world and enforces it.
//
// Determinism contract: a schedule is pure data (no clocks, no RNG). All
// randomness a fault needs (per-packet loss draws) is derived by the
// injector from identity-keyed streams, so the same schedule over the same
// world produces byte-identical metrics and traces at any shard count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "net/time.hpp"

namespace recwild::fault {

/// What kind of degradation a FaultEvent injects.
enum class FaultKind : std::uint8_t {
  /// Path fault: UDP datagrams between nodes `target_a` and `target_b`
  /// (either may be "*") are dropped with probability `magnitude` ([0,1],
  /// optionally ramping to `magnitude_end`). Stream sends are unaffected —
  /// the simulated TCP retransmits through loss.
  LossBurst,
  /// Path fault: traffic between the two node targets gains `magnitude`
  /// extra one-way milliseconds (optionally ramping).
  LatencySpike,
  /// Address fault: every packet TO address `target_a` (dotted quad) is
  /// dropped — the route to it has vanished.
  Blackhole,
  /// Path fault: ALL traffic (streams included) between the two node
  /// targets is dropped symmetrically.
  Partition,
  /// Server fault: the authoritative with identity `target_a` (or "*")
  /// receives queries but never answers (crashed process).
  ServerCrash,
  /// Server fault: the server answers every query with rcode REFUSED.
  ServerRefuse,
  /// Server fault: the server answers after `magnitude` extra milliseconds
  /// of processing delay (optionally ramping — a response-delay ramp).
  ServerSlow,
  /// Transfer fault: zone-transfer traffic (SOA refresh / AXFR, identified
  /// by the secondary's well-known client port) involving address
  /// `target_a` (or "*") is dropped, starving secondaries of refreshes.
  XferStarve,
  /// Anycast route fault: the site with code `target_b` (or "*") of the
  /// anycast service whose shared address is `target_a` withdraws its BGP
  /// announcement for [start, end). Clients re-converge to their next-best
  /// site after `magnitude` milliseconds of convergence delay (per-node
  /// jittered by the injector; optionally ramping to `magnitude_end` for
  /// schedules with several windows); queries sent during convergence are
  /// lost at the dead site.
  SiteWithdraw,
  /// Anycast route fault: like SiteWithdraw, but the site alternates
  /// withdrawn/announced phases of `period_ms` milliseconds each across
  /// [start, end), starting withdrawn — a flapping BGP session. Each
  /// withdrawal cycle pays its own jittered convergence delay.
  SiteFlap,
};

/// Canonical lower-snake name ("loss_burst", ...).
[[nodiscard]] std::string_view to_string(FaultKind kind);
/// Parses to_string's output back; throws std::invalid_argument.
[[nodiscard]] FaultKind fault_kind_from_string(std::string_view name);

/// One scheduled fault. Active over [start, end). Target semantics depend
/// on the kind (see FaultKind): node names for path faults, dotted-quad
/// addresses for Blackhole/XferStarve, server identities for server faults,
/// anycast service address + site code for site faults; "*" is a wildcard
/// where documented. `magnitude` units also depend on the kind: probability
/// for LossBurst, milliseconds for LatencySpike, ServerSlow and the site
/// kinds' convergence delay, unused otherwise. When `magnitude_end` >= 0
/// the effective magnitude ramps linearly from `magnitude` at start to
/// `magnitude_end` at end; negative (the default) means flat. `period_ms`
/// is the flap half-period for SiteFlap and must be zero for every other
/// kind.
struct FaultEvent {
  FaultKind kind = FaultKind::LossBurst;
  net::SimTime start;
  net::SimTime end;
  std::string target_a;
  std::string target_b;
  double magnitude = 0.0;
  double magnitude_end = -1.0;
  double period_ms = 0.0;

  [[nodiscard]] bool active(net::SimTime now) const noexcept {
    return start <= now && now < end;
  }
  /// The effective magnitude at `now` (linear ramp when magnitude_end >= 0;
  /// callers must only ask while active()).
  [[nodiscard]] double magnitude_at(net::SimTime now) const noexcept {
    if (magnitude_end < 0.0 || end <= start) return magnitude;
    const double f = (now - start).sec() / (end - start).sec();
    return magnitude + (magnitude_end - magnitude) * f;
  }

  bool operator==(const FaultEvent&) const = default;
};

/// An ordered collection of fault events; plain data, copyable.
class FaultSchedule {
 public:
  FaultSchedule() = default;
  explicit FaultSchedule(std::vector<FaultEvent> events)
      : events_(std::move(events)) {}

  FaultSchedule& add(FaultEvent event) {
    events_.push_back(std::move(event));
    return *this;
  }

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  void clear() noexcept { events_.clear(); }

  /// Checks structural sanity of every event: end > start, loss probability
  /// in [0,1], non-negative delays, non-empty target_a, a target_b for path
  /// kinds, a strictly positive convergence delay and flap period for the
  /// site kinds, and no two site-kind events with overlapping windows on
  /// the same (service, site) pair. Throws std::invalid_argument naming the
  /// offending event index.
  void validate() const;

  bool operator==(const FaultSchedule&) const = default;

 private:
  std::vector<FaultEvent> events_;
};

/// Writes a schedule in the repo's tab-separated discipline, one event per
/// line: `kind<TAB>start_us<TAB>end_us<TAB>target_a<TAB>target_b<TAB>
/// magnitude<TAB>magnitude_end`. Empty targets are stored as "-". Events
/// with a nonzero `period_ms` (flaps) append it as an eighth column, so
/// schedules without site faults keep their historical bytes.
void write_schedule(std::ostream& out, const FaultSchedule& schedule);

/// Parses write_schedule's format (7 or 8 fields per line). Skips blank and
/// `#` lines; throws std::runtime_error naming the line number on malformed
/// input.
[[nodiscard]] FaultSchedule read_schedule(std::istream& in);

/// Writes the schedule as a deterministic JSON array of event objects
/// (kind, start_us, end_us, target_a, target_b, magnitude, magnitude_end,
/// and period_ms when nonzero).
void write_schedule_json(std::ostream& out, const FaultSchedule& schedule);

/// Parses write_schedule_json's output (a strict subset of JSON: an array
/// of flat objects with string/number fields). Throws std::runtime_error
/// on malformed input.
[[nodiscard]] FaultSchedule read_schedule_json(std::istream& in);

}  // namespace recwild::fault
