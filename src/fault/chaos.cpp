#include "fault/chaos.hpp"

#include <algorithm>

namespace recwild::fault {

FaultSchedule random_schedule(const ChaosSpace& space, stats::Rng rng) {
  // Kinds whose target pool is populated.
  std::vector<FaultKind> kinds;
  if (!space.server_targets.empty()) {
    kinds.insert(kinds.end(), {FaultKind::ServerCrash, FaultKind::ServerRefuse,
                               FaultKind::ServerSlow});
  }
  if (space.node_targets.size() >= 2) {
    kinds.insert(kinds.end(), {FaultKind::LossBurst, FaultKind::LatencySpike,
                               FaultKind::Partition});
  }
  if (!space.address_targets.empty()) kinds.push_back(FaultKind::Blackhole);
  if (!space.xfer_targets.empty()) kinds.push_back(FaultKind::XferStarve);

  FaultSchedule schedule;
  if (kinds.empty() || space.events == 0) return schedule;

  const double horizon_s = space.horizon.sec();
  const double min_window_s =
      std::min(space.min_window.sec(), horizon_s / 2.0);

  std::vector<FaultEvent> events;
  for (std::size_t i = 0; i < space.events; ++i) {
    FaultEvent e;
    e.kind = kinds[rng.index(kinds.size())];

    const double start_s = rng.uniform(0.0, horizon_s - min_window_s);
    const double len_s = rng.uniform(min_window_s, horizon_s - start_s);
    e.start = net::SimTime::origin() + net::Duration::seconds(start_s);
    e.end = e.start + net::Duration::seconds(len_s);

    const auto pick = [&rng](const std::vector<std::string>& pool) {
      return pool[rng.index(pool.size())];
    };
    const bool ramp = rng.chance(0.25);
    switch (e.kind) {
      case FaultKind::LossBurst:
        e.target_a = pick(space.node_targets);
        e.target_b = pick(space.node_targets);
        e.magnitude = rng.uniform(0.05, space.max_loss);
        if (ramp) e.magnitude_end = rng.uniform(0.0, space.max_loss);
        break;
      case FaultKind::LatencySpike:
        e.target_a = pick(space.node_targets);
        e.target_b = pick(space.node_targets);
        e.magnitude = rng.uniform(1.0, space.max_latency_ms);
        if (ramp) e.magnitude_end = rng.uniform(0.0, space.max_latency_ms);
        break;
      case FaultKind::Partition:
        e.target_a = pick(space.node_targets);
        e.target_b = pick(space.node_targets);
        break;
      case FaultKind::Blackhole:
        e.target_a = pick(space.address_targets);
        break;
      case FaultKind::ServerCrash:
        e.target_a = pick(space.server_targets);
        break;
      case FaultKind::ServerRefuse:
        e.target_a = pick(space.server_targets);
        break;
      case FaultKind::ServerSlow:
        e.target_a = pick(space.server_targets);
        e.magnitude = rng.uniform(1.0, space.max_slow_ms);
        if (ramp) e.magnitude_end = rng.uniform(0.0, space.max_slow_ms);
        break;
      case FaultKind::XferStarve:
        e.target_a = pick(space.xfer_targets);
        break;
    }
    events.push_back(std::move(e));
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.start < b.start;
                   });
  for (auto& e : events) schedule.add(std::move(e));
  schedule.validate();
  return schedule;
}

}  // namespace recwild::fault
