// FaultInjector: compiles a FaultSchedule against a concrete world and
// enforces it, deterministically.
//
// Two enforcement channels, both pull-based (nothing is ever scheduled on
// the event queue — scheduled transitions would fire once per campaign
// replica and break the sharded engines' merge identity):
//  * a net::PacketFaultHook the network consults per packet (path,
//    blackhole, partition, loss, latency-spike and transfer-starvation
//    faults);
//  * an authns::AuthFaultProvider installed on each bound server
//    (crash / refuse / slow faults), evaluated per received query.
//
// All fault observability — the fault.events.armed counter and the
// FaultOn/FaultOff trace events — is emitted once at arm() time (world
// construction) but stamped with each event's window times. Campaign
// replicas snapshot their baseline AFTER world construction, so arm-time
// emissions land in the baseline and are excluded from per-shard deltas:
// the serial world emits them exactly once.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "anycast/service.hpp"
#include "authns/server.hpp"
#include "fault/schedule.hpp"
#include "net/network.hpp"
#include "stats/rng.hpp"

namespace recwild::fault {

class FaultInjector final : public net::PacketFaultHook {
 public:
  /// Binds to `network`; call bind_server() for every authoritative the
  /// schedule may target, then arm(). The injector must outlive arm() and
  /// be destroyed (or disarm()ed) before the network and servers.
  FaultInjector(net::Network& network, FaultSchedule schedule);
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Registers a server as a potential target of server faults, keyed by
  /// its identity(). Call before arm().
  void bind_server(authns::AuthServer& server);

  /// Registers an anycast service as a potential target of site faults
  /// (SiteWithdraw / SiteFlap), matched by its shared address (dotted quad
  /// in target_a) or its name. Call before arm(); the service must outlive
  /// disarm(). Site events compile into withdrawal windows pushed into the
  /// service's RouteControl, with per-(event, site, cycle) convergence
  /// jitter drawn from identity-keyed streams — replicas arming the same
  /// schedule compute byte-identical windows.
  void bind_service(anycast::AnycastService& service);

  /// Resolves every event's symbolic targets against the world (node names
  /// via Network::find_node, server identities via bind_server, dotted-quad
  /// addresses parsed), installs the packet hook (only when a packet-level
  /// fault exists) and the per-server providers, and emits the arm-time
  /// observability. Throws std::invalid_argument on an unknown target.
  /// Idempotent via disarm(): arming twice disarms first.
  void arm();

  /// Removes the packet hook and all installed providers. Safe to call
  /// repeatedly; the destructor calls it.
  void disarm();

  [[nodiscard]] bool armed() const noexcept { return armed_; }
  [[nodiscard]] const FaultSchedule& schedule() const noexcept {
    return schedule_;
  }

  // net::PacketFaultHook
  [[nodiscard]] net::FaultVerdict on_packet(net::NodeId from, net::NodeId to,
                                            const net::Endpoint& src,
                                            const net::Endpoint& dst,
                                            bool via_stream,
                                            net::SimTime now) override;

 private:
  struct PathFault {
    std::size_t event;         // index into schedule_.events()
    net::NodeId a = net::kInvalidNode;  // kInvalidNode = wildcard
    net::NodeId b = net::kInvalidNode;
    [[nodiscard]] bool matches(net::NodeId from, net::NodeId to) const {
      const bool fwd = (a == net::kInvalidNode || a == from) &&
                       (b == net::kInvalidNode || b == to);
      const bool rev = (a == net::kInvalidNode || a == to) &&
                       (b == net::kInvalidNode || b == from);
      return fwd || rev;
    }
  };
  struct AddressFault {
    std::size_t event;
    net::IpAddress address;  // unspecified = wildcard
    bool wildcard = false;
  };

  /// Per-(event, directed flow) loss stream, forked lazily off a parent
  /// that never advances — the same identity-keying discipline as
  /// Network::flow_rng, so loss draws are independent of unrelated traffic.
  stats::Rng& loss_rng(std::size_t event, net::NodeId from, net::NodeId to);

  void emit_arm_obs();

  /// Compiles one site event against a bound service: resolves the site
  /// code, slices flaps into per-cycle outage windows, draws convergence
  /// jitter and pushes everything into the service's RouteControl.
  void arm_site_event(std::size_t index, anycast::AnycastService& service);

  net::Network& network_;
  FaultSchedule schedule_;
  bool armed_ = false;
  bool hook_installed_ = false;

  std::vector<std::pair<std::string, authns::AuthServer*>> servers_;
  std::vector<authns::AuthServer*> provided_;  // providers installed
  std::vector<anycast::AnycastService*> services_;
  std::vector<anycast::AnycastService*> route_armed_;  // outages pushed

  std::vector<PathFault> loss_;
  std::vector<PathFault> spikes_;
  std::vector<PathFault> partitions_;
  std::vector<AddressFault> blackholes_;
  std::vector<AddressFault> starves_;

  stats::Rng rng_parent_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, stats::Rng> loss_rngs_;

  obs::Counter* obs_dropped_ = nullptr;
  obs::Counter* obs_delayed_ = nullptr;
};

}  // namespace recwild::fault
