// Chaos schedules: seeded random FaultSchedules over a described world.
//
// ChaosSpace lists the identities a generated schedule may target (server
// identities, node names, addresses) plus bounds on windows and magnitudes;
// random_schedule() draws a schedule deterministically from an Rng. The
// chaos invariant harness (tests/fault) runs campaigns under such schedules
// and asserts the engine's guarantees hold regardless of what broke.
#pragma once

#include <string>
#include <vector>

#include "fault/schedule.hpp"
#include "stats/rng.hpp"

namespace recwild::fault {

struct ChaosSpace {
  /// Sim-time horizon events are placed in.
  net::Duration horizon = net::Duration::minutes(60);
  /// Number of fault events to draw.
  std::size_t events = 6;

  /// Target pools; kinds whose pool is empty are never drawn.
  std::vector<std::string> server_targets;   // server identities
  std::vector<std::string> node_targets;     // node names (path faults)
  std::vector<std::string> address_targets;  // dotted quads (blackhole)
  std::vector<std::string> xfer_targets;     // dotted quads (xfer starve)

  double max_loss = 0.9;           // loss-burst probability ceiling
  double max_latency_ms = 400.0;   // latency-spike ceiling (one-way ms)
  double max_slow_ms = 1000.0;     // server-slow ceiling (ms)
  net::Duration min_window = net::Duration::seconds(30);
};

/// Draws a valid schedule from the space; deterministic in (space, rng
/// state). Events are emitted in start-time order. Returns an empty
/// schedule when every target pool is empty or events == 0.
[[nodiscard]] FaultSchedule random_schedule(const ChaosSpace& space,
                                            stats::Rng rng);

}  // namespace recwild::fault
