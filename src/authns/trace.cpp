#include "authns/trace.hpp"

#include <algorithm>
#include <charconv>
#include <map>
#include <sstream>
#include <stdexcept>

namespace recwild::authns {

void write_trace(std::ostream& out, const QueryLog& log,
                 const std::string& server_identity) {
  for (const auto& e : log.entries()) {
    out << e.at.count_micros() << '\t' << e.client.to_string() << '\t'
        << server_identity << '\t' << e.qname.to_string() << '\t'
        << dns::to_string(e.qtype) << '\t' << dns::to_string(e.rcode)
        << '\n';
  }
}

namespace {

net::IpAddress parse_addr(const std::string& text, std::size_t line_no) {
  unsigned a = 256, b = 256, c = 256, d = 256;
  char extra = 0;
  if (std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &extra) !=
          4 ||
      a > 255 || b > 255 || c > 255 || d > 255) {
    throw std::runtime_error{"trace line " + std::to_string(line_no) +
                             ": bad address '" + text + "'"};
  }
  return net::IpAddress::from_octets(
      static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
      static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

}  // namespace

std::vector<TraceRecord> read_trace(std::istream& in) {
  std::vector<TraceRecord> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields{line};
    std::string t_us, client, server, qname, qtype, rcode;
    if (!std::getline(fields, t_us, '\t') ||
        !std::getline(fields, client, '\t') ||
        !std::getline(fields, server, '\t') ||
        !std::getline(fields, qname, '\t') ||
        !std::getline(fields, qtype, '\t') ||
        !std::getline(fields, rcode, '\t')) {
      throw std::runtime_error{"trace line " + std::to_string(line_no) +
                               ": expected 6 tab-separated fields"};
    }
    TraceRecord rec;
    std::int64_t us = 0;
    const auto [ptr, ec] =
        std::from_chars(t_us.data(), t_us.data() + t_us.size(), us);
    if (ec != std::errc{} || ptr != t_us.data() + t_us.size()) {
      throw std::runtime_error{"trace line " + std::to_string(line_no) +
                               ": bad timestamp"};
    }
    rec.at = net::SimTime::from_micros(us);
    rec.client = parse_addr(client, line_no);
    rec.server = server;
    rec.qname = dns::Name::parse(qname);
    const auto qt = dns::rrtype_from_string(qtype);
    if (!qt) {
      throw std::runtime_error{"trace line " + std::to_string(line_no) +
                               ": bad qtype '" + qtype + "'"};
    }
    rec.qtype = *qt;
    // Rcode: match by name over the small known set.
    bool rcode_ok = false;
    for (const auto rc :
         {dns::Rcode::NoError, dns::Rcode::FormErr, dns::Rcode::ServFail,
          dns::Rcode::NxDomain, dns::Rcode::NotImp, dns::Rcode::Refused}) {
      if (dns::to_string(rc) == rcode) {
        rec.rcode = rc;
        rcode_ok = true;
      }
    }
    if (!rcode_ok) {
      throw std::runtime_error{"trace line " + std::to_string(line_no) +
                               ": bad rcode '" + rcode + "'"};
    }
    out.push_back(std::move(rec));
  }
  return out;
}

std::vector<TraceRecord> merge_traces(
    std::vector<std::vector<TraceRecord>> traces) {
  std::vector<TraceRecord> merged;
  std::size_t total = 0;
  for (const auto& t : traces) total += t.size();
  merged.reserve(total);
  for (auto& t : traces) {
    merged.insert(merged.end(), std::make_move_iterator(t.begin()),
                  std::make_move_iterator(t.end()));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.at < b.at;
                   });
  return merged;
}

TraceStats summarize_trace(const std::vector<TraceRecord>& records) {
  TraceStats stats;
  std::map<std::string, std::uint64_t> servers;
  std::map<std::uint32_t, std::uint64_t> clients;
  for (const auto& r : records) {
    ++servers[r.server];
    ++clients[r.client.bits()];
    ++stats.total;
  }
  for (auto& [server, n] : servers) stats.per_server.emplace_back(server, n);
  for (auto& [client, n] : clients) {
    stats.per_client.emplace_back(net::IpAddress{client}, n);
  }
  // Heaviest first, like a DITL report.
  std::sort(stats.per_client.begin(), stats.per_client.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return stats;
}

}  // namespace recwild::authns
