// Transport-independent authoritative answer engine — "one engine, two
// transports" (docs/ARCHITECTURE.md).
//
// A Responder owns the zones and the pure query->response logic an
// authoritative needs: RFC 1034 lookups via QueryEngine, CHAOS-class
// identity, AXFR, EDNS0 echo with RFC 6891 payload-size clamping, UDP
// truncation, and the FORMERR reply for undecodable-but-headered input.
// It never touches a transport: the simulated AuthServer (src/authns,
// driven by net::Network) and the kernel-socket server (src/netio, driven
// by epoll) both delegate here, which is what makes the transport-
// equivalence golden test (live bytes == simulated bytes) meaningful.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "authns/query_engine.hpp"
#include "authns/zone.hpp"
#include "dnscore/codec.hpp"
#include "net/wire_buffer.hpp"

namespace recwild::authns {

struct ResponderConfig {
  /// Server identity returned for CH TXT hostname.bind / id.server.
  std::string identity;
  /// Maximum UDP response size when the query carries no EDNS0 (RFC 1035).
  std::size_t plain_udp_limit = 512;
  /// Referral-fanout cap (docs/ATTACKS.md): a referral carries at most this
  /// many NS records (with matching glue). Bounds the per-referral work an
  /// NXNS-style delegation can demand from a resolver. 0 = unlimited.
  int max_referral_fanout = 0;
};

/// Out-of-band facts about an answer() call, for the transport layers:
/// which branch the lookup took (feeds RRL categorisation) and whether the
/// referral-fanout cap trimmed the NS set.
struct AnswerInfo {
  Disposition disposition = Disposition::NotAuth;
  bool referral_capped = false;
};

class Responder {
 public:
  /// RFC 6891 §6.2.3: a requestor's advertised UDP payload size below 512
  /// octets is treated as 512 (values like 0 or 100 would otherwise make
  /// every answer truncate, or worse, make the limit meaningless).
  static constexpr std::size_t kMinUdpPayload = 512;
  /// Our own ceiling on UDP responses, EDNS or not: 1232 octets, the
  /// fragmentation-safe default the DNS flag day 2020 converged on. A
  /// client advertising more does not raise what we are willing to send.
  static constexpr std::size_t kMaxUdpPayload = 1232;

  explicit Responder(ResponderConfig config) : config_(std::move(config)) {}

  void add_zone(Zone zone) {
    zones_.push_back(std::make_shared<const Zone>(std::move(zone)));
  }
  /// Shares a pre-built zone without copying it. The world builders hand
  /// every shard replica (and every anycast site) the same immutable zone
  /// object — zone data is by far the largest build artifact, and answer()
  /// only ever reads it.
  void add_zone(std::shared_ptr<const Zone> zone) {
    zones_.push_back(std::move(zone));
  }

  /// Replaces the zone with the same origin (adds it if absent).
  /// Returns true when an existing zone was replaced.
  bool replace_zone(Zone zone);

  /// The served zone with this origin, or nullptr.
  [[nodiscard]] const Zone* zone_for(const dns::Name& origin) const;

  [[nodiscard]] const std::vector<std::shared_ptr<const Zone>>& zones()
      const noexcept {
    return zones_;
  }
  [[nodiscard]] const std::string& identity() const noexcept {
    return config_.identity;
  }
  [[nodiscard]] const ResponderConfig& config() const noexcept {
    return config_;
  }

  /// Reconfigures the referral-fanout cap (0 = unlimited). Exposed so the
  /// simulated AuthServer can arm the defense after construction.
  void set_max_referral_fanout(int cap) noexcept {
    config_.max_referral_fanout = cap;
  }

  /// Builds the response for `query`. Responses to stream (TCP) queries
  /// are never truncated. When `wire_out` is non-null and the UDP size
  /// check already encoded the response, the encoded bytes are handed back
  /// so the caller does not encode a second time (empty = caller encodes).
  /// When `info` is non-null it receives the lookup disposition and
  /// whether the referral-fanout cap fired.
  [[nodiscard]] dns::Message answer(const dns::Message& query,
                                    bool via_stream = false,
                                    net::WireBuffer* wire_out = nullptr,
                                    AnswerInfo* info = nullptr) const;

  /// The truncation limit for a UDP response to `query`: the clamped
  /// client-advertised EDNS size, or plain_udp_limit without EDNS.
  [[nodiscard]] std::size_t udp_limit(const dns::Message& query) const;

  /// FORMERR reply for a datagram decode_message rejected: echoes the id
  /// and opcode of the 12-octet header so the client can match it. Returns
  /// nullopt when no reply must be sent — the datagram is shorter than a
  /// header, or is itself a response (replying would build reflection
  /// loops between broken servers).
  [[nodiscard]] static std::optional<net::WireBuffer> formerr_reply(
      std::span<const std::uint8_t> wire);

 private:
  [[nodiscard]] dns::Message answer_chaos(const dns::Message& query) const;
  [[nodiscard]] dns::Message answer_axfr(const dns::Message& query,
                                         bool via_stream) const;

  ResponderConfig config_;
  /// Served zones; shared immutable (replica worlds and anycast sites all
  /// point at one copy). replace_zone swaps the pointer, never mutates.
  std::vector<std::shared_ptr<const Zone>> zones_;
};

}  // namespace recwild::authns
