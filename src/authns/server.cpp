#include "authns/server.hpp"

#include "obs/names.hpp"

namespace recwild::authns {

AuthServer::AuthServer(net::Network& network, net::NodeId node,
                       net::Endpoint endpoint, AuthServerConfig config)
    : network_(network),
      node_(node),
      endpoint_(endpoint),
      config_(std::move(config)),
      responder_(ResponderConfig{config_.identity, config_.plain_udp_limit}) {
  obs::MetricRegistry& m = network_.sim().metrics();
  trace_ = &network_.sim().trace();
  obs_queries_ = &m.counter(obs::names::kAuthnsQueries);
  obs_responses_ = &m.counter(obs::names::kAuthnsResponses);
  obs_truncated_ = &m.counter(obs::names::kAuthnsTruncated);
  obs_fault_refused_ = &m.counter(obs::names::kFaultAuthRefused);
  // obs_formerr_ is resolved lazily on the first malformed datagram:
  // registering it eagerly would add an always-zero counter to every
  // simulation snapshot and invalidate the committed byte-identity
  // fixtures for worlds that never see hostile input.
}

AuthServer::~AuthServer() {
  if (listening_) {
    network_.unlisten(node_, endpoint_);
    for (const auto& ep : extra_endpoints_) network_.unlisten(node_, ep);
  }
}

void AuthServer::listen_also(net::Endpoint ep) {
  extra_endpoints_.push_back(ep);
  if (listening_) {
    network_.listen(node_, ep, [this](const net::Datagram& d, net::NodeId n) {
      on_datagram(d, n);
    });
  }
}

void AuthServer::add_zone(Zone zone) { responder_.add_zone(std::move(zone)); }

void AuthServer::add_zone(std::shared_ptr<const Zone> zone) {
  responder_.add_zone(std::move(zone));
}

void AuthServer::replace_zone(Zone zone) {
  const dns::Name origin = zone.origin();
  responder_.replace_zone(std::move(zone));
  send_notifies(origin);
}

const Zone* AuthServer::zone_for(const dns::Name& origin) const {
  return responder_.zone_for(origin);
}

void AuthServer::add_notify_target(dns::Name origin,
                                   net::Endpoint secondary) {
  notify_targets_.emplace_back(std::move(origin), secondary);
}

void AuthServer::send_notifies(const dns::Name& origin) {
  for (const auto& [zone, target] : notify_targets_) {
    if (!(zone == origin)) continue;
    dns::Message notify;
    notify.header.opcode = dns::Opcode::Notify;
    notify.header.aa = true;
    notify.questions.push_back(
        dns::Question{origin, dns::RRType::SOA, dns::RRClass::IN});
    network_.send(node_, endpoint_, target, dns::encode_message(notify));
  }
}

void AuthServer::set_rrl(const RrlConfig& config) {
  rrl_.set_config(config);
  if (rrl_.enabled()) {
    obs::MetricRegistry& m = network_.sim().metrics();
    obs_rrl_dropped_ = &m.counter(obs::names::kRrlDropped);
    obs_rrl_slipped_ = &m.counter(obs::names::kRrlSlipped);
  }
}

void AuthServer::set_referral_fanout_cap(int cap) {
  responder_.set_max_referral_fanout(cap);
  if (cap > 0) {
    obs_referral_capped_ =
        &network_.sim().metrics().counter(obs::names::kAuthnsReferralCapped);
  }
}

void AuthServer::set_victim(bool victim) {
  victim_ = victim;
  if (victim) {
    obs_victim_queries_ =
        &network_.sim().metrics().counter(obs::names::kAttackVictimQueries);
  }
}

void AuthServer::start() {
  if (listening_) return;
  auto handler = [this](const net::Datagram& d, net::NodeId at) {
    on_datagram(d, at);
  };
  network_.listen(node_, endpoint_, handler);
  for (const auto& ep : extra_endpoints_) network_.listen(node_, ep, handler);
  listening_ = true;
}

void AuthServer::stop() {
  if (!listening_) return;
  network_.unlisten(node_, endpoint_);
  for (const auto& ep : extra_endpoints_) network_.unlisten(node_, ep);
  listening_ = false;
}

dns::Message AuthServer::answer(const dns::Message& query, bool via_stream,
                                net::WireBuffer* wire_out) const {
  return responder_.answer(query, via_stream, wire_out);
}

void AuthServer::on_datagram(const net::Datagram& dgram, net::NodeId at_node) {
  (void)at_node;  // this server IS the site; anycast siblings are separate
  ++queries_received_;
  dns::Message query;
  try {
    query = dns::decode_message(dgram.payload);
  } catch (const dns::WireError&) {
    // Undecodable but carrying a full non-response header: answer FORMERR
    // so the client can fail fast instead of burning its retransmit budget
    // (RFC 1035 §4.1.1; what NSD/BIND do). Anything shorter — or a QR=1
    // packet, which must never be answered — is dropped silently.
    auto formerr = Responder::formerr_reply(dgram.payload);
    if (!formerr || down_) return;
    AuthFaultState fault;
    if (fault_provider_) fault = fault_provider_(network_.sim().now());
    if (fault.mode == AuthFailMode::Unresponsive) return;
    if (obs_formerr_ == nullptr) {
      obs_formerr_ =
          &network_.sim().metrics().counter(obs::names::kAuthnsFormerr);
    }
    obs_formerr_->add(1, network_.sim().now());
    net::Duration processing = config_.processing_delay;
    if (fault.mode == AuthFailMode::Slow) processing += fault.extra_delay;
    const net::Endpoint reply_src = dgram.dst;
    const net::Endpoint reply_dst = dgram.src;
    network_.sim().after(
        processing, [this, wire = std::move(*formerr), reply_src,
                     reply_dst]() mutable {
          ++responses_sent_;
          obs_responses_->add(1, network_.sim().now());
          network_.send(node_, reply_src, reply_dst, std::move(wire));
        });
    return;
  }
  if (query.header.qr) return;  // not a query

  // NOTIFY (RFC 1996): acknowledge and hand to the transfer machinery.
  if (query.header.opcode == dns::Opcode::Notify) {
    if (!query.questions.empty() && notify_handler_) {
      notify_handler_(query.question().qname, dgram.src.addr);
    }
    dns::Message ack = dns::Message::make_response(query);
    ack.header.aa = true;
    network_.send(node_, dgram.dst, dgram.src, dns::encode_message(ack));
    return;
  }

  if (!query.questions.empty()) {
    obs_queries_->add(1, network_.sim().now());
    if (victim_) obs_victim_queries_->add(1, network_.sim().now());
    log_.record(QueryLogEntry{network_.sim().now(), dgram.src.addr,
                              query.question().qname,
                              query.question().qtype, dns::Rcode::NoError});
    if (trace_->enabled()) {
      trace_->record({network_.sim().now(), obs::TraceKind::AuthQuery,
                      config_.identity, query.question().qname.to_string(),
                      std::string{dns::to_string(query.question().qtype)},
                      0.0});
    }
  }
  if (down_) return;  // crashed process: receives but never answers

  // Pull-based fault injection: ask the provider (if any) how this server
  // misbehaves right now. Severity at the provider: crash > refuse > slow.
  AuthFaultState fault;
  if (fault_provider_) fault = fault_provider_(network_.sim().now());
  if (fault.mode == AuthFailMode::Unresponsive) return;

  dns::Message resp;
  net::WireBuffer wire;
  AnswerInfo info;
  if (fault.mode == AuthFailMode::Refused) {
    resp = dns::Message::make_response(query);
    resp.header.rcode = dns::Rcode::Refused;
    obs_fault_refused_->add(1, network_.sim().now());
  } else {
    resp = responder_.answer(query, dgram.via_stream, &wire, &info);
    if (info.referral_capped) {
      obs_referral_capped_->add(1, network_.sim().now());
    }
    // RRL guards the UDP answer path only: TCP carries a proven source
    // address, and responses to it are never limited (the TC slip exists
    // precisely to funnel real clients there).
    if (!dgram.via_stream && rrl_.enabled() && !query.questions.empty()) {
      const RrlAction action =
          rrl_.check(dgram.src.addr.bits(),
                     rrl_category(resp.header.rcode, info.disposition),
                     network_.sim().now());
      if (action == RrlAction::Drop) {
        obs_rrl_dropped_->add(1, network_.sim().now());
        if (trace_->enabled()) {
          trace_->record({network_.sim().now(), obs::TraceKind::RrlDrop,
                          config_.identity,
                          query.question().qname.to_string(),
                          dgram.src.addr.to_string(), 0.0});
        }
        return;
      }
      if (action == RrlAction::Slip) {
        obs_rrl_slipped_->add(1, network_.sim().now());
        if (trace_->enabled()) {
          trace_->record({network_.sim().now(), obs::TraceKind::RrlSlip,
                          config_.identity,
                          query.question().qname.to_string(),
                          dgram.src.addr.to_string(), 0.0});
        }
        resp = make_slip_reply(query);
        wire = dns::encode_message(resp);
      }
    }
  }
  if (resp.header.tc && !dgram.via_stream) {
    obs_truncated_->add(1, network_.sim().now());
  }
  net::Duration processing = config_.processing_delay;
  if (fault.mode == AuthFailMode::Slow) processing += fault.extra_delay;
  // answer() hands back the bytes its UDP size check produced; only the
  // paths that never ran the check (stream, fault-refused) encode here.
  if (wire.empty()) wire = dns::encode_message(resp);
  const bool via_stream = dgram.via_stream;
  // Capture only the reply endpoints, not the whole query datagram: the
  // payload is dead weight and its buffer should go back to the pool now.
  const net::Endpoint reply_src = dgram.dst;
  const net::Endpoint reply_dst = dgram.src;
  network_.sim().after(
      processing, [this, wire = std::move(wire), reply_src, reply_dst,
                   via_stream]() mutable {
        ++responses_sent_;
        obs_responses_->add(1, network_.sim().now());
        // Reply from the endpoint that received the query (matters for
        // dual-stack servers listening on several addresses).
        if (via_stream) {
          network_.send_stream(node_, reply_src, reply_dst, std::move(wire));
        } else {
          network_.send(node_, reply_src, reply_dst, std::move(wire));
        }
      });
}

}  // namespace recwild::authns
