#include "authns/server.hpp"

#include <algorithm>

#include "obs/names.hpp"

namespace recwild::authns {

AuthServer::AuthServer(net::Network& network, net::NodeId node,
                       net::Endpoint endpoint, AuthServerConfig config)
    : network_(network),
      node_(node),
      endpoint_(endpoint),
      config_(std::move(config)) {
  obs::MetricRegistry& m = network_.sim().metrics();
  trace_ = &network_.sim().trace();
  obs_queries_ = &m.counter(obs::names::kAuthnsQueries);
  obs_responses_ = &m.counter(obs::names::kAuthnsResponses);
  obs_truncated_ = &m.counter(obs::names::kAuthnsTruncated);
  obs_fault_refused_ = &m.counter(obs::names::kFaultAuthRefused);
}

AuthServer::~AuthServer() {
  if (listening_) {
    network_.unlisten(node_, endpoint_);
    for (const auto& ep : extra_endpoints_) network_.unlisten(node_, ep);
  }
}

void AuthServer::listen_also(net::Endpoint ep) {
  extra_endpoints_.push_back(ep);
  if (listening_) {
    network_.listen(node_, ep, [this](const net::Datagram& d, net::NodeId n) {
      on_datagram(d, n);
    });
  }
}

void AuthServer::add_zone(Zone zone) { zones_.push_back(std::move(zone)); }

void AuthServer::replace_zone(Zone zone) {
  const dns::Name origin = zone.origin();
  bool replaced = false;
  for (auto& z : zones_) {
    if (z.origin() == origin) {
      z = std::move(zone);
      replaced = true;
      break;
    }
  }
  if (!replaced) zones_.push_back(std::move(zone));
  send_notifies(origin);
}

const Zone* AuthServer::zone_for(const dns::Name& origin) const {
  for (const auto& z : zones_) {
    if (z.origin() == origin) return &z;
  }
  return nullptr;
}

void AuthServer::add_notify_target(dns::Name origin,
                                   net::Endpoint secondary) {
  notify_targets_.emplace_back(std::move(origin), secondary);
}

void AuthServer::send_notifies(const dns::Name& origin) {
  for (const auto& [zone, target] : notify_targets_) {
    if (!(zone == origin)) continue;
    dns::Message notify;
    notify.header.opcode = dns::Opcode::Notify;
    notify.header.aa = true;
    notify.questions.push_back(
        dns::Question{origin, dns::RRType::SOA, dns::RRClass::IN});
    network_.send(node_, endpoint_, target, dns::encode_message(notify));
  }
}

dns::Message AuthServer::answer_axfr(const dns::Message& query,
                                     bool via_stream) const {
  dns::Message resp = dns::Message::make_response(query);
  // AXFR requires the stream transport (RFC 5936 §4.2): over UDP the
  // server replies with TC so the client retries over TCP.
  if (!via_stream) {
    resp.header.tc = true;
    return resp;
  }
  const Zone* zone = zone_for(query.question().qname);
  if (zone == nullptr || !zone->soa()) {
    resp.header.rcode = dns::Rcode::Refused;
    return resp;
  }
  resp.header.aa = true;
  // SOA first and last, the full zone in between.
  const auto all = zone->all_records();
  const auto soa_it =
      std::find_if(all.begin(), all.end(), [](const dns::ResourceRecord& r) {
        return r.type() == dns::RRType::SOA;
      });
  resp.answers.push_back(*soa_it);
  for (const auto& rr : all) {
    if (rr.type() != dns::RRType::SOA) resp.answers.push_back(rr);
  }
  resp.answers.push_back(*soa_it);
  return resp;
}

void AuthServer::start() {
  if (listening_) return;
  auto handler = [this](const net::Datagram& d, net::NodeId at) {
    on_datagram(d, at);
  };
  network_.listen(node_, endpoint_, handler);
  for (const auto& ep : extra_endpoints_) network_.listen(node_, ep, handler);
  listening_ = true;
}

void AuthServer::stop() {
  if (!listening_) return;
  network_.unlisten(node_, endpoint_);
  for (const auto& ep : extra_endpoints_) network_.unlisten(node_, ep);
  listening_ = false;
}

dns::Message AuthServer::answer_chaos(const dns::Message& query) const {
  // NSD-style identity: CH TXT hostname.bind and id.server return the
  // configured identity string (RFC 4892 / RFC 8914 practice).
  dns::Message resp = dns::Message::make_response(query);
  const auto& q = query.question();
  static const dns::Name kHostnameBind = dns::Name::parse("hostname.bind");
  static const dns::Name kIdServer = dns::Name::parse("id.server");
  if (q.qtype == dns::RRType::TXT &&
      (q.qname == kHostnameBind || q.qname == kIdServer)) {
    resp.header.aa = true;
    resp.answers.push_back(dns::ResourceRecord{
        q.qname, dns::RRClass::CH, 0,
        dns::TxtRdata{{config_.identity}}});
  } else {
    resp.header.rcode = dns::Rcode::Refused;
  }
  return resp;
}

dns::Message AuthServer::answer(const dns::Message& query, bool via_stream,
                                net::WireBuffer* wire_out) const {
  if (query.questions.empty()) {
    dns::Message resp;
    resp.header = query.header;
    resp.header.qr = true;
    resp.header.rcode = dns::Rcode::FormErr;
    return resp;
  }
  const auto& q = query.question();
  if (q.qclass == dns::RRClass::CH) return answer_chaos(query);
  if (q.qtype == dns::RRType::AXFR) return answer_axfr(query, via_stream);

  // Find the most specific zone containing the qname.
  const Zone* best = nullptr;
  for (const auto& z : zones_) {
    if (!q.qname.is_subdomain_of(z.origin())) continue;
    if (best == nullptr ||
        z.origin().label_count() > best->origin().label_count()) {
      best = &z;
    }
  }
  dns::Message resp = dns::Message::make_response(query);
  if (query.edns) {
    resp.edns = dns::EdnsInfo{};  // echo EDNS support, our own buffer size
    resp.edns->udp_payload_size = 1232;
  }
  if (best == nullptr) {
    resp.header.rcode = dns::Rcode::Refused;
    return resp;
  }
  const QueryEngine engine{*best};
  LookupResult result = engine.lookup(q);
  resp.header.rcode = result.rcode;
  resp.header.aa = result.authoritative;
  resp.answers = std::move(result.answers);
  resp.authorities = std::move(result.authorities);
  resp.additionals = std::move(result.additionals);

  // UDP size handling: if the encoded response exceeds what the client
  // can take, truncate sections and set TC; the client then retries over
  // TCP (Network::send_stream), where no limit applies. The size check IS
  // the final encode — the bytes go out through wire_out instead of being
  // thrown away and produced a second time by the caller.
  if (!via_stream) {
    const std::size_t limit =
        query.edns ? query.edns->udp_payload_size : config_.plain_udp_limit;
    net::WireBuffer wire = dns::encode_message(resp);
    if (wire.size() > limit) {
      resp.header.tc = true;
      resp.answers.clear();
      resp.authorities.clear();
      resp.additionals.clear();
      wire = dns::encode_message(resp);
    }
    if (wire_out != nullptr) *wire_out = std::move(wire);
  }
  return resp;
}

void AuthServer::on_datagram(const net::Datagram& dgram, net::NodeId at_node) {
  (void)at_node;  // this server IS the site; anycast siblings are separate
  ++queries_received_;
  dns::Message query;
  try {
    query = dns::decode_message(dgram.payload);
  } catch (const dns::WireError&) {
    return;  // garbage in, silence out (NSD drops unparseable packets)
  }
  if (query.header.qr) return;  // not a query

  // NOTIFY (RFC 1996): acknowledge and hand to the transfer machinery.
  if (query.header.opcode == dns::Opcode::Notify) {
    if (!query.questions.empty() && notify_handler_) {
      notify_handler_(query.question().qname, dgram.src.addr);
    }
    dns::Message ack = dns::Message::make_response(query);
    ack.header.aa = true;
    network_.send(node_, dgram.dst, dgram.src, dns::encode_message(ack));
    return;
  }

  if (!query.questions.empty()) {
    obs_queries_->add(1, network_.sim().now());
    log_.record(QueryLogEntry{network_.sim().now(), dgram.src.addr,
                              query.question().qname,
                              query.question().qtype, dns::Rcode::NoError});
    if (trace_->enabled()) {
      trace_->record({network_.sim().now(), obs::TraceKind::AuthQuery,
                      config_.identity, query.question().qname.to_string(),
                      std::string{dns::to_string(query.question().qtype)},
                      0.0});
    }
  }
  if (down_) return;  // crashed process: receives but never answers

  // Pull-based fault injection: ask the provider (if any) how this server
  // misbehaves right now. Severity at the provider: crash > refuse > slow.
  AuthFaultState fault;
  if (fault_provider_) fault = fault_provider_(network_.sim().now());
  if (fault.mode == AuthFailMode::Unresponsive) return;

  dns::Message resp;
  net::WireBuffer wire;
  if (fault.mode == AuthFailMode::Refused) {
    resp = dns::Message::make_response(query);
    resp.header.rcode = dns::Rcode::Refused;
    obs_fault_refused_->add(1, network_.sim().now());
  } else {
    resp = answer(query, dgram.via_stream, &wire);
  }
  if (resp.header.tc && !dgram.via_stream) {
    obs_truncated_->add(1, network_.sim().now());
  }
  net::Duration processing = config_.processing_delay;
  if (fault.mode == AuthFailMode::Slow) processing += fault.extra_delay;
  // answer() hands back the bytes its UDP size check produced; only the
  // paths that never ran the check (stream, fault-refused) encode here.
  if (wire.empty()) wire = dns::encode_message(resp);
  const bool via_stream = dgram.via_stream;
  // Capture only the reply endpoints, not the whole query datagram: the
  // payload is dead weight and its buffer should go back to the pool now.
  const net::Endpoint reply_src = dgram.dst;
  const net::Endpoint reply_dst = dgram.src;
  network_.sim().after(
      processing, [this, wire = std::move(wire), reply_src, reply_dst,
                   via_stream]() mutable {
        ++responses_sent_;
        obs_responses_->add(1, network_.sim().now());
        // Reply from the endpoint that received the query (matters for
        // dual-stack servers listening on several addresses).
        if (via_stream) {
          network_.send_stream(node_, reply_src, reply_dst, std::move(wire));
        } else {
          network_.send(node_, reply_src, reply_dst, std::move(wire));
        }
      });
}

}  // namespace recwild::authns
