// Authoritative zone storage.
//
// A Zone holds the RRsets of one zone cut, indexed by owner name and type,
// in canonical name order (so delegations and wildcard owners can be found
// by ancestor walks). Mirrors what NSD loads from a master file.
#pragma once

#include <map>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dnscore/name_table.hpp"
#include "dnscore/record.hpp"
#include "dnscore/zonefile.hpp"

namespace recwild::authns {

using dns::Name;
using dns::ResourceRecord;
using dns::RRClass;
using dns::RRset;
using dns::RRType;

class Zone {
 public:
  /// An empty zone rooted at `origin`. Records are added with add().
  explicit Zone(Name origin, RRClass rrclass = RRClass::IN);

  // Copies rebuild the interned-name index (it points into names_); moves
  // keep it — std::map moves preserve its nodes, so the pointers survive.
  Zone(const Zone& o);
  Zone& operator=(const Zone& o);
  Zone(Zone&&) noexcept = default;
  Zone& operator=(Zone&&) noexcept = default;

  /// Loads a zone from master-file text. The zone origin is `origin`
  /// unless the text overrides it with $ORIGIN before the first record.
  static Zone from_text(Name origin, std::string_view master_text,
                        dns::Ttl default_ttl = 3600);

  [[nodiscard]] const Name& origin() const noexcept { return origin_; }
  [[nodiscard]] RRClass rrclass() const noexcept { return rrclass_; }

  /// Adds one record. Throws std::invalid_argument if the owner is outside
  /// the zone or the class mismatches.
  void add(ResourceRecord rr);

  /// The RRset at (name, type), or nullptr.
  [[nodiscard]] const RRset* find(const Name& name, RRType type) const;

  /// All RRsets at a name (nullptr if the name has none).
  [[nodiscard]] const std::vector<RRset>* find_all(const Name& name) const;

  /// True if `name` exists in the zone (has any RRset), or is an empty
  /// non-terminal (an existing name descends from it).
  [[nodiscard]] bool name_exists(const Name& name) const;

  /// The zone's SOA record; nullopt for a zone still being built.
  [[nodiscard]] std::optional<dns::SoaRdata> soa() const;
  /// SOA negative-caching TTL (minimum field), per RFC 2308.
  [[nodiscard]] dns::Ttl negative_ttl() const;

  /// The apex NS set.
  [[nodiscard]] const RRset* apex_ns() const;

  /// The closest delegation point strictly between the apex and `name`
  /// (exclusive of the apex, inclusive of `name` itself), or nullptr.
  /// A delegation point is a name below the apex owning an NS RRset.
  [[nodiscard]] const RRset* find_delegation(const Name& name) const;

  /// The wildcard RRset that would synthesize `name` with `type`
  /// (RFC 1034 §4.3.3): checks "*.<closest-encloser>". Returns nullptr if
  /// no wildcard applies.
  [[nodiscard]] const RRset* find_wildcard(const Name& name,
                                           RRType type) const;

  /// Glue lookup: A/AAAA records for `target` if present in zone data
  /// (used to stuff the additional section of referrals and NS answers).
  [[nodiscard]] std::vector<ResourceRecord> glue_for(const Name& target) const;

  /// Sanity checks NSD performs at load: SOA present at apex, at least one
  /// apex NS, CNAME not mixed with other data at a name. Returns a list of
  /// human-readable problems (empty = valid).
  [[nodiscard]] std::vector<std::string> validate() const;

  [[nodiscard]] std::size_t rrset_count() const noexcept;
  [[nodiscard]] std::size_t record_count() const noexcept;

  /// Iteration over owner names in canonical order, for diagnostics.
  [[nodiscard]] std::vector<Name> owner_names() const;

  /// Every record in canonical owner order — the AXFR payload.
  [[nodiscard]] std::vector<ResourceRecord> all_records() const;

 private:
  struct NameCompare {
    bool operator()(const Name& a, const Name& b) const {
      return a.compare(b) < 0;
    }
  };

  void rebuild_index();

  Name origin_;
  RRClass rrclass_;
  std::map<Name, std::vector<RRset>, NameCompare> names_;
  // Exact-match fast path: owner names are interned once at add() time and
  // the per-query lookup is one hash probe + 32-bit id compare instead of
  // an O(log n) walk of label-by-label compares. names_ stays the source
  // of truth (and keeps canonical order for the ancestor/ENT walks).
  dns::NameTable owners_;
  std::unordered_map<std::uint32_t, std::vector<RRset>*> by_ref_;
};

}  // namespace recwild::authns
