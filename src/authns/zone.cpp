#include "authns/zone.hpp"

#include <stdexcept>

namespace recwild::authns {

Zone::Zone(Name origin, RRClass rrclass)
    : origin_(std::move(origin)), rrclass_(rrclass) {}

Zone::Zone(const Zone& o)
    : origin_(o.origin_), rrclass_(o.rrclass_), names_(o.names_) {
  rebuild_index();
}

Zone& Zone::operator=(const Zone& o) {
  if (this != &o) {
    origin_ = o.origin_;
    rrclass_ = o.rrclass_;
    names_ = o.names_;
    rebuild_index();
  }
  return *this;
}

void Zone::rebuild_index() {
  owners_ = dns::NameTable{};
  by_ref_.clear();
  for (auto& [name, sets] : names_) {
    by_ref_[owners_.intern(name).value] = &sets;
  }
}

Zone Zone::from_text(Name origin, std::string_view master_text,
                     dns::Ttl default_ttl) {
  dns::ZoneFileOptions opts;
  opts.origin = origin;
  opts.default_ttl = default_ttl;
  Zone zone{std::move(origin)};
  for (auto& rr : dns::parse_zone_text(master_text, opts)) {
    zone.add(std::move(rr));
  }
  return zone;
}

void Zone::add(ResourceRecord rr) {
  if (!rr.name.is_subdomain_of(origin_)) {
    throw std::invalid_argument{"Zone::add: " + rr.name.to_string() +
                                " is outside zone " + origin_.to_string()};
  }
  if (rr.rrclass != rrclass_) {
    throw std::invalid_argument{"Zone::add: class mismatch"};
  }
  auto& sets = names_[rr.name];
  by_ref_[owners_.intern(rr.name).value] = &sets;
  const RRType t = rr.type();
  for (auto& s : sets) {
    if (s.type == t) {
      s.ttl = std::min(s.ttl, rr.ttl);
      s.rdatas.push_back(std::move(rr.rdata));
      return;
    }
  }
  sets.push_back(RRset{rr.name, rr.rrclass, t, rr.ttl, {std::move(rr.rdata)}});
}

const RRset* Zone::find(const Name& name, RRType type) const {
  const std::vector<RRset>* sets = find_all(name);
  if (sets == nullptr) return nullptr;
  for (const auto& s : *sets) {
    if (s.type == type) return &s;
  }
  return nullptr;
}

const std::vector<RRset>* Zone::find_all(const Name& name) const {
  const auto ref = owners_.find(name);
  if (!ref) return nullptr;
  const auto it = by_ref_.find(ref->value);
  return it == by_ref_.end() ? nullptr : it->second;
}

bool Zone::name_exists(const Name& name) const {
  if (owners_.find(name)) return true;
  // Empty non-terminal: any stored name that descends from `name`.
  // names_ is in canonical order, so descendants sort directly after it.
  const auto it = names_.lower_bound(name);
  return it != names_.end() && it->first.is_subdomain_of(name);
}

std::optional<dns::SoaRdata> Zone::soa() const {
  const RRset* s = find(origin_, RRType::SOA);
  if (s == nullptr || s->rdatas.empty()) return std::nullopt;
  return std::get<dns::SoaRdata>(s->rdatas.front());
}

dns::Ttl Zone::negative_ttl() const {
  const auto s = soa();
  if (!s) return 300;
  const RRset* soa_set = find(origin_, RRType::SOA);
  return std::min<dns::Ttl>(s->minimum, soa_set ? soa_set->ttl : s->minimum);
}

const RRset* Zone::apex_ns() const { return find(origin_, RRType::NS); }

const RRset* Zone::find_delegation(const Name& name) const {
  if (!name.is_subdomain_of(origin_)) return nullptr;
  // Walk from just below the apex down towards `name`, looking for NS sets.
  // The shallowest delegation wins (everything below it is cut away).
  const std::size_t apex_labels = origin_.label_count();
  const std::size_t name_labels = name.label_count();
  for (std::size_t depth = apex_labels + 1; depth <= name_labels; ++depth) {
    // Candidate: the suffix of `name` with `depth` labels.
    std::vector<std::string> labels;
    labels.reserve(depth);
    for (std::size_t i = name_labels - depth; i < name_labels; ++i) {
      labels.push_back(name.label(i));
    }
    const Name candidate = Name::from_labels(std::move(labels));
    if (const RRset* ns = find(candidate, RRType::NS)) return ns;
  }
  return nullptr;
}

const RRset* Zone::find_wildcard(const Name& name, RRType type) const {
  if (!name.is_subdomain_of(origin_) || name == origin_) return nullptr;
  // Find the closest encloser: longest existing ancestor of `name`.
  Name encloser = name.parent();
  while (encloser.label_count() >= origin_.label_count()) {
    if (name_exists(encloser)) break;
    if (encloser.is_root()) return nullptr;
    encloser = encloser.parent();
  }
  const Name wildcard = encloser.prefixed("*");
  return find(wildcard, type);
}

std::vector<ResourceRecord> Zone::glue_for(const Name& target) const {
  std::vector<ResourceRecord> out;
  for (const RRType t : {RRType::A, RRType::AAAA}) {
    if (const RRset* s = find(target, t)) {
      auto records = s->to_records();
      out.insert(out.end(), records.begin(), records.end());
    }
  }
  return out;
}

std::vector<std::string> Zone::validate() const {
  std::vector<std::string> problems;
  if (!soa()) problems.push_back("missing SOA at apex");
  if (apex_ns() == nullptr || apex_ns()->empty()) {
    problems.push_back("missing NS at apex");
  }
  for (const auto& [name, sets] : names_) {
    bool has_cname = false;
    for (const auto& s : sets) {
      if (s.type == RRType::CNAME) has_cname = true;
    }
    if (has_cname && sets.size() > 1) {
      problems.push_back("CNAME and other data at " + name.to_string());
    }
    for (const auto& s : sets) {
      if (s.type == RRType::CNAME && s.size() > 1) {
        problems.push_back("multiple CNAMEs at " + name.to_string());
      }
    }
  }
  return problems;
}

std::size_t Zone::rrset_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [name, sets] : names_) n += sets.size();
  return n;
}

std::size_t Zone::record_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [name, sets] : names_) {
    for (const auto& s : sets) n += s.size();
  }
  return n;
}

std::vector<ResourceRecord> Zone::all_records() const {
  std::vector<ResourceRecord> out;
  out.reserve(record_count());
  for (const auto& [name, sets] : names_) {
    for (const auto& s : sets) {
      auto records = s.to_records();
      out.insert(out.end(), records.begin(), records.end());
    }
  }
  return out;
}

std::vector<Name> Zone::owner_names() const {
  std::vector<Name> out;
  out.reserve(names_.size());
  for (const auto& [name, sets] : names_) out.push_back(name);
  return out;
}

}  // namespace recwild::authns
