// Secondary (slave) zone maintenance — the other half of "engineering
// authoritative DNS servers": production deployments like .nl's run a
// hidden primary whose zone propagates to the public authoritatives via
// NOTIFY (RFC 1996), SOA serial refresh (RFC 1034 §4.3.5) and AXFR over
// TCP (RFC 5936).
//
// A SecondaryZone keeps one zone of an AuthServer in sync with a primary:
//   * on start, and whenever a NOTIFY for the zone arrives, it compares
//     the primary's SOA serial with its own;
//   * when behind (or empty), it transfers the zone with AXFR over the
//     stream transport and atomically swaps it into the server;
//   * it re-checks every `refresh` seconds (from the SOA, overridable)
//     and backs off by `retry` on failures.
#pragma once

#include <cstdint>
#include <functional>

#include "authns/server.hpp"

namespace recwild::authns {

/// Source port of all SOA-check and AXFR traffic a SecondaryZone sends.
/// Exported so the fault layer can starve zone transfers without touching
/// ordinary resolution traffic (fault::FaultKind::XferStarve).
inline constexpr net::Port kXfrClientPort = 10'055;

struct SecondaryConfig {
  /// Use these instead of the SOA refresh/retry timers when nonzero.
  net::Duration refresh_override = net::Duration::zero();
  net::Duration retry_override = net::Duration::zero();
  /// Timeout for one SOA check or AXFR attempt.
  net::Duration query_timeout = net::Duration::seconds(5);
};

class SecondaryZone {
 public:
  /// Manages `origin` on `server`, pulling from `primary`. The server must
  /// outlive the SecondaryZone. Claims the server's NOTIFY handler.
  SecondaryZone(net::Network& network, AuthServer& server, dns::Name origin,
                net::Endpoint primary, SecondaryConfig config,
                stats::Rng rng);
  ~SecondaryZone();
  SecondaryZone(const SecondaryZone&) = delete;
  SecondaryZone& operator=(const SecondaryZone&) = delete;

  /// Starts the refresh loop with an immediate SOA check.
  void start();
  void stop();

  [[nodiscard]] bool has_zone() const noexcept { return serial_ != 0; }
  /// Serial of the currently served copy (0 before the first transfer).
  [[nodiscard]] std::uint32_t serial() const noexcept { return serial_; }

  [[nodiscard]] std::uint64_t soa_checks() const noexcept {
    return soa_checks_;
  }
  [[nodiscard]] std::uint64_t transfers() const noexcept {
    return transfers_;
  }
  [[nodiscard]] std::uint64_t failures() const noexcept { return failures_; }

  /// Invoked after each successful transfer (for tests/metrics).
  std::function<void(std::uint32_t serial)> on_transferred;

 private:
  void schedule_refresh(net::Duration delay);
  void check_soa();
  void do_axfr();
  void on_datagram(const net::Datagram& dgram);
  void on_timeout();
  [[nodiscard]] net::Duration refresh_interval() const;
  [[nodiscard]] net::Duration retry_interval() const;

  net::Network& network_;
  AuthServer& server_;
  dns::Name origin_;
  net::Endpoint primary_;
  SecondaryConfig config_;
  stats::Rng rng_;
  net::Endpoint ep_;
  bool listening_ = false;

  enum class Pending : unsigned char { None, Soa, Axfr };
  Pending pending_ = Pending::None;
  std::uint16_t pending_txid_ = 0;
  net::EventId timeout_event_ = 0;
  net::EventId refresh_event_ = 0;

  std::uint32_t serial_ = 0;
  std::uint32_t last_seen_refresh_ = 0;
  std::uint32_t last_seen_retry_ = 0;
  std::uint64_t soa_checks_ = 0;
  std::uint64_t transfers_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace recwild::authns
