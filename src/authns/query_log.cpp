#include "authns/query_log.hpp"

#include <algorithm>

namespace recwild::authns {

void QueryLog::record(QueryLogEntry entry) {
  ++total_;
  ++per_client_[entry.client];
  if (retain_entries_) entries_.push_back(std::move(entry));
}

std::vector<QueryLogEntry> QueryLog::between(net::SimTime from,
                                             net::SimTime to) const {
  std::vector<QueryLogEntry> out;
  for (const auto& e : entries_) {
    if (e.at >= from && e.at < to) out.push_back(e);
  }
  return out;
}

void QueryLog::clear() {
  entries_.clear();
  per_client_.clear();
  total_ = 0;
}

}  // namespace recwild::authns
