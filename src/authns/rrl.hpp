// Response-rate limiting (RRL) — the authoritative-side defense against
// amplification and reflection floods, per the BIND/NSD design.
//
// Responses are accounted per (client address, response category) in fixed
// windows. Within a window the first `rate` responses go out unchanged;
// the rest are dropped, except that every `slip`-th limited response is
// replaced by a minimal truncated (TC=1) reply. A real client behind the
// spoofed address can still get service — TC makes it retry over TCP, and
// TCP responses are never rate-limited (the transport proves the source) —
// while an attacker reflecting off us gets at most a tiny TC packet per
// `slip` attempts instead of a full amplified answer.
//
// Transport-independent like the Responder: the simulated AuthServer keys
// buckets by sim-time and net::IpAddress bits, the kernel-socket netio
// server by steady-clock micros and sockaddr bits. Same engine, same
// decisions — which is what lets the transport-equivalence tests cover the
// defense too.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "authns/query_engine.hpp"
#include "dnscore/message.hpp"
#include "net/time.hpp"

namespace recwild::authns {

struct RrlConfig {
  /// Responses per window per (client, category). 0 disables RRL entirely.
  int rate = 0;
  /// Accounting window length.
  net::Duration window = net::Duration::seconds(1);
  /// Every slip-th limited response becomes a TC=1 slip instead of a drop;
  /// 0 means never slip (pure drop).
  int slip = 2;
  /// Bucket-table size that triggers a sweep of expired buckets (bounds
  /// memory under spoofed-source floods).
  std::size_t max_table = 65'536;
};

/// Response categories accounted separately, BIND-style: an attacker
/// burning the referral budget must not starve legitimate answers.
enum class RrlCategory : std::uint8_t {
  Answer = 0,
  Referral = 1,
  NxDomain = 2,
  Error = 3,
};

/// Maps a response's (rcode, lookup disposition) to its RRL category.
[[nodiscard]] RrlCategory rrl_category(dns::Rcode rcode,
                                       Disposition disposition) noexcept;

/// What to do with one response.
enum class RrlAction : std::uint8_t { Send, Drop, Slip };

class Rrl {
 public:
  Rrl() = default;
  explicit Rrl(RrlConfig config) : config_(config) {}

  void set_config(const RrlConfig& config) {
    config_ = config;
    buckets_.clear();
  }
  [[nodiscard]] const RrlConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool enabled() const noexcept { return config_.rate > 0; }

  /// Accounts one would-be UDP response and decides its fate. `client_bits`
  /// is the client address as a deterministic integer (net::IpAddress::
  /// bits() or the raw sockaddr s_addr) — never a std::hash, whose value is
  /// implementation-defined and would break cross-platform determinism.
  [[nodiscard]] RrlAction check(std::uint32_t client_bits,
                                RrlCategory category, net::SimTime now);

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }

 private:
  struct Bucket {
    std::int64_t window_start_us = 0;
    int sent = 0;
    std::uint64_t limited = 0;
  };

  void sweep(std::int64_t now_us);

  RrlConfig config_{};
  std::unordered_map<std::uint64_t, Bucket> buckets_;
};

/// The slip response: a minimal TC=1 echo of the query. The client keeps
/// nothing but the instruction to retry over TCP.
[[nodiscard]] dns::Message make_slip_reply(const dns::Message& query);

}  // namespace recwild::authns
