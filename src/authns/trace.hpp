// Query-trace serialization — the repo's stand-in for DITL pcaps and the
// ENTRADA warehouse (paper §3.2): authoritative query logs can be written
// to a compact text format, merged across servers/sites, and read back for
// offline analysis, so experiment runs can be archived and re-analyzed
// without re-simulating.
//
// Format (one record per line, tab-separated):
//   <t_us>\t<client>\t<server>\t<qname>\t<qtype>\t<rcode>
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "authns/query_log.hpp"

namespace recwild::authns {

/// One trace record: a QueryLogEntry plus which server saw it.
struct TraceRecord {
  net::SimTime at;
  net::IpAddress client;
  std::string server;  // service/site identity
  dns::Name qname;
  dns::RRType qtype = dns::RRType::A;
  dns::Rcode rcode = dns::Rcode::NoError;

  bool operator==(const TraceRecord&) const = default;
};

/// Appends a server's log to `out` under the given server identity.
void write_trace(std::ostream& out, const QueryLog& log,
                 const std::string& server_identity);

/// Parses a trace; throws std::runtime_error on malformed lines.
std::vector<TraceRecord> read_trace(std::istream& in);

/// Merges (time-sorts) multiple traces into one.
std::vector<TraceRecord> merge_traces(
    std::vector<std::vector<TraceRecord>> traces);

/// Per-client query counts per server — the Figure-7 aggregation, but from
/// an offline trace instead of live logs.
struct TraceStats {
  /// server identity -> total queries
  std::vector<std::pair<std::string, std::uint64_t>> per_server;
  /// client -> total queries
  std::vector<std::pair<net::IpAddress, std::uint64_t>> per_client;
  std::uint64_t total = 0;
};
TraceStats summarize_trace(const std::vector<TraceRecord>& records);

}  // namespace recwild::authns
