// Authoritative query resolution (RFC 1034 §4.3.2) over a Zone:
// exact answers, in-zone CNAME chasing, wildcard synthesis, delegation
// referrals with glue, NODATA and NXDOMAIN with the SOA in authority.
#pragma once

#include "authns/zone.hpp"
#include "dnscore/message.hpp"

namespace recwild::authns {

/// Outcome categories, useful for stats and tests. The wire response is
/// fully described by (rcode, aa, sections); `disposition` names the branch
/// the engine took.
enum class Disposition : unsigned char {
  Answer,         // direct or CNAME-chained answer
  Wildcard,       // answer synthesized from a wildcard
  Referral,       // delegation NS in authority (aa = false)
  NoData,         // name exists, type doesn't (NOERROR + SOA)
  NxDomain,       // name does not exist (NXDOMAIN + SOA)
  NotAuth,        // question outside all served zones (REFUSED)
};

struct LookupResult {
  dns::Rcode rcode = dns::Rcode::NoError;
  bool authoritative = false;
  Disposition disposition = Disposition::NotAuth;
  std::vector<dns::ResourceRecord> answers;
  std::vector<dns::ResourceRecord> authorities;
  std::vector<dns::ResourceRecord> additionals;
};

class QueryEngine {
 public:
  explicit QueryEngine(const Zone& zone) : zone_(zone) {}

  /// Resolves one question against the zone.
  [[nodiscard]] LookupResult lookup(const dns::Question& q) const;

 private:
  void answer_from_rrset(LookupResult& out, const dns::RRset& set) const;
  void add_referral(LookupResult& out, const dns::RRset& delegation) const;
  void add_negative(LookupResult& out) const;

  const Zone& zone_;
};

}  // namespace recwild::authns
