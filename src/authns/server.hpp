// Authoritative DNS server bound to a simulated network node — the stand-in
// for the paper's NSD 4.1.7 instances on EC2.
//
// One AuthServer serves one or more zones on one (address, port) binding.
// Binding several servers (sites) to the same address forms an anycast
// service; each site then answers the catchment the network routes to it.
//
// Features exercised by the experiments:
//  * RFC 1034 answers via QueryEngine (TXT lookups for the test domain);
//  * per-site answers for the same name — the paper identifies which
//    authoritative answered by serving a *different* TXT string at each;
//  * CHAOS-class identity queries (hostname.bind / id.server TXT CH);
//  * EDNS0 echo and UDP truncation (TC bit) past the advertised size;
//  * failure injection (server down / unresponsive) and processing delay;
//  * a QueryLog, the analogue of the paper's server-side captures.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "authns/query_log.hpp"
#include "authns/responder.hpp"
#include "authns/rrl.hpp"
#include "authns/zone.hpp"
#include "dnscore/codec.hpp"
#include "net/network.hpp"

namespace recwild::authns {

struct AuthServerConfig {
  /// Server identity returned for CH TXT hostname.bind / id.server.
  std::string identity;
  /// Processing time added to every response (NSD is fast; default 200us).
  net::Duration processing_delay = net::Duration::micros(200);
  /// Maximum UDP response size when the query carries no EDNS0 (RFC 1035).
  std::size_t plain_udp_limit = 512;
};

/// How an authoritative misbehaves under an active fault (src/fault).
/// Evaluated pull-style per datagram by the provider installed via
/// AuthServer::set_fault_provider — no scheduled transition events, which
/// is what keeps sharded replica worlds merge-identical.
enum class AuthFailMode : unsigned char {
  None,          ///< Healthy.
  Unresponsive,  ///< Receives and logs, never answers (crashed process).
  Refused,       ///< Answers every query with rcode REFUSED (lame server).
  Slow,          ///< Answers after extra_delay on top of processing_delay.
};

struct AuthFaultState {
  AuthFailMode mode = AuthFailMode::None;
  /// Additional processing delay while mode == Slow.
  net::Duration extra_delay = net::Duration::zero();
};

/// Returns the server's fault state at `now`. Must be deterministic in
/// sim time alone (same contract as net::PacketFaultHook).
using AuthFaultProvider = std::function<AuthFaultState(net::SimTime)>;

class AuthServer {
 public:
  /// Creates a server on `node`, listening on {address, port}.
  /// Registration with the network happens in start().
  AuthServer(net::Network& network, net::NodeId node, net::Endpoint endpoint,
             AuthServerConfig config);

  ~AuthServer();
  AuthServer(const AuthServer&) = delete;
  AuthServer& operator=(const AuthServer&) = delete;

  /// Adds a zone. The server answers authoritatively for it.
  void add_zone(Zone zone);
  /// Shares a pre-built immutable zone (no copy); see Responder::add_zone.
  void add_zone(std::shared_ptr<const Zone> zone);

  /// Replaces the zone with the same origin (a reload / transferred copy);
  /// adds it if absent. Then notifies registered secondaries.
  void replace_zone(Zone zone);

  /// The served zone with this origin, or nullptr.
  [[nodiscard]] const Zone* zone_for(const dns::Name& origin) const;

  /// Registers a secondary to receive NOTIFY (RFC 1996) when a zone with
  /// `origin` is replaced.
  void add_notify_target(dns::Name origin, net::Endpoint secondary);

  /// Hook invoked when a NOTIFY arrives: (zone, primary address). Used by
  /// SecondaryZone to trigger an immediate refresh.
  using NotifyHandler =
      std::function<void(const dns::Name&, net::IpAddress)>;
  void set_notify_handler(NotifyHandler handler) {
    notify_handler_ = std::move(handler);
  }

  /// Begins listening. Idempotent.
  void start();
  /// Stops listening (packets to this site are then unroutable).
  void stop();

  /// Additionally listens on `ep` (e.g. the service's IPv6-plane address).
  /// Replies are sourced from whichever endpoint received the query.
  void listen_also(net::Endpoint ep);

  /// Failure injection: while down, queries are received but ignored
  /// (timeouts at the resolver), as with a crashed nameserver process.
  void set_down(bool down) noexcept { down_ = down; }
  [[nodiscard]] bool is_down() const noexcept { return down_; }

  /// Installs (or, with nullptr, removes) the fault provider consulted on
  /// every query. Independent of set_down; whichever says "don't answer"
  /// wins. The caller keeps the provider's captures alive while installed.
  void set_fault_provider(AuthFaultProvider provider) {
    fault_provider_ = std::move(provider);
  }

  /// Arms (or, with rate 0, disarms) response-rate limiting on the UDP
  /// answer path. Registers the rrl.* counters eagerly — callers arm RRL
  /// at world-build time, so every shard replica registers identically.
  void set_rrl(const RrlConfig& config);
  [[nodiscard]] const Rrl& rrl() const noexcept { return rrl_; }

  /// Caps the NS fanout of referrals this server emits (0 = unlimited).
  /// Registers authns.referral.capped eagerly (same build-time contract).
  void set_referral_fanout_cap(int cap);

  /// Marks this server as an attack victim: every received query is also
  /// counted under attack.victim.queries, the numerator of the measured
  /// amplification factor. Registered eagerly at marking time.
  void set_victim(bool victim);
  [[nodiscard]] bool is_victim() const noexcept { return victim_; }

  [[nodiscard]] const net::Endpoint& endpoint() const noexcept {
    return endpoint_;
  }
  [[nodiscard]] net::NodeId node() const noexcept { return node_; }
  [[nodiscard]] const std::string& identity() const noexcept {
    return config_.identity;
  }

  /// The transport-independent answer engine this server wraps. The
  /// kernel-socket front-end (src/netio) drives the same class, which is
  /// what the transport-equivalence test pins.
  [[nodiscard]] const Responder& responder() const noexcept {
    return responder_;
  }

  [[nodiscard]] QueryLog& log() noexcept { return log_; }
  [[nodiscard]] const QueryLog& log() const noexcept { return log_; }

  [[nodiscard]] std::uint64_t queries_received() const noexcept {
    return queries_received_;
  }
  [[nodiscard]] std::uint64_t responses_sent() const noexcept {
    return responses_sent_;
  }

  /// Builds the response for `query` (exposed for unit tests; the network
  /// path calls this internally). Responses to stream (TCP) queries are
  /// never truncated. When `wire_out` is non-null and the UDP size check
  /// already encoded the response, the encoded bytes are handed back so the
  /// caller does not encode a second time (empty = caller must encode).
  [[nodiscard]] dns::Message answer(const dns::Message& query,
                                    bool via_stream = false,
                                    net::WireBuffer* wire_out = nullptr) const;

 private:
  void on_datagram(const net::Datagram& dgram, net::NodeId at_node);
  void send_notifies(const dns::Name& origin);

  net::Network& network_;
  net::NodeId node_;
  net::Endpoint endpoint_;
  std::vector<net::Endpoint> extra_endpoints_;
  AuthServerConfig config_;
  Responder responder_;
  std::vector<std::pair<dns::Name, net::Endpoint>> notify_targets_;
  NotifyHandler notify_handler_;
  AuthFaultProvider fault_provider_;
  QueryLog log_;
  Rrl rrl_;
  bool listening_ = false;
  bool down_ = false;
  bool victim_ = false;
  std::uint64_t queries_received_ = 0;
  std::uint64_t responses_sent_ = 0;
  // Observability: cached handles into the simulation's registry/trace.
  obs::DecisionTrace* trace_ = nullptr;
  obs::Counter* obs_queries_ = nullptr;
  obs::Counter* obs_responses_ = nullptr;
  obs::Counter* obs_truncated_ = nullptr;
  obs::Counter* obs_formerr_ = nullptr;
  obs::Counter* obs_fault_refused_ = nullptr;
  // Defense/attack counters, registered eagerly by their set_* calls (which
  // run at world-build time) so shard replicas register identically, and
  // absent entirely from worlds that never arm the features.
  obs::Counter* obs_rrl_dropped_ = nullptr;
  obs::Counter* obs_rrl_slipped_ = nullptr;
  obs::Counter* obs_referral_capped_ = nullptr;
  obs::Counter* obs_victim_queries_ = nullptr;
};

}  // namespace recwild::authns
