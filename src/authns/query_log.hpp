// Server-side query log — the analogue of the packet captures the paper
// takes at its NSD instances (and of DITL/ENTRADA traces). Every received
// query is appended as a compact entry; the experiment harness aggregates
// per-client counts and shares from these logs.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dnscore/name.hpp"
#include "dnscore/types.hpp"
#include "net/address.hpp"
#include "net/time.hpp"

namespace recwild::authns {

struct QueryLogEntry {
  net::SimTime at;
  net::IpAddress client;
  dns::Name qname;
  dns::RRType qtype = dns::RRType::A;
  dns::Rcode rcode = dns::Rcode::NoError;
};

class QueryLog {
 public:
  void record(QueryLogEntry entry);

  [[nodiscard]] const std::vector<QueryLogEntry>& entries() const noexcept {
    return entries_;
  }
  /// Queries recorded — counted even when entry retention is disabled.
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Queries per client address (the paper's per-recursive aggregation).
  [[nodiscard]] const std::unordered_map<net::IpAddress, std::uint64_t>&
  per_client() const noexcept {
    return per_client_;
  }

  /// Entries within [from, to).
  [[nodiscard]] std::vector<QueryLogEntry> between(net::SimTime from,
                                                   net::SimTime to) const;

  void clear();

  /// Disables entry retention (counters stay active) for large production
  /// runs where only aggregates matter.
  void set_retain_entries(bool retain) noexcept { retain_entries_ = retain; }

 private:
  std::vector<QueryLogEntry> entries_;
  std::unordered_map<net::IpAddress, std::uint64_t> per_client_;
  std::uint64_t total_ = 0;
  bool retain_entries_ = true;
};

}  // namespace recwild::authns
