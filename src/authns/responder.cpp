#include "authns/responder.hpp"

#include <algorithm>

namespace recwild::authns {

bool Responder::replace_zone(Zone zone) {
  const dns::Name origin = zone.origin();
  for (auto& z : zones_) {
    if (z->origin() == origin) {
      z = std::make_shared<const Zone>(std::move(zone));
      return true;
    }
  }
  zones_.push_back(std::make_shared<const Zone>(std::move(zone)));
  return false;
}

const Zone* Responder::zone_for(const dns::Name& origin) const {
  for (const auto& z : zones_) {
    if (z->origin() == origin) return z.get();
  }
  return nullptr;
}

dns::Message Responder::answer_chaos(const dns::Message& query) const {
  // NSD-style identity: CH TXT hostname.bind and id.server return the
  // configured identity string (RFC 4892 / RFC 8914 practice).
  dns::Message resp = dns::Message::make_response(query);
  const auto& q = query.question();
  static const dns::Name kHostnameBind = dns::Name::parse("hostname.bind");
  static const dns::Name kIdServer = dns::Name::parse("id.server");
  if (q.qtype == dns::RRType::TXT &&
      (q.qname == kHostnameBind || q.qname == kIdServer)) {
    resp.header.aa = true;
    resp.answers.push_back(dns::ResourceRecord{
        q.qname, dns::RRClass::CH, 0, dns::TxtRdata{{config_.identity}}});
  } else {
    resp.header.rcode = dns::Rcode::Refused;
  }
  return resp;
}

dns::Message Responder::answer_axfr(const dns::Message& query,
                                    bool via_stream) const {
  dns::Message resp = dns::Message::make_response(query);
  // AXFR requires the stream transport (RFC 5936 §4.2): over UDP the
  // server replies with TC so the client retries over TCP.
  if (!via_stream) {
    resp.header.tc = true;
    return resp;
  }
  const Zone* zone = zone_for(query.question().qname);
  if (zone == nullptr || !zone->soa()) {
    resp.header.rcode = dns::Rcode::Refused;
    return resp;
  }
  resp.header.aa = true;
  // SOA first and last, the full zone in between.
  const auto all = zone->all_records();
  const auto soa_it =
      std::find_if(all.begin(), all.end(), [](const dns::ResourceRecord& r) {
        return r.type() == dns::RRType::SOA;
      });
  resp.answers.push_back(*soa_it);
  for (const auto& rr : all) {
    if (rr.type() != dns::RRType::SOA) resp.answers.push_back(rr);
  }
  resp.answers.push_back(*soa_it);
  return resp;
}

std::size_t Responder::udp_limit(const dns::Message& query) const {
  if (!query.edns) return config_.plain_udp_limit;
  // RFC 6891: the advertised size is attacker-controlled input. Below 512
  // it is nonsense (the RFC says treat as 512); above our own ceiling it
  // does not oblige us to risk fragmentation.
  return std::clamp<std::size_t>(query.edns->udp_payload_size, kMinUdpPayload,
                                 kMaxUdpPayload);
}

dns::Message Responder::answer(const dns::Message& query, bool via_stream,
                               net::WireBuffer* wire_out,
                               AnswerInfo* info) const {
  if (query.questions.empty()) {
    dns::Message resp;
    resp.header = query.header;
    resp.header.qr = true;
    resp.header.rcode = dns::Rcode::FormErr;
    return resp;
  }
  const auto& q = query.question();
  if (q.qclass == dns::RRClass::CH) {
    if (info != nullptr) info->disposition = Disposition::Answer;
    return answer_chaos(query);
  }
  if (q.qtype == dns::RRType::AXFR) {
    if (info != nullptr) info->disposition = Disposition::Answer;
    return answer_axfr(query, via_stream);
  }

  // Find the most specific zone containing the qname.
  const Zone* best = nullptr;
  for (const auto& zp : zones_) {
    const Zone& z = *zp;
    if (!q.qname.is_subdomain_of(z.origin())) continue;
    if (best == nullptr ||
        z.origin().label_count() > best->origin().label_count()) {
      best = &z;
    }
  }
  dns::Message resp = dns::Message::make_response(query);
  if (query.edns) {
    resp.edns = dns::EdnsInfo{};  // echo EDNS support, our own buffer size
    resp.edns->udp_payload_size = kMaxUdpPayload;
  }
  if (best == nullptr) {
    resp.header.rcode = dns::Rcode::Refused;
    return resp;
  }
  const QueryEngine engine{*best};
  LookupResult result = engine.lookup(q);
  resp.header.rcode = result.rcode;
  resp.header.aa = result.authoritative;
  resp.answers = std::move(result.answers);
  resp.authorities = std::move(result.authorities);
  resp.additionals = std::move(result.additionals);
  if (info != nullptr) info->disposition = result.disposition;

  // Referral-fanout cap: keep the first `max_referral_fanout` NS records
  // (zone order is canonical, so the kept set is deterministic) and only
  // the glue that still has a kept NS naming it. An NXNS-style delegation
  // listing dozens of victim servers leaves here listing at most the cap.
  if (config_.max_referral_fanout > 0 &&
      result.disposition == Disposition::Referral &&
      resp.authorities.size() >
          static_cast<std::size_t>(config_.max_referral_fanout)) {
    resp.authorities.resize(
        static_cast<std::size_t>(config_.max_referral_fanout));
    std::erase_if(resp.additionals, [&](const dns::ResourceRecord& glue) {
      for (const auto& ns : resp.authorities) {
        const auto* rdata = std::get_if<dns::NsRdata>(&ns.rdata);
        if (rdata != nullptr && rdata->nsdname == glue.name) return false;
      }
      return true;
    });
    if (info != nullptr) info->referral_capped = true;
  }

  // UDP size handling: if the encoded response exceeds what the client
  // can take, truncate sections and set TC; the client then retries over
  // TCP, where no limit applies. The size check IS the final encode — the
  // bytes go out through wire_out instead of being thrown away and
  // produced a second time by the caller.
  if (!via_stream) {
    const std::size_t limit = udp_limit(query);
    net::WireBuffer wire = dns::encode_message(resp);
    if (wire.size() > limit) {
      resp.header.tc = true;
      resp.answers.clear();
      resp.authorities.clear();
      resp.additionals.clear();
      wire = dns::encode_message(resp);
    }
    if (wire_out != nullptr) *wire_out = std::move(wire);
  }
  return resp;
}

std::optional<net::WireBuffer> Responder::formerr_reply(
    std::span<const std::uint8_t> wire) {
  if (wire.size() < 12) return std::nullopt;  // not even a header
  const std::uint16_t flags =
      static_cast<std::uint16_t>((wire[2] << 8) | wire[3]);
  if ((flags & 0x8000) != 0) return std::nullopt;  // a response: never reply
  dns::Message resp;
  resp.header.id = static_cast<std::uint16_t>((wire[0] << 8) | wire[1]);
  resp.header.opcode = static_cast<dns::Opcode>((flags >> 11) & 0xf);
  resp.header.qr = true;
  resp.header.rcode = dns::Rcode::FormErr;
  // No question section: the bytes after the header did not parse, so
  // echoing them would mean trusting exactly the input that just failed.
  return dns::encode_message(resp);
}

}  // namespace recwild::authns
