#include "authns/rrl.hpp"

namespace recwild::authns {

RrlCategory rrl_category(dns::Rcode rcode, Disposition disposition) noexcept {
  if (rcode == dns::Rcode::NxDomain) return RrlCategory::NxDomain;
  if (rcode != dns::Rcode::NoError) return RrlCategory::Error;
  if (disposition == Disposition::Referral) return RrlCategory::Referral;
  return RrlCategory::Answer;
}

RrlAction Rrl::check(std::uint32_t client_bits, RrlCategory category,
                     net::SimTime now) {
  if (!enabled()) return RrlAction::Send;
  const std::int64_t now_us = now.count_micros();
  const std::uint64_t key = (static_cast<std::uint64_t>(client_bits) << 2) |
                            static_cast<std::uint64_t>(category);
  if (buckets_.size() >= config_.max_table) sweep(now_us);
  auto [it, inserted] = buckets_.try_emplace(key);
  Bucket& b = it->second;
  const std::int64_t window_us = config_.window.count_micros();
  if (inserted || now_us - b.window_start_us >= window_us) {
    b.window_start_us = now_us;
    b.sent = 0;
    // `limited` deliberately survives the window reset: the slip cadence
    // is per-client over the flood's lifetime, not per-window.
  }
  if (b.sent < config_.rate) {
    ++b.sent;
    return RrlAction::Send;
  }
  ++b.limited;
  if (config_.slip > 0 &&
      b.limited % static_cast<std::uint64_t>(config_.slip) == 0) {
    return RrlAction::Slip;
  }
  return RrlAction::Drop;
}

void Rrl::sweep(std::int64_t now_us) {
  const std::int64_t keep_us = 2 * config_.window.count_micros();
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    if (now_us - it->second.window_start_us >= keep_us) {
      it = buckets_.erase(it);
    } else {
      ++it;
    }
  }
}

dns::Message make_slip_reply(const dns::Message& query) {
  dns::Message resp = dns::Message::make_response(query);
  resp.header.tc = true;
  return resp;
}

}  // namespace recwild::authns
