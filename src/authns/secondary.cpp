#include "authns/secondary.hpp"

namespace recwild::authns {

SecondaryZone::SecondaryZone(net::Network& network, AuthServer& server,
                             dns::Name origin, net::Endpoint primary,
                             SecondaryConfig config, stats::Rng rng)
    : network_(network),
      server_(server),
      origin_(std::move(origin)),
      primary_(primary),
      config_(config),
      rng_(rng),
      ep_{server.endpoint().addr, kXfrClientPort} {}

SecondaryZone::~SecondaryZone() { stop(); }

void SecondaryZone::start() {
  if (listening_) return;
  network_.listen(server_.node(), ep_,
                  [this](const net::Datagram& d, net::NodeId) {
                    on_datagram(d);
                  });
  server_.set_notify_handler(
      [this](const dns::Name& zone, net::IpAddress from) {
        // RFC 1996 §4: check the serial on NOTIFY for our zone. (A strict
        // implementation would also verify `from` is a configured
        // primary.)
        (void)from;
        if (listening_ && zone == origin_ && pending_ == Pending::None) {
          check_soa();
        }
      });
  listening_ = true;
  check_soa();
}

void SecondaryZone::stop() {
  // Cancel unconditionally, not only when listening: a NOTIFY handled
  // after a previous stop() could have re-armed these events, and the
  // destructor must never leave a scheduled callback into a destroyed
  // object (the sim would fire it into freed memory).
  network_.sim().cancel(timeout_event_);
  network_.sim().cancel(refresh_event_);
  timeout_event_ = 0;
  refresh_event_ = 0;
  pending_ = Pending::None;
  // Release the server's NOTIFY handler: it captures `this`.
  server_.set_notify_handler(nullptr);
  if (!listening_) return;
  network_.unlisten(server_.node(), ep_);
  listening_ = false;
}

net::Duration SecondaryZone::refresh_interval() const {
  if (config_.refresh_override > net::Duration::zero()) {
    return config_.refresh_override;
  }
  if (last_seen_refresh_ > 0) {
    return net::Duration::seconds(last_seen_refresh_);
  }
  return net::Duration::minutes(10);
}

net::Duration SecondaryZone::retry_interval() const {
  if (config_.retry_override > net::Duration::zero()) {
    return config_.retry_override;
  }
  if (last_seen_retry_ > 0) return net::Duration::seconds(last_seen_retry_);
  return net::Duration::minutes(1);
}

void SecondaryZone::schedule_refresh(net::Duration delay) {
  network_.sim().cancel(refresh_event_);
  refresh_event_ = network_.sim().after(delay, [this] {
    if (pending_ == Pending::None) check_soa();
  });
}

void SecondaryZone::check_soa() {
  ++soa_checks_;
  pending_ = Pending::Soa;
  pending_txid_ = static_cast<std::uint16_t>(rng_.next());
  dns::Message query =
      dns::Message::make_query(pending_txid_, origin_, dns::RRType::SOA);
  network_.send(server_.node(), ep_, primary_, dns::encode_message(query));
  network_.sim().cancel(timeout_event_);
  timeout_event_ =
      network_.sim().after(config_.query_timeout, [this] { on_timeout(); });
}

void SecondaryZone::do_axfr() {
  pending_ = Pending::Axfr;
  pending_txid_ = static_cast<std::uint16_t>(rng_.next());
  dns::Message query =
      dns::Message::make_query(pending_txid_, origin_, dns::RRType::AXFR);
  network_.send_stream(server_.node(), ep_, primary_,
                       dns::encode_message(query));
  network_.sim().cancel(timeout_event_);
  timeout_event_ =
      network_.sim().after(config_.query_timeout, [this] { on_timeout(); });
}

void SecondaryZone::on_timeout() {
  pending_ = Pending::None;
  ++failures_;
  schedule_refresh(retry_interval());
}

void SecondaryZone::on_datagram(const net::Datagram& dgram) {
  dns::Message resp;
  try {
    resp = dns::decode_message(dgram.payload);
  } catch (const dns::WireError&) {
    return;
  }
  if (!resp.header.qr || resp.header.id != pending_txid_ ||
      pending_ == Pending::None) {
    return;
  }
  network_.sim().cancel(timeout_event_);
  const Pending what = pending_;
  pending_ = Pending::None;

  if (resp.header.rcode != dns::Rcode::NoError) {
    ++failures_;
    schedule_refresh(retry_interval());
    return;
  }

  if (what == Pending::Soa) {
    const dns::SoaRdata* soa = nullptr;
    for (const auto& rr : resp.answers) {
      if (rr.type() == dns::RRType::SOA) {
        soa = &std::get<dns::SoaRdata>(rr.rdata);
      }
    }
    if (soa == nullptr) {
      ++failures_;
      schedule_refresh(retry_interval());
      return;
    }
    last_seen_refresh_ = soa->refresh;
    last_seen_retry_ = soa->retry;
    // Serial arithmetic (RFC 1982): newer when the difference, as a
    // signed 32-bit value, is positive.
    const auto newer =
        static_cast<std::int32_t>(soa->serial - serial_) > 0;
    if (serial_ == 0 || newer) {
      do_axfr();
    } else {
      schedule_refresh(refresh_interval());
    }
    return;
  }

  // AXFR response: SOA ... SOA. Rebuild the zone.
  if (resp.answers.size() < 2 ||
      resp.answers.front().type() != dns::RRType::SOA ||
      resp.answers.back().type() != dns::RRType::SOA) {
    ++failures_;
    schedule_refresh(retry_interval());
    return;
  }
  Zone zone{origin_};
  bool ok = true;
  // Skip the trailing SOA; keep the leading one.
  for (std::size_t i = 0; i + 1 < resp.answers.size(); ++i) {
    try {
      zone.add(resp.answers[i]);
    } catch (const std::invalid_argument&) {
      ok = false;
      break;
    }
  }
  const auto soa = zone.soa();
  if (!ok || !soa) {
    ++failures_;
    schedule_refresh(retry_interval());
    return;
  }
  serial_ = soa->serial;
  ++transfers_;
  server_.replace_zone(std::move(zone));
  if (on_transferred) on_transferred(serial_);
  schedule_refresh(refresh_interval());
}

}  // namespace recwild::authns
