#include "authns/query_engine.hpp"

namespace recwild::authns {

namespace {

constexpr int kMaxCnameChain = 8;  // defensive bound on in-zone loops

}  // namespace

void QueryEngine::answer_from_rrset(LookupResult& out,
                                    const dns::RRset& set) const {
  auto records = set.to_records();
  out.answers.insert(out.answers.end(), records.begin(), records.end());
}

void QueryEngine::add_referral(LookupResult& out,
                               const dns::RRset& delegation) const {
  out.disposition = Disposition::Referral;
  out.authoritative = false;
  auto records = delegation.to_records();
  out.authorities.insert(out.authorities.end(), records.begin(),
                         records.end());
  for (const auto& rd : delegation.rdatas) {
    const auto& ns = std::get<dns::NsRdata>(rd);
    auto glue = zone_.glue_for(ns.nsdname);
    out.additionals.insert(out.additionals.end(), glue.begin(), glue.end());
  }
}

void QueryEngine::add_negative(LookupResult& out) const {
  const auto soa_set = zone_.find(zone_.origin(), dns::RRType::SOA);
  if (soa_set != nullptr) {
    // Negative answers carry the SOA with the negative TTL (RFC 2308 §3).
    for (auto rr : soa_set->to_records()) {
      rr.ttl = zone_.negative_ttl();
      out.authorities.push_back(std::move(rr));
    }
  }
}

LookupResult QueryEngine::lookup(const dns::Question& q) const {
  LookupResult out;
  if (q.qclass != zone_.rrclass() && q.qclass != dns::RRClass::ANY) {
    out.rcode = dns::Rcode::Refused;
    out.disposition = Disposition::NotAuth;
    return out;
  }
  if (!q.qname.is_subdomain_of(zone_.origin())) {
    out.rcode = dns::Rcode::Refused;
    out.disposition = Disposition::NotAuth;
    return out;
  }

  out.authoritative = true;
  dns::Name qname = q.qname;

  for (int chain = 0; chain <= kMaxCnameChain; ++chain) {
    // 1. Delegation cut between apex and qname? Refer (unless the qname is
    //    the delegation point itself and asks for NS — still a referral per
    //    RFC 1034, since we are not authoritative below the cut).
    if (const dns::RRset* cut = zone_.find_delegation(qname)) {
      add_referral(out, *cut);
      return out;
    }

    const auto* sets = zone_.find_all(qname);
    if (sets != nullptr) {
      // 2a. CNAME at the name (and question isn't CNAME itself): follow.
      const dns::RRset* cname = nullptr;
      for (const auto& s : *sets) {
        if (s.type == dns::RRType::CNAME) cname = &s;
      }
      if (cname != nullptr && q.qtype != dns::RRType::CNAME &&
          q.qtype != dns::RRType::ANY) {
        answer_from_rrset(out, *cname);
        const auto& target =
            std::get<dns::CnameRdata>(cname->rdatas.front()).target;
        if (target.is_subdomain_of(zone_.origin())) {
          qname = target;
          continue;  // chase in-zone
        }
        // Out-of-zone target: answer ends with the CNAME.
        out.disposition = Disposition::Answer;
        return out;
      }
      // 2b. Exact type match (or ANY: everything at the name).
      if (q.qtype == dns::RRType::ANY) {
        bool any = false;
        for (const auto& s : *sets) {
          answer_from_rrset(out, s);
          any = true;
        }
        if (any) {
          out.disposition = Disposition::Answer;
          return out;
        }
      } else {
        for (const auto& s : *sets) {
          if (s.type == q.qtype) {
            answer_from_rrset(out, s);
            out.disposition = Disposition::Answer;
            // NS answers at the apex get glue in additional.
            if (q.qtype == dns::RRType::NS) {
              for (const auto& rd : s.rdatas) {
                auto glue =
                    zone_.glue_for(std::get<dns::NsRdata>(rd).nsdname);
                out.additionals.insert(out.additionals.end(), glue.begin(),
                                       glue.end());
              }
            }
            return out;
          }
        }
      }
      // 2c. Name exists, type doesn't: NODATA.
      out.disposition = Disposition::NoData;
      add_negative(out);
      return out;
    }

    // 3. Empty non-terminal: exists implicitly -> NODATA.
    if (zone_.name_exists(qname)) {
      out.disposition = Disposition::NoData;
      add_negative(out);
      return out;
    }

    // 4. Wildcard synthesis.
    if (const dns::RRset* wc = zone_.find_wildcard(qname, q.qtype)) {
      for (auto rr : wc->to_records()) {
        rr.name = qname;  // synthesize at the query name
        out.answers.push_back(std::move(rr));
      }
      out.disposition = Disposition::Wildcard;
      return out;
    }
    // Wildcard CNAME?
    if (const dns::RRset* wc_cname =
            zone_.find_wildcard(qname, dns::RRType::CNAME);
        wc_cname != nullptr && q.qtype != dns::RRType::CNAME) {
      for (auto rr : wc_cname->to_records()) {
        rr.name = qname;
        out.answers.push_back(std::move(rr));
      }
      const auto& target =
          std::get<dns::CnameRdata>(wc_cname->rdatas.front()).target;
      if (target.is_subdomain_of(zone_.origin())) {
        qname = target;
        continue;
      }
      out.disposition = Disposition::Wildcard;
      return out;
    }

    // 5. NXDOMAIN. A wildcard at the closest encloser for a *different*
    //    type means the name "exists" for NODATA purposes (RFC 4592), but
    //    we keep the simpler NXDOMAIN unless a wildcard of any common type
    //    applies — checked above for qtype and CNAME.
    out.rcode = dns::Rcode::NxDomain;
    out.disposition = Disposition::NxDomain;
    add_negative(out);
    return out;
  }
  // CNAME chain exceeded the bound: answer with what we have.
  out.disposition = Disposition::Answer;
  return out;
}

}  // namespace recwild::authns
