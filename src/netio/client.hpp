// Blocking DNS exchange over real sockets — the client side of src/netio.
//
// One call, one query, one response: tdig, the load generator's warm-up
// path, the smoke script and the transport-equivalence test all use this
// instead of hand-rolling sockets. UDP by default; TCP adds the 2-byte
// length framing of RFC 1035 §4.2.2 on both directions.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace recwild::netio {

struct ExchangeOptions {
  bool tcp = false;
  int timeout_ms = 3000;
};

struct ExchangeResult {
  std::vector<std::uint8_t> wire;  ///< Raw response bytes (frame stripped).
  double rtt_ms = 0.0;             ///< send() to full response, wall clock.
};

/// Sends `query` to host:port and waits for one response. Returns nullopt
/// on timeout, refused connection, or a malformed TCP frame. Throws
/// std::system_error only for local setup failures (bad host string).
[[nodiscard]] std::optional<ExchangeResult> exchange(
    const std::string& host, std::uint16_t port,
    std::span<const std::uint8_t> query, const ExchangeOptions& opts = {});

}  // namespace recwild::netio
