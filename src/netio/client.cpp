#include "netio/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <system_error>

#include "netio/fd.hpp"

namespace recwild::netio {

namespace {

using Clock = std::chrono::steady_clock;

timeval to_timeval(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  return tv;
}

/// recv() exactly `len` bytes or fail (TCP framing needs whole reads).
bool recv_all(int fd, std::uint8_t* buf, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, buf + got, len - got, 0);
    if (n <= 0) return false;  // timeout, error, or peer close
    got += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_all(int fd, const std::uint8_t* buf, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::optional<ExchangeResult> exchange(const std::string& host,
                                       std::uint16_t port,
                                       std::span<const std::uint8_t> query,
                                       const ExchangeOptions& opts) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    throw std::system_error{EINVAL, std::generic_category(),
                            "bad host address: " + host};
  }

  UniqueFd fd{::socket(AF_INET, (opts.tcp ? SOCK_STREAM : SOCK_DGRAM) |
                                    SOCK_CLOEXEC,
                       0)};
  if (!fd) {
    throw std::system_error{errno, std::generic_category(), "socket"};
  }
  const timeval tv = to_timeval(opts.timeout_ms);
  ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

  // connect() on UDP too: it pins the peer so recv() only yields that
  // server's datagrams and turns unreachable-port into an error.
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    return std::nullopt;
  }

  const auto start = Clock::now();
  ExchangeResult result;

  if (opts.tcp) {
    if (query.size() > 65535) return std::nullopt;
    std::vector<std::uint8_t> framed;
    framed.reserve(query.size() + 2);
    framed.push_back(static_cast<std::uint8_t>(query.size() >> 8));
    framed.push_back(static_cast<std::uint8_t>(query.size() & 0xff));
    framed.insert(framed.end(), query.begin(), query.end());
    if (!send_all(fd.get(), framed.data(), framed.size())) return std::nullopt;

    std::uint8_t lenbuf[2];
    if (!recv_all(fd.get(), lenbuf, 2)) return std::nullopt;
    const std::size_t frame = (static_cast<std::size_t>(lenbuf[0]) << 8) |
                              lenbuf[1];
    result.wire.resize(frame);
    if (frame > 0 && !recv_all(fd.get(), result.wire.data(), frame)) {
      return std::nullopt;
    }
  } else {
    if (!send_all(fd.get(), query.data(), query.size())) return std::nullopt;
    result.wire.resize(65535);
    const ssize_t n =
        ::recv(fd.get(), result.wire.data(), result.wire.size(), 0);
    if (n < 0) return std::nullopt;
    result.wire.resize(static_cast<std::size_t>(n));
  }

  result.rtt_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  return result;
}

}  // namespace recwild::netio
