// RAII wrapper for a kernel file descriptor.
//
// src/netio is the only module that touches real sockets; everything else
// in the tree runs on the simulated net::Network. Keeping fd ownership in
// one move-only type means a worker that throws mid-setup leaks nothing.
#pragma once

#include <unistd.h>

#include <utility>

namespace recwild::netio {

class UniqueFd {
 public:
  UniqueFd() noexcept = default;
  explicit UniqueFd(int fd) noexcept : fd_(fd) {}

  UniqueFd(UniqueFd&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  UniqueFd& operator=(UniqueFd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  ~UniqueFd() { reset(); }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  explicit operator bool() const noexcept { return valid(); }

  /// Closes the held descriptor (if any) and takes ownership of `fd`.
  void reset(int fd = -1) noexcept {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

  /// Releases ownership without closing.
  [[nodiscard]] int release() noexcept { return std::exchange(fd_, -1); }

 private:
  int fd_ = -1;
};

}  // namespace recwild::netio
