#include "netio/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <system_error>
#include <unordered_map>

#include "dnscore/codec.hpp"
#include "netio/fd.hpp"

namespace recwild::netio {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error{errno, std::generic_category(), what};
}

sockaddr_in make_addr(const std::string& address, std::uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &sa.sin_addr) != 1) {
    throw std::system_error{EINVAL, std::generic_category(),
                            "bad bind address: " + address};
  }
  return sa;
}

UniqueFd make_socket(int type) {
  UniqueFd fd{::socket(AF_INET, type | SOCK_NONBLOCK | SOCK_CLOEXEC, 0)};
  if (!fd) throw_errno("socket");
  const int one = 1;
  // SO_REUSEPORT is the sharding mechanism: every worker binds the same
  // (addr, port) and the kernel distributes flows across them.
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
    throw_errno("setsockopt(SO_REUSEPORT)");
  }
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) != 0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  return fd;
}

void epoll_add(int epfd, int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(ADD)");
  }
}

}  // namespace

struct Server::Worker {
  UniqueFd udp;
  UniqueFd tcp_listen;
  UniqueFd epoll;
  UniqueFd wake;  // eventfd: stop() writes here to break epoll_wait

  struct Conn {
    UniqueFd fd;
    std::vector<std::uint8_t> in;   // unconsumed framed bytes
    std::vector<std::uint8_t> out;  // unflushed response bytes
    std::size_t out_off = 0;
    bool want_write = false;
  };
  std::unordered_map<int, Conn> conns;

  std::atomic<std::uint64_t> udp_datagrams{0};
  std::atomic<std::uint64_t> tcp_connections{0};
  std::atomic<std::uint64_t> tcp_messages{0};
  std::atomic<std::uint64_t> responses{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> formerr{0};
  std::atomic<std::uint64_t> rrl_dropped{0};
  std::atomic<std::uint64_t> rrl_slipped{0};

  // Worker-private, touched only by this worker's epoll thread.
  authns::Rrl rrl;
};

Server::Server(const authns::Responder& responder, ServerConfig config)
    : responder_(responder), config_(std::move(config)) {
  if (config_.workers < 1) config_.workers = 1;
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.load(std::memory_order_acquire)) return;
  bound_port_ = config_.port;
  workers_.clear();
  workers_.reserve(static_cast<std::size_t>(config_.workers));

  for (int i = 0; i < config_.workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->rrl.set_config(config_.rrl);

    w->udp = make_socket(SOCK_DGRAM);
    sockaddr_in sa = make_addr(config_.bind_address, bound_port_);
    if (::bind(w->udp.get(), reinterpret_cast<sockaddr*>(&sa), sizeof sa) !=
        0) {
      throw_errno("bind(udp)");
    }
    if (bound_port_ == 0) {
      // First bind resolved the ephemeral port; every later socket (this
      // worker's TCP listener, all other workers) binds the same number.
      socklen_t len = sizeof sa;
      if (::getsockname(w->udp.get(), reinterpret_cast<sockaddr*>(&sa),
                        &len) != 0) {
        throw_errno("getsockname");
      }
      bound_port_ = ntohs(sa.sin_port);
    }

    w->tcp_listen = make_socket(SOCK_STREAM);
    sockaddr_in tsa = make_addr(config_.bind_address, bound_port_);
    if (::bind(w->tcp_listen.get(), reinterpret_cast<sockaddr*>(&tsa),
               sizeof tsa) != 0) {
      throw_errno("bind(tcp)");
    }
    if (::listen(w->tcp_listen.get(), SOMAXCONN) != 0) throw_errno("listen");

    w->epoll = UniqueFd{::epoll_create1(EPOLL_CLOEXEC)};
    if (!w->epoll) throw_errno("epoll_create1");
    w->wake = UniqueFd{::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)};
    if (!w->wake) throw_errno("eventfd");

    epoll_add(w->epoll.get(), w->udp.get(), EPOLLIN);
    epoll_add(w->epoll.get(), w->tcp_listen.get(), EPOLLIN);
    epoll_add(w->epoll.get(), w->wake.get(), EPOLLIN);

    workers_.push_back(std::move(w));
  }

  running_.store(true, std::memory_order_release);
  threads_.reserve(workers_.size());
  for (auto& w : workers_) {
    threads_.emplace_back([this, worker = w.get()] { run_worker(*worker); });
  }
}

void Server::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  running_.store(false, std::memory_order_release);
  for (auto& w : workers_) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(w->wake.get(), &one, sizeof one);
  }
  for (auto& t : threads_) t.join();
  threads_.clear();
  workers_.clear();
}

ServerStats Server::stats() const {
  ServerStats s;
  for (const auto& w : workers_) {
    s.udp_datagrams += w->udp_datagrams.load(std::memory_order_relaxed);
    s.tcp_connections += w->tcp_connections.load(std::memory_order_relaxed);
    s.tcp_messages += w->tcp_messages.load(std::memory_order_relaxed);
    s.responses += w->responses.load(std::memory_order_relaxed);
    s.dropped += w->dropped.load(std::memory_order_relaxed);
    s.formerr += w->formerr.load(std::memory_order_relaxed);
    s.rrl_dropped += w->rrl_dropped.load(std::memory_order_relaxed);
    s.rrl_slipped += w->rrl_slipped.load(std::memory_order_relaxed);
  }
  return s;
}

namespace {

/// Facts the UDP path needs to run RRL on an answer after the fact:
/// only Responder::answer responses are limitable (`answered`), and the
/// category wants the rcode + lookup disposition. The decoded query is
/// kept for building the TC slip.
struct AnswerMeta {
  bool answered = false;
  dns::Rcode rcode = dns::Rcode::NoError;
  authns::AnswerInfo info{};
  dns::Message query{};
};

/// The transport-independent step both sockets share: decode, answer via
/// the Responder, encode. Mirrors the simulated AuthServer::on_datagram
/// exactly (QR drop, NOTIFY ack, FORMERR for undecodable-but-headered
/// input) — divergence here would break transport equivalence.
std::optional<net::WireBuffer> respond(const authns::Responder& responder,
                                       std::span<const std::uint8_t> wire,
                                       bool via_stream, bool& was_formerr,
                                       AnswerMeta* meta = nullptr) {
  was_formerr = false;
  dns::Message local_query;
  dns::Message& query = meta != nullptr ? meta->query : local_query;
  try {
    query = dns::decode_message(wire);
  } catch (const dns::WireError&) {
    auto reply = authns::Responder::formerr_reply(wire);
    was_formerr = reply.has_value();
    return reply;
  }
  if (query.header.qr) return std::nullopt;  // never answer a response
  if (query.header.opcode == dns::Opcode::Notify) {
    dns::Message ack = dns::Message::make_response(query);
    ack.header.aa = true;
    return dns::encode_message(ack);
  }
  net::WireBuffer out;
  const dns::Message resp = responder.answer(
      query, via_stream, &out, meta != nullptr ? &meta->info : nullptr);
  if (out.empty()) out = dns::encode_message(resp);
  if (meta != nullptr) {
    meta->answered = !query.questions.empty();
    meta->rcode = resp.header.rcode;
  }
  return out;
}

/// Monotonic micros for RRL windows — the kernel-socket analogue of the
/// simulation's SimTime.
net::SimTime steady_now() {
  return net::SimTime::from_micros(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void Server::run_worker(Worker& w) {
  std::vector<std::uint8_t> udp_buf(65535);
  epoll_event events[64];

  const auto flush_conn = [&](Worker::Conn& c) -> bool {
    while (c.out_off < c.out.size()) {
      const ssize_t n = ::send(c.fd.get(), c.out.data() + c.out_off,
                               c.out.size() - c.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        c.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!c.want_write) {
          epoll_event ev{};
          ev.events = EPOLLIN | EPOLLOUT;
          ev.data.fd = c.fd.get();
          ::epoll_ctl(w.epoll.get(), EPOLL_CTL_MOD, c.fd.get(), &ev);
          c.want_write = true;
        }
        return true;  // come back on EPOLLOUT
      }
      return false;  // peer gone or hard error: drop the connection
    }
    c.out.clear();
    c.out_off = 0;
    if (c.want_write) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = c.fd.get();
      ::epoll_ctl(w.epoll.get(), EPOLL_CTL_MOD, c.fd.get(), &ev);
      c.want_write = false;
    }
    return true;
  };

  const auto service_conn = [&](Worker::Conn& c) -> bool {
    // Drain the socket, then cut complete 2-byte-length frames
    // (RFC 1035 §4.2.2) out of the accumulated bytes.
    for (;;) {
      std::uint8_t chunk[16384];
      const ssize_t n = ::recv(c.fd.get(), chunk, sizeof chunk, 0);
      if (n > 0) {
        c.in.insert(c.in.end(), chunk, chunk + n);
        continue;
      }
      if (n == 0) return false;  // orderly close
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    std::size_t consumed = 0;
    while (c.in.size() - consumed >= 2) {
      const std::size_t frame =
          (static_cast<std::size_t>(c.in[consumed]) << 8) | c.in[consumed + 1];
      if (frame > config_.max_tcp_frame) {
        w.dropped.fetch_add(1, std::memory_order_relaxed);
        return false;  // hostile length: cut the connection
      }
      if (c.in.size() - consumed < 2 + frame) break;  // partial frame
      w.tcp_messages.fetch_add(1, std::memory_order_relaxed);
      const std::span<const std::uint8_t> msg{c.in.data() + consumed + 2,
                                              frame};
      bool was_formerr = false;
      auto reply = respond(responder_, msg, /*via_stream=*/true, was_formerr);
      if (reply) {
        if (was_formerr) w.formerr.fetch_add(1, std::memory_order_relaxed);
        w.responses.fetch_add(1, std::memory_order_relaxed);
        c.out.push_back(static_cast<std::uint8_t>(reply->size() >> 8));
        c.out.push_back(static_cast<std::uint8_t>(reply->size() & 0xff));
        c.out.insert(c.out.end(), reply->data(), reply->data() + reply->size());
      } else {
        w.dropped.fetch_add(1, std::memory_order_relaxed);
      }
      consumed += 2 + frame;
    }
    c.in.erase(c.in.begin(),
               c.in.begin() + static_cast<std::ptrdiff_t>(consumed));
    return flush_conn(c);
  };

  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(w.epoll.get(), events, 64, 200);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == w.wake.get()) continue;  // stop(): loop condition exits

      if (fd == w.udp.get()) {
        for (;;) {
          sockaddr_in peer{};
          socklen_t peer_len = sizeof peer;
          const ssize_t got =
              ::recvfrom(w.udp.get(), udp_buf.data(), udp_buf.size(), 0,
                         reinterpret_cast<sockaddr*>(&peer), &peer_len);
          if (got < 0) break;  // EAGAIN: drained
          w.udp_datagrams.fetch_add(1, std::memory_order_relaxed);
          bool was_formerr = false;
          AnswerMeta meta;
          AnswerMeta* meta_ptr = w.rrl.enabled() ? &meta : nullptr;
          auto reply = respond(
              responder_,
              std::span<const std::uint8_t>{udp_buf.data(),
                                            static_cast<std::size_t>(got)},
              /*via_stream=*/false, was_formerr, meta_ptr);
          if (!reply) {
            w.dropped.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          // RRL: same engine and same decisions as the simulated server —
          // UDP answer path only, client keyed by the raw source address.
          if (meta_ptr != nullptr && meta.answered) {
            const authns::RrlAction action = w.rrl.check(
                ntohl(peer.sin_addr.s_addr),
                authns::rrl_category(meta.rcode, meta.info.disposition),
                steady_now());
            if (action == authns::RrlAction::Drop) {
              w.rrl_dropped.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            if (action == authns::RrlAction::Slip) {
              w.rrl_slipped.fetch_add(1, std::memory_order_relaxed);
              *reply = dns::encode_message(authns::make_slip_reply(meta.query));
            }
          }
          if (was_formerr) w.formerr.fetch_add(1, std::memory_order_relaxed);
          w.responses.fetch_add(1, std::memory_order_relaxed);
          ::sendto(w.udp.get(), reply->data(), reply->size(), 0,
                   reinterpret_cast<sockaddr*>(&peer), peer_len);
        }
        continue;
      }

      if (fd == w.tcp_listen.get()) {
        for (;;) {
          UniqueFd conn{::accept4(w.tcp_listen.get(), nullptr, nullptr,
                                  SOCK_NONBLOCK | SOCK_CLOEXEC)};
          if (!conn) break;  // EAGAIN: accepted everything pending
          w.tcp_connections.fetch_add(1, std::memory_order_relaxed);
          const int cfd = conn.get();
          epoll_add(w.epoll.get(), cfd, EPOLLIN);
          Worker::Conn c;
          c.fd = std::move(conn);
          w.conns.emplace(cfd, std::move(c));
        }
        continue;
      }

      auto it = w.conns.find(fd);
      if (it == w.conns.end()) continue;
      bool alive = true;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) alive = false;
      if (alive && (events[i].events & EPOLLOUT) != 0) {
        alive = flush_conn(it->second);
      }
      if (alive && (events[i].events & EPOLLIN) != 0) {
        alive = service_conn(it->second);
      }
      if (!alive) {
        ::epoll_ctl(w.epoll.get(), EPOLL_CTL_DEL, fd, nullptr);
        w.conns.erase(it);
      }
    }
  }
  w.conns.clear();
}

}  // namespace recwild::netio
