// Kernel-socket authoritative front-end: the second transport of the "one
// engine, two transports" design (docs/ARCHITECTURE.md).
//
// A Server binds one UDP socket and one TCP listener per worker, all on
// the same (address, port) via SO_REUSEPORT so the kernel shards incoming
// flows across workers with no user-space locking — the standard scaling
// idiom of NSD 4 and Knot. Each worker runs a private epoll loop:
// nonblocking reads, 2-byte length framing on TCP (RFC 1035 §4.2.2), and
// the pooled WireBuffer datapath for every encode. All query logic lives
// in the shared authns::Responder — the same object the simulated
// AuthServer delegates to — so a live reply is byte-identical to the
// simulated one (the transport-equivalence golden test pins this).
//
// Thread-safety: Responder::answer() is const and allocates per call;
// workers share one const reference and never synchronise. Stats are
// per-worker relaxed atomics summed on read.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "authns/responder.hpp"
#include "authns/rrl.hpp"

namespace recwild::netio {

struct ServerConfig {
  /// Dotted-quad IPv4 address to bind (loopback by default: the repo's
  /// tests and benches never expose a socket beyond the host).
  std::string bind_address = "127.0.0.1";
  /// 0 asks the kernel for an ephemeral port; the bound port is then
  /// readable via port() (tests and the smoke script rely on this).
  std::uint16_t port = 0;
  /// SO_REUSEPORT shards, one epoll loop + thread each.
  int workers = 1;
  /// Largest TCP frame accepted; larger advertised lengths drop the
  /// connection (a hostile peer can otherwise park 64 KiB per connection).
  std::size_t max_tcp_frame = 65535;
  /// Response-rate limiting on the UDP path (rate 0 = off). Accounting is
  /// per worker: SO_REUSEPORT hashes a client's flows to one worker, so
  /// per-client buckets stay coherent without cross-thread state.
  authns::RrlConfig rrl{};
};

/// Aggregated per-worker counters; names mirror the netio.* metrics in
/// docs/METRICS.md (plus `formerr`, folded into `authns.formerr`).
struct ServerStats {
  std::uint64_t udp_datagrams = 0;
  std::uint64_t tcp_connections = 0;
  std::uint64_t tcp_messages = 0;
  std::uint64_t responses = 0;
  std::uint64_t dropped = 0;
  std::uint64_t formerr = 0;
  std::uint64_t rrl_dropped = 0;
  std::uint64_t rrl_slipped = 0;
};

class Server {
 public:
  /// The responder must outlive the server and is shared by every worker.
  Server(const authns::Responder& responder, ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds all sockets and spawns the worker threads. Throws
  /// std::system_error when a socket call fails (port in use, no perms).
  void start();
  /// Signals every worker, joins the threads, closes all sockets.
  /// Idempotent; also run by the destructor.
  void stop();

  /// The bound UDP/TCP port (resolved after start() when config.port == 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }

  /// Sums the per-worker counters (callable from any thread, live).
  [[nodiscard]] ServerStats stats() const;

 private:
  struct Worker;
  void run_worker(Worker& w);

  const authns::Responder& responder_;
  ServerConfig config_;
  std::uint16_t bound_port_ = 0;
  /// Written by start()/stop(), read by every worker loop.
  std::atomic<bool> running_{false};
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
};

}  // namespace recwild::netio
