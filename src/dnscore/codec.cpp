#include "dnscore/codec.hpp"

#include <algorithm>
#include <limits>

#include "dnscore/wire.hpp"

namespace recwild::dns {

namespace {

constexpr std::uint16_t kFlagQr = 0x8000;
constexpr std::uint16_t kFlagAa = 0x0400;
constexpr std::uint16_t kFlagTc = 0x0200;
constexpr std::uint16_t kFlagRd = 0x0100;
constexpr std::uint16_t kFlagRa = 0x0080;

std::uint16_t pack_flags(const Header& h) {
  std::uint16_t flags = 0;
  if (h.qr) flags |= kFlagQr;
  flags |= static_cast<std::uint16_t>((static_cast<unsigned>(h.opcode) & 0xf)
                                      << 11);
  if (h.aa) flags |= kFlagAa;
  if (h.tc) flags |= kFlagTc;
  if (h.rd) flags |= kFlagRd;
  if (h.ra) flags |= kFlagRa;
  flags |= static_cast<std::uint16_t>(static_cast<unsigned>(h.rcode) & 0xf);
  return flags;
}

Header unpack_flags(std::uint16_t id, std::uint16_t flags) {
  Header h;
  h.id = id;
  h.qr = (flags & kFlagQr) != 0;
  h.opcode = static_cast<Opcode>((flags >> 11) & 0xf);
  h.aa = (flags & kFlagAa) != 0;
  h.tc = (flags & kFlagTc) != 0;
  h.rd = (flags & kFlagRd) != 0;
  h.ra = (flags & kFlagRa) != 0;
  h.rcode = static_cast<Rcode>(flags & 0xf);
  return h;
}

void check_count(std::size_t n, const char* what) {
  if (n > std::numeric_limits<std::uint16_t>::max()) {
    throw WireError{std::string{"too many "} + what};
  }
}

void encode_record(WireWriter& w, const ResourceRecord& rr) {
  w.name(rr.name);
  w.u16(static_cast<std::uint16_t>(rr.type()));
  w.u16(static_cast<std::uint16_t>(rr.rrclass));
  w.u32(rr.ttl);
  const std::size_t rdlength_at = w.size();
  w.u16(0);  // placeholder
  const std::size_t rdata_start = w.size();
  encode_rdata(w, rr.rdata);
  const std::size_t rdlength = w.size() - rdata_start;
  if (rdlength > std::numeric_limits<std::uint16_t>::max()) {
    throw WireError{"RDATA too long"};
  }
  w.patch_u16(rdlength_at, static_cast<std::uint16_t>(rdlength));
}

void encode_opt(WireWriter& w, const EdnsInfo& edns) {
  w.name(Name{});  // OPT owner is the root
  w.u16(static_cast<std::uint16_t>(RRType::OPT));
  w.u16(edns.udp_payload_size);  // "class" carries the UDP size
  // "TTL" carries extended-rcode, version, DO bit.
  std::uint32_t ttl = (std::uint32_t{edns.extended_rcode} << 24) |
                      (std::uint32_t{edns.version} << 16);
  if (edns.dnssec_ok) ttl |= 0x8000;
  w.u32(ttl);
  const std::size_t rdlength_at = w.size();
  w.u16(0);
  const std::size_t rdata_start = w.size();
  encode_rdata(w, Rdata{edns.options});
  w.patch_u16(rdlength_at,
              static_cast<std::uint16_t>(w.size() - rdata_start));
}

ResourceRecord decode_record(WireReader& r) {
  ResourceRecord rr;
  rr.name = r.name();
  const auto type = static_cast<RRType>(r.u16());
  rr.rrclass = static_cast<RRClass>(r.u16());
  rr.ttl = r.u32();
  const std::uint16_t rdlength = r.u16();
  rr.rdata = decode_rdata(r, type, rdlength);
  return rr;
}

}  // namespace

net::WireBuffer encode_message(const Message& m) {
  WireWriter w;
  check_count(m.questions.size(), "questions");
  check_count(m.answers.size(), "answers");
  check_count(m.authorities.size(), "authority records");
  const std::size_t arcount =
      m.additionals.size() + (m.edns.has_value() ? 1 : 0);
  check_count(arcount, "additional records");

  w.u16(m.header.id);
  w.u16(pack_flags(m.header));
  w.u16(static_cast<std::uint16_t>(m.questions.size()));
  w.u16(static_cast<std::uint16_t>(m.answers.size()));
  w.u16(static_cast<std::uint16_t>(m.authorities.size()));
  w.u16(static_cast<std::uint16_t>(arcount));

  for (const auto& q : m.questions) {
    w.name(q.qname);
    w.u16(static_cast<std::uint16_t>(q.qtype));
    w.u16(static_cast<std::uint16_t>(q.qclass));
  }
  for (const auto& rr : m.answers) encode_record(w, rr);
  for (const auto& rr : m.authorities) encode_record(w, rr);
  for (const auto& rr : m.additionals) encode_record(w, rr);
  if (m.edns) encode_opt(w, *m.edns);
  return std::move(w).take();
}

Message decode_message(std::span<const std::uint8_t> wire) {
  WireReader r{wire};
  Message m;
  const std::uint16_t id = r.u16();
  const std::uint16_t flags = r.u16();
  m.header = unpack_flags(id, flags);
  const std::uint16_t qdcount = r.u16();
  const std::uint16_t ancount = r.u16();
  const std::uint16_t nscount = r.u16();
  const std::uint16_t arcount = r.u16();

  // Section counts are hostile input: a 12-octet datagram can advertise
  // 65535 records per section. reserve() must be bounded by what the
  // remaining bytes could physically hold (a question is >= 5 octets, a
  // record >= 11), or a runt packet turns into a multi-megabyte
  // allocation before the first parse error fires.
  const auto bounded = [&r](std::uint16_t count, std::size_t min_octets) {
    return std::min<std::size_t>(count, r.remaining() / min_octets);
  };

  m.questions.reserve(bounded(qdcount, 5));
  for (std::uint16_t i = 0; i < qdcount; ++i) {
    Question q;
    q.qname = r.name();
    q.qtype = static_cast<RRType>(r.u16());
    q.qclass = static_cast<RRClass>(r.u16());
    m.questions.push_back(std::move(q));
  }
  m.answers.reserve(bounded(ancount, 11));
  for (std::uint16_t i = 0; i < ancount; ++i) {
    m.answers.push_back(decode_record(r));
  }
  m.authorities.reserve(bounded(nscount, 11));
  for (std::uint16_t i = 0; i < nscount; ++i) {
    m.authorities.push_back(decode_record(r));
  }
  for (std::uint16_t i = 0; i < arcount; ++i) {
    // OPT needs its header fields, so decode it inline rather than through
    // decode_record (which discards the class/TTL semantics).
    const std::size_t mark = r.offset();
    const Name owner = r.name();
    const auto type = static_cast<RRType>(r.u16());
    if (type == RRType::OPT) {
      if (m.edns) throw WireError{"duplicate OPT record"};
      if (!owner.is_root()) throw WireError{"OPT owner must be root"};
      EdnsInfo edns;
      edns.udp_payload_size = r.u16();
      const std::uint32_t ttl = r.u32();
      edns.extended_rcode = static_cast<std::uint8_t>(ttl >> 24);
      edns.version = static_cast<std::uint8_t>((ttl >> 16) & 0xff);
      edns.dnssec_ok = (ttl & 0x8000) != 0;
      const std::uint16_t rdlength = r.u16();
      Rdata rd = decode_rdata(r, RRType::OPT, rdlength);
      edns.options = std::get<OptRdata>(rd);
      m.edns = std::move(edns);
    } else {
      r.seek(mark);
      m.additionals.push_back(decode_record(r));
    }
  }
  return m;
}

}  // namespace recwild::dns
