#include "dnscore/name_table.hpp"

namespace recwild::dns {

namespace {
constexpr std::size_t kInitialSlots = 16;  // power of two
}

NameRef NameTable::intern(const Name& name) {
  if (slots_.empty()) {
    slots_.assign(kInitialSlots, 0);
  } else if ((names_.size() + 1) * 4 > slots_.size() * 3) {
    grow();
  }
  const std::size_t mask = slots_.size() - 1;
  std::size_t idx = name.hash() & mask;
  while (slots_[idx] != 0) {
    const std::uint32_t id = slots_[idx] - 1;
    if (names_[id].equals(name)) return NameRef{id};
    idx = (idx + 1) & mask;
  }
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.push_back(name);
  slots_[idx] = id + 1;
  return NameRef{id};
}

std::optional<NameRef> NameTable::find(const Name& name) const {
  if (slots_.empty()) return std::nullopt;
  const std::size_t mask = slots_.size() - 1;
  std::size_t idx = name.hash() & mask;
  while (slots_[idx] != 0) {
    const std::uint32_t id = slots_[idx] - 1;
    if (names_[id].equals(name)) return NameRef{id};
    idx = (idx + 1) & mask;
  }
  return std::nullopt;
}

void NameTable::grow() {
  std::vector<std::uint32_t> old = std::move(slots_);
  slots_.assign(old.size() * 2, 0);
  const std::size_t mask = slots_.size() - 1;
  for (const std::uint32_t s : old) {
    if (s == 0) continue;
    std::size_t idx = names_[s - 1].hash() & mask;  // hash is cached
    while (slots_[idx] != 0) idx = (idx + 1) & mask;
    slots_[idx] = s;
  }
}

}  // namespace recwild::dns
