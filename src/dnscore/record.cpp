#include "dnscore/record.hpp"

#include <algorithm>

namespace recwild::dns {

std::string ResourceRecord::to_string() const {
  return name.to_string() + " " + std::to_string(ttl) + " " +
         std::string{dns::to_string(rrclass)} + " " +
         std::string{dns::to_string(type())} + " " + rdata_to_string(rdata);
}

std::vector<ResourceRecord> RRset::to_records() const {
  std::vector<ResourceRecord> out;
  out.reserve(rdatas.size());
  for (const auto& rd : rdatas) {
    out.push_back(ResourceRecord{name, rrclass, ttl, rd});
  }
  return out;
}

std::vector<RRset> group_rrsets(const std::vector<ResourceRecord>& records) {
  std::vector<RRset> sets;
  for (const auto& rr : records) {
    const RRType t = rr.type();
    auto it = std::find_if(sets.begin(), sets.end(), [&](const RRset& s) {
      return s.type == t && s.rrclass == rr.rrclass && s.name == rr.name;
    });
    if (it == sets.end()) {
      sets.push_back(RRset{rr.name, rr.rrclass, t, rr.ttl, {rr.rdata}});
    } else {
      it->ttl = std::min(it->ttl, rr.ttl);
      it->rdatas.push_back(rr.rdata);
    }
  }
  return sets;
}

}  // namespace recwild::dns
