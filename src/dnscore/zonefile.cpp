#include "dnscore/zonefile.hpp"

#include <charconv>
#include <cstdint>
#include <optional>

namespace recwild::dns {

namespace {

struct Token {
  std::string text;
  bool quoted = false;
  bool first_on_line = false;  // i.e. appeared in column 0 context
  std::size_t line = 0;
};

/// Tokenizes the whole file: handles comments, quotes, parentheses
/// (line-continuation), and records whether a token starts its logical line.
class Tokenizer {
 public:
  explicit Tokenizer(std::string_view text) : text_(text) {}

  /// Returns tokens grouped into logical lines (paren-joined).
  std::vector<std::vector<Token>> lines() {
    std::vector<std::vector<Token>> out;
    std::vector<Token> current;
    bool line_had_leading_ws = false;
    int paren_depth = 0;

    auto flush = [&] {
      if (!current.empty()) {
        out.push_back(std::move(current));
        current.clear();
      }
    };

    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ';') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      if (c == '\n') {
        ++line_;
        ++pos_;
        if (paren_depth == 0) {
          flush();
          line_had_leading_ws = false;
        }
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r') {
        if (current.empty() && paren_depth == 0) line_had_leading_ws = true;
        ++pos_;
        continue;
      }
      if (c == '(') {
        ++paren_depth;
        ++pos_;
        continue;
      }
      if (c == ')') {
        if (paren_depth == 0) {
          throw ZoneParseError{line_, "unbalanced ')'"};
        }
        --paren_depth;
        ++pos_;
        continue;
      }
      Token t;
      t.line = line_;
      t.first_on_line = current.empty() && !line_had_leading_ws &&
                        paren_depth == 0;
      if (c == '"') {
        t.quoted = true;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
          if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
          if (text_[pos_] == '\n') ++line_;
          t.text.push_back(text_[pos_++]);
        }
        if (pos_ >= text_.size()) {
          throw ZoneParseError{t.line, "unterminated quoted string"};
        }
        ++pos_;  // closing quote
      } else {
        while (pos_ < text_.size()) {
          const char d = text_[pos_];
          if (d == ' ' || d == '\t' || d == '\r' || d == '\n' || d == ';' ||
              d == '(' || d == ')' || d == '"') {
            break;
          }
          t.text.push_back(d);
          ++pos_;
        }
      }
      current.push_back(std::move(t));
    }
    if (paren_depth != 0) throw ZoneParseError{line_, "unbalanced '('"};
    flush();
    return out;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

std::optional<std::uint32_t> parse_u32(std::string_view s) {
  std::uint32_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

/// TTL with optional unit suffix (s/m/h/d/w), e.g. "2h", "1d".
std::optional<Ttl> parse_ttl(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t mult = 1;
  const char last = s.back();
  if (last < '0' || last > '9') {
    switch (last | 0x20) {
      case 's': mult = 1; break;
      case 'm': mult = 60; break;
      case 'h': mult = 3600; break;
      case 'd': mult = 86400; break;
      case 'w': mult = 604800; break;
      default: return std::nullopt;
    }
    s.remove_suffix(1);
  }
  const auto base = parse_u32(s);
  if (!base) return std::nullopt;
  const std::uint64_t ttl = static_cast<std::uint64_t>(*base) * mult;
  if (ttl > 0x7fffffffULL) return std::nullopt;  // RFC 2181 §8
  return static_cast<Ttl>(ttl);
}

Name parse_name_token(const Token& t, const Name& origin) {
  if (t.text == "@") return origin;
  if (!t.text.empty() && t.text.back() == '.') return Name::parse(t.text);
  return Name::parse(t.text).concat(origin);
}

net::IpAddress parse_ipv4(const Token& t) {
  unsigned a = 256, b = 256, c = 256, d = 256;
  char extra = 0;
  if (std::sscanf(t.text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &extra) !=
          4 ||
      a > 255 || b > 255 || c > 255 || d > 255) {
    throw ZoneParseError{t.line, "bad IPv4 address '" + t.text + "'"};
  }
  return net::IpAddress::from_octets(
      static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
      static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::array<std::uint8_t, 16> parse_ipv6(const Token& t) {
  // Minimal parser: groups separated by ':', one optional '::'.
  std::array<std::uint8_t, 16> out{};
  std::vector<std::uint16_t> head;
  std::vector<std::uint16_t> tail;
  bool in_tail = false;
  const std::string& s = t.text;
  std::size_t i = 0;
  auto fail = [&]() -> ZoneParseError {
    return ZoneParseError{t.line, "bad IPv6 address '" + s + "'"};
  };
  if (s.size() >= 2 && s[0] == ':' && s[1] == ':') {
    in_tail = true;
    i = 2;
  }
  while (i < s.size()) {
    std::size_t j = i;
    unsigned group = 0;
    while (j < s.size() && s[j] != ':') {
      const char c = s[j];
      unsigned digit = 0;
      if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
      else if ((c | 0x20) >= 'a' && (c | 0x20) <= 'f')
        digit = static_cast<unsigned>((c | 0x20) - 'a' + 10);
      else
        throw fail();
      group = group * 16 + digit;
      if (group > 0xffff) throw fail();
      ++j;
    }
    if (j == i) throw fail();
    (in_tail ? tail : head).push_back(static_cast<std::uint16_t>(group));
    i = j;
    if (i < s.size()) {
      ++i;  // ':'
      if (i < s.size() && s[i] == ':') {
        if (in_tail) throw fail();
        in_tail = true;
        ++i;
      } else if (i >= s.size()) {
        throw fail();
      }
    }
  }
  const std::size_t total = head.size() + tail.size();
  if ((in_tail && total > 7) || (!in_tail && total != 8)) throw fail();
  for (std::size_t k = 0; k < head.size(); ++k) {
    out[2 * k] = static_cast<std::uint8_t>(head[k] >> 8);
    out[2 * k + 1] = static_cast<std::uint8_t>(head[k] & 0xff);
  }
  for (std::size_t k = 0; k < tail.size(); ++k) {
    const std::size_t slot = 8 - tail.size() + k;
    out[2 * slot] = static_cast<std::uint8_t>(tail[k] >> 8);
    out[2 * slot + 1] = static_cast<std::uint8_t>(tail[k] & 0xff);
  }
  return out;
}

}  // namespace

std::vector<ResourceRecord> parse_zone_text(std::string_view text,
                                            const ZoneFileOptions& options) {
  Tokenizer tokenizer{text};
  const auto lines = tokenizer.lines();

  Name origin = options.origin;
  Ttl default_ttl = options.default_ttl;
  std::optional<Name> last_name;
  std::vector<ResourceRecord> records;

  for (const auto& line : lines) {
    if (line.empty()) continue;
    const std::size_t lineno = line.front().line;

    // Directives.
    if (line.front().text == "$ORIGIN") {
      if (line.size() != 2) throw ZoneParseError{lineno, "$ORIGIN arity"};
      origin = Name::parse(line[1].text);
      continue;
    }
    if (line.front().text == "$TTL") {
      if (line.size() != 2) throw ZoneParseError{lineno, "$TTL arity"};
      const auto ttl = parse_ttl(line[1].text);
      if (!ttl) throw ZoneParseError{lineno, "bad $TTL value"};
      default_ttl = *ttl;
      continue;
    }
    if (line.front().text.starts_with("$")) {
      throw ZoneParseError{lineno,
                           "unsupported directive " + line.front().text};
    }

    std::size_t idx = 0;
    Name name;
    if (line.front().first_on_line) {
      name = parse_name_token(line[idx++], origin);
      last_name = name;
    } else {
      if (!last_name) {
        throw ZoneParseError{lineno, "record with no owner name"};
      }
      name = *last_name;
    }

    // [TTL] and [class] may appear in either order before the type.
    Ttl ttl = default_ttl;
    RRClass rrclass = RRClass::IN;
    std::optional<RRType> type;
    while (idx < line.size() && !type) {
      const std::string& tok = line[idx].text;
      if (const auto t = rrtype_from_string(tok);
          t && tok != "ANY") {  // ANY is query-only
        type = t;
        ++idx;
        break;
      }
      if (const auto c = rrclass_from_string(tok)) {
        rrclass = *c;
        ++idx;
        continue;
      }
      if (const auto tv = parse_ttl(tok)) {
        ttl = *tv;
        ++idx;
        continue;
      }
      throw ZoneParseError{lineno, "unexpected token '" + tok + "'"};
    }
    if (!type) throw ZoneParseError{lineno, "missing record type"};

    const std::span<const Token> args{line.data() + idx, line.size() - idx};
    auto need = [&](std::size_t n) {
      if (args.size() != n) {
        throw ZoneParseError{lineno,
                             std::string{to_string(*type)} +
                                 " expects " + std::to_string(n) +
                                 " field(s), got " +
                                 std::to_string(args.size())};
      }
    };

    Rdata rdata;
    switch (*type) {
      case RRType::A:
        need(1);
        rdata = ARdata{parse_ipv4(args[0])};
        break;
      case RRType::AAAA:
        need(1);
        rdata = AaaaRdata{parse_ipv6(args[0])};
        break;
      case RRType::NS:
        need(1);
        rdata = NsRdata{parse_name_token(args[0], origin)};
        break;
      case RRType::CNAME:
        need(1);
        rdata = CnameRdata{parse_name_token(args[0], origin)};
        break;
      case RRType::PTR:
        need(1);
        rdata = PtrRdata{parse_name_token(args[0], origin)};
        break;
      case RRType::MX: {
        need(2);
        const auto pref = parse_u32(args[0].text);
        if (!pref || *pref > 0xffff) {
          throw ZoneParseError{lineno, "bad MX preference"};
        }
        rdata = MxRdata{static_cast<std::uint16_t>(*pref),
                        parse_name_token(args[1], origin)};
        break;
      }
      case RRType::TXT: {
        if (args.empty()) throw ZoneParseError{lineno, "TXT needs strings"};
        TxtRdata txt;
        for (const auto& a : args) txt.strings.push_back(a.text);
        rdata = std::move(txt);
        break;
      }
      case RRType::SOA: {
        need(7);
        SoaRdata soa;
        soa.mname = parse_name_token(args[0], origin);
        soa.rname = parse_name_token(args[1], origin);
        const auto serial = parse_u32(args[2].text);
        const auto refresh = parse_ttl(args[3].text);
        const auto retry = parse_ttl(args[4].text);
        const auto expire = parse_ttl(args[5].text);
        const auto minimum = parse_ttl(args[6].text);
        if (!serial || !refresh || !retry || !expire || !minimum) {
          throw ZoneParseError{lineno, "bad SOA numeric field"};
        }
        soa.serial = *serial;
        soa.refresh = *refresh;
        soa.retry = *retry;
        soa.expire = *expire;
        soa.minimum = *minimum;
        rdata = std::move(soa);
        break;
      }
      case RRType::SRV: {
        need(4);
        SrvRdata srv;
        const auto prio = parse_u32(args[0].text);
        const auto weight = parse_u32(args[1].text);
        const auto port = parse_u32(args[2].text);
        if (!prio || !weight || !port || *prio > 0xffff ||
            *weight > 0xffff || *port > 0xffff) {
          throw ZoneParseError{lineno, "bad SRV numeric field"};
        }
        srv.priority = static_cast<std::uint16_t>(*prio);
        srv.weight = static_cast<std::uint16_t>(*weight);
        srv.port = static_cast<std::uint16_t>(*port);
        srv.target = parse_name_token(args[3], origin);
        rdata = std::move(srv);
        break;
      }
      case RRType::CAA: {
        need(3);
        const auto flags = parse_u32(args[0].text);
        if (!flags || *flags > 255) {
          throw ZoneParseError{lineno, "bad CAA flags"};
        }
        rdata = CaaRdata{static_cast<std::uint8_t>(*flags), args[1].text,
                         args[2].text};
        break;
      }
      default:
        throw ZoneParseError{lineno, "unsupported type in zone file"};
    }
    records.push_back(
        ResourceRecord{std::move(name), rrclass, ttl, std::move(rdata)});
  }
  return records;
}

std::string to_zone_text(const std::vector<ResourceRecord>& records) {
  std::string out;
  for (const auto& rr : records) {
    out += rr.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace recwild::dns
