// Typed RDATA (RFC 1035 §3.3, RFC 3596, RFC 2782, RFC 6891, RFC 8659).
//
// Rdata is a closed variant over the record types the library understands,
// plus RawRdata as an escape hatch for anything else (kept verbatim, so
// unknown types round-trip through the codec unchanged, RFC 3597-style).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dnscore/name.hpp"
#include "dnscore/types.hpp"
#include "dnscore/wire.hpp"
#include "net/address.hpp"

namespace recwild::dns {

struct ARdata {
  net::IpAddress address;
  bool operator==(const ARdata&) const = default;
};

struct AaaaRdata {
  std::array<std::uint8_t, 16> address{};
  bool operator==(const AaaaRdata&) const = default;
};

struct NsRdata {
  Name nsdname;
  bool operator==(const NsRdata&) const = default;
};

struct CnameRdata {
  Name target;
  bool operator==(const CnameRdata&) const = default;
};

struct PtrRdata {
  Name target;
  bool operator==(const PtrRdata&) const = default;
};

struct SoaRdata {
  Name mname;
  Name rname;
  std::uint32_t serial = 0;
  std::uint32_t refresh = 0;
  std::uint32_t retry = 0;
  std::uint32_t expire = 0;
  std::uint32_t minimum = 0;  // negative-caching TTL (RFC 2308)
  bool operator==(const SoaRdata&) const = default;
};

struct MxRdata {
  std::uint16_t preference = 0;
  Name exchange;
  bool operator==(const MxRdata&) const = default;
};

struct TxtRdata {
  std::vector<std::string> strings;  // one or more character-strings
  bool operator==(const TxtRdata&) const = default;
};

struct SrvRdata {
  std::uint16_t priority = 0;
  std::uint16_t weight = 0;
  std::uint16_t port = 0;
  Name target;
  bool operator==(const SrvRdata&) const = default;
};

/// EDNS0 OPT pseudo-record payload (RFC 6891). The "TTL" and "class" fields
/// of an OPT RR carry flags and UDP size; those live in EdnsInfo on the
/// message, while this struct holds the option list.
struct OptRdata {
  struct Option {
    std::uint16_t code = 0;
    std::vector<std::uint8_t> data;
    bool operator==(const Option&) const = default;
  };
  std::vector<Option> options;
  bool operator==(const OptRdata&) const = default;
};

struct CaaRdata {
  std::uint8_t flags = 0;
  std::string tag;
  std::string value;
  bool operator==(const CaaRdata&) const = default;
};

/// Unknown/unsupported type: opaque bytes, round-tripped unchanged.
struct RawRdata {
  std::uint16_t type = 0;
  std::vector<std::uint8_t> data;
  bool operator==(const RawRdata&) const = default;
};

using Rdata = std::variant<ARdata, AaaaRdata, NsRdata, CnameRdata, PtrRdata,
                           SoaRdata, MxRdata, TxtRdata, SrvRdata, OptRdata,
                           CaaRdata, RawRdata>;

/// The RRType a given Rdata value represents.
RRType rdata_type(const Rdata& rdata) noexcept;

/// Encodes RDATA (without the RDLENGTH prefix) into `w`. Names inside RDATA
/// are compressed only for types where RFC 3597 permits it (NS, CNAME, PTR,
/// SOA, MX — the types whose compression predates RFC 3597).
void encode_rdata(WireWriter& w, const Rdata& rdata);

/// Decodes `rdlength` octets of RDATA of type `type` from `r`.
/// Unknown types come back as RawRdata.
Rdata decode_rdata(WireReader& r, RRType type, std::size_t rdlength);

/// Presentation format of the RDATA ("192.0.2.1", "10 mail.example.nl.", …).
std::string rdata_to_string(const Rdata& rdata);

}  // namespace recwild::dns
