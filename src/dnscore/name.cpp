#include "dnscore/name.hpp"

#include <stdexcept>

namespace recwild::dns {

Name Name::parse(std::string_view text) {
  if (text.empty()) throw std::invalid_argument{"Name: empty input"};
  if (text == ".") return Name{};
  std::vector<std::string> labels;
  std::string current;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\\') {
      if (i + 1 >= text.size()) {
        throw std::invalid_argument{"Name: dangling escape"};
      }
      current.push_back(text[++i]);
    } else if (c == '.') {
      if (current.empty()) {
        throw std::invalid_argument{"Name: empty label in '" +
                                    std::string(text) + "'"};
      }
      labels.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) labels.push_back(std::move(current));
  return from_labels(std::move(labels));
}

Name Name::from_labels(std::vector<std::string> labels) {
  Name n;
  n.labels_ = std::move(labels);
  n.validate();
  return n;
}

void Name::validate() const {
  for (const auto& l : labels_) {
    if (l.empty()) throw std::invalid_argument{"Name: empty label"};
    if (l.size() > kMaxLabelLength) {
      throw std::invalid_argument{"Name: label exceeds 63 octets"};
    }
  }
  if (wire_length() > kMaxNameWireLength) {
    throw std::invalid_argument{"Name: exceeds 255 octets"};
  }
}

std::size_t Name::wire_length() const noexcept {
  std::size_t len = 1;  // root byte
  for (const auto& l : labels_) len += 1 + l.size();
  return len;
}

std::string Name::to_string() const {
  if (labels_.empty()) return ".";
  std::string out;
  for (const auto& l : labels_) {
    for (const char c : l) {
      if (c == '.' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    out.push_back('.');
  }
  return out;
}

namespace {

int compare_labels(const std::string& a, const std::string& b) noexcept {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto ca = static_cast<unsigned char>(Name::to_lower(a[i]));
    const auto cb = static_cast<unsigned char>(Name::to_lower(b[i]));
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

}  // namespace

bool Name::equals(const Name& o) const noexcept {
  if (labels_.size() != o.labels_.size()) return false;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (compare_labels(labels_[i], o.labels_[i]) != 0) return false;
  }
  return true;
}

int Name::compare(const Name& o) const noexcept {
  // Right-to-left (least-specific label first), per canonical DNS order.
  std::size_t i = labels_.size();
  std::size_t j = o.labels_.size();
  while (i > 0 && j > 0) {
    const int c = compare_labels(labels_[i - 1], o.labels_[j - 1]);
    if (c != 0) return c;
    --i;
    --j;
  }
  if (i != j) return i < j ? -1 : 1;
  return 0;
}

bool Name::is_subdomain_of(const Name& ancestor) const noexcept {
  if (ancestor.labels_.size() > labels_.size()) return false;
  const std::size_t offset = labels_.size() - ancestor.labels_.size();
  for (std::size_t i = 0; i < ancestor.labels_.size(); ++i) {
    if (compare_labels(labels_[offset + i], ancestor.labels_[i]) != 0) {
      return false;
    }
  }
  return true;
}

Name Name::parent() const {
  if (labels_.empty()) return Name{};
  Name p;
  p.labels_.assign(labels_.begin() + 1, labels_.end());
  return p;
}

Name Name::prefixed(std::string_view label) const {
  Name n;
  n.labels_.reserve(labels_.size() + 1);
  n.labels_.emplace_back(label);
  n.labels_.insert(n.labels_.end(), labels_.begin(), labels_.end());
  n.validate();
  return n;
}

Name Name::concat(const Name& suffix) const {
  Name n;
  n.labels_.reserve(labels_.size() + suffix.labels_.size());
  n.labels_.insert(n.labels_.end(), labels_.begin(), labels_.end());
  n.labels_.insert(n.labels_.end(), suffix.labels_.begin(),
                   suffix.labels_.end());
  n.validate();
  return n;
}

std::size_t Name::hash() const noexcept {
  const std::size_t cached = hash_cache_.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  // FNV-1a over lowered labels with separators.
  std::size_t h = 0xcbf29ce484222325ULL;
  for (const auto& l : labels_) {
    for (const char c : l) {
      h ^= static_cast<unsigned char>(to_lower(c));
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;
    h *= 0x100000001b3ULL;
  }
  if (h == 0) h = 0x9e3779b97f4a7c15ULL;  // keep 0 free as the sentinel
  hash_cache_.store(h, std::memory_order_relaxed);
  return h;
}

}  // namespace recwild::dns
