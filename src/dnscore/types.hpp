// DNS enumerations: RR types, classes, opcodes, response codes
// (RFC 1035 §3.2, RFC 2136, RFC 6891), with presentation-format conversion.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace recwild::dns {

enum class RRType : std::uint16_t {
  A = 1,
  NS = 2,
  CNAME = 5,
  SOA = 6,
  PTR = 12,
  MX = 15,
  TXT = 16,
  AAAA = 28,
  SRV = 33,
  OPT = 41,    // EDNS0 pseudo-RR
  AXFR = 252,  // QTYPE only: full zone transfer (RFC 5936)
  CAA = 257,
  ANY = 255,   // QTYPE only
};

enum class RRClass : std::uint16_t {
  IN = 1,
  CH = 3,    // CHAOS; the paper discusses hostname.bind CH TXT queries
  ANY = 255,
};

enum class Opcode : std::uint8_t {
  Query = 0,
  Status = 2,
  Notify = 4,
  Update = 5,
};

enum class Rcode : std::uint8_t {
  NoError = 0,
  FormErr = 1,
  ServFail = 2,
  NxDomain = 3,
  NotImp = 4,
  Refused = 5,
};

std::string_view to_string(RRType t) noexcept;
std::string_view to_string(RRClass c) noexcept;
std::string_view to_string(Opcode o) noexcept;
std::string_view to_string(Rcode r) noexcept;

std::optional<RRType> rrtype_from_string(std::string_view s) noexcept;
std::optional<RRClass> rrclass_from_string(std::string_view s) noexcept;

/// True for types this library can encode/decode typed RDATA for.
bool is_supported_rdata_type(RRType t) noexcept;

}  // namespace recwild::dns
