// Message <-> wire codec (RFC 1035 §4.1, RFC 6891 for OPT).
#pragma once

#include <cstdint>
#include <span>

#include "dnscore/message.hpp"
#include "net/wire_buffer.hpp"

namespace recwild::dns {

/// Serializes a message, applying name compression across all sections and
/// emitting the EDNS OPT record last in the additional section. The result
/// is a pooled buffer ready to move into Network::send — one encode, zero
/// copies, no heap allocation when the pool is warm.
/// Throws WireError on structural problems (e.g. >65535 records).
net::WireBuffer encode_message(const Message& m);

/// Parses a wire-format message. Throws WireError on malformed input.
/// An OPT record in the additional section is lifted into Message::edns.
Message decode_message(std::span<const std::uint8_t> wire);

}  // namespace recwild::dns
