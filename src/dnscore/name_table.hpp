// Interned domain names.
//
// A NameTable assigns every distinct name (case-insensitively, matching
// Name::equals) a dense 32-bit id. Hot paths that repeatedly compare the
// same names — zone exact-match lookups, matching upstream responses to
// outstanding queries — intern once and then compare NameRef ids instead
// of walking label vectors. Tables are plain members of whatever owns the
// hot path (a Zone, a resolver); there is deliberately no global table, so
// ids never cross threads and shard workers stay independent.
//
// Storage is a dense Name vector plus a flat open-addressed id index (no
// node allocations, one Name copy per distinct name ever).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dnscore/name.hpp"

namespace recwild::dns {

/// Dense id of an interned name, valid only within the issuing NameTable.
struct NameRef {
  std::uint32_t value = 0;
  friend bool operator==(NameRef, NameRef) noexcept = default;
};

class NameTable {
 public:
  /// The id for `name`, interning it on first sight. Case-insensitive:
  /// names equal under Name::equals share one id.
  NameRef intern(const Name& name);

  /// The id for `name` if already interned; nullopt otherwise. Lookup-only
  /// (query-side callers must not grow the table with miss garbage).
  [[nodiscard]] std::optional<NameRef> find(const Name& name) const;

  /// The canonical (first-interned) spelling behind an id.
  [[nodiscard]] const Name& name(NameRef ref) const {
    return names_.at(ref.value);
  }

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

 private:
  void grow();

  std::vector<Name> names_;
  /// Open-addressed probe table of id+1 (0 = empty slot), hashed by
  /// Name::hash, linear probing, kept under 75% load.
  std::vector<std::uint32_t> slots_;
};

}  // namespace recwild::dns
