#include "dnscore/message.hpp"

namespace recwild::dns {

std::string Question::to_string() const {
  return qname.to_string() + " " + std::string{dns::to_string(qclass)} + " " +
         std::string{dns::to_string(qtype)};
}

Message Message::make_query(std::uint16_t id, Name qname, RRType qtype,
                            RRClass qclass) {
  Message m;
  m.header.id = id;
  m.header.qr = false;
  m.header.opcode = Opcode::Query;
  m.questions.push_back(Question{std::move(qname), qtype, qclass});
  return m;
}

Message Message::make_response(const Message& query) {
  Message m;
  m.header = query.header;
  m.header.qr = true;
  m.header.ra = false;
  m.questions = query.questions;
  return m;
}

std::string Message::to_string() const {
  std::string out;
  out += ";; opcode: " + std::string{dns::to_string(header.opcode)};
  out += ", rcode: " + std::string{dns::to_string(header.rcode)};
  out += ", id: " + std::to_string(header.id) + "\n;; flags:";
  if (header.qr) out += " qr";
  if (header.aa) out += " aa";
  if (header.tc) out += " tc";
  if (header.rd) out += " rd";
  if (header.ra) out += " ra";
  out += "\n";
  if (edns) {
    out += ";; EDNS: version " + std::to_string(edns->version) + ", udp " +
           std::to_string(edns->udp_payload_size) + "\n";
  }
  out += ";; QUESTION:\n";
  for (const auto& q : questions) out += ";  " + q.to_string() + "\n";
  auto section = [&out](const char* title,
                        const std::vector<ResourceRecord>& rrs) {
    if (rrs.empty()) return;
    out += std::string{";; "} + title + ":\n";
    for (const auto& rr : rrs) out += rr.to_string() + "\n";
  };
  section("ANSWER", answers);
  section("AUTHORITY", authorities);
  section("ADDITIONAL", additionals);
  return out;
}

}  // namespace recwild::dns
