#include "dnscore/types.hpp"

#include <array>

namespace recwild::dns {

namespace {

struct TypeNamePair {
  RRType type;
  std::string_view name;
};

constexpr std::array<TypeNamePair, 13> kTypeNames{{
    {RRType::AXFR, "AXFR"},
    {RRType::A, "A"},
    {RRType::NS, "NS"},
    {RRType::CNAME, "CNAME"},
    {RRType::SOA, "SOA"},
    {RRType::PTR, "PTR"},
    {RRType::MX, "MX"},
    {RRType::TXT, "TXT"},
    {RRType::AAAA, "AAAA"},
    {RRType::SRV, "SRV"},
    {RRType::OPT, "OPT"},
    {RRType::CAA, "CAA"},
    {RRType::ANY, "ANY"},
}};

}  // namespace

std::string_view to_string(RRType t) noexcept {
  for (const auto& p : kTypeNames) {
    if (p.type == t) return p.name;
  }
  return "TYPE?";
}

std::string_view to_string(RRClass c) noexcept {
  switch (c) {
    case RRClass::IN: return "IN";
    case RRClass::CH: return "CH";
    case RRClass::ANY: return "ANY";
  }
  return "CLASS?";
}

std::string_view to_string(Opcode o) noexcept {
  switch (o) {
    case Opcode::Query: return "QUERY";
    case Opcode::Status: return "STATUS";
    case Opcode::Notify: return "NOTIFY";
    case Opcode::Update: return "UPDATE";
  }
  return "OPCODE?";
}

std::string_view to_string(Rcode r) noexcept {
  switch (r) {
    case Rcode::NoError: return "NOERROR";
    case Rcode::FormErr: return "FORMERR";
    case Rcode::ServFail: return "SERVFAIL";
    case Rcode::NxDomain: return "NXDOMAIN";
    case Rcode::NotImp: return "NOTIMP";
    case Rcode::Refused: return "REFUSED";
  }
  return "RCODE?";
}

std::optional<RRType> rrtype_from_string(std::string_view s) noexcept {
  for (const auto& p : kTypeNames) {
    if (p.name == s) return p.type;
  }
  return std::nullopt;
}

std::optional<RRClass> rrclass_from_string(std::string_view s) noexcept {
  if (s == "IN") return RRClass::IN;
  if (s == "CH") return RRClass::CH;
  if (s == "ANY") return RRClass::ANY;
  return std::nullopt;
}

bool is_supported_rdata_type(RRType t) noexcept {
  switch (t) {
    case RRType::A:
    case RRType::NS:
    case RRType::CNAME:
    case RRType::SOA:
    case RRType::PTR:
    case RRType::MX:
    case RRType::TXT:
    case RRType::AAAA:
    case RRType::SRV:
    case RRType::OPT:
    case RRType::CAA:
      return true;
    case RRType::ANY:
    case RRType::AXFR:
      return false;
  }
  return false;
}

}  // namespace recwild::dns
