#include "dnscore/rdata.hpp"

#include <cstdio>

namespace recwild::dns {

namespace {

struct TypeVisitor {
  RRType operator()(const ARdata&) const { return RRType::A; }
  RRType operator()(const AaaaRdata&) const { return RRType::AAAA; }
  RRType operator()(const NsRdata&) const { return RRType::NS; }
  RRType operator()(const CnameRdata&) const { return RRType::CNAME; }
  RRType operator()(const PtrRdata&) const { return RRType::PTR; }
  RRType operator()(const SoaRdata&) const { return RRType::SOA; }
  RRType operator()(const MxRdata&) const { return RRType::MX; }
  RRType operator()(const TxtRdata&) const { return RRType::TXT; }
  RRType operator()(const SrvRdata&) const { return RRType::SRV; }
  RRType operator()(const OptRdata&) const { return RRType::OPT; }
  RRType operator()(const CaaRdata&) const { return RRType::CAA; }
  RRType operator()(const RawRdata& r) const {
    return static_cast<RRType>(r.type);
  }
};

}  // namespace

RRType rdata_type(const Rdata& rdata) noexcept {
  return std::visit(TypeVisitor{}, rdata);
}

void encode_rdata(WireWriter& w, const Rdata& rdata) {
  std::visit(
      [&w](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          w.u32(v.address.bits());
        } else if constexpr (std::is_same_v<T, AaaaRdata>) {
          w.bytes(v.address);
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          w.name(v.nsdname);
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          w.name(v.target);
        } else if constexpr (std::is_same_v<T, PtrRdata>) {
          w.name(v.target);
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          w.name(v.mname);
          w.name(v.rname);
          w.u32(v.serial);
          w.u32(v.refresh);
          w.u32(v.retry);
          w.u32(v.expire);
          w.u32(v.minimum);
        } else if constexpr (std::is_same_v<T, MxRdata>) {
          w.u16(v.preference);
          w.name(v.exchange);
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          for (const auto& s : v.strings) w.char_string(s);
        } else if constexpr (std::is_same_v<T, SrvRdata>) {
          w.u16(v.priority);
          w.u16(v.weight);
          w.u16(v.port);
          w.name(v.target, /*compress=*/false);  // RFC 2782
        } else if constexpr (std::is_same_v<T, OptRdata>) {
          for (const auto& opt : v.options) {
            w.u16(opt.code);
            w.u16(static_cast<std::uint16_t>(opt.data.size()));
            w.bytes(opt.data);
          }
        } else if constexpr (std::is_same_v<T, CaaRdata>) {
          w.u8(v.flags);
          w.char_string(v.tag);
          w.bytes({reinterpret_cast<const std::uint8_t*>(v.value.data()),
                   v.value.size()});
        } else if constexpr (std::is_same_v<T, RawRdata>) {
          w.bytes(v.data);
        }
      },
      rdata);
}

Rdata decode_rdata(WireReader& r, RRType type, std::size_t rdlength) {
  const std::size_t end = r.offset() + rdlength;
  auto check_end = [&](const char* what) {
    if (r.offset() != end) {
      throw WireError{std::string{"RDATA length mismatch in "} + what};
    }
  };
  switch (type) {
    case RRType::A: {
      if (rdlength != 4) throw WireError{"A RDATA must be 4 octets"};
      return ARdata{net::IpAddress{r.u32()}};
    }
    case RRType::AAAA: {
      if (rdlength != 16) throw WireError{"AAAA RDATA must be 16 octets"};
      AaaaRdata v;
      const auto raw = r.bytes(16);
      std::copy(raw.begin(), raw.end(), v.address.begin());
      return v;
    }
    case RRType::NS: {
      NsRdata v{r.name()};
      check_end("NS");
      return v;
    }
    case RRType::CNAME: {
      CnameRdata v{r.name()};
      check_end("CNAME");
      return v;
    }
    case RRType::PTR: {
      PtrRdata v{r.name()};
      check_end("PTR");
      return v;
    }
    case RRType::SOA: {
      SoaRdata v;
      v.mname = r.name();
      v.rname = r.name();
      v.serial = r.u32();
      v.refresh = r.u32();
      v.retry = r.u32();
      v.expire = r.u32();
      v.minimum = r.u32();
      check_end("SOA");
      return v;
    }
    case RRType::MX: {
      MxRdata v;
      v.preference = r.u16();
      v.exchange = r.name();
      check_end("MX");
      return v;
    }
    case RRType::TXT: {
      TxtRdata v;
      while (r.offset() < end) v.strings.push_back(r.char_string());
      check_end("TXT");
      return v;
    }
    case RRType::SRV: {
      SrvRdata v;
      v.priority = r.u16();
      v.weight = r.u16();
      v.port = r.u16();
      v.target = r.name();
      check_end("SRV");
      return v;
    }
    case RRType::OPT: {
      OptRdata v;
      while (r.offset() < end) {
        OptRdata::Option opt;
        opt.code = r.u16();
        const std::uint16_t len = r.u16();
        opt.data = r.bytes(len);
        v.options.push_back(std::move(opt));
      }
      check_end("OPT");
      return v;
    }
    case RRType::CAA: {
      CaaRdata v;
      v.flags = r.u8();
      v.tag = r.char_string();
      if (r.offset() > end) throw WireError{"CAA tag overruns RDATA"};
      const auto raw = r.bytes(end - r.offset());
      v.value.assign(raw.begin(), raw.end());
      return v;
    }
    default: {
      RawRdata v;
      v.type = static_cast<std::uint16_t>(type);
      v.data = r.bytes(rdlength);
      return v;
    }
  }
}

namespace {

std::string ipv6_to_string(const std::array<std::uint8_t, 16>& a) {
  char buf[48];
  char* p = buf;
  for (int i = 0; i < 16; i += 2) {
    const unsigned group = (unsigned{a[static_cast<std::size_t>(i)]} << 8) |
                           a[static_cast<std::size_t>(i + 1)];
    p += std::snprintf(p, 6, i == 0 ? "%x" : ":%x", group);
  }
  return buf;
}

}  // namespace

std::string rdata_to_string(const Rdata& rdata) {
  return std::visit(
      [](const auto& v) -> std::string {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          return v.address.to_string();
        } else if constexpr (std::is_same_v<T, AaaaRdata>) {
          return ipv6_to_string(v.address);
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          return v.nsdname.to_string();
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          return v.target.to_string();
        } else if constexpr (std::is_same_v<T, PtrRdata>) {
          return v.target.to_string();
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          return v.mname.to_string() + " " + v.rname.to_string() + " " +
                 std::to_string(v.serial) + " " + std::to_string(v.refresh) +
                 " " + std::to_string(v.retry) + " " +
                 std::to_string(v.expire) + " " + std::to_string(v.minimum);
        } else if constexpr (std::is_same_v<T, MxRdata>) {
          return std::to_string(v.preference) + " " + v.exchange.to_string();
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          std::string out;
          for (const auto& s : v.strings) {
            if (!out.empty()) out += ' ';
            out += '"' + s + '"';
          }
          return out;
        } else if constexpr (std::is_same_v<T, SrvRdata>) {
          return std::to_string(v.priority) + " " + std::to_string(v.weight) +
                 " " + std::to_string(v.port) + " " + v.target.to_string();
        } else if constexpr (std::is_same_v<T, OptRdata>) {
          return "OPT(" + std::to_string(v.options.size()) + " options)";
        } else if constexpr (std::is_same_v<T, CaaRdata>) {
          return std::to_string(v.flags) + " " + v.tag + " \"" + v.value +
                 "\"";
        } else {
          return "\\# " + std::to_string(v.data.size());
        }
      },
      rdata);
}

}  // namespace recwild::dns
