// Resource records (RFC 1035 §3.2.1) and record sets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dnscore/rdata.hpp"

namespace recwild::dns {

using Ttl = std::uint32_t;

struct ResourceRecord {
  Name name;
  RRClass rrclass = RRClass::IN;
  Ttl ttl = 0;
  Rdata rdata;

  [[nodiscard]] RRType type() const noexcept { return rdata_type(rdata); }

  /// "name TTL class type rdata" presentation line.
  [[nodiscard]] std::string to_string() const;

  bool operator==(const ResourceRecord&) const = default;
};

/// An RRset: all records sharing (name, class, type). DNS semantics operate
/// on RRsets — caches store and expire them as a unit (RFC 2181 §5).
struct RRset {
  Name name;
  RRClass rrclass = RRClass::IN;
  RRType type = RRType::A;
  Ttl ttl = 0;  // by RFC 2181 §5.2 all members share one TTL
  std::vector<Rdata> rdatas;

  [[nodiscard]] bool empty() const noexcept { return rdatas.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return rdatas.size(); }

  /// Expands back into individual records.
  [[nodiscard]] std::vector<ResourceRecord> to_records() const;
};

/// Groups records into RRsets, preserving first-seen order. Mixed TTLs
/// within a set are normalized to the minimum (conservative, RFC 2181).
std::vector<RRset> group_rrsets(const std::vector<ResourceRecord>& records);

}  // namespace recwild::dns
