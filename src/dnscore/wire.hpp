// Bounds-checked wire-format primitives (RFC 1035 §4.1).
//
// WireWriter appends big-endian integers, raw bytes, and domain names with
// RFC 1035 §4.1.4 compression pointers. WireReader is the inverse, with
// strict bounds checking and compression-loop protection — a parser fed by
// the (simulated) network must never read out of bounds or loop forever.
//
// The writer is allocation-free on the hot path: its byte storage and its
// compression table both come from the thread-local WireBufferPool, and
// the finished message leaves as a pooled net::WireBuffer that the
// Datagram carries through the network without a copy. Compression
// bookkeeping is an open-addressed table of buffer offsets verified by
// walking the already-written bytes — no per-suffix key strings (the old
// map-of-strings scheme allocated one heap string per label of every name
// written, which dominated the encode profile; it also conflated labels
// containing literal dots, a corner this scheme compares correctly).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "dnscore/name.hpp"
#include "net/wire_buffer.hpp"

namespace recwild::dns {

/// Thrown on malformed or truncated wire data.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class WireWriter {
 public:
  WireWriter();
  ~WireWriter();
  WireWriter(const WireWriter&) = delete;
  WireWriter& operator=(const WireWriter&) = delete;

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return buf_;
  }
  /// Finishes the message: the bytes move out as a pooled WireBuffer,
  /// ready to hand to Network::send without copying.
  [[nodiscard]] net::WireBuffer take() &&;
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void bytes(std::span<const std::uint8_t> b);

  /// Writes a name, using a compression pointer when a suffix of it was
  /// written before. Set `compress = false` inside RDATA types whose names
  /// must not be compressed (none of our supported types require that, but
  /// OPT option bodies are written raw).
  void name(const Name& n, bool compress = true);

  /// Character-string: length byte + up to 255 octets (RFC 1035 §3.3).
  void char_string(std::string_view s);

  /// Patches a previously-written u16 at `offset` (for RDLENGTH back-fill).
  void patch_u16(std::size_t offset, std::uint16_t v);

 private:
  /// Offset of the first occurrence of the suffix, or kNoOffset. `h` is the
  /// suffix's case-folded hash; matches are confirmed by walking the buffer.
  [[nodiscard]] std::uint16_t find_suffix(std::uint64_t h, const Name& n,
                                          std::size_t from) const;
  void insert_suffix(std::uint64_t h, std::uint16_t offset);
  void grow_table();
  /// Case-insensitive compare of the name starting at buffer `pos`
  /// (following pointers) against labels [from..) of `n`.
  [[nodiscard]] bool suffix_matches(std::size_t pos, const Name& n,
                                    std::size_t from) const;
  /// Recomputes the suffix hash of the name at buffer `pos` (rehash path).
  [[nodiscard]] std::uint64_t hash_at(std::size_t pos) const;

  std::vector<std::uint8_t> buf_;  // pooled; becomes the WireBuffer
  // Open-addressed set of name-start offsets (pooled scratch). A slot is
  // kNoOffset when empty; offsets are <= 0x3fff so the sentinel is safe.
  std::vector<std::uint16_t> table_;
  std::size_t table_entries_ = 0;
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t offset() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }

  void seek(std::size_t offset);

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::vector<std::uint8_t> bytes(std::size_t n);
  void skip(std::size_t n);

  /// Reads a (possibly compressed) name. Pointers may only point backwards;
  /// the total expanded length is capped at kMaxNameWireLength.
  Name name();

  std::string char_string();

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace recwild::dns
