// Bounds-checked wire-format primitives (RFC 1035 §4.1).
//
// WireWriter appends big-endian integers, raw bytes, and domain names with
// RFC 1035 §4.1.4 compression pointers. WireReader is the inverse, with
// strict bounds checking and compression-loop protection — a parser fed by
// the (simulated) network must never read out of bounds or loop forever.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "dnscore/name.hpp"

namespace recwild::dns {

/// Thrown on malformed or truncated wire data.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class WireWriter {
 public:
  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void bytes(std::span<const std::uint8_t> b);

  /// Writes a name, using a compression pointer when a suffix of it was
  /// written before. Set `compress = false` inside RDATA types whose names
  /// must not be compressed (none of our supported types require that, but
  /// OPT option bodies are written raw).
  void name(const Name& n, bool compress = true);

  /// Character-string: length byte + up to 255 octets (RFC 1035 §3.3).
  void char_string(std::string_view s);

  /// Patches a previously-written u16 at `offset` (for RDLENGTH back-fill).
  void patch_u16(std::size_t offset, std::uint16_t v);

 private:
  std::vector<std::uint8_t> buf_;
  // Canonical (lower-cased) suffix text -> offset of its first occurrence.
  std::unordered_map<std::string, std::uint16_t> suffix_offsets_;
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t offset() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }

  void seek(std::size_t offset);

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::vector<std::uint8_t> bytes(std::size_t n);
  void skip(std::size_t n);

  /// Reads a (possibly compressed) name. Pointers may only point backwards;
  /// the total expanded length is capped at kMaxNameWireLength.
  Name name();

  std::string char_string();

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace recwild::dns
