#include "dnscore/wire.hpp"

namespace recwild::dns {

namespace {

constexpr std::uint16_t kPointerMask = 0xc000;
constexpr std::size_t kMaxCompressionOffset = 0x3fff;

/// Canonical (lower-case) text of the suffix starting at label `from`.
std::string suffix_key(const Name& n, std::size_t from) {
  std::string key;
  for (std::size_t i = from; i < n.label_count(); ++i) {
    for (const char c : n.label(i)) key.push_back(Name::to_lower(c));
    key.push_back('.');
  }
  return key;
}

}  // namespace

void WireWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void WireWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void WireWriter::bytes(std::span<const std::uint8_t> b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void WireWriter::name(const Name& n, bool compress) {
  for (std::size_t i = 0; i < n.label_count(); ++i) {
    if (compress) {
      const std::string key = suffix_key(n, i);
      const auto it = suffix_offsets_.find(key);
      if (it != suffix_offsets_.end()) {
        u16(static_cast<std::uint16_t>(kPointerMask | it->second));
        return;
      }
      if (buf_.size() <= kMaxCompressionOffset) {
        suffix_offsets_.emplace(key,
                                static_cast<std::uint16_t>(buf_.size()));
      }
    }
    const std::string& label = n.label(i);
    u8(static_cast<std::uint8_t>(label.size()));
    bytes({reinterpret_cast<const std::uint8_t*>(label.data()),
           label.size()});
  }
  u8(0);  // root
}

void WireWriter::char_string(std::string_view s) {
  if (s.size() > 255) throw WireError{"char-string exceeds 255 octets"};
  u8(static_cast<std::uint8_t>(s.size()));
  bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

void WireWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buf_.size()) throw WireError{"patch_u16 out of range"};
  buf_[offset] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<std::uint8_t>(v);
}

void WireReader::require(std::size_t n) const {
  if (pos_ + n > data_.size()) throw WireError{"truncated message"};
}

void WireReader::seek(std::size_t offset) {
  if (offset > data_.size()) throw WireError{"seek out of range"};
  pos_ = offset;
}

std::uint8_t WireReader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t WireReader::u16() {
  require(2);
  const std::uint16_t v = (std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1];
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  require(4);
  const std::uint32_t v = (std::uint32_t{data_[pos_]} << 24) |
                          (std::uint32_t{data_[pos_ + 1]} << 16) |
                          (std::uint32_t{data_[pos_ + 2]} << 8) |
                          std::uint32_t{data_[pos_ + 3]};
  pos_ += 4;
  return v;
}

std::vector<std::uint8_t> WireReader::bytes(std::size_t n) {
  require(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(pos_),
                                data_.begin() + static_cast<long>(pos_ + n));
  pos_ += n;
  return out;
}

void WireReader::skip(std::size_t n) {
  require(n);
  pos_ += n;
}

Name WireReader::name() {
  std::vector<std::string> labels;
  std::size_t expanded = 1;  // root byte
  std::size_t pos = pos_;
  bool jumped = false;
  std::size_t min_pointer_target = data_.size();  // pointers go strictly back

  for (;;) {
    if (pos >= data_.size()) throw WireError{"truncated name"};
    const std::uint8_t len = data_[pos];
    if ((len & 0xc0) == 0xc0) {
      if (pos + 1 >= data_.size()) throw WireError{"truncated pointer"};
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | data_[pos + 1];
      // A pointer must reference an earlier occurrence: strictly before the
      // pointer itself, and each chained pointer strictly before the last.
      if (target >= pos || target >= min_pointer_target) {
        throw WireError{"compression pointer loop"};
      }
      min_pointer_target = target;
      if (!jumped) {
        pos_ = pos + 2;
        jumped = true;
      }
      pos = target;
      continue;
    }
    if ((len & 0xc0) != 0) throw WireError{"reserved label type"};
    if (len == 0) {
      if (!jumped) pos_ = pos + 1;
      break;
    }
    if (pos + 1 + len > data_.size()) throw WireError{"truncated label"};
    expanded += 1 + len;
    if (expanded > kMaxNameWireLength) throw WireError{"name too long"};
    labels.emplace_back(
        reinterpret_cast<const char*>(data_.data() + pos + 1), len);
    pos += 1 + len;
  }
  return Name::from_labels(std::move(labels));
}

std::string WireReader::char_string() {
  const std::uint8_t len = u8();
  require(len);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

}  // namespace recwild::dns
