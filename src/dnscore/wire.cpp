#include "dnscore/wire.hpp"

namespace recwild::dns {

namespace {

constexpr std::uint16_t kPointerMask = 0xc000;
constexpr std::size_t kMaxCompressionOffset = 0x3fff;
constexpr std::uint16_t kNoOffset = 0xffff;
constexpr std::size_t kInitialTableSlots = 64;  // power of two
// A name is at most 255 wire octets, so at most 127 labels.
constexpr std::size_t kMaxLabelsPerName = 128;

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
constexpr std::uint64_t kRootHash = 0x9e3779b97f4a7c15ull;

/// FNV-1a over the label's length byte and case-folded characters.
std::uint64_t label_hash(const std::uint8_t* p, std::size_t len) {
  std::uint64_t h = (kFnvBasis ^ len) * kFnvPrime;
  for (std::size_t i = 0; i < len; ++i) {
    h = (h ^ static_cast<std::uint8_t>(
                 Name::to_lower(static_cast<char>(p[i])))) *
        kFnvPrime;
  }
  return h;
}

/// Folds a label hash into the hash of the suffix to its right. Suffix
/// hashes are built back-to-front so one backward pass yields every
/// suffix of a name.
std::uint64_t fold_label(std::uint64_t suffix_h, std::uint64_t lh) {
  return (suffix_h ^ lh) * kFnvPrime;
}

}  // namespace

WireWriter::WireWriter()
    : buf_(net::WireBufferPool::acquire()),
      table_(net::WireBufferPool::acquire_scratch16()) {}

WireWriter::~WireWriter() {
  net::WireBufferPool::release(std::move(buf_));
  net::WireBufferPool::release_scratch16(std::move(table_));
}

net::WireBuffer WireWriter::take() && {
  net::WireBuffer out{std::move(buf_)};
  buf_.clear();  // moved-from: make the dtor's release well-defined
  return out;
}

void WireWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void WireWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void WireWriter::bytes(std::span<const std::uint8_t> b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

bool WireWriter::suffix_matches(std::size_t pos, const Name& n,
                                std::size_t from) const {
  // Walks the already-written bytes; every recorded offset points at a
  // completed name (name() publishes offsets only after the terminator or
  // pointer is written) whose pointers target earlier recorded names, so
  // the walk terminates without bounds checks.
  std::size_t j = from;
  for (;;) {
    std::uint8_t len = buf_[pos];
    while ((len & 0xc0) == 0xc0) {
      pos = (static_cast<std::size_t>(len & 0x3f) << 8) | buf_[pos + 1];
      len = buf_[pos];
    }
    if (len == 0) return j == n.label_count();
    if (j == n.label_count()) return false;
    const std::string& lab = n.label(j);
    if (lab.size() != len) return false;
    for (std::size_t k = 0; k < len; ++k) {
      if (Name::to_lower(static_cast<char>(buf_[pos + 1 + k])) !=
          Name::to_lower(lab[k])) {
        return false;
      }
    }
    pos += 1 + std::size_t{len};
    ++j;
  }
}

std::uint64_t WireWriter::hash_at(std::size_t pos) const {
  // Labels come off the buffer front-to-back but the suffix hash folds
  // back-to-front; stage positions on the stack, then fold in reverse.
  std::uint16_t lpos[kMaxLabelsPerName];
  std::uint8_t llen[kMaxLabelsPerName];
  std::size_t count = 0;
  for (;;) {
    std::uint8_t len = buf_[pos];
    while ((len & 0xc0) == 0xc0) {
      pos = (static_cast<std::size_t>(len & 0x3f) << 8) | buf_[pos + 1];
      len = buf_[pos];
    }
    if (len == 0) break;
    lpos[count] = static_cast<std::uint16_t>(pos);
    llen[count] = len;
    ++count;
    pos += 1 + std::size_t{len};
  }
  std::uint64_t h = kRootHash;
  for (std::size_t j = count; j-- > 0;) {
    h = fold_label(h, label_hash(buf_.data() + lpos[j] + 1, llen[j]));
  }
  return h;
}

std::uint16_t WireWriter::find_suffix(std::uint64_t h, const Name& n,
                                      std::size_t from) const {
  if (table_entries_ == 0) return kNoOffset;
  const std::size_t mask = table_.size() - 1;
  for (std::size_t idx = h & mask;; idx = (idx + 1) & mask) {
    const std::uint16_t off = table_[idx];
    if (off == kNoOffset) return kNoOffset;
    if (suffix_matches(off, n, from)) return off;
  }
}

void WireWriter::insert_suffix(std::uint64_t h, std::uint16_t offset) {
  if (table_.empty()) table_.assign(kInitialTableSlots, kNoOffset);
  if ((table_entries_ + 1) * 2 > table_.size()) grow_table();
  const std::size_t mask = table_.size() - 1;
  std::size_t idx = h & mask;
  while (table_[idx] != kNoOffset) idx = (idx + 1) & mask;
  table_[idx] = offset;
  ++table_entries_;
}

void WireWriter::grow_table() {
  std::vector<std::uint16_t> old = std::move(table_);
  table_ = net::WireBufferPool::acquire_scratch16();
  table_.assign(old.size() * 2, kNoOffset);
  const std::size_t mask = table_.size() - 1;
  for (const std::uint16_t off : old) {
    if (off == kNoOffset) continue;
    std::size_t idx = hash_at(off) & mask;
    while (table_[idx] != kNoOffset) idx = (idx + 1) & mask;
    table_[idx] = off;
  }
  net::WireBufferPool::release_scratch16(std::move(old));
}

void WireWriter::name(const Name& n, bool compress) {
  const std::size_t count = n.label_count();
  if (!compress || count == 0) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::string& label = n.label(i);
      u8(static_cast<std::uint8_t>(label.size()));
      bytes({reinterpret_cast<const std::uint8_t*>(label.data()),
             label.size()});
    }
    u8(0);  // root
    return;
  }
  // One backward pass yields the hash of every suffix of the name.
  std::uint64_t suffix_hash[kMaxLabelsPerName + 1];
  suffix_hash[count] = kRootHash;
  for (std::size_t i = count; i-- > 0;) {
    const std::string& lab = n.label(i);
    suffix_hash[i] = fold_label(
        suffix_hash[i + 1],
        label_hash(reinterpret_cast<const std::uint8_t*>(lab.data()),
                   lab.size()));
  }
  // Stage this name's (hash, offset) pairs locally and publish them only
  // once its terminator (root byte or pointer) is written. Table entries
  // must always point at completed names: find_suffix/grow_table walk the
  // buffer from each recorded offset, and an entry for the name currently
  // being written would send them past buf_.size(). Deferral is
  // byte-identical to eager insertion — suffixes of one name have distinct
  // label counts, so no suffix of the name being written can ever match a
  // find_suffix probe for a later suffix of the same name.
  std::uint64_t pending_hash[kMaxLabelsPerName];
  std::uint16_t pending_off[kMaxLabelsPerName];
  std::size_t pending = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint16_t off = find_suffix(suffix_hash[i], n, i);
    if (off != kNoOffset) {
      u16(static_cast<std::uint16_t>(kPointerMask | off));
      for (std::size_t j = 0; j < pending; ++j) {
        insert_suffix(pending_hash[j], pending_off[j]);
      }
      return;
    }
    if (buf_.size() <= kMaxCompressionOffset) {
      pending_hash[pending] = suffix_hash[i];
      pending_off[pending] = static_cast<std::uint16_t>(buf_.size());
      ++pending;
    }
    const std::string& label = n.label(i);
    u8(static_cast<std::uint8_t>(label.size()));
    bytes({reinterpret_cast<const std::uint8_t*>(label.data()),
           label.size()});
  }
  u8(0);  // root
  for (std::size_t j = 0; j < pending; ++j) {
    insert_suffix(pending_hash[j], pending_off[j]);
  }
}

void WireWriter::char_string(std::string_view s) {
  if (s.size() > 255) throw WireError{"char-string exceeds 255 octets"};
  u8(static_cast<std::uint8_t>(s.size()));
  bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

void WireWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buf_.size()) throw WireError{"patch_u16 out of range"};
  buf_[offset] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<std::uint8_t>(v);
}

void WireReader::require(std::size_t n) const {
  if (pos_ + n > data_.size()) throw WireError{"truncated message"};
}

void WireReader::seek(std::size_t offset) {
  if (offset > data_.size()) throw WireError{"seek out of range"};
  pos_ = offset;
}

std::uint8_t WireReader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t WireReader::u16() {
  require(2);
  const std::uint16_t v = (std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1];
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  require(4);
  const std::uint32_t v = (std::uint32_t{data_[pos_]} << 24) |
                          (std::uint32_t{data_[pos_ + 1]} << 16) |
                          (std::uint32_t{data_[pos_ + 2]} << 8) |
                          std::uint32_t{data_[pos_ + 3]};
  pos_ += 4;
  return v;
}

std::vector<std::uint8_t> WireReader::bytes(std::size_t n) {
  require(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(pos_),
                                data_.begin() + static_cast<long>(pos_ + n));
  pos_ += n;
  return out;
}

void WireReader::skip(std::size_t n) {
  require(n);
  pos_ += n;
}

Name WireReader::name() {
  std::vector<std::string> labels;
  std::size_t expanded = 1;  // root byte
  std::size_t pos = pos_;
  bool jumped = false;
  std::size_t min_pointer_target = data_.size();  // pointers go strictly back

  for (;;) {
    if (pos >= data_.size()) throw WireError{"truncated name"};
    const std::uint8_t len = data_[pos];
    if ((len & 0xc0) == 0xc0) {
      if (pos + 1 >= data_.size()) throw WireError{"truncated pointer"};
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | data_[pos + 1];
      // A pointer must reference an earlier occurrence: strictly before the
      // pointer itself, and each chained pointer strictly before the last.
      if (target >= pos || target >= min_pointer_target) {
        throw WireError{"compression pointer loop"};
      }
      min_pointer_target = target;
      if (!jumped) {
        pos_ = pos + 2;
        jumped = true;
      }
      pos = target;
      continue;
    }
    if ((len & 0xc0) != 0) throw WireError{"reserved label type"};
    if (len == 0) {
      if (!jumped) pos_ = pos + 1;
      break;
    }
    if (pos + 1 + len > data_.size()) throw WireError{"truncated label"};
    expanded += 1 + len;
    if (expanded > kMaxNameWireLength) throw WireError{"name too long"};
    labels.emplace_back(
        reinterpret_cast<const char*>(data_.data() + pos + 1), len);
    pos += 1 + len;
  }
  return Name::from_labels(std::move(labels));
}

std::string WireReader::char_string() {
  const std::uint8_t len = u8();
  require(len);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

}  // namespace recwild::dns
