// Domain names (RFC 1034 §3.1, RFC 1035 §2.3.1).
//
// A Name is an ordered list of labels, most-specific first, excluding the
// root label; the root itself is the empty list. Comparison and hashing are
// case-insensitive per RFC 1035 §2.3.3. Wire-format limits are enforced on
// construction: labels of 1..63 octets, total wire length <= 255.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace recwild::dns {

class Name {
 public:
  /// The root name (".").
  Name() = default;

  // Copies/moves must be spelled out because of the cached-hash atomic;
  // the cache travels with the labels (same labels, same hash).
  Name(const Name& o)
      : labels_(o.labels_),
        hash_cache_(o.hash_cache_.load(std::memory_order_relaxed)) {}
  Name(Name&& o) noexcept
      : labels_(std::move(o.labels_)),
        hash_cache_(o.hash_cache_.load(std::memory_order_relaxed)) {
    // The moved-from Name's labels are gone; drop its cached hash so a
    // reused moved-from Name recomputes instead of serving a stale value.
    o.hash_cache_.store(0, std::memory_order_relaxed);
  }
  Name& operator=(const Name& o) {
    labels_ = o.labels_;
    hash_cache_.store(o.hash_cache_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    return *this;
  }
  Name& operator=(Name&& o) noexcept {
    labels_ = std::move(o.labels_);
    hash_cache_.store(o.hash_cache_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    o.hash_cache_.store(0, std::memory_order_relaxed);
    return *this;
  }
  ~Name() = default;

  /// Parses presentation format: "www.example.nl" or "www.example.nl.".
  /// Accepts escaped dots ("\.") inside labels. Throws std::invalid_argument
  /// on empty labels, oversize labels/names, or other malformed input.
  static Name parse(std::string_view text);

  /// Builds from raw labels (no unescaping). Throws on limit violations.
  static Name from_labels(std::vector<std::string> labels);

  [[nodiscard]] bool is_root() const noexcept { return labels_.empty(); }
  [[nodiscard]] std::size_t label_count() const noexcept {
    return labels_.size();
  }
  [[nodiscard]] const std::string& label(std::size_t i) const {
    return labels_.at(i);
  }
  [[nodiscard]] std::span<const std::string> labels() const noexcept {
    return labels_;
  }

  /// Wire-format length in octets (sum of 1+len per label, +1 root byte).
  [[nodiscard]] std::size_t wire_length() const noexcept;

  /// Presentation format, always with trailing dot ("example.nl.", ".").
  [[nodiscard]] std::string to_string() const;

  /// Case-insensitive equality.
  [[nodiscard]] bool equals(const Name& o) const noexcept;
  bool operator==(const Name& o) const noexcept { return equals(o); }

  /// Canonical DNSSEC-style ordering (case-insensitive, right-to-left by
  /// label). Provides a strict weak order for sorted zone storage.
  [[nodiscard]] int compare(const Name& o) const noexcept;
  bool operator<(const Name& o) const noexcept { return compare(o) < 0; }

  /// True if *this is `ancestor` itself or a descendant of it.
  [[nodiscard]] bool is_subdomain_of(const Name& ancestor) const noexcept;

  /// Immediate parent; root's parent is root.
  [[nodiscard]] Name parent() const;

  /// Prepends a label: Name::parse("example.nl").prefixed("www").
  [[nodiscard]] Name prefixed(std::string_view label) const;

  /// Concatenation: relative.concat(origin) appends origin's labels.
  [[nodiscard]] Name concat(const Name& suffix) const;

  /// Case-insensitive hash consistent with equals().
  [[nodiscard]] std::size_t hash() const noexcept;

  /// Lower-cases ASCII; used for canonical comparisons.
  static char to_lower(char c) noexcept {
    return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  }

 private:
  void validate() const;

  std::vector<std::string> labels_;
  /// Lazily computed hash(); 0 = not yet computed (the computed value is
  /// remapped off 0). Relaxed atomic: labels_ never changes once a Name is
  /// visible, so concurrent shard threads at worst both compute the same
  /// value — no torn reads, no TSan findings, no locking.
  mutable std::atomic<std::size_t> hash_cache_{0};
};

inline constexpr std::size_t kMaxLabelLength = 63;
inline constexpr std::size_t kMaxNameWireLength = 255;

}  // namespace recwild::dns

template <>
struct std::hash<recwild::dns::Name> {
  std::size_t operator()(const recwild::dns::Name& n) const noexcept {
    return n.hash();
  }
};
