// Master-file (zone file) parser — the subset of RFC 1035 §5 that real
// zones use: $ORIGIN and $TTL directives, '@' for the origin, relative and
// absolute names, omitted name/TTL/class inheritance, ';' comments, quoted
// character-strings, and multi-line records in parentheses.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "dnscore/record.hpp"

namespace recwild::dns {

/// Thrown with a line number and explanation on malformed input.
class ZoneParseError : public std::runtime_error {
 public:
  ZoneParseError(std::size_t line, const std::string& what)
      : std::runtime_error{"zone parse error at line " +
                           std::to_string(line) + ": " + what},
        line_(line) {}
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

struct ZoneFileOptions {
  /// Initial origin; a $ORIGIN directive overrides it.
  Name origin;
  /// Default TTL when neither the record nor $TTL specifies one.
  Ttl default_ttl = 3600;
};

/// Parses zone text into records, in file order.
std::vector<ResourceRecord> parse_zone_text(std::string_view text,
                                            const ZoneFileOptions& options);

/// Renders records back to master-file text (absolute names, one per line).
std::string to_zone_text(const std::vector<ResourceRecord>& records);

}  // namespace recwild::dns
