// DNS message (RFC 1035 §4.1): header, question, answer/authority/additional
// sections, plus first-class EDNS0 (RFC 6891) so the OPT pseudo-record's
// packed fields don't leak into user code.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dnscore/record.hpp"

namespace recwild::dns {

struct Question {
  Name qname;
  RRType qtype = RRType::A;
  RRClass qclass = RRClass::IN;

  bool operator==(const Question&) const = default;
  [[nodiscard]] std::string to_string() const;
};

struct Header {
  std::uint16_t id = 0;
  bool qr = false;  // response flag
  Opcode opcode = Opcode::Query;
  bool aa = false;  // authoritative answer
  bool tc = false;  // truncated
  bool rd = false;  // recursion desired
  bool ra = false;  // recursion available
  Rcode rcode = Rcode::NoError;

  bool operator==(const Header&) const = default;
};

/// EDNS0 state carried by an OPT record in the additional section.
struct EdnsInfo {
  std::uint16_t udp_payload_size = 1232;
  std::uint8_t extended_rcode = 0;
  std::uint8_t version = 0;
  bool dnssec_ok = false;
  OptRdata options;

  bool operator==(const EdnsInfo&) const = default;
};

struct Message {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;  // excluding OPT
  std::optional<EdnsInfo> edns;

  /// Convenience: the first (and in practice only) question.
  [[nodiscard]] const Question& question() const { return questions.at(0); }

  /// Builds a query with a fresh question, RD clear (iterative by default —
  /// recursive-to-authoritative traffic is what this library simulates).
  static Message make_query(std::uint16_t id, Name qname, RRType qtype,
                            RRClass qclass = RRClass::IN);

  /// Builds a response skeleton echoing `query`'s id/question/opcode.
  static Message make_response(const Message& query);

  /// Multi-line dig-style rendering for logs and examples.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace recwild::dns
