// Pooled wire-format payload buffers — the datapath's allocation sink.
//
// Every simulated packet used to carry a freshly heap-allocated
// std::vector<uint8_t>; at campaign scale the allocator, not the
// simulation, dominated the profile. A WireBuffer is a move-only handle
// around byte storage drawn from a thread-local free list: encoders
// acquire one, the Datagram carries it through the network, and the
// destructor returns the storage to the pool of whichever thread drops
// the last reference. Shard workers each own a private pool (thread_local),
// so no locks and no cross-shard coupling — pool state can never leak into
// simulation behaviour, which keeps the engines' byte-identity guarantee
// intact by construction.
//
// The pool is capped (buffers kept and per-buffer capacity) so a burst of
// jumbo AXFR payloads cannot pin memory forever. WireBufferPool::set_enabled
// exists for benchmarks that want to measure the unpooled (pre-optimization)
// allocation profile; production code never calls it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace recwild::net {

/// Thread-local storage pool behind WireBuffer. All members are static;
/// state lives in per-thread free lists.
class WireBufferPool {
 public:
  struct Stats {
    std::uint64_t acquires = 0;  ///< Storage requests (pool hits + misses).
    std::uint64_t hits = 0;      ///< Requests served from the free list.
    std::uint64_t releases = 0;  ///< Buffers returned to the free list.
  };

  /// Byte storage for a new buffer: reused from the free list when
  /// possible, freshly allocated otherwise. Always returned empty.
  static std::vector<std::uint8_t> acquire();
  /// Returns storage to this thread's free list (or frees it when the
  /// list is full, the capacity is outsized, or pooling is disabled).
  static void release(std::vector<std::uint8_t>&& storage) noexcept;

  /// Scratch uint16 storage for encoder bookkeeping (compression-offset
  /// tables); same pooling discipline as the byte buffers.
  static std::vector<std::uint16_t> acquire_scratch16();
  static void release_scratch16(std::vector<std::uint16_t>&& s) noexcept;

  /// Benchmark hook: with pooling off, acquire/release degenerate to plain
  /// allocate/free, reproducing the pre-pool allocation profile.
  static void set_enabled(bool enabled) noexcept;
  [[nodiscard]] static bool enabled() noexcept;

  /// This thread's counters (benchmark/diagnostic surface; deliberately
  /// NOT exported through obs::MetricRegistry — hit/miss patterns depend
  /// on shard layout and would break cross-shard snapshot identity).
  [[nodiscard]] static Stats stats() noexcept;
  static void reset_stats() noexcept;
  /// Drops every pooled buffer on this thread (tests/benchmarks).
  static void clear() noexcept;
};

/// Move-only handle to one wire payload. Storage comes from (and returns
/// to) WireBufferPool; adopting a plain vector is also supported so tests
/// can hand-craft packets.
class WireBuffer {
 public:
  /// Empty buffer with no storage; first write via bytes() allocates.
  WireBuffer() noexcept = default;

  /// Adopts existing bytes (hand-crafted packets, decode scratch). The
  /// storage joins the pool when the buffer dies.
  WireBuffer(std::vector<std::uint8_t> bytes) noexcept  // NOLINT(*-explicit-*)
      : buf_(std::move(bytes)) {}

  /// Literal payloads in tests: `net.send(..., {1, 2, 3})`.
  WireBuffer(std::initializer_list<std::uint8_t> il) : buf_(il) {}

  /// A buffer backed by pooled storage, sized 0.
  [[nodiscard]] static WireBuffer acquire() {
    return WireBuffer{WireBufferPool::acquire()};
  }

  WireBuffer(WireBuffer&& o) noexcept : buf_(std::move(o.buf_)) {
    o.buf_.clear();
  }
  WireBuffer& operator=(WireBuffer&& o) noexcept {
    if (this != &o) {
      WireBufferPool::release(std::move(buf_));
      buf_ = std::move(o.buf_);
      o.buf_.clear();
    }
    return *this;
  }
  WireBuffer(const WireBuffer&) = delete;
  WireBuffer& operator=(const WireBuffer&) = delete;

  ~WireBuffer() { WireBufferPool::release(std::move(buf_)); }

  [[nodiscard]] const std::uint8_t* data() const noexcept {
    return buf_.data();
  }
  [[nodiscard]] std::uint8_t* data() noexcept { return buf_.data(); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] bool empty() const noexcept { return buf_.empty(); }

  std::uint8_t& operator[](std::size_t i) noexcept { return buf_[i]; }
  const std::uint8_t& operator[](std::size_t i) const noexcept {
    return buf_[i];
  }

  [[nodiscard]] std::span<const std::uint8_t> span() const noexcept {
    return buf_;
  }
  operator std::span<const std::uint8_t>() const noexcept {  // NOLINT
    return buf_;
  }

  /// Direct storage access for writers and tests that resize/patch bytes.
  [[nodiscard]] std::vector<std::uint8_t>& bytes() noexcept { return buf_; }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }

  /// Deep copy into fresh pooled storage (retransmit paths).
  [[nodiscard]] WireBuffer clone() const {
    WireBuffer c = acquire();
    c.buf_.assign(buf_.begin(), buf_.end());
    return c;
  }

  /// Moves the bytes out, leaving the buffer empty (fixture writers).
  [[nodiscard]] std::vector<std::uint8_t> release() && {
    return std::move(buf_);
  }

  friend bool operator==(const WireBuffer& a, const WireBuffer& b) noexcept {
    return a.buf_ == b.buf_;
  }
  friend bool operator==(const WireBuffer& a,
                         const std::vector<std::uint8_t>& b) noexcept {
    return a.buf_ == b;
  }

 private:
  std::vector<std::uint8_t> buf_;
};

}  // namespace recwild::net
