// Event queue for the discrete-event simulation kernel.
//
// Events fire in (time, sequence) order: ties break by scheduling order so
// runs are fully deterministic. Events can be cancelled through the handle
// returned by push().
//
// Storage is a slab of event slots plus a flat 4-ary heap of (time, seq)
// keys — no per-event hash lookups on the hot path. Handles carry a slot
// generation, so cancel() is O(1): it retires the slot and the stale heap
// entry is skipped when it surfaces. A retired slot can be reused
// immediately; its bumped generation makes any outstanding handle or heap
// entry for the old event harmless.
#pragma once

#include <cstdint>
#include <vector>

#include "net/event_fn.hpp"
#include "net/time.hpp"

namespace recwild::net {

/// Opaque cancellation handle: (generation << 32) | slot. Live events always
/// have an odd generation, so the zero-initialized "no event" sentinel that
/// callers rely on never aliases a live event.
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at`. Returns a handle for cancel().
  EventId push(SimTime at, EventFn fn);

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  void cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Time of the earliest pending event; drops stale heap entries off the
  /// front, hence non-const. Precondition: !empty().
  [[nodiscard]] SimTime next_time();

  /// Pops the earliest live event.
  /// Precondition: !empty().
  struct Fired {
    SimTime at;
    EventFn fn;
  };
  Fired pop();

 private:
  struct Slot {
    EventFn fn;
    /// Odd while the slot holds a live event, even while free/retired.
    std::uint32_t gen = 0;
    /// Next slot in the free list (kNoSlot terminates).
    std::uint32_t next_free = kNoSlot;
  };

  /// Heap key; a stale entry is one whose generation no longer matches its
  /// slot's.
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;

    [[nodiscard]] bool before(const Entry& o) const noexcept {
      if (at != o.at) return at < o.at;
      return seq < o.seq;
    }
  };

  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  [[nodiscard]] bool live(const Entry& e) const noexcept {
    return slots_[e.slot].gen == e.gen;
  }

  /// Pops heap entries whose events were cancelled, exposing a live head.
  void drop_stale_head();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace recwild::net
