// Event queue for the discrete-event simulation kernel.
//
// Events fire in (time, sequence) order: ties break by scheduling order so
// runs are fully deterministic. Events can be cancelled through the handle
// returned by push() — cancellation is lazy (the callback entry is erased and
// the heap slot skipped on pop), keeping push/pop at O(log n).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>

#include "net/time.hpp"

namespace recwild::net {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at`. Returns a handle for cancel().
  EventId push(SimTime at, EventFn fn);

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  void cancel(EventId id);

  [[nodiscard]] bool empty() const { return callbacks_.empty(); }
  [[nodiscard]] std::size_t size() const { return callbacks_.size(); }

  /// Time of the earliest pending event; only valid when !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Pops the earliest live event.
  /// Precondition: !empty().
  struct Fired {
    SimTime at;
    EventFn fn;
  };
  Fired pop();

 private:
  struct Entry {
    SimTime at;
    EventId id;
    // std::priority_queue is a max-heap; invert to get earliest-first, with
    // lower id (earlier scheduling) winning ties.
    bool operator<(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return id > o.id;
    }
  };

  /// Drops heap entries whose callbacks were cancelled.
  void skip_cancelled();

  std::priority_queue<Entry> heap_;
  std::unordered_map<EventId, EventFn> callbacks_;
  EventId next_id_ = 1;
};

}  // namespace recwild::net
