#include "net/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace recwild::net {

namespace {

constexpr EventId make_id(std::uint32_t slot, std::uint32_t gen) noexcept {
  return (EventId{gen} << 32) | slot;
}

constexpr std::uint32_t id_slot(EventId id) noexcept {
  return static_cast<std::uint32_t>(id);
}

constexpr std::uint32_t id_gen(EventId id) noexcept {
  return static_cast<std::uint32_t>(id >> 32);
}

}  // namespace

EventId EventQueue::push(SimTime at, EventFn fn) {
  std::uint32_t slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  ++s.gen;  // even -> odd: live
  s.fn = std::move(fn);

  heap_.push_back(Entry{at, next_seq_++, slot, s.gen});
  sift_up(heap_.size() - 1);
  ++live_;
  return make_id(slot, s.gen);
}

void EventQueue::cancel(EventId id) {
  const std::uint32_t slot = id_slot(id);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (s.gen != id_gen(id) || (s.gen & 1u) == 0) return;  // fired or stale
  ++s.gen;  // odd -> even: retired; the heap entry is now stale
  s.fn = nullptr;
  s.next_free = free_head_;
  free_head_ = slot;
  --live_;
}

void EventQueue::drop_stale_head() {
  while (!heap_.empty() && !live(heap_.front())) {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

SimTime EventQueue::next_time() {
  drop_stale_head();
  assert(!heap_.empty());
  return heap_.front().at;
}

EventQueue::Fired EventQueue::pop() {
  drop_stale_head();
  assert(!heap_.empty());
  const Entry head = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);

  Slot& s = slots_[head.slot];
  Fired fired{head.at, std::move(s.fn)};
  ++s.gen;  // odd -> even: fired
  s.fn = nullptr;
  s.next_free = free_head_;
  free_head_ = head.slot;
  --live_;
  return fired;
}

// 4-ary heap: half the depth of a binary heap and the four children sit in
// one cache line of Entries, so sift_down touches far less memory per pop.
// Pop ORDER is unchanged — (time, seq) is a strict total order (seq is
// unique), and any heap shape surfaces that order's minimum first.

void EventQueue::sift_up(std::size_t i) {
  Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!e.before(heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  Entry e = heap_[i];
  while (true) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (heap_[c].before(heap_[best])) best = c;
    }
    if (!heap_[best].before(e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

}  // namespace recwild::net
