#include "net/event_queue.hpp"

#include <cassert>
#include <utility>

namespace recwild::net {

EventId EventQueue::push(SimTime at, EventFn fn) {
  const EventId id = next_id_++;
  callbacks_.emplace(id, std::move(fn));
  heap_.push(Entry{at, id});
  return id;
}

void EventQueue::cancel(EventId id) { callbacks_.erase(id); }

void EventQueue::skip_cancelled() {
  while (!heap_.empty() && !callbacks_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  // skip_cancelled() is non-const; do the equivalent scan here. The heap may
  // hold dead entries in front, so peel them off via a const_cast-free copy
  // of the logic: cancelled entries are cheap to drop eagerly instead.
  auto* self = const_cast<EventQueue*>(this);
  self->skip_cancelled();
  assert(!heap_.empty());
  return heap_.top().at;
}

EventQueue::Fired EventQueue::pop() {
  skip_cancelled();
  assert(!heap_.empty());
  const Entry e = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(e.id);
  assert(it != callbacks_.end());
  Fired fired{e.at, std::move(it->second)};
  callbacks_.erase(it);
  return fired;
}

}  // namespace recwild::net
