/// \file
/// \brief Simulation facade: clock + event queue + root RNG + observability.
///
/// Single-threaded discrete-event loop. Components schedule callbacks with
/// after()/at(); run() processes events in deterministic (time, seq) order.
/// All randomness forks off the root Rng so a single seed reproduces a run.
///
/// The simulation also owns the run's observability state: a
/// obs::MetricRegistry every subsystem registers its metrics in, and a
/// obs::DecisionTrace (off by default) for structured decision events.
/// Event-loop accounting (kSimEvents*) is kept in plain integers on the
/// scheduling hot path and folded into the registry by sync_obs(), which
/// run()/run_until() invoke on exit — so the loop pays no metric cost
/// per event, yet every snapshot taken after a run is complete.
#pragma once

#include <cstdint>

#include "net/event_queue.hpp"
#include "net/time.hpp"
#include "obs/decision_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "stats/rng.hpp"

namespace recwild::net {

class Simulation {
 public:
  /// Creates a simulation whose root RNG is seeded with `seed`.
  explicit Simulation(std::uint64_t seed = 1)
      : rng_(seed),
        scheduled_(&metrics_.counter(obs::names::kSimEventsScheduled)),
        cancelled_(&metrics_.counter(obs::names::kSimEventsCancelled)),
        processed_(&metrics_.counter(obs::names::kSimEventsProcessed)),
        peak_pending_(&metrics_.gauge(obs::names::kSimQueuePeakPending)) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated instant.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()).
  EventId at(SimTime t, EventFn fn) {
    const EventId id = queue_.push(t, std::move(fn));
    ++pushes_;
    if (queue_.size() > peak_raw_) peak_raw_ = queue_.size();
    return id;
  }

  /// Schedules `fn` after relative delay `d` (clamped to >= 0).
  EventId after(Duration d, EventFn fn) {
    if (d < Duration::zero()) d = Duration::zero();
    return at(now_ + d, std::move(fn));
  }

  /// Cancels a scheduled event (no-op if it already fired).
  void cancel(EventId id) {
    queue_.cancel(id);
    ++cancels_;
  }

  /// Runs until the event queue drains.
  void run();

  /// Runs all events scheduled at or before `t`; leaves the clock at `t`.
  void run_until(SimTime t);

  /// Folds the event-loop tallies (scheduled/cancelled/processed events,
  /// peak queue depth) into the metric registry, stamped with now().
  /// Idempotent; called automatically when run()/run_until() return. Call
  /// it manually only before snapshotting a simulation that has scheduled
  /// work but not run yet (e.g. a shard baseline taken after world build).
  void sync_obs();

  /// Number of events processed so far.
  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }
  /// Number of events currently pending.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Root random stream; fork() identity-keyed children, never draw shared.
  [[nodiscard]] stats::Rng& rng() noexcept { return rng_; }

  /// This run's metric registry (always on; recording is an integer add).
  /// Event-loop counters lag until sync_obs() — see sync_obs().
  [[nodiscard]] obs::MetricRegistry& metrics() noexcept { return metrics_; }
  /// \copydoc metrics()
  [[nodiscard]] const obs::MetricRegistry& metrics() const noexcept {
    return metrics_;
  }
  /// This run's decision-trace sink (disabled unless set_enabled(true)).
  [[nodiscard]] obs::DecisionTrace& trace() noexcept { return trace_; }
  /// \copydoc trace()
  [[nodiscard]] const obs::DecisionTrace& trace() const noexcept {
    return trace_;
  }

 private:
  SimTime now_ = SimTime::origin();
  EventQueue queue_;
  stats::Rng rng_;
  std::uint64_t steps_ = 0;
  obs::MetricRegistry metrics_;
  obs::DecisionTrace trace_;
  // Hot-path tallies; sync_obs() folds the unsynced remainder into the
  // registry so merges (which add into the counters) stay consistent.
  std::uint64_t pushes_ = 0;
  std::uint64_t cancels_ = 0;
  std::size_t peak_raw_ = 0;
  std::uint64_t synced_pushes_ = 0;
  std::uint64_t synced_cancels_ = 0;
  std::uint64_t synced_steps_ = 0;
  // Cached handles; registry storage is node-based so these stay valid.
  obs::Counter* scheduled_;
  obs::Counter* cancelled_;
  obs::Counter* processed_;
  obs::Gauge* peak_pending_;
};

}  // namespace recwild::net
