// Simulation facade: clock + event queue + root RNG.
//
// Single-threaded discrete-event loop. Components schedule callbacks with
// after()/at(); run() processes events in deterministic (time, seq) order.
// All randomness forks off the root Rng so a single seed reproduces a run.
#pragma once

#include <cstdint>

#include "net/event_queue.hpp"
#include "net/time.hpp"
#include "stats/rng.hpp"

namespace recwild::net {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()).
  EventId at(SimTime t, EventFn fn) { return queue_.push(t, std::move(fn)); }

  /// Schedules `fn` after relative delay `d` (clamped to >= 0).
  EventId after(Duration d, EventFn fn) {
    if (d < Duration::zero()) d = Duration::zero();
    return queue_.push(now_ + d, std::move(fn));
  }

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the event queue drains.
  void run();

  /// Runs all events scheduled at or before `t`; leaves the clock at `t`.
  void run_until(SimTime t);

  /// Number of events processed so far.
  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  [[nodiscard]] stats::Rng& rng() noexcept { return rng_; }

 private:
  SimTime now_ = SimTime::origin();
  EventQueue queue_;
  stats::Rng rng_;
  std::uint64_t steps_ = 0;
};

}  // namespace recwild::net
