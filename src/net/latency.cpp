#include "net/latency.hpp"

#include <algorithm>
#include <cmath>

namespace recwild::net {

namespace {

std::uint64_t pair_key(std::uint32_t a, std::uint32_t b) noexcept {
  if (a > b) std::swap(a, b);
  return (std::uint64_t{a} << 32) | b;
}

}  // namespace

const LatencyModel::PathState& LatencyModel::path(std::uint32_t node_a,
                                                  std::uint32_t node_b) {
  const std::uint64_t key = pair_key(node_a, node_b);
  const auto it = paths_.find(key);
  if (it != paths_.end()) return it->second;
  stats::Rng path_rng = rng_.fork(key);
  PathState st;
  st.stretch = path_rng.lognormal(params_.stretch_mu, params_.stretch_sigma);
  st.last_mile_ms =
      path_rng.lognormal(params_.last_mile_mu, params_.last_mile_sigma);
  return paths_.emplace(key, st).first->second;
}

Duration LatencyModel::base_rtt(std::uint32_t node_a, GeoPoint a,
                                std::uint32_t node_b, GeoPoint b) {
  const PathState& st = path(node_a, node_b);
  const double km = great_circle_km(a, b);
  const double rtt_ms =
      st.last_mile_ms + 2.0 * km * st.stretch / params_.fiber_km_per_ms;
  return Duration::millis(rtt_ms);
}

Duration LatencyModel::one_way(std::uint32_t from, GeoPoint a,
                               std::uint32_t to, GeoPoint b,
                               stats::Rng& packet_rng) {
  const Duration rtt = base_rtt(from, a, to, b);
  const double jitter_ms =
      std::max(params_.jitter_floor_ms,
               std::abs(packet_rng.normal(0.0, params_.jitter_frac *
                                                   rtt.ms())));
  return Duration::millis(rtt.ms() / 2.0 + jitter_ms);
}

bool LatencyModel::drop(stats::Rng& packet_rng) {
  return packet_rng.chance(params_.loss_rate);
}

}  // namespace recwild::net
