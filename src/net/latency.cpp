#include "net/latency.hpp"

#include <algorithm>
#include <cmath>

namespace recwild::net {

namespace {

std::uint64_t pair_key(std::uint32_t a, std::uint32_t b) noexcept {
  if (a > b) std::swap(a, b);
  return (std::uint64_t{a} << 32) | b;
}

/// SplitMix64 finalizer for table probing only; path values come from the
/// RNG forked by key, never from slot positions.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

LatencyModel::PathState& LatencyModel::path(std::uint32_t node_a,
                                            std::uint32_t node_b) {
  const std::uint64_t key = pair_key(node_a, node_b);
  if (paths_.empty()) paths_.resize(1024);
  std::size_t mask = paths_.size() - 1;
  std::size_t idx = mix64(key) & mask;
  while (paths_[idx].key != kEmptyPathKey) {
    if (paths_[idx].key == key) return paths_[idx].state;
    idx = (idx + 1) & mask;
  }
  if ((path_count_ + 1) * 4 > paths_.size() * 3) {
    grow_path_table();
    mask = paths_.size() - 1;
    idx = mix64(key) & mask;
    while (paths_[idx].key != kEmptyPathKey) idx = (idx + 1) & mask;
  }
  stats::Rng path_rng = rng_.fork(key);
  PathSlot& slot = paths_[idx];
  slot.key = key;
  slot.state.stretch =
      path_rng.lognormal(params_.stretch_mu, params_.stretch_sigma);
  slot.state.last_mile_ms =
      path_rng.lognormal(params_.last_mile_mu, params_.last_mile_sigma);
  ++path_count_;
  return slot.state;
}

void LatencyModel::grow_path_table() {
  std::vector<PathSlot> old = std::move(paths_);
  paths_.assign(old.size() * 2, PathSlot{});
  const std::size_t mask = paths_.size() - 1;
  for (PathSlot& s : old) {
    if (s.key == kEmptyPathKey) continue;
    std::size_t idx = mix64(s.key) & mask;
    while (paths_[idx].key != kEmptyPathKey) idx = (idx + 1) & mask;
    paths_[idx] = s;
  }
}

Duration LatencyModel::base_rtt(std::uint32_t node_a, GeoPoint a,
                                std::uint32_t node_b, GeoPoint b) {
  PathState& st = path(node_a, node_b);
  if (st.rtt_ms < 0.0) {
    const double km = great_circle_km(a, b);
    st.rtt_ms =
        st.last_mile_ms + 2.0 * km * st.stretch / params_.fiber_km_per_ms;
  }
  return Duration::millis(st.rtt_ms);
}

Duration LatencyModel::one_way(std::uint32_t from, GeoPoint a,
                               std::uint32_t to, GeoPoint b,
                               stats::Rng& packet_rng) {
  const Duration rtt = base_rtt(from, a, to, b);
  const double jitter_ms =
      std::max(params_.jitter_floor_ms,
               std::abs(packet_rng.normal(0.0, params_.jitter_frac *
                                                   rtt.ms())));
  return Duration::millis(rtt.ms() / 2.0 + jitter_ms);
}

bool LatencyModel::drop(stats::Rng& packet_rng) {
  return packet_rng.chance(params_.loss_rate);
}

}  // namespace recwild::net
