#include "net/address.hpp"

#include <cstdio>

namespace recwild::net {

std::string IpAddress::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (bits_ >> 24) & 0xff,
                (bits_ >> 16) & 0xff, (bits_ >> 8) & 0xff, bits_ & 0xff);
  return buf;
}

std::string Endpoint::to_string() const {
  return addr.to_string() + ":" + std::to_string(port);
}

std::array<std::uint8_t, 16> IpAddress::to_mapped_ipv6() const noexcept {
  std::array<std::uint8_t, 16> out{};
  out[10] = 0xff;
  out[11] = 0xff;
  out[12] = static_cast<std::uint8_t>(bits_ >> 24);
  out[13] = static_cast<std::uint8_t>(bits_ >> 16);
  out[14] = static_cast<std::uint8_t>(bits_ >> 8);
  out[15] = static_cast<std::uint8_t>(bits_);
  return out;
}

std::optional<IpAddress> IpAddress::from_mapped_ipv6(
    const std::array<std::uint8_t, 16>& v6) noexcept {
  for (std::size_t i = 0; i < 10; ++i) {
    if (v6[i] != 0) return std::nullopt;
  }
  if (v6[10] != 0xff || v6[11] != 0xff) return std::nullopt;
  return IpAddress{(std::uint32_t{v6[12]} << 24) |
                   (std::uint32_t{v6[13]} << 16) |
                   (std::uint32_t{v6[14]} << 8) | std::uint32_t{v6[15]}};
}

}  // namespace recwild::net
