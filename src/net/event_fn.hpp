// Move-only callable for simulation events.
//
// Two reasons this exists instead of std::function<void()>:
//   * Event callbacks now carry move-only state — a Datagram's pooled
//     WireBuffer payload moves from the encoder into the deferred delivery
//     lambda without a copy, and std::function requires copyable targets.
//   * Delivery/timeout lambdas (~90 bytes of captures) blow past
//     std::function's small-buffer, so every scheduled event used to heap-
//     allocate. The inline buffer here is sized for the datapath's largest
//     hot-path lambda, making event scheduling allocation-free.
//
// Only what the event queue needs is implemented: construct from a
// callable, move, call, null-check, null-assign. Dispatch is a static ops
// table (one per callable type), not a virtual base, so inline targets
// need no heap at all.
#pragma once

#include <concepts>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace recwild::net {

class EventFn {
  // Sized for Network's deferred-delivery lambda (handler shared_ptr +
  // Datagram + node ids) with headroom; bigger or throwing-move callables
  // fall back to the heap transparently.
  static constexpr std::size_t kInlineSize = 112;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  template <typename F>
  static constexpr bool kStoredInline =
      sizeof(F) <= kInlineSize && alignof(F) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<F>;

 public:
  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(*-explicit-*)

  template <typename F>
    requires(!std::same_as<std::remove_cvref_t<F>, EventFn> &&
             std::invocable<std::remove_cvref_t<F>&>)
  EventFn(F&& f) {  // NOLINT(*-explicit-*)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (kStoredInline<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_))
          Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& o) noexcept { steal(o); }
  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      steal(o);
    }
    return *this;
  }
  EventFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  /// Shallow-const like std::function: calling through a const EventFn
  /// invokes the (possibly mutable) target.
  void operator()() const { ops_->call(const_cast<std::byte*>(storage_)); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*call)(void* storage);
    /// Move-constructs into raw `dst` storage and destroys the source.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* s) { (*static_cast<Fn*>(s))(); },
      [](void* dst, void* src) noexcept {
        Fn* f = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*f));
        f->~Fn();
      },
      [](void* s) noexcept { static_cast<Fn*>(s)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* s) { (**static_cast<Fn**>(s))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* s) noexcept { delete *static_cast<Fn**>(s); },
  };

  void steal(EventFn& o) noexcept {
    if (o.ops_ != nullptr) {
      o.ops_->relocate(storage_, o.storage_);
      ops_ = o.ops_;
      o.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(kInlineAlign) std::byte storage_[kInlineSize];
};

}  // namespace recwild::net
