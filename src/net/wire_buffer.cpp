#include "net/wire_buffer.hpp"

namespace recwild::net {

namespace {

// Caps keep the per-thread pools from hoarding: a campaign shard touches a
// handful of packets at once, and anything bigger than a truncation-limit
// response (jumbo AXFR payloads) is cheaper to reallocate than to pin.
constexpr std::size_t kMaxPooledBuffers = 64;
constexpr std::size_t kMaxPooledCapacity = 1 << 16;
constexpr std::size_t kInitialReserve = 512;  // covers typical DNS messages

struct ThreadPool {
  std::vector<std::vector<std::uint8_t>> free8;
  std::vector<std::vector<std::uint16_t>> free16;
  WireBufferPool::Stats stats;
  bool enabled = true;
};

ThreadPool& pool() {
  thread_local ThreadPool tp;
  return tp;
}

}  // namespace

std::vector<std::uint8_t> WireBufferPool::acquire() {
  ThreadPool& tp = pool();
  ++tp.stats.acquires;
  if (tp.enabled && !tp.free8.empty()) {
    ++tp.stats.hits;
    std::vector<std::uint8_t> out = std::move(tp.free8.back());
    tp.free8.pop_back();
    out.clear();
    return out;
  }
  std::vector<std::uint8_t> out;
  out.reserve(kInitialReserve);
  return out;
}

void WireBufferPool::release(std::vector<std::uint8_t>&& storage) noexcept {
  ThreadPool& tp = pool();
  if (!tp.enabled || storage.capacity() == 0 ||
      storage.capacity() > kMaxPooledCapacity ||
      tp.free8.size() >= kMaxPooledBuffers) {
    std::vector<std::uint8_t>{std::move(storage)};  // free now
    return;
  }
  ++tp.stats.releases;
  tp.free8.push_back(std::move(storage));
}

std::vector<std::uint16_t> WireBufferPool::acquire_scratch16() {
  ThreadPool& tp = pool();
  if (tp.enabled && !tp.free16.empty()) {
    std::vector<std::uint16_t> out = std::move(tp.free16.back());
    tp.free16.pop_back();
    out.clear();
    return out;
  }
  std::vector<std::uint16_t> out;
  out.reserve(64);
  return out;
}

void WireBufferPool::release_scratch16(
    std::vector<std::uint16_t>&& s) noexcept {
  ThreadPool& tp = pool();
  if (!tp.enabled || s.capacity() == 0 ||
      tp.free16.size() >= kMaxPooledBuffers) {
    std::vector<std::uint16_t>{std::move(s)};
    return;
  }
  tp.free16.push_back(std::move(s));
}

void WireBufferPool::set_enabled(bool enabled) noexcept {
  pool().enabled = enabled;
}

bool WireBufferPool::enabled() noexcept { return pool().enabled; }

WireBufferPool::Stats WireBufferPool::stats() noexcept {
  return pool().stats;
}

void WireBufferPool::reset_stats() noexcept { pool().stats = Stats{}; }

void WireBufferPool::clear() noexcept {
  pool().free8.clear();
  pool().free16.clear();
}

}  // namespace recwild::net
