// IPv4-style addressing for the simulated network.
//
// Addresses are opaque 32-bit identities: the paper's recursives key their
// infrastructure caches by authoritative IP address, and anycast means "one
// address, many nodes", so addresses must be first-class and hashable.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace recwild::net {

class IpAddress {
 public:
  constexpr IpAddress() = default;
  constexpr explicit IpAddress(std::uint32_t bits) : bits_(bits) {}
  constexpr static IpAddress from_octets(std::uint8_t a, std::uint8_t b,
                                         std::uint8_t c, std::uint8_t d) {
    return IpAddress{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                     (std::uint32_t{c} << 8) | std::uint32_t{d}};
  }

  [[nodiscard]] constexpr std::uint32_t bits() const noexcept { return bits_; }
  [[nodiscard]] constexpr bool is_unspecified() const noexcept {
    return bits_ == 0;
  }
  [[nodiscard]] std::string to_string() const;

  /// The simulated network is address-family agnostic; IPv6 endpoints are
  /// represented as IPv4-mapped IPv6 addresses (::ffff:a.b.c.d, RFC 4291
  /// §2.5.5.2) whose low 32 bits are the simulation address. These helpers
  /// bridge to the 16-byte form used in AAAA RDATA.
  [[nodiscard]] std::array<std::uint8_t, 16> to_mapped_ipv6() const noexcept;
  static std::optional<IpAddress> from_mapped_ipv6(
      const std::array<std::uint8_t, 16>& v6) noexcept;

  constexpr auto operator<=>(const IpAddress&) const = default;

 private:
  std::uint32_t bits_ = 0;
};

using Port = std::uint16_t;
inline constexpr Port kDnsPort = 53;

struct Endpoint {
  IpAddress addr;
  Port port = 0;

  constexpr auto operator<=>(const Endpoint&) const = default;
  [[nodiscard]] std::string to_string() const;
};

}  // namespace recwild::net

template <>
struct std::hash<recwild::net::IpAddress> {
  std::size_t operator()(const recwild::net::IpAddress& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.bits());
  }
};

template <>
struct std::hash<recwild::net::Endpoint> {
  std::size_t operator()(const recwild::net::Endpoint& e) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{e.addr.bits()} << 16) | e.port);
  }
};
