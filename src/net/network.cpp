#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <utility>

namespace recwild::net {

Network::Network(Simulation& sim, LatencyParams params,
                 std::shared_ptr<const NodeCatalog> base)
    : sim_(sim),
      latency_(params, sim.rng().fork("latency-model")),
      flow_rng_parent_(sim.rng().fork("packet-rng")),
      base_(std::move(base)),
      base_count_(base_ != nullptr
                      ? static_cast<NodeId>(base_->node_count())
                      : 0),
      obs_sent_(&sim.metrics().counter(obs::names::kNetPacketsSent)),
      obs_delivered_(&sim.metrics().counter(obs::names::kNetPacketsDelivered)),
      obs_dropped_(&sim.metrics().counter(obs::names::kNetPacketsDropped)),
      obs_unroutable_(
          &sim.metrics().counter(obs::names::kNetPacketsUnroutable)),
      obs_stream_sent_(&sim.metrics().counter(obs::names::kNetStreamSent)),
      obs_udp_bytes_(&sim.metrics().counter(obs::names::kDatapathUdpBytes)),
      obs_stream_bytes_(
          &sim.metrics().counter(obs::names::kDatapathStreamBytes)) {
  if (base_ != nullptr) {
    if (base_->first_id != 0) {
      throw std::invalid_argument{
          "Network: a base catalog must start at node id 0"};
    }
    next_addr_ = base_->next_addr;
  }
}

namespace {

/// SplitMix64 finalizer: spreads the packed (from, to) key across the
/// table. Probe layout is invisible to the simulation — every stream is
/// forked from the never-advancing parent by key alone.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

stats::Rng& Network::flow_rng(NodeId from, NodeId to) {
  const std::uint64_t key = (std::uint64_t{from} << 32) | to;
  if (flow_slots_.empty()) flow_slots_.resize(1024);
  std::size_t mask = flow_slots_.size() - 1;
  std::size_t idx = mix64(key) & mask;
  while (flow_slots_[idx].key != kEmptyFlowKey) {
    if (flow_slots_[idx].key == key) return flow_slots_[idx].rng;
    idx = (idx + 1) & mask;
  }
  if ((flow_count_ + 1) * 4 > flow_slots_.size() * 3) {
    grow_flow_table();
    mask = flow_slots_.size() - 1;
    idx = mix64(key) & mask;
    while (flow_slots_[idx].key != kEmptyFlowKey) idx = (idx + 1) & mask;
  }
  FlowSlot& s = flow_slots_[idx];
  s.key = key;
  s.rng = flow_rng_parent_.fork(key);
  ++flow_count_;
  return s.rng;
}

void Network::grow_flow_table() {
  std::vector<FlowSlot> old = std::move(flow_slots_);
  flow_slots_.assign(old.size() * 2, FlowSlot{});
  const std::size_t mask = flow_slots_.size() - 1;
  for (FlowSlot& s : old) {
    if (s.key == kEmptyFlowKey) continue;
    std::size_t idx = mix64(s.key) & mask;
    while (flow_slots_[idx].key != kEmptyFlowKey) idx = (idx + 1) & mask;
    flow_slots_[idx] = std::move(s);
  }
}

NodeId Network::add_node(std::string name, GeoPoint point) {
  const NodeId id = base_count_ + static_cast<NodeId>(nodes_.size());
  nodes_.push_back(NodeInfo{id, std::move(name), point});
  return id;
}

const NodeInfo& Network::node(NodeId id) const {
  if (id < base_count_) return base_->nodes[id];
  const NodeId local = id - base_count_;
  if (local >= nodes_.size()) {
    throw std::out_of_range{"Network::node: bad id"};
  }
  return nodes_[local];
}

IpAddress Network::allocate_address() {
  // 10.0.0.0/8 pool, skipping .0 and .255 host bytes for readability.
  std::uint32_t host = next_addr_++;
  return IpAddress{(10u << 24) | (host & 0x00ffffffu)};
}

IpAddress Network::allocate_address6() {
  std::uint32_t host = next_addr_++;
  return IpAddress{(253u << 24) | (host & 0x00ffffffu)};
}

void Network::listen(NodeId node, Endpoint ep, DatagramHandler handler) {
  if (node >= node_count()) throw std::out_of_range{"Network::listen"};
  auto shared = std::make_shared<const DatagramHandler>(std::move(handler));
  auto& list = bindings_[ep];
  for (auto& b : list) {
    if (b.node == node) {
      b.handler = std::move(shared);
      return;
    }
  }
  list.push_back(Binding{node, std::move(shared)});
  endpoint_index_dirty_ = true;
}

void Network::unlisten(NodeId node, Endpoint ep) {
  const auto it = bindings_.find(ep);
  if (it == bindings_.end()) return;
  auto& list = it->second;
  std::erase_if(list, [node](const Binding& b) { return b.node == node; });
  if (list.empty()) bindings_.erase(it);
  endpoint_index_dirty_ = true;
}

void Network::rebuild_endpoint_index() {
  endpoint_index_dirty_ = false;
  std::size_t slots = 64;
  while (slots < bindings_.size() * 2) slots *= 2;
  endpoint_slots_.assign(slots, EndpointSlot{});
  const std::size_t mask = slots - 1;
  for (auto& [ep, list] : bindings_) {
    std::size_t idx = mix64(pack_endpoint(ep)) & mask;
    while (endpoint_slots_[idx].key != kEmptyFlowKey) idx = (idx + 1) & mask;
    endpoint_slots_[idx] = EndpointSlot{pack_endpoint(ep), &list};
  }
}

void Network::add_route_hook(RoutePolicyHook* hook) {
  if (hook == nullptr) return;
  if (std::find(route_hooks_.begin(), route_hooks_.end(), hook) !=
      route_hooks_.end()) {
    return;
  }
  // Registered lazily (like RRL's counters): worlds without dynamic
  // routing keep their historical metric snapshots byte-for-byte.
  if (obs_lost_convergence_ == nullptr) {
    obs_lost_convergence_ =
        &sim_.metrics().counter(obs::names::kAnycastLostInConvergence);
  }
  route_hooks_.push_back(hook);
}

void Network::remove_route_hook(RoutePolicyHook* hook) {
  std::erase(route_hooks_, hook);
}

RouteState Network::route_state_of(IpAddress addr, NodeId node) {
  RouteState worst = RouteState::Announced;
  for (RoutePolicyHook* hook : route_hooks_) {
    const RouteState s = hook->route_state(addr, node, sim_.now());
    if (s == RouteState::Withdrawn) return RouteState::Withdrawn;
    if (s == RouteState::Sinking) worst = RouteState::Sinking;
  }
  return worst;
}

const Network::Binding* Network::select_binding(NodeId from, Endpoint dst) {
  if (endpoint_index_dirty_) rebuild_endpoint_index();
  if (endpoint_slots_.empty()) return nullptr;
  const std::uint64_t key = pack_endpoint(dst);
  const std::size_t mask = endpoint_slots_.size() - 1;
  std::size_t idx = mix64(key) & mask;
  while (endpoint_slots_[idx].key != key) {
    if (endpoint_slots_[idx].key == kEmptyFlowKey) return nullptr;
    idx = (idx + 1) & mask;
  }
  auto& list = *endpoint_slots_[idx].list;
  if (list.empty()) return nullptr;
  const bool dynamic_routes = !route_hooks_.empty();
  if (list.size() == 1) {
    if (dynamic_routes && route_state_of(dst.addr, list.front().node) ==
                              RouteState::Withdrawn) {
      return nullptr;
    }
    return &list.front();
  }
  // Anycast: nearest announcing site by stable path RTT. Withdrawn sites
  // have left the routing table; Sinking sites are still selected — the
  // sender's routers have not converged yet — and their packets die in
  // sink_packet(). Exact-RTT ties break toward the lexicographically
  // lowest node name (names embed the site code), which pins the catchment
  // independent of binding order.
  const Binding* best = nullptr;
  auto best_rtt = Duration::micros(std::numeric_limits<std::int64_t>::max());
  for (const auto& b : list) {
    if (dynamic_routes &&
        route_state_of(dst.addr, b.node) == RouteState::Withdrawn) {
      continue;
    }
    const Duration rtt = base_rtt(from, b.node);
    if (best == nullptr || rtt < best_rtt ||
        (rtt == best_rtt && node(b.node).name < node(best->node).name)) {
      best = &b;
      best_rtt = rtt;
    }
  }
  return best;
}

bool Network::sink_packet(NodeId from_node, const Endpoint& dst,
                          NodeId site) {
  for (RoutePolicyHook* hook : route_hooks_) {
    hook->on_selected(dst.addr, from_node, site, sim_.now());
  }
  if (route_state_of(dst.addr, site) != RouteState::Sinking) return false;
  ++dropped_;
  obs_dropped_->add(1, sim_.now());
  obs_lost_convergence_->add(1, sim_.now());
  if (sim_.trace().enabled()) {
    sim_.trace().record({sim_.now(), obs::TraceKind::PacketDrop,
                         node(from_node).name, node(site).name,
                         "route_convergence", 0.0});
  }
  return true;
}

bool Network::send(NodeId from_node, Endpoint src, Endpoint dst,
                   WireBuffer payload) {
  if (from_node >= node_count()) throw std::out_of_range{"Network::send"};
  ++sent_;
  obs_sent_->add(1, sim_.now());
  obs_udp_bytes_->add(payload.size(), sim_.now());
  const Binding* binding = select_binding(from_node, dst);
  if (binding == nullptr) {
    ++unroutable_;
    obs_unroutable_->add(1, sim_.now());
    return false;
  }
  if (!route_hooks_.empty() && sink_packet(from_node, dst, binding->node)) {
    return true;  // sent, but lost in a withdrawing site's convergence sink
  }
  Duration fault_delay = Duration::zero();
  if (fault_hook_ != nullptr) {
    const FaultVerdict verdict = fault_hook_->on_packet(
        from_node, binding->node, src, dst, /*via_stream=*/false, sim_.now());
    if (verdict.drop) {
      ++dropped_;
      obs_dropped_->add(1, sim_.now());
      if (sim_.trace().enabled()) {
        sim_.trace().record({sim_.now(), obs::TraceKind::PacketDrop,
                             node(from_node).name,
                             node(binding->node).name, "fault_injector",
                             0.0});
      }
      return true;  // sent, but eaten by an active fault
    }
    fault_delay = verdict.extra_delay;
  }
  stats::Rng& frng = flow_rng(from_node, binding->node);
  if (latency_.drop(frng)) {
    ++dropped_;
    obs_dropped_->add(1, sim_.now());
    if (sim_.trace().enabled()) {
      sim_.trace().record({sim_.now(), obs::TraceKind::PacketDrop,
                           node(from_node).name, node(binding->node).name,
                           "loss_model", 0.0});
    }
    return true;  // sent, but lost in transit
  }
  const NodeInfo& a = node(from_node);
  const NodeInfo& b = node(binding->node);
  const Duration delay =
      fault_delay + latency_.one_way(a.id, a.point, b.id, b.point, frng);
  Datagram dgram{src, dst, sim_.now(), std::move(payload)};
  // Pin the handler: the binding may be replaced/unbound before delivery.
  // A shared_ptr bump, not a std::function copy — no allocation per packet.
  std::shared_ptr<const DatagramHandler> handler = binding->handler;
  const NodeId at_node = binding->node;
  sim_.after(delay, [handler = std::move(handler), dgram = std::move(dgram),
                     at_node, this]() mutable {
    ++delivered_;
    obs_delivered_->add(1, sim_.now());
    (*handler)(dgram, at_node);
  });
  return true;
}

bool Network::send_stream(NodeId from_node, Endpoint src, Endpoint dst,
                          WireBuffer payload) {
  if (from_node >= node_count()) {
    throw std::out_of_range{"Network::send_stream"};
  }
  ++sent_;
  obs_sent_->add(1, sim_.now());
  obs_stream_sent_->add(1, sim_.now());
  obs_stream_bytes_->add(payload.size(), sim_.now());
  const Binding* binding = select_binding(from_node, dst);
  if (binding == nullptr) {
    ++unroutable_;
    obs_unroutable_->add(1, sim_.now());
    return false;
  }
  if (!route_hooks_.empty() && sink_packet(from_node, dst, binding->node)) {
    return true;  // the SYN dies in the convergence sink; sender sees silence
  }
  // Faults hit streams too: a blackholed/partitioned connection never
  // completes (the sender sees silence, like a SYN into a null route), and
  // latency spikes stretch the handshake.
  Duration fault_delay = Duration::zero();
  if (fault_hook_ != nullptr) {
    const FaultVerdict verdict = fault_hook_->on_packet(
        from_node, binding->node, src, dst, /*via_stream=*/true, sim_.now());
    if (verdict.drop) {
      ++dropped_;
      obs_dropped_->add(1, sim_.now());
      if (sim_.trace().enabled()) {
        sim_.trace().record({sim_.now(), obs::TraceKind::PacketDrop,
                             node(from_node).name,
                             node(binding->node).name, "fault_injector",
                             0.0});
      }
      return true;
    }
    fault_delay = verdict.extra_delay;
  }
  // TCP is reliable: no drop. Cost model: SYN (one way) + SYN/ACK (one
  // way back) + payload (one way) = three one-way delays before the
  // message is in the receiver's hands.
  const NodeInfo& a = node(from_node);
  const NodeInfo& b = node(binding->node);
  stats::Rng& frng = flow_rng(from_node, binding->node);
  Duration delay = fault_delay;
  for (int leg = 0; leg < 3; ++leg) {
    delay += latency_.one_way(a.id, a.point, b.id, b.point, frng);
  }
  Datagram dgram{src, dst, sim_.now(), std::move(payload), true};
  std::shared_ptr<const DatagramHandler> handler = binding->handler;
  const NodeId at_node = binding->node;
  sim_.after(delay, [handler = std::move(handler), dgram = std::move(dgram),
                     at_node, this]() mutable {
    ++delivered_;
    obs_delivered_->add(1, sim_.now());
    (*handler)(dgram, at_node);
  });
  return true;
}

Duration Network::base_rtt(NodeId a, NodeId b) {
  const NodeInfo& na = node(a);
  const NodeInfo& nb = node(b);
  return latency_.base_rtt(na.id, na.point, nb.id, nb.point);
}

Duration Network::base_rtt_to(NodeId from, IpAddress addr) {
  const NodeId target = route(from, addr);
  if (target == kInvalidNode) return Duration::zero();
  return base_rtt(from, target);
}

NodeId Network::route(NodeId from, IpAddress addr) {
  // Any port bound on the address counts; DNS uses port 53 everywhere in
  // this library, so scan the canonical port first, then any binding.
  const Binding* b = select_binding(from, Endpoint{addr, kDnsPort});
  if (b != nullptr) return b->node;
  for (const auto& [ep, list] : bindings_) {
    if (ep.addr == addr && !list.empty()) {
      const Binding* alt = select_binding(from, ep);
      if (alt != nullptr) return alt->node;
    }
  }
  return kInvalidNode;
}

NodeId Network::find_node(std::string_view name) const {
  if (base_ != nullptr) {
    for (const NodeInfo& n : base_->nodes) {
      if (n.name == name) return n.id;
    }
  }
  for (const NodeInfo& n : nodes_) {
    if (n.name == name) return n.id;
  }
  return kInvalidNode;
}

std::vector<NodeId> Network::bound_nodes(IpAddress addr) const {
  std::vector<NodeId> out;
  for (const auto& [ep, list] : bindings_) {
    if (ep.addr != addr) continue;
    for (const auto& b : list) {
      if (std::find(out.begin(), out.end(), b.node) == out.end()) {
        out.push_back(b.node);
      }
    }
  }
  return out;
}

}  // namespace recwild::net
