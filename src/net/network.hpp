// Simulated UDP network.
//
// Nodes are placed at geographic points; sockets bind (address, port) pairs
// on nodes; datagrams are delivered after a latency-model delay or dropped.
// Binding the SAME address on multiple nodes creates an anycast service:
// the network routes each packet to the bound node with the lowest stable
// path RTT from the sender (the "nearest site" catchment approximation
// documented in DESIGN.md). Replies from an anycast site are sourced from
// the shared address, exactly as real anycast behaves.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "net/geo.hpp"
#include "net/latency.hpp"
#include "net/simulation.hpp"
#include "net/wire_buffer.hpp"

namespace recwild::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = ~NodeId{0};

struct NodeInfo {
  NodeId id = kInvalidNode;
  std::string name;
  GeoPoint point;
};

/// An immutable, shareable node directory plus the address-pool cursor that
/// produced it. A world builder fills one catalog once; every shard replica
/// then constructs its Network *on top of* the catalog (see the Network
/// constructor taking a base), so node ids, names, geographic points and
/// allocated addresses are globally identical across replicas without any
/// per-replica copy of the (potentially million-entry) node table.
///
/// Identity matters beyond memory: per-flow RNG streams are keyed by the
/// (from, to) node-id pair and the latency model's path table by the
/// unordered pair, so replicas sharing a catalog draw byte-identical
/// jitter/loss/RTT sequences for the same logical flow.
struct NodeCatalog {
  /// Nodes indexed by `id - first_id` (first_id is 0 for a from-scratch
  /// world; a catalog seeded from an existing network starts after it).
  std::vector<NodeInfo> nodes;
  NodeId first_id = 0;
  /// Next host number of the shared 10/8 + 253/8 address pools; a Network
  /// built on this catalog continues allocating from here.
  std::uint32_t next_addr = 1;

  /// Adds a node; same contract as Network::add_node.
  NodeId add_node(std::string name, GeoPoint point) {
    const NodeId id = first_id + static_cast<NodeId>(nodes.size());
    nodes.push_back(NodeInfo{id, std::move(name), point});
    return id;
  }
  /// Allocates a fresh 10/8 address; same pool behavior as Network.
  IpAddress allocate_address() {
    const std::uint32_t host = next_addr++;
    return IpAddress{(10u << 24) | (host & 0x00ffffffu)};
  }
  /// Allocates a fresh 253/8 ("IPv6-plane") address.
  IpAddress allocate_address6() {
    const std::uint32_t host = next_addr++;
    return IpAddress{(253u << 24) | (host & 0x00ffffffu)};
  }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return first_id + nodes.size();
  }
};

/// One in-flight packet. Move-only: the payload is a pooled WireBuffer
/// that travels from the encoder through the network to the receiving
/// handler without being copied.
struct Datagram {
  Endpoint src;
  Endpoint dst;
  SimTime sent_at;
  WireBuffer payload;
  /// True when carried over the reliable stream transport (see
  /// Network::send_stream) — the simulated TCP used for truncated-answer
  /// retries. Stream "datagrams" are whole messages, never lost.
  bool via_stream = false;
};

/// Called on the receiving node. `at_node` identifies which node got the
/// packet (relevant for anycast, where one address maps to several nodes).
using DatagramHandler = std::function<void(const Datagram&, NodeId at_node)>;

/// What a fault hook decided about one packet.
struct FaultVerdict {
  bool drop = false;
  Duration extra_delay = Duration::zero();
};

/// Interface of the fault-injection layer (implemented by
/// fault::FaultInjector; the network sees only this vtable so src/net
/// stays free of fault headers). Consulted once per send()/send_stream()
/// after routing, before the loss model; with no hook installed the cost
/// is one null check per packet.
class PacketFaultHook {
 public:
  virtual ~PacketFaultHook() = default;
  /// Decides the fate of one packet already routed from node `from` to
  /// node `to`. Must be deterministic in the packet's identity and sim
  /// time — no wall clock, no dependence on unrelated traffic — or the
  /// sharded engines' byte-identity guarantee breaks.
  [[nodiscard]] virtual FaultVerdict on_packet(NodeId from, NodeId to,
                                               const Endpoint& src,
                                               const Endpoint& dst,
                                               bool via_stream,
                                               SimTime now) = 0;
};

/// Routing-plane state of one (address, node) announcement, as the rest of
/// the internet sees it. The three states model a BGP withdrawal timeline:
/// the route is gone the moment the site withdraws, but distant routers
/// keep sending traffic into the dead path until convergence finishes.
enum class RouteState : std::uint8_t {
  /// The node announces the address; traffic routes to it normally.
  Announced,
  /// Withdrawn but not yet converged: senders still select this node (their
  /// routers haven't heard), and packets sent to it are lost in the dead
  /// path. The convergence-loss window of a BGP withdrawal.
  Sinking,
  /// Withdrawn and converged: the node has left the catchment; senders
  /// re-resolve to their next-best announcing node.
  Withdrawn,
};

/// Interface of the dynamic routing-plane layer (implemented by
/// anycast::AnycastService's route control; the network sees only this
/// vtable so src/net stays free of anycast headers). Consulted during
/// binding selection; with no hook registered the cost is one empty-vector
/// check per packet.
class RoutePolicyHook {
 public:
  virtual ~RoutePolicyHook() = default;
  /// The announcement state of (addr, node) at `now`. Must be deterministic
  /// in its arguments — no wall clock, no per-replica traffic state — or
  /// sharded byte-identity breaks. Hooks answer Announced for addresses
  /// they do not manage.
  [[nodiscard]] virtual RouteState route_state(IpAddress addr, NodeId node,
                                               SimTime now) = 0;
  /// Notification that a datagram/stream send from `from` selected `site`
  /// for anycast address `addr` at `now`. Where catchment-shift accounting
  /// lives; keyed per sender flow, so shard merges reproduce serial counts.
  virtual void on_selected(IpAddress addr, NodeId from, NodeId site,
                           SimTime now) = 0;
};

class Network {
 public:
  /// A network with its own private node table (the classic form), or —
  /// when `base` is non-null — one layered over a shared immutable catalog:
  /// base nodes are visible read-only by id, locally added nodes continue
  /// the id sequence, and address allocation continues from the catalog's
  /// cursor. Shard replicas built over one catalog therefore agree on every
  /// node id and address without duplicating the table.
  explicit Network(Simulation& sim, LatencyParams params = {},
                   std::shared_ptr<const NodeCatalog> base = nullptr);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Adds a node at a geographic point. Names are for logs/debugging.
  NodeId add_node(std::string name, GeoPoint point);
  [[nodiscard]] const NodeInfo& node(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const noexcept {
    return base_count_ + nodes_.size();
  }
  /// Next host number the address pools will hand out. World builders use
  /// this to seed a NodeCatalog that continues an existing network's pools.
  [[nodiscard]] std::uint32_t next_host() const noexcept {
    return next_addr_;
  }
  /// The shared catalog this network is layered on (null when standalone).
  [[nodiscard]] const std::shared_ptr<const NodeCatalog>& base_catalog()
      const noexcept {
    return base_;
  }

  /// Allocates a fresh unique address (10.0.0.0/8 pool).
  IpAddress allocate_address();

  /// Allocates an address from the "IPv6 plane" pool (253.0.0.0/8). The
  /// network treats both planes identically; the distinct pool lets
  /// experiments give services separate v4/v6 identities (published as A
  /// vs AAAA records) and tell the traffic apart.
  IpAddress allocate_address6();

  /// Binds (addr, port) on `node`. Binding the same endpoint on several
  /// nodes forms an anycast service. Re-binding the same (endpoint, node)
  /// replaces the handler.
  void listen(NodeId node, Endpoint ep, DatagramHandler handler);
  void unlisten(NodeId node, Endpoint ep);

  /// Sends a datagram from `from_node`. `src` should be an endpoint the
  /// sender listens on if it expects a reply. Returns false when no node is
  /// bound to `dst` (packet silently discarded, as real UDP would).
  bool send(NodeId from_node, Endpoint src, Endpoint dst,
            WireBuffer payload);

  /// Reliable stream send — the simulated TCP path for DNS-over-TCP
  /// (RFC 1035 §4.2.2; used after a TC=1 response). Never dropped; costs a
  /// handshake plus the transfer, i.e. ~1.5x the path RTT before the first
  /// payload byte arrives. Delivered with Datagram::via_stream set.
  bool send_stream(NodeId from_node, Endpoint src, Endpoint dst,
                   WireBuffer payload);

  /// Stable (jitter-free) path RTT between two nodes, from the latency model.
  Duration base_rtt(NodeId a, NodeId b);

  /// Stable RTT from a node to an address (for anycast: to its catchment
  /// site). Returns Duration::zero() if the address is unbound.
  Duration base_rtt_to(NodeId from, IpAddress addr);

  /// The node an address routes to from `from` (anycast catchment).
  /// Returns kInvalidNode when unbound.
  NodeId route(NodeId from, IpAddress addr);

  /// Nodes currently bound to an address (any port).
  [[nodiscard]] std::vector<NodeId> bound_nodes(IpAddress addr) const;

  /// First node with this name, or kInvalidNode. Linear scan — meant for
  /// symbolic target resolution at fault-schedule arm time, not per packet.
  [[nodiscard]] NodeId find_node(std::string_view name) const;

  /// Installs (or, with nullptr, removes) the fault hook consulted on
  /// every send. One hook per network; the caller keeps ownership and must
  /// clear the hook before destroying it.
  void set_fault_hook(PacketFaultHook* hook) noexcept { fault_hook_ = hook; }
  [[nodiscard]] PacketFaultHook* fault_hook() const noexcept {
    return fault_hook_;
  }

  /// Registers a routing-plane hook consulted during binding selection
  /// (anycast withdrawal/drain). Several hooks may coexist — one per
  /// anycast service with dynamic state; the caller keeps ownership and
  /// must remove the hook before destroying it. Adding the same hook twice
  /// is a no-op.
  void add_route_hook(RoutePolicyHook* hook);
  void remove_route_hook(RoutePolicyHook* hook);
  [[nodiscard]] const std::vector<RoutePolicyHook*>& route_hooks()
      const noexcept {
    return route_hooks_;
  }

  // Counters for tests and reports.
  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::uint64_t unroutable() const noexcept {
    return unroutable_;
  }

  [[nodiscard]] Simulation& sim() noexcept { return sim_; }
  [[nodiscard]] LatencyModel& latency() noexcept { return latency_; }

 private:
  struct Binding {
    NodeId node;
    // Shared so an in-flight delivery holds the handler alive across
    // unlisten/re-listen for the cost of a refcount bump — copying the
    // std::function itself per packet allocated on every send.
    std::shared_ptr<const DatagramHandler> handler;
  };

  /// Picks the lowest-RTT binding for `dst` as seen from `from`, skipping
  /// Withdrawn announcements and breaking exact-RTT ties by the
  /// lexicographically lowest node name (site names embed the site code,
  /// so planned and replica worlds can never disagree on a tie).
  const Binding* select_binding(NodeId from, Endpoint dst);

  /// The combined route state of (addr, node) across all hooks: the most
  /// degraded answer wins.
  RouteState route_state_of(IpAddress addr, NodeId node);

  /// Post-selection routing-plane bookkeeping shared by send/send_stream:
  /// notifies hooks of the selection and reports whether the packet dies
  /// in a convergence sink. Only called when hooks are registered.
  bool sink_packet(NodeId from_node, const Endpoint& dst, NodeId site);

  /// Flat exact-match index over bindings_, keyed by the packed 48-bit
  /// (addr, port). listen/unlisten only mark it dirty — a testbed makes
  /// thousands of listen calls in a row, and rebuilding each time is
  /// O(n^2) — and the first lookup after a mutation rebuilds wholesale.
  /// Probed once per packet in place of the unordered_map find that cost
  /// ~6% of a campaign profile. Values point at bindings_' mapped vectors,
  /// which are stable until an erase — and every erase marks dirty.
  struct EndpointSlot {
    std::uint64_t key = kEmptyFlowKey;
    std::vector<Binding>* list = nullptr;
  };
  static constexpr std::uint64_t pack_endpoint(Endpoint ep) noexcept {
    return (std::uint64_t{ep.addr.bits()} << 16) | ep.port;
  }
  void rebuild_endpoint_index();

  /// Per-packet randomness (jitter, loss) is drawn from a stream private to
  /// the directed (from, to) node pair, forked lazily off a parent that
  /// never advances. Packets of one flow therefore see the same jitter/loss
  /// sequence no matter how unrelated traffic interleaves with them — the
  /// property the sharded campaign engine relies on for byte-identical
  /// results at any shard count.
  stats::Rng& flow_rng(NodeId from, NodeId to);

  /// One (from, to) flow's RNG stream in the open-addressed flow table.
  /// This lookup runs once per packet; an unordered_map probe was ~9% of a
  /// campaign's profile, the flat table is a mix-and-mask. Each stream is
  /// still forked by key, so table layout cannot affect any drawn value.
  struct FlowSlot {
    std::uint64_t key = kEmptyFlowKey;
    stats::Rng rng{0};
  };
  static constexpr std::uint64_t kEmptyFlowKey = ~std::uint64_t{0};
  void grow_flow_table();

  Simulation& sim_;
  PacketFaultHook* fault_hook_ = nullptr;
  std::vector<RoutePolicyHook*> route_hooks_;
  LatencyModel latency_;
  stats::Rng flow_rng_parent_;
  std::vector<FlowSlot> flow_slots_;
  std::size_t flow_count_ = 0;
  /// Shared immutable node prefix (ids [0, base_count_)); may be null.
  std::shared_ptr<const NodeCatalog> base_;
  NodeId base_count_ = 0;
  /// Locally added nodes (ids base_count_ + index).
  std::vector<NodeInfo> nodes_;
  std::unordered_map<Endpoint, std::vector<Binding>> bindings_;
  std::vector<EndpointSlot> endpoint_slots_;
  bool endpoint_index_dirty_ = true;
  std::uint32_t next_addr_ = 1;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t unroutable_ = 0;
  // Cached registry handles (see obs/metrics.hpp); mirror the counters above
  // into the simulation's MetricRegistry without per-packet name lookups.
  obs::Counter* obs_sent_;
  obs::Counter* obs_delivered_;
  obs::Counter* obs_dropped_;
  obs::Counter* obs_unroutable_;
  obs::Counter* obs_stream_sent_;
  obs::Counter* obs_udp_bytes_;
  obs::Counter* obs_stream_bytes_;
  /// Registered on first add_route_hook (lazy, fixture-stable).
  obs::Counter* obs_lost_convergence_ = nullptr;
};

}  // namespace recwild::net
