// Geography: coordinates, great-circle distance, continents, and a catalog
// of named locations (airport codes) used to place datacenters, anycast
// sites, and vantage points.
//
// The paper deploys authoritatives in seven AWS regions identified by
// airport code (GRU, NRT, DUB, FRA, SYD, IAD, SFO) and groups vantage
// points by continent; both notions live here.
#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace recwild::net {

/// Continents as the paper's Table 2 / Figures 4-6 group them.
enum class Continent : unsigned char {
  Africa,
  Asia,
  Europe,
  NorthAmerica,
  Oceania,
  SouthAmerica,
};

inline constexpr std::size_t kContinentCount = 6;

/// Two-letter code used in the paper's tables (AF, AS, EU, NA, OC, SA).
std::string_view continent_code(Continent c) noexcept;
std::string_view continent_name(Continent c) noexcept;
std::optional<Continent> continent_from_code(std::string_view code) noexcept;
/// All continents in the paper's table order.
std::span<const Continent> all_continents() noexcept;

/// WGS84-ish coordinate (degrees). No altitude — irrelevant at our scale.
struct GeoPoint {
  double lat_deg = 0;
  double lon_deg = 0;
};

/// Great-circle distance in kilometres (haversine, mean Earth radius).
double great_circle_km(GeoPoint a, GeoPoint b) noexcept;

/// A named place: airport/city code, coordinates, continent.
struct Location {
  std::string_view code;  // e.g. "FRA"
  std::string_view city;  // e.g. "Frankfurt"
  GeoPoint point;
  Continent continent;
};

/// Looks up a location by code (case-sensitive, upper-case codes).
/// Returns nullopt for unknown codes.
std::optional<Location> find_location(std::string_view code) noexcept;

/// The full built-in catalog (sorted by code).
std::span<const Location> location_catalog() noexcept;

/// All catalog locations on a given continent.
std::vector<Location> locations_on(Continent c);

}  // namespace recwild::net
