// Simulated time. The whole library runs on a discrete-event clock; wall
// clock time never appears. SimTime is an absolute instant and Duration a
// signed difference, both with microsecond resolution — fine enough for
// sub-millisecond RTT differences, wide enough for multi-day simulations.
#pragma once

#include <compare>
#include <cstdint>

namespace recwild::net {

/// Signed duration in microseconds.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr static Duration micros(std::int64_t us) { return Duration{us}; }
  constexpr static Duration millis(double ms) {
    return Duration{static_cast<std::int64_t>(ms * 1000.0)};
  }
  constexpr static Duration seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1'000'000.0)};
  }
  constexpr static Duration minutes(double m) { return seconds(m * 60.0); }
  constexpr static Duration hours(double h) { return minutes(h * 60.0); }
  constexpr static Duration zero() { return Duration{0}; }

  [[nodiscard]] constexpr std::int64_t count_micros() const { return us_; }
  [[nodiscard]] constexpr double ms() const {
    return static_cast<double>(us_) / 1000.0;
  }
  [[nodiscard]] constexpr double sec() const {
    return static_cast<double>(us_) / 1'000'000.0;
  }

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return Duration{us_ + o.us_}; }
  constexpr Duration operator-(Duration o) const { return Duration{us_ - o.us_}; }
  constexpr Duration operator*(double k) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(us_) * k)};
  }
  constexpr Duration& operator+=(Duration o) { us_ += o.us_; return *this; }
  constexpr Duration& operator-=(Duration o) { us_ -= o.us_; return *this; }

 private:
  constexpr explicit Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// Absolute simulated instant (microseconds since simulation start).
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr static SimTime origin() { return SimTime{}; }
  constexpr static SimTime from_micros(std::int64_t us) { return SimTime{us}; }

  [[nodiscard]] constexpr std::int64_t count_micros() const { return us_; }
  [[nodiscard]] constexpr double ms() const {
    return static_cast<double>(us_) / 1000.0;
  }
  [[nodiscard]] constexpr double sec() const {
    return static_cast<double>(us_) / 1'000'000.0;
  }
  [[nodiscard]] constexpr double minutes() const { return sec() / 60.0; }

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(Duration d) const {
    return SimTime{us_ + d.count_micros()};
  }
  constexpr SimTime operator-(Duration d) const {
    return SimTime{us_ - d.count_micros()};
  }
  constexpr Duration operator-(SimTime o) const {
    return Duration::micros(us_ - o.us_);
  }

 private:
  constexpr explicit SimTime(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace recwild::net
