#include "net/geo.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>

namespace recwild::net {

namespace {

constexpr double kEarthRadiusKm = 6371.0;

constexpr double deg2rad(double d) noexcept {
  return d * std::numbers::pi / 180.0;
}

// Catalog of locations. The first seven are the paper's AWS datacenters;
// the rest scatter vantage points and host anycast sites. Codes are IATA
// airport codes; coordinates are city centers (sufficient at RTT scale).
// Sorted by code for binary search.
constexpr std::array<Location, 58> kCatalog{{
    {"AKL", "Auckland", {-36.85, 174.76}, Continent::Oceania},
    {"AMS", "Amsterdam", {52.37, 4.90}, Continent::Europe},
    {"ARN", "Stockholm", {59.33, 18.07}, Continent::Europe},
    {"ATL", "Atlanta", {33.75, -84.39}, Continent::NorthAmerica},
    {"BKK", "Bangkok", {13.76, 100.50}, Continent::Asia},
    {"BOG", "Bogota", {4.71, -74.07}, Continent::SouthAmerica},
    {"BOM", "Mumbai", {19.08, 72.88}, Continent::Asia},
    {"BRU", "Brussels", {50.85, 4.35}, Continent::Europe},
    {"BUE", "Buenos Aires", {-34.60, -58.38}, Continent::SouthAmerica},
    {"CAI", "Cairo", {30.04, 31.24}, Continent::Africa},
    {"CDG", "Paris", {48.86, 2.35}, Continent::Europe},
    {"CPT", "Cape Town", {-33.92, 18.42}, Continent::Africa},
    {"DEL", "Delhi", {28.61, 77.21}, Continent::Asia},
    {"DFW", "Dallas", {32.78, -96.80}, Continent::NorthAmerica},
    {"DUB", "Dublin", {53.35, -6.26}, Continent::Europe},
    {"DXB", "Dubai", {25.20, 55.27}, Continent::Asia},
    {"FRA", "Frankfurt", {50.11, 8.68}, Continent::Europe},
    {"GRU", "Sao Paulo", {-23.55, -46.63}, Continent::SouthAmerica},
    {"HAM", "Hamburg", {53.55, 9.99}, Continent::Europe},
    {"HEL", "Helsinki", {60.17, 24.94}, Continent::Europe},
    {"HKG", "Hong Kong", {22.32, 114.17}, Continent::Asia},
    {"IAD", "Washington DC", {38.91, -77.04}, Continent::NorthAmerica},
    {"ICN", "Seoul", {37.57, 126.98}, Continent::Asia},
    {"IST", "Istanbul", {41.01, 28.98}, Continent::Asia},
    {"JNB", "Johannesburg", {-26.20, 28.05}, Continent::Africa},
    {"KIV", "Chisinau", {47.01, 28.86}, Continent::Europe},
    {"LAD", "Luanda", {-8.84, 13.23}, Continent::Africa},
    {"LAX", "Los Angeles", {34.05, -118.24}, Continent::NorthAmerica},
    {"LHR", "London", {51.51, -0.13}, Continent::Europe},
    {"LIM", "Lima", {-12.05, -77.04}, Continent::SouthAmerica},
    {"LIS", "Lisbon", {38.72, -9.14}, Continent::Europe},
    {"LOS", "Lagos", {6.52, 3.38}, Continent::Africa},
    {"MAD", "Madrid", {40.42, -3.70}, Continent::Europe},
    {"MEL", "Melbourne", {-37.81, 144.96}, Continent::Oceania},
    {"MEX", "Mexico City", {19.43, -99.13}, Continent::NorthAmerica},
    {"MIL", "Milan", {45.46, 9.19}, Continent::Europe},
    {"MNL", "Manila", {14.60, 120.98}, Continent::Asia},
    {"NBO", "Nairobi", {-1.29, 36.82}, Continent::Africa},
    {"NRT", "Tokyo", {35.68, 139.69}, Continent::Asia},
    {"ORD", "Chicago", {41.88, -87.63}, Continent::NorthAmerica},
    {"OSL", "Oslo", {59.91, 10.75}, Continent::Europe},
    {"PER", "Perth", {-31.95, 115.86}, Continent::Oceania},
    {"PRG", "Prague", {50.08, 14.44}, Continent::Europe},
    {"RAB", "Rabat", {34.02, -6.84}, Continent::Africa},
    {"SCL", "Santiago", {-33.45, -70.67}, Continent::SouthAmerica},
    {"SEA", "Seattle", {47.61, -122.33}, Continent::NorthAmerica},
    {"SFO", "San Francisco", {37.77, -122.42}, Continent::NorthAmerica},
    {"SIN", "Singapore", {1.35, 103.82}, Continent::Asia},
    {"SOF", "Sofia", {42.70, 23.32}, Continent::Europe},
    {"SYD", "Sydney", {-33.87, 151.21}, Continent::Oceania},
    {"TPE", "Taipei", {25.03, 121.57}, Continent::Asia},
    {"TUN", "Tunis", {36.81, 10.18}, Continent::Africa},
    {"VIE", "Vienna", {48.21, 16.37}, Continent::Europe},
    {"WAW", "Warsaw", {52.23, 21.01}, Continent::Europe},
    {"WLG", "Wellington", {-41.29, 174.78}, Continent::Oceania},
    {"YUL", "Montreal", {45.50, -73.57}, Continent::NorthAmerica},
    {"YVR", "Vancouver", {49.28, -123.12}, Continent::NorthAmerica},
    {"ZRH", "Zurich", {47.37, 8.54}, Continent::Europe},
}};

constexpr std::array<Continent, kContinentCount> kContinents{
    Continent::Africa,        Continent::Asia,    Continent::Europe,
    Continent::NorthAmerica,  Continent::Oceania, Continent::SouthAmerica,
};

}  // namespace

std::string_view continent_code(Continent c) noexcept {
  switch (c) {
    case Continent::Africa: return "AF";
    case Continent::Asia: return "AS";
    case Continent::Europe: return "EU";
    case Continent::NorthAmerica: return "NA";
    case Continent::Oceania: return "OC";
    case Continent::SouthAmerica: return "SA";
  }
  return "??";
}

std::string_view continent_name(Continent c) noexcept {
  switch (c) {
    case Continent::Africa: return "Africa";
    case Continent::Asia: return "Asia";
    case Continent::Europe: return "Europe";
    case Continent::NorthAmerica: return "North America";
    case Continent::Oceania: return "Oceania";
    case Continent::SouthAmerica: return "South America";
  }
  return "Unknown";
}

std::optional<Continent> continent_from_code(std::string_view code) noexcept {
  for (const Continent c : kContinents) {
    if (continent_code(c) == code) return c;
  }
  return std::nullopt;
}

std::span<const Continent> all_continents() noexcept { return kContinents; }

double great_circle_km(GeoPoint a, GeoPoint b) noexcept {
  const double lat1 = deg2rad(a.lat_deg);
  const double lat2 = deg2rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg2rad(b.lon_deg - a.lon_deg);
  const double s1 = std::sin(dlat / 2);
  const double s2 = std::sin(dlon / 2);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

std::optional<Location> find_location(std::string_view code) noexcept {
  const auto it = std::lower_bound(
      kCatalog.begin(), kCatalog.end(), code,
      [](const Location& l, std::string_view c) { return l.code < c; });
  if (it != kCatalog.end() && it->code == code) return *it;
  return std::nullopt;
}

std::span<const Location> location_catalog() noexcept { return kCatalog; }

std::vector<Location> locations_on(Continent c) {
  std::vector<Location> out;
  for (const Location& l : kCatalog) {
    if (l.continent == c) out.push_back(l);
  }
  return out;
}

}  // namespace recwild::net
