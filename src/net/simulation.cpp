#include "net/simulation.hpp"

namespace recwild::net {

void Simulation::run() {
  while (!queue_.empty()) {
    auto fired = queue_.pop();
    now_ = fired.at;
    ++steps_;
    fired.fn();
  }
  sync_obs();
}

void Simulation::run_until(SimTime t) {
  while (!queue_.empty() && queue_.next_time() <= t) {
    auto fired = queue_.pop();
    now_ = fired.at;
    ++steps_;
    fired.fn();
  }
  if (now_ < t) now_ = t;
  sync_obs();
}

void Simulation::sync_obs() {
  // Fold only the unsynced remainder: shard merges add replica deltas into
  // these same counters, so "counter value == tally" does not hold here.
  scheduled_->add(pushes_ - synced_pushes_, now_);
  synced_pushes_ = pushes_;
  cancelled_->add(cancels_ - synced_cancels_, now_);
  synced_cancels_ = cancels_;
  processed_->add(steps_ - synced_steps_, now_);
  synced_steps_ = steps_;
  peak_pending_->max_of(static_cast<double>(peak_raw_), now_);
}

}  // namespace recwild::net
