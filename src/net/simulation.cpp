#include "net/simulation.hpp"

namespace recwild::net {

void Simulation::run() {
  while (!queue_.empty()) {
    auto fired = queue_.pop();
    now_ = fired.at;
    ++steps_;
    fired.fn();
  }
}

void Simulation::run_until(SimTime t) {
  while (!queue_.empty() && queue_.next_time() <= t) {
    auto fired = queue_.pop();
    now_ = fired.at;
    ++steps_;
    fired.fn();
  }
  if (now_ < t) now_ = t;
}

}  // namespace recwild::net
