// Latency model: maps geography to packet delay.
//
// RTT(a,b) = last_mile + 2 * distance_km * stretch / fiber_speed
//
// where `stretch` (route inflation over great-circle fiber) and `last_mile`
// (access network + peering overhead) are drawn once per node pair and then
// held fixed, so each path has a stable characteristic RTT with small
// per-packet jitter on top — matching how recursive resolvers experience
// authoritative latency in the wild. Parameters are calibrated so that the
// per-continent median RTTs land near the paper's Table 2 (e.g. EU->FRA
// ~39 ms, EU->SYD ~355 ms); see docs in DESIGN.md §5.
#pragma once

#include <cstdint>
#include <vector>

#include "net/geo.hpp"
#include "net/time.hpp"
#include "stats/rng.hpp"

namespace recwild::net {

struct LatencyParams {
  /// Effective one-way fiber speed, km per ms (~2/3 c).
  double fiber_km_per_ms = 200.0;
  /// Route inflation factor over great-circle distance: lognormal.
  double stretch_mu = 0.50;     // exp(0.50) ~ 1.65 median
  double stretch_sigma = 0.18;  // modest spread between paths
  /// Last-mile + peering penalty per path (both ends combined), ms: lognormal.
  double last_mile_mu = 3.05;    // exp(3.05) ~ 21 ms median
  double last_mile_sigma = 0.55;
  /// Per-packet jitter as a fraction of the path RTT (half-normal).
  double jitter_frac = 0.03;
  /// Minimum per-packet jitter floor, ms.
  double jitter_floor_ms = 0.1;
  /// Independent per-packet loss probability.
  double loss_rate = 0.002;
};

/// Per-pair path characteristics, sampled lazily and cached.
///
/// Paths are keyed by unordered node-id pair and sampled via an RNG forked
/// from the pair key, so the characteristic RTT of a path is independent of
/// the order in which paths are first used — critical for reproducibility
/// when experiments are added or reordered.
class LatencyModel {
 public:
  LatencyModel(LatencyParams params, stats::Rng rng)
      : params_(params), rng_(rng) {}

  /// Stable RTT of the path (no jitter): the value a resolver's SRTT
  /// estimate converges towards.
  Duration base_rtt(std::uint32_t node_a, GeoPoint a, std::uint32_t node_b,
                    GeoPoint b);

  /// One-way delay for a specific packet (adds jitter).
  Duration one_way(std::uint32_t from, GeoPoint a, std::uint32_t to,
                   GeoPoint b, stats::Rng& packet_rng);

  /// Whether a specific packet is lost.
  bool drop(stats::Rng& packet_rng);

  [[nodiscard]] const LatencyParams& params() const noexcept {
    return params_;
  }

 private:
  struct PathState {
    double stretch = 1.0;
    double last_mile_ms = 0.0;
    /// Stable RTT, cached on first use (< 0 = not yet computed). Node geo
    /// points never move, so the great-circle trig runs once per pair
    /// instead of once per packet.
    double rtt_ms = -1.0;
  };

  PathState& path(std::uint32_t node_a, std::uint32_t node_b);
  void grow_path_table();

  /// Open-addressed path table probed once per packet (the unordered_map
  /// it replaces showed up at ~4% of a campaign profile). Path state is
  /// forked from the pair key, so table layout affects no sampled value.
  struct PathSlot {
    std::uint64_t key = kEmptyPathKey;
    PathState state;
  };
  static constexpr std::uint64_t kEmptyPathKey = ~std::uint64_t{0};

  LatencyParams params_;
  stats::Rng rng_;  // parent stream for per-path forks
  std::vector<PathSlot> paths_;
  std::size_t path_count_ = 0;
};

}  // namespace recwild::net
