#include "anycast/service.hpp"

#include <limits>
#include <stdexcept>

#include "obs/names.hpp"

namespace recwild::anycast {

AnycastService AnycastService::create(
    net::Network& network, std::string name, net::IpAddress address,
    const std::vector<std::string>& site_codes) {
  AnycastService svc{network, std::move(name), address};
  for (const auto& code : site_codes) {
    const auto loc = net::find_location(code);
    if (!loc) {
      throw std::invalid_argument{"AnycastService: unknown location " + code};
    }
    Site site;
    site.code = code;
    site.location = loc->point;
    site.node =
        network.add_node(svc.name_ + "@" + code, loc->point);
    authns::AuthServerConfig cfg;
    cfg.identity = svc.name_ + "." + code;
    site.server = std::make_unique<authns::AuthServer>(
        network, site.node, net::Endpoint{address, net::kDnsPort}, cfg);
    svc.sites_.push_back(std::move(site));
  }
  return svc;
}

AnycastService AnycastService::create_at(
    net::Network& network, std::string name, net::IpAddress address,
    const std::vector<SitePlan>& sites) {
  AnycastService svc{network, std::move(name), address};
  for (const auto& plan : sites) {
    Site site;
    site.code = plan.code;
    site.location = plan.location;
    site.node = plan.node;
    authns::AuthServerConfig cfg;
    cfg.identity = svc.name_ + "." + plan.code;
    site.server = std::make_unique<authns::AuthServer>(
        network, site.node, net::Endpoint{address, net::kDnsPort}, cfg);
    svc.sites_.push_back(std::move(site));
  }
  return svc;
}

void AnycastService::add_zone(const authns::Zone& zone) {
  for (auto& site : sites_) site.server->add_zone(zone);
}

void AnycastService::add_zone(std::shared_ptr<const authns::Zone> zone) {
  for (auto& site : sites_) site.server->add_zone(zone);
}

void AnycastService::listen_also(net::IpAddress address6) {
  address6_ = address6;
  for (auto& site : sites_) {
    site.server->listen_also(net::Endpoint{address6, net::kDnsPort});
  }
  if (route_) route_->set_alias(address6);
}

void AnycastService::start() {
  for (auto& site : sites_) site.server->start();
}

void AnycastService::stop() {
  for (auto& site : sites_) site.server->stop();
}

void AnycastService::set_site_down(std::size_t site_index, bool down) {
  sites_.at(site_index).server->set_down(down);
}

void AnycastService::set_all_down(bool down) {
  for (auto& site : sites_) site.server->set_down(down);
}

RouteControl& AnycastService::route_control() {
  if (!route_) {
    route_ = std::make_unique<RouteControl>(*network_, address_, name_);
    if (address6_) route_->set_alias(*address6_);
    for (const auto& site : sites_) {
      route_->register_site(site.node, site.code);
    }
  }
  return *route_;
}

void AnycastService::drain(std::size_t site_index, net::SimTime start,
                           net::SimTime end) {
  if (end <= start) {
    throw std::invalid_argument{"AnycastService::drain: end must be > start"};
  }
  Site& site = sites_.at(site_index);
  // converge == start: a drain is announced to peers before the window
  // opens, so there is no convergence-loss phase.
  route_control().add_outage(site.node, site.code,
                             OutageWindow{start, start, end});
  // Counted now (drains are installed at world construction) but stamped
  // with the drain's start, so replica baselines merge to the serial bytes.
  network_->sim().metrics().counter(obs::names::kAnycastSiteDrained)
      .add(1, start);
}

void AnycastService::set_load_cap(double share) {
  route_control().set_load_cap(share);
}

const Site* AnycastService::catchment(net::NodeId from) const {
  const net::NodeId target = network_->route(from, address_);
  for (const auto& site : sites_) {
    if (site.node == target) return &site;
  }
  return nullptr;
}

const Site* AnycastService::catchment(net::NodeId from,
                                      net::SimTime now) const {
  const Site* best = nullptr;
  auto best_rtt =
      net::Duration::micros(std::numeric_limits<std::int64_t>::max());
  for (const auto& site : sites_) {
    if (route_ &&
        route_->site_state(site.node, now) == net::RouteState::Withdrawn) {
      continue;
    }
    const net::Duration rtt = network_->base_rtt(from, site.node);
    if (best == nullptr || rtt < best_rtt ||
        (rtt == best_rtt && site.code < best->code)) {
      best = &site;
      best_rtt = rtt;
    }
  }
  return best;
}

std::uint64_t AnycastService::total_queries() const noexcept {
  std::uint64_t n = 0;
  for (const auto& site : sites_) n += site.server->queries_received();
  return n;
}

}  // namespace recwild::anycast
