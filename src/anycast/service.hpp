// IP anycast services (paper §1-2, §7).
//
// An anycast service is one NS address announced from many sites; the
// network routes each client to its catchment site (lowest stable RTT in
// our model — see DESIGN.md). A unicast authoritative is the degenerate
// single-site case, so DNS deployments mixing unicast and anycast NSes
// (like .nl's 5 unicast + 3 anycast) are just lists of AnycastService with
// different site counts.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "anycast/route_control.hpp"
#include "authns/server.hpp"
#include "net/network.hpp"

namespace recwild::anycast {

struct Site {
  std::string code;  // catalog location code, e.g. "AMS"
  net::GeoPoint location;
  net::NodeId node = net::kInvalidNode;
  std::unique_ptr<authns::AuthServer> server;
};

/// A site blueprint with its node pre-assigned in a shared NodeCatalog.
/// World builders plan sites once; every replica then materializes servers
/// on the same node ids (see AnycastService::create_at).
struct SitePlan {
  std::string code;
  net::GeoPoint location;
  net::NodeId node = net::kInvalidNode;
};

class AnycastService {
 public:
  /// Creates a service named `name` on `address`, with one site per
  /// catalog code in `site_codes` (unknown codes throw). Servers are
  /// created but zones must be added with add_zone() before start().
  static AnycastService create(net::Network& network, std::string name,
                               net::IpAddress address,
                               const std::vector<std::string>& site_codes);

  /// Creates a service whose site nodes already exist (planned in the
  /// network's shared base catalog): no nodes or addresses are allocated,
  /// only the per-site servers are constructed. This is the replica path —
  /// every world materialized from one plan agrees on all ids.
  static AnycastService create_at(net::Network& network, std::string name,
                                  net::IpAddress address,
                                  const std::vector<SitePlan>& sites);

  AnycastService(AnycastService&&) = default;
  AnycastService& operator=(AnycastService&&) = default;

  /// Adds (a copy of) the zone to every site server.
  void add_zone(const authns::Zone& zone);
  /// Shares one immutable zone across every site server (no copies).
  void add_zone(std::shared_ptr<const authns::Zone> zone);

  /// Gives the service a second (IPv6-plane) address: every site also
  /// listens on it. Call before or after start().
  void listen_also(net::IpAddress address6);
  [[nodiscard]] std::optional<net::IpAddress> address6() const noexcept {
    return address6_;
  }

  /// Starts (binds) all sites.
  void start();
  void stop();

  /// Fails a single site (queries to its catchment then time out), or the
  /// whole service.
  ///
  /// DEPRECATED as a failure model: this is the legacy ad-hoc path — the
  /// site's server swallows queries forever but never leaves the catchment,
  /// so clients keep timing out into it. Scheduled failures should use the
  /// fault-schedule path instead (FaultKind::SiteWithdraw / SiteFlap via
  /// fault::FaultInjector::bind_service, or drain() for maintenance), which
  /// models BGP withdrawal: bounded convergence loss, then transparent
  /// failover to the next-best site. Kept for tests and callers that want
  /// a silent blackholed site specifically.
  void set_site_down(std::size_t site_index, bool down);
  void set_all_down(bool down);

  /// Schedules a graceful drain of a site over [start, end): peers are told
  /// before the window opens, so from `start` new queries steer to each
  /// client's next-best site with no convergence loss while in-flight
  /// packets complete normally; at `end` the site rejoins the catchment.
  void drain(std::size_t site_index, net::SimTime start, net::SimTime end);

  /// Optional load-aware steering (see RouteControl::set_load_cap; breaks
  /// sharded byte-identity — serial runs only).
  void set_load_cap(double share);

  /// The service's dynamic routing-plane table, created (and registered
  /// with the network) on first use. The fault layer pushes withdrawal
  /// windows here.
  [[nodiscard]] RouteControl& route_control();
  /// The route control if one was ever created, else nullptr.
  [[nodiscard]] const RouteControl* route_control_if_armed() const noexcept {
    return route_.get();
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] net::IpAddress address() const noexcept { return address_; }
  [[nodiscard]] std::size_t site_count() const noexcept {
    return sites_.size();
  }
  [[nodiscard]] bool is_anycast() const noexcept { return sites_.size() > 1; }
  [[nodiscard]] const std::vector<Site>& sites() const noexcept {
    return sites_;
  }
  [[nodiscard]] std::vector<Site>& sites() noexcept { return sites_; }

  /// The site a client node is routed to (at the current sim time — with
  /// dynamic routing armed, the network already excludes withdrawn sites).
  [[nodiscard]] const Site* catchment(net::NodeId from) const;

  /// The site a client node is routed to at sim time `now`, from the
  /// planned outage table: Withdrawn sites are excluded, Sinking sites are
  /// still in the catchment (their convergence hasn't reached the client),
  /// exact-RTT ties break toward the lowest site code — the same rules the
  /// network applies per packet, usable for any past or future instant.
  [[nodiscard]] const Site* catchment(net::NodeId from,
                                      net::SimTime now) const;

  /// Total queries across all sites.
  [[nodiscard]] std::uint64_t total_queries() const noexcept;

 private:
  AnycastService(net::Network& network, std::string name,
                 net::IpAddress address)
      : network_(&network), name_(std::move(name)), address_(address) {}

  net::Network* network_;
  std::string name_;
  net::IpAddress address_;
  std::optional<net::IpAddress> address6_;
  std::vector<Site> sites_;
  // Heap-allocated: the network holds a raw hook pointer to it, and the
  // service itself moves when stored in vectors.
  std::unique_ptr<RouteControl> route_;
};

}  // namespace recwild::anycast
