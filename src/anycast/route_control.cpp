#include "anycast/route_control.hpp"

#include <algorithm>

#include "obs/names.hpp"

namespace recwild::anycast {

RouteControl::RouteControl(net::Network& network, net::IpAddress address,
                           std::string service_name)
    : network_(network),
      address_(address),
      service_(std::move(service_name)),
      obs_shift_(&network.sim().metrics().counter(
          obs::names::kAnycastCatchmentShift)),
      obs_failover_(&network.sim().metrics().histogram(
          obs::names::kAnycastFailoverLatencyMs, 0.0, 5000.0, 100)) {
  network_.add_route_hook(this);
}

RouteControl::~RouteControl() { network_.remove_route_hook(this); }

RouteControl::SiteRoutes* RouteControl::find_site(net::NodeId node) {
  for (SiteRoutes& s : sites_) {
    if (s.node == node) return &s;
  }
  return nullptr;
}

const RouteControl::SiteRoutes* RouteControl::find_site(
    net::NodeId node) const {
  for (const SiteRoutes& s : sites_) {
    if (s.node == node) return &s;
  }
  return nullptr;
}

void RouteControl::register_site(net::NodeId site_node,
                                 std::string site_code) {
  SiteRoutes* site = find_site(site_node);
  if (site == nullptr) {
    sites_.push_back(SiteRoutes{site_node, std::move(site_code), {}, 0});
  } else if (site->code.empty()) {
    site->code = std::move(site_code);
  }
}

void RouteControl::add_outage(net::NodeId site_node, std::string site_code,
                              OutageWindow window) {
  SiteRoutes* site = find_site(site_node);
  if (site == nullptr) {
    sites_.push_back(SiteRoutes{site_node, std::move(site_code), {}, 0});
    site = &sites_.back();
  }
  site->windows.push_back(window);
  std::sort(site->windows.begin(), site->windows.end(),
            [](const OutageWindow& a, const OutageWindow& b) {
              return a.start < b.start;
            });
}

void RouteControl::clear_outages() {
  for (SiteRoutes& s : sites_) s.windows.clear();
}

bool RouteControl::has_outages() const noexcept {
  for (const SiteRoutes& s : sites_) {
    if (!s.windows.empty()) return true;
  }
  return false;
}

void RouteControl::set_load_cap(double share) { load_cap_ = share; }

net::RouteState RouteControl::site_state(net::NodeId node,
                                         net::SimTime now) const {
  const SiteRoutes* site = find_site(node);
  if (site == nullptr) return net::RouteState::Announced;
  for (const OutageWindow& w : site->windows) {
    if (now < w.start) break;  // sorted by start, non-overlapping
    if (now >= w.end) continue;
    return now < w.converge ? net::RouteState::Sinking
                            : net::RouteState::Withdrawn;
  }
  return net::RouteState::Announced;
}

net::RouteState RouteControl::route_state(net::IpAddress addr,
                                          net::NodeId node, net::SimTime now) {
  if (!manages(addr)) return net::RouteState::Announced;
  const net::RouteState planned = site_state(node, now);
  if (planned != net::RouteState::Announced) return planned;
  if (load_cap_ > 0.0 && total_selected_ >= 32) {
    // Shed the over-cap site only if it is not already the least-selected
    // one — some site must always stay announced.
    const SiteRoutes* site = find_site(node);
    if (site != nullptr &&
        static_cast<double>(site->selected) >
            load_cap_ * static_cast<double>(total_selected_)) {
      for (const SiteRoutes& other : sites_) {
        if (other.node != node && other.selected < site->selected &&
            site_state(other.node, now) == net::RouteState::Announced) {
          return net::RouteState::Withdrawn;
        }
      }
    }
  }
  return net::RouteState::Announced;
}

void RouteControl::on_selected(net::IpAddress addr, net::NodeId from,
                               net::NodeId site, net::SimTime now) {
  if (!manages(addr)) return;
  if (load_cap_ > 0.0) {
    SiteRoutes* s = find_site(site);
    if (s == nullptr) {
      sites_.push_back(SiteRoutes{site, std::string{}, {}, 0});
      s = &sites_.back();
    }
    ++s->selected;
    ++total_selected_;
  }
  const auto [it, first] = last_site_.try_emplace(from, site);
  if (first || it->second == site) {
    it->second = site;
    return;
  }
  const net::NodeId prev = it->second;
  it->second = site;
  obs_shift_->add(1, now);
  // Client-perceived failover latency: the sender left `prev` while an
  // outage was in force there, so the time since that outage's withdrawal
  // is how long this flow took to land on a live site.
  double failover_ms = 0.0;
  if (const SiteRoutes* p = find_site(prev)) {
    for (const OutageWindow& w : p->windows) {
      if (w.start <= now && now < w.end) {
        failover_ms = (now - w.start).sec() * 1e3;
        obs_failover_->observe(failover_ms, now);
        break;
      }
    }
  }
  auto& sim = network_.sim();
  if (sim.trace().enabled()) {
    const SiteRoutes* p = find_site(prev);
    const SiteRoutes* n = find_site(site);
    const std::string from_code =
        (p != nullptr && !p->code.empty()) ? p->code : network_.node(prev).name;
    const std::string to_code =
        (n != nullptr && !n->code.empty()) ? n->code : network_.node(site).name;
    sim.trace().record({now, obs::TraceKind::CatchmentShift,
                        network_.node(from).name, service_,
                        from_code + ">" + to_code, failover_ms});
  }
}

}  // namespace recwild::anycast
