// Dynamic routing-plane state of one anycast service.
//
// A RouteControl owns the time-varying announcement table of a service's
// sites: scheduled withdrawals (BGP flaps, crashes) with per-site
// convergence windows, graceful drains, and optional load-aware steering.
// It implements net::RoutePolicyHook, so the network re-resolves the
// catchment per packet send — failover is transparent to resolvers (same
// address, new site), exactly as real anycast behaves.
//
// Determinism contract: announcement state is a pure function of
// (node, sim time) over windows fixed at arm time, so sharded replicas —
// which arm identical windows from identical schedules — agree on every
// routing decision. Catchment-shift and failover accounting is keyed per
// sender node; shard VP partitions are disjoint, so merged counts reproduce
// the serial run. The one exception is load-aware steering, which feeds
// per-replica selection counts back into routing and is therefore
// documented as incompatible with sharded byte-identity (see set_load_cap).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "obs/metrics.hpp"

namespace recwild::anycast {

/// One planned outage of a site's announcement: the route is withdrawn at
/// `start`, the rest of the internet finishes re-converging at `converge`
/// (senders still pick the site before then, and those packets die in the
/// dead path), and the site re-announces at `end`. A drain sets
/// `converge == start`: peers are told before shutdown, so there is no
/// convergence-loss phase.
struct OutageWindow {
  net::SimTime start;
  net::SimTime converge;
  net::SimTime end;
};

/// Heap-allocated by AnycastService (services move inside vectors; the
/// network keeps a raw hook pointer, which must stay put). Registers with
/// the network on construction and unregisters on destruction.
class RouteControl final : public net::RoutePolicyHook {
 public:
  RouteControl(net::Network& network, net::IpAddress address,
               std::string service_name);
  ~RouteControl() override;

  RouteControl(const RouteControl&) = delete;
  RouteControl& operator=(const RouteControl&) = delete;

  /// Also manage the service's second (IPv6-plane) address: a site's BGP
  /// session carries both prefixes, so both withdraw together.
  void set_alias(net::IpAddress address6) { alias_ = address6; }

  /// Teaches the control a site's code without scheduling anything, so
  /// catchment-shift trace rows name sites by code from the first shift.
  void register_site(net::NodeId site_node, std::string site_code);

  /// Schedules an outage of `site_node`'s announcement. Windows on one site
  /// must not overlap (FaultSchedule::validate enforces this upstream).
  void add_outage(net::NodeId site_node, std::string site_code,
                  OutageWindow window);
  /// Removes every scheduled outage (fault disarm); steering state and the
  /// network registration stay.
  void clear_outages();
  [[nodiscard]] bool has_outages() const noexcept;

  /// Optional load-aware steering: withdraw a site from new selections
  /// while its share of this service's selections exceeds `share` (0
  /// disables; the busiest site is only shed when a less-loaded site can
  /// absorb the traffic, so the service never goes unroutable). WARNING:
  /// selection counts are per-replica, so an armed load cap breaks sharded
  /// byte-identity — serial runs only.
  void set_load_cap(double share);

  /// Announcement state of one site at `now` from the outage table alone
  /// (load steering excluded — this is the planned routing state, usable
  /// for any `now`, past or future).
  [[nodiscard]] net::RouteState site_state(net::NodeId node,
                                           net::SimTime now) const;

  // net::RoutePolicyHook
  [[nodiscard]] net::RouteState route_state(net::IpAddress addr,
                                            net::NodeId node,
                                            net::SimTime now) override;
  void on_selected(net::IpAddress addr, net::NodeId from, net::NodeId site,
                   net::SimTime now) override;

 private:
  struct SiteRoutes {
    net::NodeId node = net::kInvalidNode;
    std::string code;
    std::vector<OutageWindow> windows;  // sorted by start
    std::uint64_t selected = 0;         // load steering only
  };

  [[nodiscard]] SiteRoutes* find_site(net::NodeId node);
  [[nodiscard]] const SiteRoutes* find_site(net::NodeId node) const;
  [[nodiscard]] bool manages(net::IpAddress addr) const noexcept {
    return addr == address_ || (alias_ && addr == *alias_);
  }

  net::Network& network_;
  net::IpAddress address_;
  std::optional<net::IpAddress> alias_;
  std::string service_;
  double load_cap_ = 0.0;
  std::uint64_t total_selected_ = 0;
  std::vector<SiteRoutes> sites_;
  /// Last site each sender flow was routed to — the shift detector.
  std::unordered_map<net::NodeId, net::NodeId> last_site_;
  obs::Counter* obs_shift_;
  obs::Histogram* obs_failover_;
};

}  // namespace recwild::anycast
