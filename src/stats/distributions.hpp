// Discrete samplers used by the workload generators:
//  * Zipf — heavy-tailed per-recursive query volumes (Figure 7 synthesis);
//  * WeightedSampler — alias-method O(1) sampling from arbitrary weights
//    (continent assignment, policy mixture draw, AS clustering).
#pragma once

#include <cstddef>
#include <vector>

#include "stats/rng.hpp"

namespace recwild::stats {

/// Zipf(s, N) sampler over ranks {1..N} with exponent s > 0.
/// Precomputes the CDF once; sampling is a binary search (O(log N)).
class Zipf {
 public:
  Zipf(std::size_t n, double exponent);

  /// Draws a rank in [1, n].
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t n() const noexcept { return cdf_.size(); }
  [[nodiscard]] double exponent() const noexcept { return exponent_; }

  /// Expected probability mass of rank k (1-based).
  [[nodiscard]] double pmf(std::size_t k) const;

 private:
  std::vector<double> cdf_;
  double exponent_;
};

/// Walker alias method: O(n) build, O(1) sample from arbitrary non-negative
/// weights. Zero total weight degenerates to uniform.
class WeightedSampler {
 public:
  explicit WeightedSampler(const std::vector<double>& weights);

  /// Draws an index in [0, size()).
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }
  /// Normalized probability of index i (for tests / reporting).
  [[nodiscard]] double probability(std::size_t i) const noexcept {
    return norm_.at(i);
  }

 private:
  std::vector<double> prob_;        // alias-table acceptance probability
  std::vector<std::size_t> alias_;  // alias index
  std::vector<double> norm_;        // normalized input weights
};

}  // namespace recwild::stats
