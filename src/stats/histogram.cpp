#include "stats/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace recwild::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi) {
  if (!(lo < hi)) throw std::invalid_argument{"Histogram: lo must be < hi"};
  if (bins == 0) throw std::invalid_argument{"Histogram: bins must be >= 1"};
  counts_.assign(bins, 0);
}

std::size_t Histogram::bin_for(double x) const noexcept {
  if (x <= lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  const double frac = (x - lo_) / (hi_ - lo_);
  const auto bin =
      static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  return std::min(bin, counts_.size() - 1);
}

void Histogram::add(double x) noexcept { add(x, 1); }

void Histogram::add(double x, std::size_t count) noexcept {
  counts_[bin_for(x)] += count;
  total_ += count;
}

double Histogram::bin_lo(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range{"Histogram::bin_lo"};
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range{"Histogram::bin_hi"};
  return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) /
                   static_cast<double>(counts_.size());
}

double Histogram::cdf(double x) const noexcept {
  if (total_ == 0) return 0.0;
  std::size_t acc = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (bin_hi(b) <= x) {
      acc += counts_[b];
    } else {
      break;
    }
  }
  return static_cast<double>(acc) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t width) const {
  std::size_t max_count = 0;
  for (const std::size_t c : counts_) max_count = std::max(max_count, c);
  std::string out;
  char line[128];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        max_count == 0 ? 0 : counts_[b] * width / max_count;
    std::snprintf(line, sizeof line, "[%8.2f,%8.2f) %8zu |", bin_lo(b),
                  bin_hi(b), counts_[b]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace recwild::stats
