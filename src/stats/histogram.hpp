// Fixed-bin histogram for latency/fraction distributions, plus a tiny ASCII
// rendering used by the bench reporters to sketch the paper's figures in a
// terminal.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace recwild::stats {

/// Histogram over [lo, hi) with `bins` equal-width bins. Values outside the
/// range are clamped into the first/last bin so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add(double x, std::size_t count) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// Fraction of mass at or below x (empirical CDF on bin boundaries).
  [[nodiscard]] double cdf(double x) const noexcept;

  /// Multi-line ASCII bar rendering, one row per bin, widest bar = `width`.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  [[nodiscard]] std::size_t bin_for(double x) const noexcept;

  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace recwild::stats
