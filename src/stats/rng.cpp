#include "stats/rng.hpp"

#include <cmath>
#include <numbers>

namespace recwild::stats {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_string(std::string_view s) noexcept {
  // FNV-1a 64-bit, then one SplitMix64 round for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return splitmix64_next(h);
}

Rng::Rng(std::uint64_t seed) noexcept {
  // xoshiro must not start from the all-zero state; SplitMix64 seeding
  // guarantees that with overwhelming probability, but guard anyway.
  for (auto& word : s_) word = splitmix64_next(seed);
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork(std::string_view tag) const noexcept {
  return fork(hash_string(tag));
}

Rng Rng::fork(std::uint64_t tag) const noexcept {
  // Mix the current state with the tag; do not advance the parent.
  std::uint64_t seed = s_[0] ^ rotl(s_[2], 13) ^ (tag * 0x9e3779b97f4a7c15ULL);
  return Rng{splitmix64_next(seed)};
}

Rng Rng::fork(std::string_view tag, std::uint64_t index) const noexcept {
  return fork(hash_string(tag)).fork(index);
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept {
  const std::uint64_t span = hi - lo;  // inclusive range size - 1
  if (span == ~0ULL) return next();
  return lo + static_cast<std::uint64_t>(index(static_cast<std::size_t>(span) + 1));
}

std::size_t Rng::index(std::size_t n) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  if (n == 0) return 0;
  const auto range = static_cast<std::uint64_t>(n);
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto l = static_cast<std::uint64_t>(m);
  if (l < range) {
    const std::uint64_t t = (0 - range) % range;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * range;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::size_t>(m >> 64);
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() noexcept {
  // Box–Muller; draw until u1 is nonzero so log() is finite.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return xm / std::pow(u, 1.0 / alpha);
}

}  // namespace recwild::stats
