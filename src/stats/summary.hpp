// Summary statistics used by the measurement harness: quantiles, boxplot
// statistics (the paper's Figure 2 reports quartiles with 10/90% whiskers),
// online mean/variance, and small helpers for fractions and shares.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace recwild::stats {

/// Linear-interpolated quantile of an unsorted sample (copies + sorts).
/// q must be in [0, 1]. Returns NaN for an empty sample.
double quantile(std::span<const double> sample, double q);

/// Quantile of an already-sorted sample (no copy).
double quantile_sorted(std::span<const double> sorted, double q);

/// Median convenience wrapper.
double median(std::span<const double> sample);

/// Five-number-style summary used for the paper's box plots:
/// quartiles for the box, 10th/90th percentiles for the whiskers.
struct BoxStats {
  double p10 = 0;
  double p25 = 0;
  double p50 = 0;
  double p75 = 0;
  double p90 = 0;
  std::size_t n = 0;
};

/// Computes BoxStats; returns nullopt for an empty sample.
std::optional<BoxStats> box_stats(std::span<const double> sample);

/// Welford online mean/variance accumulator.
class Online {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Accumulates raw samples and answers quantile queries.
/// Used per (continent, authoritative) cell in the experiment reports.
class Sample {
 public:
  void add(double x) { values_.push_back(x); dirty_ = true; }
  void reserve(std::size_t n) { values_.reserve(n); }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] std::optional<BoxStats> box() const;
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

 private:
  mutable std::vector<double> values_;
  mutable bool dirty_ = true;  // re-sort lazily on query
};

/// Share of `part` in `whole`; 0 when whole == 0. Used for query fractions.
double share(std::size_t part, std::size_t whole) noexcept;

/// Two-sample Kolmogorov–Smirnov distance: sup |F_a(x) - F_b(x)| over the
/// empirical CDFs. Used to quantify "these two distributions agree" checks
/// (e.g. the paper's IPv4-vs-IPv6 and middlebox verifications). Returns 1
/// when either sample is empty.
double ks_distance(std::span<const double> a, std::span<const double> b);

}  // namespace recwild::stats
