#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace recwild::stats {

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::span<const double> sample, double q) {
  std::vector<double> copy(sample.begin(), sample.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

double median(std::span<const double> sample) { return quantile(sample, 0.5); }

std::optional<BoxStats> box_stats(std::span<const double> sample) {
  if (sample.empty()) return std::nullopt;
  std::vector<double> copy(sample.begin(), sample.end());
  std::sort(copy.begin(), copy.end());
  BoxStats b;
  b.p10 = quantile_sorted(copy, 0.10);
  b.p25 = quantile_sorted(copy, 0.25);
  b.p50 = quantile_sorted(copy, 0.50);
  b.p75 = quantile_sorted(copy, 0.75);
  b.p90 = quantile_sorted(copy, 0.90);
  b.n = copy.size();
  return b;
}

void Online::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Online::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Online::stddev() const noexcept { return std::sqrt(variance()); }

double Sample::quantile(double q) const {
  if (dirty_) {
    std::sort(values_.begin(), values_.end());
    dirty_ = false;
  }
  return quantile_sorted(values_, q);
}

double Sample::mean() const {
  if (values_.empty()) return std::numeric_limits<double>::quiet_NaN();
  double sum = 0;
  for (const double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

std::optional<BoxStats> Sample::box() const {
  if (values_.empty()) return std::nullopt;
  if (dirty_) {
    std::sort(values_.begin(), values_.end());
    dirty_ = false;
  }
  BoxStats b;
  b.p10 = quantile_sorted(values_, 0.10);
  b.p25 = quantile_sorted(values_, 0.25);
  b.p50 = quantile_sorted(values_, 0.50);
  b.p75 = quantile_sorted(values_, 0.75);
  b.p90 = quantile_sorted(values_, 0.90);
  b.n = values_.size();
  return b;
}

double share(std::size_t part, std::size_t whole) noexcept {
  if (whole == 0) return 0.0;
  return static_cast<double>(part) / static_cast<double>(whole);
}

double ks_distance(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) return 1.0;
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  double d = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  while (i < sa.size() || j < sb.size()) {
    // Step both CDFs past the next value together (ties must advance both
    // sides, or identical samples would show a spurious distance).
    double x;
    if (i >= sa.size()) {
      x = sb[j];
    } else if (j >= sb.size()) {
      x = sa[i];
    } else {
      x = std::min(sa[i], sb[j]);
    }
    while (i < sa.size() && sa[i] == x) ++i;
    while (j < sb.size() && sb[j] == x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  return d;
}

}  // namespace recwild::stats
