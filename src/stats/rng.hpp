// Deterministic random number generation for reproducible simulation.
//
// All stochastic behaviour in the library flows through Rng so that every
// experiment is exactly reproducible from a single 64-bit seed. The core
// generator is xoshiro256** (Blackman & Vigna), seeded via SplitMix64 so that
// closely-spaced seeds still yield uncorrelated streams. Child streams can be
// forked per component (per vantage point, per resolver, per link) so the
// relative order of events does not perturb other components' randomness.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace recwild::stats {

/// SplitMix64: used for seeding and for hashing strings into seeds.
/// Advances `state` and returns the next 64-bit output.
std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// Stable 64-bit hash of a string (FNV-1a folded through SplitMix64).
/// Used to derive per-name child seeds, e.g. fork("vp-1234").
std::uint64_t hash_string(std::string_view s) noexcept;

/// xoshiro256** pseudo-random generator with distribution helpers.
///
/// Satisfies UniformRandomBitGenerator, so it also works with <random>
/// distributions, although the built-in helpers below are preferred since
/// their results are stable across standard library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator from a single 64-bit value through SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64 bits.
  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Forks an independent child stream; deterministic in (parent state, tag).
  /// The parent stream is NOT advanced, so adding forks never perturbs the
  /// parent's own sequence.
  [[nodiscard]] Rng fork(std::string_view tag) const noexcept;
  [[nodiscard]] Rng fork(std::uint64_t tag) const noexcept;
  /// Indexed stream: fork("vp", 7) without building "vp-7". Equivalent to
  /// fork(tag).fork(index), so families of streams (one per vantage point,
  /// per flow, ...) are keyed by identity rather than by draw order —
  /// adding, removing or reordering siblings never perturbs a stream.
  [[nodiscard]] Rng fork(std::string_view tag,
                         std::uint64_t index) const noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept;
  /// Uniform index in [0, n); requires n > 0. Unbiased (Lemire).
  std::size_t index(std::size_t n) noexcept;
  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Standard normal via Box–Muller (stateless variant; no caching).
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept;
  /// Exponential with given mean (= 1/lambda); mean must be > 0.
  double exponential(double mean) noexcept;
  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;
  /// Pareto with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) noexcept;

  /// Fisher–Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    const std::size_t n = c.size();
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = index(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace recwild::stats
