// Monotonic object arena for shard-replica state.
//
// A shard replica materializes tens of thousands of small, same-lifetime
// objects (stub resolvers, forwarders, recursive state) that all die
// together when the replica is torn down. Allocating each from the global
// heap costs a malloc/free pair per object and scatters them across the
// address space; the arena carves them out of large chunks instead, and
// destroys everything in one sweep (reverse construction order) when the
// arena goes away. Objects never move once constructed, so raw pointers
// into the arena stay valid for its whole lifetime.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace recwild::stats {

class Arena {
 public:
  Arena() = default;
  Arena(Arena&& other) noexcept
      : chunks_(std::move(other.chunks_)),
        dtors_(std::exchange(other.dtors_, nullptr)) {}
  Arena& operator=(Arena&& other) noexcept {
    if (this != &other) {
      clear();
      chunks_ = std::move(other.chunks_);
      dtors_ = std::exchange(other.dtors_, nullptr);
    }
    return *this;
  }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena() { clear(); }

  /// Constructs a T inside the arena and returns a pointer that stays
  /// valid until clear()/destruction. Non-trivially-destructible types are
  /// registered for destruction in reverse construction order.
  template <class T, class... Args>
  T* make(Args&&... args) {
    void* mem = allocate(sizeof(T), alignof(T));
    T* obj = ::new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      void* dmem = allocate(sizeof(Dtor), alignof(Dtor));
      dtors_ = ::new (dmem) Dtor{
          [](void* p) { static_cast<T*>(p)->~T(); }, obj, dtors_};
    }
    return obj;
  }

  /// Destroys every object (reverse construction order) and releases all
  /// chunks.
  void clear() noexcept {
    for (Dtor* d = dtors_; d != nullptr; d = d->next) d->fn(d->obj);
    dtors_ = nullptr;
    chunks_.clear();
  }

 private:
  struct Dtor {
    void (*fn)(void*);
    void* obj;
    Dtor* next;
  };
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t used = 0;
    std::size_t cap = 0;
  };

  void* allocate(std::size_t size, std::size_t align) {
    if (!chunks_.empty()) {
      Chunk& c = chunks_.back();
      const std::size_t at = (c.used + align - 1) & ~(align - 1);
      if (at + size <= c.cap) {
        c.used = at + size;
        return c.data.get() + at;
      }
    }
    const std::size_t cap = std::max<std::size_t>(kChunkBytes, size + align);
    Chunk c;
    c.data = std::make_unique<std::byte[]>(cap);
    c.cap = cap;
    chunks_.push_back(std::move(c));
    Chunk& fresh = chunks_.back();
    const std::uintptr_t base =
        reinterpret_cast<std::uintptr_t>(fresh.data.get());
    const std::size_t at = ((base + align - 1) & ~(align - 1)) - base;
    fresh.used = at + size;
    return fresh.data.get() + at;
  }

  static constexpr std::size_t kChunkBytes = 256 * 1024;

  std::vector<Chunk> chunks_;
  Dtor* dtors_ = nullptr;
};

}  // namespace recwild::stats
