#include "stats/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace recwild::stats {

Zipf::Zipf(std::size_t n, double exponent) : exponent_(exponent) {
  if (n == 0) throw std::invalid_argument{"Zipf: n must be >= 1"};
  if (exponent <= 0) throw std::invalid_argument{"Zipf: exponent must be > 0"};
  cdf_.resize(n);
  double acc = 0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), exponent);
    cdf_[k - 1] = acc;
  }
  for (auto& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // guard against rounding leaving the last bin short
}

std::size_t Zipf::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double Zipf::pmf(std::size_t k) const {
  if (k == 0 || k > cdf_.size()) return 0.0;
  const double lo = (k == 1) ? 0.0 : cdf_[k - 2];
  return cdf_[k - 1] - lo;
}

WeightedSampler::WeightedSampler(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument{"WeightedSampler: empty weights"};
  double total = 0;
  for (const double w : weights) {
    if (w < 0) throw std::invalid_argument{"WeightedSampler: negative weight"};
    total += w;
  }
  norm_.resize(n);
  if (total <= 0) {
    // Degenerate: uniform over all indices.
    std::fill(norm_.begin(), norm_.end(), 1.0 / static_cast<double>(n));
  } else {
    for (std::size_t i = 0; i < n; ++i) norm_[i] = weights[i] / total;
  }

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = norm_[i] * static_cast<double>(n);
  }
  std::vector<std::size_t> small;
  std::vector<std::size_t> large;
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (const std::size_t i : large) prob_[i] = 1.0;
  for (const std::size_t i : small) prob_[i] = 1.0;
}

std::size_t WeightedSampler::sample(Rng& rng) const {
  const std::size_t i = rng.index(prob_.size());
  return rng.uniform() < prob_[i] ? i : alias_[i];
}

}  // namespace recwild::stats
