#include "obs/decision_trace.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace recwild::obs {

namespace {

struct KindName {
  TraceKind kind;
  std::string_view name;
};

constexpr std::array<KindName, 19> kKindNames{{
    {TraceKind::SelectServer, "select_server"},
    {TraceKind::PrimeServer, "prime_server"},
    {TraceKind::StickyLatch, "sticky_latch"},
    {TraceKind::CacheHit, "cache_hit"},
    {TraceKind::CacheMiss, "cache_miss"},
    {TraceKind::NegCacheHit, "neg_cache_hit"},
    {TraceKind::UpstreamTimeout, "upstream_timeout"},
    {TraceKind::Failover, "failover"},
    {TraceKind::TcpFallback, "tcp_fallback"},
    {TraceKind::PacketDrop, "packet_drop"},
    {TraceKind::AuthQuery, "auth_query"},
    {TraceKind::Servfail, "servfail"},
    {TraceKind::Progress, "progress"},
    {TraceKind::FaultOn, "fault_on"},
    {TraceKind::FaultOff, "fault_off"},
    {TraceKind::RrlDrop, "rrl_drop"},
    {TraceKind::RrlSlip, "rrl_slip"},
    {TraceKind::NsFetch, "ns_fetch"},
    {TraceKind::CatchmentShift, "catchment_shift"},
}};

/// Deterministic value rendering: integers without a point, otherwise up to
/// six significant digits (matches the metrics JSON bound format).
std::string format_value(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  return std::string{buf};
}

[[noreturn]] void bad_line(std::size_t line_no, const std::string& why) {
  throw std::runtime_error{"decision trace line " + std::to_string(line_no) +
                           ": " + why};
}

}  // namespace

std::string_view to_string(TraceKind kind) {
  for (const auto& [k, name] : kKindNames) {
    if (k == kind) return name;
  }
  return "unknown";
}

TraceKind trace_kind_from_string(std::string_view name) {
  for (const auto& [kind, n] : kKindNames) {
    if (n == name) return kind;
  }
  throw std::runtime_error{"unknown trace kind '" + std::string{name} + "'"};
}

void DecisionTrace::append(const DecisionTrace& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
}

std::vector<TraceEvent> DecisionTrace::canonical() const {
  std::vector<TraceEvent> sorted = events_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

void write_trace(std::ostream& out, const std::vector<TraceEvent>& events) {
  out << "# t_us\tkind\tactor\tsubject\tdetail\tvalue\n";
  for (const TraceEvent& e : events) {
    out << e.at.count_micros() << '\t' << to_string(e.kind) << '\t' << e.actor
        << '\t' << e.subject << '\t' << e.detail << '\t'
        << format_value(e.value) << '\n';
  }
}

std::vector<TraceEvent> read_trace(std::istream& in) {
  std::vector<TraceEvent> events;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;

    std::array<std::string_view, 6> fields;
    std::string_view rest = line;
    for (std::size_t i = 0; i < 5; ++i) {
      const std::size_t tab = rest.find('\t');
      if (tab == std::string_view::npos) {
        bad_line(line_no, "expected 6 tab-separated fields");
      }
      fields[i] = rest.substr(0, tab);
      rest.remove_prefix(tab + 1);
    }
    if (rest.find('\t') != std::string_view::npos) {
      bad_line(line_no, "expected 6 tab-separated fields");
    }
    fields[5] = rest;

    TraceEvent e;
    std::int64_t us = 0;
    auto [tp, tec] =
        std::from_chars(fields[0].data(), fields[0].data() + fields[0].size(), us);
    if (tec != std::errc{} || tp != fields[0].data() + fields[0].size()) {
      bad_line(line_no, "bad timestamp '" + std::string{fields[0]} + "'");
    }
    e.at = net::SimTime::from_micros(us);
    try {
      e.kind = trace_kind_from_string(fields[1]);
    } catch (const std::runtime_error& err) {
      bad_line(line_no, err.what());
    }
    e.actor = std::string{fields[2]};
    e.subject = std::string{fields[3]};
    e.detail = std::string{fields[4]};
    char* end = nullptr;
    const std::string value_str{fields[5]};
    e.value = std::strtod(value_str.c_str(), &end);
    if (end == value_str.c_str() || *end != '\0') {
      bad_line(line_no, "bad value '" + value_str + "'");
    }
    events.push_back(std::move(e));
  }
  return events;
}

void write_trace_json(std::ostream& out,
                      const std::vector<TraceEvent>& events) {
  auto escape = [&out](const std::string& s) {
    out << '"';
    for (const char c : s) {
      switch (c) {
        case '"': out << "\\\""; break;
        case '\\': out << "\\\\"; break;
        case '\n': out << "\\n"; break;
        case '\t': out << "\\t"; break;
        default: out << c; break;
      }
    }
    out << '"';
  };
  out << "[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out << (i == 0 ? "\n" : ",\n") << "  {\"at_us\": " << e.at.count_micros()
        << ", \"kind\": \"" << to_string(e.kind) << "\", \"actor\": ";
    escape(e.actor);
    out << ", \"subject\": ";
    escape(e.subject);
    out << ", \"detail\": ";
    escape(e.detail);
    out << ", \"value\": " << format_value(e.value) << "}";
  }
  out << "\n]\n";
}

}  // namespace recwild::obs
