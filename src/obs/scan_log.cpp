#include "obs/scan_log.hpp"

#include <cctype>
#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string_view>

namespace recwild::obs {

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Strict single-line parser for exactly the shape write_scan_rows emits.
/// Anything else — reordered keys, missing fields, trailing bytes — is an
/// error; a scan fixture is a format contract, not general JSON.
class RowParser {
 public:
  RowParser(std::string_view line, std::size_t line_no)
      : line_(line), line_no_(line_no) {}

  ScanRow parse() {
    ScanRow row;
    expect('{');
    row.index = parse_uint(key("i"));
    expect(',');
    row.qname = parse_string(key("qname"));
    expect(',');
    row.rcode = parse_string(key("rcode"));
    expect(',');
    key("answers");
    expect('[');
    if (peek() != ']') {
      for (;;) {
        row.answers.push_back(parse_string("answers element"));
        if (peek() != ',') break;
        ++pos_;
      }
    }
    expect(']');
    expect(',');
    row.chain = static_cast<std::uint32_t>(parse_uint(key("chain")));
    expect(',');
    row.sim_ms = parse_double(key("sim_ms"));
    expect(',');
    row.upstream = static_cast<std::uint32_t>(parse_uint(key("upstream")));
    expect(',');
    row.cache_hit = parse_bool(key("cache_hit"));
    expect('}');
    if (pos_ != line_.size()) fail("trailing bytes after row object");
    return row;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error{"scan jsonl line " + std::to_string(line_no_) +
                             ": " + what};
  }
  char peek() const {
    if (pos_ >= line_.size()) fail("unexpected end of line");
    return line_[pos_];
  }
  void expect(char c) {
    if (peek() != c) {
      fail(std::string{"expected '"} + c + "', got '" + line_[pos_] + "'");
    }
    ++pos_;
  }
  /// Consumes `"name":` and returns the key name (for error context).
  const char* key(const char* name) {
    const std::string want = std::string{"\""} + name + "\":";
    if (line_.substr(pos_, want.size()) != want) {
      fail(std::string{"expected key \""} + name + "\"");
    }
    pos_ += want.size();
    return name;
  }
  std::uint64_t parse_uint(const char* what) {
    if (pos_ >= line_.size() || !std::isdigit(
            static_cast<unsigned char>(line_[pos_]))) {
      fail(std::string{"expected unsigned integer for "} + what);
    }
    std::uint64_t v = 0;
    while (pos_ < line_.size() &&
           std::isdigit(static_cast<unsigned char>(line_[pos_]))) {
      v = v * 10 + static_cast<std::uint64_t>(line_[pos_] - '0');
      ++pos_;
    }
    return v;
  }
  double parse_double(const char* what) {
    const std::size_t start = pos_;
    if (pos_ < line_.size() && line_[pos_] == '-') ++pos_;
    while (pos_ < line_.size() &&
           (std::isdigit(static_cast<unsigned char>(line_[pos_])) ||
            line_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) fail(std::string{"expected number for "} + what);
    try {
      return std::stod(std::string{line_.substr(start, pos_ - start)});
    } catch (const std::exception&) {
      fail(std::string{"bad number for "} + what);
    }
  }
  bool parse_bool(const char* what) {
    if (line_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return true;
    }
    if (line_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return false;
    }
    fail(std::string{"expected true/false for "} + what);
  }
  std::string parse_string(const char* what) {
    if (peek() != '"') fail(std::string{"expected string for "} + what);
    ++pos_;
    std::string out;
    while (pos_ < line_.size() && line_[pos_] != '"') {
      char c = line_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= line_.size()) fail("unterminated escape");
      const char esc = line_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > line_.size()) fail("truncated \\u escape");
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = line_[pos_++];
            v <<= 4;
            if (h >= '0' && h <= '9') {
              v |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              v |= static_cast<unsigned>(h - 'a' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          if (v > 0xFF) fail("\\u escape beyond latin-1 in scan row");
          out.push_back(static_cast<char>(v));
          break;
        }
        default: fail("unknown escape");
      }
    }
    if (pos_ >= line_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  std::string_view line_;
  std::size_t line_no_;
  std::size_t pos_ = 0;
};

}  // namespace

void write_scan_rows(std::ostream& out, const std::vector<ScanRow>& rows) {
  std::string buf;
  for (const ScanRow& row : rows) {
    buf.clear();
    buf += "{\"i\":";
    buf += std::to_string(row.index);
    buf += ",\"qname\":";
    append_json_string(buf, row.qname);
    buf += ",\"rcode\":";
    append_json_string(buf, row.rcode);
    buf += ",\"answers\":[";
    for (std::size_t i = 0; i < row.answers.size(); ++i) {
      if (i != 0) buf.push_back(',');
      append_json_string(buf, row.answers[i]);
    }
    buf += "],\"chain\":";
    buf += std::to_string(row.chain);
    buf += ",\"sim_ms\":";
    {
      char num[32];
      std::snprintf(num, sizeof num, "%.3f", row.sim_ms);
      buf += num;
    }
    buf += ",\"upstream\":";
    buf += std::to_string(row.upstream);
    buf += ",\"cache_hit\":";
    buf += row.cache_hit ? "true" : "false";
    buf += "}\n";
    out << buf;
  }
}

std::vector<ScanRow> read_scan_rows(std::istream& in) {
  std::vector<ScanRow> rows;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    rows.push_back(RowParser{line, line_no}.parse());
  }
  return rows;
}

}  // namespace recwild::obs
