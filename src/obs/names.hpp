/// \file
/// \brief Canonical metric names — the single source of truth.
///
/// Every counter, gauge and histogram the library emits is registered under
/// a name defined here; instrumentation sites must use these constants
/// instead of string literals (`scripts/check_metrics_docs.sh` enforces
/// this, and cross-checks that each name is documented in docs/METRICS.md).
/// Names are dotted paths, `<subsystem>.<object>.<aspect>`, and stable: a
/// renamed metric is a new metric.
#pragma once

#include <string_view>

namespace recwild::obs::names {

// --- simulation kernel (src/net/simulation.cpp) -------------------------
/// Events pushed onto the queue via at()/after().
inline constexpr std::string_view kSimEventsScheduled = "sim.events.scheduled";
/// cancel() calls (counted whether or not the event was still pending).
inline constexpr std::string_view kSimEventsCancelled = "sim.events.cancelled";
/// Events popped and executed by run()/run_until().
inline constexpr std::string_view kSimEventsProcessed = "sim.events.processed";
/// High-water mark of pending events (gauge; excluded from shard merges).
inline constexpr std::string_view kSimQueuePeakPending =
    "sim.queue.peak_pending";

// --- simulated network (src/net/network.cpp) ----------------------------
/// Datagrams handed to Network::send (whether or not deliverable).
inline constexpr std::string_view kNetPacketsSent = "net.packets.sent";
/// Datagrams delivered to a bound handler.
inline constexpr std::string_view kNetPacketsDelivered =
    "net.packets.delivered";
/// Datagrams dropped by the loss model.
inline constexpr std::string_view kNetPacketsDropped = "net.packets.dropped";
/// Datagrams to addresses with no binding (silently discarded, like UDP).
inline constexpr std::string_view kNetPacketsUnroutable =
    "net.packets.unroutable";
/// Whole messages sent over the reliable stream transport (simulated TCP).
inline constexpr std::string_view kNetStreamSent = "net.stream.sent";

// --- wire datapath (src/net/network.cpp) --------------------------------
// Payload volume through the encode->send->decode fast path. Byte counts
// are a pure function of the simulated traffic (unlike buffer-pool
// hit/miss rates, which depend on shard layout and thread scheduling and
// are therefore kept OUT of the registry — see net/wire_buffer.hpp), so
// they merge byte-identically across shard counts.
/// Octets of UDP payload handed to Network::send (deliverable or not).
inline constexpr std::string_view kDatapathUdpBytes =
    "datapath.wire.udp_bytes";
/// Octets of payload handed to Network::send_stream (simulated TCP).
inline constexpr std::string_view kDatapathStreamBytes =
    "datapath.wire.stream_bytes";

// --- recursive resolver (src/resolver/resolver.cpp) ---------------------
/// Questions accepted by RecursiveResolver::resolve (network + local).
inline constexpr std::string_view kResolverClientQueries =
    "resolver.client.queries";
/// Upstream query transmissions (UDP and TCP, retries included).
inline constexpr std::string_view kResolverUpstreamSent =
    "resolver.upstream.sent";
/// Upstream transmissions that hit the retransmission timeout.
inline constexpr std::string_view kResolverUpstreamTimeouts =
    "resolver.upstream.timeouts";
/// Histogram of upstream UDP response RTTs, ms.
inline constexpr std::string_view kResolverUpstreamRttMs =
    "resolver.upstream.rtt_ms";
/// Histogram of end-to-end resolution times, ms.
inline constexpr std::string_view kResolverResolveMs = "resolver.resolve_ms";
/// Resolutions that ended in SERVFAIL.
inline constexpr std::string_view kResolverServfails = "resolver.servfails";
/// Truncated UDP answers retried over the stream transport.
inline constexpr std::string_view kResolverTcpFallbacks =
    "resolver.tcp_fallbacks";
/// Failovers to another server after a lame or useless response.
inline constexpr std::string_view kResolverFailovers = "resolver.failovers";

// --- record cache (src/resolver/record_cache.cpp) -----------------------
/// Positive RRset lookups served from cache.
inline constexpr std::string_view kRrcacheHits = "resolver.rrcache.hits";
/// Positive RRset lookups that missed (absent, expired or negative).
inline constexpr std::string_view kRrcacheMisses = "resolver.rrcache.misses";
/// Negative (NXDOMAIN/NODATA) entries served.
inline constexpr std::string_view kRrcacheNegativeHits =
    "resolver.rrcache.negative_hits";
/// LRU evictions under max_entries pressure.
inline constexpr std::string_view kRrcacheEvictions =
    "resolver.rrcache.evictions";

// --- infrastructure cache (src/resolver/infra_cache.cpp) ----------------
/// RTT samples fed into the EWMA (BIND priming included).
inline constexpr std::string_view kInfraRttUpdates =
    "resolver.infra.rtt_updates";
/// Timeouts reported against a server.
inline constexpr std::string_view kInfraTimeouts = "resolver.infra.timeouts";
/// Servers placed on probation after the timeout streak.
inline constexpr std::string_view kInfraBackoffs = "resolver.infra.backoffs";

// --- resolver failure hardening (src/resolver) --------------------------
/// Upstream transmissions whose timeout carried an exponential-backoff
/// multiplier (at least one consecutive timeout already charged).
inline constexpr std::string_view kResolverBackoffApplied =
    "resolver.backoff.applied";
/// Backed-off transmissions whose timeout hit the max_timeout ceiling.
inline constexpr std::string_view kResolverBackoffCapped =
    "resolver.backoff.capped";
/// Servers placed in hold-down after repeated probations (InfraCache).
inline constexpr std::string_view kResolverHolddownEntered =
    "resolver.holddown.entered";
/// Live queries routed to a held-down server as recovery probes.
inline constexpr std::string_view kResolverHolddownProbes =
    "resolver.holddown.probes";
/// Held-down servers that answered a probe and left hold-down early.
inline constexpr std::string_view kResolverHolddownRecovered =
    "resolver.holddown.recovered";
/// Resolutions terminated by the bounded-work deadline (SERVFAIL).
inline constexpr std::string_view kResolverDeadlineExpired =
    "resolver.deadline.expired";

// --- selection policies (src/resolver/selection.cpp) --------------------
/// Unknown servers primed with a random SRTT (BIND behaviour).
inline constexpr std::string_view kSelectionPrimed =
    "resolver.selection.primed";
/// Sticky-forwarder latch moves (initial latch and re-latches).
inline constexpr std::string_view kSelectionLatchMoves =
    "resolver.selection.latch_moves";

// --- authoritative servers (src/authns/server.cpp) ----------------------
/// Queries received across all AuthServer instances (NOTIFY excluded).
inline constexpr std::string_view kAuthnsQueries = "authns.queries";
/// Responses sent (down servers receive but never respond).
inline constexpr std::string_view kAuthnsResponses = "authns.responses";
/// UDP responses truncated past the client's advertised size (TC=1).
inline constexpr std::string_view kAuthnsTruncated = "authns.truncated";
/// Undecodable-but-headered datagrams answered with rcode FORMERR instead
/// of a silent drop (src/authns/server.cpp and the kernel-socket front-end
/// src/netio/server.cpp both count here).
inline constexpr std::string_view kAuthnsFormerr = "authns.formerr";

// --- kernel-socket front-end (src/netio/server.cpp, authnsd) ------------
// Real-transport counters. These exist only in live-server registries
// (authnsd's periodic stats dump); simulations never touch them, so shard
// merge identity is unaffected.
/// UDP datagrams received by the epoll workers.
inline constexpr std::string_view kNetioUdpDatagrams = "netio.udp.datagrams";
/// TCP connections accepted.
inline constexpr std::string_view kNetioTcpConnections =
    "netio.tcp.connections";
/// Whole 2-byte-length-framed DNS messages received over TCP.
inline constexpr std::string_view kNetioTcpMessages = "netio.tcp.messages";
/// Responses written back to a kernel socket (UDP + TCP).
inline constexpr std::string_view kNetioResponses = "netio.responses";
/// Inputs dropped without a reply: QR=1 packets, sub-header runts,
/// oversized TCP frames, connection errors.
inline constexpr std::string_view kNetioDropped = "netio.dropped";

// --- fault injection (src/fault/injector.cpp) ---------------------------
/// Schedule events resolved and armed by a FaultInjector. Counted at
/// arm() time (world construction) but stamped with each event's
/// window-start time, so sharded runs merge to the serial bytes.
inline constexpr std::string_view kFaultEventsArmed = "fault.events.armed";
/// Datagrams eaten by an active fault (blackhole, partition, loss burst,
/// transfer starvation). Also counted in net.packets.dropped.
inline constexpr std::string_view kFaultPacketsDropped =
    "fault.packets.dropped";
/// Datagrams delayed by an active latency-spike fault.
inline constexpr std::string_view kFaultPacketsDelayed =
    "fault.packets.delayed";
/// Queries answered REFUSED because of an active server-refuse fault.
inline constexpr std::string_view kFaultAuthRefused = "fault.auth.refused";

// --- experiment engines (src/experiment/{campaign,production}.cpp) ------
/// Vantage points whose probe schedule was placed on a shard.
inline constexpr std::string_view kCampaignVps = "campaign.vps";
/// Campaign probe queries issued by stubs.
inline constexpr std::string_view kCampaignQueriesSent =
    "campaign.queries.sent";
/// Probe queries answered by a test authoritative.
inline constexpr std::string_view kCampaignQueriesAnswered =
    "campaign.queries.answered";
/// Probe queries that timed out or returned no TXT payload.
inline constexpr std::string_view kCampaignQueriesUnanswered =
    "campaign.queries.unanswered";
/// Cache-busting lookups issued by the production traffic synthesizer.
inline constexpr std::string_view kProductionLookups = "production.lookups";

// --- response-rate limiting (src/authns/server.cpp) ---------------------
/// UDP responses suppressed by RRL (registered lazily when RRL is on).
inline constexpr std::string_view kRrlDropped = "rrl.dropped";
/// UDP responses replaced by a minimal TC=1 slip reply.
inline constexpr std::string_view kRrlSlipped = "rrl.slipped";
/// Referrals whose NS set was trimmed by the referral-fanout cap.
inline constexpr std::string_view kAuthnsReferralCapped =
    "authns.referral.capped";

// --- adversarial workloads (src/experiment/campaign.cpp, src/attack) ----
/// Attack queries injected by bot vantage points (registered when the
/// world carries a non-empty attack schedule).
inline constexpr std::string_view kAttackQueriesInjected =
    "attack.queries.injected";
/// Queries received by authoritatives marked as attack victims — the
/// numerator of the amplification factor.
inline constexpr std::string_view kAttackVictimQueries =
    "attack.victim.queries";

// --- dynamic anycast catchments (src/net, src/anycast, src/fault) -------
/// Packet sends whose anycast site differs from the sender's previous
/// site for the same service address (per-sender-flow, so shard merges
/// reproduce the serial count).
inline constexpr std::string_view kAnycastCatchmentShift =
    "anycast.catchment.shift";
/// Histogram of client-perceived failover latency, ms: time from a site's
/// withdrawal to the first packet the shifted sender routes to its
/// next-best site.
inline constexpr std::string_view kAnycastFailoverLatencyMs =
    "anycast.failover.latency_ms";
/// Drain windows armed on anycast sites. Counted when the drain is
/// installed but stamped with the drain's start time, so sharded runs
/// merge to the serial bytes.
inline constexpr std::string_view kAnycastSiteDrained =
    "anycast.site.drained";
/// Packets lost in a withdrawing site's convergence sink: the route was
/// withdrawn but the sender's routers had not converged yet. Also counted
/// in net.packets.dropped.
inline constexpr std::string_view kAnycastLostInConvergence =
    "anycast.queries.lost_in_convergence";

// --- pipelined front door (src/resolver/resolver.cpp) -------------------
/// High-water mark of admitted in-flight client resolutions per world
/// (gauge; excluded from shard merges). 0 unless admission control is on.
inline constexpr std::string_view kResolverInflight = "resolver.inflight";
/// Client (qname, qtype) chains the pipelined front door coalesced onto an
/// already in-flight or queued identical resolution (one upstream fetch
/// tree answers every waiter). Registered lazily on first use.
inline constexpr std::string_view kResolverCoalesced = "resolver.coalesced";
/// Client resolutions parked in the admission queue because
/// max_inflight_resolutions slots were all taken.
inline constexpr std::string_view kResolverAdmissionQueued =
    "resolver.admission.queued";
/// Client resolutions failed fast with SERVFAIL because the admission
/// queue itself was full (max_queued_resolutions).
inline constexpr std::string_view kResolverAdmissionRejected =
    "resolver.admission.rejected";

// --- bulk scan driver (src/experiment/scan.cpp) -------------------------
/// Scan names handed to a recursive (one per JSONL row issued).
inline constexpr std::string_view kScanNamesIssued = "scan.names.issued";
/// Scan resolutions completed (answer, NXDOMAIN or SERVFAIL — every issued
/// name completes; the resolver's bounded-work deadline guarantees it).
inline constexpr std::string_view kScanNamesCompleted =
    "scan.names.completed";
/// Completed scan resolutions per HOST WALL second of the last run (gauge;
/// wall clock, so never part of deterministic exports or shard merges).
inline constexpr std::string_view kScanQps = "scan.qps";

// --- resolver fetch limits (src/resolver/resolver.cpp) ------------------
/// Glueless-delegation nameserver address fetches the resolver spawned.
inline constexpr std::string_view kResolverFetchSpawned =
    "resolver.fetchlimit.spawned";
/// NS-address fetches suppressed by the per-resolution budget
/// (max_fetches_per_resolution).
inline constexpr std::string_view kResolverFetchResolutionCapped =
    "resolver.fetchlimit.resolution_capped";
/// Upstream queries refused because the target zone already had
/// fetches_per_zone outstanding queries.
inline constexpr std::string_view kResolverFetchZoneCapped =
    "resolver.fetchlimit.zone_capped";

}  // namespace recwild::obs::names
