/// \file
/// \brief Structured decision tracing: why the simulator did what it did.
///
/// A DecisionTrace records span-like events at the points where behaviour is
/// decided — which server a resolver picked, whether a cache answered, when
/// a retry fired, which packet the loss model ate — in a form that is both
/// machine-readable (the same tab-separated discipline as authns::read_trace)
/// and deterministic: events carry SimTime only, and canonical export sorts
/// by the full event tuple so a merged multi-shard trace serialises to the
/// exact bytes of the serial run.
///
/// Tracing is off by default. Instrumentation sites check `enabled()` before
/// building any strings, so a disabled trace costs one predictable branch.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "net/time.hpp"

namespace recwild::obs {

/// What kind of decision a TraceEvent records.
enum class TraceKind : std::uint8_t {
  SelectServer,     ///< Resolver picked an upstream server for a zone.
  PrimeServer,      ///< BIND-style random SRTT priming of an unknown server.
  StickyLatch,      ///< Sticky forwarder latched (or re-latched) a server.
  CacheHit,         ///< Record cache answered a question.
  CacheMiss,        ///< Record cache could not answer.
  NegCacheHit,      ///< Negative cache answered (NXDOMAIN/NODATA).
  UpstreamTimeout,  ///< An upstream query hit its retransmission timeout.
  Failover,         ///< Resolver abandoned a server after a lame/useless answer.
  TcpFallback,      ///< Truncated UDP answer retried over the stream transport.
  PacketDrop,       ///< The network loss model dropped a datagram.
  AuthQuery,        ///< An authoritative server answered (or swallowed) a query.
  Servfail,         ///< A resolution finished with SERVFAIL.
  Progress,         ///< A campaign vantage point finished its probe schedule.
  FaultOn,          ///< A scheduled fault's window opens (src/fault).
  FaultOff,         ///< A scheduled fault's window closes.
  RrlDrop,          ///< RRL suppressed a UDP response entirely.
  RrlSlip,          ///< RRL replaced a UDP response with a TC=1 slip.
  NsFetch,          ///< Resolver spawned a glueless-NS address fetch.
  CatchmentShift,   ///< A sender's anycast catchment moved to another site.
};

/// Canonical lower-snake name of a TraceKind (what the TSV format stores).
[[nodiscard]] std::string_view to_string(TraceKind kind);
/// Parses to_string's output back; throws std::runtime_error on unknown names.
[[nodiscard]] TraceKind trace_kind_from_string(std::string_view name);

/// One traced decision. `actor` is who decided (resolver/server identity),
/// `subject` what it decided about (server address, qname), `detail` the
/// free-form why, and `value` an optional magnitude (RTT ms, TTL s).
/// Ordering compares the full tuple, which canonical export relies on.
struct TraceEvent {
  net::SimTime at;      ///< When the decision happened (sim time).
  TraceKind kind;       ///< What was decided.
  std::string actor;    ///< Who decided.
  std::string subject;  ///< What it was decided about.
  std::string detail;   ///< Why / how (free form, no tabs or newlines).
  double value = 0.0;   ///< Optional magnitude; 0 when meaningless.

  auto operator<=>(const TraceEvent&) const = default;
};

/// Append-only sink of TraceEvents, per simulation. Recording is gated on
/// `enabled()` — callers must check it before constructing event strings.
class DecisionTrace {
 public:
  /// Turns recording on or off; existing events are kept either way.
  void set_enabled(bool on) noexcept { enabled_ = on; }
  /// Whether record() currently stores events. Check this FIRST.
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Stores one event if enabled (no-op otherwise).
  void record(TraceEvent event) {
    if (enabled_) events_.push_back(std::move(event));
  }

  /// All recorded events, in recording order.
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  /// Number of recorded events.
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  /// Drops all recorded events (the enabled flag is unchanged).
  void clear() noexcept { events_.clear(); }

  /// Appends another trace's events (cross-shard merge); recording order of
  /// the result is arbitrary — export canonical() for deterministic bytes.
  void append(const DecisionTrace& other);

  /// The events sorted by the full tuple (time, kind, actor, subject,
  /// detail, value). Two traces holding the same event multiset — e.g.
  /// serial vs merged shards — canonicalise identically.
  [[nodiscard]] std::vector<TraceEvent> canonical() const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

/// Writes events as the repo's tab-separated trace format, one per line:
/// `t_us<TAB>kind<TAB>actor<TAB>subject<TAB>detail<TAB>value`.
/// Lines starting with `#` are comments on read.
void write_trace(std::ostream& out, const std::vector<TraceEvent>& events);

/// Parses write_trace's format. Skips blank and `#` lines; throws
/// std::runtime_error naming the line number on malformed input (wrong
/// field count, bad integer/kind/value) — same contract as authns::read_trace.
[[nodiscard]] std::vector<TraceEvent> read_trace(std::istream& in);

/// Writes events as a deterministic JSON array (objects with at_us, kind,
/// actor, subject, detail, value).
void write_trace_json(std::ostream& out, const std::vector<TraceEvent>& events);

}  // namespace recwild::obs
