// Process self-observation: resident-set sampling for the shard engines
// and benchmarks. Linux-only (/proc/self/status); other platforms report 0
// so callers can print "unavailable" rather than fail.
#pragma once

#include <cstddef>
#include <fstream>
#include <string>

namespace recwild::obs {

namespace detail {

inline std::size_t read_status_kb(const char* field) {
#if defined(__linux__)
  std::ifstream in{"/proc/self/status"};
  std::string line;
  const std::string key = std::string{field} + ":";
  while (std::getline(in, line)) {
    if (line.rfind(key, 0) != 0) continue;
    std::size_t kb = 0;
    for (const char c : line) {
      if (c >= '0' && c <= '9') {
        kb = kb * 10 + static_cast<std::size_t>(c - '0');
      }
    }
    return kb;
  }
#else
  (void)field;
#endif
  return 0;
}

}  // namespace detail

/// Current resident set size in KiB (0 when unavailable). Sampled by the
/// shard engines right after a shard's event loop drains, so a run's
/// per-shard memory growth is attributable even though the peak counter
/// below is process-wide and monotonic.
inline std::size_t current_rss_kb() { return detail::read_status_kb("VmRSS"); }

/// Process-wide peak resident set size in KiB (0 when unavailable).
/// Monotonic across the process lifetime — comparable only against samples
/// from the same process.
inline std::size_t peak_rss_kb() { return detail::read_status_kb("VmHWM"); }

}  // namespace recwild::obs
