/// \file
/// \brief Deterministic metrics: counters, gauges and sim-time histograms.
///
/// A MetricRegistry collects named metrics for one simulation. Everything is
/// stamped with SimTime — wall clock never appears — so a metric snapshot is
/// as reproducible as the simulation itself: same seed, same bytes.
///
/// Shard determinism. The sharded experiment engines (campaign/production)
/// run disjoint traffic on replica worlds and merge the per-shard registries
/// back into the caller's. Counters and histograms merge by summation and
/// their timestamps by max, which reproduces the serial run exactly because
/// every random stream is keyed by identity (see DESIGN.md / campaign.hpp).
/// Gauges are point-in-time levels of ONE world (e.g. peak queue depth) and
/// cannot be reconstructed from shard pieces, so merges leave them alone and
/// `SnapshotStyle::MergeSafe` exports exclude them — that style is
/// byte-identical for every shard count.
///
/// Cost. Recording is a pointer-indirected integer add; instrumentation
/// sites cache `Counter*` handles once and pay no name lookup afterwards.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "net/time.hpp"

namespace recwild::obs {

/// Monotonically increasing event count, stamped with the sim time of the
/// most recent increment.
class Counter {
 public:
  /// Adds `n` occurrences observed at sim time `at`.
  void add(std::uint64_t n, net::SimTime at) noexcept {
    value_ += n;
    if (last_change_ < at) last_change_ = at;
  }
  /// Total count so far.
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  /// Sim time of the most recent add (origin if never incremented).
  [[nodiscard]] net::SimTime last_change() const noexcept {
    return last_change_;
  }

 private:
  std::uint64_t value_ = 0;
  net::SimTime last_change_;
};

/// Point-in-time level of one simulation world (queue depth, cache size).
/// Excluded from shard merges — see the file comment.
class Gauge {
 public:
  /// Sets the current level.
  void set(double v, net::SimTime at) noexcept {
    value_ = v;
    if (last_change_ < at) last_change_ = at;
  }
  /// High-water update: keeps the maximum of the current and new level.
  void max_of(double v, net::SimTime at) noexcept {
    if (v > value_) set(v, at);
  }
  /// Current level.
  [[nodiscard]] double value() const noexcept { return value_; }
  /// Sim time of the most recent change (origin if never set).
  [[nodiscard]] net::SimTime last_change() const noexcept {
    return last_change_;
  }

 private:
  double value_ = 0.0;
  net::SimTime last_change_;
};

/// Fixed-bin histogram over [lo, hi) with equal-width bins; out-of-range
/// samples are clamped into the edge bins so nothing is silently dropped
/// (same policy as stats::Histogram). Bin layout is part of the metric's
/// identity: merging requires identical (lo, hi, bins).
class Histogram {
 public:
  /// Creates `bins` equal-width bins over [lo, hi); requires bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  /// Records one sample observed at sim time `at`.
  void observe(double x, net::SimTime at) noexcept;

  /// Lower bound of the range.
  [[nodiscard]] double lo() const noexcept { return lo_; }
  /// Upper bound of the range.
  [[nodiscard]] double hi() const noexcept { return hi_; }
  /// Number of bins.
  [[nodiscard]] std::size_t bin_count() const noexcept {
    return counts_.size();
  }
  /// Count in one bin.
  [[nodiscard]] std::uint64_t count(std::size_t bin) const {
    return counts_.at(bin);
  }
  /// Total samples recorded.
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Sim time of the most recent sample (origin if none).
  [[nodiscard]] net::SimTime last_sample() const noexcept { return last_; }

 private:
  friend class MetricRegistry;

  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  net::SimTime last_;
};

/// Controls which metrics a snapshot export includes.
enum class SnapshotStyle {
  /// Everything, gauges included. Deterministic for a fixed seed AND shard
  /// count, but gauges differ between serial and sharded runs.
  Full,
  /// Counters and histograms only — byte-identical for every shard count.
  MergeSafe,
};

/// Value copy of a registry at one instant: the unit of export, diffing and
/// cross-shard merging. All lists are sorted by metric name.
struct MetricsSnapshot {
  /// Counter state at snapshot time.
  struct CounterValue {
    std::string name;                ///< Registry name (obs::names).
    std::uint64_t value = 0;         ///< Total count.
    std::int64_t last_change_us = 0; ///< Sim time of last add, microseconds.
  };
  /// Gauge state at snapshot time.
  struct GaugeValue {
    std::string name;                ///< Registry name (obs::names).
    double value = 0.0;              ///< Current level.
    std::int64_t last_change_us = 0; ///< Sim time of last change, micros.
  };
  /// Histogram state at snapshot time.
  struct HistogramValue {
    std::string name;                  ///< Registry name (obs::names).
    double lo = 0.0;                   ///< Range lower bound.
    double hi = 0.0;                   ///< Range upper bound.
    std::vector<std::uint64_t> counts; ///< Per-bin sample counts.
    std::uint64_t total = 0;           ///< Total samples.
    std::int64_t last_sample_us = 0;   ///< Sim time of last sample, micros.
  };

  std::vector<CounterValue> counters;     ///< Sorted by name.
  std::vector<GaugeValue> gauges;         ///< Sorted by name.
  std::vector<HistogramValue> histograms; ///< Sorted by name.

  /// The increments accumulated since `baseline` (an earlier snapshot of
  /// the same registry): counter values and histogram bins subtract;
  /// timestamps and gauges keep their current values. This is what a shard
  /// contributes to the cross-shard merge.
  [[nodiscard]] MetricsSnapshot delta_since(
      const MetricsSnapshot& baseline) const;

  /// Drops zero-valued counters, empty histograms and all gauges in place
  /// and returns *this. Applied to a shard's delta before it is streamed
  /// into the cross-shard accumulator: merging a zero entry only touches
  /// timestamps, and an untouched metric's timestamp is already identical
  /// on every identically-built world, so compaction cannot change the
  /// merged bytes — it only shrinks what each shard ships.
  MetricsSnapshot& compact();

  /// Writes the snapshot as deterministic JSON: keys sorted, integers
  /// verbatim, bounds with up to six significant digits.
  void write_json(std::ostream& out,
                  SnapshotStyle style = SnapshotStyle::Full) const;
  /// write_json into a string.
  [[nodiscard]] std::string to_json(
      SnapshotStyle style = SnapshotStyle::Full) const;

  /// The named counter's state, or nullptr when absent.
  [[nodiscard]] const CounterValue* find_counter(std::string_view name) const;
  /// The named counter's value, or 0 when absent.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
};

/// Owner of all metrics of one simulation. Handles returned by counter() /
/// gauge() / histogram() stay valid for the registry's lifetime (storage is
/// node-based), so instrumentation sites resolve each name exactly once.
class MetricRegistry {
 public:
  /// The counter registered under `name`, created on first use.
  Counter& counter(std::string_view name);
  /// The gauge registered under `name`, created on first use.
  Gauge& gauge(std::string_view name);
  /// The histogram registered under `name`, created on first use with the
  /// given bin layout. Throws std::runtime_error if the name is already
  /// registered with a different (lo, hi, bins).
  Histogram& histogram(std::string_view name, double lo, double hi,
                       std::size_t bins);

  /// Value copy of every metric, sorted by name.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Folds a shard's delta into this registry: counters and histogram bins
  /// add (metrics absent here are created), timestamps take the max.
  /// Gauges are NOT merged — see the file comment. Throws
  /// std::runtime_error on histogram bin-layout mismatch.
  void merge_sum(const MetricsSnapshot& delta);

 private:
  // std::map: stable node addresses (handles survive rehashing-free) and
  // name-sorted iteration for free, which snapshot() relies on.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace recwild::obs
