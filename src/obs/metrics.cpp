#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace recwild::obs {

namespace {

/// Deterministic rendering for histogram bounds: up to six significant
/// digits, no locale, no trailing-zero drift across platforms.
std::string format_bound(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return std::string{buf};
}

void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c; break;
    }
  }
  out << '"';
}

}  // namespace

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi) {
  if (bins == 0 || !(hi > lo)) {
    throw std::runtime_error{"obs::Histogram: invalid bin layout"};
  }
  counts_.assign(bins, 0);
}

void Histogram::observe(double x, net::SimTime at) noexcept {
  const double span = hi_ - lo_;
  double pos = (x - lo_) / span * static_cast<double>(counts_.size());
  if (pos < 0.0) pos = 0.0;
  std::size_t bin = static_cast<std::size_t>(pos);
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  ++counts_[bin];
  ++total_;
  if (last_ < at) last_ = at;
}

Counter& MetricRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string{name}, Counter{}).first->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string{name}, Gauge{}).first->second;
}

Histogram& MetricRegistry::histogram(std::string_view name, double lo,
                                     double hi, std::size_t bins) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    Histogram& h = it->second;
    if (h.lo() != lo || h.hi() != hi || h.bin_count() != bins) {
      throw std::runtime_error{"obs::MetricRegistry: histogram '" +
                               std::string{name} +
                               "' re-registered with a different layout"};
    }
    return h;
  }
  return histograms_.emplace(std::string{name}, Histogram{lo, hi, bins})
      .first->second;
}

MetricsSnapshot MetricRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back(
        {name, c.value(), c.last_change().count_micros()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g.value(), g.last_change().count_micros()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue v;
    v.name = name;
    v.lo = h.lo();
    v.hi = h.hi();
    v.counts = h.counts_;
    v.total = h.total();
    v.last_sample_us = h.last_sample().count_micros();
    snap.histograms.push_back(std::move(v));
  }
  return snap;
}

void MetricRegistry::merge_sum(const MetricsSnapshot& delta) {
  for (const auto& cv : delta.counters) {
    Counter& c = counter(cv.name);
    c.add(cv.value, net::SimTime::from_micros(cv.last_change_us));
  }
  for (const auto& hv : delta.histograms) {
    Histogram& h = histogram(hv.name, hv.lo, hv.hi, hv.counts.size());
    if (h.counts_.size() != hv.counts.size()) {
      throw std::runtime_error{
          "obs::MetricRegistry: histogram merge layout mismatch for '" +
          hv.name + "'"};
    }
    for (std::size_t i = 0; i < hv.counts.size(); ++i) {
      h.counts_[i] += hv.counts[i];
    }
    h.total_ += hv.total;
    const auto at = net::SimTime::from_micros(hv.last_sample_us);
    if (h.last_ < at) h.last_ = at;
  }
  // Gauges: levels of one world do not sum across shards; keep ours.
}

MetricsSnapshot MetricsSnapshot::delta_since(
    const MetricsSnapshot& baseline) const {
  auto base_counter = [&baseline](const std::string& name) -> std::uint64_t {
    for (const auto& c : baseline.counters) {
      if (c.name == name) return c.value;
    }
    return 0;
  };
  auto base_hist =
      [&baseline](const std::string& name) -> const HistogramValue* {
    for (const auto& h : baseline.histograms) {
      if (h.name == name) return &h;
    }
    return nullptr;
  };

  MetricsSnapshot out = *this;
  for (auto& c : out.counters) c.value -= base_counter(c.name);
  for (auto& h : out.histograms) {
    const HistogramValue* b = base_hist(h.name);
    if (b == nullptr) continue;
    for (std::size_t i = 0; i < h.counts.size() && i < b->counts.size();
         ++i) {
      h.counts[i] -= b->counts[i];
    }
    h.total -= b->total;
  }
  return out;
}

MetricsSnapshot& MetricsSnapshot::compact() {
  std::erase_if(counters,
                [](const CounterValue& c) { return c.value == 0; });
  std::erase_if(histograms,
                [](const HistogramValue& h) { return h.total == 0; });
  gauges.clear();
  return *this;
}

void MetricsSnapshot::write_json(std::ostream& out,
                                 SnapshotStyle style) const {
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    const auto& c = counters[i];
    out << (i == 0 ? "\n" : ",\n") << "    ";
    write_json_string(out, c.name);
    out << ": {\"value\": " << c.value
        << ", \"last_change_us\": " << c.last_change_us << "}";
  }
  out << "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    ";
    write_json_string(out, h.name);
    out << ": {\"lo\": " << format_bound(h.lo)
        << ", \"hi\": " << format_bound(h.hi) << ", \"total\": " << h.total
        << ", \"last_sample_us\": " << h.last_sample_us << ", \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b != 0) out << ", ";
      out << h.counts[b];
    }
    out << "]}";
  }
  out << "\n  }";
  if (style == SnapshotStyle::Full) {
    out << ",\n  \"gauges\": {";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
      const auto& g = gauges[i];
      out << (i == 0 ? "\n" : ",\n") << "    ";
      write_json_string(out, g.name);
      out << ": {\"value\": " << format_bound(g.value)
          << ", \"last_change_us\": " << g.last_change_us << "}";
    }
    out << "\n  }";
  }
  out << "\n}\n";
}

std::string MetricsSnapshot::to_json(SnapshotStyle style) const {
  std::ostringstream out;
  write_json(out, style);
  return out.str();
}

const MetricsSnapshot::CounterValue* MetricsSnapshot::find_counter(
    std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const {
  const CounterValue* c = find_counter(name);
  return c != nullptr ? c->value : 0;
}

}  // namespace recwild::obs
