/// \file
/// \brief JSONL scan-result sink: one structured row per bulk-scan query.
///
/// The bulk scan driver (experiment::ScanDriver) emits ZDNS-style output:
/// one JSON object per line, fixed key order, deterministic number
/// formatting — so a fixed-seed scan serialises to byte-identical output
/// at any shard count, and fixtures can be committed and diffed.
///
/// Like the rest of src/obs, this file is dependency-light on purpose
/// (strings and streams only, no dns types): rcode and answers arrive
/// already in presentation form.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace recwild::obs {

/// One completed scan query. `sim_ms` is simulated latency (admission to
/// completion) — host wall time never appears in a row, which is what
/// keeps fixed-seed scan output reproducible; wall-clock throughput is
/// reported once per run (scan.qps / ScanResult), not per row.
struct ScanRow {
  std::uint64_t index = 0;    ///< Global name index (stable across shards).
  std::string qname;          ///< Queried name, presentation form.
  std::string rcode;          ///< Final rcode ("NOERROR", "SERVFAIL", ...).
  std::vector<std::string> answers;  ///< Answer payloads (TXT strings or
                                     ///< rdata presentation), chain order.
  std::uint32_t chain = 0;    ///< Records in the answer chain (CNAMEs incl).
  double sim_ms = 0.0;        ///< Simulated resolution latency, ms.
  std::uint32_t upstream = 0; ///< Upstream transmissions (0 = cache hit).
  bool cache_hit = false;     ///< Answered without any upstream query.

  bool operator==(const ScanRow&) const = default;
};

/// Writes one `{"i":...,"qname":...,...}` object per row, `\n`-terminated,
/// keys in fixed order, sim_ms with exactly 3 decimals (microsecond
/// precision): deterministic bytes for deterministic rows.
void write_scan_rows(std::ostream& out, const std::vector<ScanRow>& rows);

/// Parses write_scan_rows' format. Skips blank lines; throws
/// std::runtime_error naming the 1-based line number on malformed input
/// (unknown key, wrong type, trailing garbage) — the same discipline as
/// obs::read_trace / authns::read_trace.
[[nodiscard]] std::vector<ScanRow> read_scan_rows(std::istream& in);

}  // namespace recwild::obs
