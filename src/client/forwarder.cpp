#include "client/forwarder.hpp"

namespace recwild::client {

namespace {
constexpr net::Port kForwarderUpstreamPort = 20'053;
}

Forwarder::Forwarder(net::Network& network, net::NodeId node,
                     net::IpAddress address, net::IpAddress upstream,
                     ForwarderConfig config, stats::Rng rng)
    : network_(network),
      node_(node),
      address_(address),
      upstream_(upstream),
      config_(config),
      rng_(rng),
      client_ep_{address, net::kDnsPort},
      upstream_ep_{address, kForwarderUpstreamPort},
      cache_(resolver::RecordCacheConfig{
          config.cache_entries == 0 ? 1 : config.cache_entries, 0,
          86'400}) {}

Forwarder::~Forwarder() { stop(); }

void Forwarder::start() {
  if (listening_) return;
  network_.listen(node_, client_ep_,
                  [this](const net::Datagram& d, net::NodeId) {
                    on_client(d);
                  });
  network_.listen(node_, upstream_ep_,
                  [this](const net::Datagram& d, net::NodeId) {
                    on_upstream(d);
                  });
  listening_ = true;
}

void Forwarder::stop() {
  if (!listening_) return;
  network_.unlisten(node_, client_ep_);
  network_.unlisten(node_, upstream_ep_);
  listening_ = false;
}

void Forwarder::on_client(const net::Datagram& dgram) {
  dns::Message query;
  try {
    query = dns::decode_message(dgram.payload);
  } catch (const dns::WireError&) {
    return;
  }
  if (query.header.qr || query.questions.empty()) return;
  const dns::Question q = query.question();

  // Local cache first (when enabled).
  if (config_.cache_entries > 0) {
    if (auto hit = cache_.get(q.qname, q.qtype, network_.sim().now())) {
      ++cache_hits_;
      dns::Message resp = dns::Message::make_response(query);
      resp.header.ra = true;
      resp.answers = hit->to_records();
      network_.send(node_, client_ep_, dgram.src,
                    dns::encode_message(resp));
      return;
    }
  }

  // Forward with a fresh transaction id.
  std::uint16_t txid = static_cast<std::uint16_t>(rng_.next());
  while (pending_.contains(txid)) ++txid;
  Pending p;
  p.client = dgram.src;
  p.client_id = query.header.id;
  p.question = q;
  p.timeout_event = network_.sim().after(
      config_.timeout, [this, txid] { on_timeout(txid); });
  pending_.emplace(txid, std::move(p));

  dns::Message fwd = query;
  fwd.header.id = txid;
  ++forwarded_;
  network_.send(node_, upstream_ep_,
                net::Endpoint{upstream_, net::kDnsPort},
                dns::encode_message(fwd));
}

void Forwarder::on_upstream(const net::Datagram& dgram) {
  dns::Message resp;
  try {
    resp = dns::decode_message(dgram.payload);
  } catch (const dns::WireError&) {
    return;
  }
  if (!resp.header.qr || resp.questions.empty()) return;
  const auto it = pending_.find(resp.header.id);
  if (it == pending_.end()) return;
  if (!(resp.question().qname == it->second.question.qname) ||
      resp.question().qtype != it->second.question.qtype) {
    return;
  }
  Pending p = std::move(it->second);
  pending_.erase(it);
  network_.sim().cancel(p.timeout_event);

  if (config_.cache_entries > 0 && resp.header.rcode == dns::Rcode::NoError) {
    for (const auto& set : dns::group_rrsets(resp.answers)) {
      cache_.put(set, network_.sim().now());
    }
  }

  resp.header.id = p.client_id;
  network_.send(node_, client_ep_, p.client, dns::encode_message(resp));
}

void Forwarder::on_timeout(std::uint16_t txid) {
  const auto it = pending_.find(txid);
  if (it == pending_.end()) return;
  ++timeouts_;
  // Real CPE boxes mostly drop the query on upstream timeout; the stub's
  // own retry logic handles it.
  pending_.erase(it);
}

}  // namespace recwild::client
