// Stub resolver: the client side of DNS (a CL box in the paper's Figure 1).
//
// A stub sends recursion-desired queries to its configured recursive
// resolver(s) and reports what came back. RIPE Atlas probes — the paper's
// vantage points — behave exactly like this: query the local recursive,
// record the answer payload and response time.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dnscore/codec.hpp"
#include "dnscore/message.hpp"
#include "net/network.hpp"
#include "stats/rng.hpp"

namespace recwild::client {

/// One completed stub query.
struct StubResult {
  dns::Question question;
  dns::Rcode rcode = dns::Rcode::ServFail;
  bool timed_out = false;
  /// TXT strings from the answer (the paper's authoritative identifier).
  std::vector<std::string> txt;
  /// All answer records, for non-TXT queries.
  std::vector<dns::ResourceRecord> answers;
  /// Stub-observed resolution time (includes the recursive's work).
  net::Duration elapsed = net::Duration::zero();
  /// Which configured recursive served (index into the stub's list).
  std::size_t recursive_index = 0;
};

using StubCallback = std::function<void(const StubResult&)>;

struct StubConfig {
  /// Per-attempt timeout before trying the next configured recursive.
  net::Duration attempt_timeout = net::Duration::seconds(5);
  /// Full passes over the recursive list before giving up.
  int max_rounds = 2;
};

class StubResolver {
 public:
  StubResolver(net::Network& network, net::NodeId node,
               net::IpAddress address, std::vector<net::IpAddress> recursives,
               StubConfig config, stats::Rng rng);
  ~StubResolver();
  StubResolver(const StubResolver&) = delete;
  StubResolver& operator=(const StubResolver&) = delete;

  void start();
  void stop();

  /// Sends one query; the callback fires on answer or final timeout.
  void query(dns::Name qname, dns::RRType qtype, StubCallback cb);

  [[nodiscard]] const std::vector<net::IpAddress>& recursives()
      const noexcept {
    return recursives_;
  }
  [[nodiscard]] net::NodeId node() const noexcept { return node_; }
  [[nodiscard]] net::IpAddress address() const noexcept { return address_; }

 private:
  struct Pending {
    dns::Question question;
    StubCallback cb;
    net::SimTime started_at;
    std::size_t recursive_index = 0;
    int attempts = 0;
    net::EventId timeout_event = 0;
  };

  void send_attempt(std::uint16_t txid);
  void on_datagram(const net::Datagram& dgram);
  void on_timeout(std::uint16_t txid);

  net::Network& network_;
  net::NodeId node_;
  net::IpAddress address_;
  std::vector<net::IpAddress> recursives_;
  StubConfig config_;
  stats::Rng rng_;
  net::Endpoint ep_;
  bool listening_ = false;
  std::unordered_map<std::uint16_t, Pending> pending_;  // by txid
};

}  // namespace recwild::client
