#include "client/stub.hpp"

namespace recwild::client {

namespace {
constexpr net::Port kStubPort = 40'000;
}

StubResolver::StubResolver(net::Network& network, net::NodeId node,
                           net::IpAddress address,
                           std::vector<net::IpAddress> recursives,
                           StubConfig config, stats::Rng rng)
    : network_(network),
      node_(node),
      address_(address),
      recursives_(std::move(recursives)),
      config_(config),
      rng_(rng),
      ep_{address, kStubPort} {}

StubResolver::~StubResolver() { stop(); }

void StubResolver::start() {
  if (listening_) return;
  network_.listen(node_, ep_, [this](const net::Datagram& d, net::NodeId) {
    on_datagram(d);
  });
  listening_ = true;
}

void StubResolver::stop() {
  if (!listening_) return;
  network_.unlisten(node_, ep_);
  listening_ = false;
}

void StubResolver::query(dns::Name qname, dns::RRType qtype, StubCallback cb) {
  // Hard cap: one stub can hold at most 2^16 concurrent queries (the txid
  // space). Bulk drivers pipeline thousands of queries per stub; when the
  // space is exhausted the collision probe below could never terminate, so
  // fail fast the way a saturated stub's caller would see a timeout.
  if (pending_.size() >= 65'536) {
    StubResult result;
    result.question =
        dns::Question{std::move(qname), qtype, dns::RRClass::IN};
    result.timed_out = true;
    cb(result);
    return;
  }
  // Fresh txid, avoiding collisions with in-flight queries (the probe
  // wraps modulo 2^16 and the cap above guarantees a free slot exists).
  std::uint16_t txid = static_cast<std::uint16_t>(rng_.next());
  while (pending_.contains(txid)) ++txid;

  Pending p;
  p.question = dns::Question{std::move(qname), qtype, dns::RRClass::IN};
  p.cb = std::move(cb);
  p.started_at = network_.sim().now();
  pending_.emplace(txid, std::move(p));
  send_attempt(txid);
}

void StubResolver::send_attempt(std::uint16_t txid) {
  auto it = pending_.find(txid);
  if (it == pending_.end()) return;
  Pending& p = it->second;

  const int max_attempts =
      config_.max_rounds * static_cast<int>(recursives_.size());
  if (p.attempts >= max_attempts || recursives_.empty()) {
    StubResult result;
    result.question = p.question;
    result.timed_out = true;
    result.elapsed = network_.sim().now() - p.started_at;
    auto cb = std::move(p.cb);
    pending_.erase(it);
    cb(result);
    return;
  }

  const std::size_t idx =
      static_cast<std::size_t>(p.attempts) % recursives_.size();
  p.recursive_index = idx;
  ++p.attempts;

  dns::Message query =
      dns::Message::make_query(txid, p.question.qname, p.question.qtype);
  query.header.rd = true;
  network_.send(node_, ep_,
                net::Endpoint{recursives_[idx], net::kDnsPort},
                dns::encode_message(query));
  p.timeout_event = network_.sim().after(
      config_.attempt_timeout, [this, txid] { on_timeout(txid); });
}

void StubResolver::on_timeout(std::uint16_t txid) {
  send_attempt(txid);  // rotates to the next recursive or gives up
}

void StubResolver::on_datagram(const net::Datagram& dgram) {
  dns::Message resp;
  try {
    resp = dns::decode_message(dgram.payload);
  } catch (const dns::WireError&) {
    return;
  }
  if (!resp.header.qr || resp.questions.empty()) return;
  const auto it = pending_.find(resp.header.id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  if (!(resp.question().qname == p.question.qname) ||
      resp.question().qtype != p.question.qtype) {
    return;
  }
  network_.sim().cancel(p.timeout_event);

  StubResult result;
  result.question = p.question;
  result.rcode = resp.header.rcode;
  result.answers = resp.answers;
  result.elapsed = network_.sim().now() - p.started_at;
  result.recursive_index = p.recursive_index;
  for (const auto& rr : resp.answers) {
    if (rr.type() == dns::RRType::TXT) {
      const auto& txt = std::get<dns::TxtRdata>(rr.rdata);
      result.txt.insert(result.txt.end(), txt.strings.begin(),
                        txt.strings.end());
    }
  }
  auto cb = std::move(p.cb);
  pending_.erase(it);
  cb(result);
}

}  // namespace recwild::client
