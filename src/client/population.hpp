// Vantage-point population generator — the synthetic stand-in for the RIPE
// Atlas probe fleet (paper §3.1).
//
// The generator reproduces the structural properties the paper's analysis
// depends on:
//   * ~9.7k probes, heavily skewed to Europe. Continental weights default
//     to the paper's own VP counts (Figure 5: EU 6221, NA 1181, AS 692,
//     OC 245, AF 215, SA 131).
//   * Probes cluster into ASes; each AS runs one or two ISP recursives
//     placed near its probes. ~3,300 ASes for 9,700 probes in the paper.
//   * A fraction of probes use a shared public-DNS service instead of (or
//     in addition to) their ISP recursive — the paper observes probes with
//     multiple configured recursives and treats each (probe, recursive)
//     pair as one VP.
//   * Each recursive runs a selection policy drawn from a PolicyMixture.
#pragma once

#include <memory>
#include <vector>

#include "client/forwarder.hpp"
#include "client/stub.hpp"
#include "net/geo.hpp"
#include "resolver/resolver.hpp"

namespace recwild::client {

struct VantagePoint {
  std::size_t probe_id = 0;
  net::Continent continent = net::Continent::Europe;
  net::GeoPoint location;
  net::NodeId node = net::kInvalidNode;
  std::unique_ptr<StubResolver> stub;
};

struct RecursiveInfo {
  std::unique_ptr<resolver::RecursiveResolver> resolver;
  net::Continent continent = net::Continent::Europe;
  net::GeoPoint location;
  bool is_public = false;
};

struct PopulationConfig {
  /// Number of probes to create. The paper's runs saw ~8.7k VPs; smaller
  /// values scale every experiment down proportionally.
  std::size_t probes = 2'000;
  /// Per-continent probe weights; defaults follow the paper's VP counts.
  double weight_af = 215;
  double weight_as = 692;
  double weight_eu = 6221;
  double weight_na = 1181;
  double weight_oc = 245;
  double weight_sa = 131;
  /// Mean probes per AS (paper: 9.7k probes over 3.3k ASes ≈ 2.9).
  double mean_probes_per_as = 2.9;
  /// Fraction of probes configured with a shared public resolver
  /// (instead of their ISP's).
  double public_resolver_fraction = 0.10;
  /// Fraction of probes with a second configured recursive.
  double second_recursive_fraction = 0.08;
  /// Number of shared public-DNS recursive instances.
  std::size_t public_resolvers = 6;
  /// Geographic scatter around the chosen catalog city, degrees.
  double scatter_deg = 3.0;
  /// Selection-policy mixture across ISP recursives.
  resolver::PolicyMixture mixture = resolver::PolicyMixture::wild();
  /// Fraction of ISP recursives that are dual-stack (only meaningful on a
  /// dual-stack testbed: they then also use AAAA glue for upstreams). The
  /// paper found 69% of Atlas VPs v4-only, so ~0.3 is realistic.
  double ipv6_fraction = 0.0;
  /// Fraction of probes that sit behind a forwarding middlebox (home
  /// router) instead of talking to the recursive directly — the MI boxes
  /// of the paper's Figure 1.
  double forwarder_fraction = 0.0;
  ForwarderConfig forwarder{};
  /// Per-VP query timeout configuration.
  StubConfig stub{};
  /// Resolver tuning knobs applied to every recursive.
  resolver::ResolverConfig resolver_template{};
};

/// The constructed population. Owns all stubs and recursives; nodes live in
/// the Network.
class Population {
 public:
  Population() = default;
  Population(Population&&) = default;
  Population& operator=(Population&&) = default;

  [[nodiscard]] std::vector<VantagePoint>& vps() noexcept { return vps_; }
  [[nodiscard]] const std::vector<VantagePoint>& vps() const noexcept {
    return vps_;
  }
  [[nodiscard]] std::vector<RecursiveInfo>& recursives() noexcept {
    return recursives_;
  }
  [[nodiscard]] const std::vector<RecursiveInfo>& recursives()
      const noexcept {
    return recursives_;
  }

  [[nodiscard]] const std::vector<std::unique_ptr<Forwarder>>& forwarders()
      const noexcept {
    return forwarders_;
  }

  /// Finds the RecursiveInfo serving a given address. Forwarder addresses
  /// resolve through to their upstream recursive (the middlebox is
  /// transparent for analysis purposes). Returns nullptr if unknown.
  [[nodiscard]] const RecursiveInfo* recursive_by_address(
      net::IpAddress addr) const;

  /// Flushes every recursive's record+infra caches (the paper's 4-hour
  /// break between measurements).
  void flush_all_caches();

  friend Population build_population(net::Network& network,
                                     const PopulationConfig& config,
                                     const std::vector<resolver::RootHint>&
                                         hints,
                                     stats::Rng rng);

 private:
  std::vector<VantagePoint> vps_;
  std::vector<RecursiveInfo> recursives_;
  std::vector<std::unique_ptr<Forwarder>> forwarders_;
};

/// Creates probes, ISP recursives and public recursives on `network`.
/// `hints` bootstraps every recursive (root hints file).
Population build_population(net::Network& network,
                            const PopulationConfig& config,
                            const std::vector<resolver::RootHint>& hints,
                            stats::Rng rng);

}  // namespace recwild::client
