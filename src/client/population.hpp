// Vantage-point population generator — the synthetic stand-in for the RIPE
// Atlas probe fleet (paper §3.1).
//
// The generator reproduces the structural properties the paper's analysis
// depends on:
//   * ~9.7k probes, heavily skewed to Europe. Continental weights default
//     to the paper's own VP counts (Figure 5: EU 6221, NA 1181, AS 692,
//     OC 245, AF 215, SA 131).
//   * Probes cluster into ASes; each AS runs one or two ISP recursives
//     placed near its probes. ~3,300 ASes for 9,700 probes in the paper.
//   * A fraction of probes use a shared public-DNS service instead of (or
//     in addition to) their ISP recursive — the paper observes probes with
//     multiple configured recursives and treats each (probe, recursive)
//     pair as one VP.
//   * Each recursive runs a selection policy drawn from a PolicyMixture.
//
// Generation is split into two phases so sharded experiment engines can
// share one world across replicas:
//   * plan_population() consumes the RNG stream and a NodeCatalog exactly
//     as construction used to, producing an immutable PopulationPlan — a
//     struct-of-arrays record of every node id, address, upstream list and
//     per-entity RNG fork. No live object is created; the plan draws the
//     byte-for-byte identical sequence the old single-phase builder drew,
//     so seeds, fixtures and node/address layouts are unchanged.
//   * materialize_population() turns the plan (or a partition of it) into
//     live stubs/forwarders/recursives on a concrete Network, allocated
//     from the Population's arena. A shard replica materializes only the
//     vantage points it simulates; the plan itself is shared read-only.
#pragma once

#include <cstdint>
#include <vector>

#include "client/forwarder.hpp"
#include "client/stub.hpp"
#include "net/geo.hpp"
#include "resolver/resolver.hpp"
#include "stats/arena.hpp"

namespace recwild::client {

struct VantagePoint {
  std::size_t probe_id = 0;
  net::Continent continent = net::Continent::Europe;
  net::GeoPoint location;
  net::NodeId node = net::kInvalidNode;
  /// Owned by the Population's arena; valid for the Population's lifetime.
  StubResolver* stub = nullptr;
};

struct RecursiveInfo {
  /// Owned by the Population's arena; valid for the Population's lifetime.
  resolver::RecursiveResolver* resolver = nullptr;
  net::Continent continent = net::Continent::Europe;
  net::GeoPoint location;
  bool is_public = false;
};

struct PopulationConfig {
  /// Number of probes to create. The paper's runs saw ~8.7k VPs; smaller
  /// values scale every experiment down proportionally.
  std::size_t probes = 2'000;
  /// Per-continent probe weights; defaults follow the paper's VP counts.
  double weight_af = 215;
  double weight_as = 692;
  double weight_eu = 6221;
  double weight_na = 1181;
  double weight_oc = 245;
  double weight_sa = 131;
  /// Mean probes per AS (paper: 9.7k probes over 3.3k ASes ≈ 2.9).
  double mean_probes_per_as = 2.9;
  /// Fraction of probes configured with a shared public resolver
  /// (instead of their ISP's).
  double public_resolver_fraction = 0.10;
  /// Fraction of probes with a second configured recursive.
  double second_recursive_fraction = 0.08;
  /// Number of shared public-DNS recursive instances.
  std::size_t public_resolvers = 6;
  /// Geographic scatter around the chosen catalog city, degrees.
  double scatter_deg = 3.0;
  /// Selection-policy mixture across ISP recursives.
  resolver::PolicyMixture mixture = resolver::PolicyMixture::wild();
  /// Fraction of ISP recursives that are dual-stack (only meaningful on a
  /// dual-stack testbed: they then also use AAAA glue for upstreams). The
  /// paper found 69% of Atlas VPs v4-only, so ~0.3 is realistic.
  double ipv6_fraction = 0.0;
  /// Fraction of probes that sit behind a forwarding middlebox (home
  /// router) instead of talking to the recursive directly — the MI boxes
  /// of the paper's Figure 1.
  double forwarder_fraction = 0.0;
  ForwarderConfig forwarder{};
  /// Per-VP query timeout configuration.
  StubConfig stub{};
  /// Resolver tuning knobs applied to every recursive.
  resolver::ResolverConfig resolver_template{};
};

/// The immutable population blueprint: everything build-time randomness
/// decided, laid out struct-of-arrays over vantage points. One plan is
/// built per world (inside WorldSnapshot::build) and shared read-only by
/// all shard replicas; it holds no live objects and no Network references.
struct PopulationPlan {
  /// One planned recursive. `label_id` reconstructs the resolver name
  /// ("public-dns-<id>" or "isp-recursive-as<id>") at materialize time, so
  /// a million-recursive plan does not store a million name strings twice.
  struct RecursivePlan {
    std::uint64_t label_id = 0;
    net::NodeId node = net::kInvalidNode;
    net::IpAddress address;
    resolver::PolicyKind policy = resolver::PolicyKind::BindSrtt;
    bool dual = false;
    bool is_public = false;
    net::Continent continent = net::Continent::Europe;
    net::GeoPoint location;
    stats::Rng rng{0};
  };
  /// One planned home-router middlebox, relaying probe -> ISP recursive.
  struct ForwarderPlan {
    std::size_t probe_id = 0;
    net::NodeId node = net::kInvalidNode;
    net::IpAddress address;
    net::IpAddress upstream;
    stats::Rng rng{0};
  };

  // Hot per-VP state, struct-of-arrays: index = probe id.
  std::vector<net::Continent> vp_continent;
  std::vector<net::GeoPoint> vp_location;
  std::vector<net::NodeId> vp_node;
  std::vector<net::IpAddress> vp_stub_addr;
  std::vector<stats::Rng> vp_rng;
  /// CSR layout of per-VP upstream address lists (primary first): VP v's
  /// upstreams are vp_upstreams[vp_upstream_off[v] .. vp_upstream_off[v+1]).
  std::vector<std::uint32_t> vp_upstream_off;
  std::vector<net::IpAddress> vp_upstreams;
  /// Index into `forwarders` of the VP's middlebox, or -1.
  std::vector<std::int32_t> vp_forwarder;

  std::vector<RecursivePlan> recursives;
  std::vector<ForwarderPlan> forwarders;

  [[nodiscard]] std::size_t vp_count() const noexcept {
    return vp_node.size();
  }
};

/// The constructed population. Owns all stubs and recursives (in its
/// arena); nodes live in the Network / shared NodeCatalog. May be a
/// partition of the plan: vps() then holds only the materialized vantage
/// points, ascending by probe id — use by_probe() for identity lookups.
class Population {
 public:
  Population() = default;
  Population(Population&&) = default;
  Population& operator=(Population&&) = default;

  [[nodiscard]] std::vector<VantagePoint>& vps() noexcept { return vps_; }
  [[nodiscard]] const std::vector<VantagePoint>& vps() const noexcept {
    return vps_;
  }
  [[nodiscard]] std::vector<RecursiveInfo>& recursives() noexcept {
    return recursives_;
  }
  [[nodiscard]] const std::vector<RecursiveInfo>& recursives()
      const noexcept {
    return recursives_;
  }

  [[nodiscard]] const std::vector<Forwarder*>& forwarders() const noexcept {
    return forwarders_;
  }

  /// The vantage point with this probe id, or nullptr when it is not part
  /// of this (possibly partition-scoped) population. Binary search: vps_
  /// is ascending by probe id.
  [[nodiscard]] VantagePoint* by_probe(std::size_t probe_id) noexcept;
  [[nodiscard]] const VantagePoint* by_probe(
      std::size_t probe_id) const noexcept;

  /// Finds the RecursiveInfo serving a given address. Forwarder addresses
  /// resolve through to their upstream recursive (the middlebox is
  /// transparent for analysis purposes). Returns nullptr if unknown.
  [[nodiscard]] const RecursiveInfo* recursive_by_address(
      net::IpAddress addr) const;

  /// Flushes every recursive's record+infra caches (the paper's 4-hour
  /// break between measurements).
  void flush_all_caches();

  friend Population materialize_population(
      net::Network& network, const PopulationPlan& plan,
      const PopulationConfig& config,
      const std::vector<resolver::RootHint>& hints,
      const std::vector<std::size_t>* partition, bool adopt_into_network);

 private:
  /// Declared first so it outlives (is destroyed after) the raw pointers
  /// below; owns every stub/forwarder/recursive of this population.
  stats::Arena arena_;
  std::vector<VantagePoint> vps_;
  std::vector<RecursiveInfo> recursives_;
  std::vector<Forwarder*> forwarders_;
};

/// Plans a population: consumes `rng` and the catalog exactly as the live
/// builder would (same node ids, same addresses, same fork points), but
/// creates no objects. Safe to run without any Network or Simulation.
PopulationPlan plan_population(net::NodeCatalog& catalog,
                               const PopulationConfig& config,
                               stats::Rng rng);

/// Materializes live stubs/forwarders/recursives from a plan onto
/// `network`, allocated from the returned Population's arena.
///
/// `partition` (ascending probe ids) restricts materialization to those
/// vantage points plus the closure of forwarders/recursives they can
/// reach; nullptr materializes everything. `adopt_into_network` replays
/// the plan's node additions and address allocations onto `network` (the
/// standalone path, for networks without a shared base catalog); worlds
/// whose Network was built over the plan's catalog pass false.
Population materialize_population(
    net::Network& network, const PopulationPlan& plan,
    const PopulationConfig& config,
    const std::vector<resolver::RootHint>& hints,
    const std::vector<std::size_t>* partition = nullptr,
    bool adopt_into_network = false);

/// Creates probes, ISP recursives and public recursives on `network`.
/// `hints` bootstraps every recursive (root hints file). One-shot
/// plan+materialize; kept for direct users of a plain Network.
Population build_population(net::Network& network,
                            const PopulationConfig& config,
                            const std::vector<resolver::RootHint>& hints,
                            stats::Rng rng);

}  // namespace recwild::client
