#include "client/population.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "stats/distributions.hpp"

namespace recwild::client {

namespace {

using net::Continent;

/// Picks a catalog city on `continent` and scatters around it.
net::GeoPoint scatter_city(Continent continent, double scatter_deg,
                           stats::Rng& rng, net::GeoPoint* city_out) {
  const auto cities = net::locations_on(continent);
  const auto& city = cities[rng.index(cities.size())];
  if (city_out != nullptr) *city_out = city.point;
  net::GeoPoint p = city.point;
  p.lat_deg += rng.uniform(-scatter_deg, scatter_deg);
  p.lon_deg += rng.uniform(-scatter_deg, scatter_deg);
  p.lat_deg = std::clamp(p.lat_deg, -85.0, 85.0);
  if (p.lon_deg > 180.0) p.lon_deg -= 360.0;
  if (p.lon_deg < -180.0) p.lon_deg += 360.0;
  return p;
}

std::string recursive_name(const PopulationPlan::RecursivePlan& rp) {
  return (rp.is_public ? "public-dns-" : "isp-recursive-as") +
         std::to_string(rp.label_id);
}

}  // namespace

VantagePoint* Population::by_probe(std::size_t probe_id) noexcept {
  const auto it = std::lower_bound(
      vps_.begin(), vps_.end(), probe_id,
      [](const VantagePoint& vp, std::size_t id) {
        return vp.probe_id < id;
      });
  return it != vps_.end() && it->probe_id == probe_id ? &*it : nullptr;
}

const VantagePoint* Population::by_probe(
    std::size_t probe_id) const noexcept {
  return const_cast<Population*>(this)->by_probe(probe_id);
}

const RecursiveInfo* Population::recursive_by_address(
    net::IpAddress addr) const {
  // Middleboxes are transparent: chase a forwarder to its upstream.
  for (const auto* f : forwarders_) {
    if (f->address() == addr) {
      addr = f->upstream();
      break;
    }
  }
  for (const auto& r : recursives_) {
    if (r.resolver->address() == addr) return &r;
  }
  return nullptr;
}

void Population::flush_all_caches() {
  for (auto& r : recursives_) r.resolver->flush_caches();
}

PopulationPlan plan_population(net::NodeCatalog& catalog,
                               const PopulationConfig& config,
                               stats::Rng rng) {
  // The draw/allocation sequence below replicates the historical one-shot
  // builder call for call: every rng draw, node id and address a seed used
  // to produce stays byte-identical, which is what keeps golden fixtures
  // and shard byte-identity stable across the plan/materialize split.
  PopulationPlan plan;

  const std::vector<Continent> continents{
      Continent::Africa,       Continent::Asia,    Continent::Europe,
      Continent::NorthAmerica, Continent::Oceania, Continent::SouthAmerica};
  const stats::WeightedSampler continent_sampler{
      {config.weight_af, config.weight_as, config.weight_eu,
       config.weight_na, config.weight_oc, config.weight_sa}};

  // Public recursives: large shared services at well-connected cities.
  std::vector<net::IpAddress> public_addrs;
  {
    static constexpr std::string_view kPublicCities[] = {
        "FRA", "IAD", "SIN", "SFO", "LHR", "NRT", "GRU", "SYD"};
    for (std::size_t i = 0; i < config.public_resolvers; ++i) {
      const auto loc = net::find_location(
          kPublicCities[i % std::size(kPublicCities)]);
      PopulationPlan::RecursivePlan rp;
      rp.label_id = i;
      rp.node = catalog.add_node("public-dns-" + std::to_string(i),
                                 loc->point);
      // Public services run modern latency-aware software.
      rp.policy = (i % 2 == 0) ? resolver::PolicyKind::UnboundBand
                               : resolver::PolicyKind::BindSrtt;
      rp.address = catalog.allocate_address();
      rp.rng = rng.fork("public-dns-" + std::to_string(i));
      rp.is_public = true;
      rp.continent = loc->continent;
      rp.location = loc->point;
      public_addrs.push_back(rp.address);
      plan.recursives.push_back(rp);
    }
  }

  plan.vp_upstream_off.push_back(0);

  // ASes: cluster probes, give each AS an ISP recursive near its centroid.
  std::size_t created = 0;
  std::size_t as_id = 0;
  while (created < config.probes) {
    ++as_id;
    // AS size: geometric-ish around the configured mean, at least 1.
    std::size_t as_probes = 1 + static_cast<std::size_t>(
        rng.exponential(std::max(0.0, config.mean_probes_per_as - 1.0)));
    as_probes = std::min(as_probes, config.probes - created);

    const auto continent = continents[continent_sampler.sample(rng)];
    net::GeoPoint city;
    const net::GeoPoint as_center =
        scatter_city(continent, config.scatter_deg, rng, &city);

    // ISP recursive for this AS.
    PopulationPlan::RecursivePlan rp;
    rp.label_id = as_id;
    rp.node = catalog.add_node("isp-recursive-as" + std::to_string(as_id),
                               as_center);
    rp.policy = config.mixture.draw(rng);
    rp.dual = rng.chance(config.ipv6_fraction);
    rp.address = catalog.allocate_address();
    rp.rng = rng.fork("isp-recursive-as" + std::to_string(as_id));
    rp.continent = continent;
    rp.location = as_center;
    const net::IpAddress raddr = rp.address;
    plan.recursives.push_back(rp);

    for (std::size_t i = 0; i < as_probes; ++i) {
      const std::size_t probe_id = created++;
      net::GeoPoint ploc = as_center;
      ploc.lat_deg += rng.uniform(-0.8, 0.8);
      ploc.lon_deg += rng.uniform(-0.8, 0.8);
      const net::NodeId pnode =
          catalog.add_node("probe-" + std::to_string(probe_id), ploc);

      std::int32_t forwarder = -1;
      const bool uses_public =
          !public_addrs.empty() &&
          rng.chance(config.public_resolver_fraction);
      if (uses_public) {
        plan.vp_upstreams.push_back(
            public_addrs[rng.index(public_addrs.size())]);
      } else if (rng.chance(config.forwarder_fraction)) {
        // Home-router middlebox on the probe's own premises, relaying to
        // the ISP recursive.
        PopulationPlan::ForwarderPlan fp;
        fp.probe_id = probe_id;
        fp.node = pnode;
        fp.address = catalog.allocate_address();
        fp.upstream = raddr;
        fp.rng = rng.fork("forwarder-" + std::to_string(probe_id));
        forwarder = static_cast<std::int32_t>(plan.forwarders.size());
        plan.forwarders.push_back(fp);
        plan.vp_upstreams.push_back(fp.address);
      } else {
        plan.vp_upstreams.push_back(raddr);
      }
      if (rng.chance(config.second_recursive_fraction)) {
        // Second configured recursive: the other kind.
        if (uses_public) {
          plan.vp_upstreams.push_back(raddr);
        } else if (!public_addrs.empty()) {
          plan.vp_upstreams.push_back(
              public_addrs[rng.index(public_addrs.size())]);
        }
      }

      plan.vp_continent.push_back(continent);
      plan.vp_location.push_back(ploc);
      plan.vp_node.push_back(pnode);
      plan.vp_stub_addr.push_back(catalog.allocate_address());
      plan.vp_rng.push_back(rng.fork("probe-" + std::to_string(probe_id)));
      plan.vp_upstream_off.push_back(
          static_cast<std::uint32_t>(plan.vp_upstreams.size()));
      plan.vp_forwarder.push_back(forwarder);
    }
  }
  return plan;
}

Population materialize_population(
    net::Network& network, const PopulationPlan& plan,
    const PopulationConfig& config,
    const std::vector<resolver::RootHint>& hints,
    const std::vector<std::size_t>* partition, bool adopt_into_network) {
  Population pop;

  if (adopt_into_network) {
    // Standalone path (no shared catalog): replay the plan's node and
    // address sequences onto the network so ids line up with the plan.
    std::vector<std::pair<net::NodeId, const void*>> order;
    struct Named {
      std::string name;
      net::GeoPoint point;
    };
    std::vector<std::pair<net::NodeId, Named>> nodes;
    nodes.reserve(plan.recursives.size() + plan.vp_count());
    for (const auto& rp : plan.recursives) {
      nodes.push_back({rp.node, {recursive_name(rp), rp.location}});
    }
    for (std::size_t v = 0; v < plan.vp_count(); ++v) {
      nodes.push_back({plan.vp_node[v],
                       {"probe-" + std::to_string(v), plan.vp_location[v]}});
    }
    std::sort(nodes.begin(), nodes.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [id, info] : nodes) {
      const net::NodeId got =
          network.add_node(std::move(info.name), info.point);
      if (got != id) {
        throw std::logic_error{
            "materialize_population: node id drifted from the plan"};
      }
    }
    const std::size_t addr_count =
        plan.recursives.size() + plan.forwarders.size() + plan.vp_count();
    for (std::size_t i = 0; i < addr_count; ++i) {
      (void)network.allocate_address();
    }
  }

  // Partition closure: which recursives/forwarders this population needs.
  std::vector<char> need_rec(plan.recursives.size(),
                             partition == nullptr ? 1 : 0);
  std::vector<char> need_fwd(plan.forwarders.size(),
                             partition == nullptr ? 1 : 0);
  if (partition != nullptr) {
    std::unordered_map<net::IpAddress, std::size_t> rec_of;
    rec_of.reserve(plan.recursives.size() * 2);
    for (std::size_t r = 0; r < plan.recursives.size(); ++r) {
      rec_of.emplace(plan.recursives[r].address, r);
    }
    std::unordered_map<net::IpAddress, std::size_t> fwd_of;
    fwd_of.reserve(plan.forwarders.size() * 2);
    for (std::size_t f = 0; f < plan.forwarders.size(); ++f) {
      fwd_of.emplace(plan.forwarders[f].address, f);
    }
    for (const std::size_t v : *partition) {
      if (v >= plan.vp_count()) {
        throw std::out_of_range{"materialize_population: bad vp index"};
      }
      for (std::uint32_t u = plan.vp_upstream_off[v];
           u < plan.vp_upstream_off[v + 1]; ++u) {
        net::IpAddress addr = plan.vp_upstreams[u];
        const auto fwd = fwd_of.find(addr);
        if (fwd != fwd_of.end()) {
          need_fwd[fwd->second] = 1;
          addr = plan.forwarders[fwd->second].upstream;
        }
        const auto rec = rec_of.find(addr);
        if (rec != rec_of.end()) need_rec[rec->second] = 1;
      }
    }
  }

  // Recursives, forwarders, then stubs, each ascending in plan order.
  // start() only registers listeners (no events, no rng), so this order is
  // observationally identical to the historical interleaved construction.
  for (std::size_t r = 0; r < plan.recursives.size(); ++r) {
    if (!need_rec[r]) continue;
    const auto& rp = plan.recursives[r];
    resolver::ResolverConfig rc = config.resolver_template;
    rc.name = recursive_name(rp);
    rc.policy = rp.policy;
    if (rp.dual) rc.family = resolver::AddressFamily::Dual;
    RecursiveInfo info;
    info.resolver = pop.arena_.make<resolver::RecursiveResolver>(
        network, rp.node, rp.address, std::move(rc), hints, rp.rng);
    info.resolver->start();
    info.continent = rp.continent;
    info.location = rp.location;
    info.is_public = rp.is_public;
    pop.recursives_.push_back(info);
  }

  for (std::size_t f = 0; f < plan.forwarders.size(); ++f) {
    if (!need_fwd[f]) continue;
    const auto& fp = plan.forwarders[f];
    Forwarder* fwd = pop.arena_.make<Forwarder>(
        network, fp.node, fp.address, fp.upstream, config.forwarder,
        fp.rng);
    fwd->start();
    pop.forwarders_.push_back(fwd);
  }

  const auto materialize_vp = [&](std::size_t v) {
    std::vector<net::IpAddress> upstreams(
        plan.vp_upstreams.begin() + plan.vp_upstream_off[v],
        plan.vp_upstreams.begin() + plan.vp_upstream_off[v + 1]);
    VantagePoint vp;
    vp.probe_id = v;
    vp.continent = plan.vp_continent[v];
    vp.location = plan.vp_location[v];
    vp.node = plan.vp_node[v];
    vp.stub = pop.arena_.make<StubResolver>(
        network, vp.node, plan.vp_stub_addr[v], std::move(upstreams),
        config.stub, plan.vp_rng[v]);
    vp.stub->start();
    pop.vps_.push_back(vp);
  };
  if (partition == nullptr) {
    for (std::size_t v = 0; v < plan.vp_count(); ++v) materialize_vp(v);
  } else {
    for (const std::size_t v : *partition) materialize_vp(v);
  }
  return pop;
}

Population build_population(net::Network& network,
                            const PopulationConfig& config,
                            const std::vector<resolver::RootHint>& hints,
                            stats::Rng rng) {
  net::NodeCatalog catalog;
  catalog.first_id = static_cast<net::NodeId>(network.node_count());
  catalog.next_addr = network.next_host();
  const PopulationPlan plan = plan_population(catalog, config, rng);
  return materialize_population(network, plan, config, hints,
                                /*partition=*/nullptr,
                                /*adopt_into_network=*/true);
}

}  // namespace recwild::client
