#include "client/population.hpp"

#include <algorithm>
#include <string>

#include "stats/distributions.hpp"

namespace recwild::client {

namespace {

using net::Continent;

/// Picks a catalog city on `continent` and scatters around it.
net::GeoPoint scatter_city(Continent continent, double scatter_deg,
                           stats::Rng& rng, net::GeoPoint* city_out) {
  const auto cities = net::locations_on(continent);
  const auto& city = cities[rng.index(cities.size())];
  if (city_out != nullptr) *city_out = city.point;
  net::GeoPoint p = city.point;
  p.lat_deg += rng.uniform(-scatter_deg, scatter_deg);
  p.lon_deg += rng.uniform(-scatter_deg, scatter_deg);
  p.lat_deg = std::clamp(p.lat_deg, -85.0, 85.0);
  if (p.lon_deg > 180.0) p.lon_deg -= 360.0;
  if (p.lon_deg < -180.0) p.lon_deg += 360.0;
  return p;
}

}  // namespace

const RecursiveInfo* Population::recursive_by_address(
    net::IpAddress addr) const {
  // Middleboxes are transparent: chase a forwarder to its upstream.
  for (const auto& f : forwarders_) {
    if (f->address() == addr) {
      addr = f->upstream();
      break;
    }
  }
  for (const auto& r : recursives_) {
    if (r.resolver->address() == addr) return &r;
  }
  return nullptr;
}

void Population::flush_all_caches() {
  for (auto& r : recursives_) r.resolver->flush_caches();
}

Population build_population(net::Network& network,
                            const PopulationConfig& config,
                            const std::vector<resolver::RootHint>& hints,
                            stats::Rng rng) {
  Population pop;

  const std::vector<Continent> continents{
      Continent::Africa,       Continent::Asia,    Continent::Europe,
      Continent::NorthAmerica, Continent::Oceania, Continent::SouthAmerica};
  const stats::WeightedSampler continent_sampler{
      {config.weight_af, config.weight_as, config.weight_eu,
       config.weight_na, config.weight_oc, config.weight_sa}};

  // Public recursives: large shared services at well-connected cities.
  std::vector<net::IpAddress> public_addrs;
  {
    static constexpr std::string_view kPublicCities[] = {
        "FRA", "IAD", "SIN", "SFO", "LHR", "NRT", "GRU", "SYD"};
    for (std::size_t i = 0; i < config.public_resolvers; ++i) {
      const auto loc = net::find_location(
          kPublicCities[i % std::size(kPublicCities)]);
      const net::NodeId node = network.add_node(
          "public-dns-" + std::to_string(i), loc->point);
      resolver::ResolverConfig rc = config.resolver_template;
      rc.name = "public-dns-" + std::to_string(i);
      // Public services run modern latency-aware software.
      rc.policy = (i % 2 == 0) ? resolver::PolicyKind::UnboundBand
                               : resolver::PolicyKind::BindSrtt;
      const net::IpAddress addr = network.allocate_address();
      RecursiveInfo info;
      info.resolver = std::make_unique<resolver::RecursiveResolver>(
          network, node, addr, std::move(rc), hints,
          rng.fork("public-dns-" + std::to_string(i)));
      info.resolver->start();
      info.continent = loc->continent;
      info.location = loc->point;
      info.is_public = true;
      public_addrs.push_back(addr);
      pop.recursives_.push_back(std::move(info));
    }
  }

  // ASes: cluster probes, give each AS an ISP recursive near its centroid.
  std::size_t created = 0;
  std::size_t as_id = 0;
  while (created < config.probes) {
    ++as_id;
    // AS size: geometric-ish around the configured mean, at least 1.
    std::size_t as_probes = 1 + static_cast<std::size_t>(
        rng.exponential(std::max(0.0, config.mean_probes_per_as - 1.0)));
    as_probes = std::min(as_probes, config.probes - created);

    const auto continent = continents[continent_sampler.sample(rng)];
    net::GeoPoint city;
    const net::GeoPoint as_center =
        scatter_city(continent, config.scatter_deg, rng, &city);

    // ISP recursive for this AS.
    const net::NodeId rnode = network.add_node(
        "isp-recursive-as" + std::to_string(as_id), as_center);
    resolver::ResolverConfig rc = config.resolver_template;
    rc.name = "isp-recursive-as" + std::to_string(as_id);
    rc.policy = config.mixture.draw(rng);
    if (rng.chance(config.ipv6_fraction)) {
      rc.family = resolver::AddressFamily::Dual;
    }
    const net::IpAddress raddr = network.allocate_address();
    RecursiveInfo info;
    info.resolver = std::make_unique<resolver::RecursiveResolver>(
        network, rnode, raddr, std::move(rc), hints,
        rng.fork("isp-recursive-as" + std::to_string(as_id)));
    info.resolver->start();
    info.continent = continent;
    info.location = as_center;
    pop.recursives_.push_back(std::move(info));

    for (std::size_t i = 0; i < as_probes; ++i) {
      const std::size_t probe_id = created++;
      net::GeoPoint ploc = as_center;
      ploc.lat_deg += rng.uniform(-0.8, 0.8);
      ploc.lon_deg += rng.uniform(-0.8, 0.8);
      const net::NodeId pnode =
          network.add_node("probe-" + std::to_string(probe_id), ploc);

      std::vector<net::IpAddress> upstreams;
      const bool uses_public =
          !public_addrs.empty() &&
          rng.chance(config.public_resolver_fraction);
      if (uses_public) {
        upstreams.push_back(public_addrs[rng.index(public_addrs.size())]);
      } else if (rng.chance(config.forwarder_fraction)) {
        // Home-router middlebox on the probe's own premises, relaying to
        // the ISP recursive.
        const net::IpAddress faddr = network.allocate_address();
        auto fwd = std::make_unique<Forwarder>(
            network, pnode, faddr, raddr, config.forwarder,
            rng.fork("forwarder-" + std::to_string(probe_id)));
        fwd->start();
        pop.forwarders_.push_back(std::move(fwd));
        upstreams.push_back(faddr);
      } else {
        upstreams.push_back(raddr);
      }
      if (rng.chance(config.second_recursive_fraction)) {
        // Second configured recursive: the other kind.
        if (uses_public) {
          upstreams.push_back(raddr);
        } else if (!public_addrs.empty()) {
          upstreams.push_back(public_addrs[rng.index(public_addrs.size())]);
        }
      }

      VantagePoint vp;
      vp.probe_id = probe_id;
      vp.continent = continent;
      vp.location = ploc;
      vp.node = pnode;
      vp.stub = std::make_unique<StubResolver>(
          network, pnode, network.allocate_address(), std::move(upstreams),
          config.stub, rng.fork("probe-" + std::to_string(probe_id)));
      vp.stub->start();
      pop.vps_.push_back(std::move(vp));
    }
  }
  return pop;
}

}  // namespace recwild::client
