// DNS forwarding middlebox — the MI boxes in the paper's Figure 1.
//
// Home routers and CPE devices commonly proxy DNS: the stub talks to the
// middlebox, which forwards to the real recursive and relays answers back,
// optionally through a small local cache. The paper worries middleboxes
// could distort its client-side view and verifies (by comparing client-
// and server-side data, §3.1) that the effect is minor; the forwarder
// component lets the reproduction run that same verification.
#pragma once

#include <unordered_map>

#include "dnscore/codec.hpp"
#include "net/network.hpp"
#include "resolver/record_cache.hpp"

namespace recwild::client {

struct ForwarderConfig {
  /// Upstream attempt timeout before giving up on a query.
  net::Duration timeout = net::Duration::seconds(4);
  /// Entries in the middlebox's local answer cache (0 disables caching —
  /// plain relaying).
  std::size_t cache_entries = 256;
};

class Forwarder {
 public:
  Forwarder(net::Network& network, net::NodeId node, net::IpAddress address,
            net::IpAddress upstream, ForwarderConfig config,
            stats::Rng rng);
  ~Forwarder();
  Forwarder(const Forwarder&) = delete;
  Forwarder& operator=(const Forwarder&) = delete;

  void start();
  void stop();

  [[nodiscard]] net::IpAddress address() const noexcept { return address_; }
  [[nodiscard]] net::IpAddress upstream() const noexcept {
    return upstream_;
  }

  [[nodiscard]] std::uint64_t forwarded() const noexcept {
    return forwarded_;
  }
  [[nodiscard]] std::uint64_t cache_hits() const noexcept {
    return cache_hits_;
  }
  [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }

 private:
  struct Pending {
    net::Endpoint client;
    std::uint16_t client_id = 0;
    dns::Question question;
    net::EventId timeout_event = 0;
  };

  void on_client(const net::Datagram& dgram);
  void on_upstream(const net::Datagram& dgram);
  void on_timeout(std::uint16_t txid);

  net::Network& network_;
  net::NodeId node_;
  net::IpAddress address_;
  net::IpAddress upstream_;
  ForwarderConfig config_;
  stats::Rng rng_;
  net::Endpoint client_ep_;
  net::Endpoint upstream_ep_;
  resolver::RecordCache cache_;
  bool listening_ = false;
  std::unordered_map<std::uint16_t, Pending> pending_;  // by upstream txid
  std::uint64_t forwarded_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t timeouts_ = 0;
};

}  // namespace recwild::client
