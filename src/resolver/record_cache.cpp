#include "resolver/record_cache.hpp"

#include <algorithm>

#include "obs/names.hpp"

namespace recwild::resolver {

CacheEntry* RecordCache::find_live(const dns::Name& name, dns::RRType type,
                                   net::SimTime now) {
  auto it = entries_.find(KeyView{name, type});
  if (it == entries_.end()) return nullptr;
  if (it->second.entry.expires_at <= now) {
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
    return nullptr;
  }
  touch(it->second);
  return &it->second.entry;
}

void RecordCache::touch(Slot& slot) {
  // splice: O(1) relink, no node alloc/free, no Key copy; slot.lru_pos
  // stays valid (splice never invalidates list iterators).
  lru_.splice(lru_.begin(), lru_, slot.lru_pos);
}

std::optional<dns::RRset> RecordCache::get(const dns::Name& name,
                                           dns::RRType type,
                                           net::SimTime now) {
  CacheEntry* e = find_live(name, type, now);
  if (e == nullptr || e->negative) {
    ++misses_;
    if (obs_misses_ != nullptr) obs_misses_->add(1, now);
    return std::nullopt;
  }
  ++hits_;
  if (obs_hits_ != nullptr) obs_hits_->add(1, now);
  dns::RRset out = e->rrset;
  const double remaining = (e->expires_at - now).sec();
  out.ttl = static_cast<dns::Ttl>(std::max(0.0, remaining));
  return out;
}

std::optional<dns::Rcode> RecordCache::get_negative(const dns::Name& name,
                                                    dns::RRType type,
                                                    net::SimTime now) {
  CacheEntry* e = find_live(name, type, now);
  if (e == nullptr || !e->negative) return std::nullopt;
  if (obs_negative_hits_ != nullptr) obs_negative_hits_->add(1, now);
  return e->negative_rcode;
}

const dns::RRset* RecordCache::peek(const dns::Name& name, dns::RRType type,
                                    net::SimTime now) const {
  const auto it = entries_.find(KeyView{name, type});
  if (it == entries_.end()) return nullptr;
  const CacheEntry& e = it->second.entry;
  if (e.expires_at <= now || e.negative) return nullptr;
  return &e.rrset;
}

void RecordCache::put(const dns::RRset& rrset, net::SimTime now) {
  const dns::Ttl ttl =
      std::clamp(rrset.ttl, config_.min_ttl, config_.max_ttl);
  CacheEntry entry;
  entry.rrset = rrset;
  entry.rrset.ttl = ttl;
  entry.expires_at = now + net::Duration::seconds(ttl);
  insert(Key{rrset.name, rrset.type}, std::move(entry), now);
}

void RecordCache::put_negative(const dns::Name& name, dns::RRType type,
                               dns::Rcode rcode, dns::Ttl ttl,
                               net::SimTime now) {
  CacheEntry entry;
  entry.negative = true;
  entry.negative_rcode = rcode;
  entry.rrset.name = name;
  entry.rrset.type = type;
  entry.expires_at =
      now + net::Duration::seconds(
                std::clamp(ttl, config_.min_ttl, config_.max_ttl));
  insert(Key{name, type}, std::move(entry), now);
}

void RecordCache::insert(Key key, CacheEntry entry, net::SimTime now) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.entry = std::move(entry);
    touch(it->second);
    return;
  }
  while (entries_.size() >= config_.max_entries) evict_one(now);
  lru_.push_front(key);
  entries_.emplace(std::move(key), Slot{std::move(entry), lru_.begin()});
}

void RecordCache::evict_one(net::SimTime now) {
  if (lru_.empty()) return;
  const Key victim = lru_.back();
  lru_.pop_back();
  entries_.erase(victim);
  ++evictions_;
  if (obs_evictions_ != nullptr) obs_evictions_->add(1, now);
}

void RecordCache::attach_metrics(obs::MetricRegistry& registry) {
  obs_hits_ = &registry.counter(obs::names::kRrcacheHits);
  obs_misses_ = &registry.counter(obs::names::kRrcacheMisses);
  obs_negative_hits_ = &registry.counter(obs::names::kRrcacheNegativeHits);
  obs_evictions_ = &registry.counter(obs::names::kRrcacheEvictions);
}

void RecordCache::clear() {
  entries_.clear();
  lru_.clear();
}

}  // namespace recwild::resolver
