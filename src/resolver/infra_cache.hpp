// Infrastructure cache (paper §2): per-authoritative-IP latency knowledge.
//
// Recursive resolvers keep a cache of "how fast does each authoritative
// answer", keyed by server IP address, and use it to choose among the NS
// addresses of a zone. BIND keeps a smoothed RTT with decay and ~10-minute
// retention; Unbound a TCP-style SRTT/RTTVAR pair with ~15-minute retention.
// This class models that state generically; the selection policies decide
// how to act on it.
#pragma once

#include <optional>
#include <unordered_map>

#include "net/address.hpp"
#include "net/time.hpp"
#include "obs/metrics.hpp"

namespace recwild::resolver {

struct InfraCacheConfig {
  /// Entry lifetime since last update (BIND ~600 s, Unbound ~900 s).
  net::Duration entry_ttl = net::Duration::seconds(600);
  /// EWMA weight of a new RTT sample (BIND: srtt = 0.7 old + 0.3 new).
  double ewma_alpha = 0.3;
  /// Multiplicative penalty applied to SRTT on a query timeout.
  double timeout_penalty = 2.0;
  /// SRTT ceiling, ms (BIND caps effective RTT).
  double max_srtt_ms = 10'000.0;
  /// Consecutive timeouts before the server is put on probation.
  int backoff_threshold = 3;
  /// Probation length once the threshold is hit.
  net::Duration backoff_duration = net::Duration::seconds(60);

  /// Probations in a row (no intervening success) before a server is held
  /// down: removed from selection entirely until a probe query recovers it
  /// or the hold-down lapses. The escalation above probation.
  int holddown_threshold = 2;
  /// Hold-down length, refreshed by every further failure (failed probes
  /// keep a dead server held down).
  net::Duration holddown_duration = net::Duration::seconds(300);
  /// Spacing of probe queries let through while a server is held down.
  net::Duration holddown_probe_interval = net::Duration::seconds(30);
};

struct ServerStats {
  double srtt_ms = 0.0;
  double rttvar_ms = 0.0;
  int consecutive_timeouts = 0;
  /// Probations entered since the last successful answer.
  int probation_streak = 0;
  net::SimTime last_update;
  net::SimTime backoff_until;
  net::SimTime holddown_until;
  net::SimTime next_probe_at;

  [[nodiscard]] bool in_backoff(net::SimTime now) const noexcept {
    return now < backoff_until;
  }
  /// Held down: persistently failing, excluded from selection (stronger
  /// than probation; see InfraCacheConfig::holddown_threshold).
  [[nodiscard]] bool in_holddown(net::SimTime now) const noexcept {
    return now < holddown_until;
  }
  /// A probe query may be routed to this held-down server now.
  [[nodiscard]] bool probe_due(net::SimTime now) const noexcept {
    return in_holddown(now) && now >= next_probe_at;
  }
  /// TCP-style retransmission timeout estimate (Unbound's RTO).
  [[nodiscard]] double rto_ms() const noexcept {
    return srtt_ms + 4.0 * rttvar_ms;
  }
};

class InfraCache {
 public:
  explicit InfraCache(InfraCacheConfig config = {}) : config_(config) {}

  /// Stats for a server, or nullptr when unknown or expired.
  [[nodiscard]] const ServerStats* get(net::IpAddress server,
                                       net::SimTime now) const;

  /// Feeds a measured RTT (EWMA update; resets the timeout streak).
  void report_rtt(net::IpAddress server, net::Duration rtt, net::SimTime now);

  /// Feeds a timeout: penalizes SRTT multiplicatively; after the configured
  /// streak, places the server on probation.
  void report_timeout(net::IpAddress server, net::SimTime now);

  /// BIND-style aging: decays the SRTT of servers that were *not* chosen so
  /// a slightly-slower server is retried eventually.
  void decay(net::IpAddress server, double factor, net::SimTime now);

  /// Records that a probe query was routed to a held-down server: pushes
  /// its probe timer out by holddown_probe_interval. The probe's outcome
  /// arrives through report_rtt (recovery) or report_timeout (extension).
  void note_probe(net::IpAddress server, net::SimTime now);

  /// Number of live (non-expired) entries.
  [[nodiscard]] std::size_t size(net::SimTime now) const;

  /// Drops every entry (the paper's cold-cache condition between runs).
  void clear() { entries_.clear(); }

  [[nodiscard]] const InfraCacheConfig& config() const noexcept {
    return config_;
  }

  /// Mirrors RTT updates, timeouts and probation events into `registry`
  /// (obs::names::kInfra*) from this call on. Optional.
  void attach_metrics(obs::MetricRegistry& registry);

 private:
  [[nodiscard]] bool expired(const ServerStats& s, net::SimTime now) const {
    return now - s.last_update > config_.entry_ttl;
  }

  InfraCacheConfig config_;
  std::unordered_map<net::IpAddress, ServerStats> entries_;
  // Optional registry mirrors (null until attach_metrics).
  obs::Counter* obs_rtt_updates_ = nullptr;
  obs::Counter* obs_timeouts_ = nullptr;
  obs::Counter* obs_backoffs_ = nullptr;
  obs::Counter* obs_holddown_entered_ = nullptr;
  obs::Counter* obs_holddown_probes_ = nullptr;
  obs::Counter* obs_holddown_recovered_ = nullptr;
};

}  // namespace recwild::resolver
