#include "resolver/selection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/names.hpp"

namespace recwild::resolver {

std::string_view to_string(PolicyKind k) noexcept {
  switch (k) {
    case PolicyKind::BindSrtt: return "bind_srtt";
    case PolicyKind::UnboundBand: return "unbound_band";
    case PolicyKind::PowerDnsFactor: return "pdns_factor";
    case PolicyKind::UniformRandom: return "uniform_random";
    case PolicyKind::RoundRobin: return "round_robin";
    case PolicyKind::StickyFirst: return "sticky_first";
  }
  return "unknown";
}

std::optional<PolicyKind> policy_from_string(std::string_view s) noexcept {
  for (const PolicyKind k :
       {PolicyKind::BindSrtt, PolicyKind::UnboundBand,
        PolicyKind::PowerDnsFactor, PolicyKind::UniformRandom,
        PolicyKind::RoundRobin, PolicyKind::StickyFirst}) {
    if (to_string(k) == s) return k;
  }
  return std::nullopt;
}

void ServerSelector::on_timeout(const dns::Name& zone,
                                net::IpAddress server) {
  (void)zone;
  (void)server;
}

void ServerSelector::attach_obs(obs::DecisionTrace* trace,
                                obs::MetricRegistry* registry,
                                std::string actor) {
  trace_ = trace;
  actor_ = std::move(actor);
  if (registry != nullptr) {
    primed_counter_ = &registry->counter(obs::names::kSelectionPrimed);
    latch_counter_ = &registry->counter(obs::names::kSelectionLatchMoves);
  }
}

void ServerSelector::trace_event(obs::TraceKind kind, net::SimTime at,
                                 const dns::Name& zone, net::IpAddress server,
                                 double value) const {
  if (trace_ == nullptr || !trace_->enabled()) return;
  trace_->record(
      {at, kind, actor_, server.to_string(), zone.to_string(), value});
}

namespace {

/// Servers neither on probation nor held down; falls back to all when
/// everything is excluded (a resolver must send *somewhere*).
std::vector<net::IpAddress> usable(std::span<const net::IpAddress> servers,
                                   const InfraCache& infra,
                                   net::SimTime now) {
  std::vector<net::IpAddress> out;
  for (const auto& s : servers) {
    const ServerStats* st = infra.get(s, now);
    if (st == nullptr || (!st->in_backoff(now) && !st->in_holddown(now))) {
      out.push_back(s);
    }
  }
  if (out.empty()) out.assign(servers.begin(), servers.end());
  return out;
}

class BindSrttSelector final : public ServerSelector {
 public:
  explicit BindSrttSelector(SelectionConfig cfg) : cfg_(cfg) {}

  net::IpAddress select(const dns::Name& zone,
                        std::span<const net::IpAddress> servers,
                        InfraCache& infra, net::SimTime now,
                        stats::Rng& rng) override {
    (void)zone;
    const auto candidates = usable(servers, infra, now);
    net::IpAddress best{};
    double best_srtt = std::numeric_limits<double>::infinity();
    for (const auto& s : candidates) {
      const ServerStats* st = infra.get(s, now);
      double srtt;
      if (st == nullptr) {
        // BIND primes unknown servers with a small random SRTT so that
        // every server is probed early on.
        srtt = rng.uniform(1.0, cfg_.bind_unknown_srtt_ms);
        infra.report_rtt(s, net::Duration::millis(srtt), now);
        if (primed_counter_ != nullptr) primed_counter_->add(1, now);
        trace_event(obs::TraceKind::PrimeServer, now, zone, s, srtt);
      } else {
        srtt = st->srtt_ms;
      }
      if (srtt < best_srtt) {
        best_srtt = srtt;
        best = s;
      }
    }
    // Age the servers we did not pick so they are re-tried eventually.
    for (const auto& s : candidates) {
      if (s != best) infra.decay(s, cfg_.bind_decay, now);
    }
    return best;
  }

  [[nodiscard]] PolicyKind kind() const noexcept override {
    return PolicyKind::BindSrtt;
  }

 private:
  SelectionConfig cfg_;
};

class UnboundBandSelector final : public ServerSelector {
 public:
  explicit UnboundBandSelector(SelectionConfig cfg) : cfg_(cfg) {}

  net::IpAddress select(const dns::Name& zone,
                        std::span<const net::IpAddress> servers,
                        InfraCache& infra, net::SimTime now,
                        stats::Rng& rng) override {
    (void)zone;
    const auto candidates = usable(servers, infra, now);
    // Effective RTT: measured RTO or the unknown-host default.
    double best = std::numeric_limits<double>::infinity();
    std::vector<double> rtt(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const ServerStats* st = infra.get(candidates[i], now);
      rtt[i] = st ? st->rto_ms() : cfg_.unbound_unknown_rtt_ms;
      best = std::min(best, rtt[i]);
    }
    // Uniform choice among the lowest band.
    std::vector<net::IpAddress> band;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (rtt[i] <= best + cfg_.unbound_band_ms) band.push_back(candidates[i]);
    }
    return band[rng.index(band.size())];
  }

  [[nodiscard]] PolicyKind kind() const noexcept override {
    return PolicyKind::UnboundBand;
  }

 private:
  SelectionConfig cfg_;
};

class PowerDnsSelector final : public ServerSelector {
 public:
  explicit PowerDnsSelector(SelectionConfig cfg) : cfg_(cfg) {}

  net::IpAddress select(const dns::Name& zone,
                        std::span<const net::IpAddress> servers,
                        InfraCache& infra, net::SimTime now,
                        stats::Rng& rng) override {
    (void)zone;
    const auto candidates = usable(servers, infra, now);
    // Weight ∝ 1/(srtt + c)^2: mostly the fastest, with continuous
    // exploration of the others. Unknown servers count as fast so they
    // get probed.
    std::vector<double> weight(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const ServerStats* st = infra.get(candidates[i], now);
      const double srtt = st ? st->srtt_ms : 0.0;
      const double denom = srtt + cfg_.pdns_offset_ms;
      weight[i] = 1.0 / (denom * denom);
    }
    double total = 0;
    for (const double w : weight) total += w;
    double u = rng.uniform() * total;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      u -= weight[i];
      if (u <= 0) return candidates[i];
    }
    return candidates.back();
  }

  [[nodiscard]] PolicyKind kind() const noexcept override {
    return PolicyKind::PowerDnsFactor;
  }

 private:
  SelectionConfig cfg_;
};

class UniformRandomSelector final : public ServerSelector {
 public:
  net::IpAddress select(const dns::Name& zone,
                        std::span<const net::IpAddress> servers,
                        InfraCache& infra, net::SimTime now,
                        stats::Rng& rng) override {
    (void)zone;
    const auto candidates = usable(servers, infra, now);
    return candidates[rng.index(candidates.size())];
  }

  [[nodiscard]] PolicyKind kind() const noexcept override {
    return PolicyKind::UniformRandom;
  }
};

class RoundRobinSelector final : public ServerSelector {
 public:
  net::IpAddress select(const dns::Name& zone,
                        std::span<const net::IpAddress> servers,
                        InfraCache& infra, net::SimTime now,
                        stats::Rng& rng) override {
    (void)rng;
    const auto candidates = usable(servers, infra, now);
    std::size_t& next = next_[zone];
    const net::IpAddress chosen = candidates[next % candidates.size()];
    next = (next + 1) % std::max<std::size_t>(1, servers.size());
    return chosen;
  }

  [[nodiscard]] PolicyKind kind() const noexcept override {
    return PolicyKind::RoundRobin;
  }

 private:
  std::unordered_map<dns::Name, std::size_t> next_;
};

class StickyFirstSelector final : public ServerSelector {
 public:
  net::IpAddress select(const dns::Name& zone,
                        std::span<const net::IpAddress> servers,
                        InfraCache& infra, net::SimTime now,
                        stats::Rng& rng) override {
    const auto candidates = usable(servers, infra, now);
    const auto it = latch_.find(zone);
    if (it != latch_.end()) {
      if (std::find(candidates.begin(), candidates.end(), it->second) !=
          candidates.end()) {
        return it->second;
      }
      // Latch temporarily unavailable (e.g. on probation): answer with an
      // alternate but KEEP the latch — a forwarder goes back to its
      // configured upstream as soon as it recovers.
      return candidates[rng.index(candidates.size())];
    }
    const net::IpAddress chosen = candidates[rng.index(candidates.size())];
    latch_[zone] = chosen;
    failures_[zone] = 0;
    if (latch_counter_ != nullptr) latch_counter_->add(1, now);
    trace_event(obs::TraceKind::StickyLatch, now, zone, chosen, 0.0);
    return chosen;
  }

  void on_timeout(const dns::Name& zone, net::IpAddress server) override {
    const auto it = latch_.find(zone);
    if (it == latch_.end() || !(it->second == server)) return;
    // A forwarder tolerates transient loss; only persistent failure makes
    // it move on.
    if (++failures_[zone] >= kFailuresBeforeRelatch) {
      latch_.erase(it);
      failures_.erase(zone);
    }
  }

  [[nodiscard]] bool prefers_retry_same() const noexcept override {
    return true;
  }

  [[nodiscard]] PolicyKind kind() const noexcept override {
    return PolicyKind::StickyFirst;
  }

 private:
  static constexpr int kFailuresBeforeRelatch = 6;
  std::unordered_map<dns::Name, net::IpAddress> latch_;
  std::unordered_map<dns::Name, int> failures_;
};

}  // namespace

std::unique_ptr<ServerSelector> make_selector(PolicyKind kind,
                                              SelectionConfig config) {
  switch (kind) {
    case PolicyKind::BindSrtt:
      return std::make_unique<BindSrttSelector>(config);
    case PolicyKind::UnboundBand:
      return std::make_unique<UnboundBandSelector>(config);
    case PolicyKind::PowerDnsFactor:
      return std::make_unique<PowerDnsSelector>(config);
    case PolicyKind::UniformRandom:
      return std::make_unique<UniformRandomSelector>();
    case PolicyKind::RoundRobin:
      return std::make_unique<RoundRobinSelector>();
    case PolicyKind::StickyFirst:
      return std::make_unique<StickyFirstSelector>();
  }
  return std::make_unique<UniformRandomSelector>();
}

PolicyMixture PolicyMixture::wild() {
  // Calibrated against the paper's §4.3 preference shares (see
  // EXPERIMENTS.md): about half the population is latency-driven, matching
  // Yu et al.'s "3 of 6 implementations are strongly RTT-based" weighted by
  // deployment share.
  return PolicyMixture{{
      {PolicyKind::BindSrtt, 0.30},
      {PolicyKind::UnboundBand, 0.22},
      {PolicyKind::PowerDnsFactor, 0.13},
      {PolicyKind::UniformRandom, 0.17},
      {PolicyKind::RoundRobin, 0.08},
      {PolicyKind::StickyFirst, 0.10},
  }};
}

PolicyMixture PolicyMixture::pure(PolicyKind kind) {
  return PolicyMixture{{{kind, 1.0}}};
}

PolicyKind PolicyMixture::draw(stats::Rng& rng) const {
  double total = 0;
  for (const auto& [kind, w] : weights) total += w;
  double u = rng.uniform() * total;
  for (const auto& [kind, w] : weights) {
    u -= w;
    if (u <= 0) return kind;
  }
  return weights.empty() ? PolicyKind::UniformRandom : weights.back().first;
}

}  // namespace recwild::resolver
