#include "resolver/resolver.hpp"

#include <algorithm>
#include <cassert>

#include "obs/names.hpp"

namespace recwild::resolver {

namespace {

constexpr net::Port kUpstreamPort = 10'053;

/// Compact qnames_ once it holds this many names and the vast majority of
/// them are dead (no longer referenced by any outstanding query). Keeps the
/// intern table bounded under cache-busting workloads where every query
/// carries a fresh random subdomain.
constexpr std::size_t kQnameCompactMin = 4096;

/// The suffix of `name` keeping `depth` labels.
dns::Name suffix_of(const dns::Name& name, std::size_t depth) {
  std::vector<std::string> labels;
  labels.reserve(depth);
  const std::size_t total = name.label_count();
  for (std::size_t i = total - depth; i < total; ++i) {
    labels.push_back(name.label(i));
  }
  return dns::Name::from_labels(std::move(labels));
}

}  // namespace

struct RecursiveResolver::Job {
  dns::Question original;
  dns::Name current_name;
  /// QNAME minimization: minimum label count to expose next (grows past
  /// empty non-terminals, RFC 7816 §3).
  std::size_t min_labels = 0;
  std::vector<dns::ResourceRecord> chain;
  std::vector<ResolveCallback> callbacks;
  net::SimTime started_at;
  int upstream_count = 0;
  int indirections = 0;
  bool done = false;
  dns::Name current_zone;
  std::vector<net::IpAddress> failed_servers;
  /// Bounded-work safety net: key of the shared DeadlineBatch this job is
  /// registered on (absolute expiry, microseconds) and the job's slot in
  /// its member list, valid while in_deadline_batch.
  std::int64_t deadline_key = 0;
  std::size_t deadline_slot = 0;
  bool in_deadline_batch = false;
  /// Holds an admission slot (pipelined front door); finish() releases it.
  bool admitted = false;
  /// Glueless-NS address fetches this job is parked on; stepped again when
  /// the last one lands (see maybe_fetch_ns_addresses).
  int pending_fetches = 0;
  /// NXNS defense: fetch spend shared across the whole resolution tree —
  /// children inherit the pointer, so max_fetches_per_resolution bounds the
  /// walk end to end. Allocated lazily at the first glueless referral.
  std::shared_ptr<std::uint32_t> fetch_budget;
};

RecursiveResolver::RecursiveResolver(net::Network& network, net::NodeId node,
                                     net::IpAddress address,
                                     ResolverConfig config,
                                     std::vector<RootHint> hints,
                                     stats::Rng rng)
    : network_(network),
      node_(node),
      address_(address),
      config_(std::move(config)),
      hints_(std::move(hints)),
      rng_(rng),
      selector_(make_selector(config_.policy, config_.selection)),
      infra_(config_.infra),
      cache_(config_.cache),
      client_ep_{address, net::kDnsPort},
      upstream_ep_{address, kUpstreamPort} {
  obs::MetricRegistry& m = network_.sim().metrics();
  trace_ = &network_.sim().trace();
  obs_client_queries_ = &m.counter(obs::names::kResolverClientQueries);
  obs_upstream_sent_ = &m.counter(obs::names::kResolverUpstreamSent);
  obs_upstream_timeouts_ = &m.counter(obs::names::kResolverUpstreamTimeouts);
  obs_servfails_ = &m.counter(obs::names::kResolverServfails);
  obs_tcp_fallbacks_ = &m.counter(obs::names::kResolverTcpFallbacks);
  obs_failovers_ = &m.counter(obs::names::kResolverFailovers);
  obs_backoff_applied_ = &m.counter(obs::names::kResolverBackoffApplied);
  obs_backoff_capped_ = &m.counter(obs::names::kResolverBackoffCapped);
  obs_deadline_expired_ = &m.counter(obs::names::kResolverDeadlineExpired);
  // 10 ms bins to 1 s for upstream RTTs; 50 ms bins to 5 s end-to-end.
  obs_rtt_hist_ =
      &m.histogram(obs::names::kResolverUpstreamRttMs, 0.0, 1000.0, 100);
  obs_resolve_hist_ =
      &m.histogram(obs::names::kResolverResolveMs, 0.0, 5000.0, 100);
  obs_inflight_ = &m.gauge(obs::names::kResolverInflight);
  infra_.attach_metrics(m);
  cache_.attach_metrics(m);
  selector_->attach_obs(trace_, &m, config_.name);
}

RecursiveResolver::~RecursiveResolver() { stop(); }

void RecursiveResolver::start() {
  if (listening_) return;
  network_.listen(node_, client_ep_,
                  [this](const net::Datagram& d, net::NodeId) {
                    on_client_datagram(d);
                  });
  network_.listen(node_, upstream_ep_,
                  [this](const net::Datagram& d, net::NodeId) {
                    on_upstream_datagram(d);
                  });
  listening_ = true;
}

void RecursiveResolver::stop() {
  if (!listening_) return;
  network_.unlisten(node_, client_ep_);
  network_.unlisten(node_, upstream_ep_);
  listening_ = false;
}

void RecursiveResolver::flush_caches() {
  cache_.clear();
  infra_.clear();
  compact_qnames();
}

void RecursiveResolver::compact_qnames() {
  dns::NameTable fresh;
  for (auto& [txkey, out] : outstanding_) {
    out.qname_ref = fresh.intern(out.qname);
  }
  qnames_ = std::move(fresh);
}

void RecursiveResolver::resolve(const dns::Question& q, ResolveCallback cb) {
  obs_client_queries_->add(1, network_.sim().now());
  std::vector<ResolveCallback> cbs;
  cbs.push_back(std::move(cb));
  if (config_.max_inflight_resolutions <= 0) {
    resolve_internal(q, std::move(cbs), nullptr, /*admitted=*/false);
    return;
  }
  admit(q, std::move(cbs));
}

void RecursiveResolver::note_coalesced() {
  if (obs_coalesced_ == nullptr) {
    obs_coalesced_ =
        &network_.sim().metrics().counter(obs::names::kResolverCoalesced);
  }
  obs_coalesced_->add(1, network_.sim().now());
}

void RecursiveResolver::admit(const dns::Question& q,
                              std::vector<ResolveCallback> cbs) {
  const net::SimTime now = network_.sim().now();
  // Duplicate of an in-flight chain: join its waiter list — one upstream
  // fetch tree answers everyone, and the join never consumes a slot.
  if (const auto it = inflight_.find(PendingView{q.qname, q.qtype});
      it != inflight_.end()) {
    if (const auto job = it->second.lock(); job && !job->done) {
      note_coalesced();
      resolve_internal(q, std::move(cbs), nullptr, /*admitted=*/false);
      return;
    }
  }
  // A live cached RRset answers synchronously: bypass admission (queueing
  // a pure cache hit behind upstream-bound work would be pointless).
  // peek() is metrics/LRU-neutral and uses the SAME expiry boundary as
  // get() (expires_at <= now is expired): a question arriving exactly at
  // expiry must take the admitted upstream path, never this bypass — a
  // disagreement would leak unadmitted upstream chains past the cap.
  if (cache_.peek(q.qname, q.qtype, now) != nullptr) {
    resolve_internal(q, std::move(cbs), nullptr, /*admitted=*/false);
    return;
  }
  if (client_inflight_ >=
      static_cast<std::size_t>(config_.max_inflight_resolutions)) {
    // Duplicate of a queued question: coalesce onto the queue entry.
    if (const auto it = queued_.find(PendingView{q.qname, q.qtype});
        it != queued_.end()) {
      note_coalesced();
      for (auto& cb : cbs) it->second->callbacks.push_back(std::move(cb));
      return;
    }
    if (config_.max_queued_resolutions > 0 &&
        admission_queue_.size() >=
            static_cast<std::size_t>(config_.max_queued_resolutions)) {
      if (obs_admission_rejected_ == nullptr) {
        obs_admission_rejected_ = &network_.sim().metrics().counter(
            obs::names::kResolverAdmissionRejected);
      }
      obs_admission_rejected_->add(1, now);
      const ResolveOutcome outcome;  // SERVFAIL, zero elapsed/upstream
      for (auto& cb : cbs) cb(outcome);
      return;
    }
    admission_queue_.push_back(QueuedResolution{q, std::move(cbs)});
    queued_.insert_or_assign(PendingKey{q.qname, q.qtype},
                             &admission_queue_.back());
    if (obs_admission_queued_ == nullptr) {
      obs_admission_queued_ = &network_.sim().metrics().counter(
          obs::names::kResolverAdmissionQueued);
    }
    obs_admission_queued_->add(1, now);
    return;
  }
  ++client_inflight_;
  obs_inflight_->max_of(static_cast<double>(client_inflight_), now);
  resolve_internal(q, std::move(cbs), nullptr, /*admitted=*/true);
}

void RecursiveResolver::drain_admission_queue() {
  // Reentrancy guard: an admitted resolution that completes synchronously
  // (negative cache, dead delegation) finishes inside resolve_internal and
  // calls back into this function; the outer loop already owns the drain.
  if (draining_ || admission_queue_.empty()) return;
  draining_ = true;
  while (!admission_queue_.empty() &&
         client_inflight_ <
             static_cast<std::size_t>(config_.max_inflight_resolutions)) {
    QueuedResolution next = std::move(admission_queue_.front());
    queued_.erase(
        queued_.find(PendingView{next.question.qname, next.question.qtype}));
    admission_queue_.pop_front();
    // An identical chain may have started while this entry waited (internal
    // NS fetches bypass admission); joining it consumes no slot.
    bool join = false;
    if (const auto it = inflight_.find(
            PendingView{next.question.qname, next.question.qtype});
        it != inflight_.end()) {
      const auto job = it->second.lock();
      join = job && !job->done;
    }
    if (!join) {
      ++client_inflight_;
      obs_inflight_->max_of(static_cast<double>(client_inflight_),
                            network_.sim().now());
    }
    resolve_internal(next.question, std::move(next.callbacks), nullptr,
                     /*admitted=*/!join);
  }
  draining_ = false;
}

void RecursiveResolver::arm_deadline(const std::shared_ptr<Job>& job) {
  // Bounded work: no resolution outlives max_resolution_time, whatever a
  // fault schedule does to the servers. Jobs expiring on the same
  // microsecond share one simulation event (pipelined chains would
  // otherwise schedule N identical deadlines); the batch's last finish()
  // cancels it, so a batch of one costs exactly the per-job event it
  // replaces. The strong member ref also anchors the job while it waits
  // on child NS-address fetches, which hold only weak parents.
  const net::SimTime expiry =
      network_.sim().now() + config_.max_resolution_time;
  const std::int64_t key = expiry.count_micros();
  auto [it, created] = deadline_batches_.try_emplace(key);
  DeadlineBatch& batch = it->second;
  if (created) {
    batch.event = network_.sim().at(
        expiry, [this, key] { fire_deadline_batch(key); });
  }
  job->deadline_key = key;
  job->deadline_slot = batch.jobs.size();
  job->in_deadline_batch = true;
  batch.jobs.push_back(job);
  ++batch.live;
}

void RecursiveResolver::fire_deadline_batch(std::int64_t key) {
  const auto it = deadline_batches_.find(key);
  if (it == deadline_batches_.end()) return;
  DeadlineBatch batch = std::move(it->second);
  deadline_batches_.erase(it);
  for (const auto& j : batch.jobs) {
    if (!j || j->done) continue;
    obs_deadline_expired_->add(1, network_.sim().now());
    finish(j, dns::Rcode::ServFail);
  }
  // One cancel per batch, after the entry is gone (finish() skipped it):
  // the same schedule/cancel bookkeeping as a normally-finished batch.
  network_.sim().cancel(batch.event);
}

void RecursiveResolver::resolve_internal(
    const dns::Question& q, std::vector<ResolveCallback> cbs,
    std::shared_ptr<std::uint32_t> fetch_budget, bool admitted) {
  // Coalesce identical in-flight questions.
  if (const auto it = inflight_.find(PendingView{q.qname, q.qtype});
      it != inflight_.end()) {
    if (auto job = it->second.lock(); job && !job->done) {
      for (auto& cb : cbs) job->callbacks.push_back(std::move(cb));
      return;
    }
    inflight_.erase(it);
  }
  auto job = std::make_shared<Job>();
  job->original = q;
  job->current_name = q.qname;
  job->callbacks = std::move(cbs);
  job->started_at = network_.sim().now();
  job->fetch_budget = std::move(fetch_budget);
  job->admitted = admitted;
  inflight_.insert_or_assign(PendingKey{q.qname, q.qtype}, job);
  arm_deadline(job);
  step(job);
}

void RecursiveResolver::on_client_datagram(const net::Datagram& dgram) {
  dns::Message query;
  try {
    query = dns::decode_message(dgram.payload);
  } catch (const dns::WireError&) {
    return;
  }
  if (query.header.qr || query.questions.empty()) return;
  ++client_queries_;

  // CHAOS-class identity queries are answered locally by the recursive —
  // the very reason the paper could not use them to identify which
  // *authoritative* answered (§3.1).
  const dns::Question q = query.question();
  if (q.qclass == dns::RRClass::CH) {
    dns::Message resp = dns::Message::make_response(query);
    resp.header.ra = true;
    static const dns::Name kHostnameBind = dns::Name::parse("hostname.bind");
    static const dns::Name kIdServer = dns::Name::parse("id.server");
    if (q.qtype == dns::RRType::TXT &&
        (q.qname == kHostnameBind || q.qname == kIdServer)) {
      resp.answers.push_back(dns::ResourceRecord{
          q.qname, dns::RRClass::CH, 0, dns::TxtRdata{{config_.name}}});
    } else {
      resp.header.rcode = dns::Rcode::Refused;
    }
    network_.send(node_, client_ep_, dgram.src, dns::encode_message(resp));
    return;
  }

  const auto reply_to = dgram.src;
  const auto id = query.header.id;
  const bool rd = query.header.rd;
  resolve(q, [this, reply_to, id, rd, q](const ResolveOutcome& outcome) {
    dns::Message resp;
    resp.header.id = id;
    resp.header.qr = true;
    resp.header.rd = rd;
    resp.header.ra = true;
    resp.header.rcode = outcome.rcode;
    resp.questions.push_back(q);
    resp.answers = outcome.answers;
    network_.send(node_, client_ep_, reply_to, dns::encode_message(resp));
  });
}

void RecursiveResolver::find_zone_cut(const dns::Name& qname, dns::Name& zone,
                                      std::vector<net::IpAddress>& servers) {
  const net::SimTime now = network_.sim().now();
  // Deepest cached NS set with at least one resolvable address wins.
  for (std::size_t depth = qname.label_count(); depth > 0; --depth) {
    const dns::Name candidate = suffix_of(qname, depth);
    auto ns_set = cache_.get(candidate, dns::RRType::NS, now);
    if (!ns_set) continue;
    std::vector<net::IpAddress> addrs;
    for (const auto& rd : ns_set->rdatas) {
      const auto& ns_name = std::get<dns::NsRdata>(rd).nsdname;
      if (config_.family != AddressFamily::V4Only) {
        if (auto aaaa_set = cache_.get(ns_name, dns::RRType::AAAA, now)) {
          for (const auto& ard : aaaa_set->rdatas) {
            if (auto addr = net::IpAddress::from_mapped_ipv6(
                    std::get<dns::AaaaRdata>(ard).address)) {
              addrs.push_back(*addr);
            }
          }
        }
      }
      if (config_.family != AddressFamily::V6Only) {
        if (auto a_set = cache_.get(ns_name, dns::RRType::A, now)) {
          for (const auto& ard : a_set->rdatas) {
            addrs.push_back(std::get<dns::ARdata>(ard).address);
          }
        }
      }
    }
    if (!addrs.empty()) {
      zone = candidate;
      servers = std::move(addrs);
      return;
    }
  }
  // Fall back to the root hints.
  zone = dns::Name{};
  servers.clear();
  for (const auto& h : hints_) servers.push_back(h.address);
}

void RecursiveResolver::step(const std::shared_ptr<Job>& job) {
  if (job->done) return;
  const net::SimTime now = network_.sim().now();

  // Cache walk: negative entries, direct answers, CNAME chases.
  for (;;) {
    if (auto neg = cache_.get_negative(job->current_name,
                                       job->original.qtype, now)) {
      if (trace_->enabled()) {
        trace_->record({now, obs::TraceKind::NegCacheHit, config_.name,
                        job->current_name.to_string(),
                        std::string{dns::to_string(job->original.qtype)},
                        0.0});
      }
      finish(job, *neg);
      return;
    }
    if (auto set = cache_.get(job->current_name, job->original.qtype, now)) {
      if (trace_->enabled()) {
        trace_->record({now, obs::TraceKind::CacheHit, config_.name,
                        job->current_name.to_string(),
                        std::string{dns::to_string(job->original.qtype)},
                        0.0});
      }
      for (auto& rr : set->to_records()) job->chain.push_back(std::move(rr));
      finish(job, dns::Rcode::NoError);
      return;
    }
    if (job->original.qtype != dns::RRType::CNAME) {
      if (auto cname = cache_.get(job->current_name, dns::RRType::CNAME,
                                  now)) {
        for (auto& rr : cname->to_records()) {
          job->chain.push_back(std::move(rr));
        }
        job->current_name =
            std::get<dns::CnameRdata>(cname->rdatas.front()).target;
        job->min_labels = 0;  // restart minimization for the new target
        if (++job->indirections > config_.max_indirections) {
          finish(job, dns::Rcode::ServFail);
          return;
        }
        continue;
      }
    }
    break;
  }

  if (job->upstream_count >= config_.max_upstream_queries) {
    finish(job, dns::Rcode::ServFail);
    return;
  }

  dns::Name zone;
  std::vector<net::IpAddress> servers;
  find_zone_cut(job->current_name, zone, servers);
  if (servers.empty()) {
    finish(job, dns::Rcode::ServFail);
    return;
  }
  if (!(zone == job->current_zone)) {
    job->failed_servers.clear();
    job->current_zone = zone;
  }
  // Avoid servers that already failed this round, when alternatives exist.
  // Forwarder-style policies instead retry the same server.
  std::vector<net::IpAddress> candidates;
  if (selector_->prefers_retry_same()) {
    candidates = servers;
  } else {
    for (const auto& s : servers) {
      if (std::find(job->failed_servers.begin(), job->failed_servers.end(),
                    s) == job->failed_servers.end()) {
        candidates.push_back(s);
      }
    }
    if (candidates.empty()) {
      job->failed_servers.clear();  // second round: retry everyone
      candidates = servers;
    }
  }
  if (trace_->enabled()) {
    trace_->record({now, obs::TraceKind::CacheMiss, config_.name,
                    job->current_name.to_string(),
                    std::string{dns::to_string(job->original.qtype)}, 0.0});
  }
  // Hold-down (see InfraCache): servers that kept failing through repeated
  // probations are removed from selection; when one's probe timer is due,
  // this query is routed to it as the probe — which is how a recovered
  // server gets noticed before the hold-down lapses. Lowest address wins
  // so the choice is deterministic. When every candidate is held down and
  // no probe is due, selection proceeds over the full list (a resolver
  // must send somewhere; the selectors' own usable() filter agrees).
  net::IpAddress probe_target{};
  bool probe_due = false;
  {
    std::vector<net::IpAddress> healthy;
    healthy.reserve(candidates.size());
    for (const auto& s : candidates) {
      const ServerStats* st = infra_.get(s, now);
      if (st == nullptr || !st->in_holddown(now)) {
        healthy.push_back(s);
      } else if (st->probe_due(now) && (!probe_due || s < probe_target)) {
        probe_target = s;
        probe_due = true;
      }
    }
    if (!healthy.empty()) candidates = std::move(healthy);
  }
  if (probe_due) {
    infra_.note_probe(probe_target, now);
    if (trace_->enabled()) {
      const ServerStats* st = infra_.get(probe_target, now);
      trace_->record({now, obs::TraceKind::SelectServer, config_.name,
                      probe_target.to_string(), zone.to_string(),
                      st != nullptr ? st->srtt_ms : -1.0});
    }
    send_upstream(job, zone, probe_target);
    return;
  }
  const net::IpAddress server =
      selector_->select(zone, candidates, infra_, now, rng_);
  if (trace_->enabled()) {
    const ServerStats* st = infra_.get(server, now);
    trace_->record({now, obs::TraceKind::SelectServer, config_.name,
                    server.to_string(), zone.to_string(),
                    st != nullptr ? st->srtt_ms : -1.0});
  }
  send_upstream(job, zone, server);
}

void RecursiveResolver::send_upstream(const std::shared_ptr<Job>& job,
                                      const dns::Name& zone,
                                      net::IpAddress server, bool via_tcp) {
  const net::SimTime now = network_.sim().now();

  // fetches-per-zone defense: when the target zone already carries the
  // configured number of in-flight transmissions, fail fast instead of
  // piling on (what BIND's fetches-per-zone quota does under NXNS floods).
  if (config_.fetches_per_zone > 0) {
    int& in_flight = zone_outstanding_[zone];
    if (in_flight >= config_.fetches_per_zone) {
      if (obs_fetch_zone_capped_ == nullptr) {
        obs_fetch_zone_capped_ = &network_.sim().metrics().counter(
            obs::names::kResolverFetchZoneCapped);
      }
      obs_fetch_zone_capped_->add(1, now);
      finish(job, dns::Rcode::ServFail);
      return;
    }
    ++in_flight;
  }

  const std::uint64_t txkey = next_txkey_++;
  const auto txid = static_cast<std::uint16_t>(rng_.next());

  // QNAME minimization: reveal only the next label to this zone's servers
  // and ask for the delegation (NS) instead of the real question.
  dns::Name query_name = job->current_name;
  dns::RRType query_type = job->original.qtype;
  bool minimized = false;
  if (config_.qname_minimization &&
      zone.label_count() < job->current_name.label_count()) {
    const std::size_t depth =
        std::max(zone.label_count() + 1, job->min_labels);
    if (depth < job->current_name.label_count()) {
      query_name = suffix_of(job->current_name, depth);
      query_type = dns::RRType::NS;
      minimized = true;
    }
  }

  dns::Message query = dns::Message::make_query(txid, query_name,
                                                query_type);
  if (config_.use_edns) query.edns = dns::EdnsInfo{};

  ++job->upstream_count;
  ++upstream_sent_;
  obs_upstream_sent_->add(1, now);

  // Adaptive retransmission timeout from the infra cache (one funnel for
  // all paths, clamped inside — see retransmit_timeout).
  const net::Duration timeout = retransmit_timeout(server, now, via_tcp);

  Outstanding out;
  out.job = job;
  if (config_.fetches_per_zone > 0) out.zone = zone;
  out.minimized = minimized;
  out.server = server;
  out.qname = query_name;
  // Compaction is deterministic per resolver (a pure function of its own
  // table and outstanding set), and NameRef ids never leave the resolver,
  // so renumbering cannot perturb byte-identity.
  if (qnames_.size() >= kQnameCompactMin &&
      qnames_.size() / 4 > outstanding_.size()) {
    compact_qnames();
  }
  out.qname_ref = qnames_.intern(query_name);
  out.qtype = query_type;
  out.txid = txid;
  out.via_tcp = via_tcp;
  out.sent_at = now;
  const net::Endpoint dst{server, net::kDnsPort};
  out.server_port = dst.port;
  out.timeout_event = network_.sim().after(
      timeout, [this, txkey] { on_upstream_timeout(txkey); });
  outstanding_.emplace(txkey, std::move(out));

  auto wire = dns::encode_message(query);
  if (via_tcp) {
    network_.send_stream(node_, upstream_ep_, dst, std::move(wire));
  } else {
    network_.send(node_, upstream_ep_, dst, std::move(wire));
  }
}

net::Duration RecursiveResolver::retransmit_timeout(net::IpAddress server,
                                                    net::SimTime now,
                                                    bool via_tcp) {
  // max_timeout is the authoritative hard ceiling; guard against a
  // misconfigured min above it (std::clamp requires lo <= hi).
  const net::Duration hi = config_.max_timeout;
  const net::Duration lo = std::min(config_.min_timeout, hi);
  net::Duration timeout = config_.initial_timeout;
  int streak = 0;
  if (const ServerStats* st = infra_.get(server, now)) {
    timeout = net::Duration::millis(st->srtt_ms * config_.retrans_factor);
    streak = st->consecutive_timeouts;
  }
  if (via_tcp) timeout += timeout;  // handshake costs an extra round trip
  if (streak > 0) {
    // Jitterless exponential backoff: each consecutive timeout against
    // this address doubles the next timeout, up to the ceiling.
    obs_backoff_applied_->add(1, now);
    for (int i = 0; i < streak && timeout < hi; ++i) timeout += timeout;
    if (timeout > hi) obs_backoff_capped_->add(1, now);
  }
  return std::clamp(timeout, lo, hi);
}

void RecursiveResolver::on_upstream_timeout(std::uint64_t txkey) {
  const auto it = outstanding_.find(txkey);
  if (it == outstanding_.end()) return;
  Outstanding out = std::move(it->second);
  outstanding_.erase(it);
  release_zone_slot(out.zone);
  ++upstream_timeouts_;
  const net::SimTime now = network_.sim().now();
  obs_upstream_timeouts_->add(1, now);
  if (trace_->enabled()) {
    trace_->record({now, obs::TraceKind::UpstreamTimeout, config_.name,
                    out.server.to_string(),
                    out.job->current_zone.to_string(),
                    (now - out.sent_at).ms()});
  }
  infra_.report_timeout(out.server, now);
  selector_->on_timeout(out.job->current_zone, out.server);
  out.job->failed_servers.push_back(out.server);
  step(out.job);
}

void RecursiveResolver::on_upstream_datagram(const net::Datagram& dgram) {
  dns::Message resp;
  try {
    resp = dns::decode_message(dgram.payload);
  } catch (const dns::WireError&) {
    return;
  }
  if (!resp.header.qr || resp.questions.empty()) return;

  // Match an outstanding query: id + server endpoint + question. The
  // source PORT is part of the key — a response from the right address but
  // the wrong port did not come from the socket we queried, so it is
  // off-path injection (or a confused middlebox) and must not be accepted.
  // The response qname is interned once (lookup-only); outstanding entries
  // then match by 32-bit id instead of re-walking label vectors per
  // candidate.
  const auto ref = qnames_.find(resp.question().qname);
  if (!ref) return;  // we never asked for this name: late or spoofed
  const auto match = std::find_if(
      outstanding_.begin(), outstanding_.end(), [&](const auto& kv) {
        const Outstanding& o = kv.second;
        return o.txid == resp.header.id && o.server == dgram.src.addr &&
               o.server_port == dgram.src.port &&
               o.qtype == resp.question().qtype && o.qname_ref == *ref;
      });
  if (match == outstanding_.end()) return;  // late or spoofed: ignore

  Outstanding out = std::move(match->second);
  outstanding_.erase(match);
  release_zone_slot(out.zone);
  network_.sim().cancel(out.timeout_event);

  const net::SimTime now = network_.sim().now();
  // TCP exchanges include handshake time; don't let them poison the
  // (UDP) SRTT estimate the selection policies rely on.
  if (!out.via_tcp) {
    infra_.report_rtt(out.server, now - out.sent_at, now);
    obs_rtt_hist_->observe((now - out.sent_at).ms(), now);
  }
  if (out.job->done) return;

  // Truncated over UDP: retry the same server over TCP (RFC 1035 §4.2.2).
  if (resp.header.tc && !out.via_tcp) {
    ++tcp_retries_;
    obs_tcp_fallbacks_->add(1, now);
    if (trace_->enabled()) {
      trace_->record({now, obs::TraceKind::TcpFallback, config_.name,
                      out.server.to_string(),
                      out.job->current_zone.to_string(), 0.0});
    }
    if (out.job->upstream_count < config_.max_upstream_queries) {
      send_upstream(out.job, out.job->current_zone, out.server,
                    /*via_tcp=*/true);
      return;
    }
  }
  handle_response(out.job, resp, out);
}

void RecursiveResolver::cache_message_records(const dns::Message& resp,
                                              const dns::Name& server_zone) {
  const net::SimTime now = network_.sim().now();
  auto in_bailiwick = [&](const dns::Name& owner) {
    return owner.is_subdomain_of(server_zone);
  };
  for (const auto& set : dns::group_rrsets(resp.answers)) {
    if (in_bailiwick(set.name)) cache_.put(set, now);
  }
  for (const auto& set : dns::group_rrsets(resp.authorities)) {
    if ((set.type == dns::RRType::NS || set.type == dns::RRType::SOA) &&
        in_bailiwick(set.name)) {
      cache_.put(set, now);
    }
  }
  for (const auto& set : dns::group_rrsets(resp.additionals)) {
    if ((set.type == dns::RRType::A || set.type == dns::RRType::AAAA) &&
        in_bailiwick(set.name)) {
      cache_.put(set, now);
    }
  }
}

void RecursiveResolver::handle_response(const std::shared_ptr<Job>& job,
                                        const dns::Message& resp,
                                        const Outstanding& out) {
  const net::IpAddress server = out.server;
  const net::SimTime now = network_.sim().now();

  // Lame or broken server: try another.
  if (resp.header.rcode == dns::Rcode::ServFail ||
      resp.header.rcode == dns::Rcode::Refused ||
      resp.header.rcode == dns::Rcode::NotImp ||
      resp.header.rcode == dns::Rcode::FormErr) {
    obs_failovers_->add(1, now);
    if (trace_->enabled()) {
      trace_->record({now, obs::TraceKind::Failover, config_.name,
                      server.to_string(),
                      std::string{dns::to_string(resp.header.rcode)}, 0.0});
    }
    selector_->on_timeout(job->current_zone, server);
    job->failed_servers.push_back(server);
    step(job);
    return;
  }

  if (resp.header.rcode == dns::Rcode::NxDomain) {
    dns::Ttl neg_ttl = 300;
    for (const auto& rr : resp.authorities) {
      if (rr.type() == dns::RRType::SOA) {
        neg_ttl = std::min(rr.ttl,
                           std::get<dns::SoaRdata>(rr.rdata).minimum);
      }
    }
    cache_message_records(resp, job->current_zone);
    // NXDOMAIN on a minimized prefix means the full name cannot exist
    // either (RFC 8020).
    cache_.put_negative(out.qname, out.qtype, dns::Rcode::NxDomain,
                        neg_ttl, now);
    finish(job, dns::Rcode::NxDomain);
    return;
  }

  // NOERROR.
  if (!resp.answers.empty()) {
    cache_message_records(resp, job->current_zone);
    if (++job->indirections > config_.max_indirections) {
      finish(job, dns::Rcode::ServFail);
      return;
    }
    step(job);  // the cache walk picks up answers and chases CNAMEs
    return;
  }

  // Referral: NS records for a zone deeper than the one we queried.
  const dns::ResourceRecord* referral_ns = nullptr;
  for (const auto& rr : resp.authorities) {
    if (rr.type() == dns::RRType::NS) {
      referral_ns = &rr;
      break;
    }
  }
  if (referral_ns != nullptr) {
    const bool deeper =
        referral_ns->name.label_count() > job->current_zone.label_count() &&
        referral_ns->name.is_subdomain_of(job->current_zone) &&
        job->current_name.is_subdomain_of(referral_ns->name);
    if (deeper) {
      cache_message_records(resp, job->current_zone);
      if (++job->indirections > config_.max_indirections) {
        finish(job, dns::Rcode::ServFail);
        return;
      }
      // Glueless referral (the NXNS lever): no cached address for any of
      // the child zone's servers. Fetch them as bounded side-resolutions
      // instead of bouncing off the parent until max_indirections.
      if (maybe_fetch_ns_addresses(job, referral_ns->name, resp)) return;
      step(job);
      return;
    }
    // Sideways/upwards referral: lame.
    obs_failovers_->add(1, now);
    if (trace_->enabled()) {
      trace_->record({now, obs::TraceKind::Failover, config_.name,
                      server.to_string(), "lame_referral", 0.0});
    }
    selector_->on_timeout(job->current_zone, server);
    job->failed_servers.push_back(server);
    step(job);
    return;
  }

  // NODATA: name exists, no records of this type.
  dns::Ttl neg_ttl = 300;
  bool saw_soa = false;
  for (const auto& rr : resp.authorities) {
    if (rr.type() == dns::RRType::SOA) {
      neg_ttl =
          std::min(rr.ttl, std::get<dns::SoaRdata>(rr.rdata).minimum);
      saw_soa = true;
    }
  }
  if (saw_soa || resp.header.aa) {
    cache_message_records(resp, job->current_zone);
    cache_.put_negative(out.qname, out.qtype, dns::Rcode::NoError, neg_ttl,
                        now);
    if (out.minimized) {
      // The minimized prefix is an empty non-terminal: expose one more
      // label on the next round (RFC 7816 §3).
      job->min_labels = out.qname.label_count() + 1;
      step(job);
      return;
    }
    finish(job, dns::Rcode::NoError);
    return;
  }
  // Empty, non-authoritative, no referral: useless answer; failover.
  obs_failovers_->add(1, now);
  if (trace_->enabled()) {
    trace_->record({now, obs::TraceKind::Failover, config_.name,
                    server.to_string(), "useless_answer", 0.0});
  }
  selector_->on_timeout(job->current_zone, server);
  job->failed_servers.push_back(server);
  step(job);
}

bool RecursiveResolver::has_cached_address(const dns::Name& ns_name,
                                           net::SimTime now) {
  // Mirrors the family filter of find_zone_cut: an address only counts if
  // the zone-cut walk could actually use it. peek(), not get(): this is
  // fetch-limit bookkeeping, not a client lookup — it must not count
  // hits/misses or reorder the LRU.
  if (config_.family != AddressFamily::V4Only) {
    if (const auto* aaaa_set = cache_.peek(ns_name, dns::RRType::AAAA, now)) {
      for (const auto& rd : aaaa_set->rdatas) {
        if (net::IpAddress::from_mapped_ipv6(
                std::get<dns::AaaaRdata>(rd).address)) {
          return true;
        }
      }
    }
  }
  if (config_.family != AddressFamily::V6Only) {
    if (cache_.peek(ns_name, dns::RRType::A, now) != nullptr) return true;
  }
  return false;
}

bool RecursiveResolver::maybe_fetch_ns_addresses(
    const std::shared_ptr<Job>& job, const dns::Name& child_zone,
    const dns::Message& resp) {
  const net::SimTime now = network_.sim().now();
  const dns::RRType addr_type = config_.family == AddressFamily::V6Only
                                    ? dns::RRType::AAAA
                                    : dns::RRType::A;
  // Collect the referral's NS targets. Any cached address means the normal
  // zone-cut walk proceeds on its own — the glued case, i.e. every
  // committed fixture world; this function then changes nothing.
  bool saw_target = false;
  std::vector<dns::Name> targets;
  for (const auto& rr : resp.authorities) {
    if (rr.type() != dns::RRType::NS || !(rr.name == child_zone)) continue;
    saw_target = true;
    const auto& target = std::get<dns::NsRdata>(rr.rdata).nsdname;
    if (has_cached_address(target, now)) return false;
    // A target below the cut can only be resolved by the very servers we
    // lack addresses for; fetching it would loop. Skip it (missing glue).
    if (target.is_subdomain_of(child_zone)) continue;
    targets.push_back(target);
  }
  if (!saw_target) return false;

  // Per-resolution budget (Unbound's MAX_TARGET_COUNT): the whole walk —
  // this job and every child fetch it spawned — shares one allowance.
  // Truncation runs BEFORE the negative-cache filter: the allowance buys
  // the first N servers of the NS RRset, not N fresh probes per query.
  // Filtering first would let every repeat query march further down the
  // attacker's target list, turning the cap into cap-per-query.
  if (config_.max_fetches_per_resolution > 0) {
    if (!job->fetch_budget) {
      job->fetch_budget = std::make_shared<std::uint32_t>(0);
    }
    const auto cap =
        static_cast<std::uint32_t>(config_.max_fetches_per_resolution);
    const std::uint32_t used = *job->fetch_budget;
    const std::size_t allowed = used >= cap ? 0 : cap - used;
    if (targets.size() > allowed) {
      if (obs_fetch_resolution_capped_ == nullptr) {
        obs_fetch_resolution_capped_ = &network_.sim().metrics().counter(
            obs::names::kResolverFetchResolutionCapped);
      }
      obs_fetch_resolution_capped_->add(targets.size() - allowed, now);
      targets.resize(allowed);
    }
  }
  // Already known not to exist: spawning would return instantly with the
  // same negative entry — and re-spawning per query is exactly the
  // amplification the negative cache kills between attack waves. Budget is
  // only charged for fetches actually spawned.
  std::erase_if(targets, [&](const dns::Name& t) {
    return cache_.get_negative(t, addr_type, now).has_value();
  });
  if (targets.empty()) {
    // Every usable server of the child zone is refuted knowledge:
    // negative-cached, glueless-in-bailiwick, or beyond the fetch budget.
    // Dead delegation; fail fast.
    finish(job, dns::Rcode::ServFail);
    return true;
  }
  if (config_.max_fetches_per_resolution > 0) {
    *job->fetch_budget += static_cast<std::uint32_t>(targets.size());
  }

  if (obs_fetch_spawned_ == nullptr) {
    obs_fetch_spawned_ =
        &network_.sim().metrics().counter(obs::names::kResolverFetchSpawned);
  }
  // Pre-commit the full count before the first resolve_internal: a child
  // that completes synchronously (cached CNAME chain, instant SERVFAIL)
  // must not see pending_fetches hit zero while siblings are unspawned.
  job->pending_fetches += static_cast<int>(targets.size());
  for (const auto& target : targets) {
    ++ns_fetches_spawned_;
    obs_fetch_spawned_->add(1, now);
    if (trace_->enabled()) {
      trace_->record({now, obs::TraceKind::NsFetch, config_.name,
                      target.to_string(), child_zone.to_string(), 0.0});
    }
    std::weak_ptr<Job> weak = job;
    std::vector<ResolveCallback> fetch_cbs;
    fetch_cbs.push_back([this, weak](const ResolveOutcome&) {
      const auto j = weak.lock();
      if (!j || j->done) return;
      if (--j->pending_fetches == 0) step(j);
    });
    // Internal fetches bypass admission (admitted=false): gating them
    // behind the client resolutions that spawned them would deadlock.
    resolve_internal(dns::Question{target, addr_type, dns::RRClass::IN},
                     std::move(fetch_cbs), job->fetch_budget,
                     /*admitted=*/false);
  }
  return true;
}

void RecursiveResolver::release_zone_slot(const dns::Name& zone) {
  if (config_.fetches_per_zone <= 0) return;
  const auto it = zone_outstanding_.find(zone);
  if (it == zone_outstanding_.end()) return;
  if (--it->second <= 0) zone_outstanding_.erase(it);
}

void RecursiveResolver::finish(const std::shared_ptr<Job>& job,
                               dns::Rcode rcode) {
  if (job->done) return;
  job->done = true;
  // Leave the deadline batch; the last member out cancels the event. A
  // fired batch already erased its entry (and cancels once itself).
  if (job->in_deadline_batch) {
    job->in_deadline_batch = false;
    if (const auto it = deadline_batches_.find(job->deadline_key);
        it != deadline_batches_.end()) {
      if (--it->second.live <= 0) {
        network_.sim().cancel(it->second.event);
        deadline_batches_.erase(it);
      } else if (job->deadline_slot < it->second.jobs.size()) {
        // Release the anchor so the finished job does not outlive its
        // resolution just because batch-mates are still running.
        it->second.jobs[job->deadline_slot].reset();
      }
    }
  }
  if (job->admitted) {
    job->admitted = false;
    --client_inflight_;
  }
  const net::SimTime now = network_.sim().now();
  if (rcode == dns::Rcode::ServFail) {
    ++servfails_;
    obs_servfails_->add(1, now);
    if (trace_->enabled()) {
      trace_->record({now, obs::TraceKind::Servfail, config_.name,
                      job->original.qname.to_string(),
                      std::string{dns::to_string(job->original.qtype)},
                      0.0});
    }
  }
  obs_resolve_hist_->observe((now - job->started_at).ms(), now);
  ResolveOutcome outcome;
  outcome.rcode = rcode;
  outcome.answers = job->chain;
  outcome.elapsed = network_.sim().now() - job->started_at;
  outcome.upstream_queries = job->upstream_count;
  if (const auto it = inflight_.find(
          PendingView{job->original.qname, job->original.qtype});
      it != inflight_.end()) {
    inflight_.erase(it);
  }
  for (auto& cb : job->callbacks) cb(outcome);
  job->callbacks.clear();
  drain_admission_queue();
}

}  // namespace recwild::resolver
