#include "resolver/infra_cache.hpp"

#include <algorithm>
#include <cmath>

#include "obs/names.hpp"

namespace recwild::resolver {

const ServerStats* InfraCache::get(net::IpAddress server,
                                   net::SimTime now) const {
  const auto it = entries_.find(server);
  if (it == entries_.end() || expired(it->second, now)) return nullptr;
  return &it->second;
}

void InfraCache::report_rtt(net::IpAddress server, net::Duration rtt,
                            net::SimTime now) {
  if (obs_rtt_updates_ != nullptr) obs_rtt_updates_->add(1, now);
  const double sample = rtt.ms();
  auto it = entries_.find(server);
  if (it == entries_.end() || expired(it->second, now)) {
    ServerStats fresh;
    fresh.srtt_ms = sample;
    fresh.rttvar_ms = sample / 2.0;
    fresh.last_update = now;
    entries_[server] = fresh;
    return;
  }
  ServerStats& s = it->second;
  const double err = sample - s.srtt_ms;
  s.srtt_ms = std::min(config_.max_srtt_ms,
                       (1.0 - config_.ewma_alpha) * s.srtt_ms +
                           config_.ewma_alpha * sample);
  // RFC 6298-style variance smoothing (Unbound's estimator).
  s.rttvar_ms = 0.75 * s.rttvar_ms + 0.25 * std::abs(err);
  s.consecutive_timeouts = 0;
  s.last_update = now;
  if (s.backoff_until > now) s.backoff_until = now;  // recovered
  if (s.in_holddown(now) && obs_holddown_recovered_ != nullptr) {
    obs_holddown_recovered_->add(1, now);  // a probe got through
  }
  s.probation_streak = 0;
  s.holddown_until = now;
  s.next_probe_at = net::SimTime{};
}

void InfraCache::report_timeout(net::IpAddress server, net::SimTime now) {
  if (obs_timeouts_ != nullptr) obs_timeouts_->add(1, now);
  auto it = entries_.find(server);
  if (it == entries_.end() || expired(it->second, now)) {
    ServerStats fresh;
    fresh.srtt_ms = 376.0;  // Unbound's unknown-host penalty start
    fresh.rttvar_ms = fresh.srtt_ms / 2.0;
    fresh.consecutive_timeouts = 1;
    fresh.last_update = now;
    if (fresh.consecutive_timeouts >= config_.backoff_threshold) {
      fresh.backoff_until = now + config_.backoff_duration;
      // Entering probation (not an extension of it): count it.
      if (obs_backoffs_ != nullptr) obs_backoffs_->add(1, now);
    }
    entries_[server] = fresh;
    return;
  }
  ServerStats& s = it->second;
  s.srtt_ms = std::min(config_.max_srtt_ms,
                       std::max(1.0, s.srtt_ms) * config_.timeout_penalty);
  s.consecutive_timeouts += 1;
  s.last_update = now;
  if (s.consecutive_timeouts >= config_.backoff_threshold) {
    s.backoff_until = now + config_.backoff_duration;
    // Count entering probation once per streak, not every extension.
    if (s.consecutive_timeouts == config_.backoff_threshold &&
        obs_backoffs_ != nullptr) {
      obs_backoffs_->add(1, now);
    }
    // Every backoff_threshold-th timeout is one more probation without an
    // intervening success; enough of those escalate to hold-down.
    if (s.consecutive_timeouts % config_.backoff_threshold == 0) {
      s.probation_streak += 1;
    }
    if (s.probation_streak >= config_.holddown_threshold) {
      const bool entering = !s.in_holddown(now);
      s.holddown_until = now + config_.holddown_duration;
      if (entering) {
        s.next_probe_at = now + config_.holddown_probe_interval;
        if (obs_holddown_entered_ != nullptr) {
          obs_holddown_entered_->add(1, now);
        }
      }
    }
  }
}

void InfraCache::decay(net::IpAddress server, double factor,
                       net::SimTime now) {
  auto it = entries_.find(server);
  if (it == entries_.end() || expired(it->second, now)) return;
  it->second.srtt_ms *= factor;
  // Aging does not refresh last_update: an unused entry still expires.
}

void InfraCache::note_probe(net::IpAddress server, net::SimTime now) {
  auto it = entries_.find(server);
  if (it == entries_.end()) return;
  it->second.next_probe_at = now + config_.holddown_probe_interval;
  if (obs_holddown_probes_ != nullptr) obs_holddown_probes_->add(1, now);
}

void InfraCache::attach_metrics(obs::MetricRegistry& registry) {
  obs_rtt_updates_ = &registry.counter(obs::names::kInfraRttUpdates);
  obs_timeouts_ = &registry.counter(obs::names::kInfraTimeouts);
  obs_backoffs_ = &registry.counter(obs::names::kInfraBackoffs);
  obs_holddown_entered_ =
      &registry.counter(obs::names::kResolverHolddownEntered);
  obs_holddown_probes_ =
      &registry.counter(obs::names::kResolverHolddownProbes);
  obs_holddown_recovered_ =
      &registry.counter(obs::names::kResolverHolddownRecovered);
}

std::size_t InfraCache::size(net::SimTime now) const {
  std::size_t n = 0;
  for (const auto& [addr, s] : entries_) {
    if (!expired(s, now)) ++n;
  }
  return n;
}

}  // namespace recwild::resolver
