// Authoritative server selection policies.
//
// The paper measures the *aggregate* of the diverse selection algorithms
// deployed in the wild; Yu et al. [33] catalogued the per-implementation
// behaviours in a testbed. This module implements that catalogue:
//
//  * BindSrtt       — lowest smoothed RTT wins; unselected servers' SRTT is
//                     decayed so they get re-probed occasionally (BIND 9).
//                     Unknown servers start with a small random SRTT so each
//                     is tried early. => strong latency preference.
//  * UnboundBand    — servers within an RTT band of the fastest are treated
//                     as equivalent and picked uniformly (Unbound). Within
//                     the band: even spread; beyond it: strong preference.
//  * PowerDnsFactor — probabilistic, weight ∝ 1/(srtt+c)^2 (PowerDNS-style
//                     "mostly fastest" with continuous exploration).
//  * UniformRandom  — uniform over all servers (djbdns dnscache).
//  * RoundRobin     — strict rotation per zone (some embedded resolvers).
//  * StickyFirst    — latch onto one server per zone until it fails
//                     (forwarders / resolvers without an infra cache). The
//                     latch survives infra-cache expiry, which is one cause
//                     of the persistence the paper observes in §4.4.
//
// Selectors may mutate the InfraCache (BIND's aging, priming of unknown
// servers) — selection in real resolvers is stateful.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dnscore/name.hpp"
#include "obs/decision_trace.hpp"
#include "obs/metrics.hpp"
#include "resolver/infra_cache.hpp"
#include "stats/rng.hpp"

namespace recwild::resolver {

enum class PolicyKind : unsigned char {
  BindSrtt,
  UnboundBand,
  PowerDnsFactor,
  UniformRandom,
  RoundRobin,
  StickyFirst,
};

std::string_view to_string(PolicyKind k) noexcept;
std::optional<PolicyKind> policy_from_string(std::string_view s) noexcept;

/// Tunables for the latency-aware policies.
struct SelectionConfig {
  /// BIND: decay applied to the SRTT of servers not chosen this round.
  double bind_decay = 0.98;
  /// BIND: unknown servers are primed with U(1, this) ms so they get tried.
  double bind_unknown_srtt_ms = 32.0;
  /// Unbound: servers within this band of the fastest are equivalent.
  double unbound_band_ms = 400.0;
  /// Unbound: RTT assumed for servers it knows nothing about.
  double unbound_unknown_rtt_ms = 376.0;
  /// PowerDNS: additive constant in the 1/(srtt+c)^2 weight.
  double pdns_offset_ms = 30.0;
};

class ServerSelector {
 public:
  virtual ~ServerSelector() = default;

  /// Picks one of `servers` (non-empty) for a query to `zone`.
  /// `infra` may be updated (aging, priming). Servers in backoff are
  /// avoided when any alternative exists.
  virtual net::IpAddress select(const dns::Name& zone,
                                std::span<const net::IpAddress> servers,
                                InfraCache& infra, net::SimTime now,
                                stats::Rng& rng) = 0;

  /// Feedback on delivery failure, for policies with their own state
  /// (StickyFirst re-latches). Default: no-op.
  virtual void on_timeout(const dns::Name& zone, net::IpAddress server);

  /// True for policies that retry the SAME server after a timeout instead
  /// of failing over (forwarder-style behaviour). The resolver then skips
  /// its tried-servers filter for retries.
  [[nodiscard]] virtual bool prefers_retry_same() const noexcept {
    return false;
  }

  [[nodiscard]] virtual PolicyKind kind() const noexcept = 0;
  [[nodiscard]] std::string_view name() const noexcept {
    return to_string(kind());
  }

  /// Connects this selector to the run's observability: `trace` receives
  /// PrimeServer/StickyLatch events attributed to `actor` (the owning
  /// resolver's name), `registry` the kSelection* counters. Optional; a
  /// detached selector records nothing.
  void attach_obs(obs::DecisionTrace* trace, obs::MetricRegistry* registry,
                  std::string actor);

 protected:
  /// Records a decision event if tracing is attached and enabled.
  void trace_event(obs::TraceKind kind, net::SimTime at,
                   const dns::Name& zone, net::IpAddress server,
                   double value) const;

  obs::Counter* primed_counter_ = nullptr;  ///< kSelectionPrimed, or null.
  obs::Counter* latch_counter_ = nullptr;   ///< kSelectionLatchMoves, or null.

 private:
  obs::DecisionTrace* trace_ = nullptr;
  std::string actor_;
};

/// Creates a selector of the given kind.
std::unique_ptr<ServerSelector> make_selector(PolicyKind kind,
                                              SelectionConfig config = {});

/// A weighted mixture of policies, used to model the population of
/// recursive implementations in the wild. Weights need not sum to 1.
struct PolicyMixture {
  std::vector<std::pair<PolicyKind, double>> weights;

  /// The calibrated default: roughly half of resolvers latency-driven
  /// (Yu et al. found 3 of 6 implementations strongly RTT-based), the rest
  /// split across random, rotation, and sticky behaviours.
  static PolicyMixture wild();

  /// A single-policy "mixture" for ablation runs.
  static PolicyMixture pure(PolicyKind kind);

  /// Draws a policy for one simulated resolver.
  [[nodiscard]] PolicyKind draw(stats::Rng& rng) const;
};

}  // namespace recwild::resolver
