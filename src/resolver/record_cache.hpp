// Record cache: the resolver's local cache of RRsets with TTL expiry and a
// bounded LRU (paper §2 "local cache"). Also stores negative answers
// (NXDOMAIN / NODATA) per RFC 2308, keyed by (name, type).
//
// The paper's measurement design defeats this cache on purpose (unique
// labels, TTL 5 s); the cache still matters because NS sets and glue stay
// cached between probes, which is exactly why only the test authoritatives
// see the probe traffic after the first resolution.
#pragma once

#include <list>
#include <optional>
#include <unordered_map>

#include "dnscore/record.hpp"
#include "net/time.hpp"
#include "obs/metrics.hpp"

namespace recwild::resolver {

struct RecordCacheConfig {
  std::size_t max_entries = 100'000;
  /// TTL clamp bounds (many resolvers clamp; e.g. Unbound cache-max-ttl).
  dns::Ttl min_ttl = 0;
  dns::Ttl max_ttl = 86'400;
};

/// A cached positive RRset or negative marker.
struct CacheEntry {
  dns::RRset rrset;            // empty rdatas => negative entry
  bool negative = false;
  dns::Rcode negative_rcode = dns::Rcode::NoError;  // NXDOMAIN vs NODATA
  net::SimTime expires_at;
};

class RecordCache {
 public:
  explicit RecordCache(RecordCacheConfig config = {}) : config_(config) {}

  /// Positive lookup; the returned RRset's TTL is decremented to the time
  /// remaining. Returns nullopt on miss/expired/negative.
  std::optional<dns::RRset> get(const dns::Name& name, dns::RRType type,
                                net::SimTime now);

  /// Negative lookup: returns the stored rcode when a negative entry for
  /// (name, type) is live.
  std::optional<dns::Rcode> get_negative(const dns::Name& name,
                                         dns::RRType type, net::SimTime now);

  /// Metrics- and LRU-neutral probe: the live positive RRset for
  /// (name, type), or nullptr on miss/expired/negative. Counts nothing and
  /// never reorders the LRU — for bookkeeping checks (e.g. the resolver's
  /// fetch-limit glue test) that must not perturb cache-metric fixtures.
  /// The returned TTL is the stored one, not decremented to now.
  [[nodiscard]] const dns::RRset* peek(const dns::Name& name,
                                       dns::RRType type,
                                       net::SimTime now) const;

  /// Inserts/overwrites a positive RRset (TTL clamped to config bounds).
  void put(const dns::RRset& rrset, net::SimTime now);

  /// Inserts a negative entry with the zone's negative TTL.
  void put_negative(const dns::Name& name, dns::RRType type, dns::Rcode rcode,
                    dns::Ttl ttl, net::SimTime now);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  void clear();

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

  /// Mirrors hit/miss/eviction counts into `registry` (obs::names::kRrcache*)
  /// from this call on. Optional; without it the cache records nothing.
  void attach_metrics(obs::MetricRegistry& registry);

 private:
  struct Key {
    dns::Name name;
    dns::RRType type;
    bool operator==(const Key& o) const {
      return type == o.type && name == o.name;
    }
  };
  /// Borrowed key for transparent lookups: find() probes with the caller's
  /// Name instead of copying its label vector into a fresh Key per lookup
  /// (that copy used to top the campaign profile).
  struct KeyView {
    const dns::Name& name;
    dns::RRType type;
  };
  struct KeyHash {
    using is_transparent = void;
    std::size_t operator()(const Key& k) const noexcept {
      return k.name.hash() ^ (static_cast<std::size_t>(k.type) * 0x9e3779b9);
    }
    std::size_t operator()(const KeyView& k) const noexcept {
      return k.name.hash() ^ (static_cast<std::size_t>(k.type) * 0x9e3779b9);
    }
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(const Key& a, const Key& b) const { return a == b; }
    bool operator()(const Key& a, const KeyView& b) const {
      return a.type == b.type && a.name == b.name;
    }
    bool operator()(const KeyView& a, const Key& b) const {
      return b.type == a.type && b.name == a.name;
    }
  };
  struct Slot {
    CacheEntry entry;
    std::list<Key>::iterator lru_pos;
  };

  CacheEntry* find_live(const dns::Name& name, dns::RRType type,
                        net::SimTime now);
  void touch(Slot& slot);
  void insert(Key key, CacheEntry entry, net::SimTime now);
  void evict_one(net::SimTime now);

  RecordCacheConfig config_;
  std::unordered_map<Key, Slot, KeyHash, KeyEq> entries_;
  std::list<Key> lru_;  // front = most recent
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  // Optional registry mirrors (null until attach_metrics).
  obs::Counter* obs_hits_ = nullptr;
  obs::Counter* obs_misses_ = nullptr;
  obs::Counter* obs_negative_hits_ = nullptr;
  obs::Counter* obs_evictions_ = nullptr;
};

}  // namespace recwild::resolver
