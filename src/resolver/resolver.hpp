// Recursive resolver bound to a simulated network node.
//
// Implements full iterative resolution the way production resolvers do:
// start from root hints, follow referrals downwards, cache NS sets, glue
// and answers, and pick among a zone's authoritative addresses with a
// pluggable ServerSelector fed by the InfraCache. Handles retransmission
// with adaptive timeouts, server failover, SERVFAIL/REFUSED lameness,
// CNAME chasing, negative caching, and client query coalescing.
//
// One RecursiveResolver models one "recursive" of the paper (an R box in
// Figure 1); its selection policy is drawn from the population mixture.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dnscore/codec.hpp"
#include "dnscore/message.hpp"
#include "dnscore/name_table.hpp"
#include "net/network.hpp"
#include "resolver/infra_cache.hpp"
#include "resolver/record_cache.hpp"
#include "resolver/selection.hpp"

namespace recwild::resolver {

/// Bootstrap knowledge: the root NS addresses (a hints file).
struct RootHint {
  dns::Name ns_name;
  net::IpAddress address;
};

/// Which address records of an NS a resolver uses for upstream queries.
/// Dual-stack resolvers treat the v4 and v6 addresses of a nameserver as
/// separate candidate servers, as BIND/Unbound do (the paper verified its
/// findings hold over IPv6, §3.1).
enum class AddressFamily : unsigned char { V4Only, V6Only, Dual };

struct ResolverConfig {
  std::string name = "resolver";
  PolicyKind policy = PolicyKind::BindSrtt;
  AddressFamily family = AddressFamily::V4Only;
  SelectionConfig selection{};
  InfraCacheConfig infra{};
  RecordCacheConfig cache{};

  /// Per-transmission timeout bounds. With SRTT knowledge the base timeout
  /// is srtt*retrans_factor; without it, initial_timeout. Consecutive
  /// timeouts against the same address double it (jitterless exponential
  /// backoff). Every path — SRTT, no-SRTT failover, the TCP retry — is
  /// clamped to [min_timeout, max_timeout]; max_timeout is a hard ceiling.
  net::Duration initial_timeout = net::Duration::millis(750);
  net::Duration min_timeout = net::Duration::millis(500);
  net::Duration max_timeout = net::Duration::seconds(2);
  double retrans_factor = 3.0;

  /// Bounded work: a hard deadline on one client resolution. Whatever a
  /// fault schedule does to the servers, the job finishes (SERVFAIL) at
  /// this age. Far above the normal worst case — max_upstream_queries
  /// transmissions of max_timeout each — so it only fires as a safety net.
  net::Duration max_resolution_time = net::Duration::seconds(60);

  /// Upper bound on upstream transmissions for one client query.
  int max_upstream_queries = 16;
  /// Upper bound on referral depth + CNAME chases.
  int max_indirections = 12;

  /// NXNS defense (docs/ATTACKS.md), Unbound MAX_TARGET_COUNT-style: total
  /// glueless-NS address fetches one client resolution may spawn across
  /// its whole delegation walk (children included). 0 = unlimited.
  int max_fetches_per_resolution = 0;
  /// NXNS defense, BIND fetches-per-zone-style: upstream queries allowed
  /// to be outstanding against one zone at a time; at the cap further
  /// sends fail fast with SERVFAIL. 0 = unlimited.
  int fetches_per_zone = 0;

  bool use_edns = true;

  /// QNAME minimization (RFC 7816): expose only one more label to each
  /// zone's servers (NS queries for the next label) instead of the full
  /// query name. Off by default, like the resolvers of the paper's era.
  bool qname_minimization = false;

  /// Pipelined front door (ZDNS-style bulk resolution): client resolutions
  /// admitted in flight at once. Above the cap, new questions wait in a
  /// FIFO admission queue and are started as slots free up; duplicates of
  /// an in-flight or queued (qname, qtype) coalesce onto its waiter list
  /// and never consume a slot, and questions a live cached RRset can answer
  /// bypass admission entirely (they complete synchronously from cache).
  /// Internal NS-address fetches also bypass admission — gating them behind
  /// the very resolutions that spawned them would deadlock. Queue wait is
  /// excluded from ResolveOutcome::elapsed (the clock starts at admission).
  /// 0 = unlimited, no admission control (the default).
  int max_inflight_resolutions = 0;
  /// Admission-queue depth bound; at the cap new resolutions fail fast
  /// with SERVFAIL (resolver.admission.rejected). 0 = unbounded queue.
  /// Only meaningful with max_inflight_resolutions > 0.
  int max_queued_resolutions = 0;
};

/// Final result delivered to the caller of resolve().
struct ResolveOutcome {
  dns::Rcode rcode = dns::Rcode::ServFail;
  std::vector<dns::ResourceRecord> answers;
  /// Total wall-clock the resolution took.
  net::Duration elapsed = net::Duration::zero();
  /// Upstream queries this resolution caused (0 = pure cache hit).
  int upstream_queries = 0;
};

using ResolveCallback = std::function<void(const ResolveOutcome&)>;

class RecursiveResolver {
 public:
  RecursiveResolver(net::Network& network, net::NodeId node,
                    net::IpAddress address, ResolverConfig config,
                    std::vector<RootHint> hints, stats::Rng rng);
  ~RecursiveResolver();
  RecursiveResolver(const RecursiveResolver&) = delete;
  RecursiveResolver& operator=(const RecursiveResolver&) = delete;

  /// Starts serving: client port 53 and the upstream socket.
  void start();
  void stop();

  /// Resolves a question on behalf of a local caller (no client-side
  /// network hop). Identical path to network clients otherwise.
  void resolve(const dns::Question& q, ResolveCallback cb);

  // Fetch-limit counters (0 when the knobs are off).
  [[nodiscard]] std::uint64_t ns_fetches_spawned() const noexcept {
    return ns_fetches_spawned_;
  }

  /// Admitted client resolutions currently in flight (0 unless the
  /// pipelined front door is on; joins and internal fetches don't count).
  [[nodiscard]] std::size_t inflight_resolutions() const noexcept {
    return client_inflight_;
  }
  /// Client resolutions waiting in the admission queue.
  [[nodiscard]] std::size_t queued_resolutions() const noexcept {
    return admission_queue_.size();
  }

  [[nodiscard]] net::IpAddress address() const noexcept { return address_; }
  [[nodiscard]] net::NodeId node() const noexcept { return node_; }
  [[nodiscard]] const std::string& name() const noexcept {
    return config_.name;
  }
  [[nodiscard]] PolicyKind policy() const noexcept { return config_.policy; }

  [[nodiscard]] InfraCache& infra() noexcept { return infra_; }
  [[nodiscard]] RecordCache& cache() noexcept { return cache_; }

  /// Simulates a restart / cache flush (cold-cache condition).
  void flush_caches();

  // Counters.
  [[nodiscard]] std::uint64_t client_queries() const noexcept {
    return client_queries_;
  }
  [[nodiscard]] std::uint64_t upstream_sent() const noexcept {
    return upstream_sent_;
  }
  [[nodiscard]] std::uint64_t upstream_timeouts() const noexcept {
    return upstream_timeouts_;
  }
  [[nodiscard]] std::uint64_t servfails() const noexcept {
    return servfails_;
  }
  [[nodiscard]] std::uint64_t tcp_retries() const noexcept {
    return tcp_retries_;
  }
  /// Distinct upstream qnames currently interned. Bounded: the table is
  /// compacted down to the outstanding set once it crosses a threshold.
  [[nodiscard]] std::size_t interned_qnames() const noexcept {
    return qnames_.size();
  }

 private:
  struct Job;

  /// resolve() plus a shared NS-fetch budget carried into the new job, so
  /// glueless chains nested under an NXNS-style referral spend their
  /// parent's max_fetches_per_resolution allowance, not a fresh one.
  /// Takes the job's whole waiter list up front: an admission-queue entry
  /// drains with every coalesced callback it accumulated, and a chain that
  /// completes synchronously (cache hit) must answer all of them.
  /// `admitted` marks a resolution holding an admission slot — finish()
  /// releases it and drains the queue.
  void resolve_internal(const dns::Question& q,
                        std::vector<ResolveCallback> cbs,
                        std::shared_ptr<std::uint32_t> fetch_budget,
                        bool admitted);
  /// The pipelined front door: join / cache-bypass / start / queue /
  /// reject, in that order (see ResolverConfig::max_inflight_resolutions).
  void admit(const dns::Question& q, std::vector<ResolveCallback> cbs);
  /// Starts queued resolutions while slots are free (called from finish;
  /// reentrancy-guarded, so synchronous completions don't recurse).
  void drain_admission_queue();
  /// Registers `job` on the deadline batch expiring at started_at +
  /// max_resolution_time. Jobs starting at the same instant share one
  /// simulation event, so N pipelined chains don't multiply queue churn.
  void arm_deadline(const std::shared_ptr<Job>& job);
  void fire_deadline_batch(std::int64_t key);
  /// Counts one (qname, qtype) chain coalescing onto an existing in-flight
  /// or queued resolution (lazily registered: resolver.coalesced).
  void note_coalesced();

  void on_client_datagram(const net::Datagram& dgram);
  void on_upstream_datagram(const net::Datagram& dgram);

  /// Advances a job: cache checks, zone-cut discovery, upstream send.
  void step(const std::shared_ptr<Job>& job);
  /// Finds the deepest zone cut with cached/known server addresses for
  /// `qname`. Fills `zone` and `servers`; falls back to root hints.
  void find_zone_cut(const dns::Name& qname, dns::Name& zone,
                     std::vector<net::IpAddress>& servers);
  struct Outstanding;
  void send_upstream(const std::shared_ptr<Job>& job, const dns::Name& zone,
                     net::IpAddress server, bool via_tcp = false);
  /// The per-transmission timeout for `server` right now: base (SRTT or
  /// initial), TCP handshake doubling, exponential backoff per consecutive
  /// timeout, then one final clamp to [min_timeout, max_timeout]. The
  /// single funnel for all timeout arithmetic.
  [[nodiscard]] net::Duration retransmit_timeout(net::IpAddress server,
                                                 net::SimTime now,
                                                 bool via_tcp);
  void on_upstream_timeout(std::uint64_t txkey);
  /// Rebuilds qnames_ from the names still outstanding, re-interning their
  /// qname_refs. Keeps the intern table bounded under high-cardinality
  /// (random-subdomain) workloads where names never repeat.
  void compact_qnames();
  void handle_response(const std::shared_ptr<Job>& job,
                       const dns::Message& resp, const Outstanding& out);
  void finish(const std::shared_ptr<Job>& job, dns::Rcode rcode);
  void cache_message_records(const dns::Message& resp,
                             const dns::Name& server_zone);
  /// NXNS handling: when a referral into `child_zone` names only servers
  /// we hold no addresses for, spawns bounded side-resolutions for their
  /// A/AAAA records and parks the job until they land. Returns true when
  /// it took ownership of the job (spawned fetches or finished it).
  bool maybe_fetch_ns_addresses(const std::shared_ptr<Job>& job,
                                const dns::Name& child_zone,
                                const dns::Message& resp);
  /// Family-aware: does the cache hold a usable address for this NS host?
  [[nodiscard]] bool has_cached_address(const dns::Name& ns_name,
                                        net::SimTime now);
  /// Drops the fetches_per_zone slot `zone` holds (no-op when the knob is
  /// off). Must run exactly once per tracked transmission.
  void release_zone_slot(const dns::Name& zone);

  net::Network& network_;
  net::NodeId node_;
  net::IpAddress address_;
  ResolverConfig config_;
  std::vector<RootHint> hints_;
  stats::Rng rng_;
  std::unique_ptr<ServerSelector> selector_;
  InfraCache infra_;
  RecordCache cache_;

  net::Endpoint client_ep_;
  net::Endpoint upstream_ep_;
  bool listening_ = false;

  struct Outstanding {
    std::shared_ptr<Job> job;
    bool minimized = false;  // qname/qtype differ from the client question
    net::IpAddress server;
    /// The destination port the query was sent to. Response matching
    /// requires the source endpoint — address AND port — to be the one we
    /// queried; accepting any port on the right address lets an off-path
    /// host that never saw the query inject from an unprivileged socket.
    net::Port server_port = net::kDnsPort;
    dns::Name qname;
    /// qname's id in qnames_ — response matching compares this 32-bit id
    /// instead of walking label vectors per outstanding entry.
    dns::NameRef qname_ref;
    dns::RRType qtype{};
    std::uint16_t txid = 0;
    bool via_tcp = false;
    net::SimTime sent_at;
    net::EventId timeout_event = 0;
    /// Zone the transmission targets; populated (and a slot held in
    /// zone_outstanding_) only while fetches_per_zone > 0.
    dns::Name zone;
  };
  std::unordered_map<std::uint64_t, Outstanding> outstanding_;  // by txkey
  std::uint64_t next_txkey_ = 1;
  /// Outstanding transmissions per target zone, maintained only while
  /// fetches_per_zone > 0 so default-config worlds pay nothing.
  struct ZoneHash {
    std::size_t operator()(const dns::Name& n) const noexcept {
      return n.hash();
    }
  };
  std::unordered_map<dns::Name, int, ZoneHash> zone_outstanding_;
  /// Interns every upstream qname once at send time; a response's qname is
  /// looked up once and matched against outstanding ids (a miss means no
  /// query of ours ever asked that name — drop, like a failed scan would).
  dns::NameTable qnames_;

  // Query coalescing: (qname,type) -> job waiting upstream. Lookups and
  // erases go through the borrowed PendingView so the per-query fast path
  // never copies a Name just to probe the map.
  struct PendingKey {
    dns::Name name;
    dns::RRType type;
    bool operator==(const PendingKey& o) const {
      return type == o.type && name == o.name;
    }
  };
  struct PendingView {
    const dns::Name& name;
    dns::RRType type;
  };
  struct PendingKeyHash {
    using is_transparent = void;
    std::size_t operator()(const PendingKey& k) const noexcept {
      return k.name.hash() ^ (static_cast<std::size_t>(k.type) << 1);
    }
    std::size_t operator()(const PendingView& k) const noexcept {
      return k.name.hash() ^ (static_cast<std::size_t>(k.type) << 1);
    }
  };
  struct PendingKeyEq {
    using is_transparent = void;
    bool operator()(const PendingKey& a, const PendingKey& b) const {
      return a == b;
    }
    bool operator()(const PendingKey& a, const PendingView& b) const {
      return a.type == b.type && a.name == b.name;
    }
    bool operator()(const PendingView& a, const PendingKey& b) const {
      return b.type == a.type && b.name == a.name;
    }
  };
  std::unordered_map<PendingKey, std::weak_ptr<Job>, PendingKeyHash,
                     PendingKeyEq>
      inflight_;

  // Pipelined front door (max_inflight_resolutions > 0). The queue is a
  // deque so queued_ can hold stable pointers into it: push_back/pop_front
  // never move other elements. queued_ coalesces duplicates of a waiting
  // question onto its callback list instead of queueing it twice.
  struct QueuedResolution {
    dns::Question question;
    std::vector<ResolveCallback> callbacks;
  };
  std::deque<QueuedResolution> admission_queue_;
  std::unordered_map<PendingKey, QueuedResolution*, PendingKeyHash,
                     PendingKeyEq>
      queued_;
  /// Admitted client resolutions in flight (slots held).
  std::size_t client_inflight_ = 0;
  bool draining_ = false;

  /// Batched bounded-work deadlines: every job whose deadline lands on the
  /// same microsecond shares one simulation event, keyed by the absolute
  /// expiry time. `live` counts unfinished members; the last finish()
  /// cancels the event, so a batch of one schedules and cancels exactly
  /// like the per-job deadline it replaces. Members are STRONG refs — the
  /// batch is what keeps a job alive while it waits on child NS-address
  /// fetches (which hold only weak parents); finish() resets the member's
  /// slot so completed jobs never linger.
  struct DeadlineBatch {
    net::EventId event = 0;
    std::vector<std::shared_ptr<Job>> jobs;
    int live = 0;
  };
  std::unordered_map<std::int64_t, DeadlineBatch> deadline_batches_;

  std::uint64_t client_queries_ = 0;
  std::uint64_t upstream_sent_ = 0;
  std::uint64_t upstream_timeouts_ = 0;
  std::uint64_t servfails_ = 0;
  std::uint64_t tcp_retries_ = 0;
  std::uint64_t ns_fetches_spawned_ = 0;

  // Observability: cached handles into the simulation's MetricRegistry and
  // its DecisionTrace (see src/obs). Set once in the constructor.
  obs::DecisionTrace* trace_ = nullptr;
  obs::Counter* obs_client_queries_ = nullptr;
  obs::Counter* obs_upstream_sent_ = nullptr;
  obs::Counter* obs_upstream_timeouts_ = nullptr;
  obs::Counter* obs_servfails_ = nullptr;
  obs::Counter* obs_tcp_fallbacks_ = nullptr;
  obs::Counter* obs_failovers_ = nullptr;
  obs::Counter* obs_backoff_applied_ = nullptr;
  obs::Counter* obs_backoff_capped_ = nullptr;
  obs::Counter* obs_deadline_expired_ = nullptr;
  obs::Histogram* obs_rtt_hist_ = nullptr;
  obs::Histogram* obs_resolve_hist_ = nullptr;
  // Fetch-limit counters, resolved lazily on first use (the obs_formerr_
  // pattern): glueless referrals never occur in the committed fixture
  // worlds, and an eagerly registered always-zero counter would invalidate
  // their byte-identity snapshots.
  obs::Counter* obs_fetch_spawned_ = nullptr;
  obs::Counter* obs_fetch_resolution_capped_ = nullptr;
  obs::Counter* obs_fetch_zone_capped_ = nullptr;
  /// High-water mark of admitted in-flight client resolutions (gauge:
  /// point-in-time level, excluded from shard merges; eager registration
  /// is fixture-safe because committed snapshots are MergeSafe).
  obs::Gauge* obs_inflight_ = nullptr;
  // Pipelining counters, resolved lazily (the obs_formerr_ pattern):
  // admission is off in every committed fixture world, and coalescing is
  // workload-dependent — always-zero eager rows would invalidate fixtures.
  obs::Counter* obs_coalesced_ = nullptr;
  obs::Counter* obs_admission_queued_ = nullptr;
  obs::Counter* obs_admission_rejected_ = nullptr;
};

}  // namespace recwild::resolver
