// Pre/post-datapath byte-identity wall.
//
// The canonical trace and merge-safe metrics JSON of a fixed-seed campaign
// (and a production run) were captured on the pre-pooling codec and
// committed under tests/experiment/fixtures/. The pooled-buffer, interned
// -name datapath must reproduce those artifacts byte-for-byte at every
// shard count — any drift in wire bytes, truncation decisions, RNG
// consumption or metric accounting shows up here as a fixture diff.
//
// Regenerate (only when an intentional behaviour change is being made, in
// which case the diff IS the review artifact):
//   RECWILD_UPDATE_FIXTURES=1 ./build/tests/experiment_tests \
//       --gtest_filter='DatapathRegression.*'
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "experiment/campaign.hpp"
#include "experiment/production.hpp"
#include "obs/decision_trace.hpp"
#include "obs/metrics.hpp"

#ifndef RECWILD_FIXTURE_DIR
#error "RECWILD_FIXTURE_DIR must point at tests/experiment/fixtures"
#endif

namespace recwild::experiment {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string{RECWILD_FIXTURE_DIR} + "/" + name;
}

bool update_mode() {
  const char* v = std::getenv("RECWILD_UPDATE_FIXTURES");
  return v != nullptr && *v != '\0' && *v != '0';
}

std::string read_fixture(const std::string& name) {
  std::ifstream in{fixture_path(name), std::ios::binary};
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_fixture(const std::string& name, const std::string& content) {
  std::ofstream out{fixture_path(name), std::ios::binary};
  out << content;
}

void check_or_update(const std::string& name, const std::string& produced) {
  if (update_mode()) {
    write_fixture(name, produced);
    SUCCEED() << "fixture " << name << " updated (" << produced.size()
              << " bytes)";
    return;
  }
  const std::string expected = read_fixture(name);
  ASSERT_FALSE(expected.empty())
      << "missing fixture " << fixture_path(name)
      << " — run with RECWILD_UPDATE_FIXTURES=1 to create it";
  EXPECT_EQ(produced, expected)
      << "datapath output drifted from the committed pre-refactor fixture "
      << name;
}

struct CampaignArtifacts {
  std::string metrics_json;
  std::string trace_tsv;
};

CampaignArtifacts run_campaign_shards(std::size_t shards) {
  TestbedConfig cfg;
  cfg.seed = 2026;
  cfg.population.probes = 120;
  cfg.test_sites = {"DUB", "FRA", "GRU"};
  cfg.trace_decisions = true;
  Testbed tb{cfg};
  CampaignConfig cc;
  cc.interval = net::Duration::minutes(2);
  cc.queries_per_vp = 7;
  cc.shards = shards;
  const auto result = run_campaign(tb, cc);

  CampaignArtifacts a;
  a.metrics_json = result.metrics.to_json(obs::SnapshotStyle::MergeSafe);
  std::ostringstream trace_out;
  obs::write_trace(trace_out, tb.trace().canonical());
  a.trace_tsv = trace_out.str();
  return a;
}

std::string run_production_shards(std::size_t shards) {
  TestbedConfig cfg;
  cfg.seed = 2027;
  cfg.population.probes = 0;
  Testbed tb{cfg};
  ProductionConfig pc;
  pc.recursives = 60;
  pc.duration_hours = 0.1;
  pc.min_queries = 5;
  pc.shards = shards;
  const auto result = run_production(tb, pc);
  return result.metrics.to_json(obs::SnapshotStyle::MergeSafe);
}

TEST(DatapathRegression, CampaignMetricsAndTraceMatchFixtureAtShards124) {
  const auto serial = run_campaign_shards(1);
  check_or_update("campaign_seed2026_metrics.json", serial.metrics_json);
  check_or_update("campaign_seed2026_trace.tsv", serial.trace_tsv);

  const auto two = run_campaign_shards(2);
  const auto four = run_campaign_shards(4);
  EXPECT_EQ(two.metrics_json, serial.metrics_json);
  EXPECT_EQ(four.metrics_json, serial.metrics_json);
  EXPECT_EQ(two.trace_tsv, serial.trace_tsv);
  EXPECT_EQ(four.trace_tsv, serial.trace_tsv);
}

TEST(DatapathRegression, ProductionMetricsMatchFixtureAtShards13) {
  const std::string serial = run_production_shards(1);
  check_or_update("production_seed2027_metrics.json", serial);
  EXPECT_EQ(run_production_shards(3), serial);
}

}  // namespace
}  // namespace recwild::experiment
