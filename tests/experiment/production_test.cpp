#include "experiment/production.hpp"

#include <gtest/gtest.h>

namespace recwild::experiment {
namespace {

Testbed production_testbed(bool all_anycast = false) {
  TestbedConfig cfg;
  cfg.seed = 41;
  cfg.build_population = false;
  cfg.all_anycast_nl = all_anycast;
  return Testbed{cfg};
}

ProductionConfig small_config(ProductionTarget target) {
  ProductionConfig pc;
  pc.target = target;
  pc.recursives = 60;
  pc.duration_hours = 0.25;
  pc.volume_mu = 5.0;  // median ~148/hour -> ~37 per quarter hour
  pc.min_queries = 20;
  return pc;
}

TEST(Production, RootRunObservesTenLetters) {
  auto tb = production_testbed();
  const auto result = run_production(tb, small_config(ProductionTarget::Root));
  ASSERT_EQ(result.service_labels.size(), 10u);
  // B, G, L are the missing DITL letters.
  for (const auto& label : result.service_labels) {
    EXPECT_NE(label, "b-root");
    EXPECT_NE(label, "g-root");
    EXPECT_NE(label, "l-root");
  }
  EXPECT_EQ(result.sources_total, 60u);
  EXPECT_GT(result.recursives.size(), 5u);
}

TEST(Production, QualifyingRecursivesMeetThreshold) {
  auto tb = production_testbed();
  const auto cfg = small_config(ProductionTarget::Root);
  const auto result = run_production(tb, cfg);
  for (const auto& t : result.recursives) {
    EXPECT_GE(t.total, cfg.min_queries);
    EXPECT_EQ(t.per_service.size(), result.service_labels.size());
    std::uint64_t sum = 0;
    for (const auto c : t.per_service) sum += c;
    EXPECT_EQ(sum, t.total);
  }
}

TEST(Production, SortedByVolumeDescending) {
  auto tb = production_testbed();
  const auto result = run_production(tb, small_config(ProductionTarget::Root));
  for (std::size_t i = 1; i < result.recursives.size(); ++i) {
    EXPECT_GE(result.recursives[i - 1].total, result.recursives[i].total);
  }
}

TEST(Production, RankSharesAreDistribution) {
  auto tb = production_testbed();
  const auto result = run_production(tb, small_config(ProductionTarget::Root));
  ASSERT_FALSE(result.mean_rank_share.empty());
  double total = 0;
  double prev = 1.0;
  for (const double s : result.mean_rank_share) {
    EXPECT_LE(s, prev + 1e-9);  // non-increasing by rank
    prev = s;
    total += s;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(Production, FractionQueryingSumsToOne) {
  auto tb = production_testbed();
  const auto result = run_production(tb, small_config(ProductionTarget::Root));
  double total = 0;
  for (const double f : result.fraction_querying) total += f;
  EXPECT_NEAR(total, 1.0, 1e-6);
  EXPECT_NEAR(result.fraction_at_least(1), 1.0, 1e-6);
  EXPECT_LE(result.fraction_all(), 1.0);
}

TEST(Production, NlRunObservesFourServices) {
  auto tb = production_testbed();
  const auto result = run_production(tb, small_config(ProductionTarget::Nl));
  ASSERT_EQ(result.service_labels.size(), 4u);
  EXPECT_GT(result.recursives.size(), 0u);
}

TEST(Production, SourceMetadataAttached) {
  auto tb = production_testbed();
  const auto result = run_production(tb, small_config(ProductionTarget::Root));
  for (const auto& t : result.recursives) {
    EXPECT_NE(t.node, net::kInvalidNode);
  }
}

TEST(Production, NlLatencyAnalysisProducesRows) {
  auto tb = production_testbed();
  const auto result = run_production(tb, small_config(ProductionTarget::Nl));
  const auto latency = analyze_nl_latency(tb, result);
  EXPECT_FALSE(latency.continents.empty());
  EXPECT_GT(latency.overall_median_ms, 0.0);
  EXPECT_GE(latency.overall_worst_ms, latency.overall_median_ms);
  for (const auto& row : latency.continents) {
    EXPECT_GT(row.queries, 0u);
    EXPECT_LE(row.median_ms, row.worst_ms);
  }
}

TEST(Production, AllAnycastNlCutsTailLatency) {
  // The §7 recommendation, as a regression test: the all-anycast .nl must
  // have a lower worst-case latency than the mixed deployment.
  auto mixed_tb = production_testbed(false);
  const auto mixed =
      analyze_nl_latency(mixed_tb, run_production(mixed_tb,
                                                  small_config(
                                                      ProductionTarget::Nl)));
  auto any_tb = production_testbed(true);
  const auto anycast =
      analyze_nl_latency(any_tb, run_production(any_tb,
                                                small_config(
                                                    ProductionTarget::Nl)));
  EXPECT_LT(anycast.overall_p90_ms, mixed.overall_p90_ms);
}

}  // namespace
}  // namespace recwild::experiment
