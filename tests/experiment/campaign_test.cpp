#include "experiment/campaign.hpp"

#include <gtest/gtest.h>

#include "experiment/analysis.hpp"

namespace recwild::experiment {
namespace {

Testbed small_testbed(std::vector<std::string> sites, std::uint64_t seed = 21,
                      std::size_t probes = 120) {
  TestbedConfig cfg;
  cfg.seed = seed;
  cfg.population.probes = probes;
  cfg.test_sites = std::move(sites);
  return Testbed{cfg};
}

TEST(Campaign, CollectsOneObservationPerVp) {
  auto tb = small_testbed({"DUB", "FRA"});
  CampaignConfig cc;
  cc.queries_per_vp = 8;
  const auto result = run_campaign(tb, cc);
  EXPECT_EQ(result.service_codes,
            (std::vector<std::string>{"DUB", "FRA"}));
  ASSERT_EQ(result.vps.size(), 120u);
  for (const auto& vp : result.vps) {
    EXPECT_EQ(vp.sequence.size(), 8u);
    EXPECT_EQ(vp.rtt_ms.size(), 2u);
  }
}

TEST(Campaign, AnswersIdentifyRealServices) {
  auto tb = small_testbed({"GRU", "NRT"});
  CampaignConfig cc;
  cc.queries_per_vp = 6;
  const auto result = run_campaign(tb, cc);
  std::size_t answered = 0;
  for (const auto& vp : result.vps) {
    for (const int s : vp.sequence) {
      if (s >= 0) {
        ++answered;
        EXPECT_LT(s, 2);
      }
    }
  }
  // Nearly everything answers in a healthy world.
  EXPECT_GT(answered, 120u * 6u * 9 / 10);
}

TEST(Campaign, RttsArePositiveAndOrdered) {
  auto tb = small_testbed({"DUB", "FRA"});
  CampaignConfig cc;
  cc.queries_per_vp = 4;
  const auto result = run_campaign(tb, cc);
  for (const auto& vp : result.vps) {
    for (const double r : vp.rtt_ms) EXPECT_GT(r, 0.0);
  }
}

TEST(Campaign, PrimaryRecursiveRecorded) {
  auto tb = small_testbed({"DUB", "FRA"});
  CampaignConfig cc;
  cc.queries_per_vp = 4;
  const auto result = run_campaign(tb, cc);
  std::size_t with_recursive = 0;
  for (const auto& vp : result.vps) {
    if (!vp.recursive_addr.is_unspecified() &&
        tb.recursive_node(vp.recursive_addr) != net::kInvalidNode) {
      ++with_recursive;
    }
  }
  EXPECT_GT(with_recursive, 110u);
}

TEST(Campaign, MostVpsCoverBothAuthoritatives) {
  auto tb = small_testbed({"DUB", "FRA"});
  CampaignConfig cc;
  cc.queries_per_vp = 31;  // the paper's 1-hour setup
  const auto result = run_campaign(tb, cc);
  const auto cov = analyze_coverage(result);
  // Paper Figure 2: 75-96% of recursives probe all authoritatives.
  EXPECT_GT(cov.covering_fraction, 0.70);
}

TEST(Campaign, DeterministicForSameSeed) {
  auto tb1 = small_testbed({"DUB", "FRA"}, 77, 40);
  auto tb2 = small_testbed({"DUB", "FRA"}, 77, 40);
  CampaignConfig cc;
  cc.queries_per_vp = 5;
  const auto r1 = run_campaign(tb1, cc);
  const auto r2 = run_campaign(tb2, cc);
  ASSERT_EQ(r1.vps.size(), r2.vps.size());
  for (std::size_t i = 0; i < r1.vps.size(); ++i) {
    EXPECT_EQ(r1.vps[i].sequence, r2.vps[i].sequence) << "vp " << i;
  }
}

TEST(Campaign, DifferentSeedsDiffer) {
  auto tb1 = small_testbed({"DUB", "FRA"}, 1, 40);
  auto tb2 = small_testbed({"DUB", "FRA"}, 2, 40);
  CampaignConfig cc;
  cc.queries_per_vp = 5;
  const auto r1 = run_campaign(tb1, cc);
  const auto r2 = run_campaign(tb2, cc);
  bool any_diff = false;
  for (std::size_t i = 0; i < r1.vps.size(); ++i) {
    if (r1.vps[i].sequence != r2.vps[i].sequence) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Campaign, FourAuthoritativesTakeLongerToCover) {
  auto tb2 = small_testbed({"DUB", "FRA"}, 5, 150);
  auto tb4 = small_testbed({"DUB", "FRA", "IAD", "SFO"}, 5, 150);
  CampaignConfig cc;
  cc.queries_per_vp = 31;
  const auto cov2 = analyze_coverage(run_campaign(tb2, cc));
  const auto cov4 = analyze_coverage(run_campaign(tb4, cc));
  ASSERT_TRUE(cov2.queries_to_cover.has_value());
  ASSERT_TRUE(cov4.queries_to_cover.has_value());
  // Paper §4.1: 2 NSes covered by the ~2nd query; 4 NSes need a median of
  // up to ~7.
  EXPECT_LT(cov2.queries_to_cover->p50, cov4.queries_to_cover->p50);
}

}  // namespace
}  // namespace recwild::experiment
