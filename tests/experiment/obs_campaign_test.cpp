// Observability under sharding: the metric registry and decision trace the
// campaign/production engines assemble must export byte-identical for every
// shard count — the same guarantee the analysis CSVs already carry.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "experiment/campaign.hpp"
#include "experiment/production.hpp"
#include "obs/decision_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace recwild::experiment {
namespace {

TestbedConfig small_config(std::uint64_t seed = 77, std::size_t probes = 90) {
  TestbedConfig cfg;
  cfg.seed = seed;
  cfg.population.probes = probes;
  cfg.test_sites = {"DUB", "FRA", "GRU"};
  return cfg;
}

struct ObsRun {
  std::string metrics_json;  // MergeSafe export of the merged registry
  std::string trace_tsv;     // canonical trace export
  obs::MetricsSnapshot metrics;
};

ObsRun run_with_shards(std::size_t shards) {
  auto cfg = small_config();
  cfg.trace_decisions = true;
  Testbed tb{cfg};
  CampaignConfig cc;
  cc.interval = net::Duration::minutes(2);
  cc.queries_per_vp = 5;
  cc.shards = shards;
  const auto result = run_campaign(tb, cc);

  ObsRun run;
  run.metrics_json = result.metrics.to_json(obs::SnapshotStyle::MergeSafe);
  std::ostringstream trace_out;
  obs::write_trace(trace_out, tb.trace().canonical());
  run.trace_tsv = trace_out.str();
  run.metrics = result.metrics;
  return run;
}

TEST(ObsCampaign, MergeSafeJsonByteIdenticalAcrossShardCounts) {
  const auto serial = run_with_shards(1);
  const auto two = run_with_shards(2);
  const auto four = run_with_shards(4);
  EXPECT_EQ(serial.metrics_json, two.metrics_json);
  EXPECT_EQ(serial.metrics_json, four.metrics_json);
}

TEST(ObsCampaign, CanonicalTraceByteIdenticalAcrossShardCounts) {
  const auto serial = run_with_shards(1);
  const auto two = run_with_shards(2);
  const auto four = run_with_shards(4);
  EXPECT_FALSE(serial.trace_tsv.empty());
  EXPECT_EQ(serial.trace_tsv, two.trace_tsv);
  EXPECT_EQ(serial.trace_tsv, four.trace_tsv);
}

TEST(ObsCampaign, CountersReflectTheCampaign) {
  const auto run = run_with_shards(2);
  const auto& m = run.metrics;
  // 90 VPs x 5 queries each were scheduled; every VP was placed.
  EXPECT_EQ(m.counter_value(obs::names::kCampaignVps), 90u);
  EXPECT_EQ(m.counter_value(obs::names::kCampaignQueriesSent), 450u);
  EXPECT_EQ(m.counter_value(obs::names::kCampaignQueriesAnswered) +
                m.counter_value(obs::names::kCampaignQueriesUnanswered),
            450u);
  // The campaign exercised the whole stack underneath.
  EXPECT_GT(m.counter_value(obs::names::kResolverClientQueries), 0u);
  EXPECT_GT(m.counter_value(obs::names::kResolverUpstreamSent), 0u);
  EXPECT_GT(m.counter_value(obs::names::kRrcacheHits), 0u);
  EXPECT_GT(m.counter_value(obs::names::kAuthnsQueries), 0u);
  EXPECT_GT(m.counter_value(obs::names::kNetPacketsDelivered), 0u);
  EXPECT_GT(m.counter_value(obs::names::kSimEventsProcessed), 0u);
}

TEST(ObsCampaign, MergeSafeExcludesGaugesFullIncludesThem) {
  const auto run = run_with_shards(1);
  EXPECT_EQ(run.metrics_json.find("sim.queue.peak_pending"),
            std::string::npos);
  const std::string full = run.metrics.to_json(obs::SnapshotStyle::Full);
  EXPECT_NE(full.find("sim.queue.peak_pending"), std::string::npos);
}

TEST(ObsCampaign, TraceRoundTripsThroughTheTsvFormat) {
  const auto run = run_with_shards(1);
  std::istringstream in{run.trace_tsv};
  const auto parsed = obs::read_trace(in);
  std::ostringstream out;
  obs::write_trace(out, parsed);
  EXPECT_EQ(out.str(), run.trace_tsv);
}

TEST(ObsProduction, MergeSafeJsonByteIdenticalAcrossShardCounts) {
  const auto run = [](std::size_t shards) {
    TestbedConfig cfg;
    cfg.seed = 5;
    cfg.population.probes = 0;
    Testbed tb{cfg};
    ProductionConfig pc;
    pc.recursives = 60;
    pc.duration_hours = 0.1;
    pc.min_queries = 5;
    pc.shards = shards;
    const auto result = run_production(tb, pc);
    return result.metrics.to_json(obs::SnapshotStyle::MergeSafe);
  };
  const std::string serial = run(1);
  EXPECT_EQ(serial, run(3));
  std::istringstream in{serial};
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "{");  // sanity: the export is the JSON object
  EXPECT_NE(serial.find("production.lookups"), std::string::npos);
}

}  // namespace
}  // namespace recwild::experiment
