#include "experiment/zones.hpp"

#include <gtest/gtest.h>

#include "authns/query_engine.hpp"

namespace recwild::experiment {
namespace {

ZoneSpec nl_spec() {
  ZoneSpec spec;
  spec.origin = dns::Name::parse("nl");
  spec.apex_ns = {
      {dns::Name::parse("ns1.dns.nl"), net::IpAddress{11}},
      {dns::Name::parse("ns2.dns.nl"), net::IpAddress{12}},
  };
  spec.delegations.push_back(Delegation{
      dns::Name::parse("ourtestdomain.nl"),
      {{dns::Name::parse("ns-fra.ourtestdomain.nl"), net::IpAddress{21}},
       {dns::Name::parse("ns-syd.ourtestdomain.nl"), net::IpAddress{22}}}});
  return spec;
}

TEST(BuildZone, ProducesValidZone) {
  const auto zone = build_zone(nl_spec());
  EXPECT_TRUE(zone.validate().empty());
  EXPECT_TRUE(zone.soa().has_value());
}

TEST(BuildZone, ApexNsAndGlue) {
  const auto zone = build_zone(nl_spec());
  const auto* ns = zone.apex_ns();
  ASSERT_NE(ns, nullptr);
  EXPECT_EQ(ns->size(), 2u);
  const auto glue = zone.glue_for(dns::Name::parse("ns1.dns.nl"));
  ASSERT_EQ(glue.size(), 1u);
  EXPECT_EQ(std::get<dns::ARdata>(glue[0].rdata).address,
            net::IpAddress{11});
}

TEST(BuildZone, DelegationsReferWithGlue) {
  const auto zone = build_zone(nl_spec());
  const authns::QueryEngine engine{zone};
  const auto result = engine.lookup(
      dns::Question{dns::Name::parse("xyz.ourtestdomain.nl"),
                    dns::RRType::TXT, dns::RRClass::IN});
  EXPECT_EQ(result.disposition, authns::Disposition::Referral);
  EXPECT_EQ(result.authorities.size(), 2u);
  EXPECT_EQ(result.additionals.size(), 2u);
}

TEST(BuildZone, WildcardTxtAnswersAnyLabel) {
  ZoneSpec spec;
  spec.origin = dns::Name::parse("ourtestdomain.nl");
  spec.apex_ns = {
      {dns::Name::parse("ns-fra.ourtestdomain.nl"), net::IpAddress{21}}};
  spec.wildcard_txt = "FRA";
  spec.txt_ttl = 5;
  const auto zone = build_zone(spec);
  const authns::QueryEngine engine{zone};
  const auto result = engine.lookup(
      dns::Question{dns::Name::parse("q123x7.ourtestdomain.nl"),
                    dns::RRType::TXT, dns::RRClass::IN});
  EXPECT_EQ(result.disposition, authns::Disposition::Wildcard);
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(result.answers[0].ttl, 5u);  // the paper's cache-defeating TTL
  EXPECT_EQ(std::get<dns::TxtRdata>(result.answers[0].rdata).strings[0],
            "FRA");
}

TEST(BuildZone, OutOfZoneNsGetsNoGlue) {
  ZoneSpec spec;
  spec.origin = dns::Name::parse("example.nl");
  spec.apex_ns = {
      {dns::Name::parse("ns.other.org"), net::IpAddress{31}}};
  const auto zone = build_zone(spec);
  EXPECT_TRUE(zone.glue_for(dns::Name::parse("ns.other.org")).empty());
}

TEST(BuildZone, NegativeTtlConfigurable) {
  ZoneSpec spec = nl_spec();
  spec.negative_ttl = 42;
  const auto zone = build_zone(spec);
  EXPECT_EQ(zone.negative_ttl(), 42u);
}

TEST(BuildZone, RootZoneSpec) {
  ZoneSpec spec;
  spec.origin = dns::Name{};
  spec.apex_ns = {
      {dns::Name::parse("a.root-servers.net"), net::IpAddress{1}}};
  spec.delegations.push_back(Delegation{
      dns::Name::parse("nl"),
      {{dns::Name::parse("ns1.dns.nl"), net::IpAddress{11}}}});
  const auto zone = build_zone(spec);
  EXPECT_TRUE(zone.validate().empty());
  const authns::QueryEngine engine{zone};
  const auto result = engine.lookup(dns::Question{
      dns::Name::parse("anything.nl"), dns::RRType::A, dns::RRClass::IN});
  EXPECT_EQ(result.disposition, authns::Disposition::Referral);
}

}  // namespace
}  // namespace recwild::experiment
