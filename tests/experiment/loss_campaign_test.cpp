// Campaign robustness under packet loss, plus the offline-trace bridge:
// live production analysis and the DITL-style trace pipeline must agree.
#include <gtest/gtest.h>

#include <sstream>

#include "authns/trace.hpp"
#include "experiment/analysis.hpp"
#include "experiment/campaign.hpp"
#include "experiment/production.hpp"

namespace recwild::experiment {
namespace {

TEST(LossCampaign, SurvivesHeavyLoss) {
  TestbedConfig cfg;
  cfg.seed = 88;
  cfg.population.probes = 150;
  cfg.test_sites = {"DUB", "FRA"};
  cfg.latency.loss_rate = 0.05;  // 5% loss everywhere
  Testbed tb{cfg};
  CampaignConfig cc;
  cc.queries_per_vp = 15;
  const auto result = run_campaign(tb, cc);

  std::size_t answered = 0;
  std::size_t total = 0;
  for (const auto& vp : result.vps) {
    for (const int s : vp.sequence) {
      ++total;
      if (s >= 0) ++answered;
    }
  }
  // Stub retries + resolver retransmissions absorb almost all loss.
  EXPECT_GT(stats::share(answered, total), 0.97);

  const auto cov = analyze_coverage(result);
  EXPECT_GT(cov.covering_fraction, 0.6);
}

TEST(LossCampaign, AnalysisIgnoresTimeouts) {
  TestbedConfig cfg;
  cfg.seed = 89;
  cfg.population.probes = 100;
  cfg.test_sites = {"FRA", "SYD"};
  cfg.latency.loss_rate = 0.10;
  Testbed tb{cfg};
  CampaignConfig cc;
  cc.queries_per_vp = 12;
  const auto result = run_campaign(tb, cc);
  const auto shares = analyze_shares(result);
  // Shares remain a proper distribution despite the -1 timeout entries.
  double total = 0;
  for (const double s : shares.query_share) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(TraceBridge, OfflineTraceMatchesLiveAnalysis) {
  // Run a small production hour, then reconstruct the per-client
  // aggregation from serialized traces — totals must match the live logs.
  TestbedConfig cfg;
  cfg.seed = 90;
  cfg.build_population = false;
  Testbed tb{cfg};
  ProductionConfig pc;
  pc.target = ProductionTarget::Root;
  pc.recursives = 40;
  pc.duration_hours = 0.2;
  pc.volume_mu = 4.5;
  pc.min_queries = 10;
  const auto live = run_production(tb, pc);

  // NOTE: run_production disables entry retention at the target group for
  // memory, so serialize from the *per-client counters* via a synthetic
  // re-log is not possible; instead serialize the .nl group logs (which
  // kept entries) — here we check the root letters' counter totals against
  // the trace of a letter that retained entries. Simplest robust check:
  // re-enable retention and rerun a tiny slice through one letter.
  auto& letter = tb.roots().front();
  std::uint64_t live_total = 0;
  for (auto& site : letter.sites()) {
    live_total += site.server->log().total();
  }
  std::uint64_t counter_total = 0;
  for (auto& site : letter.sites()) {
    for (const auto& [client, n] : site.server->log().per_client()) {
      counter_total += n;
    }
  }
  EXPECT_EQ(live_total, counter_total);
  EXPECT_GT(live.sources_total, 0u);
}

TEST(TraceBridge, SerializedLogsRoundTripThroughSummary) {
  // Drive a couple of servers directly and compare summarize_trace with
  // the live per-client counters.
  TestbedConfig cfg;
  cfg.seed = 91;
  cfg.build_population = false;
  cfg.build_nl = false;
  Testbed tb{cfg};

  resolver::ResolverConfig rc;
  rc.name = "trace-bridge";
  resolver::RecursiveResolver res{
      tb.network(),
      tb.network().add_node("tbr", net::find_location("AMS")->point),
      tb.network().allocate_address(), rc, tb.hints(), stats::Rng{6}};
  res.start();
  for (int i = 0; i < 20; ++i) {
    res.resolve(dns::Question{dns::Name::parse("junk" + std::to_string(i)),
                              dns::RRType::A, dns::RRClass::IN},
                [](const resolver::ResolveOutcome&) {});
    tb.sim().run();
  }

  std::ostringstream out;
  std::uint64_t live_total = 0;
  for (auto& letter : tb.roots()) {
    for (auto& site : letter.sites()) {
      authns::write_trace(out, site.server->log(),
                          site.server->identity());
      live_total += site.server->log().total();
    }
  }
  std::istringstream in{out.str()};
  const auto stats = authns::summarize_trace(authns::read_trace(in));
  EXPECT_EQ(stats.total, live_total);
  ASSERT_FALSE(stats.per_client.empty());
  EXPECT_EQ(stats.per_client[0].first, res.address());
  EXPECT_EQ(stats.per_client[0].second, live_total);
}

}  // namespace
}  // namespace recwild::experiment
