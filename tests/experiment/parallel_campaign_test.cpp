// Determinism of the sharded campaign engine: the shards knob must change
// wall-clock behaviour only, never a single byte of the result.
#include <map>
#include <sstream>

#include <gtest/gtest.h>

#include "experiment/campaign.hpp"
#include "experiment/export.hpp"
#include "experiment/production.hpp"

namespace recwild::experiment {
namespace {

TestbedConfig small_config(std::uint64_t seed = 77, std::size_t probes = 90) {
  TestbedConfig cfg;
  cfg.seed = seed;
  cfg.population.probes = probes;
  cfg.test_sites = {"DUB", "FRA", "GRU"};
  return cfg;
}

CampaignResult run_with_shards(std::size_t shards) {
  Testbed tb{small_config()};
  CampaignConfig cc;
  cc.interval = net::Duration::minutes(2);
  cc.queries_per_vp = 5;
  cc.shards = shards;
  return run_campaign(tb, cc);
}

std::string export_bytes(const CampaignResult& result) {
  std::ostringstream out;
  write_campaign_csv(out, result);
  write_preferences_csv(out, result);
  write_shares_csv(out, result);
  return out.str();
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.service_codes, b.service_codes);
  ASSERT_EQ(a.vps.size(), b.vps.size());
  for (std::size_t i = 0; i < a.vps.size(); ++i) {
    const auto& va = a.vps[i];
    const auto& vb = b.vps[i];
    EXPECT_EQ(va.probe_id, vb.probe_id) << "vp " << i;
    EXPECT_EQ(va.continent, vb.continent) << "vp " << i;
    EXPECT_EQ(va.recursive_addr, vb.recursive_addr) << "vp " << i;
    EXPECT_EQ(va.sequence, vb.sequence) << "vp " << i;
    EXPECT_EQ(va.rtt_ms, vb.rtt_ms) << "vp " << i;
  }
}

TEST(ParallelCampaign, ShardsDoNotChangeResults) {
  const auto serial = run_with_shards(1);
  const auto two = run_with_shards(2);
  const auto four = run_with_shards(4);
  expect_identical(serial, two);
  expect_identical(serial, four);
}

TEST(ParallelCampaign, ExportedBytesIdenticalAcrossShardCounts) {
  const std::string serial = export_bytes(run_with_shards(1));
  EXPECT_EQ(serial, export_bytes(run_with_shards(2)));
  EXPECT_EQ(serial, export_bytes(run_with_shards(3)));
  EXPECT_EQ(serial, export_bytes(run_with_shards(4)));
  EXPECT_EQ(serial, export_bytes(run_with_shards(8)));
}

TEST(ParallelCampaign, RunStatsAccountForEveryVp) {
  Testbed tb{small_config()};
  CampaignConfig cc;
  cc.queries_per_vp = 3;
  cc.shards = 4;
  CampaignRunStats stats;
  cc.run_stats = &stats;
  const auto result = run_campaign(tb, cc);
  ASSERT_FALSE(stats.shards.empty());
  std::size_t vps = 0;
  for (const auto& s : stats.shards) {
    vps += s.vps;
    EXPECT_GE(s.wall_s, 0.0);
  }
  EXPECT_EQ(vps, result.vps.size());
  EXPECT_GE(stats.run_s, 0.0);
}

TEST(ParallelCampaign, MoreShardsThanGroupsStillWorks) {
  const auto serial = run_with_shards(1);
  const auto many = run_with_shards(64);
  expect_identical(serial, many);
}

TEST(ParallelCampaign, GroupsPartitionAllVpsAndShareNoRecursive) {
  Testbed tb{small_config()};
  const auto groups = campaign_vp_groups(tb);
  const auto& vps = tb.population().vps();
  std::vector<bool> seen(vps.size(), false);
  std::map<net::IpAddress, std::size_t> owner;  // recursive -> group
  for (std::size_t g = 0; g < groups.size(); ++g) {
    ASSERT_FALSE(groups[g].empty());
    for (const std::size_t vp_index : groups[g]) {
      ASSERT_LT(vp_index, vps.size());
      EXPECT_FALSE(seen[vp_index]) << "vp in two groups";
      seen[vp_index] = true;
      for (const auto& addr : vps[vp_index].stub->recursives()) {
        const auto [it, inserted] = owner.emplace(addr, g);
        EXPECT_EQ(it->second, g) << "recursive shared across groups";
      }
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "vp " << i << " missing from the partition";
  }
}

TEST(ParallelProduction, ShardsDoNotChangeResults) {
  const auto run = [](std::size_t shards) {
    TestbedConfig cfg;
    cfg.seed = 5;
    cfg.population.probes = 0;
    Testbed tb{cfg};
    ProductionConfig pc;
    pc.recursives = 60;
    pc.duration_hours = 0.1;
    pc.min_queries = 5;
    pc.shards = shards;
    return run_production(tb, pc);
  };
  const auto serial = run(1);
  const auto sharded = run(3);
  ASSERT_EQ(serial.service_labels, sharded.service_labels);
  ASSERT_EQ(serial.sources_total, sharded.sources_total);
  ASSERT_EQ(serial.recursives.size(), sharded.recursives.size());
  for (std::size_t i = 0; i < serial.recursives.size(); ++i) {
    const auto& ra = serial.recursives[i];
    const auto& rb = sharded.recursives[i];
    EXPECT_EQ(ra.address, rb.address) << "recursive " << i;
    EXPECT_EQ(ra.total, rb.total) << "recursive " << i;
    EXPECT_EQ(ra.per_service, rb.per_service) << "recursive " << i;
  }
  EXPECT_EQ(serial.mean_rank_share, sharded.mean_rank_share);
  EXPECT_EQ(serial.fraction_querying, sharded.fraction_querying);
}

}  // namespace
}  // namespace recwild::experiment
