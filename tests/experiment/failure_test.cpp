#include "experiment/failure.hpp"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace recwild::experiment {
namespace {

Testbed root_testbed() {
  TestbedConfig cfg;
  cfg.seed = 71;
  cfg.build_nl = false;
  cfg.build_population = false;
  return Testbed{cfg};
}

FailureScenarioConfig quick(FailureKind kind) {
  FailureScenarioConfig cfg;
  cfg.kind = kind;
  cfg.recursives = 40;
  cfg.duration_minutes = 12;
  cfg.queries_per_minute = 4;
  cfg.targets = {0, 1, 2};
  return cfg;
}

TEST(FailureScenario, ProducesAllPhases) {
  auto tb = root_testbed();
  const auto result = run_failure_scenario(tb, quick(FailureKind::ServiceDown));
  EXPECT_GT(result.before.queries, 0u);
  EXPECT_GT(result.during.queries, 0u);
  EXPECT_GT(result.after.queries, 0u);
  EXPECT_EQ(result.minute_success.size(), 12u);
  EXPECT_EQ(result.letter_labels.size(), 13u);
}

TEST(FailureScenario, HealthyPhasesFullySucceed) {
  auto tb = root_testbed();
  const auto result = run_failure_scenario(tb, quick(FailureKind::ServiceDown));
  EXPECT_GT(result.before.success_rate, 0.98);
  EXPECT_GT(result.after.success_rate, 0.95);
}

TEST(FailureScenario, RedundancyAbsorbsThreeDeadLetters) {
  auto tb = root_testbed();
  const auto result = run_failure_scenario(tb, quick(FailureKind::ServiceDown));
  // The 2015-root-event shape: success barely moves, latency pays.
  EXPECT_GT(result.during.success_rate, 0.90);
  EXPECT_GE(result.during.p90_latency_ms, result.before.p90_latency_ms);
}

TEST(FailureScenario, AllLettersDownIsFatal) {
  auto tb = root_testbed();
  auto cfg = quick(FailureKind::ServiceDown);
  cfg.targets.clear();
  for (std::size_t i = 0; i < 13; ++i) cfg.targets.push_back(i);
  const auto result = run_failure_scenario(tb, cfg);
  // Warm NS caches cannot help: the test queries are junk TLDs that
  // always need the root. (Some tail succeeds: resolutions started near
  // the event's end retry long enough to reach the recovered letters.)
  EXPECT_LT(result.during.success_rate, 0.25);
  EXPECT_GT(result.after.success_rate, 0.80);  // recovery after the event
}

TEST(FailureScenario, PartialSiteFailureMilderThanFullFailure) {
  auto tb1 = root_testbed();
  auto sites_cfg = quick(FailureKind::SitesDown);
  sites_cfg.site_fraction = 0.5;
  const auto partial = run_failure_scenario(tb1, sites_cfg);

  auto tb2 = root_testbed();
  const auto full =
      run_failure_scenario(tb2, quick(FailureKind::ServiceDown));
  EXPECT_GE(partial.during.success_rate, full.during.success_rate - 0.02);
}

TEST(PhaseAccounting, BoundarySamplesLandInExactlyOnePhase) {
  // Samples exactly on the window edges: [from, to) semantics mean a query
  // started precisely at the event start belongs to "during", and one
  // started precisely at the event end belongs to "after".
  std::vector<FailureSample> samples = {
      {0.0, true, 10.0},    // first instant of "before"
      {9.999, true, 10.0},  // just before the event
      {10.0, false, 0.0},   // exactly at event start -> during
      {19.999, false, 0.0},
      {20.0, true, 30.0},  // exactly at event end -> after
      {29.999, true, 30.0},
  };
  const auto before = aggregate_phase(samples, 0, 10);
  const auto during = aggregate_phase(samples, 10, 20);
  const auto after = aggregate_phase(samples, 20, 30);
  EXPECT_EQ(before.queries, 2u);
  EXPECT_EQ(during.queries, 2u);
  EXPECT_EQ(after.queries, 2u);
  EXPECT_EQ(before.queries + during.queries + after.queries, samples.size());
  EXPECT_DOUBLE_EQ(before.success_rate, 1.0);
  EXPECT_DOUBLE_EQ(during.success_rate, 0.0);
  EXPECT_DOUBLE_EQ(after.success_rate, 1.0);
}

TEST(PhaseAccounting, OnlySuccessesFeedTheLatencyQuantiles) {
  std::vector<FailureSample> samples = {
      {1.0, true, 100.0},
      {2.0, false, 9'000.0},  // a timeout's elapsed must not pollute p50
      {3.0, true, 200.0},
  };
  const auto phase = aggregate_phase(samples, 0, 10);
  EXPECT_EQ(phase.queries, 3u);
  EXPECT_NEAR(phase.median_latency_ms, 150.0, 1e-9);
}

TEST(FailureSchedule, OneServerCrashPerAffectedSite) {
  auto tb = root_testbed();
  auto cfg = quick(FailureKind::ServiceDown);
  const auto schedule = failure_schedule(tb, cfg);
  std::size_t expected = 0;
  for (const std::size_t t : cfg.targets) {
    expected += tb.roots().at(t).site_count();
  }
  ASSERT_EQ(schedule.size(), expected);
  const auto start = net::SimTime::origin() + net::Duration::minutes(4);
  const auto end = net::SimTime::origin() + net::Duration::minutes(8);
  for (const auto& e : schedule.events()) {
    EXPECT_EQ(e.kind, fault::FaultKind::ServerCrash);
    EXPECT_EQ(e.start, start);  // 12 min run, event over [1/3, 2/3]
    EXPECT_EQ(e.end, end);
    EXPECT_FALSE(e.target_a.empty());
  }
  EXPECT_NO_THROW(schedule.validate());
}

TEST(FailureSchedule, SitesDownTakesTheConfiguredFraction) {
  auto tb = root_testbed();
  auto cfg = quick(FailureKind::SitesDown);
  cfg.site_fraction = 0.5;
  cfg.targets = {0};
  const auto schedule = failure_schedule(tb, cfg);
  const auto n_sites = tb.roots().at(0).site_count();
  const auto expected = static_cast<std::size_t>(
      std::max(1.0, 0.5 * static_cast<double>(n_sites)));
  EXPECT_EQ(schedule.size(), expected);
}

TEST(FailureScenario, LetterSharesSumToOne) {
  auto tb = root_testbed();
  const auto result = run_failure_scenario(tb, quick(FailureKind::ServiceDown));
  double total = 0;
  for (const double s : result.letter_share_during) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace recwild::experiment
