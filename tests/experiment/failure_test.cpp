#include "experiment/failure.hpp"

#include <gtest/gtest.h>

namespace recwild::experiment {
namespace {

Testbed root_testbed() {
  TestbedConfig cfg;
  cfg.seed = 71;
  cfg.build_nl = false;
  cfg.build_population = false;
  return Testbed{cfg};
}

FailureScenarioConfig quick(FailureKind kind) {
  FailureScenarioConfig cfg;
  cfg.kind = kind;
  cfg.recursives = 40;
  cfg.duration_minutes = 12;
  cfg.queries_per_minute = 4;
  cfg.targets = {0, 1, 2};
  return cfg;
}

TEST(FailureScenario, ProducesAllPhases) {
  auto tb = root_testbed();
  const auto result = run_failure_scenario(tb, quick(FailureKind::ServiceDown));
  EXPECT_GT(result.before.queries, 0u);
  EXPECT_GT(result.during.queries, 0u);
  EXPECT_GT(result.after.queries, 0u);
  EXPECT_EQ(result.minute_success.size(), 12u);
  EXPECT_EQ(result.letter_labels.size(), 13u);
}

TEST(FailureScenario, HealthyPhasesFullySucceed) {
  auto tb = root_testbed();
  const auto result = run_failure_scenario(tb, quick(FailureKind::ServiceDown));
  EXPECT_GT(result.before.success_rate, 0.98);
  EXPECT_GT(result.after.success_rate, 0.95);
}

TEST(FailureScenario, RedundancyAbsorbsThreeDeadLetters) {
  auto tb = root_testbed();
  const auto result = run_failure_scenario(tb, quick(FailureKind::ServiceDown));
  // The 2015-root-event shape: success barely moves, latency pays.
  EXPECT_GT(result.during.success_rate, 0.90);
  EXPECT_GE(result.during.p90_latency_ms, result.before.p90_latency_ms);
}

TEST(FailureScenario, AllLettersDownIsFatal) {
  auto tb = root_testbed();
  auto cfg = quick(FailureKind::ServiceDown);
  cfg.targets.clear();
  for (std::size_t i = 0; i < 13; ++i) cfg.targets.push_back(i);
  const auto result = run_failure_scenario(tb, cfg);
  // Warm NS caches cannot help: the test queries are junk TLDs that
  // always need the root. (Some tail succeeds: resolutions started near
  // the event's end retry long enough to reach the recovered letters.)
  EXPECT_LT(result.during.success_rate, 0.25);
  EXPECT_GT(result.after.success_rate, 0.80);  // recovery after the event
}

TEST(FailureScenario, PartialSiteFailureMilderThanFullFailure) {
  auto tb1 = root_testbed();
  auto sites_cfg = quick(FailureKind::SitesDown);
  sites_cfg.site_fraction = 0.5;
  const auto partial = run_failure_scenario(tb1, sites_cfg);

  auto tb2 = root_testbed();
  const auto full =
      run_failure_scenario(tb2, quick(FailureKind::ServiceDown));
  EXPECT_GE(partial.during.success_rate, full.during.success_rate - 0.02);
}

TEST(FailureScenario, LetterSharesSumToOne) {
  auto tb = root_testbed();
  const auto result = run_failure_scenario(tb, quick(FailureKind::ServiceDown));
  double total = 0;
  for (const double s : result.letter_share_during) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace recwild::experiment
