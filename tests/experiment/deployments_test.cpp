#include "experiment/deployments.hpp"

#include <gtest/gtest.h>

#include "net/geo.hpp"

namespace recwild::experiment {
namespace {

TEST(Deployments, Table1HasSevenCombinations) {
  const auto combos = table1_combinations();
  ASSERT_EQ(combos.size(), 7u);
  EXPECT_EQ(combos[0].id, "2A");
  EXPECT_EQ(combos[6].id, "4B");
}

TEST(Deployments, Table1SiteListsMatchPaper) {
  EXPECT_EQ(combination("2A").sites,
            (std::vector<std::string>{"GRU", "NRT"}));
  EXPECT_EQ(combination("2B").sites,
            (std::vector<std::string>{"DUB", "FRA"}));
  EXPECT_EQ(combination("2C").sites,
            (std::vector<std::string>{"FRA", "SYD"}));
  EXPECT_EQ(combination("3A").sites,
            (std::vector<std::string>{"GRU", "NRT", "SYD"}));
  EXPECT_EQ(combination("3B").sites,
            (std::vector<std::string>{"DUB", "FRA", "IAD"}));
  EXPECT_EQ(combination("4A").sites,
            (std::vector<std::string>{"GRU", "NRT", "SYD", "DUB"}));
  EXPECT_EQ(combination("4B").sites,
            (std::vector<std::string>{"DUB", "FRA", "IAD", "SFO"}));
}

TEST(Deployments, UnknownCombinationThrows) {
  EXPECT_THROW(combination("9Z"), std::invalid_argument);
}

TEST(Deployments, ThirteenRootLetters) {
  const auto letters = root_letter_specs();
  ASSERT_EQ(letters.size(), 13u);
  EXPECT_EQ(letters[0].label, "a-root");
  EXPECT_EQ(letters[12].label, "m-root");
}

TEST(Deployments, RootLetterFootprintsVary) {
  const auto letters = root_letter_specs();
  std::size_t min_sites = 1000;
  std::size_t max_sites = 0;
  for (const auto& l : letters) {
    min_sites = std::min(min_sites, l.site_codes.size());
    max_sites = std::max(max_sites, l.site_codes.size());
  }
  EXPECT_EQ(min_sites, 1u);   // b-root style
  EXPECT_GE(max_sites, 8u);   // l-root style
}

TEST(Deployments, AllSiteCodesResolvable) {
  auto check = [](const std::vector<ServiceSpec>& specs) {
    for (const auto& s : specs) {
      for (const auto& code : s.site_codes) {
        EXPECT_TRUE(net::find_location(code).has_value())
            << s.label << " " << code;
      }
    }
  };
  check(root_letter_specs());
  check(nl_service_specs());
  check(nl_all_anycast_specs());
}

TEST(Deployments, NlMatchesPaperSection7) {
  const auto nl = nl_service_specs();
  ASSERT_EQ(nl.size(), 8u);
  std::size_t unicast = 0;
  std::size_t anycast = 0;
  for (const auto& s : nl) {
    if (s.site_codes.size() == 1) {
      ++unicast;
      EXPECT_EQ(s.site_codes[0], "AMS");  // unicast NSes in the Netherlands
    } else {
      ++anycast;
    }
  }
  EXPECT_EQ(unicast, 5u);
  EXPECT_EQ(anycast, 3u);
}

TEST(Deployments, AllAnycastVariantHasNoUnicast) {
  const auto nl = nl_all_anycast_specs();
  ASSERT_EQ(nl.size(), 8u);
  for (const auto& s : nl) {
    EXPECT_GT(s.site_codes.size(), 1u) << s.label;
  }
}

}  // namespace
}  // namespace recwild::experiment
