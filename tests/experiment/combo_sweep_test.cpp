// Parameterized sweep over every Table-1 combination: the structural
// invariants of the paper's findings must hold for each deployment, and
// KS distances quantify the §3.1 parity verifications.
#include <gtest/gtest.h>

#include "experiment/analysis.hpp"
#include "experiment/campaign.hpp"
#include "experiment/testbed.hpp"

namespace recwild::experiment {
namespace {

class ComboSweep : public ::testing::TestWithParam<std::string> {
 protected:
  CampaignResult run(std::size_t probes = 250) {
    TestbedConfig cfg;
    cfg.seed = 777;
    cfg.population.probes = probes;
    cfg.test_sites = combination(GetParam()).sites;
    Testbed tb{cfg};
    CampaignConfig cc;
    cc.queries_per_vp = 25;
    return run_campaign(tb, cc);
  }
};

TEST_P(ComboSweep, MajorityCoversAllAuthoritatives) {
  const auto cov = analyze_coverage(run());
  // Paper Figure 2: 75-96% across all seven combinations.
  EXPECT_GT(cov.covering_fraction, 0.55) << GetParam();
  EXPECT_GT(cov.vps_considered, 200u);
}

TEST_P(ComboSweep, SharesArePositiveAndNormalized) {
  const auto shares = analyze_shares(run());
  double total = 0;
  for (const double s : shares.query_share) {
    EXPECT_GT(s, 0.01) << GetParam();  // every NS sees real traffic
    total += s;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(ComboSweep, FastestAuthoritativeGetsAtLeastFairShare) {
  // §4.2: the lowest-RTT NS receives at least 1/n of the queries.
  const auto shares = analyze_shares(run());
  const auto fastest = static_cast<std::size_t>(
      std::min_element(shares.median_rtt_ms.begin(),
                       shares.median_rtt_ms.end()) -
      shares.median_rtt_ms.begin());
  EXPECT_GE(shares.query_share[fastest],
            1.0 / double(shares.query_share.size()) - 0.03)
      << GetParam();
}

TEST_P(ComboSweep, PreferenceFractionsOrdered) {
  const auto prefs = analyze_preferences(run());
  EXPECT_GE(prefs.weak_fraction, prefs.strong_fraction) << GetParam();
  EXPECT_GT(prefs.weak_fraction, 0.2) << GetParam();
  // Latency-driven resolvers form a large bloc among VPs with a clear RTT
  // gap. With 3-4 NSes the ">=60% to the single fastest" bar is much
  // harder to clear (even a pure-BIND VP splits when several NSes are
  // nearly as fast), so the floor drops with deployment size.
  if (prefs.rtt_eligible_vps > 30) {
    const double floor =
        combination(GetParam()).sites.size() == 2 ? 0.40 : 0.18;
    EXPECT_GT(prefs.rtt_following_fraction, floor) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Table1, ComboSweep,
                         ::testing::Values("2A", "2B", "2C", "3A", "3B",
                                           "4A", "4B"),
                         [](const auto& info) { return info.param; });

TEST(KsParity, PreferenceDistributionsAgreeAcrossSeeds) {
  // Same world, different seeds: per-VP favourite fractions must come from
  // the same distribution (a sanity bound on run-to-run variance).
  auto favs = [](std::uint64_t seed) {
    TestbedConfig cfg;
    cfg.seed = seed;
    cfg.population.probes = 300;
    cfg.test_sites = {"FRA", "SYD"};
    Testbed tb{cfg};
    CampaignConfig cc;
    cc.queries_per_vp = 20;
    const auto prefs = analyze_preferences(run_campaign(tb, cc));
    std::vector<double> out;
    for (const auto& vp : prefs.vps) out.push_back(vp.favourite_fraction);
    return out;
  };
  const auto a = favs(1);
  const auto b = favs(2);
  EXPECT_LT(stats::ks_distance(a, b), 0.12);
}

TEST(KsParity, DistinctDeploymentsActuallyDiffer) {
  // Control for the test above: 2B and 2C preference distributions are
  // far apart (2C's big RTT gap creates many strong preferences).
  auto favs = [](const char* combo) {
    TestbedConfig cfg;
    cfg.seed = 5;
    cfg.population.probes = 300;
    cfg.test_sites = combination(combo).sites;
    Testbed tb{cfg};
    CampaignConfig cc;
    cc.queries_per_vp = 20;
    const auto prefs = analyze_preferences(run_campaign(tb, cc));
    std::vector<double> out;
    for (const auto& vp : prefs.vps) out.push_back(vp.favourite_fraction);
    return out;
  };
  EXPECT_GT(stats::ks_distance(favs("2B"), favs("2C")), 0.15);
}

}  // namespace
}  // namespace recwild::experiment
