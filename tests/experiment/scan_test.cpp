// The bulk-resolution scan engine and its JSONL row log.
//
//  * A fixed-seed 1k-name scan reproduces the committed golden JSONL
//    fixture byte-for-byte, at every shard count — the scan analogue of
//    the campaign's datapath wall. Regenerate intentionally with:
//      RECWILD_UPDATE_FIXTURES=1 ./build/tests/experiment_tests \
//          --gtest_filter='Scan.*'
//  * read_scan_rows round-trips what write_scan_rows emits, and rejects
//    malformed rows with 1-based line numbers (DecisionTrace's error
//    style).
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "experiment/scan.hpp"
#include "obs/names.hpp"

#ifndef RECWILD_FIXTURE_DIR
#error "RECWILD_FIXTURE_DIR must point at tests/experiment/fixtures"
#endif

namespace recwild::experiment {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string{RECWILD_FIXTURE_DIR} + "/" + name;
}

bool update_mode() {
  const char* v = std::getenv("RECWILD_UPDATE_FIXTURES");
  return v != nullptr && *v != '\0' && *v != '0';
}

std::string read_fixture(const std::string& name) {
  std::ifstream in{fixture_path(name), std::ios::binary};
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TestbedConfig scan_world_config() {
  TestbedConfig cfg;
  cfg.seed = 2026;
  cfg.population.probes = 60;
  cfg.test_sites = {"DUB", "FRA"};
  cfg.population.resolver_template.max_inflight_resolutions = 16;
  cfg.population.resolver_template.max_queued_resolutions = 256;
  return cfg;
}

ScanResult run_scan_shards(std::size_t shards, std::size_t names = 1'000) {
  Testbed tb{scan_world_config()};
  ScanConfig sc;
  sc.names = names;
  sc.shards = shards;
  return run_scan(tb, sc);
}

std::string rows_bytes(const ScanResult& result) {
  std::ostringstream out;
  obs::write_scan_rows(out, result.rows);
  return out.str();
}

TEST(Scan, EveryNameIssuedAndCompletedOnce) {
  const auto result = run_scan_shards(1, 500);
  EXPECT_EQ(result.issued, 500u);
  EXPECT_EQ(result.completed, 500u);
  ASSERT_EQ(result.rows.size(), 500u);
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    EXPECT_EQ(result.rows[i].index, i);
    EXPECT_FALSE(result.rows[i].qname.empty()) << "row " << i;
    EXPECT_EQ(result.rows[i].rcode, "NOERROR") << "row " << i;
    EXPECT_FALSE(result.rows[i].answers.empty()) << "row " << i;
  }
  EXPECT_EQ(result.metrics.counter_value(obs::names::kScanNamesIssued),
            500u);
  EXPECT_EQ(result.metrics.counter_value(obs::names::kScanNamesCompleted),
            500u);
  EXPECT_GT(result.sim_queries_per_s, 0.0);
}

TEST(Scan, GoldenJsonlFixture) {
  const std::string produced = rows_bytes(run_scan_shards(1));
  const std::string name = "scan_seed2026_rows.jsonl";
  if (update_mode()) {
    std::ofstream out{fixture_path(name), std::ios::binary};
    out << produced;
    SUCCEED() << "fixture " << name << " updated (" << produced.size()
              << " bytes)";
    return;
  }
  const std::string expected = read_fixture(name);
  ASSERT_FALSE(expected.empty())
      << "missing fixture " << fixture_path(name)
      << " — run with RECWILD_UPDATE_FIXTURES=1 to create it";
  EXPECT_EQ(produced, expected)
      << "scan JSONL drifted from the committed fixture";
}

TEST(Scan, RowBytesIdenticalAcrossShardCounts) {
  const std::string serial = rows_bytes(run_scan_shards(1));
  EXPECT_EQ(serial, rows_bytes(run_scan_shards(2)));
  EXPECT_EQ(serial, rows_bytes(run_scan_shards(4)));
}

TEST(Scan, MetricsMergeAcrossShards) {
  const auto two = run_scan_shards(2, 400);
  EXPECT_EQ(two.metrics.counter_value(obs::names::kScanNamesIssued), 400u);
  EXPECT_EQ(two.metrics.counter_value(obs::names::kScanNamesCompleted),
            400u);
  EXPECT_EQ(two.issued, 400u);
  EXPECT_EQ(two.completed, 400u);
}

TEST(Scan, ExplicitNameListOverridesGenerator) {
  Testbed tb{scan_world_config()};
  ScanConfig sc;
  sc.names = 9999;  // ignored when name_list is set
  sc.name_list = {"a.test.nl", "b.test.nl", "c.test.nl"};
  const auto result = run_scan(tb, sc);
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(result.rows[0].qname, "a.test.nl.");
  EXPECT_EQ(result.rows[2].qname, "c.test.nl.");
}

// --- JSONL round-trip and strict parsing --------------------------------

obs::ScanRow sample_row() {
  obs::ScanRow row;
  row.index = 42;
  row.qname = "s42.test.nl";
  row.rcode = "NOERROR";
  row.answers = {"FRA", "weird \"quote\"\\backslash\n"};
  row.chain = 2;
  row.sim_ms = 123.456;
  row.upstream = 3;
  row.cache_hit = false;
  return row;
}

TEST(ScanLog, RoundTripsRows) {
  std::vector<obs::ScanRow> rows{sample_row()};
  rows.push_back(obs::ScanRow{});
  rows[1].index = 43;
  rows[1].qname = "s43.test.nl";
  rows[1].rcode = "SERVFAIL";
  rows[1].cache_hit = true;

  std::ostringstream out;
  obs::write_scan_rows(out, rows);
  std::istringstream in{out.str()};
  const auto parsed = obs::read_scan_rows(in);
  ASSERT_EQ(parsed.size(), rows.size());
  EXPECT_EQ(parsed[0], rows[0]);
  EXPECT_EQ(parsed[1], rows[1]);
}

TEST(ScanLog, RejectsMalformedRowsWithLineNumbers) {
  const std::string good =
      R"({"i":0,"qname":"a.nl","rcode":"NOERROR","answers":[],"chain":0,)"
      R"("sim_ms":1.000,"upstream":1,"cache_hit":false})";

  // Garbage on line 3 (line 2 is blank and skipped).
  std::istringstream bad_line{good + "\n\nnot json\n"};
  try {
    obs::read_scan_rows(bad_line);
    FAIL() << "expected malformed line to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("line 3"), std::string::npos)
        << e.what();
  }

  // Wrong key order / missing key on line 1.
  std::istringstream wrong_key{
      R"({"index":0,"qname":"a.nl","rcode":"NOERROR","answers":[],)"
      R"("chain":0,"sim_ms":1.000,"upstream":1,"cache_hit":false})"};
  EXPECT_THROW(obs::read_scan_rows(wrong_key), std::runtime_error);

  // Trailing bytes after the closing brace.
  std::istringstream trailing{good + "garbage"};
  EXPECT_THROW(obs::read_scan_rows(trailing), std::runtime_error);

  // Unterminated string.
  std::istringstream unterminated{
      R"({"i":0,"qname":"a.nl)"};
  EXPECT_THROW(obs::read_scan_rows(unterminated), std::runtime_error);
}

TEST(ScanLog, ScanOutputParsesBack) {
  const auto result = run_scan_shards(1, 100);
  std::ostringstream out;
  obs::write_scan_rows(out, result.rows);
  std::istringstream in{out.str()};
  const auto parsed = obs::read_scan_rows(in);
  ASSERT_EQ(parsed.size(), result.rows.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i], result.rows[i]) << "row " << i;
  }
}

}  // namespace
}  // namespace recwild::experiment
