// Analysis functions tested on hand-built CampaignResult fixtures, so the
// preference/coverage math is verified independently of the simulator.
#include "experiment/analysis.hpp"

#include <gtest/gtest.h>

namespace recwild::experiment {
namespace {

VpObservation vp(net::Continent c, std::vector<int> seq,
                 std::vector<double> rtts, std::size_t id = 0) {
  VpObservation obs;
  obs.probe_id = id;
  obs.continent = c;
  obs.sequence = std::move(seq);
  obs.rtt_ms = std::move(rtts);
  return obs;
}

CampaignResult two_service_result() {
  CampaignResult r;
  r.service_codes = {"DUB", "FRA"};
  return r;
}

TEST(Coverage, CountsQueriesToSeeAll) {
  auto result = two_service_result();
  // Sees service 0 at query 0, service 1 at query 2 -> covers at index 2.
  result.vps.push_back(
      vp(net::Continent::Europe, {0, 0, 1, 0, 1}, {50, 40}));
  const auto cov = analyze_coverage(result);
  EXPECT_EQ(cov.vps_considered, 1u);
  EXPECT_EQ(cov.vps_covering, 1u);
  EXPECT_DOUBLE_EQ(cov.covering_fraction, 1.0);
  ASSERT_TRUE(cov.queries_to_cover.has_value());
  EXPECT_DOUBLE_EQ(cov.queries_to_cover->p50, 2.0);
}

TEST(Coverage, NeverCoveringVpCounted) {
  auto result = two_service_result();
  result.vps.push_back(vp(net::Continent::Europe, {0, 0, 0}, {50, 40}));
  result.vps.push_back(vp(net::Continent::Europe, {0, 1, 0}, {50, 40}));
  const auto cov = analyze_coverage(result);
  EXPECT_EQ(cov.vps_considered, 2u);
  EXPECT_EQ(cov.vps_covering, 1u);
  EXPECT_DOUBLE_EQ(cov.covering_fraction, 0.5);
}

TEST(Coverage, TimeoutsAreNotSightings) {
  auto result = two_service_result();
  result.vps.push_back(vp(net::Continent::Europe, {0, -1, 1}, {50, 40}));
  const auto cov = analyze_coverage(result);
  ASSERT_TRUE(cov.queries_to_cover.has_value());
  EXPECT_DOUBLE_EQ(cov.queries_to_cover->p50, 2.0);
}

TEST(Coverage, AllTimeoutVpIgnored) {
  auto result = two_service_result();
  result.vps.push_back(vp(net::Continent::Europe, {-1, -1}, {50, 40}));
  const auto cov = analyze_coverage(result);
  EXPECT_EQ(cov.vps_considered, 0u);
}

TEST(Shares, HotPhaseOnly) {
  auto result = two_service_result();
  // Covers at index 1; hot phase = indices 2..5: {0,0,0,1}.
  result.vps.push_back(
      vp(net::Continent::Europe, {0, 1, 0, 0, 0, 1}, {50, 40}));
  const auto shares = analyze_shares(result);
  EXPECT_EQ(shares.total_queries, 4u);
  EXPECT_DOUBLE_EQ(shares.query_share[0], 0.75);
  EXPECT_DOUBLE_EQ(shares.query_share[1], 0.25);
}

TEST(Shares, MedianRttAcrossVps) {
  auto result = two_service_result();
  result.vps.push_back(
      vp(net::Continent::Europe, {0, 1, 0, 1}, {30, 100}));
  result.vps.push_back(
      vp(net::Continent::Europe, {1, 0, 1, 0}, {50, 200}));
  result.vps.push_back(
      vp(net::Continent::Europe, {0, 1, 1, 0}, {70, 300}));
  const auto shares = analyze_shares(result);
  EXPECT_DOUBLE_EQ(shares.median_rtt_ms[0], 50.0);
  EXPECT_DOUBLE_EQ(shares.median_rtt_ms[1], 200.0);
}

TEST(Preferences, WeakAndStrongThresholds) {
  auto result = two_service_result();
  // Hot phase after index 1. 10 hot queries:
  // VP A: 9/10 to service 0 -> strong (and weak).
  result.vps.push_back(vp(net::Continent::Europe,
                          {0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}, {30, 90},
                          1));
  // VP B: 7/10 to service 0 -> weak only.
  result.vps.push_back(vp(net::Continent::Europe,
                          {0, 1, 0, 0, 0, 1, 0, 0, 1, 0, 0, 1}, {30, 90},
                          2));
  // VP C: 5/10 each -> neither.
  result.vps.push_back(vp(net::Continent::Europe,
                          {0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1}, {30, 90},
                          3));
  const auto prefs = analyze_preferences(result);
  ASSERT_EQ(prefs.vps.size(), 3u);
  EXPECT_NEAR(prefs.weak_fraction, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(prefs.strong_fraction, 1.0 / 3.0, 1e-9);
}

TEST(Preferences, RttFollowingRequiresThreshold) {
  auto result = two_service_result();
  // RTT diff 60 ms (eligible); favours the fast service 0.
  result.vps.push_back(vp(net::Continent::Europe,
                          {0, 1, 0, 0, 0, 0}, {30, 90}, 1));
  // RTT diff 10 ms (not eligible).
  result.vps.push_back(vp(net::Continent::Europe,
                          {0, 1, 0, 0, 0, 0}, {30, 40}, 2));
  // Eligible but favours the SLOW one.
  result.vps.push_back(vp(net::Continent::Europe,
                          {0, 1, 1, 1, 1, 1}, {30, 90}, 3));
  const auto prefs = analyze_preferences(result);
  EXPECT_EQ(prefs.rtt_eligible_vps, 2u);
  EXPECT_DOUBLE_EQ(prefs.rtt_following_fraction, 0.5);
}

TEST(Preferences, ContinentRowsMatchTable2Shape) {
  auto result = two_service_result();
  result.vps.push_back(vp(net::Continent::Europe,
                          {0, 1, 0, 0, 0, 0}, {30, 90}, 1));
  result.vps.push_back(vp(net::Continent::Oceania,
                          {0, 1, 1, 1, 1, 1}, {300, 40}, 2));
  const auto prefs = analyze_preferences(result);
  ASSERT_EQ(prefs.continents.size(), net::kContinentCount);
  const auto& eu = prefs.continents[2];  // AF AS EU NA OC SA order
  EXPECT_EQ(net::continent_code(eu.continent), "EU");
  EXPECT_EQ(eu.vp_count, 1u);
  EXPECT_DOUBLE_EQ(eu.query_share[0], 1.0);
  const auto& oc = prefs.continents[4];
  EXPECT_EQ(oc.vp_count, 1u);
  EXPECT_DOUBLE_EQ(oc.query_share[1], 1.0);
  EXPECT_DOUBLE_EQ(oc.median_rtt_ms[0], 300.0);
}

TEST(Preferences, VpWithoutCoverageExcluded) {
  auto result = two_service_result();
  result.vps.push_back(vp(net::Continent::Europe, {0, 0, 0}, {30, 90}));
  const auto prefs = analyze_preferences(result);
  EXPECT_TRUE(prefs.vps.empty());
}

TEST(RttSensitivity, OnePointPerContinentService) {
  auto result = two_service_result();
  result.vps.push_back(vp(net::Continent::Europe,
                          {0, 1, 0, 0}, {30, 90}, 1));
  const auto points = analyze_rtt_sensitivity(result);
  ASSERT_EQ(points.size(), 2u);  // one continent with VPs x two services
  EXPECT_EQ(points[0].code, "DUB");
  EXPECT_EQ(points[1].code, "FRA");
  EXPECT_DOUBLE_EQ(points[0].median_rtt_ms, 30.0);
  EXPECT_DOUBLE_EQ(points[0].query_fraction, 1.0);
}

TEST(FractionToService, PerContinent) {
  auto result = two_service_result();
  result.vps.push_back(vp(net::Continent::Europe,
                          {0, 1, 1, 1, 1, 0}, {30, 90}, 1));
  const auto rows = fraction_to_service(result, 1);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].first, net::Continent::Europe);
  EXPECT_DOUBLE_EQ(rows[0].second, 0.75);  // hot phase: {1,1,1,0}
}

}  // namespace
}  // namespace recwild::experiment
