#include "experiment/export.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace recwild::experiment {
namespace {

CampaignResult tiny_result() {
  CampaignResult r;
  r.service_codes = {"DUB", "FRA"};
  VpObservation vp;
  vp.probe_id = 7;
  vp.continent = net::Continent::Europe;
  vp.recursive_addr = net::IpAddress::from_octets(10, 0, 0, 9);
  vp.sequence = {0, 1, 1, 1, -1, 1};
  vp.rtt_ms = {50.0, 40.0};
  r.vps.push_back(std::move(vp));
  return r;
}

std::vector<std::string> lines_of(const std::string& s) {
  std::vector<std::string> lines;
  std::istringstream in{s};
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv{out};
  csv.row({"plain", "with,comma", "with\"quote", "multi\nline"});
  EXPECT_EQ(out.str(),
            "plain,\"with,comma\",\"with\"\"quote\",\"multi\nline\"\n");
}

TEST(CsvWriter, NumFormatsCompactly) {
  EXPECT_EQ(CsvWriter::num(0.5), "0.5");
  EXPECT_EQ(CsvWriter::num(42), "42");
}

TEST(ExportCampaign, OneRowPerQuery) {
  std::ostringstream out;
  write_campaign_csv(out, tiny_result());
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 7u);  // header + 6 queries
  EXPECT_EQ(lines[0], "probe_id,continent,recursive,query_index,service");
  EXPECT_EQ(lines[1], "7,EU,10.0.0.9,0,DUB");
  EXPECT_EQ(lines[5], "7,EU,10.0.0.9,4,");  // timeout -> empty service
  EXPECT_EQ(lines[6], "7,EU,10.0.0.9,5,FRA");
}

TEST(ExportPreferences, ProfilesWithFractions) {
  std::ostringstream out;
  write_preferences_csv(out, tiny_result());
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            "probe_id,continent,queries,favourite,favourite_fraction,"
            "fraction_DUB,fraction_FRA,rtt_DUB,rtt_FRA");
  // Hot phase after covering at index 1: {1,1,-1,1} -> 3 FRA of 3 valid.
  EXPECT_EQ(lines[1], "7,EU,3,FRA,1,0,1,50,40");
}

TEST(ExportShares, HeaderAndRows) {
  std::ostringstream out;
  write_shares_csv(out, tiny_result());
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "service,share,median_rtt_ms");
  EXPECT_EQ(lines[1].substr(0, 4), "DUB,");
  EXPECT_EQ(lines[2].substr(0, 4), "FRA,");
}

TEST(ExportProduction, RankSharesSorted) {
  ProductionResult result;
  result.service_labels = {"a-root", "c-root", "d-root"};
  RecursiveTraffic t;
  t.address = net::IpAddress::from_octets(10, 1, 1, 1);
  t.continent = net::Continent::Asia;
  t.policy = resolver::PolicyKind::StickyFirst;
  t.total = 100;
  t.per_service = {20, 70, 10};
  result.recursives.push_back(std::move(t));

  std::ostringstream out;
  write_production_csv(out, result);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            "address,continent,policy,total,share_rank1,share_rank2,"
            "share_rank3");
  EXPECT_EQ(lines[1], "10.1.1.1,AS,sticky_first,100,0.7,0.2,0.1");
}

}  // namespace
}  // namespace recwild::experiment
