// Figure gate: ties the test suite to the headline numbers quoted in
// EXPERIMENTS.md §7 ("all authoritatives should be anycast").
//
// The full bench (bench_recommendation, 500 recursives, 1 h) reports an
// overall query-weighted median of 46 ms for the paper's mixed .nl
// deployment (5x unicast AMS + 3x anycast) and 37 ms for the all-anycast
// variant. This test replays the same experiment on a reduced sample —
// same seed, half the recursives — and gates the medians to within
// +/-10% of the published figures. A datapath or selection change that
// shifts the simulated latency distribution trips this gate even if
// every unit test still passes.
#include "experiment/production.hpp"

#include <cstdio>

#include <gtest/gtest.h>

namespace recwild::experiment {
namespace {

const DeploymentLatency& measure(bool all_anycast) {
  // A production hour is the expensive part; run each deployment once and
  // share the result across the gate tests (the runs are deterministic).
  static const auto run = [](bool anycast) {
    TestbedConfig cfg;
    cfg.seed = 42;  // same seed as the canonical bench run
    cfg.build_population = false;
    cfg.all_anycast_nl = anycast;
    Testbed tb{cfg};

    ProductionConfig pc;
    pc.target = ProductionTarget::Nl;
    pc.recursives = 250;  // bench uses 500; hour and filter kept identical
                          // so the qualifying-population mix matches
    const auto result = run_production(tb, pc);
    return analyze_nl_latency(tb, result);
  };
  static const DeploymentLatency mixed = run(false);
  static const DeploymentLatency anycast = run(true);
  return all_anycast ? anycast : mixed;
}

TEST(FigureGate, Section7MixedDeploymentMedian) {
  const auto& lat = measure(/*all_anycast=*/false);
  std::printf("mixed deployment: median %.1f ms (published 46 ms)\n",
              lat.overall_median_ms);
  EXPECT_NEAR(lat.overall_median_ms, 46.0, 4.6);
}

TEST(FigureGate, Section7AllAnycastMedian) {
  const auto& lat = measure(/*all_anycast=*/true);
  std::printf("all-anycast: median %.1f ms (published 37 ms)\n",
              lat.overall_median_ms);
  EXPECT_NEAR(lat.overall_median_ms, 37.0, 3.7);
}

TEST(FigureGate, AnycastImprovesTail) {
  // The recommendation's mechanism, not just its medians: the mixed
  // deployment's tail is set by its unicast NSes, so going all-anycast
  // must strictly improve p90 and the worst case.
  const auto& mixed = measure(/*all_anycast=*/false);
  const auto& anycast = measure(/*all_anycast=*/true);
  EXPECT_LT(anycast.overall_p90_ms, mixed.overall_p90_ms);
  EXPECT_LT(anycast.overall_worst_ms, mixed.overall_worst_ms);
}

}  // namespace
}  // namespace recwild::experiment
