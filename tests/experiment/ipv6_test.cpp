// IPv6 support: the paper re-ran a subset of its measurements over IPv6
// and confirmed recursives follow the same selection strategy (§3.1).
// These tests exercise the dual-stack testbed: AAAA glue, v6-plane
// addresses, v6-only and dual-stack resolvers.
#include <gtest/gtest.h>

#include "experiment/analysis.hpp"
#include "experiment/campaign.hpp"
#include "experiment/testbed.hpp"

namespace recwild::experiment {
namespace {

TestbedConfig dual_cfg(std::size_t probes = 80) {
  TestbedConfig cfg;
  cfg.seed = 404;
  cfg.dual_stack = true;
  cfg.population.probes = probes;
  cfg.test_sites = {"DUB", "FRA"};
  return cfg;
}

TEST(Ipv6, DualStackTestbedPublishesAaaaGlue) {
  Testbed tb{dual_cfg()};
  // Ask a root letter for the .nl referral and check AAAA glue shows up.
  // (EDNS: a referral with 8 NSes and dual-stack glue tops 512 bytes.)
  const auto& letter = tb.roots().front();
  dns::Message query = dns::Message::make_query(
      1, dns::Name::parse("anything.nl"), dns::RRType::A);
  query.edns = dns::EdnsInfo{};
  query.edns->udp_payload_size = 4096;
  const auto resp = letter.sites().front().server->answer(query);
  EXPECT_FALSE(resp.header.tc);
  bool saw_aaaa = false;
  for (const auto& rr : resp.additionals) {
    if (rr.type() == dns::RRType::AAAA) {
      saw_aaaa = true;
      const auto mapped = net::IpAddress::from_mapped_ipv6(
          std::get<dns::AaaaRdata>(rr.rdata).address);
      ASSERT_TRUE(mapped.has_value());
      // v6-plane pool is 253.0.0.0/8.
      EXPECT_EQ(mapped->bits() >> 24, 253u);
    }
  }
  EXPECT_TRUE(saw_aaaa);
}

TEST(Ipv6, MappedAddressRoundTrip) {
  const net::IpAddress addr{0xfd0010ff};
  const auto v6 = addr.to_mapped_ipv6();
  const auto back = net::IpAddress::from_mapped_ipv6(v6);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, addr);
  // Non-mapped 16-byte addresses are rejected.
  std::array<std::uint8_t, 16> native{};
  native[0] = 0x20;
  native[1] = 0x01;
  EXPECT_FALSE(net::IpAddress::from_mapped_ipv6(native).has_value());
}

TEST(Ipv6, V6OnlyResolverResolvesEndToEnd) {
  TestbedConfig cfg = dual_cfg();
  cfg.build_population = false;
  Testbed tb{cfg};

  resolver::ResolverConfig rc;
  rc.name = "v6-resolver";
  rc.family = resolver::AddressFamily::V6Only;
  resolver::RecursiveResolver res{
      tb.network(),
      tb.network().add_node("v6res", net::find_location("AMS")->point),
      tb.network().allocate_address6(), rc, tb.hints6(), stats::Rng{5}};
  res.start();

  resolver::ResolveOutcome out;
  res.resolve(dns::Question{dns::Name::parse("v6probe.ourtestdomain.nl"),
                            dns::RRType::TXT, dns::RRClass::IN},
              [&](const resolver::ResolveOutcome& o) { out = o; });
  tb.sim().run();
  EXPECT_EQ(out.rcode, dns::Rcode::NoError);
  ASSERT_FALSE(out.answers.empty());

  // Everything it learned latency about lives in the v6 plane.
  for (const auto& h : tb.hints6()) {
    EXPECT_EQ(h.address.bits() >> 24, 253u);
  }
  std::size_t v6_entries = 0;
  for (const auto& svc : tb.test_services()) {
    ASSERT_TRUE(svc.address6().has_value());
    if (res.infra().get(*svc.address6(), tb.sim().now()) != nullptr) {
      ++v6_entries;
    }
    // And it never touched the v4 addresses.
    EXPECT_EQ(res.infra().get(svc.address(), tb.sim().now()), nullptr);
  }
  EXPECT_GE(v6_entries, 1u);
}

TEST(Ipv6, DualResolverSeesBothFamiliesAsServers) {
  TestbedConfig cfg = dual_cfg();
  cfg.build_population = false;
  Testbed tb{cfg};

  resolver::ResolverConfig rc;
  rc.name = "dual-resolver";
  rc.family = resolver::AddressFamily::Dual;
  rc.policy = resolver::PolicyKind::RoundRobin;  // visits every candidate
  resolver::RecursiveResolver res{
      tb.network(),
      tb.network().add_node("dualres", net::find_location("AMS")->point),
      tb.network().allocate_address(), rc, tb.hints(), stats::Rng{6}};
  res.start();

  // Warm up then issue enough queries to rotate through all candidates:
  // 2 NSes x 2 families = 4 server identities.
  int done = 0;
  for (int i = 0; i < 12; ++i) {
    res.resolve(dns::Question{dns::Name::parse("d" + std::to_string(i) +
                                               ".ourtestdomain.nl"),
                              dns::RRType::TXT, dns::RRClass::IN},
                [&](const resolver::ResolveOutcome&) { ++done; });
    tb.sim().run();
  }
  EXPECT_EQ(done, 12);
  std::size_t planes_seen = 0;
  for (const auto& svc : tb.test_services()) {
    if (res.infra().get(svc.address(), tb.sim().now())) ++planes_seen;
    if (res.infra().get(*svc.address6(), tb.sim().now())) ++planes_seen;
  }
  EXPECT_GE(planes_seen, 3u);  // round robin reached both planes
}

TEST(Ipv6, SelectionStrategyUnchangedOverV6) {
  // The paper's §3.1 verification: same campaign, v4-only vs dual-stack
  // population — aggregate preference statistics agree.
  TestbedConfig v4 = dual_cfg(150);
  const auto r4 = [&] {
    Testbed tb{v4};
    CampaignConfig cc;
    cc.queries_per_vp = 20;
    return analyze_preferences(run_campaign(tb, cc));
  }();

  TestbedConfig v6 = dual_cfg(150);
  v6.population.ipv6_fraction = 1.0;
  const auto r6 = [&] {
    Testbed tb{v6};
    CampaignConfig cc;
    cc.queries_per_vp = 20;
    return analyze_preferences(run_campaign(tb, cc));
  }();

  EXPECT_NEAR(r4.weak_fraction, r6.weak_fraction, 0.15);
  EXPECT_NEAR(r4.strong_fraction, r6.strong_fraction, 0.15);
}

}  // namespace
}  // namespace recwild::experiment
