#include "experiment/testbed.hpp"

#include <gtest/gtest.h>

namespace recwild::experiment {
namespace {

TestbedConfig small_config(std::vector<std::string> sites = {"DUB", "FRA"}) {
  TestbedConfig cfg;
  cfg.seed = 11;
  cfg.population.probes = 60;
  cfg.test_sites = std::move(sites);
  return cfg;
}

TEST(Testbed, BuildsTheWholeWorld) {
  Testbed tb{small_config()};
  EXPECT_EQ(tb.roots().size(), 13u);
  EXPECT_EQ(tb.nl_services().size(), 8u);
  EXPECT_EQ(tb.test_services().size(), 2u);
  EXPECT_EQ(tb.population().vps().size(), 60u);
  EXPECT_EQ(tb.hints().size(), 13u);
}

TEST(Testbed, TestServiceIndexLookup) {
  Testbed tb{small_config()};
  EXPECT_EQ(tb.test_index_of("DUB"), 0);
  EXPECT_EQ(tb.test_index_of("FRA"), 1);
  EXPECT_EQ(tb.test_index_of("SYD"), -1);
}

TEST(Testbed, UnknownTestSiteThrows) {
  EXPECT_THROW(Testbed{small_config({"???"})}, std::invalid_argument);
}

TEST(Testbed, TestDomainRequiresNl) {
  TestbedConfig cfg = small_config();
  cfg.build_nl = false;
  EXPECT_THROW(Testbed{cfg}, std::invalid_argument);
}

TEST(Testbed, RootOnlyWorldIsFine) {
  TestbedConfig cfg;
  cfg.seed = 3;
  cfg.build_nl = false;
  cfg.build_population = false;
  cfg.test_sites.clear();
  Testbed tb{cfg};
  EXPECT_EQ(tb.roots().size(), 13u);
  EXPECT_TRUE(tb.nl_services().empty());
  EXPECT_TRUE(tb.population().vps().empty());
}

TEST(Testbed, EndToEndResolutionThroughAllLayers) {
  Testbed tb{small_config()};
  auto& vp = tb.population().vps().front();
  std::vector<client::StubResult> results;
  vp.stub->query(dns::Name::parse("probe1.ourtestdomain.nl"),
                 dns::RRType::TXT,
                 [&](const client::StubResult& r) { results.push_back(r); });
  tb.sim().run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].rcode, dns::Rcode::NoError);
  ASSERT_EQ(results[0].txt.size(), 1u);
  EXPECT_TRUE(results[0].txt[0] == "DUB" || results[0].txt[0] == "FRA");
  // Resolution walked root -> nl -> test domain.
  std::uint64_t root_queries = 0;
  for (auto& letter : tb.roots()) root_queries += letter.total_queries();
  EXPECT_GE(root_queries, 1u);
  std::uint64_t nl_queries = 0;
  for (auto& svc : tb.nl_services()) nl_queries += svc.total_queries();
  EXPECT_GE(nl_queries, 1u);
}

TEST(Testbed, AllAnycastNlVariant) {
  TestbedConfig cfg = small_config();
  cfg.all_anycast_nl = true;
  Testbed tb{cfg};
  for (auto& svc : tb.nl_services()) {
    EXPECT_GT(svc.site_count(), 1u) << svc.name();
  }
}

TEST(Testbed, RecursiveNodeLookup) {
  Testbed tb{small_config()};
  const auto& rec = tb.population().recursives().front();
  EXPECT_EQ(tb.recursive_node(rec.resolver->address()),
            rec.resolver->node());
  EXPECT_EQ(tb.recursive_node(net::IpAddress{0xdeadbeef}),
            net::kInvalidNode);
}

TEST(Testbed, DeterministicWithSameSeed) {
  Testbed a{small_config()};
  Testbed b{small_config()};
  auto run = [](Testbed& tb) {
    std::string result;
    tb.population().vps().front().stub->query(
        dns::Name::parse("det.ourtestdomain.nl"), dns::RRType::TXT,
        [&](const client::StubResult& r) {
          result = r.txt.empty() ? "none" : r.txt[0];
        });
    tb.sim().run();
    return result;
  };
  EXPECT_EQ(run(a), run(b));
}

}  // namespace
}  // namespace recwild::experiment
