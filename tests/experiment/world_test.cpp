// WorldSnapshot / partition-scoped replica semantics: one immutable world
// shared by all replicas, each materializing only its VP partition — with
// node ids, addresses and results identical to a from-scratch build.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "experiment/campaign.hpp"
#include "experiment/testbed.hpp"

namespace recwild::experiment {
namespace {

TestbedConfig small_config() {
  TestbedConfig cfg;
  cfg.seed = 77;
  cfg.population.probes = 90;
  cfg.test_sites = {"DUB", "FRA", "GRU"};
  return cfg;
}

TEST(WorldSnapshot, ReplicasShareOneCatalogAndAgreeOnEveryId) {
  const auto world = WorldSnapshot::build(small_config());
  Testbed a{world};
  Testbed b{world};

  // Same catalog object, not a copy.
  EXPECT_EQ(a.network().base_catalog().get(), world->catalog.get());
  EXPECT_EQ(a.network().base_catalog().get(), b.network().base_catalog().get());

  ASSERT_EQ(a.population().vps().size(), b.population().vps().size());
  for (std::size_t i = 0; i < a.population().vps().size(); ++i) {
    const auto& va = a.population().vps()[i];
    const auto& vb = b.population().vps()[i];
    EXPECT_EQ(va.node, vb.node);
    EXPECT_EQ(va.stub->address(), vb.stub->address());
    EXPECT_EQ(va.stub->recursives(), vb.stub->recursives());
  }
  ASSERT_EQ(a.population().recursives().size(),
            b.population().recursives().size());
  for (std::size_t i = 0; i < a.population().recursives().size(); ++i) {
    EXPECT_EQ(a.population().recursives()[i].resolver->address(),
              b.population().recursives()[i].resolver->address());
    EXPECT_EQ(a.population().recursives()[i].resolver->node(),
              b.population().recursives()[i].resolver->node());
  }
}

TEST(WorldSnapshot, MatchesFromScratchBuild) {
  // A testbed built the classic way (from a config) and one materialized
  // from its snapshot are the same world: every node, address, hint.
  Testbed classic{small_config()};
  Testbed replica{classic.world()};

  EXPECT_EQ(classic.network().node_count(), replica.network().node_count());
  ASSERT_EQ(classic.hints().size(), replica.hints().size());
  for (std::size_t i = 0; i < classic.hints().size(); ++i) {
    EXPECT_EQ(classic.hints()[i].address, replica.hints()[i].address);
  }
  ASSERT_EQ(classic.population().vps().size(),
            replica.population().vps().size());
  for (std::size_t i = 0; i < classic.population().vps().size(); ++i) {
    EXPECT_EQ(classic.population().vps()[i].stub->address(),
              replica.population().vps()[i].stub->address());
  }
}

TEST(WorldSnapshot, PartitionScopedReplicaInstantiatesOnlyItsVps) {
  const auto world = WorldSnapshot::build(small_config());
  ASSERT_GE(world->vp_groups.size(), 2u)
      << "config too small to have independent VP groups";

  // Partition = the smallest group, so it is a strict subset of the fleet.
  const auto smallest = *std::min_element(
      world->vp_groups.begin(), world->vp_groups.end(),
      [](const auto& a, const auto& b) { return a.size() < b.size(); });
  Testbed replica{world, &smallest};

  // Exactly the partition's VPs exist — nothing out-of-partition.
  EXPECT_EQ(replica.population().vps().size(), smallest.size());
  const std::set<std::size_t> in_partition(smallest.begin(), smallest.end());
  for (const auto& vp : replica.population().vps()) {
    EXPECT_TRUE(in_partition.count(vp.probe_id))
        << "out-of-partition stub for probe " << vp.probe_id;
  }
  for (std::size_t v = 0; v < world->population.vp_count(); ++v) {
    const auto* vp = replica.population().by_probe(v);
    if (in_partition.count(v)) {
      ASSERT_NE(vp, nullptr) << "probe " << v;
      EXPECT_EQ(vp->probe_id, v);
      // Identity matches the plan exactly.
      EXPECT_EQ(vp->node, world->population.vp_node[v]);
      EXPECT_EQ(vp->stub->address(), world->population.vp_stub_addr[v]);
    } else {
      EXPECT_EQ(vp, nullptr) << "probe " << v << " should not exist";
    }
  }

  // Only the closure's recursives are live: a strict-subset partition of a
  // multi-group world must not materialize the whole recursive fleet.
  Testbed full{world};
  EXPECT_LT(replica.population().recursives().size(),
            full.population().recursives().size());
  // Every upstream the partition's VPs can reach resolves to a live
  // recursive on the replica.
  for (const std::size_t v : smallest) {
    const auto* vp = replica.population().by_probe(v);
    for (const auto& addr : vp->stub->recursives()) {
      EXPECT_NE(replica.population().recursive_by_address(addr), nullptr);
    }
  }
}

TEST(WorldSnapshot, PartitionedCampaignShardMatchesFullWorldShard) {
  const auto world = WorldSnapshot::build(small_config());
  ASSERT_GE(world->vp_groups.size(), 2u);
  const auto& group = world->vp_groups.front();

  CampaignConfig cc;
  cc.queries_per_vp = 3;
  cc.shards = 1;

  // The same VP group simulated on a full world and on a partition-scoped
  // replica must observe byte-identical sequences (the property the
  // sharded engine is built on). run_campaign with shards=1 replays all
  // VPs; compare the group's rows only.
  Testbed full{world};
  const auto serial = run_campaign(full, cc);

  Testbed scoped{world, &group};
  // Drive just this group's VPs through the one-shard path by running the
  // campaign on the scoped world: its population IS the group.
  const auto part = run_campaign(scoped, cc);

  ASSERT_EQ(part.vps.size(), group.size());
  for (std::size_t j = 0; j < group.size(); ++j) {
    const auto& a = serial.vps[group[j]];
    const auto& b = part.vps[j];
    EXPECT_EQ(a.probe_id, b.probe_id);
    EXPECT_EQ(a.sequence, b.sequence) << "probe " << a.probe_id;
    EXPECT_EQ(a.recursive_addr, b.recursive_addr) << "probe " << a.probe_id;
    EXPECT_EQ(a.rtt_ms, b.rtt_ms) << "probe " << a.probe_id;
  }
}

TEST(WorldSnapshot, ZonesSharedAcrossSitesAndReplicas) {
  // The root zone is one object: all 13 letters' ServicePlans point at it.
  const auto world = WorldSnapshot::build(small_config());
  ASSERT_FALSE(world->roots.empty());
  const auto* root_zone = world->roots.front().zones.front().get();
  for (const auto& sp : world->roots) {
    ASSERT_EQ(sp.zones.size(), 1u);
    EXPECT_EQ(sp.zones.front().get(), root_zone);
  }
  // .nl likewise shares one zone across its 8 services.
  ASSERT_FALSE(world->nl.empty());
  const auto* nl_zone = world->nl.front().zones.front().get();
  for (const auto& sp : world->nl) {
    EXPECT_EQ(sp.zones.front().get(), nl_zone);
  }
}

}  // namespace
}  // namespace recwild::experiment
