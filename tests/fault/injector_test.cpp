// Behavioural coverage of the FaultInjector: every FaultKind enforced over
// a tiny hand-built world, plus the arm-time observability contract.
#include "fault/injector.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "anycast/service.hpp"
#include "authns/secondary.hpp"
#include "obs/names.hpp"

namespace recwild::fault {
namespace {

constexpr const char* kZoneText = R"(
$TTL 3600
@    IN SOA ns1 hostmaster 1 14400 3600 1209600 300
@    IN NS  ns1
ns1  IN A   192.0.2.1
*    5 IN TXT "FRA"
)";

net::SimTime at_s(double s) {
  return net::SimTime::origin() + net::Duration::seconds(s);
}

struct World {
  net::Simulation sim{91};
  net::LatencyParams params;
  std::unique_ptr<net::Network> net;
  net::NodeId server_node = net::kInvalidNode;
  net::NodeId client_node = net::kInvalidNode;
  net::Endpoint server_ep;
  net::Endpoint client_ep;
  std::unique_ptr<authns::AuthServer> server;
  std::vector<dns::Message> received;
  std::vector<net::SimTime> received_at;

  World() {
    params.loss_rate = 0.0;
    net = std::make_unique<net::Network>(sim, params);
    server_node = net->add_node("auth-node", net::find_location("FRA")->point);
    client_node = net->add_node("client-node",
                                net::find_location("AMS")->point);
    server_ep = net::Endpoint{net->allocate_address(), net::kDnsPort};
    client_ep = net::Endpoint{net->allocate_address(), 5555};
    authns::AuthServerConfig cfg;
    cfg.identity = "testsrv.fra";
    server = std::make_unique<authns::AuthServer>(*net, server_node,
                                                  server_ep, cfg);
    server->add_zone(authns::Zone::from_text(
        dns::Name::parse("ourtestdomain.nl"), kZoneText));
    server->start();
    net->listen(client_node, client_ep,
                [this](const net::Datagram& d, net::NodeId) {
                  received.push_back(dns::decode_message(d.payload));
                  received_at.push_back(sim.now());
                });
  }

  /// Schedules a TXT query at sim time `at` and runs the world dry.
  void query_at(net::SimTime at, std::uint16_t id) {
    sim.at(at, [this, id] {
      net->send(client_node, client_ep, server_ep,
                dns::encode_message(dns::Message::make_query(
                    id, dns::Name::parse("x.ourtestdomain.nl"),
                    dns::RRType::TXT)));
    });
    sim.run();
  }

  std::unique_ptr<FaultInjector> make_injector(FaultSchedule schedule) {
    auto injector =
        std::make_unique<FaultInjector>(*net, std::move(schedule));
    injector->bind_server(*server);
    return injector;
  }
};

TEST(FaultInjector, ServerCrashSwallowsQueriesOnlyInsideTheWindow) {
  World w;
  FaultSchedule s;
  s.add({FaultKind::ServerCrash, at_s(10), at_s(20), "testsrv.fra", "", 0.0,
         -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();

  w.query_at(at_s(1), 1);    // before: answered
  w.query_at(at_s(15), 2);   // during: swallowed
  w.query_at(at_s(25), 3);   // after: answered
  ASSERT_EQ(w.received.size(), 2u);
  EXPECT_EQ(w.received[0].header.id, 1);
  EXPECT_EQ(w.received[1].header.id, 3);
  // The crashed server still receives and logs (a dead process's host
  // still gets the packets).
  EXPECT_EQ(w.server->queries_received(), 3u);
}

TEST(FaultInjector, ServerRefuseAnswersRefusedAndCounts) {
  World w;
  FaultSchedule s;
  s.add({FaultKind::ServerRefuse, at_s(0), at_s(100), "testsrv.fra", "", 0.0,
         -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();

  w.query_at(at_s(5), 7);
  ASSERT_EQ(w.received.size(), 1u);
  EXPECT_EQ(w.received[0].header.rcode, dns::Rcode::Refused);
  EXPECT_EQ(w.sim.metrics().snapshot().counter_value(obs::names::kFaultAuthRefused), 1u);
}

TEST(FaultInjector, ServerSlowDelaysTheAnswer) {
  // Same world/seed twice: identical path latency draws, so the only
  // difference between the runs is the injected processing delay.
  net::SimTime healthy_at;
  {
    World w;
    w.query_at(at_s(5), 1);
    ASSERT_EQ(w.received_at.size(), 1u);
    healthy_at = w.received_at[0];
  }
  World w;
  FaultSchedule s;
  s.add({FaultKind::ServerSlow, at_s(0), at_s(100), "testsrv.fra", "", 250.0,
         -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();
  w.query_at(at_s(5), 1);
  ASSERT_EQ(w.received_at.size(), 1u);
  EXPECT_NEAR((w.received_at[0] - healthy_at).ms(), 250.0, 1.0);
}

TEST(FaultInjector, WildcardTargetsEveryBoundServer) {
  World w;
  FaultSchedule s;
  s.add({FaultKind::ServerCrash, at_s(0), at_s(100), "*", "", 0.0, -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();
  w.query_at(at_s(5), 1);
  EXPECT_TRUE(w.received.empty());
}

TEST(FaultInjector, BlackholeDropsPacketsToTheAddress) {
  World w;
  FaultSchedule s;
  s.add({FaultKind::Blackhole, at_s(0), at_s(100),
         w.server_ep.addr.to_string(), "", 0.0, -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();

  w.query_at(at_s(5), 1);
  EXPECT_TRUE(w.received.empty());
  EXPECT_EQ(w.server->queries_received(), 0u);  // never arrived
  EXPECT_EQ(
      w.sim.metrics().snapshot().counter_value(obs::names::kFaultPacketsDropped), 1u);
  EXPECT_EQ(w.net->dropped(), 1u);
}

TEST(FaultInjector, PartitionDropsBothDirectionsIncludingStreams) {
  World w;
  FaultSchedule s;
  s.add({FaultKind::Partition, at_s(0), at_s(100), "auth-node",
         "client-node", 0.0, -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();

  w.query_at(at_s(5), 1);
  EXPECT_TRUE(w.received.empty());
  EXPECT_EQ(w.server->queries_received(), 0u);

  // Streams don't cross a partition either.
  bool stream_delivered = false;
  w.net->listen(w.server_node, net::Endpoint{w.server_ep.addr, 999},
                [&](const net::Datagram&, net::NodeId) {
                  stream_delivered = true;
                });
  w.sim.at(at_s(6), [&w] {
    w.net->send_stream(w.client_node, w.client_ep,
                       net::Endpoint{w.server_ep.addr, 999}, {1, 2, 3});
  });
  w.sim.run();
  EXPECT_FALSE(stream_delivered);
}

TEST(FaultInjector, FullLossBurstEatsUdpButNotStreams) {
  World w;
  FaultSchedule s;
  s.add({FaultKind::LossBurst, at_s(0), at_s(100), "client-node",
         "auth-node", 1.0, -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();

  w.query_at(at_s(5), 1);
  EXPECT_TRUE(w.received.empty());

  bool stream_delivered = false;
  w.net->listen(w.server_node, net::Endpoint{w.server_ep.addr, 999},
                [&](const net::Datagram& d, net::NodeId) {
                  stream_delivered = d.via_stream;
                });
  w.sim.at(at_s(6), [&w] {
    w.net->send_stream(w.client_node, w.client_ep,
                       net::Endpoint{w.server_ep.addr, 999}, {1, 2, 3});
  });
  w.sim.run();
  EXPECT_TRUE(stream_delivered);
}

TEST(FaultInjector, ZeroLossBurstDropsNothing) {
  World w;
  FaultSchedule s;
  s.add({FaultKind::LossBurst, at_s(0), at_s(100), "client-node",
         "auth-node", 0.0, -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();
  w.query_at(at_s(5), 1);
  EXPECT_EQ(w.received.size(), 1u);
}

TEST(FaultInjector, LatencySpikeDelaysDelivery) {
  net::SimTime healthy_at;
  {
    World w;
    w.query_at(at_s(5), 1);
    ASSERT_EQ(w.received_at.size(), 1u);
    healthy_at = w.received_at[0];
  }
  World w;
  FaultSchedule s;
  s.add({FaultKind::LatencySpike, at_s(0), at_s(100), "client-node",
         "auth-node", 80.0, -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();
  w.query_at(at_s(5), 1);
  ASSERT_EQ(w.received_at.size(), 1u);
  // Both legs (query + response) gained 80 ms one-way.
  EXPECT_NEAR((w.received_at[0] - healthy_at).ms(), 160.0, 1.0);
  EXPECT_EQ(
      w.sim.metrics().snapshot().counter_value(obs::names::kFaultPacketsDelayed), 2u);
}

TEST(FaultInjector, XferStarveDropsTransferPortTraffic) {
  World w;
  FaultSchedule s;
  s.add({FaultKind::XferStarve, at_s(0), at_s(100),
         w.server_ep.addr.to_string(), "", 0.0, -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();

  // A "secondary" SOA refresh from the well-known transfer client port
  // is starved...
  w.sim.at(at_s(1), [&w] {
    w.net->send(w.client_node,
                net::Endpoint{w.client_ep.addr, authns::kXfrClientPort},
                w.server_ep,
                dns::encode_message(dns::Message::make_query(
                    1, dns::Name::parse("ourtestdomain.nl"),
                    dns::RRType::SOA)));
  });
  w.sim.run();
  EXPECT_EQ(w.server->queries_received(), 0u);

  // ...while ordinary resolver traffic to the same address flows.
  w.query_at(at_s(2), 2);
  EXPECT_EQ(w.received.size(), 1u);
}

TEST(FaultInjector, ArmEmitsCountersAndTraceStampedWithWindowTimes) {
  World w;
  w.sim.trace().set_enabled(true);
  FaultSchedule s;
  s.add({FaultKind::ServerCrash, at_s(10), at_s(20), "testsrv.fra", "", 0.0,
         -1.0});
  s.add({FaultKind::LossBurst, at_s(30), at_s(40), "client-node",
         "auth-node", 0.25, 0.75});
  auto injector = w.make_injector(std::move(s));
  injector->arm();

  EXPECT_EQ(w.sim.metrics().snapshot().counter_value(obs::names::kFaultEventsArmed), 2u);
  const auto& events = w.sim.trace().events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, obs::TraceKind::FaultOn);
  EXPECT_EQ(events[0].at, at_s(10));
  EXPECT_EQ(events[0].detail, "server_crash");
  EXPECT_EQ(events[1].kind, obs::TraceKind::FaultOff);
  EXPECT_EQ(events[1].at, at_s(20));
  EXPECT_EQ(events[2].subject, "client-node|auth-node");
  EXPECT_DOUBLE_EQ(events[2].value, 0.25);
  EXPECT_DOUBLE_EQ(events[3].value, 0.75);  // ramp end magnitude
}

TEST(FaultInjector, UnknownTargetsThrow) {
  World w;
  {
    FaultSchedule s;
    s.add({FaultKind::ServerCrash, at_s(0), at_s(10), "no-such-server", "",
           0.0, -1.0});
    auto injector = w.make_injector(std::move(s));
    EXPECT_THROW(injector->arm(), std::invalid_argument);
  }
  {
    FaultSchedule s;
    s.add({FaultKind::Partition, at_s(0), at_s(10), "no-such-node",
           "client-node", 0.0, -1.0});
    auto injector = w.make_injector(std::move(s));
    EXPECT_THROW(injector->arm(), std::invalid_argument);
  }
  {
    FaultSchedule s;
    s.add({FaultKind::Blackhole, at_s(0), at_s(10), "not-an-address", "",
           0.0, -1.0});
    auto injector = w.make_injector(std::move(s));
    EXPECT_THROW(injector->arm(), std::invalid_argument);
  }
}

TEST(FaultInjector, ServerOnlyScheduleInstallsNoPacketHook) {
  World w;
  FaultSchedule s;
  s.add({FaultKind::ServerCrash, at_s(0), at_s(10), "testsrv.fra", "", 0.0,
         -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();
  EXPECT_EQ(w.net->fault_hook(), nullptr);
}

TEST(FaultInjector, DisarmRestoresTheWorld) {
  World w;
  FaultSchedule s;
  s.add({FaultKind::Blackhole, at_s(0), at_s(100),
         w.server_ep.addr.to_string(), "", 0.0, -1.0});
  s.add({FaultKind::ServerCrash, at_s(0), at_s(100), "testsrv.fra", "", 0.0,
         -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();
  EXPECT_EQ(w.net->fault_hook(), injector.get());
  injector->disarm();
  EXPECT_EQ(w.net->fault_hook(), nullptr);
  w.query_at(at_s(5), 1);
  EXPECT_EQ(w.received.size(), 1u);  // both faults gone
}

/// A two-site anycast service (FRA, SYD) with a client near FRA, for the
/// site-fault kinds.
struct AnycastWorld {
  net::Simulation sim{91};
  net::LatencyParams params;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<anycast::AnycastService> svc;
  net::NodeId client_node = net::kInvalidNode;
  net::Endpoint client_ep;
  std::vector<std::uint16_t> received;

  AnycastWorld() {
    params.loss_rate = 0.0;
    net = std::make_unique<net::Network>(sim, params);
    svc = std::make_unique<anycast::AnycastService>(
        anycast::AnycastService::create(*net, "root", net->allocate_address(),
                                        {"FRA", "SYD"}));
    svc->add_zone(authns::Zone::from_text(
        dns::Name::parse("ourtestdomain.nl"), kZoneText));
    svc->start();
    client_node = net->add_node("client-node",
                                net::find_location("AMS")->point);
    client_ep = net::Endpoint{net->allocate_address(), 5555};
    net->listen(client_node, client_ep,
                [this](const net::Datagram& d, net::NodeId) {
                  received.push_back(dns::decode_message(d.payload).header.id);
                });
  }

  void query_at(net::SimTime at, std::uint16_t id) {
    sim.at(at, [this, id] {
      net->send(client_node, client_ep,
                net::Endpoint{svc->address(), net::kDnsPort},
                dns::encode_message(dns::Message::make_query(
                    id, dns::Name::parse("x.ourtestdomain.nl"),
                    dns::RRType::TXT)));
    });
    sim.run();
  }

  std::unique_ptr<FaultInjector> make_injector(FaultSchedule schedule) {
    auto injector =
        std::make_unique<FaultInjector>(*net, std::move(schedule));
    injector->bind_service(*svc);
    return injector;
  }

  [[nodiscard]] std::uint64_t fra() const {
    return svc->sites()[0].server->queries_received();
  }
  [[nodiscard]] std::uint64_t syd() const {
    return svc->sites()[1].server->queries_received();
  }
};

TEST(FaultInjector, SiteWithdrawConvergesThenFailsOver) {
  AnycastWorld w;
  FaultSchedule s;
  // Addressed by the service's shared address; 2000ms nominal convergence
  // (the injector jitters it within ±25%, so converged by t=12.5s at the
  // latest).
  s.add({FaultKind::SiteWithdraw, at_s(10), at_s(30),
         w.svc->address().to_string(), "FRA", 2000.0, -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();

  w.query_at(at_s(1), 1);     // before: FRA answers
  w.query_at(at_s(10.5), 2);  // inside convergence: lost in the dead path
  w.query_at(at_s(15), 3);    // converged: SYD answers transparently
  w.query_at(at_s(35), 4);    // re-announced: FRA again

  ASSERT_EQ(w.received.size(), 3u);
  EXPECT_EQ(w.received[0], 1);
  EXPECT_EQ(w.received[1], 3);
  EXPECT_EQ(w.received[2], 4);
  EXPECT_EQ(w.fra(), 2u);
  EXPECT_EQ(w.syd(), 1u);
  EXPECT_EQ(w.sim.metrics().snapshot().counter_value(
                obs::names::kAnycastLostInConvergence),
            1u);
}

TEST(FaultInjector, SiteWithdrawMatchesServiceByName) {
  AnycastWorld w;
  FaultSchedule s;
  s.add({FaultKind::SiteWithdraw, at_s(10), at_s(30), "root", "FRA", 2000.0,
         -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();
  EXPECT_TRUE(w.svc->route_control().has_outages());
}

TEST(FaultInjector, SiteFlapAlternatesWithdrawnAndAnnounced) {
  AnycastWorld w;
  FaultSchedule s;
  // [10s, 70s) with a 10s half-period: withdrawn [10,20) [30,40) [50,60),
  // announced between. 1s nominal convergence per cycle.
  s.add({FaultKind::SiteFlap, at_s(10), at_s(70),
         w.svc->address().to_string(), "FRA", 1000.0, -1.0, 10'000.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();

  w.query_at(at_s(15), 1);  // first withdrawn cycle, converged -> SYD
  w.query_at(at_s(25), 2);  // announced gap -> FRA
  w.query_at(at_s(35), 3);  // second withdrawn cycle -> SYD
  w.query_at(at_s(45), 4);  // announced gap -> FRA
  w.query_at(at_s(80), 5);  // after the flap -> FRA

  ASSERT_EQ(w.received.size(), 5u);
  EXPECT_EQ(w.fra(), 3u);
  EXPECT_EQ(w.syd(), 2u);
}

TEST(FaultInjector, ConvergenceJitterIsDeterministic) {
  // Identically-seeded worlds arm identical jittered windows: the planned
  // routing state agrees at every instant (the sharded engines' byte-
  // identity rests on exactly this).
  auto states = [](AnycastWorld& w) {
    std::vector<net::RouteState> out;
    const net::NodeId fra_node = w.svc->sites()[0].node;
    for (int ms = 10'000; ms < 14'000; ms += 10) {
      out.push_back(w.svc->route_control().site_state(
          fra_node, net::SimTime::origin() + net::Duration::millis(ms)));
    }
    return out;
  };
  FaultSchedule s;
  s.add({FaultKind::SiteWithdraw, at_s(10), at_s(30), "root", "FRA", 2000.0,
         -1.0});

  AnycastWorld a;
  auto ia = a.make_injector(s);
  ia->arm();
  AnycastWorld b;
  auto ib = b.make_injector(s);
  ib->arm();
  const auto sa = states(a);
  EXPECT_EQ(sa, states(b));
  // The jitter stayed inside ±25% of the 2000ms nominal delay: still
  // Sinking at +1.49s, Withdrawn by +2.51s.
  EXPECT_EQ(sa[149], net::RouteState::Sinking);
  EXPECT_EQ(sa[251], net::RouteState::Withdrawn);
}

TEST(FaultInjector, SiteTargetsValidateAgainstTheWorld) {
  AnycastWorld w;
  {
    FaultSchedule s;
    s.add({FaultKind::SiteWithdraw, at_s(0), at_s(10), "no-such-service",
           "FRA", 500.0, -1.0});
    auto injector = w.make_injector(std::move(s));
    EXPECT_THROW(injector->arm(), std::invalid_argument);
  }
  {
    FaultSchedule s;
    s.add({FaultKind::SiteWithdraw, at_s(0), at_s(10), "root", "XXX", 500.0,
           -1.0});
    auto injector = w.make_injector(std::move(s));
    EXPECT_THROW(injector->arm(), std::invalid_argument);
  }
}

TEST(FaultInjector, DisarmClearsScheduledWithdrawals) {
  AnycastWorld w;
  FaultSchedule s;
  s.add({FaultKind::SiteWithdraw, at_s(10), at_s(30), "root", "*", 500.0,
         -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();
  EXPECT_TRUE(w.svc->route_control().has_outages());
  injector->disarm();
  EXPECT_FALSE(w.svc->route_control().has_outages());
  w.query_at(at_s(15), 1);  // mid-window, but the fault is gone
  ASSERT_EQ(w.received.size(), 1u);
  EXPECT_EQ(w.fra(), 1u);
}

}  // namespace
}  // namespace recwild::fault
