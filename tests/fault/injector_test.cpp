// Behavioural coverage of the FaultInjector: every FaultKind enforced over
// a tiny hand-built world, plus the arm-time observability contract.
#include "fault/injector.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "authns/secondary.hpp"
#include "obs/names.hpp"

namespace recwild::fault {
namespace {

constexpr const char* kZoneText = R"(
$TTL 3600
@    IN SOA ns1 hostmaster 1 14400 3600 1209600 300
@    IN NS  ns1
ns1  IN A   192.0.2.1
*    5 IN TXT "FRA"
)";

net::SimTime at_s(double s) {
  return net::SimTime::origin() + net::Duration::seconds(s);
}

struct World {
  net::Simulation sim{91};
  net::LatencyParams params;
  std::unique_ptr<net::Network> net;
  net::NodeId server_node = net::kInvalidNode;
  net::NodeId client_node = net::kInvalidNode;
  net::Endpoint server_ep;
  net::Endpoint client_ep;
  std::unique_ptr<authns::AuthServer> server;
  std::vector<dns::Message> received;
  std::vector<net::SimTime> received_at;

  World() {
    params.loss_rate = 0.0;
    net = std::make_unique<net::Network>(sim, params);
    server_node = net->add_node("auth-node", net::find_location("FRA")->point);
    client_node = net->add_node("client-node",
                                net::find_location("AMS")->point);
    server_ep = net::Endpoint{net->allocate_address(), net::kDnsPort};
    client_ep = net::Endpoint{net->allocate_address(), 5555};
    authns::AuthServerConfig cfg;
    cfg.identity = "testsrv.fra";
    server = std::make_unique<authns::AuthServer>(*net, server_node,
                                                  server_ep, cfg);
    server->add_zone(authns::Zone::from_text(
        dns::Name::parse("ourtestdomain.nl"), kZoneText));
    server->start();
    net->listen(client_node, client_ep,
                [this](const net::Datagram& d, net::NodeId) {
                  received.push_back(dns::decode_message(d.payload));
                  received_at.push_back(sim.now());
                });
  }

  /// Schedules a TXT query at sim time `at` and runs the world dry.
  void query_at(net::SimTime at, std::uint16_t id) {
    sim.at(at, [this, id] {
      net->send(client_node, client_ep, server_ep,
                dns::encode_message(dns::Message::make_query(
                    id, dns::Name::parse("x.ourtestdomain.nl"),
                    dns::RRType::TXT)));
    });
    sim.run();
  }

  std::unique_ptr<FaultInjector> make_injector(FaultSchedule schedule) {
    auto injector =
        std::make_unique<FaultInjector>(*net, std::move(schedule));
    injector->bind_server(*server);
    return injector;
  }
};

TEST(FaultInjector, ServerCrashSwallowsQueriesOnlyInsideTheWindow) {
  World w;
  FaultSchedule s;
  s.add({FaultKind::ServerCrash, at_s(10), at_s(20), "testsrv.fra", "", 0.0,
         -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();

  w.query_at(at_s(1), 1);    // before: answered
  w.query_at(at_s(15), 2);   // during: swallowed
  w.query_at(at_s(25), 3);   // after: answered
  ASSERT_EQ(w.received.size(), 2u);
  EXPECT_EQ(w.received[0].header.id, 1);
  EXPECT_EQ(w.received[1].header.id, 3);
  // The crashed server still receives and logs (a dead process's host
  // still gets the packets).
  EXPECT_EQ(w.server->queries_received(), 3u);
}

TEST(FaultInjector, ServerRefuseAnswersRefusedAndCounts) {
  World w;
  FaultSchedule s;
  s.add({FaultKind::ServerRefuse, at_s(0), at_s(100), "testsrv.fra", "", 0.0,
         -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();

  w.query_at(at_s(5), 7);
  ASSERT_EQ(w.received.size(), 1u);
  EXPECT_EQ(w.received[0].header.rcode, dns::Rcode::Refused);
  EXPECT_EQ(w.sim.metrics().snapshot().counter_value(obs::names::kFaultAuthRefused), 1u);
}

TEST(FaultInjector, ServerSlowDelaysTheAnswer) {
  // Same world/seed twice: identical path latency draws, so the only
  // difference between the runs is the injected processing delay.
  net::SimTime healthy_at;
  {
    World w;
    w.query_at(at_s(5), 1);
    ASSERT_EQ(w.received_at.size(), 1u);
    healthy_at = w.received_at[0];
  }
  World w;
  FaultSchedule s;
  s.add({FaultKind::ServerSlow, at_s(0), at_s(100), "testsrv.fra", "", 250.0,
         -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();
  w.query_at(at_s(5), 1);
  ASSERT_EQ(w.received_at.size(), 1u);
  EXPECT_NEAR((w.received_at[0] - healthy_at).ms(), 250.0, 1.0);
}

TEST(FaultInjector, WildcardTargetsEveryBoundServer) {
  World w;
  FaultSchedule s;
  s.add({FaultKind::ServerCrash, at_s(0), at_s(100), "*", "", 0.0, -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();
  w.query_at(at_s(5), 1);
  EXPECT_TRUE(w.received.empty());
}

TEST(FaultInjector, BlackholeDropsPacketsToTheAddress) {
  World w;
  FaultSchedule s;
  s.add({FaultKind::Blackhole, at_s(0), at_s(100),
         w.server_ep.addr.to_string(), "", 0.0, -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();

  w.query_at(at_s(5), 1);
  EXPECT_TRUE(w.received.empty());
  EXPECT_EQ(w.server->queries_received(), 0u);  // never arrived
  EXPECT_EQ(
      w.sim.metrics().snapshot().counter_value(obs::names::kFaultPacketsDropped), 1u);
  EXPECT_EQ(w.net->dropped(), 1u);
}

TEST(FaultInjector, PartitionDropsBothDirectionsIncludingStreams) {
  World w;
  FaultSchedule s;
  s.add({FaultKind::Partition, at_s(0), at_s(100), "auth-node",
         "client-node", 0.0, -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();

  w.query_at(at_s(5), 1);
  EXPECT_TRUE(w.received.empty());
  EXPECT_EQ(w.server->queries_received(), 0u);

  // Streams don't cross a partition either.
  bool stream_delivered = false;
  w.net->listen(w.server_node, net::Endpoint{w.server_ep.addr, 999},
                [&](const net::Datagram&, net::NodeId) {
                  stream_delivered = true;
                });
  w.sim.at(at_s(6), [&w] {
    w.net->send_stream(w.client_node, w.client_ep,
                       net::Endpoint{w.server_ep.addr, 999}, {1, 2, 3});
  });
  w.sim.run();
  EXPECT_FALSE(stream_delivered);
}

TEST(FaultInjector, FullLossBurstEatsUdpButNotStreams) {
  World w;
  FaultSchedule s;
  s.add({FaultKind::LossBurst, at_s(0), at_s(100), "client-node",
         "auth-node", 1.0, -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();

  w.query_at(at_s(5), 1);
  EXPECT_TRUE(w.received.empty());

  bool stream_delivered = false;
  w.net->listen(w.server_node, net::Endpoint{w.server_ep.addr, 999},
                [&](const net::Datagram& d, net::NodeId) {
                  stream_delivered = d.via_stream;
                });
  w.sim.at(at_s(6), [&w] {
    w.net->send_stream(w.client_node, w.client_ep,
                       net::Endpoint{w.server_ep.addr, 999}, {1, 2, 3});
  });
  w.sim.run();
  EXPECT_TRUE(stream_delivered);
}

TEST(FaultInjector, ZeroLossBurstDropsNothing) {
  World w;
  FaultSchedule s;
  s.add({FaultKind::LossBurst, at_s(0), at_s(100), "client-node",
         "auth-node", 0.0, -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();
  w.query_at(at_s(5), 1);
  EXPECT_EQ(w.received.size(), 1u);
}

TEST(FaultInjector, LatencySpikeDelaysDelivery) {
  net::SimTime healthy_at;
  {
    World w;
    w.query_at(at_s(5), 1);
    ASSERT_EQ(w.received_at.size(), 1u);
    healthy_at = w.received_at[0];
  }
  World w;
  FaultSchedule s;
  s.add({FaultKind::LatencySpike, at_s(0), at_s(100), "client-node",
         "auth-node", 80.0, -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();
  w.query_at(at_s(5), 1);
  ASSERT_EQ(w.received_at.size(), 1u);
  // Both legs (query + response) gained 80 ms one-way.
  EXPECT_NEAR((w.received_at[0] - healthy_at).ms(), 160.0, 1.0);
  EXPECT_EQ(
      w.sim.metrics().snapshot().counter_value(obs::names::kFaultPacketsDelayed), 2u);
}

TEST(FaultInjector, XferStarveDropsTransferPortTraffic) {
  World w;
  FaultSchedule s;
  s.add({FaultKind::XferStarve, at_s(0), at_s(100),
         w.server_ep.addr.to_string(), "", 0.0, -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();

  // A "secondary" SOA refresh from the well-known transfer client port
  // is starved...
  w.sim.at(at_s(1), [&w] {
    w.net->send(w.client_node,
                net::Endpoint{w.client_ep.addr, authns::kXfrClientPort},
                w.server_ep,
                dns::encode_message(dns::Message::make_query(
                    1, dns::Name::parse("ourtestdomain.nl"),
                    dns::RRType::SOA)));
  });
  w.sim.run();
  EXPECT_EQ(w.server->queries_received(), 0u);

  // ...while ordinary resolver traffic to the same address flows.
  w.query_at(at_s(2), 2);
  EXPECT_EQ(w.received.size(), 1u);
}

TEST(FaultInjector, ArmEmitsCountersAndTraceStampedWithWindowTimes) {
  World w;
  w.sim.trace().set_enabled(true);
  FaultSchedule s;
  s.add({FaultKind::ServerCrash, at_s(10), at_s(20), "testsrv.fra", "", 0.0,
         -1.0});
  s.add({FaultKind::LossBurst, at_s(30), at_s(40), "client-node",
         "auth-node", 0.25, 0.75});
  auto injector = w.make_injector(std::move(s));
  injector->arm();

  EXPECT_EQ(w.sim.metrics().snapshot().counter_value(obs::names::kFaultEventsArmed), 2u);
  const auto& events = w.sim.trace().events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, obs::TraceKind::FaultOn);
  EXPECT_EQ(events[0].at, at_s(10));
  EXPECT_EQ(events[0].detail, "server_crash");
  EXPECT_EQ(events[1].kind, obs::TraceKind::FaultOff);
  EXPECT_EQ(events[1].at, at_s(20));
  EXPECT_EQ(events[2].subject, "client-node|auth-node");
  EXPECT_DOUBLE_EQ(events[2].value, 0.25);
  EXPECT_DOUBLE_EQ(events[3].value, 0.75);  // ramp end magnitude
}

TEST(FaultInjector, UnknownTargetsThrow) {
  World w;
  {
    FaultSchedule s;
    s.add({FaultKind::ServerCrash, at_s(0), at_s(10), "no-such-server", "",
           0.0, -1.0});
    auto injector = w.make_injector(std::move(s));
    EXPECT_THROW(injector->arm(), std::invalid_argument);
  }
  {
    FaultSchedule s;
    s.add({FaultKind::Partition, at_s(0), at_s(10), "no-such-node",
           "client-node", 0.0, -1.0});
    auto injector = w.make_injector(std::move(s));
    EXPECT_THROW(injector->arm(), std::invalid_argument);
  }
  {
    FaultSchedule s;
    s.add({FaultKind::Blackhole, at_s(0), at_s(10), "not-an-address", "",
           0.0, -1.0});
    auto injector = w.make_injector(std::move(s));
    EXPECT_THROW(injector->arm(), std::invalid_argument);
  }
}

TEST(FaultInjector, ServerOnlyScheduleInstallsNoPacketHook) {
  World w;
  FaultSchedule s;
  s.add({FaultKind::ServerCrash, at_s(0), at_s(10), "testsrv.fra", "", 0.0,
         -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();
  EXPECT_EQ(w.net->fault_hook(), nullptr);
}

TEST(FaultInjector, DisarmRestoresTheWorld) {
  World w;
  FaultSchedule s;
  s.add({FaultKind::Blackhole, at_s(0), at_s(100),
         w.server_ep.addr.to_string(), "", 0.0, -1.0});
  s.add({FaultKind::ServerCrash, at_s(0), at_s(100), "testsrv.fra", "", 0.0,
         -1.0});
  auto injector = w.make_injector(std::move(s));
  injector->arm();
  EXPECT_EQ(w.net->fault_hook(), injector.get());
  injector->disarm();
  EXPECT_EQ(w.net->fault_hook(), nullptr);
  w.query_at(at_s(5), 1);
  EXPECT_EQ(w.received.size(), 1u);  // both faults gone
}

}  // namespace
}  // namespace recwild::fault
