// Chaos invariant harness (the tentpole's acceptance tests): seeded random
// fault schedules over full campaigns must never break the engine's core
// guarantees, whatever they take down —
//  * every client query completes with SOME outcome (bounded work);
//  * the event queue drains at teardown (no leaked events);
//  * sim-time stamps are monotone in recording order on the serial run;
//  * metrics JSON and canonical trace stay byte-identical for shard
//    counts 1, 2 and 4.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "experiment/campaign.hpp"
#include "fault/chaos.hpp"
#include "obs/names.hpp"

namespace recwild::fault {
namespace {

using experiment::CampaignConfig;
using experiment::CampaignResult;
using experiment::Testbed;
using experiment::TestbedConfig;

constexpr std::uint64_t kSeeds[] = {1009, 2027, 3041};

TestbedConfig base_config() {
  TestbedConfig cfg;
  cfg.seed = 77;
  cfg.population.probes = 48;
  cfg.test_sites = {"DUB", "FRA", "GRU"};
  cfg.trace_decisions = true;
  return cfg;
}

/// Describes the world's fault surface by scouting a throwaway testbed:
/// real server identities, node names and service addresses.
ChaosSpace world_space() {
  Testbed scout{base_config()};
  ChaosSpace space;
  space.horizon = net::Duration::minutes(20);
  space.events = 5;
  for (auto& svc : scout.test_services()) {
    for (auto& site : svc.sites()) {
      space.server_targets.push_back(site.server->identity());
      space.node_targets.push_back(
          scout.network().node(site.node).name);
    }
    space.address_targets.push_back(svc.address().to_string());
  }
  // One root letter in the mix: faults above the test domain.
  auto& root = scout.roots().front();
  space.server_targets.push_back(root.sites().front().server->identity());
  return space;
}

struct ChaosRun {
  CampaignResult result;
  std::string metrics_json;
  std::string trace_tsv;
  std::size_t pending_after = 0;
  bool trace_monotone = true;
};

ChaosRun run_chaos(const FaultSchedule& schedule, std::size_t shards) {
  auto cfg = base_config();
  cfg.faults = schedule;
  Testbed tb{cfg};
  CampaignConfig cc;
  cc.interval = net::Duration::minutes(2);
  cc.queries_per_vp = 4;
  cc.shards = shards;

  ChaosRun run;
  run.result = run_campaign(tb, cc);
  run.metrics_json =
      run.result.metrics.to_json(obs::SnapshotStyle::MergeSafe);
  std::ostringstream trace_out;
  obs::write_trace(trace_out, tb.trace().canonical());
  run.trace_tsv = trace_out.str();
  run.pending_after = tb.sim().pending();
  if (shards == 1) {
    // On the serial run the RAW recording order must be time-monotone for
    // every runtime event: decisions are recorded at their own sim time.
    // FaultOn/FaultOff are exempt — they are declarative window markers
    // emitted at arm time, stamped with (future) window times.
    net::SimTime last;
    for (const auto& e : tb.trace().events()) {
      if (e.kind == obs::TraceKind::FaultOn ||
          e.kind == obs::TraceKind::FaultOff) {
        continue;
      }
      if (e.at < last) {
        run.trace_monotone = false;
        break;
      }
      last = e.at;
    }
  }
  return run;
}

class ChaosInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosInvariants, HoldUnderRandomFaultSchedules) {
  const ChaosSpace space = world_space();
  const FaultSchedule schedule =
      random_schedule(space, stats::Rng{GetParam()});
  ASSERT_FALSE(schedule.empty());

  const ChaosRun serial = run_chaos(schedule, 1);
  const ChaosRun two = run_chaos(schedule, 2);
  const ChaosRun four = run_chaos(schedule, 4);

  // Byte-identity across shard counts, faults and all.
  EXPECT_EQ(serial.metrics_json, two.metrics_json);
  EXPECT_EQ(serial.metrics_json, four.metrics_json);
  EXPECT_FALSE(serial.trace_tsv.empty());
  EXPECT_EQ(serial.trace_tsv, two.trace_tsv);
  EXPECT_EQ(serial.trace_tsv, four.trace_tsv);

  // Bounded work: every VP query has an outcome (an answer slot or a
  // recorded timeout; never a hole).
  for (const auto& vp : serial.result.vps) {
    EXPECT_EQ(vp.sequence.size(), 4u) << "vp " << vp.probe_id;
  }
  const auto& m = serial.result.metrics;
  EXPECT_EQ(m.counter_value(obs::names::kCampaignQueriesSent),
            m.counter_value(obs::names::kCampaignQueriesAnswered) +
                m.counter_value(obs::names::kCampaignQueriesUnanswered));

  // No event-queue leaks at teardown; clean sim-time bookkeeping.
  EXPECT_EQ(serial.pending_after, 0u);
  EXPECT_EQ(two.pending_after, 0u);
  EXPECT_EQ(four.pending_after, 0u);
  EXPECT_TRUE(serial.trace_monotone);

  // The schedule was armed: every event shows up in the merged metrics.
  EXPECT_EQ(m.counter_value(obs::names::kFaultEventsArmed),
            schedule.size());
}

INSTANTIATE_TEST_SUITE_P(FixedSeeds, ChaosInvariants,
                         ::testing::ValuesIn(kSeeds));

TEST(ChaosInvariants, HoldWithArmedFlapSchedule) {
  // Dynamic-catchment acceptance: a campaign with an armed site_flap (and
  // a plain withdrawal on a second letter) stays byte-identical at shard
  // counts 1/2/4. The flap's convergence windows are jittered — the test
  // pins that the jitter derives from identity-keyed streams, not replica
  // state.
  Testbed scout{base_config()};
  auto& flapper = scout.roots().front();
  auto& victim = scout.roots().back();
  FaultSchedule schedule;
  schedule.add({FaultKind::SiteFlap,
                net::SimTime::origin() + net::Duration::minutes(2),
                net::SimTime::origin() + net::Duration::minutes(14),
                flapper.address().to_string(),
                flapper.sites().front().code, 800.0, -1.0, 60'000.0});
  schedule.add({FaultKind::SiteWithdraw,
                net::SimTime::origin() + net::Duration::minutes(4),
                net::SimTime::origin() + net::Duration::minutes(12),
                victim.name(), "*", 1500.0, -1.0});
  schedule.validate();

  const ChaosRun serial = run_chaos(schedule, 1);
  const ChaosRun two = run_chaos(schedule, 2);
  const ChaosRun four = run_chaos(schedule, 4);

  EXPECT_EQ(serial.metrics_json, two.metrics_json);
  EXPECT_EQ(serial.metrics_json, four.metrics_json);
  EXPECT_FALSE(serial.trace_tsv.empty());
  EXPECT_EQ(serial.trace_tsv, two.trace_tsv);
  EXPECT_EQ(serial.trace_tsv, four.trace_tsv);

  for (const auto& vp : serial.result.vps) {
    EXPECT_EQ(vp.sequence.size(), 4u) << "vp " << vp.probe_id;
  }
  const auto& m = serial.result.metrics;
  EXPECT_EQ(m.counter_value(obs::names::kCampaignQueriesSent),
            m.counter_value(obs::names::kCampaignQueriesAnswered) +
                m.counter_value(obs::names::kCampaignQueriesUnanswered));
  EXPECT_EQ(m.counter_value(obs::names::kFaultEventsArmed), 2u);
  EXPECT_EQ(serial.pending_after, 0u);
  EXPECT_EQ(four.pending_after, 0u);
  EXPECT_TRUE(serial.trace_monotone);
}

}  // namespace
}  // namespace recwild::fault
