#include "fault/schedule.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

namespace recwild::fault {
namespace {

FaultSchedule sample_schedule() {
  FaultSchedule s;
  s.add({FaultKind::LossBurst, net::SimTime::from_micros(1'000'000),
         net::SimTime::from_micros(5'000'000), "node-a", "node-b", 0.5,
         -1.0});
  s.add({FaultKind::ServerCrash, net::SimTime::from_micros(2'000'000),
         net::SimTime::from_micros(9'000'000), "a-root.FRA", "", 0.0, -1.0});
  s.add({FaultKind::ServerSlow, net::SimTime::from_micros(0),
         net::SimTime::from_micros(10'000'000), "*", "", 100.0, 900.0});
  s.add({FaultKind::Blackhole, net::SimTime::from_micros(3'000'000),
         net::SimTime::from_micros(4'000'000), "10.0.0.7", "", 0.0, -1.0});
  s.add({FaultKind::XferStarve, net::SimTime::from_micros(0),
         net::SimTime::from_micros(60'000'000), "10.0.0.9", "", 0.0, -1.0});
  s.add({FaultKind::SiteWithdraw, net::SimTime::from_micros(12'000'000),
         net::SimTime::from_micros(30'000'000), "10.0.0.3", "FRA", 800.0,
         -1.0});
  s.add({FaultKind::SiteFlap, net::SimTime::from_micros(40'000'000),
         net::SimTime::from_micros(100'000'000), "10.0.0.3", "SYD", 500.0,
         1500.0, 10'000.0});
  return s;
}

TEST(FaultKindNames, RoundTripEveryKind) {
  for (const FaultKind k :
       {FaultKind::LossBurst, FaultKind::LatencySpike, FaultKind::Blackhole,
        FaultKind::Partition, FaultKind::ServerCrash, FaultKind::ServerRefuse,
        FaultKind::ServerSlow, FaultKind::XferStarve,
        FaultKind::SiteWithdraw, FaultKind::SiteFlap}) {
    EXPECT_EQ(fault_kind_from_string(to_string(k)), k);
  }
  EXPECT_THROW(fault_kind_from_string("earthquake"), std::invalid_argument);
}

TEST(FaultEvent, ActiveIsHalfOpen) {
  FaultEvent e;
  e.start = net::SimTime::from_micros(100);
  e.end = net::SimTime::from_micros(200);
  EXPECT_FALSE(e.active(net::SimTime::from_micros(99)));
  EXPECT_TRUE(e.active(net::SimTime::from_micros(100)));
  EXPECT_TRUE(e.active(net::SimTime::from_micros(199)));
  EXPECT_FALSE(e.active(net::SimTime::from_micros(200)));
}

TEST(FaultEvent, FlatMagnitudeWithoutRamp) {
  FaultEvent e;
  e.start = net::SimTime::from_micros(0);
  e.end = net::SimTime::from_micros(1'000'000);
  e.magnitude = 0.4;
  EXPECT_DOUBLE_EQ(e.magnitude_at(net::SimTime::from_micros(0)), 0.4);
  EXPECT_DOUBLE_EQ(e.magnitude_at(net::SimTime::from_micros(999'999)), 0.4);
}

TEST(FaultEvent, LinearRampInterpolates) {
  FaultEvent e;
  e.start = net::SimTime::from_micros(0);
  e.end = net::SimTime::from_micros(1'000'000);
  e.magnitude = 100.0;
  e.magnitude_end = 300.0;
  EXPECT_DOUBLE_EQ(e.magnitude_at(net::SimTime::from_micros(0)), 100.0);
  EXPECT_DOUBLE_EQ(e.magnitude_at(net::SimTime::from_micros(500'000)), 200.0);
  EXPECT_NEAR(e.magnitude_at(net::SimTime::from_micros(1'000'000)), 300.0,
              1e-9);
}

TEST(FaultScheduleValidate, AcceptsSaneSchedule) {
  EXPECT_NO_THROW(sample_schedule().validate());
}

TEST(FaultScheduleValidate, RejectsEmptyWindow) {
  FaultSchedule s;
  s.add({FaultKind::ServerCrash, net::SimTime::from_micros(5),
         net::SimTime::from_micros(5), "x", "", 0.0, -1.0});
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(FaultScheduleValidate, RejectsLossOutOfRange) {
  FaultSchedule s;
  s.add({FaultKind::LossBurst, net::SimTime::from_micros(0),
         net::SimTime::from_micros(10), "a", "b", 1.5, -1.0});
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(FaultScheduleValidate, RejectsMissingTargets) {
  FaultSchedule no_a;
  no_a.add({FaultKind::ServerCrash, net::SimTime::from_micros(0),
            net::SimTime::from_micros(10), "", "", 0.0, -1.0});
  EXPECT_THROW(no_a.validate(), std::invalid_argument);

  FaultSchedule no_b;
  no_b.add({FaultKind::Partition, net::SimTime::from_micros(0),
            net::SimTime::from_micros(10), "a", "", 0.0, -1.0});
  EXPECT_THROW(no_b.validate(), std::invalid_argument);
}

TEST(FaultScheduleValidate, NamesTheOffendingEvent) {
  auto s = sample_schedule();
  s.add({FaultKind::LatencySpike, net::SimTime::from_micros(0),
         net::SimTime::from_micros(10), "a", "b", -3.0, -1.0});
  try {
    s.validate();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& ex) {
    EXPECT_NE(std::string(ex.what()).find("event 7"), std::string::npos)
        << ex.what();
  }
}

TEST(FaultScheduleValidate, RejectsSiteFaultWithoutSiteCode) {
  FaultSchedule s;
  s.add({FaultKind::SiteWithdraw, net::SimTime::from_micros(0),
         net::SimTime::from_micros(10'000'000), "10.0.0.3", "", 800.0, -1.0});
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(FaultScheduleValidate, RejectsZeroConvergenceDelay) {
  FaultSchedule s;
  s.add({FaultKind::SiteWithdraw, net::SimTime::from_micros(0),
         net::SimTime::from_micros(10'000'000), "10.0.0.3", "FRA", 0.0,
         -1.0});
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(FaultScheduleValidate, RejectsFlapWithoutPeriod) {
  FaultSchedule s;
  s.add({FaultKind::SiteFlap, net::SimTime::from_micros(0),
         net::SimTime::from_micros(10'000'000), "10.0.0.3", "FRA", 800.0,
         -1.0, 0.0});
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(FaultScheduleValidate, RejectsPeriodOnNonFlapKind) {
  FaultSchedule s;
  s.add({FaultKind::LossBurst, net::SimTime::from_micros(0),
         net::SimTime::from_micros(10'000'000), "a", "b", 0.5, -1.0,
         2'000.0});
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(FaultScheduleValidate, RejectsOverlappingSiteWindows) {
  // Two withdrawals of the same (service, site) with overlapping windows:
  // the announced/withdrawn state would be ambiguous.
  FaultSchedule s;
  s.add({FaultKind::SiteWithdraw, net::SimTime::from_micros(0),
         net::SimTime::from_micros(20'000'000), "10.0.0.3", "FRA", 800.0,
         -1.0});
  s.add({FaultKind::SiteFlap, net::SimTime::from_micros(10'000'000),
         net::SimTime::from_micros(40'000'000), "10.0.0.3", "FRA", 500.0,
         -1.0, 5'000.0});
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(FaultScheduleValidate, WildcardSiteOverlapsAnyCode) {
  FaultSchedule s;
  s.add({FaultKind::SiteWithdraw, net::SimTime::from_micros(0),
         net::SimTime::from_micros(20'000'000), "10.0.0.3", "*", 800.0,
         -1.0});
  s.add({FaultKind::SiteWithdraw, net::SimTime::from_micros(5'000'000),
         net::SimTime::from_micros(25'000'000), "10.0.0.3", "SYD", 800.0,
         -1.0});
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(FaultScheduleValidate, AcceptsDisjointSiteWindows) {
  // Same site, back-to-back windows ([0,20) then [20,40)): legal, the
  // windows are half-open.
  FaultSchedule s;
  s.add({FaultKind::SiteWithdraw, net::SimTime::from_micros(0),
         net::SimTime::from_micros(20'000'000), "10.0.0.3", "FRA", 800.0,
         -1.0});
  s.add({FaultKind::SiteWithdraw, net::SimTime::from_micros(20'000'000),
         net::SimTime::from_micros(40'000'000), "10.0.0.3", "FRA", 800.0,
         -1.0});
  // Different sites of the same service may overlap freely.
  s.add({FaultKind::SiteWithdraw, net::SimTime::from_micros(0),
         net::SimTime::from_micros(40'000'000), "10.0.0.3", "SYD", 800.0,
         -1.0});
  // Same site code on a DIFFERENT service is independent.
  s.add({FaultKind::SiteWithdraw, net::SimTime::from_micros(0),
         net::SimTime::from_micros(40'000'000), "10.0.0.4", "FRA", 800.0,
         -1.0});
  EXPECT_NO_THROW(s.validate());
}

TEST(FaultScheduleTsv, RoundTripsExactly) {
  const auto original = sample_schedule();
  std::ostringstream out;
  write_schedule(out, original);
  std::istringstream in{out.str()};
  const auto parsed = read_schedule(in);
  EXPECT_EQ(parsed, original);
}

TEST(FaultScheduleTsv, ReportsLineNumberOnBadInput) {
  std::istringstream in{"# comment\nloss_burst\t0\tnot-a-number\ta\tb\t0.5\t-1\n"};
  try {
    (void)read_schedule(in);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& ex) {
    EXPECT_NE(std::string(ex.what()).find("line 2"), std::string::npos)
        << ex.what();
  }
}

TEST(FaultScheduleTsv, RejectsWrongFieldCount) {
  std::istringstream in{"loss_burst\t0\t10\ta\tb\t0.5\n"};
  EXPECT_THROW((void)read_schedule(in), std::runtime_error);
}

TEST(FaultScheduleTsv, PeriodColumnOnlyOnFlaps) {
  // Non-flap events keep the historical 7-column shape; flaps append an
  // eighth column. Both parse back.
  std::ostringstream out;
  write_schedule(out, sample_schedule());
  std::istringstream lines{out.str()};
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto tabs =
        static_cast<std::size_t>(std::count(line.begin(), line.end(), '\t'));
    if (line.compare(0, 9, "site_flap") == 0) {
      EXPECT_EQ(tabs, 7u) << line;
    } else {
      EXPECT_EQ(tabs, 6u) << line;
    }
  }
}

TEST(FaultScheduleTsv, SevenFieldSiteWithdrawParses) {
  // A site_withdraw without the optional period column: period_ms is 0.
  std::istringstream in{
      "site_withdraw\t0\t10000000\t10.0.0.3\tFRA\t800\t-1\n"};
  const auto parsed = read_schedule(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.events()[0].kind, FaultKind::SiteWithdraw);
  EXPECT_EQ(parsed.events()[0].target_b, "FRA");
  EXPECT_DOUBLE_EQ(parsed.events()[0].period_ms, 0.0);
  EXPECT_NO_THROW(parsed.validate());
}

TEST(FaultScheduleTsv, EightFieldFlapParses) {
  std::istringstream in{
      "site_flap\t0\t60000000\t10.0.0.3\t*\t500\t-1\t10000\n"};
  const auto parsed = read_schedule(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.events()[0].kind, FaultKind::SiteFlap);
  EXPECT_DOUBLE_EQ(parsed.events()[0].period_ms, 10'000.0);
  EXPECT_NO_THROW(parsed.validate());
}

TEST(FaultScheduleTsv, RejectsNineFields) {
  std::istringstream in{
      "site_flap\t0\t60000000\t10.0.0.3\t*\t500\t-1\t10000\textra\n"};
  EXPECT_THROW((void)read_schedule(in), std::runtime_error);
}

TEST(FaultScheduleJson, RoundTripsExactly) {
  const auto original = sample_schedule();
  std::ostringstream out;
  write_schedule_json(out, original);
  std::istringstream in{out.str()};
  const auto parsed = read_schedule_json(in);
  EXPECT_EQ(parsed, original);
}

TEST(FaultScheduleJson, EmptyScheduleRoundTrips) {
  std::ostringstream out;
  write_schedule_json(out, FaultSchedule{});
  std::istringstream in{out.str()};
  EXPECT_TRUE(read_schedule_json(in).empty());
}

TEST(FaultScheduleJson, RejectsMalformedInput) {
  std::istringstream truncated{"[{\"kind\": \"loss_burst\""};
  EXPECT_THROW((void)read_schedule_json(truncated), std::runtime_error);
  std::istringstream junk_key{"[{\"kindly\": \"loss_burst\"}]"};
  EXPECT_THROW((void)read_schedule_json(junk_key), std::runtime_error);
}

TEST(FaultScheduleJson, DeterministicBytes) {
  std::ostringstream a;
  std::ostringstream b;
  write_schedule_json(a, sample_schedule());
  write_schedule_json(b, sample_schedule());
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace recwild::fault
