#include "fault/schedule.hpp"

#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

namespace recwild::fault {
namespace {

FaultSchedule sample_schedule() {
  FaultSchedule s;
  s.add({FaultKind::LossBurst, net::SimTime::from_micros(1'000'000),
         net::SimTime::from_micros(5'000'000), "node-a", "node-b", 0.5,
         -1.0});
  s.add({FaultKind::ServerCrash, net::SimTime::from_micros(2'000'000),
         net::SimTime::from_micros(9'000'000), "a-root.FRA", "", 0.0, -1.0});
  s.add({FaultKind::ServerSlow, net::SimTime::from_micros(0),
         net::SimTime::from_micros(10'000'000), "*", "", 100.0, 900.0});
  s.add({FaultKind::Blackhole, net::SimTime::from_micros(3'000'000),
         net::SimTime::from_micros(4'000'000), "10.0.0.7", "", 0.0, -1.0});
  s.add({FaultKind::XferStarve, net::SimTime::from_micros(0),
         net::SimTime::from_micros(60'000'000), "10.0.0.9", "", 0.0, -1.0});
  return s;
}

TEST(FaultKindNames, RoundTripEveryKind) {
  for (const FaultKind k :
       {FaultKind::LossBurst, FaultKind::LatencySpike, FaultKind::Blackhole,
        FaultKind::Partition, FaultKind::ServerCrash, FaultKind::ServerRefuse,
        FaultKind::ServerSlow, FaultKind::XferStarve}) {
    EXPECT_EQ(fault_kind_from_string(to_string(k)), k);
  }
  EXPECT_THROW(fault_kind_from_string("earthquake"), std::invalid_argument);
}

TEST(FaultEvent, ActiveIsHalfOpen) {
  FaultEvent e;
  e.start = net::SimTime::from_micros(100);
  e.end = net::SimTime::from_micros(200);
  EXPECT_FALSE(e.active(net::SimTime::from_micros(99)));
  EXPECT_TRUE(e.active(net::SimTime::from_micros(100)));
  EXPECT_TRUE(e.active(net::SimTime::from_micros(199)));
  EXPECT_FALSE(e.active(net::SimTime::from_micros(200)));
}

TEST(FaultEvent, FlatMagnitudeWithoutRamp) {
  FaultEvent e;
  e.start = net::SimTime::from_micros(0);
  e.end = net::SimTime::from_micros(1'000'000);
  e.magnitude = 0.4;
  EXPECT_DOUBLE_EQ(e.magnitude_at(net::SimTime::from_micros(0)), 0.4);
  EXPECT_DOUBLE_EQ(e.magnitude_at(net::SimTime::from_micros(999'999)), 0.4);
}

TEST(FaultEvent, LinearRampInterpolates) {
  FaultEvent e;
  e.start = net::SimTime::from_micros(0);
  e.end = net::SimTime::from_micros(1'000'000);
  e.magnitude = 100.0;
  e.magnitude_end = 300.0;
  EXPECT_DOUBLE_EQ(e.magnitude_at(net::SimTime::from_micros(0)), 100.0);
  EXPECT_DOUBLE_EQ(e.magnitude_at(net::SimTime::from_micros(500'000)), 200.0);
  EXPECT_NEAR(e.magnitude_at(net::SimTime::from_micros(1'000'000)), 300.0,
              1e-9);
}

TEST(FaultScheduleValidate, AcceptsSaneSchedule) {
  EXPECT_NO_THROW(sample_schedule().validate());
}

TEST(FaultScheduleValidate, RejectsEmptyWindow) {
  FaultSchedule s;
  s.add({FaultKind::ServerCrash, net::SimTime::from_micros(5),
         net::SimTime::from_micros(5), "x", "", 0.0, -1.0});
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(FaultScheduleValidate, RejectsLossOutOfRange) {
  FaultSchedule s;
  s.add({FaultKind::LossBurst, net::SimTime::from_micros(0),
         net::SimTime::from_micros(10), "a", "b", 1.5, -1.0});
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(FaultScheduleValidate, RejectsMissingTargets) {
  FaultSchedule no_a;
  no_a.add({FaultKind::ServerCrash, net::SimTime::from_micros(0),
            net::SimTime::from_micros(10), "", "", 0.0, -1.0});
  EXPECT_THROW(no_a.validate(), std::invalid_argument);

  FaultSchedule no_b;
  no_b.add({FaultKind::Partition, net::SimTime::from_micros(0),
            net::SimTime::from_micros(10), "a", "", 0.0, -1.0});
  EXPECT_THROW(no_b.validate(), std::invalid_argument);
}

TEST(FaultScheduleValidate, NamesTheOffendingEvent) {
  auto s = sample_schedule();
  s.add({FaultKind::LatencySpike, net::SimTime::from_micros(0),
         net::SimTime::from_micros(10), "a", "b", -3.0, -1.0});
  try {
    s.validate();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& ex) {
    EXPECT_NE(std::string(ex.what()).find("event 5"), std::string::npos)
        << ex.what();
  }
}

TEST(FaultScheduleTsv, RoundTripsExactly) {
  const auto original = sample_schedule();
  std::ostringstream out;
  write_schedule(out, original);
  std::istringstream in{out.str()};
  const auto parsed = read_schedule(in);
  EXPECT_EQ(parsed, original);
}

TEST(FaultScheduleTsv, ReportsLineNumberOnBadInput) {
  std::istringstream in{"# comment\nloss_burst\t0\tnot-a-number\ta\tb\t0.5\t-1\n"};
  try {
    (void)read_schedule(in);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& ex) {
    EXPECT_NE(std::string(ex.what()).find("line 2"), std::string::npos)
        << ex.what();
  }
}

TEST(FaultScheduleTsv, RejectsWrongFieldCount) {
  std::istringstream in{"loss_burst\t0\t10\ta\tb\t0.5\n"};
  EXPECT_THROW((void)read_schedule(in), std::runtime_error);
}

TEST(FaultScheduleJson, RoundTripsExactly) {
  const auto original = sample_schedule();
  std::ostringstream out;
  write_schedule_json(out, original);
  std::istringstream in{out.str()};
  const auto parsed = read_schedule_json(in);
  EXPECT_EQ(parsed, original);
}

TEST(FaultScheduleJson, EmptyScheduleRoundTrips) {
  std::ostringstream out;
  write_schedule_json(out, FaultSchedule{});
  std::istringstream in{out.str()};
  EXPECT_TRUE(read_schedule_json(in).empty());
}

TEST(FaultScheduleJson, RejectsMalformedInput) {
  std::istringstream truncated{"[{\"kind\": \"loss_burst\""};
  EXPECT_THROW((void)read_schedule_json(truncated), std::runtime_error);
  std::istringstream junk_key{"[{\"kindly\": \"loss_burst\"}]"};
  EXPECT_THROW((void)read_schedule_json(junk_key), std::runtime_error);
}

TEST(FaultScheduleJson, DeterministicBytes) {
  std::ostringstream a;
  std::ostringstream b;
  write_schedule_json(a, sample_schedule());
  write_schedule_json(b, sample_schedule());
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace recwild::fault
