// Transport equivalence: the kernel-socket server and the simulated
// server answer with IDENTICAL bytes, because both are thin transports
// over the same authns::Responder. A live authnsd-style netio::Server is
// started on a loopback ephemeral port and driven through netio::exchange
// (the tdig client path); a simulated AuthServer with the same
// configuration receives the same query wire; the raw reply bytes must
// match for every case — answer, referral, truncation, NOTIFY, CHAOS
// identity, FORMERR, and the TCP path.
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "authns/responder.hpp"
#include "authns/server.hpp"
#include "dnscore/codec.hpp"
#include "netio/client.hpp"
#include "netio/server.hpp"

namespace recwild::netio {
namespace {

constexpr const char* kIdentity = "eq-test";

constexpr const char* kZoneText = R"(
$TTL 3600
@    IN SOA ns1 hostmaster 1 14400 3600 1209600 300
@    IN NS  ns1
ns1  IN A   192.0.2.1
www  IN A   192.0.2.10
www  IN A   192.0.2.11
big  IN TXT "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
big  IN TXT "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"
big  IN TXT "cccccccccccccccccccccccccccccccccccccccccccccccccccccccccccc"
big  IN TXT "dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd"
big  IN TXT "eeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeee"
big  IN TXT "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"
big  IN TXT "gggggggggggggggggggggggggggggggggggggggggggggggggggggggggggg"
big  IN TXT "hhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhh"
child     IN NS ns1.child
ns1.child IN A  192.0.2.53
)";

authns::Zone make_zone() {
  return authns::Zone::from_text(dns::Name::parse("eq.test"), kZoneText);
}

/// The simulated transport: one AuthServer, one capturing client.
struct SimWorld {
  net::Simulation sim{99};
  net::LatencyParams params{};
  net::Network netw;
  net::NodeId server_node;
  net::NodeId client_node;
  net::Endpoint server_ep;
  net::Endpoint client_ep;
  std::unique_ptr<authns::AuthServer> server;
  std::vector<std::vector<std::uint8_t>> replies;

  SimWorld() : netw{(params.loss_rate = 0.0, sim), params} {
    server_node = netw.add_node("auth", net::find_location("FRA")->point);
    client_node = netw.add_node("client", net::find_location("AMS")->point);
    server_ep = net::Endpoint{netw.allocate_address(), net::kDnsPort};
    client_ep = net::Endpoint{netw.allocate_address(), 5555};
    authns::AuthServerConfig cfg;
    cfg.identity = kIdentity;
    server = std::make_unique<authns::AuthServer>(netw, server_node,
                                                  server_ep, cfg);
    server->add_zone(make_zone());
    server->start();
    netw.listen(client_node, client_ep,
                [this](const net::Datagram& d, net::NodeId) {
                  replies.emplace_back(d.payload.data(),
                                       d.payload.data() + d.payload.size());
                });
  }

  /// Sends raw bytes and returns the raw reply (empty when unanswered).
  std::vector<std::uint8_t> ask(std::span<const std::uint8_t> wire,
                                bool via_stream = false) {
    replies.clear();
    std::vector<std::uint8_t> copy{wire.begin(), wire.end()};
    if (via_stream) {
      netw.send_stream(client_node, client_ep, server_ep,
                       net::WireBuffer{std::move(copy)});
    } else {
      netw.send(client_node, client_ep, server_ep,
                net::WireBuffer{std::move(copy)});
    }
    sim.run();
    return replies.empty() ? std::vector<std::uint8_t>{} : replies.front();
  }
};

/// The kernel transport: a live netio::Server on an ephemeral port.
struct LiveWorld {
  authns::Responder responder;
  Server server;

  LiveWorld()
      : responder{[] {
          authns::ResponderConfig cfg;
          cfg.identity = kIdentity;
          return cfg;
        }()},
        server{responder, [] {
                 ServerConfig cfg;
                 cfg.port = 0;  // ephemeral
                 cfg.workers = 2;
                 return cfg;
               }()} {
    responder.add_zone(make_zone());
    server.start();
  }

  std::vector<std::uint8_t> ask(std::span<const std::uint8_t> wire,
                                bool tcp = false) {
    ExchangeOptions opts;
    opts.tcp = tcp;
    const auto result = exchange("127.0.0.1", server.port(), wire, opts);
    return result ? result->wire : std::vector<std::uint8_t>{};
  }
};

struct TransportEquivalence : ::testing::Test {
  SimWorld sim;
  LiveWorld live;

  void expect_equal(const dns::Message& query, bool stream = false) {
    const auto wire = dns::encode_message(query);
    const std::vector<std::uint8_t> qbytes{wire.data(),
                                           wire.data() + wire.size()};
    const auto sim_reply = sim.ask(qbytes, stream);
    const auto live_reply = live.ask(qbytes, stream);
    ASSERT_FALSE(sim_reply.empty());
    EXPECT_EQ(sim_reply, live_reply)
        << "simulated and live replies diverge for:\n"
        << query.to_string();
  }
};

TEST_F(TransportEquivalence, OrdinaryAnswer) {
  dns::Message q = dns::Message::make_query(
      0x4242, dns::Name::parse("www.eq.test"), dns::RRType::A);
  q.edns = dns::EdnsInfo{};
  expect_equal(q);
}

TEST_F(TransportEquivalence, Referral) {
  expect_equal(dns::Message::make_query(
      0x1111, dns::Name::parse("foo.child.eq.test"), dns::RRType::A));
}

TEST_F(TransportEquivalence, TruncatedAnswer) {
  // ~700 bytes of TXT against the 512-byte plain-UDP limit: both
  // transports must truncate identically.
  expect_equal(dns::Message::make_query(
      0x2222, dns::Name::parse("big.eq.test"), dns::RRType::TXT));
}

TEST_F(TransportEquivalence, TcpCarriesTheFullAnswer) {
  // Same oversized answer over the stream transport: no truncation,
  // identical full bytes on both sides.
  expect_equal(dns::Message::make_query(0x3333,
                                        dns::Name::parse("big.eq.test"),
                                        dns::RRType::TXT),
               /*stream=*/true);
}

TEST_F(TransportEquivalence, Notify) {
  dns::Message notify;
  notify.header.id = 0x5555;
  notify.header.opcode = dns::Opcode::Notify;
  notify.header.aa = true;
  notify.questions.push_back(dns::Question{dns::Name::parse("eq.test"),
                                           dns::RRType::SOA,
                                           dns::RRClass::IN});
  expect_equal(notify);
}

TEST_F(TransportEquivalence, ChaosIdentity) {
  dns::Message q = dns::Message::make_query(
      0x6666, dns::Name::parse("id.server"), dns::RRType::TXT);
  q.questions[0].qclass = dns::RRClass::CH;
  expect_equal(q);
}

TEST_F(TransportEquivalence, FormErrForGarbage) {
  // Raw bytes, not a Message: full header + an overrunning label.
  const std::vector<std::uint8_t> garbage{0xab, 0xcd, 0x00, 0x00, 0x00,
                                          0x01, 0x00, 0x00, 0x00, 0x00,
                                          0x00, 0x00, 0x3f, 0x41};
  const auto sim_reply = sim.ask(garbage);
  const auto live_reply = live.ask(garbage);
  ASSERT_FALSE(sim_reply.empty());
  EXPECT_EQ(sim_reply, live_reply);
  const dns::Message decoded = dns::decode_message(sim_reply);
  EXPECT_EQ(decoded.header.rcode, dns::Rcode::FormErr);
  EXPECT_EQ(decoded.header.id, 0xabcd);
}

TEST_F(TransportEquivalence, UdpAndTcpAgreeWhenNothingTruncates) {
  const auto wire = dns::encode_message(dns::Message::make_query(
      0x7777, dns::Name::parse("www.eq.test"), dns::RRType::A));
  const std::vector<std::uint8_t> qbytes{wire.data(),
                                         wire.data() + wire.size()};
  const auto udp = live.ask(qbytes, /*tcp=*/false);
  const auto tcp = live.ask(qbytes, /*tcp=*/true);
  EXPECT_EQ(udp, tcp);
}

TEST_F(TransportEquivalence, LiveStatsCount) {
  const auto wire = dns::encode_message(dns::Message::make_query(
      0x8888, dns::Name::parse("www.eq.test"), dns::RRType::A));
  const std::vector<std::uint8_t> qbytes{wire.data(),
                                         wire.data() + wire.size()};
  (void)live.ask(qbytes, false);
  (void)live.ask(qbytes, true);
  const ServerStats s = live.server.stats();
  EXPECT_EQ(s.udp_datagrams, 1u);
  EXPECT_EQ(s.tcp_connections, 1u);
  EXPECT_EQ(s.tcp_messages, 1u);
  EXPECT_EQ(s.responses, 2u);
  EXPECT_EQ(s.dropped, 0u);
}

}  // namespace
}  // namespace recwild::netio
