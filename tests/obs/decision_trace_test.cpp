// DecisionTrace: the enabled gate, the tab-separated round-trip (including
// the malformed-line contract shared with authns::read_trace), canonical
// ordering and the shard-merge append path.
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "obs/decision_trace.hpp"

namespace recwild::obs {
namespace {

net::SimTime at_us(std::int64_t us) { return net::SimTime::from_micros(us); }

TraceEvent event(std::int64_t us, TraceKind kind, std::string actor,
                 std::string subject, std::string detail, double value) {
  return TraceEvent{at_us(us), kind, std::move(actor), std::move(subject),
                    std::move(detail), value};
}

TEST(DecisionTrace, DisabledByDefaultAndRecordsNothing) {
  DecisionTrace t;
  EXPECT_FALSE(t.enabled());
  t.record(event(1, TraceKind::CacheHit, "r1", "a.nl", "A", 0.0));
  EXPECT_EQ(t.size(), 0u);
  t.set_enabled(true);
  t.record(event(1, TraceKind::CacheHit, "r1", "a.nl", "A", 0.0));
  EXPECT_EQ(t.size(), 1u);
}

TEST(DecisionTrace, KindNamesRoundTrip) {
  for (const auto kind :
       {TraceKind::SelectServer, TraceKind::PrimeServer, TraceKind::StickyLatch,
        TraceKind::CacheHit, TraceKind::CacheMiss, TraceKind::NegCacheHit,
        TraceKind::UpstreamTimeout, TraceKind::Failover, TraceKind::TcpFallback,
        TraceKind::PacketDrop, TraceKind::AuthQuery, TraceKind::Servfail,
        TraceKind::Progress}) {
    EXPECT_EQ(trace_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(trace_kind_from_string("no_such_kind"), std::runtime_error);
}

TEST(DecisionTrace, WriteReadRoundTrip) {
  const std::vector<TraceEvent> events{
      event(913502, TraceKind::SelectServer, "isp-recursive-as9", "10.0.0.12",
            ".", 1.756),
      event(913502, TraceKind::PrimeServer, "isp-recursive-as9", "10.0.0.1",
            ".", 28.2324),
      event(1000000, TraceKind::Progress, "campaign", "probe7", "done", 5.0),
  };
  std::ostringstream out;
  write_trace(out, events);
  std::istringstream in{out.str()};
  const auto parsed = read_trace(in);
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed[i].at, events[i].at) << i;
    EXPECT_EQ(parsed[i].kind, events[i].kind) << i;
    EXPECT_EQ(parsed[i].actor, events[i].actor) << i;
    EXPECT_EQ(parsed[i].subject, events[i].subject) << i;
    EXPECT_EQ(parsed[i].detail, events[i].detail) << i;
    EXPECT_DOUBLE_EQ(parsed[i].value, events[i].value) << i;
  }
}

TEST(DecisionTrace, ReadSkipsCommentsAndBlankLines) {
  std::istringstream in{
      "# t_us\tkind\tactor\tsubject\tdetail\tvalue\n"
      "\n"
      "# another comment\n"
      "5\tcache_hit\tr1\ta.nl\tA\t0\n"};
  const auto events = read_trace(in);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TraceKind::CacheHit);
}

TEST(DecisionTrace, MalformedLinesNameTheLineNumber) {
  const auto expect_error = [](const std::string& text,
                               const std::string& needle) {
    std::istringstream in{text};
    try {
      read_trace(in);
      FAIL() << "expected std::runtime_error for: " << text;
    } catch (const std::runtime_error& err) {
      EXPECT_NE(std::string{err.what()}.find(needle), std::string::npos)
          << err.what();
    }
  };
  // Too few fields (line 2, after the header).
  expect_error("# header\n5\tcache_hit\tr1\ta.nl\t0\n",
               "decision trace line 2: expected 6 tab-separated fields");
  // Too many fields.
  expect_error("5\tcache_hit\tr1\ta.nl\tA\t0\textra\n",
               "decision trace line 1: expected 6 tab-separated fields");
  // Bad timestamp.
  expect_error("soon\tcache_hit\tr1\ta.nl\tA\t0\n",
               "decision trace line 1: bad timestamp 'soon'");
  // Unknown kind.
  expect_error("5\tguessing\tr1\ta.nl\tA\t0\n",
               "decision trace line 1: unknown trace kind 'guessing'");
  // Bad value.
  expect_error("5\tcache_hit\tr1\ta.nl\tA\tmany\n",
               "decision trace line 1: bad value 'many'");
}

TEST(DecisionTrace, CanonicalSortsByFullTupleSoMergesExportIdentically) {
  // The same event multiset recorded in two different orders (as a serial
  // run vs a shard merge would) must serialise to identical bytes.
  const auto a = event(5, TraceKind::CacheHit, "r1", "a.nl", "A", 0.0);
  const auto b = event(5, TraceKind::CacheHit, "r2", "a.nl", "A", 0.0);
  const auto c = event(3, TraceKind::CacheMiss, "r1", "b.nl", "A", 0.0);

  DecisionTrace serial;
  serial.set_enabled(true);
  for (const auto& e : {c, a, b}) serial.record(e);

  DecisionTrace main;
  main.set_enabled(true);
  main.record(b);
  DecisionTrace replica;
  replica.set_enabled(true);
  replica.record(a);
  replica.record(c);
  main.append(replica);

  std::ostringstream serial_out;
  std::ostringstream merged_out;
  write_trace(serial_out, serial.canonical());
  write_trace(merged_out, main.canonical());
  EXPECT_EQ(serial_out.str(), merged_out.str());
  // And the order is genuinely time-major.
  const auto sorted = serial.canonical();
  EXPECT_EQ(sorted.front().at, at_us(3));
}

TEST(DecisionTrace, JsonExportIsDeterministic) {
  const std::vector<TraceEvent> events{
      event(1, TraceKind::PacketDrop, "node-a", "node-b", "loss_model", 0.0),
      event(2, TraceKind::UpstreamTimeout, "r1", "10.0.0.3", "a.nl", 750.0),
  };
  std::ostringstream one;
  std::ostringstream two;
  write_trace_json(one, events);
  write_trace_json(two, events);
  EXPECT_EQ(one.str(), two.str());
  EXPECT_NE(one.str().find("\"kind\": \"packet_drop\""), std::string::npos);
  EXPECT_NE(one.str().find("\"at_us\": 2"), std::string::npos);
}

TEST(DecisionTrace, ClearDropsEventsButKeepsEnabledFlag) {
  DecisionTrace t;
  t.set_enabled(true);
  t.record(event(1, TraceKind::Servfail, "r1", "a.nl", "A", 0.0));
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.enabled());
}

}  // namespace
}  // namespace recwild::obs
