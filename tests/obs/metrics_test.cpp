// MetricRegistry: handle semantics, snapshots, deltas, the shard-merge
// fold, and the determinism of the JSON export.
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace recwild::obs {
namespace {

net::SimTime at_ms(std::int64_t ms) {
  return net::SimTime::from_micros(ms * 1000);
}

TEST(Metrics, CounterAccumulatesAndStampsLastChange) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add(3, at_ms(10));
  c.add(2, at_ms(5));  // out-of-order stamp must not move time backwards
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(c.last_change(), at_ms(10));
}

TEST(Metrics, GaugeMaxOfKeepsHighWater) {
  Gauge g;
  g.max_of(4.0, at_ms(1));
  g.max_of(9.0, at_ms(2));
  g.max_of(7.0, at_ms(3));
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
  EXPECT_EQ(g.last_change(), at_ms(2));
}

TEST(Metrics, HistogramClampsOutOfRangeIntoEdgeBins) {
  Histogram h{0.0, 100.0, 10};
  h.observe(-5.0, at_ms(1));   // below lo -> first bin
  h.observe(55.0, at_ms(2));   // bin 5
  h.observe(250.0, at_ms(3));  // above hi -> last bin
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.last_sample(), at_ms(3));
}

TEST(Metrics, HistogramRejectsDegenerateLayouts) {
  EXPECT_THROW((Histogram{0.0, 10.0, 0}), std::runtime_error);
  EXPECT_THROW((Histogram{10.0, 10.0, 4}), std::runtime_error);
}

TEST(Metrics, RegistryHandlesAreStable) {
  MetricRegistry reg;
  Counter* a = &reg.counter("test.a");
  // Registering many more metrics must not invalidate the handle.
  for (int i = 0; i < 100; ++i) {
    reg.counter("test.filler" + std::to_string(i));
  }
  EXPECT_EQ(a, &reg.counter("test.a"));
  a->add(1, at_ms(1));
  EXPECT_EQ(reg.counter("test.a").value(), 1u);
}

TEST(Metrics, RegistryRejectsHistogramLayoutMismatch) {
  MetricRegistry reg;
  reg.histogram("test.h", 0.0, 10.0, 5);
  EXPECT_THROW(reg.histogram("test.h", 0.0, 20.0, 5), std::runtime_error);
  EXPECT_THROW(reg.histogram("test.h", 0.0, 10.0, 6), std::runtime_error);
  EXPECT_NO_THROW(reg.histogram("test.h", 0.0, 10.0, 5));
}

TEST(Metrics, SnapshotSortsByName) {
  MetricRegistry reg;
  reg.counter("test.z").add(1, at_ms(1));
  reg.counter("test.a").add(2, at_ms(2));
  reg.counter("test.m").add(3, at_ms(3));
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "test.a");
  EXPECT_EQ(snap.counters[1].name, "test.m");
  EXPECT_EQ(snap.counters[2].name, "test.z");
  EXPECT_EQ(snap.counter_value("test.m"), 3u);
  EXPECT_EQ(snap.counter_value("test.absent"), 0u);
}

TEST(Metrics, DeltaSinceSubtractsCountsAndKeepsTimestamps) {
  MetricRegistry reg;
  reg.counter("test.c").add(5, at_ms(1));
  auto& h = reg.histogram("test.h", 0.0, 10.0, 2);
  h.observe(1.0, at_ms(1));
  const auto baseline = reg.snapshot();

  reg.counter("test.c").add(7, at_ms(9));
  h.observe(8.0, at_ms(9));
  const auto delta = reg.snapshot().delta_since(baseline);

  EXPECT_EQ(delta.counter_value("test.c"), 7u);
  EXPECT_EQ(delta.find_counter("test.c")->last_change_us, 9000);
  ASSERT_EQ(delta.histograms.size(), 1u);
  EXPECT_EQ(delta.histograms[0].total, 1u);
  EXPECT_EQ(delta.histograms[0].counts[0], 0u);
  EXPECT_EQ(delta.histograms[0].counts[1], 1u);
}

TEST(Metrics, MergeSumAddsCountsAndMaxesTimestampsButSkipsGauges) {
  // "Serial" world: all traffic on one registry.
  MetricRegistry serial;
  serial.counter("test.c").add(4, at_ms(20));
  serial.counter("test.c").add(6, at_ms(35));
  serial.histogram("test.h", 0.0, 10.0, 2).observe(1.0, at_ms(20));
  serial.histogram("test.h", 0.0, 10.0, 2).observe(9.0, at_ms(35));
  serial.gauge("test.peak").max_of(12.0, at_ms(20));

  // "Sharded": the same traffic split over a main and a replica registry.
  MetricRegistry main;
  main.counter("test.c").add(4, at_ms(20));
  main.histogram("test.h", 0.0, 10.0, 2).observe(1.0, at_ms(20));
  main.gauge("test.peak").max_of(12.0, at_ms(20));
  MetricRegistry replica;
  replica.counter("test.c").add(6, at_ms(35));
  replica.histogram("test.h", 0.0, 10.0, 2).observe(9.0, at_ms(35));
  replica.gauge("test.peak").max_of(99.0, at_ms(35));  // replica-local level
  main.merge_sum(replica.snapshot());

  EXPECT_EQ(main.snapshot().to_json(SnapshotStyle::MergeSafe),
            serial.snapshot().to_json(SnapshotStyle::MergeSafe));
  // The gauge stayed the main world's own value.
  EXPECT_DOUBLE_EQ(main.gauge("test.peak").value(), 12.0);
}

TEST(Metrics, MergeSumCreatesMetricsAbsentInTheTarget) {
  MetricRegistry main;
  MetricRegistry replica;
  replica.counter("test.only_replica").add(3, at_ms(1));
  replica.histogram("test.h", 0.0, 1.0, 1).observe(0.5, at_ms(1));
  main.merge_sum(replica.snapshot());
  EXPECT_EQ(main.counter("test.only_replica").value(), 3u);
  EXPECT_EQ(main.histogram("test.h", 0.0, 1.0, 1).total(), 1u);
}

TEST(Metrics, JsonIsDeterministicAndStyleAware) {
  MetricRegistry reg;
  reg.counter("test.c").add(2, at_ms(3));
  reg.gauge("test.g").set(1.5, at_ms(4));
  reg.histogram("test.h", 0.0, 10.0, 2).observe(3.0, at_ms(5));

  const std::string full = reg.snapshot().to_json(SnapshotStyle::Full);
  const std::string safe = reg.snapshot().to_json(SnapshotStyle::MergeSafe);
  EXPECT_EQ(full, reg.snapshot().to_json(SnapshotStyle::Full));  // stable
  EXPECT_NE(full.find("\"test.g\""), std::string::npos);
  EXPECT_EQ(safe.find("\"test.g\""), std::string::npos);  // no gauges
  EXPECT_NE(safe.find("\"test.c\""), std::string::npos);
  EXPECT_NE(safe.find("\"test.h\""), std::string::npos);
  EXPECT_NE(full.find("\"last_change_us\": 3000"), std::string::npos);
}

TEST(Metrics, NamesHeaderConstantsAreWellFormed) {
  // Spot-check the canonical-name convention: dotted, lower-case.
  for (const auto name :
       {names::kSimEventsScheduled, names::kResolverUpstreamRttMs,
        names::kCampaignQueriesSent, names::kProductionLookups}) {
    EXPECT_NE(name.find('.'), std::string_view::npos) << name;
    for (const char ch : name) {
      EXPECT_TRUE((ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') ||
                  ch == '.' || ch == '_')
          << name;
    }
  }
}

}  // namespace
}  // namespace recwild::obs
