// Failure hardening (the robustness satellites): the timeout funnel's hard
// ceiling, jitterless exponential backoff, the InfraCache hold-down state
// machine with probe-query recovery, and the bounded-work deadline.
#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "obs/names.hpp"
#include "resolver/infra_cache.hpp"
#include "resolver/resolver.hpp"

namespace recwild::resolver {
namespace {

net::SimTime at_s(double s) {
  return net::SimTime::origin() + net::Duration::seconds(s);
}

// --- InfraCache hold-down state machine ------------------------------------

struct HolddownFixture {
  InfraCacheConfig cfg;
  obs::MetricRegistry registry;
  InfraCache cache;
  net::IpAddress server{net::IpAddress::from_octets(10, 0, 0, 9)};

  HolddownFixture() : cache{make_cfg()} { cache.attach_metrics(registry); }

  static InfraCacheConfig make_cfg() {
    InfraCacheConfig c;
    c.backoff_threshold = 3;
    c.backoff_duration = net::Duration::seconds(60);
    c.holddown_threshold = 2;
    c.holddown_duration = net::Duration::seconds(300);
    c.holddown_probe_interval = net::Duration::seconds(30);
    return c;
  }

  void timeouts(int n, net::SimTime at) {
    for (int i = 0; i < n; ++i) cache.report_timeout(server, at);
  }
};

TEST(InfraCacheHolddown, RepeatedProbationsEscalateToHolddown) {
  HolddownFixture f;
  // One probation (3 timeouts) is not enough...
  f.timeouts(3, at_s(1));
  const ServerStats* st = f.cache.get(f.server, at_s(1));
  ASSERT_NE(st, nullptr);
  EXPECT_TRUE(st->in_backoff(at_s(1)));
  EXPECT_FALSE(st->in_holddown(at_s(1)));
  // ...two probations in a row are.
  f.timeouts(3, at_s(2));
  st = f.cache.get(f.server, at_s(2));
  ASSERT_NE(st, nullptr);
  EXPECT_TRUE(st->in_holddown(at_s(2)));
  EXPECT_EQ(
      f.registry.snapshot().counter_value(obs::names::kResolverHolddownEntered), 1u);
  // Held down for the configured duration; not forever.
  EXPECT_TRUE(st->in_holddown(at_s(2 + 299)));
  EXPECT_FALSE(st->in_holddown(at_s(2 + 301)));
}

TEST(InfraCacheHolddown, ProbeCadenceIsRateLimited) {
  HolddownFixture f;
  f.timeouts(6, at_s(0));
  const ServerStats* st = f.cache.get(f.server, at_s(0));
  ASSERT_NE(st, nullptr);
  ASSERT_TRUE(st->in_holddown(at_s(0)));
  // No probe before the interval elapses; due after it.
  EXPECT_FALSE(st->probe_due(at_s(10)));
  EXPECT_TRUE(st->probe_due(at_s(31)));
  // Routing a probe pushes the next one out by a full interval.
  f.cache.note_probe(f.server, at_s(31));
  st = f.cache.get(f.server, at_s(31));
  EXPECT_FALSE(st->probe_due(at_s(40)));
  EXPECT_TRUE(st->probe_due(at_s(62)));
  EXPECT_EQ(
      f.registry.snapshot().counter_value(obs::names::kResolverHolddownProbes), 1u);
}

TEST(InfraCacheHolddown, FailedProbesRefreshTheHolddown) {
  HolddownFixture f;
  f.timeouts(6, at_s(0));
  // A timeout near the end of the window pushes holddown_until out again
  // (every further multiple-of-threshold failure keeps the streak going).
  f.timeouts(3, at_s(290));
  const ServerStats* st = f.cache.get(f.server, at_s(290));
  ASSERT_NE(st, nullptr);
  EXPECT_TRUE(st->in_holddown(at_s(400)));
  // Still only ONE holddown entry counted: refresh, not re-entry.
  EXPECT_EQ(
      f.registry.snapshot().counter_value(obs::names::kResolverHolddownEntered), 1u);
}

TEST(InfraCacheHolddown, SuccessfulAnswerRecoversImmediately) {
  HolddownFixture f;
  f.timeouts(6, at_s(0));
  ASSERT_TRUE(f.cache.get(f.server, at_s(5))->in_holddown(at_s(5)));
  // A probe answer clears hold-down, probation and the streak at once.
  f.cache.report_rtt(f.server, net::Duration::millis(30), at_s(40));
  const ServerStats* st = f.cache.get(f.server, at_s(40));
  ASSERT_NE(st, nullptr);
  EXPECT_FALSE(st->in_holddown(at_s(40)));
  EXPECT_FALSE(st->in_backoff(at_s(40)));
  EXPECT_EQ(st->consecutive_timeouts, 0);
  EXPECT_EQ(st->probation_streak, 0);
  EXPECT_EQ(
      f.registry.snapshot().counter_value(obs::names::kResolverHolddownRecovered), 1u);
  // Recovered for good: it takes full re-escalation to hold it down again.
  f.timeouts(3, at_s(50));
  EXPECT_FALSE(f.cache.get(f.server, at_s(50))->in_holddown(at_s(50)));
}

TEST(InfraCacheHolddown, RecoveryOutsideHolddownCountsNothing) {
  HolddownFixture f;
  f.timeouts(2, at_s(0));  // not even probation
  f.cache.report_rtt(f.server, net::Duration::millis(20), at_s(1));
  EXPECT_EQ(
      f.registry.snapshot().counter_value(obs::names::kResolverHolddownRecovered), 0u);
}

// --- Retransmission timeout funnel (resolver end-to-end) --------------------

/// A world whose only authoritative address is unroutable: every upstream
/// transmission times out, so the UpstreamTimeout trace events expose the
/// exact timeout the funnel computed (their value is elapsed-at-expiry).
struct DeadWorld {
  net::Simulation sim{31};
  net::LatencyParams params;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<RecursiveResolver> resolver;

  explicit DeadWorld(ResolverConfig rcfg) {
    params.loss_rate = 0.0;
    net_ = std::make_unique<net::Network>(sim, params);
    const net::NodeId rnode =
        net_->add_node("recursive", net::find_location("AMS")->point);
    sim.trace().set_enabled(true);
    rcfg.name = "hardened";
    resolver = std::make_unique<RecursiveResolver>(
        *net_, rnode, net_->allocate_address(), rcfg,
        std::vector<RootHint>{{dns::Name::parse("a.root-servers.net"),
                               net_->allocate_address()}},
        stats::Rng{555});
    resolver->start();
  }

  ResolveOutcome resolve(const char* name) {
    ResolveOutcome out;
    resolver->resolve(
        dns::Question{dns::Name::parse(name), dns::RRType::A,
                      dns::RRClass::IN},
        [&](const ResolveOutcome& o) { out = o; });
    sim.run();
    return out;
  }

  [[nodiscard]] std::vector<double> timeout_values() const {
    std::vector<double> out;
    for (const auto& e : sim.trace().events()) {
      if (e.kind == obs::TraceKind::UpstreamTimeout) out.push_back(e.value);
    }
    return out;
  }
};

TEST(TimeoutFunnel, EveryTimeoutRespectsTheHardCeiling) {
  ResolverConfig cfg;
  cfg.max_timeout = net::Duration::seconds(2);
  DeadWorld w{cfg};
  const auto out = w.resolve("x.test.nl");
  EXPECT_EQ(out.rcode, dns::Rcode::ServFail);
  const auto values = w.timeout_values();
  ASSERT_FALSE(values.empty());
  for (const double v : values) {
    EXPECT_LE(v, cfg.max_timeout.ms() + 1e-6);
    EXPECT_GE(v, cfg.min_timeout.ms() - 1e-6);
  }
}

TEST(TimeoutFunnel, BackoffGrowsTimeoutsMonotonically) {
  ResolverConfig cfg;
  cfg.initial_timeout = net::Duration::millis(100);
  cfg.min_timeout = net::Duration::millis(50);
  cfg.max_timeout = net::Duration::seconds(2);
  DeadWorld w{cfg};
  (void)w.resolve("x.test.nl");
  const auto values = w.timeout_values();
  // Single dead server: consecutive timeouts against the same address, so
  // the funnel's exponential backoff must be non-decreasing up to the cap.
  ASSERT_GE(values.size(), 3u);
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
  EXPECT_GT(values.back(), values.front());
  const auto& m = w.sim.metrics();
  EXPECT_GT(m.snapshot().counter_value(obs::names::kResolverBackoffApplied), 0u);
  EXPECT_GT(m.snapshot().counter_value(obs::names::kResolverBackoffCapped), 0u);
}

TEST(TimeoutFunnel, MisconfiguredMinAboveMaxIsSafe) {
  // min > max must not UB (std::clamp requires lo <= hi); max wins.
  ResolverConfig cfg;
  cfg.min_timeout = net::Duration::seconds(5);
  cfg.max_timeout = net::Duration::seconds(2);
  DeadWorld w{cfg};
  const auto out = w.resolve("x.test.nl");
  EXPECT_EQ(out.rcode, dns::Rcode::ServFail);
  for (const double v : w.timeout_values()) {
    EXPECT_LE(v, cfg.max_timeout.ms() + 1e-6);
  }
}

// --- Bounded-work deadline --------------------------------------------------

TEST(ResolutionDeadline, FiresWhenEverythingIsDead) {
  ResolverConfig cfg;
  cfg.max_resolution_time = net::Duration::seconds(3);
  DeadWorld w{cfg};
  const auto out = w.resolve("x.test.nl");
  EXPECT_EQ(out.rcode, dns::Rcode::ServFail);
  // The job cannot have outlived the deadline.
  EXPECT_LE(out.elapsed.ms(), cfg.max_resolution_time.ms() + 1e-6);
  // The queue drained: no leaked retransmission or deadline events.
  EXPECT_EQ(w.sim.pending(), 0u);
}

TEST(ResolutionDeadline, DoesNotFireOnNormalFailure) {
  // With the default 60 s deadline, the retransmission budget (16 tries of
  // <= 2 s) exhausts first: deadline expiries stay at zero.
  DeadWorld w{ResolverConfig{}};
  (void)w.resolve("x.test.nl");
  EXPECT_EQ(
      w.sim.metrics().snapshot().counter_value(obs::names::kResolverDeadlineExpired),
      0u);
  EXPECT_EQ(w.sim.pending(), 0u);
}

TEST(ResolutionDeadline, CountsEveryExpiry) {
  ResolverConfig cfg;
  cfg.max_resolution_time = net::Duration::millis(700);
  DeadWorld w{cfg};
  (void)w.resolve("a.test.nl");
  (void)w.resolve("b.test.nl");
  EXPECT_EQ(
      w.sim.metrics().snapshot().counter_value(obs::names::kResolverDeadlineExpired),
      2u);
}

}  // namespace
}  // namespace recwild::resolver
