// End-to-end iterative resolution tests against a hand-built mini-Internet:
// one root server, one TLD server for .nl, and two authoritatives for
// test.nl that serve different TXT payloads ("A1" / "A2"), as in the paper.
#include "resolver/resolver.hpp"

#include <gtest/gtest.h>

#include "authns/server.hpp"

namespace recwild::resolver {
namespace {

struct MiniInternet {
  net::Simulation sim{2024};
  net::LatencyParams params;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<authns::AuthServer> root;
  std::unique_ptr<authns::AuthServer> tld;
  std::unique_ptr<authns::AuthServer> auth1;
  std::unique_ptr<authns::AuthServer> auth2;
  net::IpAddress root_addr, tld_addr, a1_addr, a2_addr;
  std::unique_ptr<RecursiveResolver> resolver;

  explicit MiniInternet(ResolverConfig rcfg = {}) {
    params.loss_rate = 0.0;
    net_ = std::make_unique<net::Network>(sim, params);

    const auto loc = [](const char* code) {
      return net::find_location(code)->point;
    };
    root_addr = net_->allocate_address();
    tld_addr = net_->allocate_address();
    a1_addr = net_->allocate_address();
    a2_addr = net_->allocate_address();

    // Root zone: delegate nl.
    authns::Zone root_zone{dns::Name{}};
    dns::SoaRdata soa;
    soa.minimum = 60;
    root_zone.add({dns::Name{}, dns::RRClass::IN, 86400, soa});
    root_zone.add({dns::Name{}, dns::RRClass::IN, 86400,
                   dns::NsRdata{dns::Name::parse("a.root-servers.net")}});
    root_zone.add({dns::Name::parse("a.root-servers.net"), dns::RRClass::IN,
                   86400, dns::ARdata{root_addr}});
    root_zone.add({dns::Name::parse("nl"), dns::RRClass::IN, 86400,
                   dns::NsRdata{dns::Name::parse("ns1.dns.nl")}});
    root_zone.add({dns::Name::parse("ns1.dns.nl"), dns::RRClass::IN, 86400,
                   dns::ARdata{tld_addr}});

    // nl zone: delegate test.nl to both authoritatives.
    authns::Zone nl_zone{dns::Name::parse("nl")};
    nl_zone.add({dns::Name::parse("nl"), dns::RRClass::IN, 86400, soa});
    nl_zone.add({dns::Name::parse("nl"), dns::RRClass::IN, 86400,
                 dns::NsRdata{dns::Name::parse("ns1.dns.nl")}});
    nl_zone.add({dns::Name::parse("ns1.dns.nl"), dns::RRClass::IN, 86400,
                 dns::ARdata{tld_addr}});
    for (const char* ns : {"ns1.test.nl", "ns2.test.nl"}) {
      nl_zone.add({dns::Name::parse("test.nl"), dns::RRClass::IN, 86400,
                   dns::NsRdata{dns::Name::parse(ns)}});
    }
    nl_zone.add({dns::Name::parse("ns1.test.nl"), dns::RRClass::IN, 86400,
                 dns::ARdata{a1_addr}});
    nl_zone.add({dns::Name::parse("ns2.test.nl"), dns::RRClass::IN, 86400,
                 dns::ARdata{a2_addr}});

    auto test_zone = [&](const char* payload) {
      authns::Zone z{dns::Name::parse("test.nl")};
      dns::SoaRdata s;
      s.minimum = 30;
      z.add({dns::Name::parse("test.nl"), dns::RRClass::IN, 86400, s});
      for (const char* ns : {"ns1.test.nl", "ns2.test.nl"}) {
        z.add({dns::Name::parse("test.nl"), dns::RRClass::IN, 86400,
               dns::NsRdata{dns::Name::parse(ns)}});
      }
      z.add({dns::Name::parse("ns1.test.nl"), dns::RRClass::IN, 86400,
             dns::ARdata{a1_addr}});
      z.add({dns::Name::parse("ns2.test.nl"), dns::RRClass::IN, 86400,
             dns::ARdata{a2_addr}});
      z.add({dns::Name::parse("*.test.nl"), dns::RRClass::IN, 5,
             dns::TxtRdata{{payload}}});
      z.add({dns::Name::parse("fixed.test.nl"), dns::RRClass::IN, 300,
             dns::ARdata{net::IpAddress::from_octets(192, 0, 2, 80)}});
      return z;
    };

    auto server = [&](const char* name, const char* city,
                      net::IpAddress addr) {
      const net::NodeId node = net_->add_node(name, loc(city));
      authns::AuthServerConfig cfg;
      cfg.identity = name;
      return std::make_unique<authns::AuthServer>(
          *net_, node, net::Endpoint{addr, net::kDnsPort}, cfg);
    };
    root = server("root", "IAD", root_addr);
    root->add_zone(std::move(root_zone));
    root->start();
    tld = server("nl-tld", "AMS", tld_addr);
    tld->add_zone(std::move(nl_zone));
    tld->start();
    auth1 = server("auth1", "FRA", a1_addr);
    auth1->add_zone(test_zone("A1"));
    auth1->start();
    auth2 = server("auth2", "SYD", a2_addr);
    auth2->add_zone(test_zone("A2"));
    auth2->start();

    const net::NodeId rnode = net_->add_node("recursive", loc("AMS"));
    rcfg.name = "test-recursive";
    resolver = std::make_unique<RecursiveResolver>(
        *net_, rnode, net_->allocate_address(), rcfg,
        std::vector<RootHint>{
            {dns::Name::parse("a.root-servers.net"), root_addr}},
        stats::Rng{555});
    resolver->start();
  }

  ResolveOutcome resolve(const char* name,
                         dns::RRType type = dns::RRType::TXT) {
    ResolveOutcome out;
    bool done = false;
    resolver->resolve(
        dns::Question{dns::Name::parse(name), type, dns::RRClass::IN},
        [&](const ResolveOutcome& o) {
          out = o;
          done = true;
        });
    sim.run();
    EXPECT_TRUE(done);
    return out;
  }
};

std::string txt_of(const ResolveOutcome& out) {
  for (const auto& rr : out.answers) {
    if (rr.type() == dns::RRType::TXT) {
      return std::get<dns::TxtRdata>(rr.rdata).strings.at(0);
    }
  }
  return "";
}

TEST(Resolver, IterativeResolutionFromRootHints) {
  MiniInternet world;
  const auto out = world.resolve("abc.test.nl");
  EXPECT_EQ(out.rcode, dns::Rcode::NoError);
  ASSERT_FALSE(out.answers.empty());
  const std::string payload = txt_of(out);
  EXPECT_TRUE(payload == "A1" || payload == "A2");
  // Cold cache: root -> tld -> authoritative = 3 upstream queries.
  EXPECT_EQ(out.upstream_queries, 3);
  EXPECT_EQ(world.root->queries_received(), 1u);
  EXPECT_EQ(world.tld->queries_received(), 1u);
}

TEST(Resolver, SecondQuerySkipsRootAndTld) {
  MiniInternet world;
  (void)world.resolve("first.test.nl");
  const auto out = world.resolve("second.test.nl");
  // NS set and glue are cached; only the authoritative is contacted.
  EXPECT_EQ(out.upstream_queries, 1);
  EXPECT_EQ(world.root->queries_received(), 1u);
  EXPECT_EQ(world.tld->queries_received(), 1u);
}

TEST(Resolver, InternedQnameTableStaysBounded) {
  // Regression: a cache-busting workload (every query a fresh subdomain)
  // must not grow the interned-qname table without bound; it is compacted
  // down to the outstanding set once it crosses the threshold.
  MiniInternet world;
  constexpr int kQueries = 5000;
  for (int i = 0; i < kQueries; ++i) {
    const std::string qname = "r" + std::to_string(i) + ".test.nl";
    const auto out = world.resolve(qname.c_str());
    ASSERT_EQ(out.rcode, dns::Rcode::NoError);
  }
  EXPECT_LE(world.resolver->interned_qnames(), 4096u);
  // flush_caches (restart simulation) also compacts: with nothing
  // outstanding the table empties entirely.
  world.resolver->flush_caches();
  EXPECT_EQ(world.resolver->interned_qnames(), 0u);
}

TEST(Resolver, AnswersFromCacheWithoutUpstream) {
  MiniInternet world;
  (void)world.resolve("fixed.test.nl", dns::RRType::A);
  const auto out = world.resolve("fixed.test.nl", dns::RRType::A);
  EXPECT_EQ(out.upstream_queries, 0);
  EXPECT_EQ(out.elapsed, net::Duration::zero());
  ASSERT_EQ(out.answers.size(), 1u);
}

TEST(Resolver, ShortTtlExpiresAndRefetches) {
  MiniInternet world;
  (void)world.resolve("wild.test.nl");  // TXT TTL 5s
  world.sim.run_until(world.sim.now() + net::Duration::seconds(10));
  const auto out = world.resolve("wild.test.nl");
  EXPECT_EQ(out.upstream_queries, 1);
}

TEST(Resolver, NxDomainIsNegativelyCached) {
  MiniInternet world;
  // "nomatch.nl" does not exist in the nl zone (and matches no wildcard).
  const auto first = world.resolve("nomatch.nl", dns::RRType::A);
  EXPECT_EQ(first.rcode, dns::Rcode::NxDomain);
  const auto second = world.resolve("nomatch.nl", dns::RRType::A);
  EXPECT_EQ(second.rcode, dns::Rcode::NxDomain);
  EXPECT_EQ(second.upstream_queries, 0);
}

TEST(Resolver, NodataNegativeCached) {
  MiniInternet world;
  const auto first = world.resolve("fixed.test.nl", dns::RRType::MX);
  EXPECT_EQ(first.rcode, dns::Rcode::NoError);
  EXPECT_TRUE(first.answers.empty());
  const auto second = world.resolve("fixed.test.nl", dns::RRType::MX);
  EXPECT_EQ(second.upstream_queries, 0);
}

TEST(Resolver, FailsOverWhenChosenServerIsDown) {
  MiniInternet world;
  (void)world.resolve("warmup.test.nl");  // cache NS + addresses
  world.auth1->set_down(true);
  world.auth2->set_down(false);
  const auto out = world.resolve("after-failure.test.nl");
  EXPECT_EQ(out.rcode, dns::Rcode::NoError);
  EXPECT_EQ(txt_of(out), "A2");
  EXPECT_GT(world.resolver->upstream_timeouts() +
                world.resolver->servfails(),
            0u);
}

TEST(Resolver, AllServersDownGivesServfail) {
  MiniInternet world;
  (void)world.resolve("warmup.test.nl");
  world.auth1->set_down(true);
  world.auth2->set_down(true);
  const auto out = world.resolve("doomed.test.nl");
  EXPECT_EQ(out.rcode, dns::Rcode::ServFail);
}

TEST(Resolver, TimeoutsFeedInfraCache) {
  MiniInternet world;
  (void)world.resolve("warmup.test.nl");
  world.auth1->set_down(true);
  world.auth2->set_down(true);
  (void)world.resolve("doomed.test.nl");
  const auto* s1 =
      world.resolver->infra().get(world.a1_addr, world.sim.now());
  const auto* s2 =
      world.resolver->infra().get(world.a2_addr, world.sim.now());
  ASSERT_TRUE(s1 != nullptr && s2 != nullptr);
  EXPECT_GT(s1->consecutive_timeouts + s2->consecutive_timeouts, 0);
}

TEST(Resolver, SuccessfulQueriesPopulateInfraCache) {
  MiniInternet world;
  (void)world.resolve("x.test.nl");
  const auto* root_stats =
      world.resolver->infra().get(world.root_addr, world.sim.now());
  ASSERT_NE(root_stats, nullptr);
  EXPECT_GT(root_stats->srtt_ms, 1.0);
}

TEST(Resolver, CoalescesIdenticalInflightQueries) {
  MiniInternet world;
  int callbacks = 0;
  const dns::Question q{dns::Name::parse("co.test.nl"), dns::RRType::TXT,
                        dns::RRClass::IN};
  world.resolver->resolve(q, [&](const ResolveOutcome&) { ++callbacks; });
  world.resolver->resolve(q, [&](const ResolveOutcome&) { ++callbacks; });
  world.sim.run();
  EXPECT_EQ(callbacks, 2);
  // Both answered by ONE resolution: 3 upstream queries total, not 6.
  EXPECT_EQ(world.resolver->upstream_sent(), 3u);
}

TEST(Resolver, FlushCachesForcesFullWalkAgain) {
  MiniInternet world;
  (void)world.resolve("one.test.nl");
  world.resolver->flush_caches();
  const auto out = world.resolve("two.test.nl");
  EXPECT_EQ(out.upstream_queries, 3);
  EXPECT_EQ(world.root->queries_received(), 2u);
}

TEST(Resolver, ResolutionLatencyReflectsNetworkRtt) {
  MiniInternet world;
  (void)world.resolve("warm.test.nl");
  const auto out = world.resolve("timed.test.nl");
  // One round trip to FRA or SYD from AMS: at least a few ms.
  EXPECT_GT(out.elapsed.ms(), 2.0);
  EXPECT_LT(out.elapsed.ms(), 1000.0);
}

TEST(Resolver, AnswersClientsOverTheNetwork) {
  MiniInternet world;
  const net::NodeId cnode = world.net_->add_node(
      "client", net::find_location("AMS")->point);
  const net::Endpoint cep{world.net_->allocate_address(), 7777};
  std::vector<dns::Message> answers;
  world.net_->listen(cnode, cep, [&](const net::Datagram& d, net::NodeId) {
    answers.push_back(dns::decode_message(d.payload));
  });
  dns::Message q = dns::Message::make_query(
      99, dns::Name::parse("net.test.nl"), dns::RRType::TXT);
  q.header.rd = true;
  world.net_->send(cnode, cep,
                   net::Endpoint{world.resolver->address(), net::kDnsPort},
                   dns::encode_message(q));
  world.sim.run();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].header.id, 99);
  EXPECT_TRUE(answers[0].header.qr);
  EXPECT_TRUE(answers[0].header.ra);
  EXPECT_FALSE(answers[0].answers.empty());
  EXPECT_EQ(world.resolver->client_queries(), 1u);
}

TEST(Resolver, ChaosIdentityAnsweredLocally) {
  MiniInternet world;
  const net::NodeId cnode = world.net_->add_node(
      "client2", net::find_location("AMS")->point);
  const net::Endpoint cep{world.net_->allocate_address(), 7778};
  std::vector<dns::Message> answers;
  world.net_->listen(cnode, cep, [&](const net::Datagram& d, net::NodeId) {
    answers.push_back(dns::decode_message(d.payload));
  });
  dns::Message q = dns::Message::make_query(
      5, dns::Name::parse("hostname.bind"), dns::RRType::TXT);
  q.questions[0].qclass = dns::RRClass::CH;
  world.net_->send(cnode, cep,
                   net::Endpoint{world.resolver->address(), net::kDnsPort},
                   dns::encode_message(q));
  world.sim.run();
  ASSERT_EQ(answers.size(), 1u);
  // The RECURSIVE's identity, not any authoritative's — the paper's reason
  // for using IN-class TXT payloads instead of CHAOS queries (§3.1).
  EXPECT_EQ(
      std::get<dns::TxtRdata>(answers[0].answers.at(0).rdata).strings[0],
      "test-recursive");
  // No upstream traffic resulted.
  EXPECT_EQ(world.resolver->upstream_sent(), 0u);
}

TEST(Resolver, PolicySweepAllResolve) {
  for (const PolicyKind kind :
       {PolicyKind::BindSrtt, PolicyKind::UnboundBand,
        PolicyKind::PowerDnsFactor, PolicyKind::UniformRandom,
        PolicyKind::RoundRobin, PolicyKind::StickyFirst}) {
    ResolverConfig cfg;
    cfg.policy = kind;
    MiniInternet world{cfg};
    const auto out = world.resolve("sweep.test.nl");
    EXPECT_EQ(out.rcode, dns::Rcode::NoError) << to_string(kind);
    EXPECT_FALSE(txt_of(out).empty()) << to_string(kind);
  }
}

}  // namespace
}  // namespace recwild::resolver
