// Resolver hardening: out-of-bailiwick records must never enter the cache
// (classic Kashpureff-style poisoning), and responses that don't match an
// outstanding query (wrong id, wrong source, wrong question) are dropped.
#include <gtest/gtest.h>

#include "authns/server.hpp"
#include "resolver/resolver.hpp"

namespace recwild::resolver {
namespace {

/// A malicious "authoritative": answers every query with a valid-looking
/// answer PLUS a poisoned additional record claiming an address for a
/// victim name far outside its zone.
class EvilServer {
 public:
  EvilServer(net::Network& network, net::NodeId node, net::Endpoint ep,
             dns::Name victim, net::IpAddress villain_addr)
      : network_(network),
        node_(node),
        ep_(ep),
        victim_(std::move(victim)),
        villain_addr_(villain_addr) {
    network_.listen(node_, ep_, [this](const net::Datagram& d, net::NodeId) {
      on_datagram(d);
    });
  }

 private:
  void on_datagram(const net::Datagram& dgram) {
    dns::Message query;
    try {
      query = dns::decode_message(dgram.payload);
    } catch (const dns::WireError&) {
      return;
    }
    if (query.header.qr || query.questions.empty()) return;
    dns::Message resp = dns::Message::make_response(query);
    resp.header.aa = true;
    resp.answers.push_back(
        dns::ResourceRecord{query.question().qname, dns::RRClass::IN, 5,
                            dns::TxtRdata{{"evil"}}});
    // The poison: "www.bank.nl is at MY address, cache it for a day".
    resp.additionals.push_back(dns::ResourceRecord{
        victim_, dns::RRClass::IN, 86400, dns::ARdata{villain_addr_}});
    // Also poisoned authority claiming the victim's zone.
    resp.authorities.push_back(dns::ResourceRecord{
        victim_.parent(), dns::RRClass::IN, 86400,
        dns::NsRdata{dns::Name::parse("ns.evil.test")}});
    network_.send(node_, ep_, dgram.src, dns::encode_message(resp));
  }

  net::Network& network_;
  net::NodeId node_;
  net::Endpoint ep_;
  dns::Name victim_;
  net::IpAddress villain_addr_;
};

TEST(Security, OutOfBailiwickRecordsNotCached) {
  net::Simulation sim{4242};
  net::LatencyParams lp;
  lp.loss_rate = 0;
  net::Network network{sim, lp};
  const auto loc = [](const char* c) {
    return net::find_location(c)->point;
  };

  // A legitimate root delegates "evil.test" to the attacker-controlled
  // authoritative. Records the attacker returns are only trustworthy
  // within its own bailiwick (evil.test) — NOT for www.bank.nl.
  const net::IpAddress root_addr = network.allocate_address();
  const net::IpAddress evil_addr = network.allocate_address();
  const net::IpAddress villain = network.allocate_address();
  const dns::Name victim = dns::Name::parse("www.bank.nl");

  authns::Zone root_zone{dns::Name{}};
  dns::SoaRdata soa;
  soa.minimum = 60;
  root_zone.add({dns::Name{}, dns::RRClass::IN, 86400, soa});
  root_zone.add({dns::Name{}, dns::RRClass::IN, 86400,
                 dns::NsRdata{dns::Name::parse("a.root-servers.net")}});
  root_zone.add({dns::Name::parse("a.root-servers.net"), dns::RRClass::IN,
                 86400, dns::ARdata{root_addr}});
  root_zone.add({dns::Name::parse("evil.test"), dns::RRClass::IN, 86400,
                 dns::NsRdata{dns::Name::parse("ns.evil.test")}});
  root_zone.add({dns::Name::parse("ns.evil.test"), dns::RRClass::IN, 86400,
                 dns::ARdata{evil_addr}});
  authns::AuthServerConfig rcfg_auth;
  rcfg_auth.identity = "root";
  authns::AuthServer root_server{network,
                                 network.add_node("root", loc("IAD")),
                                 net::Endpoint{root_addr, net::kDnsPort},
                                 rcfg_auth};
  root_server.add_zone(std::move(root_zone));
  root_server.start();

  EvilServer evil{network, network.add_node("evil", loc("FRA")),
                  net::Endpoint{evil_addr, net::kDnsPort}, victim,
                  villain};

  ResolverConfig rc;
  rc.name = "victim-resolver";
  RecursiveResolver res{network, network.add_node("res", loc("AMS")),
                        network.allocate_address(), rc,
                        {{dns::Name::parse("a.root-servers.net"),
                          root_addr}},
                        stats::Rng{17}};
  res.start();

  bool got_answer = false;
  res.resolve(dns::Question{dns::Name::parse("x.evil.test"),
                            dns::RRType::TXT, dns::RRClass::IN},
              [&](const ResolveOutcome& out) {
                got_answer = out.rcode == dns::Rcode::NoError;
              });
  sim.run();
  EXPECT_TRUE(got_answer);  // the in-bailiwick answer is accepted...

  // ...but the poison must NOT be in the cache: the A record for the
  // victim and the NS claim for its zone were outside the queried zone.
  EXPECT_FALSE(res.cache()
                   .get(victim, dns::RRType::A, sim.now())
                   .has_value());
  EXPECT_FALSE(res.cache()
                   .get(victim.parent(), dns::RRType::NS, sim.now())
                   .has_value());
}

TEST(Security, MismatchedResponsesIgnored) {
  net::Simulation sim{777};
  net::LatencyParams lp;
  lp.loss_rate = 0;
  net::Network network{sim, lp};
  const auto loc = [](const char* c) {
    return net::find_location(c)->point;
  };

  // Real authoritative, slow-ish (far away).
  const net::IpAddress auth_addr = network.allocate_address();
  authns::Zone zone{dns::Name{}};
  dns::SoaRdata soa;
  soa.minimum = 60;
  zone.add({dns::Name{}, dns::RRClass::IN, 86400, soa});
  zone.add({dns::Name{}, dns::RRClass::IN, 86400,
            dns::NsRdata{dns::Name::parse("ns.test")}});
  zone.add({dns::Name::parse("ns.test"), dns::RRClass::IN, 86400,
            dns::ARdata{auth_addr}});
  zone.add({dns::Name::parse("target.test"), dns::RRClass::IN, 300,
            dns::TxtRdata{{"legit"}}});
  authns::AuthServerConfig acfg;
  acfg.identity = "auth";
  authns::AuthServer auth{network, network.add_node("auth", loc("SYD")),
                          net::Endpoint{auth_addr, net::kDnsPort}, acfg};
  auth.add_zone(std::move(zone));
  auth.start();

  ResolverConfig rc;
  rc.name = "res";
  const net::IpAddress res_addr = network.allocate_address();
  RecursiveResolver res{network, network.add_node("res", loc("AMS")),
                        res_addr, rc,
                        {{dns::Name::parse("ns.test"), auth_addr}},
                        stats::Rng{18}};
  res.start();

  // An off-path attacker floods forged responses at the resolver's
  // upstream socket while the genuine query is in flight: wrong txids and
  // a wrong source address. None may be accepted.
  const net::NodeId attacker =
      network.add_node("attacker", loc("AMS"));  // nearby = wins the race
  const net::IpAddress spoof_src = network.allocate_address();
  const net::Endpoint attacker_ep{spoof_src, 1234};
  network.listen(attacker, attacker_ep,
                 [](const net::Datagram&, net::NodeId) {});

  std::string answer;
  res.resolve(dns::Question{dns::Name::parse("target.test"),
                            dns::RRType::TXT, dns::RRClass::IN},
              [&](const ResolveOutcome& out) {
                for (const auto& rr : out.answers) {
                  if (rr.type() == dns::RRType::TXT) {
                    answer = std::get<dns::TxtRdata>(rr.rdata)
                                 .strings.at(0);
                  }
                }
              });

  // Fire 200 forgeries immediately (they arrive long before SYD answers).
  for (std::uint16_t id = 0; id < 200; ++id) {
    dns::Message forged = dns::Message::make_query(
        id, dns::Name::parse("target.test"), dns::RRType::TXT);
    forged.header.qr = true;
    forged.answers.push_back(
        dns::ResourceRecord{dns::Name::parse("target.test"),
                            dns::RRClass::IN, 86400,
                            dns::TxtRdata{{"forged"}}});
    network.send(attacker, attacker_ep,
                 net::Endpoint{res_addr, 10'053},  // the upstream socket
                 dns::encode_message(forged));
  }
  sim.run();

  // 16-bit id space, 200 guesses, and the source address must also match:
  // the genuine answer must have won.
  EXPECT_EQ(answer, "legit");
  const auto cached =
      res.cache().get(dns::Name::parse("target.test"), dns::RRType::TXT,
                      sim.now());
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(std::get<dns::TxtRdata>(cached->rdatas[0]).strings[0], "legit");
}

TEST(Security, LateResponseAfterTimeoutIgnored) {
  // A response arriving after its query timed out must not disturb a
  // later resolution (the outstanding entry is gone).
  net::Simulation sim{909};
  net::LatencyParams lp;
  lp.loss_rate = 0;
  net::Network network{sim, lp};
  const auto loc = [](const char* c) {
    return net::find_location(c)->point;
  };
  const net::IpAddress auth_addr = network.allocate_address();
  authns::Zone zone{dns::Name{}};
  dns::SoaRdata soa;
  soa.minimum = 60;
  zone.add({dns::Name{}, dns::RRClass::IN, 86400, soa});
  zone.add({dns::Name{}, dns::RRClass::IN, 86400,
            dns::NsRdata{dns::Name::parse("ns.test")}});
  zone.add({dns::Name::parse("ns.test"), dns::RRClass::IN, 86400,
            dns::ARdata{auth_addr}});
  zone.add({dns::Name::parse("slow.test"), dns::RRClass::IN, 5,
            dns::TxtRdata{{"late"}}});
  authns::AuthServerConfig acfg;
  acfg.identity = "slowpoke";
  // Processing delay beyond the resolver's max timeout: every answer is
  // late.
  acfg.processing_delay = net::Duration::seconds(3);
  authns::AuthServer auth{network, network.add_node("auth", loc("FRA")),
                          net::Endpoint{auth_addr, net::kDnsPort}, acfg};
  auth.add_zone(std::move(zone));
  auth.start();

  ResolverConfig rc;
  rc.name = "res";
  rc.max_timeout = net::Duration::seconds(1);
  rc.max_upstream_queries = 3;
  RecursiveResolver res{network, network.add_node("res", loc("AMS")),
                        network.allocate_address(), rc,
                        {{dns::Name::parse("ns.test"), auth_addr}},
                        stats::Rng{19}};
  res.start();

  dns::Rcode rcode = dns::Rcode::NoError;
  res.resolve(dns::Question{dns::Name::parse("slow.test"),
                            dns::RRType::TXT, dns::RRClass::IN},
              [&](const ResolveOutcome& out) { rcode = out.rcode; });
  sim.run();
  EXPECT_EQ(rcode, dns::Rcode::ServFail);
  EXPECT_GE(res.upstream_timeouts(), 3u);
  // The late answers arrived and were dropped without crashing; the
  // record was NOT cached from a dead transaction.
  EXPECT_FALSE(res.cache()
                   .get(dns::Name::parse("slow.test"), dns::RRType::TXT,
                        sim.now())
                   .has_value());
}


TEST(Security, ResponseFromWrongSourcePortIgnored) {
  net::Simulation sim{2026};
  net::LatencyParams lp;
  lp.loss_rate = 0;
  net::Network network{sim, lp};
  const auto loc = [](const char* c) {
    return net::find_location(c)->point;
  };

  // An off-path attacker who shares the server's address (NAT sibling,
  // compromised unprivileged process on the server host) can forge the
  // txid and the question by sniffing NEITHER — here it gets both for
  // free by echoing the real query. The ONLY thing it cannot fake from an
  // unprivileged socket is the source port 53 the query was sent to, so
  // response matching must require it.
  const net::IpAddress auth_addr = network.allocate_address();
  const net::IpAddress res_addr = network.allocate_address();
  const net::NodeId auth_node = network.add_node("auth", loc("FRA"));
  int queries_seen = 0;
  network.listen(
      auth_node, net::Endpoint{auth_addr, net::kDnsPort},
      [&](const net::Datagram& d, net::NodeId) {
        dns::Message q;
        try {
          q = dns::decode_message(d.payload);
        } catch (const dns::WireError&) {
          return;
        }
        if (q.header.qr || q.questions.empty()) return;
        ++queries_seen;
        dns::Message resp = dns::Message::make_response(q);
        resp.header.aa = true;
        resp.answers.push_back(dns::ResourceRecord{
            q.question().qname, dns::RRClass::IN, 300,
            dns::TxtRdata{{queries_seen == 1 ? "forged" : "legit"}}});
        if (queries_seen == 1) {
          // Perfect forgery — right address, right txid, right question —
          // except the source port: 9999 instead of the 53 we queried.
          network.send(auth_node, net::Endpoint{auth_addr, 9999}, d.src,
                       dns::encode_message(resp));
        } else {
          // The retransmit gets a genuine answer from port 53.
          network.send(auth_node, d.dst, d.src, dns::encode_message(resp));
        }
      });

  ResolverConfig rc;
  rc.name = "res";
  RecursiveResolver res{network, network.add_node("res", loc("AMS")),
                        res_addr, rc,
                        {{dns::Name::parse("ns.test"), auth_addr}},
                        stats::Rng{20}};
  res.start();

  std::string answer;
  res.resolve(dns::Question{dns::Name::parse("target.test"),
                            dns::RRType::TXT, dns::RRClass::IN},
              [&](const ResolveOutcome& out) {
                for (const auto& rr : out.answers) {
                  if (rr.type() == dns::RRType::TXT) {
                    answer =
                        std::get<dns::TxtRdata>(rr.rdata).strings.at(0);
                  }
                }
              });
  sim.run();

  // The wrong-port forgery was ignored; the transaction survived to its
  // timeout and completed via the retransmit.
  EXPECT_EQ(answer, "legit");
  EXPECT_EQ(queries_seen, 2);
  EXPECT_GE(res.upstream_timeouts(), 1u);
}

}  // namespace
}  // namespace recwild::resolver
