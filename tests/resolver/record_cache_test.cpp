#include "resolver/record_cache.hpp"

#include <gtest/gtest.h>

namespace recwild::resolver {
namespace {

net::SimTime at_s(double s) {
  return net::SimTime::origin() + net::Duration::seconds(s);
}

dns::RRset a_set(const char* name, dns::Ttl ttl, std::uint32_t ip = 1) {
  dns::RRset set;
  set.name = dns::Name::parse(name);
  set.type = dns::RRType::A;
  set.ttl = ttl;
  set.rdatas = {dns::ARdata{net::IpAddress{ip}}};
  return set;
}

TEST(RecordCache, MissOnEmpty) {
  RecordCache cache;
  EXPECT_FALSE(
      cache.get(dns::Name::parse("x.nl"), dns::RRType::A, at_s(0)));
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(RecordCache, HitReturnsStoredSet) {
  RecordCache cache;
  cache.put(a_set("x.nl", 300), at_s(0));
  const auto hit = cache.get(dns::Name::parse("x.nl"), dns::RRType::A,
                             at_s(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->size(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(RecordCache, TtlCountsDown) {
  RecordCache cache;
  cache.put(a_set("x.nl", 300), at_s(0));
  const auto hit = cache.get(dns::Name::parse("x.nl"), dns::RRType::A,
                             at_s(100));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->ttl, 200u);
}

TEST(RecordCache, ExpiresAtTtl) {
  RecordCache cache;
  cache.put(a_set("x.nl", 300), at_s(0));
  EXPECT_TRUE(cache.get(dns::Name::parse("x.nl"), dns::RRType::A, at_s(299))
                  .has_value());
  EXPECT_FALSE(cache.get(dns::Name::parse("x.nl"), dns::RRType::A, at_s(300))
                   .has_value());
  EXPECT_EQ(cache.size(), 0u);  // expired entry evicted on access
}

TEST(RecordCache, PeekAndGetAgreeOnTheExpiryBoundary) {
  // Regression guard for the resolver's pipelined front door: peek is the
  // admission-bypass probe and get is the resolution path. They must share
  // the `expires_at <= now` boundary — if peek called an entry live one
  // instant longer than get, a waiter arriving exactly at expiry would
  // bypass admission, then miss in get and run upstream without ever
  // holding an inflight slot.
  RecordCache cache;
  cache.put(a_set("x.nl", 300), at_s(0));
  const dns::Name name = dns::Name::parse("x.nl");
  EXPECT_NE(cache.peek(name, dns::RRType::A, at_s(299)), nullptr);
  EXPECT_TRUE(cache.get(name, dns::RRType::A, at_s(299)).has_value());
  // peek first (metrics/LRU-neutral, so it cannot evict), then get.
  cache.put(a_set("x.nl", 300), at_s(0));
  EXPECT_EQ(cache.peek(name, dns::RRType::A, at_s(300)), nullptr);
  EXPECT_FALSE(cache.get(name, dns::RRType::A, at_s(300)).has_value());
}

TEST(RecordCache, PeekIsMetricsAndLruNeutral) {
  RecordCache cache;
  cache.put(a_set("x.nl", 300), at_s(0));
  const auto hits = cache.hits();
  const auto misses = cache.misses();
  (void)cache.peek(dns::Name::parse("x.nl"), dns::RRType::A, at_s(1));
  (void)cache.peek(dns::Name::parse("absent.nl"), dns::RRType::A, at_s(1));
  EXPECT_EQ(cache.hits(), hits);
  EXPECT_EQ(cache.misses(), misses);
}

TEST(RecordCache, TtlClampedToMax) {
  RecordCacheConfig cfg;
  cfg.max_ttl = 100;
  RecordCache cache{cfg};
  cache.put(a_set("x.nl", 999'999), at_s(0));
  EXPECT_FALSE(cache.get(dns::Name::parse("x.nl"), dns::RRType::A, at_s(101))
                   .has_value());
}

TEST(RecordCache, KeyIncludesType) {
  RecordCache cache;
  cache.put(a_set("x.nl", 300), at_s(0));
  EXPECT_FALSE(cache.get(dns::Name::parse("x.nl"), dns::RRType::TXT, at_s(1))
                   .has_value());
}

TEST(RecordCache, KeyIsCaseInsensitive) {
  RecordCache cache;
  cache.put(a_set("X.NL", 300), at_s(0));
  EXPECT_TRUE(cache.get(dns::Name::parse("x.nl"), dns::RRType::A, at_s(1))
                  .has_value());
}

TEST(RecordCache, OverwriteReplacesEntry) {
  RecordCache cache;
  cache.put(a_set("x.nl", 300, 1), at_s(0));
  cache.put(a_set("x.nl", 300, 2), at_s(1));
  const auto hit =
      cache.get(dns::Name::parse("x.nl"), dns::RRType::A, at_s(2));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(std::get<dns::ARdata>(hit->rdatas[0]).address,
            net::IpAddress{2});
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RecordCache, LruEvictionAtCapacity) {
  RecordCacheConfig cfg;
  cfg.max_entries = 3;
  RecordCache cache{cfg};
  cache.put(a_set("a.nl", 300), at_s(0));
  cache.put(a_set("b.nl", 300), at_s(0));
  cache.put(a_set("c.nl", 300), at_s(0));
  // Touch a.nl so b.nl becomes the LRU victim.
  (void)cache.get(dns::Name::parse("a.nl"), dns::RRType::A, at_s(1));
  cache.put(a_set("d.nl", 300), at_s(2));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.get(dns::Name::parse("a.nl"), dns::RRType::A, at_s(3))
                  .has_value());
  EXPECT_FALSE(cache.get(dns::Name::parse("b.nl"), dns::RRType::A, at_s(3))
                   .has_value());
}

TEST(RecordCache, NegativeEntriesStoreRcode) {
  RecordCache cache;
  cache.put_negative(dns::Name::parse("gone.nl"), dns::RRType::A,
                     dns::Rcode::NxDomain, 60, at_s(0));
  const auto neg = cache.get_negative(dns::Name::parse("gone.nl"),
                                      dns::RRType::A, at_s(1));
  ASSERT_TRUE(neg.has_value());
  EXPECT_EQ(*neg, dns::Rcode::NxDomain);
  // A negative entry is not a positive hit.
  EXPECT_FALSE(cache.get(dns::Name::parse("gone.nl"), dns::RRType::A,
                         at_s(1))
                   .has_value());
}

TEST(RecordCache, NegativeEntriesExpire) {
  RecordCache cache;
  cache.put_negative(dns::Name::parse("gone.nl"), dns::RRType::A,
                     dns::Rcode::NxDomain, 60, at_s(0));
  EXPECT_FALSE(cache.get_negative(dns::Name::parse("gone.nl"),
                                  dns::RRType::A, at_s(61))
                   .has_value());
}

TEST(RecordCache, NodataNegativeUsesNoError) {
  RecordCache cache;
  cache.put_negative(dns::Name::parse("x.nl"), dns::RRType::MX,
                     dns::Rcode::NoError, 60, at_s(0));
  EXPECT_EQ(cache.get_negative(dns::Name::parse("x.nl"), dns::RRType::MX,
                               at_s(1)),
            dns::Rcode::NoError);
}

TEST(RecordCache, PositiveOverwritesNegative) {
  RecordCache cache;
  cache.put_negative(dns::Name::parse("x.nl"), dns::RRType::A,
                     dns::Rcode::NxDomain, 60, at_s(0));
  cache.put(a_set("x.nl", 300), at_s(1));
  EXPECT_TRUE(cache.get(dns::Name::parse("x.nl"), dns::RRType::A, at_s(2))
                  .has_value());
  EXPECT_FALSE(cache.get_negative(dns::Name::parse("x.nl"), dns::RRType::A,
                                  at_s(2))
                   .has_value());
}

TEST(RecordCache, ClearEmptiesEverything) {
  RecordCache cache;
  cache.put(a_set("a.nl", 300), at_s(0));
  cache.put(a_set("b.nl", 300), at_s(0));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(dns::Name::parse("a.nl"), dns::RRType::A, at_s(1))
                   .has_value());
}

}  // namespace
}  // namespace recwild::resolver
