// QNAME minimization (RFC 7816): the resolver exposes only the next label
// to each zone in the hierarchy. Verified from the AUTHORITATIVE side —
// the query logs show what each server actually learned.
#include <gtest/gtest.h>

#include "experiment/testbed.hpp"

namespace recwild::resolver {
namespace {

struct World {
  experiment::Testbed tb;
  std::unique_ptr<RecursiveResolver> res;

  explicit World(bool minimize) : tb(make_cfg()) {
    ResolverConfig rc;
    rc.name = "min-resolver";
    rc.qname_minimization = minimize;
    res = std::make_unique<RecursiveResolver>(
        tb.network(),
        tb.network().add_node("minres", net::find_location("AMS")->point),
        tb.network().allocate_address(), rc, tb.hints(), stats::Rng{77});
    res->start();
  }

  static experiment::TestbedConfig make_cfg() {
    experiment::TestbedConfig cfg;
    cfg.seed = 2001;
    cfg.build_population = false;
    cfg.test_sites = {"DUB", "FRA"};
    return cfg;
  }

  ResolveOutcome resolve(const char* name) {
    ResolveOutcome out;
    res->resolve(dns::Question{dns::Name::parse(name), dns::RRType::TXT,
                               dns::RRClass::IN},
                 [&](const ResolveOutcome& o) { out = o; });
    tb.sim().run();
    return out;
  }

  /// All qnames seen across every site of a service group.
  std::vector<dns::Name> qnames_at(
      std::vector<anycast::AnycastService>& group) {
    std::vector<dns::Name> out;
    for (auto& svc : group) {
      for (auto& site : svc.sites()) {
        for (const auto& e : site.server->log().entries()) {
          out.push_back(e.qname);
        }
      }
    }
    return out;
  }
};

TEST(QnameMinimization, ResolvesCorrectly) {
  World w{true};
  const auto out = w.resolve("secret-host.ourtestdomain.nl");
  EXPECT_EQ(out.rcode, dns::Rcode::NoError);
  ASSERT_FALSE(out.answers.empty());
}

TEST(QnameMinimization, RootOnlySeesTld) {
  World w{true};
  (void)w.resolve("secret-host.ourtestdomain.nl");
  const auto root_qnames = w.qnames_at(w.tb.roots());
  ASSERT_FALSE(root_qnames.empty());
  for (const auto& q : root_qnames) {
    EXPECT_LE(q.label_count(), 1u) << q.to_string();  // "nl.", never more
  }
}

TEST(QnameMinimization, TldOnlySeesSecondLevel) {
  World w{true};
  (void)w.resolve("secret-host.ourtestdomain.nl");
  const auto nl_qnames = w.qnames_at(w.tb.nl_services());
  ASSERT_FALSE(nl_qnames.empty());
  for (const auto& q : nl_qnames) {
    EXPECT_LE(q.label_count(), 2u) << q.to_string();
    EXPECT_NE(q.to_string().find("ourtestdomain"), std::string::npos);
    EXPECT_EQ(q.to_string().find("secret-host"), std::string::npos);
  }
}

TEST(QnameMinimization, AuthoritativeSeesFullName) {
  World w{true};
  (void)w.resolve("secret-host.ourtestdomain.nl");
  bool saw_full = false;
  for (const auto& q : w.qnames_at(w.tb.test_services())) {
    if (q == dns::Name::parse("secret-host.ourtestdomain.nl")) {
      saw_full = true;
    }
  }
  EXPECT_TRUE(saw_full);
}

TEST(QnameMinimization, WithoutItRootSeesEverything) {
  World w{false};
  (void)w.resolve("secret-host.ourtestdomain.nl");
  bool leaked = false;
  for (const auto& q : w.qnames_at(w.tb.roots())) {
    if (q.label_count() == 3) leaked = true;  // the full name hit the root
  }
  EXPECT_TRUE(leaked);
}

TEST(QnameMinimization, CachedCutsSkipUpperZones) {
  World w{true};
  (void)w.resolve("first.ourtestdomain.nl");
  const auto root_before = w.qnames_at(w.tb.roots()).size();
  const auto out = w.resolve("second.ourtestdomain.nl");
  EXPECT_EQ(out.rcode, dns::Rcode::NoError);
  EXPECT_EQ(out.upstream_queries, 1);  // straight to the test domain
  EXPECT_EQ(w.qnames_at(w.tb.roots()).size(), root_before);
}

TEST(QnameMinimization, NxDomainStillWorks) {
  World w{true};
  const auto out = w.resolve("nope.nosuchdomain.nl");
  EXPECT_EQ(out.rcode, dns::Rcode::NxDomain);
}

TEST(QnameMinimization, SameAnswerWithAndWithout) {
  World with{true};
  World without{false};
  const auto a = with.resolve("parity.ourtestdomain.nl");
  const auto b = without.resolve("parity.ourtestdomain.nl");
  EXPECT_EQ(a.rcode, b.rcode);
  ASSERT_FALSE(a.answers.empty());
  ASSERT_FALSE(b.answers.empty());
  // Both got a TXT payload naming one of the two authoritatives.
  const auto payload = [](const ResolveOutcome& o) {
    return std::get<dns::TxtRdata>(o.answers.back().rdata).strings.at(0);
  };
  EXPECT_TRUE(payload(a) == "DUB" || payload(a) == "FRA");
  EXPECT_TRUE(payload(b) == "DUB" || payload(b) == "FRA");
}

}  // namespace
}  // namespace recwild::resolver
