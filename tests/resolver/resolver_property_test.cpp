// End-to-end property sweep: every selection policy must resolve correctly
// under increasing packet loss — failing over, retrying, and eventually
// answering (or SERVFAILing gracefully, never hanging or crashing).
#include <gtest/gtest.h>

#include "authns/server.hpp"
#include "resolver/resolver.hpp"

namespace recwild::resolver {
namespace {

struct SweepParam {
  PolicyKind policy;
  double loss;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string name{to_string(info.param.policy)};
  name += "_loss";
  name += std::to_string(static_cast<int>(info.param.loss * 100));
  return name;
}

class PolicyLossSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PolicyLossSweep, ResolvesUnderLoss) {
  const auto param = GetParam();
  net::Simulation sim{1000 + static_cast<std::uint64_t>(param.loss * 100)};
  net::LatencyParams lp;
  lp.loss_rate = param.loss;
  net::Network network{sim, lp};
  const auto loc = [](const char* c) {
    return net::find_location(c)->point;
  };

  // Two authoritatives for the root zone itself (simplest full chain).
  const net::IpAddress a1 = network.allocate_address();
  const net::IpAddress a2 = network.allocate_address();
  auto make_zone = [&](const char* payload) {
    authns::Zone z{dns::Name{}};
    dns::SoaRdata soa;
    soa.minimum = 30;
    z.add({dns::Name{}, dns::RRClass::IN, 86400, soa});
    for (const char* ns : {"ns1.test", "ns2.test"}) {
      z.add({dns::Name{}, dns::RRClass::IN, 86400,
             dns::NsRdata{dns::Name::parse(ns)}});
    }
    z.add({dns::Name::parse("ns1.test"), dns::RRClass::IN, 86400,
           dns::ARdata{a1}});
    z.add({dns::Name::parse("ns2.test"), dns::RRClass::IN, 86400,
           dns::ARdata{a2}});
    z.add({dns::Name::parse("*.q"), dns::RRClass::IN, 1,
           dns::TxtRdata{{payload}}});
    return z;
  };
  authns::AuthServerConfig c1;
  c1.identity = "s1";
  authns::AuthServer s1{network, network.add_node("s1", loc("FRA")),
                        net::Endpoint{a1, net::kDnsPort}, c1};
  s1.add_zone(make_zone("S1"));
  s1.start();
  authns::AuthServerConfig c2;
  c2.identity = "s2";
  authns::AuthServer s2{network, network.add_node("s2", loc("IAD")),
                        net::Endpoint{a2, net::kDnsPort}, c2};
  s2.add_zone(make_zone("S2"));
  s2.start();

  ResolverConfig rc;
  rc.name = "sweep";
  rc.policy = param.policy;
  RecursiveResolver res{network, network.add_node("res", loc("AMS")),
                        network.allocate_address(), rc,
                        {{dns::Name::parse("ns1.test"), a1},
                         {dns::Name::parse("ns2.test"), a2}},
                        stats::Rng{99}};
  res.start();

  int answered = 0;
  int servfail = 0;
  const int total = 40;
  for (int i = 0; i < total; ++i) {
    res.resolve(dns::Question{dns::Name::parse("x" + std::to_string(i) +
                                               ".q"),
                              dns::RRType::TXT, dns::RRClass::IN},
                [&](const ResolveOutcome& out) {
                  if (out.rcode == dns::Rcode::NoError &&
                      !out.answers.empty()) {
                    ++answered;
                  } else {
                    ++servfail;
                  }
                });
    sim.run();  // every resolution must terminate
  }
  EXPECT_EQ(answered + servfail, total);
  if (param.loss <= 0.10) {
    // Moderate loss: retries must save essentially everything.
    EXPECT_GE(answered, total - 2) << "policy " << to_string(param.policy);
  } else {
    // Heavy loss (30%): the majority must still get through.
    EXPECT_GE(answered, total * 6 / 10)
        << "policy " << to_string(param.policy);
  }
  // No outstanding state leaks once the sim drains.
  EXPECT_EQ(sim.pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PolicyLossSweep,
    ::testing::Values(
        SweepParam{PolicyKind::BindSrtt, 0.0},
        SweepParam{PolicyKind::BindSrtt, 0.1},
        SweepParam{PolicyKind::BindSrtt, 0.3},
        SweepParam{PolicyKind::UnboundBand, 0.0},
        SweepParam{PolicyKind::UnboundBand, 0.1},
        SweepParam{PolicyKind::UnboundBand, 0.3},
        SweepParam{PolicyKind::PowerDnsFactor, 0.1},
        SweepParam{PolicyKind::UniformRandom, 0.1},
        SweepParam{PolicyKind::UniformRandom, 0.3},
        SweepParam{PolicyKind::RoundRobin, 0.1},
        SweepParam{PolicyKind::StickyFirst, 0.0},
        SweepParam{PolicyKind::StickyFirst, 0.1},
        SweepParam{PolicyKind::StickyFirst, 0.3}),
    param_name);

}  // namespace
}  // namespace recwild::resolver
